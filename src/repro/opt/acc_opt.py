"""Accumulator specialisation (paper §6.1).

Reverse AD turns reads inside ``map`` into accumulator updates, which lower
to atomic adds — correct, but with poor locality (uncoalesced, contended).
This pass rewrites the common shapes back into bulk constructs with
specialised, fast code generation:

* **accs_to_reduce** — an update whose *indices are invariant to the
  enclosing parallel dimension* sums over that dimension.  The nest is
  split: the contribution values are produced by a plain (accumulator-free)
  map nest, summed over the invariant dimension with a dense ``reduce (+)``,
  and written back with a single accumulation over the remaining index
  space.  On the matmul adjoint this reproduces the paper's result: two
  matmul-shaped map-reduce kernels instead of n·m·q scattered atomic adds
  (the ~order-of-magnitude GMM/LSTM lever).

* **accs_to_hist** — a *data-dependent* update directly under one map
  becomes a ``reduce_by_index`` (generalised histogram), which the backend
  implements with specialised histogram code (``np.bincount`` here; the
  multi-pass shared-memory histograms of [17] on a real GPU).  This is the
  k-means pattern (§7.4/7.5).

The accumulator's consumption path may thread through nested ``withacc``
regions created for other adjoints; those are traversed transparently.
Rewrites are applied top-down and iterated to a fixed point with the
standard simplifier, so chains invariant to several dimensions hoist level
by level.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..ir.ast import (
    AtomExp,
    Atom,
    Body,
    Cast,
    Exp,
    Fun,
    If,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Scan,
    Size,
    Stm,
    UpdAcc,
    Var,
    WhileLoop,
    WithAcc,
)
from ..ir.builder import Builder, const
from ..ir.traversal import free_vars_exp
from ..ir.types import I64, elem_type, is_integral, rank_of, with_rank
from ..util import fresh

__all__ = ["acc_opt_fun"]


# ---------------------------------------------------------------------------
# Chain analysis
# ---------------------------------------------------------------------------


@dataclass
class _MapStep:
    stm_idx: int
    node: Map
    acc_pos: int
    parent_body: Body  # the body containing this map statement
    stm: Optional[Stm] = None  # the binding statement (None at level 0)


@dataclass
class _WaccStep:
    stm_idx: int
    node: WithAcc
    res_pos: int  # position in the withacc lambda's results (secondary slot)
    stm: Optional[Stm] = None


@dataclass
class _UpdStep:
    stm_idx: int
    node: UpdAcc


Step = Union[_MapStep, _WaccStep, _UpdStep]


@dataclass
class _Chain:
    steps: List[Step]

    @property
    def map_steps(self) -> List[_MapStep]:
        return [s for s in self.steps if isinstance(s, _MapStep)]

    @property
    def upd(self) -> UpdAcc:
        last = self.steps[-1]
        assert isinstance(last, _UpdStep)
        return last.node


def _find_in_body(body: Body, accname: str) -> Optional[Tuple[List[Step], Var]]:
    """Follow ``accname``'s (linear) consumption in ``body``; returns the
    step path and the final accumulator variable bound in this body."""
    consumer: Optional[Tuple[int, Stm]] = None
    for i, stm in enumerate(body.stms):
        if accname in free_vars_exp(stm.exp):
            if consumer is not None:
                return None
            consumer = (i, stm)
    if consumer is None:
        return None
    i, stm = consumer
    e = stm.exp
    if isinstance(e, UpdAcc) and e.acc.name == accname:
        return [_UpdStep(i, e)], stm.pat[0]
    if isinstance(e, Map) and accname in {a.name for a in e.accs}:
        pos = [a.name for a in e.accs].index(accname)
        acc_param = e.lam.params[len(e.arrs) + pos]
        sub = _find_in_body(e.lam.body, acc_param.name)
        if sub is None:
            return None
        substeps, final = sub
        if e.lam.body.result[pos] != final:
            return None
        return [_MapStep(i, e, pos, body, stm)] + substeps, stm.pat[pos]
    if isinstance(e, WithAcc):
        # The accumulator is free inside the region's lambda.
        sub = _find_in_body(e.lam.body, accname)
        if sub is None:
            return None
        substeps, final = sub
        res = e.lam.body.result
        n = len(e.arrs)
        pos = None
        for k in range(n, len(res)):
            if res[k] == final:
                pos = k
                break
        if pos is None:
            return None
        return [_WaccStep(i, e, pos, stm)] + substeps, stm.pat[pos]
    return None


def _find_chain(m: Map, pos: int, parent_body: Body) -> Optional[_Chain]:
    acc_param = m.lam.params[len(m.arrs) + pos]
    sub = _find_in_body(m.lam.body, acc_param.name)
    if sub is None:
        return None
    substeps, final = sub
    if m.lam.body.result[pos] != final:
        return None
    return _Chain([_MapStep(-1, m, pos, parent_body)] + substeps)


def _dependents(body: Body, dep: Set[str]) -> Set[str]:
    out = set(dep)
    changed = True
    while changed:
        changed = False
        for stm in body.stms:
            uses = {v.name for v in free_vars_exp(stm.exp).values()}
            if uses & out:
                for v in stm.pat:
                    if v.name not in out:
                        out.add(v.name)
                        changed = True
    return out


def _bodies_on_path(chain: _Chain) -> List[Body]:
    """The lambda bodies traversed by the chain, outermost first."""
    out = []
    for s in chain.steps:
        if isinstance(s, _MapStep):
            out.append(s.node.lam.body)
        elif isinstance(s, _WaccStep):
            out.append(s.node.lam.body)
    return out


def _level0_taint(chain: _Chain) -> Set[str]:
    """Names (along the chain) data-dependent on the level-0 iteration."""
    m0 = chain.map_steps[0].node
    dep = {p.name for p in m0.lam.params[: len(m0.arrs)]}
    for body in _bodies_on_path(chain):
        dep = _dependents(body, dep)
        # Propagate into nested map element params whose arrays are tainted.
        for stm in body.stms:
            if isinstance(stm.exp, Map):
                for a, p in zip(stm.exp.arrs, stm.exp.lam.params):
                    if a.name in dep:
                        dep.add(p.name)
    return dep


def _iota_driven(step: _MapStep, chain: Optional[_Chain] = None) -> bool:
    """Does this level iterate over an ``iota`` (so the element value equals
    the iteration index)?  The defining statement may live in any enclosing
    body along the chain."""
    arr = step.node.arrs[0]
    candidates = [step.parent_body]
    if chain is not None:
        candidates.extend(_bodies_on_path(chain))
    for body in candidates:
        for stm in body.stms:
            if len(stm.pat) == 1 and stm.pat[0].name == arr.name:
                return isinstance(stm.exp, Iota)
    return False


def _rewritable(chain: _Chain) -> bool:
    maps = chain.map_steps
    upd = chain.upd
    taint = _level0_taint(chain)
    if any(isinstance(a, Var) and a.name in taint for a in upd.idx):
        return False
    # Index atoms must be free of the whole nest, or the first element param
    # of an iota-driven inner map level.
    bound: Set[str] = set()
    param_level: Dict[str, int] = {}
    for lvl, ms in enumerate(maps):
        m = ms.node
        for j, p in enumerate(m.lam.params):
            bound.add(p.name)
            if j == 0:
                param_level[p.name] = lvl
    for body in _bodies_on_path(chain):
        for s in body.stms:
            for v in s.pat:
                bound.add(v.name)
    for a in upd.idx:
        if not isinstance(a, Var) or a.name not in bound:
            continue
        lvl = param_level.get(a.name)
        if lvl is None or lvl == 0 or not is_integral(a.type):
            return False
        if not _iota_driven(maps[lvl], chain):
            return False
    return True


# ---------------------------------------------------------------------------
# Stripping the accumulator out of the chain
# ---------------------------------------------------------------------------


def _strip(chain: _Chain) -> Exp:
    """Rebuild the chain's level-0 map without the accumulator; the update
    value becomes a trailing (nested) result array."""
    upd = chain.upd
    et = elem_type(upd.v.type)

    def rebuild_step(si: int):
        """Returns (replacement Stm for this step's slot, extra Var), or for
        level 0 the rebuilt Map expression itself."""
        step = chain.steps[si]
        if isinstance(step, _UpdStep):
            extra = Var(fresh("contrib"), upd.v.type)
            return Stm((extra,), AtomExp(upd.v)), extra
        if isinstance(step, _MapStep):
            m = step.node
            pos = step.acc_pos
            acc_param = m.lam.params[len(m.arrs) + pos]
            inner_stm, inner_extra = rebuild_step(si + 1)
            stms = list(m.lam.body.stms)
            stms[chain.steps[si + 1].stm_idx] = inner_stm
            res = list(m.lam.body.result)
            res.pop(pos)
            res.append(inner_extra)
            new_params = tuple(p for p in m.lam.params if p.name != acc_param.name)
            new_accs = tuple(a for j, a in enumerate(m.accs) if j != pos)
            new_map = Map(
                Lambda(new_params, Body(tuple(stms), tuple(res))), m.arrs, new_accs
            )
            if si == 0:
                return new_map, None
            extra = Var(fresh("vs"), with_rank(et, rank_of(inner_extra.type) + 1))
            new_pat = list(step.stm.pat)
            new_pat.pop(pos)
            new_pat.append(extra)
            return Stm(tuple(new_pat), new_map), extra
        assert isinstance(step, _WaccStep)
        w = step.node
        inner_stm, inner_extra = rebuild_step(si + 1)
        stms = list(w.lam.body.stms)
        stms[chain.steps[si + 1].stm_idx] = inner_stm
        res = list(w.lam.body.result)
        res.pop(step.res_pos)
        res.append(inner_extra)
        new_w = WithAcc(w.arrs, Lambda(w.lam.params, Body(tuple(stms), tuple(res))))
        extra = Var(fresh("vs"), inner_extra.type)
        new_pat = list(step.stm.pat)
        new_pat.pop(step.res_pos)
        new_pat.append(extra)
        return Stm(tuple(new_pat), new_w), extra

    new_map, _ = rebuild_step(0)
    return new_map


# ---------------------------------------------------------------------------
# Rewrites
# ---------------------------------------------------------------------------


def _rewrite_reduce(stm: Stm, chain: _Chain, b: Builder) -> None:
    maps = chain.map_steps
    depth = len(maps)
    upd = chain.upd
    stripped = _strip(chain)

    pos0 = maps[0].acc_pos
    new_pat = list(stm.pat)
    acc_out = new_pat.pop(pos0)
    V = Var(fresh("V"), with_rank(elem_type(upd.v.type), rank_of(upd.v.type) + depth))
    new_pat.append(V)
    b.stms.append(Stm(tuple(new_pat), stripped))

    from ..core.adjoint import sum_leading_axis

    s = sum_leading_axis(b, V)

    acc_in = maps[0].node.accs[pos0]
    idx_map: Dict[str, Atom] = {}

    # Remaining index space: one axis of ``s`` per inner map level, in nest
    # order; if the update indexes exactly those axes in order, the whole
    # accumulation collapses to one whole-array add.
    inner_params = [
        maps[lvl].node.lam.params[0].name for lvl in range(1, depth)
    ]
    idx_names = [a.name if isinstance(a, Var) else None for a in upd.idx]
    if depth >= 1 and idx_names == inner_params:
        out_acc = b.upd_acc(acc_in, (), s, acc_out.name)
        b.stms.append(Stm((acc_out,), AtomExp(out_acc)))
        return

    def rebuild(level: int, sub, acc_v: Var, bb: Builder) -> Var:
        if level == depth:
            idx = tuple(
                idx_map.get(a.name, a) if isinstance(a, Var) else a for a in upd.idx
            )
            return bb.upd_acc(acc_v, idx, sub, acc_v.name)
        n = bb.emit1(Size(sub), "n")
        it = bb.emit1(Iota(n), "is")
        q = Var(fresh("q"), I64)
        accp = Var(fresh("acc"), acc_v.type)
        for p in maps[level].node.lam.params[: len(maps[level].node.arrs)]:
            idx_map[p.name] = q
        ib = Builder()
        row = ib.index(sub, (q,), "row")
        out = rebuild(level + 1, row, accp, ib)
        lam = Lambda((q, accp), ib.finish([out]))
        (res,) = bb.map(lam, [it], [acc_v], names=["acc"])
        return res

    if depth == 1:
        out_acc = b.upd_acc(acc_in, tuple(upd.idx), s, acc_out.name)
    else:
        out_acc = rebuild(1, s, acc_in, b)
    b.stms.append(Stm((acc_out,), AtomExp(out_acc)))


def _rewrite_hist(stm: Stm, chain: _Chain, b: Builder) -> bool:
    maps = chain.map_steps
    if len(maps) != 1 or len(chain.steps) != 2:
        return False
    e = maps[0].node
    pos = maps[0].acc_pos
    upd = chain.upd
    if len(upd.idx) != 1:
        return False
    acc_t = e.accs[pos].type
    if rank_of(upd.v.type) != acc_t.rank - 1:
        return False
    taint = _level0_taint(chain)
    iv = upd.idx[0]
    if not (isinstance(iv, Var) and iv.name in taint):
        return False
    lam = e.lam
    acc_param = lam.params[len(e.arrs) + pos]
    ivar = Var(fresh("hidx"), I64)
    vvar = Var(fresh("hval"), upd.v.type)
    stms: List[Stm] = []
    upd_idx = chain.steps[1].stm_idx
    for i, s in enumerate(lam.body.stms):
        if i == upd_idx:
            if elem_type(iv.type) is not I64:
                stms.append(Stm((ivar,), Cast(iv, I64)))
            else:
                stms.append(Stm((ivar,), AtomExp(iv)))
            stms.append(Stm((vvar,), AtomExp(upd.v)))
            continue
        stms.append(s)
    res = list(lam.body.result)
    res.pop(pos)
    res.extend([ivar, vvar])
    new_params = tuple(p for p in lam.params if p.name != acc_param.name)
    new_accs = tuple(a for j, a in enumerate(e.accs) if j != pos)
    stripped = Map(Lambda(new_params, Body(tuple(stms), tuple(res))), e.arrs, new_accs)

    new_pat = list(stm.pat)
    acc_out = new_pat.pop(pos)
    Ivar = Var(fresh("His"), with_rank(I64, 1))
    Vvar = Var(fresh("Hvs"), with_rank(elem_type(upd.v.type), rank_of(upd.v.type) + 1))
    new_pat.extend([Ivar, Vvar])
    b.stms.append(Stm(tuple(new_pat), stripped))

    acc_in = e.accs[pos]
    mext = b.emit1(Size(acc_in), "m")
    et = elem_type(upd.v.type)
    vrank = rank_of(upd.v.type)
    a1 = Var(fresh("a"), with_rank(et, vrank))
    a2 = Var(fresh("b"), with_rank(et, vrank))
    ab = Builder()
    ssum = ab.add(a1, a2, "s")
    addl = Lambda((a1, a2), ab.finish([ssum]))
    if vrank == 0:
        ne: Atom = const(0.0, et)
    else:
        r0 = b.index(Vvar, (const(0, I64),), "r0")
        ne = b.zeros_like(r0)
    (h,) = b.reduce_by_index(mext, addl, [ne], Ivar, [Vvar], names=["h"])
    out_acc = b.upd_acc(acc_in, (), h, acc_out.name)
    b.stms.append(Stm((acc_out,), AtomExp(out_acc)))
    return True


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _try_rewrites(stm: Stm, e: Map, parent_body: Body, b: Builder) -> bool:
    for pos in range(len(e.accs)):
        chain = _find_chain(e, pos, parent_body)
        if chain is None:
            continue
        if _rewritable(chain):
            # Identity one-level chains (upd acc[q] += s[q] over all q) are
            # already optimal; skip to avoid rewriting our own output.
            if _is_identity_chain(chain):
                continue
            _rewrite_reduce(stm, chain, b)
            return True
        if _rewrite_hist(stm, chain, b):
            return True
    return False


def _is_identity_chain(chain: _Chain) -> bool:
    """A one-level iota-driven chain whose update index is exactly the map
    parameter — the residual form our own rebuilds produce."""
    maps = chain.map_steps
    if len(maps) != 1 or len(chain.steps) != 2:
        return False
    m = maps[0].node
    if len(m.arrs) != 1 or not _iota_driven(maps[0], chain):
        return False
    upd = chain.upd
    p0 = m.lam.params[0]
    return (
        len(upd.idx) == 1
        and isinstance(upd.idx[0], Var)
        and upd.idx[0].name == p0.name
    )


def _opt_lambda(lam: Lambda, body_ctx: Body) -> Lambda:
    return Lambda(lam.params, _opt_body(lam.body))


def _opt_exp(e: Exp) -> Exp:
    if isinstance(e, Map):
        return Map(Lambda(e.lam.params, _opt_body(e.lam.body)), e.arrs, e.accs)
    if isinstance(e, Reduce):
        return Reduce(Lambda(e.lam.params, _opt_body(e.lam.body)), e.nes, e.arrs)
    if isinstance(e, Scan):
        return Scan(Lambda(e.lam.params, _opt_body(e.lam.body)), e.nes, e.arrs)
    if isinstance(e, ReduceByIndex):
        return ReduceByIndex(e.num_bins, Lambda(e.lam.params, _opt_body(e.lam.body)), e.nes, e.inds, e.vals)
    if isinstance(e, Loop):
        return Loop(e.params, e.inits, e.ivar, e.n, _opt_body(e.body), e.stripmine, e.checkpoint)
    if isinstance(e, WhileLoop):
        return WhileLoop(e.params, e.inits, Lambda(e.cond.params, _opt_body(e.cond.body)), _opt_body(e.body), e.bound)
    if isinstance(e, If):
        return If(e.cond, _opt_body(e.then), _opt_body(e.els))
    if isinstance(e, WithAcc):
        return WithAcc(e.arrs, Lambda(e.lam.params, _opt_body(e.lam.body)))
    return e


def _opt_body(body: Body) -> Body:
    b = Builder()
    for stm in body.stms:
        e = stm.exp
        # Top-down: hoisting at the outermost invariant level sums over the
        # biggest dimension; later rounds revisit what remains inside.
        if isinstance(e, Map) and e.accs and _try_rewrites(stm, e, body, b):
            continue
        e = _opt_exp(e)
        if isinstance(e, Map) and e.accs and _try_rewrites(stm, e, body, b):
            continue
        b.stms.append(Stm(stm.pat, e))
    return b.finish(body.result)


def acc_opt_fun(fun: Fun, rounds: int = 6) -> Fun:
    """Apply the accumulator rewrites to a fixed point, simplifying between
    rounds so newly-exposed patterns fire.

    Only the AD-safe passes run between rounds: acc_opt output may be
    differentiated again (``hessian_diag``'s jvp-of-vjp), and the fusion
    pass's redomap shapes would break both the chain recognition here and
    the AD rules downstream.  Callers that only execute the result fuse it
    at ``Compiled`` construction instead.
    """
    from .pipeline import AD_SAFE_PASSES, optimize_fun

    for _ in range(rounds):
        prev = fun
        fun = Fun(fun.name, fun.params, _opt_body(fun.body))
        fun = optimize_fun(fun, passes=AD_SAFE_PASSES)
        if fun == prev:
            break
    return fun
