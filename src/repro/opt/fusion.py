"""SOAC fusion engine.

The paper notes its AD rules were "tuned to preserve fusion opportunities";
this pass realises them.  Covered cases, all on producer ``map``s with no
accumulators whose results have exactly one consumer statement:

* **vertical map→map** — the producer is inlined into the consumer's element
  function, eliminating the intermediate arrays;
* **vertical map→reduce / map→scan / map→hist** — the producer's element
  function is folded into the (single-operand) consumer's operator, yielding
  a *redomap*-shaped SOAC: a ``(1+m) -> 1`` lambda of the form
  ``\\acc x.. -> acc `op` g(x..)``.  These shapes are accepted by the
  typechecker, recognised by the executors
  (``ir.analysis.recognize_redomap_lambda``) so the bulk ufunc fast paths
  survive fusion, and split back into ``map`` + canonical operator by
  ``unfuse_fun`` before AD (whose reduce/scan/hist rules assume associative
  operators);
* **horizontal map‖map** — sibling maps over a witnessed-equal extent (they
  share at least one array argument) merge into one multi-result map.

Safety conditions per case: no accumulators on the producer, a single
consumer statement, results consumed only in element-array positions
(``arrs``/``vals`` — never free in the consumer lambda, its neutral
elements, or its index array), and — for the redomap cases — the fused
operator must round-trip through ``recognize_redomap_lambda`` so it stays
both fast and un-fusable.  Applied bottom-up and to a fixed point by the
pass pipeline driver.

Cost gating (``REPRO_FUSE_COST``)
---------------------------------

Each candidate fusion is additionally gated by the static cost model
(``ir.cost_model.fusion_wins``): the fused statement must be predicted to
carry less total work + memory traffic than the pair it replaces.  Modes:

* ``on`` (default) — cost-guided: a candidate that the estimator predicts
  to be a regression is skipped (counted in
  ``fusion_stats()["cost_rejected"]``);
* ``always`` — fuse every legal candidate (the pre-cost-model monotone
  behaviour; the A8 ablation baseline);
* ``off`` — disable the pass entirely (equivalent to
  ``REPRO_OPT_PASSES=-fuse``, kept as a one-knob ablation convenience).

Because the engine already requires single-use producers, the gate accepts
every fusion the monotone engine would perform on real programs — guided
and monotone decisions are bitwise-identical there — and exists to keep
that true by construction as the engine grows more speculative cases.
"""
from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

from ..ir.analysis import recognize_redomap_lambda
from ..ir.cost_model import fusion_wins
from ..ir.ast import (
    BinOp,
    Body,
    Exp,
    Fun,
    If,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Scan,
    Stm,
    Var,
    WhileLoop,
    WithAcc,
)
from ..ir.traversal import (
    free_vars,
    free_vars_exp,
    inline_lambda,
    rename_var,
)
from ..ir.types import rank_of, with_rank
from ..obs import metrics as _obs_metrics
from ..util import ADError, BoundedLRU, fresh

__all__ = [
    "fuse_fun",
    "fuse_body",
    "unfuse_fun",
    "unfuse_body",
    "fuse_cost_mode",
    "fusion_stats",
    "reset_fusion_stats",
]


def fuse_cost_mode() -> str:
    """``REPRO_FUSE_COST``: ``on`` (cost-guided, default), ``always``
    (monotone — fuse every legal candidate), or ``off`` (pass disabled)."""
    mode = os.environ.get("REPRO_FUSE_COST", "on").lower()
    return mode if mode in ("on", "off", "always") else "on"


#: Fusion decision counters: candidates that fused (by direction) and
#: candidates the cost gate rejected.  Reset via ``reset_fusion_stats``.
FUSE_STATS = _obs_metrics.counter_group(
    "fusion", {"vertical": 0, "horizontal": 0, "cost_rejected": 0}
)


def fusion_stats() -> Dict[str, int]:
    return dict(FUSE_STATS)


def reset_fusion_stats() -> None:
    FUSE_STATS.reset()
    _REJECTED_SEEN.clear()


_obs_metrics.register_source("fusion", fusion_stats, reset_fusion_stats)


#: Candidates the gate already rejected, by structural identity — the
#: fixed-point driver and the pipeline's rounds re-discover (and re-reject)
#: the same pair every scan, which must not inflate ``cost_rejected``.
_REJECTED_SEEN = BoundedLRU()
_REJECTED_SEEN_CAP = 1024


def _gate(before: List[Stm], after: List[Stm], guided: bool) -> bool:
    """Apply the cost gate to one candidate rewrite (monotone mode skips)."""
    if not guided or fusion_wins(before, after):
        return True
    key = (tuple(before), tuple(after))
    if _REJECTED_SEEN.get(key) is None:
        _REJECTED_SEEN.put(key, True, _REJECTED_SEEN_CAP)
        FUSE_STATS["cost_rejected"] += 1
    return False


def _uses_in_body(body: Body) -> Dict[str, int]:
    """Total number of syntactic uses of each name in a body (recursive)."""
    counts: Dict[str, int] = {}

    def exp(e: Exp) -> None:
        for v in free_vars_exp(e).values():
            counts[v.name] = counts.get(v.name, 0) + 1

    for stm in body.stms:
        exp(stm.exp)
    for a in body.result:
        if isinstance(a, Var):
            counts[a.name] = counts.get(a.name, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# Vertical fusion
# ---------------------------------------------------------------------------


def _splice(
    prod_stm: Stm,
    cons_lam: Lambda,
    cons_arrs: Tuple[Var, ...],
    n_lead: int,
) -> Optional[Tuple[Tuple[Var, ...], Body, Tuple[Var, ...]]]:
    """Inline a producer map into a consumer element function.

    ``cons_lam``'s parameters are ``n_lead`` leading non-element parameters
    (reduce/scan/hist accumulators) followed by one element parameter per
    array of ``cons_arrs`` and, optionally, trailing extras (map
    accumulators).  Returns ``(params, body, arrs)`` for the fused lambda:
    consumer element parameters fed by the producer are replaced by the
    producer's (spliced, refreshed) results, driven by the producer's own
    arrays and parameters.
    """
    prod = prod_stm.exp
    assert isinstance(prod, Map) and not prod.accs
    if not prod.arrs:
        return None
    produced = {v.name: i for i, v in enumerate(prod_stm.pat)}
    if not any(a.name in produced for a in cons_arrs):
        return None
    pparams = tuple(rename_var(p) for p in prod.lam.params)
    pbody = inline_lambda(prod.lam, pparams)
    lead = tuple(rename_var(p) for p in cons_lam.params[:n_lead])
    elem_params = cons_lam.params[n_lead:n_lead + len(cons_arrs)]
    extra = tuple(rename_var(p) for p in cons_lam.params[n_lead + len(cons_arrs):])
    args: List = list(lead)
    keep_arrs: List[Var] = []
    keep_params: List[Var] = []
    for a, p in zip(cons_arrs, elem_params):
        if a.name in produced:
            args.append(pbody.result[produced[a.name]])
        else:
            np_ = rename_var(p)
            keep_arrs.append(a)
            keep_params.append(np_)
            args.append(np_)
    args.extend(extra)
    try:
        cbody = inline_lambda(cons_lam, args)
    except TypeError:
        # A producer result was a constant consumed in a Var-only position.
        return None
    params = lead + pparams + tuple(keep_params) + extra
    body = Body(pbody.stms + cbody.stms, cbody.result)
    return params, body, tuple(prod.arrs) + tuple(keep_arrs)


def _fuse_vertical(prod_stm: Stm, cons: Exp) -> Optional[Exp]:
    """The fused consumer expression, or None if the pair cannot fuse."""
    if isinstance(cons, Map):
        sp = _splice(prod_stm, cons.lam, cons.arrs, 0)
        if sp is None:
            return None
        params, body, arrs = sp
        return Map(Lambda(params, body), arrs, cons.accs)
    if isinstance(cons, (Reduce, Scan)):
        if len(cons.nes) != 1:
            return None
        sp = _splice(prod_stm, cons.lam, cons.arrs, 1)
        if sp is None:
            return None
        params, body, arrs = sp
        lam = Lambda(params, body)
        # Gate: the fused operator must stay recognisable so the executors
        # keep their bulk fast path and unfuse_fun can split it before AD.
        if recognize_redomap_lambda(lam) is None:
            return None
        return Reduce(lam, cons.nes, arrs) if isinstance(cons, Reduce) else Scan(
            lam, cons.nes, arrs
        )
    if isinstance(cons, ReduceByIndex):
        if len(cons.nes) != 1:
            return None
        sp = _splice(prod_stm, cons.lam, cons.vals, 1)
        if sp is None:
            return None
        params, body, vals = sp
        lam = Lambda(params, body)
        if recognize_redomap_lambda(lam) is None:
            return None
        return ReduceByIndex(cons.num_bins, lam, cons.nes, cons.inds, vals)
    return None


def _consumable_positions(e: Exp) -> Optional[Tuple[Var, ...]]:
    """The element-array variables of a fusable consumer (None otherwise)."""
    if isinstance(e, Map):
        return e.arrs
    if isinstance(e, (Reduce, Scan)):
        return e.arrs
    if isinstance(e, ReduceByIndex):
        return e.vals
    return None


def _forbidden_names(e: Exp) -> Set[str]:
    """Names a producer result may NOT occupy in a fusable consumer: every
    position other than the element arrays (free in the lambda, neutral
    elements, accumulators, index array, bin count)."""
    out: Set[str] = set(free_vars(e.lam))
    if isinstance(e, Map):
        out |= {a.name for a in e.accs}
        return out
    out |= {a.name for a in e.nes if isinstance(a, Var)}
    if isinstance(e, ReduceByIndex):
        out.add(e.inds.name)
        if isinstance(e.num_bins, Var):
            out.add(e.num_bins.name)
    return out


def _vertical_step(stms: List[Stm], uses: Dict[str, int], guided: bool) -> bool:
    """Perform one vertical fusion in ``stms`` (in place); True if fused."""
    for i, stm in enumerate(stms):
        e = stm.exp
        if not isinstance(e, Map) or e.accs or not e.arrs:
            continue
        if not all(uses.get(v.name, 0) == 1 for v in stm.pat):
            continue
        names = {v.name for v in stm.pat}
        consumer_idx = None
        for j in range(i + 1, len(stms)):
            used = {v.name for v in free_vars_exp(stms[j].exp).values()}
            if used & names:
                if consumer_idx is not None:
                    consumer_idx = None
                    break
                consumer_idx = j
        if consumer_idx is None:
            continue
        ce = stms[consumer_idx].exp
        arrs = _consumable_positions(ce)
        if arrs is None:
            continue
        # Results may only be consumed as element arrays — never free in the
        # consumer's lambdas, neutral elements, index array or bin count —
        # and each at most one array position (conservative).
        if _forbidden_names(ce) & names:
            continue
        if sum(1 for a in arrs if a.name in names) != len(names):
            continue
        fused = _fuse_vertical(stm, ce)
        if fused is None:
            continue
        new_stm = Stm(stms[consumer_idx].pat, fused)
        if not _gate([stm, stms[consumer_idx]], [new_stm], guided):
            continue
        stms[consumer_idx] = new_stm
        del stms[i]
        FUSE_STATS["vertical"] += 1
        return True
    return False


# ---------------------------------------------------------------------------
# Horizontal fusion
# ---------------------------------------------------------------------------


def _horizontal_step(stms: List[Stm], guided: bool) -> bool:
    """Merge one pair of sibling maps over a shared array (in place)."""
    for i, s1 in enumerate(stms):
        e1 = s1.exp
        if not isinstance(e1, Map) or e1.accs:
            continue
        names1 = {v.name for v in s1.pat}
        arrs1 = {a.name for a in e1.arrs}
        between: Set[str] = set()
        for j in range(i + 1, len(stms)):
            s2 = stms[j]
            e2 = s2.exp
            fv2 = set(free_vars_exp(s2.exp))
            if (
                isinstance(e2, Map)
                and not e2.accs
                and arrs1 & {a.name for a in e2.arrs}  # extent witness
                and not (fv2 & names1)  # not a vertical candidate
                and not (fv2 & between)  # movable up to position i
            ):
                p2 = tuple(rename_var(p) for p in e2.lam.params)
                b2 = inline_lambda(e2.lam, p2)
                b1 = e1.lam.body
                lam = Lambda(
                    tuple(e1.lam.params) + p2,
                    Body(b1.stms + b2.stms, b1.result + b2.result),
                )
                merged = Stm(s1.pat + s2.pat, Map(lam, e1.arrs + e2.arrs))
                if not _gate([s1, s2], [merged], guided):
                    between.update(v.name for v in s2.pat)
                    continue
                stms[i] = merged
                del stms[j]
                FUSE_STATS["horizontal"] += 1
                return True
            between.update(v.name for v in s2.pat)
    return False


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def fuse_body(body: Body, mode: Optional[str] = None) -> Body:
    mode = mode or fuse_cost_mode()
    if mode == "off":
        return body
    guided = mode == "on"
    stms = list(body.stms)
    changed = True
    while changed:
        uses = _uses_in_body(Body(tuple(stms), body.result))
        changed = _vertical_step(stms, uses, guided)
        if not changed:
            changed = _horizontal_step(stms, guided)
    out: List[Stm] = []
    for stm in stms:
        out.append(Stm(stm.pat, _fuse_exp(stm.exp)))
    return Body(tuple(out), body.result)


def _fuse_lambda(lam: Lambda) -> Lambda:
    return Lambda(lam.params, fuse_body(lam.body))


def _fuse_exp(e: Exp) -> Exp:
    if isinstance(e, Map):
        return Map(_fuse_lambda(e.lam), e.arrs, e.accs)
    if isinstance(e, Reduce):
        return Reduce(_fuse_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, Scan):
        return Scan(_fuse_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, ReduceByIndex):
        return ReduceByIndex(e.num_bins, _fuse_lambda(e.lam), e.nes, e.inds, e.vals)
    if isinstance(e, Loop):
        return Loop(e.params, e.inits, e.ivar, e.n, fuse_body(e.body), e.stripmine, e.checkpoint)
    if isinstance(e, WhileLoop):
        return WhileLoop(e.params, e.inits, _fuse_lambda(e.cond), fuse_body(e.body), e.bound)
    if isinstance(e, If):
        return If(e.cond, fuse_body(e.then), fuse_body(e.els))
    if isinstance(e, WithAcc):
        return WithAcc(e.arrs, _fuse_lambda(e.lam))
    return e


def fuse_fun(fun: Fun) -> Fun:
    if fuse_cost_mode() == "off":
        return fun
    return Fun(fun.name, fun.params, fuse_body(fun.body))


# ---------------------------------------------------------------------------
# Unfusion (before AD)
# ---------------------------------------------------------------------------


def _is_trivial_map_part(mlam: Lambda) -> bool:
    """True for ``\\x -> x`` map parts (a canonical binop operator)."""
    return (
        not mlam.body.stms
        and len(mlam.params) == 1
        and isinstance(mlam.body.result[0], Var)
        and mlam.body.result[0].name == mlam.params[0].name
    )


def _unfuse_redomap(stm: Stm) -> List[Stm]:
    """Split a redomap-shaped reduce/scan/hist back into map + canonical op."""
    e = stm.exp
    if not isinstance(e, (Reduce, Scan, ReduceByIndex)) or len(e.nes) != 1:
        return [stm]
    arrs = e.vals if isinstance(e, ReduceByIndex) else e.arrs
    canonical = len(arrs) == 1 and len(e.lam.params) == 2
    rm = recognize_redomap_lambda(e.lam)
    if rm is None:
        if canonical:
            return [stm]
        raise ADError(
            f"AD requires canonical (k+k) -> k {type(e).__name__} operators; "
            f"this ({len(e.nes)}+{len(arrs)}) -> {len(e.nes)} operator is not "
            "redomap-shaped (\\acc x.. -> acc `op` g(x..)), so it cannot be "
            "split into map + canonical operator — rewrite it that way to "
            "differentiate it"
        )
    op, mlam = rm
    if canonical and _is_trivial_map_part(mlam):
        return [stm]
    v = mlam.body.result[0]
    et = v.type
    tvar = Var(fresh("fusx"), with_rank(et, rank_of(et) + 1))
    map_stm = Stm((tvar,), Map(mlam, arrs))
    acc = Var(fresh("fusa"), et)
    x = Var(fresh("fusb"), et)
    r = Var(fresh("fusr"), et)
    op_lam = Lambda((acc, x), Body((Stm((r,), BinOp(op, acc, x)),), (r,)))
    if isinstance(e, Reduce):
        new: Exp = Reduce(op_lam, e.nes, (tvar,))
    elif isinstance(e, Scan):
        new = Scan(op_lam, e.nes, (tvar,))
    else:
        new = ReduceByIndex(e.num_bins, op_lam, e.nes, e.inds, (tvar,))
    return [map_stm, Stm(stm.pat, new)]


def unfuse_body(body: Body) -> Body:
    out: List[Stm] = []
    for stm in body.stms:
        stm = Stm(stm.pat, _unfuse_exp(stm.exp))
        out.extend(_unfuse_redomap(stm))
    return Body(tuple(out), body.result)


def _unfuse_lambda(lam: Lambda) -> Lambda:
    return Lambda(lam.params, unfuse_body(lam.body))


def _unfuse_exp(e: Exp) -> Exp:
    if isinstance(e, Map):
        return Map(_unfuse_lambda(e.lam), e.arrs, e.accs)
    if isinstance(e, Reduce):
        return Reduce(_unfuse_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, Scan):
        return Scan(_unfuse_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, ReduceByIndex):
        return ReduceByIndex(e.num_bins, _unfuse_lambda(e.lam), e.nes, e.inds, e.vals)
    if isinstance(e, Loop):
        return Loop(e.params, e.inits, e.ivar, e.n, unfuse_body(e.body), e.stripmine, e.checkpoint)
    if isinstance(e, WhileLoop):
        return WhileLoop(e.params, e.inits, _unfuse_lambda(e.cond), unfuse_body(e.body), e.bound)
    if isinstance(e, If):
        return If(e.cond, unfuse_body(e.then), unfuse_body(e.els))
    if isinstance(e, WithAcc):
        return WithAcc(e.arrs, _unfuse_lambda(e.lam))
    return e


def unfuse_fun(fun: Fun) -> Fun:
    """Split every redomap-shaped SOAC back into ``map`` + canonical operator.

    The AD entry points run this before differentiating: the reduce/scan/
    hist rules assume canonical associative operators, which fusion's
    redomap shapes are not.  Fusion re-fuses the AD output afterwards —
    exactly the "AD preserves fusion opportunities" round trip of the paper.
    """
    return Fun(fun.name, fun.params, unfuse_body(fun.body))
