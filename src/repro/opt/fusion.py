"""Vertical map–map fusion.

The paper notes its AD rules were "tuned to preserve fusion opportunities";
this pass realises the simplest and most profitable of them: a ``map`` whose
result arrays are consumed *only* by a single later ``map`` (over the same
extent, no accumulators in the producer) is inlined into the consumer,
eliminating the intermediate arrays.  Applied bottom-up and to a fixed point
by the pipeline driver.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.ast import (
    Body,
    Exp,
    Fun,
    If,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Scan,
    Stm,
    Var,
    WhileLoop,
    WithAcc,
)
from ..ir.traversal import free_vars_exp, refresh_body, subst
from ..util import fresh

__all__ = ["fuse_fun", "fuse_body"]


def _uses_in_body(body: Body) -> Dict[str, int]:
    """Total number of syntactic uses of each name in a body (recursive)."""
    counts: Dict[str, int] = {}

    def exp(e: Exp) -> None:
        for v in free_vars_exp(e).values():
            counts[v.name] = counts.get(v.name, 0) + 1

    for stm in body.stms:
        exp(stm.exp)
    for a in body.result:
        if isinstance(a, Var):
            counts[a.name] = counts.get(a.name, 0) + 1
    return counts


def _try_fuse(prod_stm: Stm, cons: Map) -> Optional[Map]:
    """Fuse producer map results that the consumer maps over."""
    prod = prod_stm.exp
    assert isinstance(prod, Map)
    if prod.accs:
        return None
    produced = {v.name: i for i, v in enumerate(prod_stm.pat)}
    hit = [a.name in produced for a in cons.arrs]
    if not any(hit):
        return None
    # Splice: consumer params for fused arrays are bound to the producer's
    # results; the producer's body is inlined (refreshed) at the head of the
    # consumer lambda, driven by the producer's own arrays.
    new_arrs: List[Var] = list(prod.arrs)
    new_params: List[Var] = list(prod.lam.params)
    pbody = refresh_body(
        prod.lam.body, {}
    )
    # Map the producer's (refreshed) results to names.
    mapping = {}
    stms: List[Stm] = list(pbody.stms)
    keep_arrs: List[Var] = []
    keep_params: List[Var] = []
    for a, p in zip(cons.arrs, cons.lam.params):
        if a.name in produced:
            mapping[p.name] = pbody.result[produced[a.name]]
        else:
            keep_arrs.append(a)
            keep_params.append(p)
    cons_body = subst(cons.lam.body, mapping)
    new_body = Body(tuple(stms) + tuple(cons_body.stms), cons_body.result)
    params = tuple(new_params) + tuple(keep_params) + tuple(
        cons.lam.params[len(cons.arrs):]
    )
    arrs = tuple(new_arrs) + tuple(keep_arrs)
    return Map(Lambda(params, new_body), arrs, cons.accs)


def fuse_body(body: Body) -> Body:
    uses = _uses_in_body(body)
    stms = list(body.stms)
    # Index producers: single-use map outputs.
    changed = True
    while changed:
        changed = False
        for i, stm in enumerate(stms):
            e = stm.exp
            if not isinstance(e, Map) or e.accs:
                continue
            # All results used exactly once, all by one later map statement.
            if not all(uses.get(v.name, 0) == 1 for v in stm.pat):
                continue
            consumer_idx = None
            names = {v.name for v in stm.pat}
            for j in range(i + 1, len(stms)):
                used = {v.name for v in free_vars_exp(stms[j].exp).values()}
                if used & names:
                    if consumer_idx is not None:
                        consumer_idx = None
                        break
                    consumer_idx = j
            if consumer_idx is None:
                continue
            ce = stms[consumer_idx].exp
            if not isinstance(ce, Map):
                continue
            if not names.issuperset({a.name for a in ce.arrs} & names):
                continue
            # Results may only be consumed as map *arrays*, not free vars.
            from ..ir.traversal import free_vars

            lam_fvs = set(free_vars(ce.lam))
            if lam_fvs & names:
                continue
            fused = _try_fuse(stm, ce)
            if fused is None:
                continue
            stms[consumer_idx] = Stm(stms[consumer_idx].pat, fused)
            del stms[i]
            uses = _uses_in_body(Body(tuple(stms), body.result))
            changed = True
            break
    # Recurse into nested bodies.
    out: List[Stm] = []
    for stm in stms:
        out.append(Stm(stm.pat, _fuse_exp(stm.exp)))
    return Body(tuple(out), body.result)


def _fuse_lambda(lam: Lambda) -> Lambda:
    return Lambda(lam.params, fuse_body(lam.body))


def _fuse_exp(e: Exp) -> Exp:
    if isinstance(e, Map):
        return Map(_fuse_lambda(e.lam), e.arrs, e.accs)
    if isinstance(e, Reduce):
        return Reduce(_fuse_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, Scan):
        return Scan(_fuse_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, ReduceByIndex):
        return ReduceByIndex(e.num_bins, _fuse_lambda(e.lam), e.nes, e.inds, e.vals)
    if isinstance(e, Loop):
        return Loop(e.params, e.inits, e.ivar, e.n, fuse_body(e.body), e.stripmine, e.checkpoint)
    if isinstance(e, WhileLoop):
        return WhileLoop(e.params, e.inits, _fuse_lambda(e.cond), fuse_body(e.body), e.bound)
    if isinstance(e, If):
        return If(e.cond, fuse_body(e.then), fuse_body(e.els))
    if isinstance(e, WithAcc):
        return WithAcc(e.arrs, _fuse_lambda(e.lam))
    return e


def fuse_fun(fun: Fun) -> Fun:
    return Fun(fun.name, fun.params, fuse_body(fun.body))
