"""Common-subexpression elimination (cheap, pure expressions only).

CSE within and across lexical scopes (inner scopes may reuse outer bindings,
never the reverse).  Only cheap pure expressions are candidates — scalar
ops, indexing, sizes, constructors — which is where AD-generated code
duplicates work (the re-executed forward sweeps and the partial-derivative
lambdas share many subexpressions with the return sweep of the same scope).
"""
from __future__ import annotations

from typing import Dict, Optional

from ..ir.ast import (
    AtomExp,
    Atom,
    BinOp,
    Body,
    Cast,
    Exp,
    Fun,
    If,
    Index,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Select,
    Size,
    Stm,
    UnOp,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from ..ir.traversal import subst_exp

__all__ = ["cse_fun", "cse_body"]

_CHEAP = (UnOp, BinOp, Select, Cast, Index, Size, Iota, Replicate, ZerosLike, Reverse)

#: Commutative binops for key normalisation.
_COMM = {"add", "mul", "min", "max", "and", "or", "eq", "ne"}


def _key(e: Exp):
    if isinstance(e, BinOp) and e.op in _COMM:
        ops = sorted([repr(e.x) + str(e.x.type), repr(e.y) + str(e.y.type)])
        return ("binop", e.op, ops[0], ops[1])
    return e  # frozen dataclasses hash structurally


def _cse_exp(e: Exp, table: Dict, m: Dict[str, Atom]) -> Exp:
    e = subst_exp(e, m)
    if isinstance(e, Map):
        return Map(_cse_lambda(e.lam, table), e.arrs, e.accs)
    if isinstance(e, Reduce):
        return Reduce(_cse_lambda(e.lam, table), e.nes, e.arrs)
    if isinstance(e, Scan):
        return Scan(_cse_lambda(e.lam, table), e.nes, e.arrs)
    if isinstance(e, ReduceByIndex):
        return ReduceByIndex(e.num_bins, _cse_lambda(e.lam, table), e.nes, e.inds, e.vals)
    if isinstance(e, Loop):
        # Loop bodies run many times with changing params; outer table is
        # still valid (keys reference in-scope invariant vars only).
        return Loop(e.params, e.inits, e.ivar, e.n, _cse_body(e.body, dict(table)), e.stripmine, e.checkpoint)
    if isinstance(e, WhileLoop):
        return WhileLoop(e.params, e.inits, _cse_lambda(e.cond, table), _cse_body(e.body, dict(table)), e.bound)
    if isinstance(e, If):
        return If(e.cond, _cse_body(e.then, dict(table)), _cse_body(e.els, dict(table)))
    if isinstance(e, WithAcc):
        return WithAcc(e.arrs, _cse_lambda(e.lam, table))
    return e


def _cse_lambda(lam: Lambda, table: Dict) -> Lambda:
    return Lambda(lam.params, _cse_body(lam.body, dict(table)))


def _cse_body(body: Body, table: Dict) -> Body:
    m: Dict[str, Atom] = {}
    stms = []
    for stm in body.stms:
        e = _cse_exp(stm.exp, table, m)
        if isinstance(e, _CHEAP) and len(stm.pat) == 1:
            k = _key(e)
            hit = table.get(k)
            if hit is not None:
                m[stm.pat[0].name] = hit
                continue
            table[k] = stm.pat[0]
        stms.append(Stm(stm.pat, e))
    result = tuple(m.get(a.name, a) if isinstance(a, Var) else a for a in body.result)
    return Body(tuple(stms), result)


def cse_body(body: Body) -> Body:
    return _cse_body(body, {})


def cse_fun(fun: Fun) -> Fun:
    return Fun(fun.name, fun.params, cse_body(fun.body))
