"""The ``sequential``-directive rewriter: loop strip-mining (paper §4.3).

In schedule-IR terms (``ir.schedule``) a loop scheduled
``sequential(f)·sequential`` executes its trip axis as an outer loop of
⌈n/f⌉ steps around an inner loop of ``f`` steps; the legacy ``stripmine=f``
annotation is sugar for exactly that schedule, and ``apply_schedule``
converts between the two.  This pass realises the directive: the loop is
split before reverse AD into the outer/inner pair, the body guarded by
``i < n``.  Reverse AD then checkpoints each of the two loops separately:
memory drops from O(n) to O(⌈n/f⌉ + f) loop-variant snapshots while the
forward sweep of the inner loop is re-executed once more (Fig. 4's
re-execution factor grows from 2× to (k+2)× for k levels of strip-mining).
Nesting annotations (strip-mining the produced outer loop again) gives the
k-level trade-off; with f ≈ ⁿ√m per level this approaches the logarithmic
overhead of Siskind & Pearlmutter's divide-and-conquer checkpointing.
"""
from __future__ import annotations

from ..ir.ast import (
    Body,
    Exp,
    Fun,
    If,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Scan,
    Stm,
    Var,
    WhileLoop,
    WithAcc,
)
from ..ir.builder import Builder, const
from ..ir.traversal import refresh_body
from ..ir.types import I64
from ..util import fresh

__all__ = ["stripmine_fun", "stripmine_body"]


def _loop_factor(e: Loop) -> int:
    """The strip-mine factor: the ``stripmine`` annotation, or the chunk of
    a ``sequential(f)`` schedule directive not yet converted to it."""
    if e.stripmine > 1:
        return e.stripmine
    from ..ir.schedule import Sequential

    for d in e.schedule:
        if isinstance(d, Sequential) and d.chunk > 1:
            return d.chunk
    return 0


def _rewrite_loop(stm: Stm, e: Loop, b: Builder) -> None:
    f = _loop_factor(e)
    fa = const(f, I64)
    one = const(1, I64)
    npf = b.add(e.n, b.sub(fa, one, "fm1"), "npf")
    no = b.div(npf, fa, "no")  # ⌈n/f⌉ (integer division)

    io = Var(fresh("io"), I64)
    ii = Var(fresh("ii"), I64)
    inner_params = tuple(Var(fresh(p.name), p.type) for p in e.params)

    ib = Builder()
    base = ib.mul(io, fa, "base")
    gi = ib.add(base, ii, "gi")
    valid = ib.binop("lt", gi, e.n, "valid")
    # Guarded body: only the valid iterations execute (perfectly nested if).
    then = refresh_body(
        e.body,
        {**{p.name: np for p, np in zip(e.params, inner_params)}, e.ivar.name: gi},
    )
    els = Body((), tuple(inner_params))
    vs = ib.if_(valid, then, els, names=[p.name for p in e.params])
    inner_body = ib.finish(tuple(vs))
    inner = Loop(inner_params, tuple(e.params), ii, fa, inner_body, 0, e.checkpoint)

    ob = Builder()
    ovs = ob.emit(inner, [p.name for p in e.params])
    outer_body = ob.finish(tuple(ovs))
    outer = Loop(e.params, e.inits, io, no, outer_body, 0, e.checkpoint)
    b.emit_into(stm.pat, outer)


def _rw_lambda(lam: Lambda) -> Lambda:
    return Lambda(lam.params, stripmine_body(lam.body))


def _rw_exp(e: Exp) -> Exp:
    if isinstance(e, Map):
        return Map(_rw_lambda(e.lam), e.arrs, e.accs)
    if isinstance(e, Reduce):
        return Reduce(_rw_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, Scan):
        return Scan(_rw_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, ReduceByIndex):
        return ReduceByIndex(e.num_bins, _rw_lambda(e.lam), e.nes, e.inds, e.vals)
    if isinstance(e, Loop):
        return Loop(e.params, e.inits, e.ivar, e.n, stripmine_body(e.body), e.stripmine, e.checkpoint)
    if isinstance(e, WhileLoop):
        return WhileLoop(e.params, e.inits, _rw_lambda(e.cond), stripmine_body(e.body), e.bound)
    if isinstance(e, If):
        return If(e.cond, stripmine_body(e.then), stripmine_body(e.els))
    if isinstance(e, WithAcc):
        return WithAcc(e.arrs, _rw_lambda(e.lam))
    return e


def stripmine_body(body: Body) -> Body:
    b = Builder()
    for stm in body.stms:
        e = _rw_exp(stm.exp)
        if isinstance(e, Loop) and _loop_factor(e) > 1:
            _rewrite_loop(stm, e, b)
        else:
            b.emit_into(stm.pat, e)
    return b.finish(body.result)


def stripmine_fun(fun: Fun) -> Fun:
    return Fun(fun.name, fun.params, stripmine_body(fun.body))
