"""Dead-code elimination.

DCE is what realises the paper's §4.1 claim: the redundantly re-executed
forward sweeps of perfectly-nested scopes bind results that nothing in the
return sweep uses, so they are dead code and the differentiated program
carries no re-execution overhead (Fig. 2's ``xss``/``xs``/``xs'``/``x``).

Bodies are processed backwards from their result atoms.  Multi-result
``Map``/``If`` statements with partially-dead results are *shrunk* (dead
columns dropped), which is how the dead primal outputs of AD-generated maps
disappear.  Accumulator updates are handled by ordinary liveness: the
linearity discipline guarantees a live ``WithAcc`` keeps its whole update
chain alive, and a dead ``WithAcc`` result means the updates were
unobservable.
"""
from __future__ import annotations

from typing import List, Set, Tuple

from ..ir.ast import (
    Body,
    Exp,
    Fun,
    If,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Scan,
    Stm,
    Var,
    WhileLoop,
    WithAcc,
)
from ..ir.traversal import exp_atoms

__all__ = ["dce_fun", "dce_body"]


def _exp_uses(e: Exp, live: Set[str]) -> None:
    from ..ir.traversal import free_vars_exp

    for v in free_vars_exp(e).values():
        live.add(v.name)


def _dce_lambda(lam: Lambda) -> Lambda:
    return Lambda(lam.params, dce_body(lam.body))


def _dce_exp(e: Exp) -> Exp:
    """Recurse into nested bodies."""
    if isinstance(e, Map):
        return Map(_dce_lambda(e.lam), e.arrs, e.accs)
    if isinstance(e, Reduce):
        return Reduce(_dce_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, Scan):
        return Scan(_dce_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, ReduceByIndex):
        return ReduceByIndex(e.num_bins, _dce_lambda(e.lam), e.nes, e.inds, e.vals)
    if isinstance(e, Loop):
        return Loop(e.params, e.inits, e.ivar, e.n, dce_body(e.body), e.stripmine, e.checkpoint)
    if isinstance(e, WhileLoop):
        return WhileLoop(e.params, e.inits, _dce_lambda(e.cond), dce_body(e.body), e.bound)
    if isinstance(e, If):
        return If(e.cond, dce_body(e.then), dce_body(e.els))
    if isinstance(e, WithAcc):
        return WithAcc(e.arrs, _dce_lambda(e.lam))
    return e


def _shrink_map(e: Map, keep: List[bool]) -> Map:
    """Drop dead (non-accumulator) results of a Map."""
    n_acc = len(e.accs)
    body = e.lam.body
    res = list(body.result[:n_acc])
    for r, k in zip(body.result[n_acc:], keep[n_acc:]):
        if k:
            res.append(r)
    return Map(Lambda(e.lam.params, Body(body.stms, tuple(res))), e.arrs, e.accs)


def _shrink_if(e: If, keep: List[bool]) -> If:
    tres = tuple(r for r, k in zip(e.then.result, keep) if k)
    fres = tuple(r for r, k in zip(e.els.result, keep) if k)
    return If(e.cond, Body(e.then.stms, tres), Body(e.els.stms, fres))


def dce_body(body: Body) -> Body:
    live: Set[str] = {a.name for a in body.result if isinstance(a, Var)}
    out: List[Stm] = []
    for stm in reversed(body.stms):
        keep = [v.name in live for v in stm.pat]
        if not any(keep):
            continue
        e = stm.exp
        pat = stm.pat
        if not all(keep):
            # Partial liveness: shrink shrinkable expressions.
            if isinstance(e, Map) and all(keep[: len(e.accs)]):
                e = _shrink_map(e, keep)
                pat = tuple(v for v, k in zip(stm.pat, keep) if k)
            elif isinstance(e, If):
                e = _shrink_if(e, keep)
                pat = tuple(v for v, k in zip(stm.pat, keep) if k)
        e = _dce_exp(e)
        _exp_uses(e, live)
        out.append(Stm(pat, e))
    return Body(tuple(reversed(out)), body.result)


def dce_fun(fun: Fun) -> Fun:
    return Fun(fun.name, fun.params, dce_body(fun.body))
