"""While-loop bounding (paper §6.2).

Reverse AD cannot checkpoint a loop whose iteration count is statically
unknown.  Two mechanisms, both from the paper:

* an annotated bound ``n``: the while loop becomes an ``n``-iteration
  for-loop whose body is guarded by the condition (a perfectly nested
  ``if`` executing only the valid iterations);
* no annotation: an **inspector** — a slice of the loop that only counts
  iterations — runs first, and its count bounds the for-loop.  The inspector
  itself is a while loop, but it only yields an integer, so the return sweep
  never needs to differentiate it.
"""
from __future__ import annotations

from typing import List

from ..ir.ast import (
    AtomExp,
    Body,
    Exp,
    Fun,
    If,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Scan,
    Stm,
    Var,
    WhileLoop,
    WithAcc,
)
from ..ir.builder import Builder, const
from ..ir.traversal import refresh_body, refresh_lambda
from ..ir.types import I64, is_float
from ..util import fresh

__all__ = ["while_bound_fun", "while_bound_body"]


def _rewrite_while(stm: Stm, e: WhileLoop, b: Builder) -> None:
    bound = e.bound
    if bound is None:
        # Inspector: replay the loop, counting iterations.  Only the count
        # survives, so reverse AD treats the inspector as non-differentiable.
        cntp = Var(fresh("cnt"), I64)
        params = tuple(Var(fresh(p.name), p.type) for p in e.params) + (cntp,)
        ren = {p.name: np for p, np in zip(e.params, params)}
        cond = Lambda(params, refresh_body(e.cond.body, {p.name: np for p, np in zip(e.cond.params, params)}))
        ib = Builder()
        body0 = refresh_body(e.body, ren)
        ib.extend(body0.stms)
        nc = ib.add(cntp, const(1, I64), "nc")
        ibody = ib.finish(tuple(body0.result) + (nc,))
        insp = WhileLoop(params, tuple(e.inits) + (const(0, I64),), cond, ibody, None)
        outs = b.emit(insp, [p.name for p in params])
        bound = outs[-1]

    # Bounded for-loop with a guarded body.
    ivar = Var(fresh("wi"), I64)
    gb = Builder()
    cond_body = refresh_body(
        e.cond.body, {cp.name: p for cp, p in zip(e.cond.params, e.params)}
    )
    gb.extend(cond_body.stms)
    (c,) = cond_body.result
    then = refresh_body(e.body)
    els = Body((), tuple(e.params))
    vs = gb.if_(c, then, els, names=[p.name for p in e.params])
    body = gb.finish(tuple(vs))
    loop = Loop(e.params, e.inits, ivar, bound, body, 0, "iters")
    b.emit_into(stm.pat, loop)


def _rw_lambda(lam: Lambda) -> Lambda:
    return Lambda(lam.params, while_bound_body(lam.body))


def _rw_exp(e: Exp) -> Exp:
    if isinstance(e, Map):
        return Map(_rw_lambda(e.lam), e.arrs, e.accs)
    if isinstance(e, Reduce):
        return Reduce(_rw_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, Scan):
        return Scan(_rw_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, ReduceByIndex):
        return ReduceByIndex(e.num_bins, _rw_lambda(e.lam), e.nes, e.inds, e.vals)
    if isinstance(e, Loop):
        return Loop(e.params, e.inits, e.ivar, e.n, while_bound_body(e.body), e.stripmine, e.checkpoint)
    if isinstance(e, If):
        return If(e.cond, while_bound_body(e.then), while_bound_body(e.els))
    if isinstance(e, WithAcc):
        return WithAcc(e.arrs, _rw_lambda(e.lam))
    return e


def while_bound_body(body: Body) -> Body:
    b = Builder()
    for stm in body.stms:
        e = stm.exp
        if isinstance(e, WhileLoop):
            # Bound only loops carrying float state (those the return sweep
            # must enter); integer-only whiles stay as they are.
            if any(is_float(p.type) for p in e.params):
                inner = WhileLoop(e.params, e.inits, _rw_lambda(e.cond), while_bound_body(e.body), e.bound)
                _rewrite_while(stm, inner, b)
                continue
            b.emit_into(stm.pat, WhileLoop(e.params, e.inits, _rw_lambda(e.cond), while_bound_body(e.body), e.bound))
            continue
        b.emit_into(stm.pat, _rw_exp(e))
    return b.finish(body.result)


def while_bound_fun(fun: Fun) -> Fun:
    return Fun(fun.name, fun.params, while_bound_body(fun.body))
