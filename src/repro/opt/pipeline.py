"""The standard optimisation pipeline.

Mirrors the paper's setup: a battery of standard simplifications runs both
before AD (the source program is "already heavily optimized by the compiler")
and after AD (where DCE is what eliminates the redundant forward sweeps of
perfectly-nested scopes, §4.1).

Results are memoised per input ``Fun`` (by object identity, with a strong
reference retained so ids cannot be recycled): the AD entry points and the
``Compiled`` wrapper optimise the same function objects repeatedly, and on
the hot path — e.g. ``jacobian`` building fwd+rev derivatives of one
function — the memo turns those re-runs into dictionary lookups.  Converged
outputs (fixed points of the pipeline) are registered as their own results,
so ``optimize_fun(optimize_fun(f))`` is free.  ``clear_opt_cache`` bounds
memory; entries never go stale (``Fun`` is immutable).
"""
from __future__ import annotations

from typing import Dict, Tuple

from ..ir.ast import Fun

__all__ = ["optimize_fun", "clear_opt_cache", "PIPELINE"]

# key: (id of the input Fun, rounds) → (input Fun kept alive, optimised Fun)
_OPT_CACHE: Dict[Tuple[int, int], Tuple[Fun, Fun]] = {}


def optimize_fun(fun: Fun, rounds: int = 3, cache: bool = True) -> Fun:
    """Run the standard pipeline to a fixed point (bounded by ``rounds``)."""
    if cache:
        hit = _OPT_CACHE.get((id(fun), rounds))
        if hit is not None and hit[0] is fun:
            return hit[1]
    from .simplify import simplify_fun
    from .cse import cse_fun
    from .dce import dce_fun

    src = fun
    converged = False
    for _ in range(rounds):
        prev = fun
        fun = simplify_fun(fun)
        fun = cse_fun(fun)
        fun = dce_fun(fun)
        if fun == prev:
            converged = True
            break
    if cache:
        _OPT_CACHE[(id(src), rounds)] = (src, fun)
        if converged:
            # The pipeline is deterministic, so a converged output maps to
            # itself — make re-optimising the result a cache hit too.
            _OPT_CACHE[(id(fun), rounds)] = (fun, fun)
    return fun


def clear_opt_cache() -> None:
    """Drop all memoised optimisation results."""
    _OPT_CACHE.clear()


PIPELINE = ("simplify", "cse", "dce")
