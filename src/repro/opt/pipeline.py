"""The standard optimisation pipeline.

Mirrors the paper's setup: a battery of standard simplifications runs both
before AD (the source program is "already heavily optimized by the compiler")
and after AD (where DCE is what eliminates the redundant forward sweeps of
perfectly-nested scopes, §4.1).
"""
from __future__ import annotations

from ..ir.ast import Fun

__all__ = ["optimize_fun", "PIPELINE"]


def optimize_fun(fun: Fun, rounds: int = 3) -> Fun:
    """Run the standard pipeline to a fixed point (bounded by ``rounds``)."""
    from .simplify import simplify_fun
    from .cse import cse_fun
    from .dce import dce_fun

    for _ in range(rounds):
        prev = fun
        fun = simplify_fun(fun)
        fun = cse_fun(fun)
        fun = dce_fun(fun)
        if fun == prev:
            break
    return fun


PIPELINE = ("simplify", "cse", "dce")
