"""The optimisation pipeline: a registry of named passes with a fixed-point
driver.

Mirrors the paper's setup: a battery of standard simplifications runs both
before AD (the source program is "already heavily optimized by the compiler")
and after AD (where DCE is what eliminates the redundant forward sweeps of
perfectly-nested scopes, §4.1), plus the SOAC fusion engine that realises the
"AD rules tuned to preserve fusion opportunities" claim.

Pass framework
--------------

Passes are ``Fun -> Fun`` rewrites registered under a name with a default
enable flag (``register_pass``); the built-ins run in registry order:

* ``simplify`` — copy propagation, constant folding, algebraic identities;
* ``cse``      — common-subexpression elimination (cheap pure expressions);
* ``fuse``     — vertical/horizontal SOAC fusion (``opt/fusion.py``);
* ``dce``      — dead-code elimination.

``optimize_fun`` drives the enabled passes to a fixed point (bounded by
``rounds``) and keeps per-pass ``fired``/``changed`` counters, exposed
together with the memo-cache counters via ``opt_stats()``.

The enabled set resolves, in order of precedence: the ``passes`` argument
(a sequence of pass names), the ``REPRO_OPT_PASSES`` environment variable,
the registry defaults.  ``REPRO_OPT_PASSES`` is a comma-separated list of
names to enable exactly (``REPRO_OPT_PASSES=simplify,cse,dce`` is the
fusion ablation; ``none`` disables everything); names prefixed with ``-``
subtract from the defaults instead (``REPRO_OPT_PASSES=-fuse``).

Note that ``fuse`` is enabled only for *executed* programs: the AD entry
points optimise with ``AD_SAFE_PASSES`` (and ``unfuse_fun``) before
differentiating, because the reduce/scan/hist AD rules assume canonical
associative operators rather than fusion's redomap shapes.

Memoisation
-----------

Results are memoised per input ``Fun`` (by object identity, with a strong
reference retained so ids cannot be recycled): the AD entry points and the
``Compiled`` wrapper optimise the same function objects repeatedly, and on
the hot path the memo turns those re-runs into dictionary lookups.
Converged outputs (fixed points of the pipeline) are registered as their own
results, so ``optimize_fun(optimize_fun(f))`` is free.  The memo is an LRU
bounded by ``REPRO_OPT_CACHE_SIZE`` entries (default 1024, ``0`` unbounded)
so the strong-ref pinning cannot leak every traced ``Fun`` in long sessions;
evictions are counted in ``opt_stats()``.  Entries never go stale (``Fun``
is immutable); ``clear_opt_cache`` drops everything eagerly.
"""
from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..ir.ast import Fun
from ..obs import metrics as _obs_metrics, tracing as _obs_tracing
from ..util import BoundedLRU, env_capacity

__all__ = [
    "Pass",
    "register_pass",
    "registered_passes",
    "resolve_passes",
    "optimize_fun",
    "opt_stats",
    "reset_opt_stats",
    "clear_opt_cache",
    "PIPELINE",
    "AD_SAFE_PASSES",
]


@dataclass(frozen=True)
class Pass:
    """A named ``Fun -> Fun`` rewrite with a default enable flag."""

    name: str
    fn: Callable[[Fun], Fun]
    default: bool = True
    doc: str = ""


_REGISTRY: "OrderedDict[str, Pass]" = OrderedDict()

#: Per-pass counters: ``fired`` = invocations, ``changed`` = invocations
#: whose output differed structurally from the input (attributed only in
#: rounds that made net progress; a round whose passes exactly cancel out
#: counts as converged and leaves ``changed`` untouched).
_PASS_STATS: Dict[str, Dict[str, int]] = {}

#: Memo-cache counters (snapshot/reset through the ``"opt"`` registry
#: section below, together with the per-pass counters).
_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}

# key: (id of input Fun, rounds, enabled names)
#   -> (input Fun kept alive, optimised Fun)
_OPT_CACHE = BoundedLRU()

_DEFAULT_CACHE_SIZE = 1024


def register_pass(
    name: str, fn: Callable[[Fun], Fun], default: bool = True, doc: str = ""
) -> Pass:
    """Register (or replace) a named pass; returns the ``Pass`` record."""
    p = Pass(name, fn, default, doc)
    _REGISTRY[name] = p
    _PASS_STATS.setdefault(name, {"fired": 0, "changed": 0})
    return p


def registered_passes() -> Tuple[Pass, ...]:
    """All registered passes, in registry (execution) order."""
    return tuple(_REGISTRY.values())


def _parse_env(spec: str) -> Tuple[str, ...]:
    toks = [t.strip() for t in spec.split(",") if t.strip()]
    if not toks or toks == ["none"]:
        return ()
    removals = {t[1:] for t in toks if t.startswith("-")}
    adds = [t for t in toks if not t.startswith("-")]
    unknown = (set(adds) | removals) - set(_REGISTRY)
    if unknown:
        raise ValueError(
            f"REPRO_OPT_PASSES: unknown pass(es) {sorted(unknown)}; "
            f"registered: {list(_REGISTRY)}"
        )
    if adds:
        enabled = set(adds) - removals
    else:
        enabled = {p.name for p in _REGISTRY.values() if p.default} - removals
    return tuple(n for n in _REGISTRY if n in enabled)


def resolve_passes(passes: Optional[Sequence[str]] = None) -> Tuple[Pass, ...]:
    """The enabled passes in execution order (see module docstring)."""
    if passes is not None:
        unknown = set(passes) - set(_REGISTRY)
        if unknown:
            raise ValueError(
                f"unknown optimisation pass(es) {sorted(unknown)}; "
                f"registered: {list(_REGISTRY)}"
            )
        names = tuple(n for n in _REGISTRY if n in set(passes))
    else:
        env = os.environ.get("REPRO_OPT_PASSES")
        if env is not None:
            names = _parse_env(env)
        else:
            names = tuple(n for n, p in _REGISTRY.items() if p.default)
    return tuple(_REGISTRY[n] for n in names)


def _cache_put(key, src: Fun, out: Fun) -> None:
    cap = env_capacity("REPRO_OPT_CACHE_SIZE", _DEFAULT_CACHE_SIZE)
    _CACHE_STATS["evictions"] += _OPT_CACHE.put(key, (src, out), cap)


def optimize_fun(
    fun: Fun,
    rounds: int = 3,
    cache: bool = True,
    passes: Optional[Sequence[str]] = None,
) -> Fun:
    """Run the enabled passes to a fixed point (bounded by ``rounds``)."""
    active = resolve_passes(passes)
    if not active:
        return fun
    names = tuple(p.name for p in active)
    # The fuse pass is additionally configured by REPRO_FUSE_COST (cost-gated
    # vs monotone vs off); the mode must be part of the memo key or flipping
    # the env var mid-session (the A8 ablation does) would serve stale plans.
    from .fusion import fuse_cost_mode

    key = (id(fun), rounds, names, fuse_cost_mode() if "fuse" in names else None)
    if cache:
        hit = _OPT_CACHE.get(key)
        if hit is not None and hit[0] is fun:
            _CACHE_STATS["hits"] += 1
            return hit[1]
        _CACHE_STATS["misses"] += 1

    src = fun
    converged = False
    # Pass-boundary verification (ir/verify): "full" re-checks the IR after
    # every pass, attributing a violation to the pass that fired; "boundary"
    # checks once after the whole pipeline.  "off" costs this one lookup.
    from ..ir.verify import maybe_verify_fun, verify_fun, verify_mode

    vmode = verify_mode()
    with _obs_tracing.span("optimize", cat="compile", fun=fun.name):
        for _ in range(rounds):
            start = fun
            outs = []
            for p in active:
                with _obs_tracing.span(f"opt:{p.name}", cat="opt", fun=fun.name):
                    fun = p.fn(fun)
                _PASS_STATS[p.name]["fired"] += 1
                if vmode == "full":
                    verify_fun(fun, where=f"opt:{p.name}", full=True)
                outs.append(fun)
            if fun == start:
                # Round-level fixed point: ONE deep comparison instead of one
                # per pass — the full-tree-walk cost concentrates in unchanged
                # trees, which is exactly the near-convergence common case.
                converged = True
                break
            # The round made net progress; attribute per-pass "changed" by
            # comparing adjacent outputs (these mostly short-circuit early).
            prev = start
            for p, out in zip(active, outs):
                if out != prev:
                    _PASS_STATS[p.name]["changed"] += 1
                prev = out
    if vmode == "boundary":
        maybe_verify_fun(fun, where="optimize")
    if cache:
        _cache_put(key, src, fun)
        if converged and fun is not src:
            # The pipeline is deterministic, so a converged output maps to
            # itself — make re-optimising the result a cache hit too.
            _cache_put((id(fun),) + key[1:], fun, fun)
    return fun


def opt_stats() -> Dict[str, object]:
    """Per-pass fired/changed counters plus memo-cache counters."""
    from .fusion import fuse_cost_mode, fusion_stats

    return {
        "passes": {n: dict(c) for n, c in _PASS_STATS.items()},
        "cache": {**_CACHE_STATS, "entries": len(_OPT_CACHE)},
        "enabled": tuple(p.name for p in resolve_passes()),
        "fuse_cost_mode": fuse_cost_mode(),
        "fusion": fusion_stats(),
    }


def reset_opt_stats() -> None:
    """Zero every pass and cache counter (the cache itself is untouched)."""
    for c in _PASS_STATS.values():
        c["fired"] = c["changed"] = 0
    for k in _CACHE_STATS:
        _CACHE_STATS[k] = 0


def clear_opt_cache() -> None:
    """Drop all memoised optimisation results."""
    _OPT_CACHE.clear()


def _obs_opt_snapshot() -> Dict[str, object]:
    # The registry section excludes the nested fusion/enabled views
    # (fusion has its own section; the enabled set is config, not a counter).
    return {
        "passes": {n: dict(c) for n, c in _PASS_STATS.items()},
        "cache": {**_CACHE_STATS, "entries": len(_OPT_CACHE)},
    }


_obs_metrics.register_source("opt", _obs_opt_snapshot, reset_opt_stats)


# ---------------------------------------------------------------------------
# Built-in registry
# ---------------------------------------------------------------------------

from .simplify import simplify_fun  # noqa: E402
from .cse import cse_fun  # noqa: E402
from .fusion import fuse_fun  # noqa: E402
from .dce import dce_fun  # noqa: E402

register_pass("simplify", simplify_fun, doc="copy-prop, folding, identities")
register_pass("cse", cse_fun, doc="common-subexpression elimination")
register_pass("fuse", fuse_fun, doc="vertical/horizontal SOAC fusion")
register_pass("dce", dce_fun, doc="dead-code elimination")

#: Default pass order (kept for introspection/back-compat).
PIPELINE = tuple(_REGISTRY)

#: The passes that are safe to run on a program that will be differentiated
#: again: everything except ``fuse`` (AD rules assume canonical operators).
AD_SAFE_PASSES = ("simplify", "cse", "dce")
