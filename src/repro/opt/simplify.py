"""Simplification: copy propagation, constant folding, algebraic identities.

This is the paper's "simplification engine" — e.g. it is what derives the
specialised ``as_bar += y_bar`` adjoint of a ``reduce (+)`` from the general
two-scan rule automatically, and what cleans up the ``x + 0`` adjoint
initialisations the reverse sweep emits.
"""
from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..ir.ast import (
    AtomExp,
    Atom,
    BinOp,
    Body,
    Cast,
    Const,
    Exp,
    Fun,
    If,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Scan,
    Select,
    Stm,
    UnOp,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from ..ir.traversal import refresh_body, subst_exp
from ..ir.types import BOOL, Scalar, np_dtype, rank_of
from ..exec.prims import apply_binop, apply_unop, cast_to

__all__ = ["simplify_fun", "simplify_body"]


def _is_const(a: Atom, value=None) -> bool:
    if not isinstance(a, Const):
        return False
    if value is None:
        return True
    try:
        return float(a.value) == float(value)
    except (TypeError, ValueError):
        return False


def _same_rank(a: Atom, b: Atom) -> bool:
    return rank_of(a.type) == rank_of(b.type)


class _Simplifier:
    def __init__(self) -> None:
        # defs tracks scalar-cheap definitions for def-chain queries
        # (e.g. "is this operand a ZerosLike?").
        self.defs: Dict[str, Exp] = {}

    # -- algebraic rules --------------------------------------------------------

    def _is_zero(self, a: Atom) -> bool:
        if _is_const(a, 0):
            return True
        if isinstance(a, Var):
            d = self.defs.get(a.name)
            if isinstance(d, ZerosLike):
                return True
        return False

    def _fold_binop(self, e: BinOp) -> Optional[Exp]:
        x, y = e.x, e.y
        if isinstance(x, Const) and isinstance(y, Const):
            # Fold under the exact conditions the executors evaluate under
            # (``np.errstate(all="ignore")`` — see ``RefInterp.run`` and
            # ``Plan.run``), so a fold can never diverge from runtime
            # semantics: float div-by-zero folds to the same inf/nan the
            # runtime produces, integer div-by-zero to the same value NumPy
            # yields under an ignored error state.  Only *arithmetic*
            # failures (including NumPy's refusal of negative integer
            # powers, a ValueError) demote to "don't fold" — anything else
            # (an unknown op, a bad type) is a real bug and must propagate.
            try:
                with np.errstate(all="ignore"):
                    v = apply_binop(
                        e.op, np_dtype(x.type)(x.value), np_dtype(y.type)(y.value)
                    )
            except (ArithmeticError, ValueError):
                return None
            if e.op in ("lt", "le", "gt", "ge", "eq", "ne", "and", "or"):
                return AtomExp(Const(bool(v), BOOL))
            return AtomExp(Const(v.item() if hasattr(v, "item") else v, x.type))
        if e.op == "add":
            if self._is_zero(x) and rank_of(y.type) >= rank_of(x.type):
                return AtomExp(y)
            if self._is_zero(y) and rank_of(x.type) >= rank_of(y.type):
                return AtomExp(x)
        elif e.op == "sub":
            if self._is_zero(y) and rank_of(x.type) >= rank_of(y.type):
                return AtomExp(x)
        elif e.op == "mul":
            if _is_const(x, 1) and rank_of(y.type) >= rank_of(x.type):
                return AtomExp(y)
            if _is_const(y, 1) and rank_of(x.type) >= rank_of(y.type):
                return AtomExp(x)
            if _is_const(x, 0) and rank_of(y.type) == 0:
                return AtomExp(x)
            if _is_const(y, 0) and rank_of(x.type) == 0:
                return AtomExp(y)
        elif e.op == "div":
            if _is_const(y, 1):
                return AtomExp(x)
        elif e.op == "pow":
            if _is_const(y, 1):
                return AtomExp(x)
        return None

    def _fold_unop(self, e: UnOp) -> Optional[Exp]:
        if isinstance(e.x, Const):
            # Same errstate discipline as ``_fold_binop``: evaluate exactly
            # as the executors would, demote only arithmetic failures.
            try:
                with np.errstate(all="ignore"):
                    v = apply_unop(e.op, np_dtype(e.x.type)(e.x.value))
            except (ArithmeticError, ValueError):
                return None
            if e.op == "not":
                return AtomExp(Const(bool(v), BOOL))
            return AtomExp(Const(v.item() if hasattr(v, "item") else v, e.x.type))
        if e.op == "neg" and isinstance(e.x, Var):
            d = self.defs.get(e.x.name)
            if isinstance(d, UnOp) and d.op == "neg":
                return AtomExp(d.x)
        return None

    def _fold_select(self, e: Select) -> Optional[Exp]:
        if isinstance(e.c, Const):
            return AtomExp(e.t if e.c.value else e.f)
        if e.t == e.f:
            return AtomExp(e.t)
        return None

    def _fold_cast(self, e: Cast) -> Optional[Exp]:
        if isinstance(e.x, Const):
            # Via the executors' own ``cast_to`` (ndarray ``astype``), not a
            # scalar-constructor call: ``np.int64(inf)`` raises where the
            # runtime's astype quietly produces a platform value — the fold
            # must compute exactly what execution would.
            try:
                with np.errstate(all="ignore"):
                    v = cast_to(np_dtype(e.x.type)(e.x.value), np_dtype(e.to))[()]
            except (ArithmeticError, ValueError):
                return None
            return AtomExp(Const(v.item() if e.to is not BOOL else bool(v), e.to))
        if e.x.type == e.to:
            return AtomExp(e.x)
        return None

    # -- traversal --------------------------------------------------------------

    def exp(self, e: Exp, m: Dict[str, Atom]) -> Exp:
        e = subst_exp(e, m)
        if isinstance(e, BinOp):
            return self._fold_binop(e) or e
        if isinstance(e, UnOp):
            return self._fold_unop(e) or e
        if isinstance(e, Select):
            return self._fold_select(e) or e
        if isinstance(e, Cast):
            return self._fold_cast(e) or e
        if isinstance(e, Map):
            return Map(self.lam(e.lam), e.arrs, e.accs)
        if isinstance(e, Reduce):
            return Reduce(self.lam(e.lam), e.nes, e.arrs)
        if isinstance(e, Scan):
            return Scan(self.lam(e.lam), e.nes, e.arrs)
        if isinstance(e, ReduceByIndex):
            return ReduceByIndex(e.num_bins, self.lam(e.lam), e.nes, e.inds, e.vals)
        if isinstance(e, Loop):
            return Loop(e.params, e.inits, e.ivar, e.n, self.body(e.body), e.stripmine, e.checkpoint)
        if isinstance(e, WhileLoop):
            return WhileLoop(e.params, e.inits, self.lam(e.cond), self.body(e.body), e.bound)
        if isinstance(e, If):
            return If(e.cond, self.body(e.then), self.body(e.els))
        if isinstance(e, WithAcc):
            return WithAcc(e.arrs, self.lam(e.lam))
        return e

    def lam(self, lam: Lambda) -> Lambda:
        return Lambda(lam.params, self.body(lam.body))

    def body(self, body: Body) -> Body:
        m: Dict[str, Atom] = {}
        stms = []
        for stm in body.stms:
            e = self.exp(stm.exp, m)
            # Constant-condition ifs: splice the taken branch.
            if isinstance(e, If) and isinstance(e.cond, Const):
                branch = e.then if e.cond.value else e.els
                branch = refresh_body(branch)
                stms.extend(branch.stms)
                for v, r in zip(stm.pat, branch.result):
                    m[v.name] = r
                continue
            if isinstance(e, AtomExp) and len(stm.pat) == 1:
                m[stm.pat[0].name] = e.x
                continue
            for v in stm.pat:
                self.defs[v.name] = e
            stms.append(Stm(stm.pat, e))
        result = tuple(m.get(a.name, a) if isinstance(a, Var) else a for a in body.result)
        return Body(tuple(stms), result)


def simplify_body(body: Body) -> Body:
    return _Simplifier().body(body)


def simplify_fun(fun: Fun) -> Fun:
    return Fun(fun.name, fun.params, simplify_body(fun.body))
