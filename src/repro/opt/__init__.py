"""Optimisation passes over the IR (simplify, DCE, CSE, fusion, acc-opt,
strip-mining, while-bounding), organised as a registry of named passes with
a fixed-point driver — see ``pipeline``."""
from .pipeline import (  # noqa: F401
    AD_SAFE_PASSES,
    clear_opt_cache,
    opt_stats,
    optimize_fun,
    register_pass,
    registered_passes,
    reset_opt_stats,
)
