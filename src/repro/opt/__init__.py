"""Optimisation passes over the IR (simplify, DCE, CSE, fusion, acc-opt,
strip-mining, while-bounding)."""
from .pipeline import optimize_fun  # noqa: F401
