"""repro — reverse- and forward-mode AD for a nested-parallel array language.

A from-scratch reproduction of "AD for an Array Language with Nested
Parallelism" (Schenck, Rønning, Henriksen, Oancea; SC 2022).  See README.md
for a tour and DESIGN.md for the system inventory.

Quick taste::

    import numpy as np
    import repro as rp

    def dotp(xs, ys):
        return rp.sum(rp.map(lambda x, y: x * y, xs, ys))

    f = rp.compile(rp.trace_like(dotp, (np.ones(4), np.ones(4))))
    g = rp.grad(f)                       # reverse mode
    print(g(np.arange(4.0), np.ones(4)))
"""
from . import ir  # noqa: F401
from .ir.types import BOOL, F32, F64, I32, I64  # noqa: F401
from .frontend.function import Compiled, compile_fun as compile  # noqa: F401
from .frontend.trace import TVal, trace, trace_like  # noqa: F401
from .frontend.ops import (  # noqa: F401
    abs_ as abs,
    astype,
    concat,
    cond,
    cos,
    dot,
    erf,
    exp,
    floor,
    fori_loop,
    gather,
    iota,
    log,
    map_ as map,
    matmul,
    max_ as max,
    maximum,
    min_ as min,
    minimum,
    prod_ as prod,
    reduce_ as reduce,
    reduce_by_index,
    replicate,
    reverse,
    scan_ as scan,
    scatter,
    sigmoid,
    sign,
    sin,
    size,
    sqrt,
    sum_ as sum,
    tan,
    tanh,
    transpose,
    update,
    where,
    while_loop,
    zeros_like,
)

__version__ = "1.0.0"


def __getattr__(name):
    # AD entry points live in repro.core; import lazily to avoid cycles.
    if name in ("jvp", "vjp", "grad", "jacobian", "hessian_diag", "value_and_grad"):
        from .core import api

        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
