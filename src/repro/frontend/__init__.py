"""Tracing frontend: stage Python functions into the array IR."""
from .function import Compiled, compile_fun  # noqa: F401
from .trace import TVal, arg_types_of, lift, trace, trace_like  # noqa: F401
from . import ops  # noqa: F401
