"""Tracing frontend: stage Python functions into the array IR.

Users write ordinary Python functions over ``TVal`` tracer objects; every
operation appends an ANF statement to the builder of the innermost open
scope.  ``trace``/``trace_like`` run the function once on symbolic arguments
and package the recorded statements as an ``ir.Fun``.

This mirrors how the paper's source language reaches the core IR: the
high-level features (here: Python) are compiled away before AD, and lambdas
appear only syntactically inside SOACs.
"""
from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..ir.ast import AtomExp, Atom, BinOp, Cast, Const, Fun, Index, UnOp, Var
from ..ir.builder import Builder, as_atom, const
from ..ir.typecheck import check_fun
from ..ir.validate import validate_fun
from ..ir.types import (
    ArrayType,
    BOOL,
    F32,
    F64,
    I32,
    I64,
    Scalar,
    Type,
    elem_type,
    from_np_dtype,
    is_float,
    rank_of,
    with_rank,
)
from ..obs import tracing as _obs_tracing
from ..util import IRError, fresh

__all__ = ["TVal", "trace", "trace_like", "cur_builder", "lift", "scope", "arg_types_of"]


# ---------------------------------------------------------------------------
# Trace context
# ---------------------------------------------------------------------------

_STACK: List[Builder] = []


def cur_builder() -> Builder:
    if not _STACK:
        raise IRError(
            "no active trace: array operations can only be used inside a "
            "function being traced with repro.trace/trace_like"
        )
    return _STACK[-1]


class scope:
    """Context manager that opens a nested builder (lambda/loop bodies)."""

    def __init__(self) -> None:
        self.builder = Builder()

    def __enter__(self) -> Builder:
        _STACK.append(self.builder)
        return self.builder

    def __exit__(self, *exc) -> None:
        popped = _STACK.pop()
        assert popped is self.builder


# ---------------------------------------------------------------------------
# Tracer values
# ---------------------------------------------------------------------------

Liftable = Union["TVal", int, float, bool, np.generic]


class TVal:
    """A traced value: wraps an IR atom.  Supports Python operators."""

    __slots__ = ("atom",)
    # Make numpy defer to our reflected dunders (np_scalar * tval etc.).
    __array_priority__ = 1000

    def __init__(self, atom: Atom) -> None:
        self.atom = atom

    # -- metadata ------------------------------------------------------------

    @property
    def type(self) -> Type:
        return self.atom.type

    @property
    def rank(self) -> int:
        return rank_of(self.atom.type)

    @property
    def dtype(self) -> Scalar:
        return elem_type(self.atom.type)

    def __repr__(self) -> str:
        return f"TVal({self.atom!r}: {self.atom.type})"

    # -- lifting ---------------------------------------------------------------

    def _lift(self, other) -> Atom:
        return lift(other, like=self).atom

    # -- arithmetic --------------------------------------------------------------

    def _bin(self, op: str, other, rev: bool = False) -> "TVal":
        b = cur_builder()
        o = self._lift(other)
        x, y = (o, self.atom) if rev else (self.atom, o)
        return TVal(b.binop(op, x, y))

    def __add__(self, o):
        return self._bin("add", o)

    def __radd__(self, o):
        return self._bin("add", o, rev=True)

    def __sub__(self, o):
        return self._bin("sub", o)

    def __rsub__(self, o):
        return self._bin("sub", o, rev=True)

    def __mul__(self, o):
        return self._bin("mul", o)

    def __rmul__(self, o):
        return self._bin("mul", o, rev=True)

    def __truediv__(self, o):
        return self._bin("div", o)

    def __rtruediv__(self, o):
        return self._bin("div", o, rev=True)

    def __mod__(self, o):
        return self._bin("mod", o)

    def __rmod__(self, o):
        return self._bin("mod", o, rev=True)

    def __pow__(self, o):
        return self._bin("pow", o)

    def __rpow__(self, o):
        return self._bin("pow", o, rev=True)

    def __neg__(self):
        return TVal(cur_builder().unop("neg", self.atom))

    def __abs__(self):
        return TVal(cur_builder().unop("abs", self.atom))

    # -- comparisons ----------------------------------------------------------------

    def __lt__(self, o):
        return self._bin("lt", o)

    def __le__(self, o):
        return self._bin("le", o)

    def __gt__(self, o):
        return self._bin("gt", o)

    def __ge__(self, o):
        return self._bin("ge", o)

    def __eq__(self, o):  # type: ignore[override]
        return self._bin("eq", o)

    def __ne__(self, o):  # type: ignore[override]
        return self._bin("ne", o)

    def __and__(self, o):
        return self._bin("and", o)

    def __or__(self, o):
        return self._bin("or", o)

    def __invert__(self):
        return TVal(cur_builder().unop("not", self.atom))

    __hash__ = None  # tracers are not hashable (== is symbolic)

    # -- indexing -----------------------------------------------------------------------

    def __getitem__(self, idx) -> "TVal":
        if self.rank == 0:
            raise IRError("cannot index a scalar tracer")
        if not isinstance(idx, tuple):
            idx = (idx,)
        b = cur_builder()
        atoms = []
        for i in idx:
            ia = lift(i, ty=I64).atom
            if not (elem_type(ia.type) in (I32, I64) and rank_of(ia.type) == 0):
                raise IRError(f"array index must be an integer scalar, got {ia.type}")
            atoms.append(ia)
        arr = self.atom
        if not isinstance(arr, Var):
            raise IRError("cannot index a constant")
        return TVal(b.emit1(Index(arr, tuple(atoms)), "x"))

    # -- guards against Python control flow on tracers --------------------------------------

    def __bool__(self):
        raise IRError(
            "traced values have no Python truth value; use repro.cond / "
            "repro.while_loop for data-dependent control flow"
        )

    def __float__(self):
        raise IRError("traced values cannot be converted to float during tracing")

    def __int__(self):
        raise IRError("traced values cannot be converted to int during tracing")

    def __iter__(self):
        raise IRError(
            "traced arrays are not iterable; use repro.map / repro.fori_loop"
        )


def lift(x, like: Optional[TVal] = None, ty: Optional[Scalar] = None) -> TVal:
    """Coerce a Python scalar (or TVal) into a tracer.

    Numeric literals adopt the element type of ``like`` when given, so
    ``x * 2`` works for both f32 and f64 tracers.
    """
    if isinstance(x, TVal):
        return x
    if isinstance(x, (Var, Const)):
        return TVal(x)
    if isinstance(x, (bool, np.bool_)):
        return TVal(const(bool(x), BOOL))
    if isinstance(x, (int, np.integer)):
        if like is not None and is_float(like.dtype):
            return TVal(const(float(x), like.dtype))
        return TVal(const(int(x), ty or (like.dtype if like is not None else I64)))
    if isinstance(x, (float, np.floating)):
        if like is not None and is_float(like.dtype):
            return TVal(const(float(x), like.dtype))
        return TVal(const(float(x), F64))
    raise IRError(f"cannot lift {type(x).__name__} into the traced program")


# ---------------------------------------------------------------------------
# Tracing entry points
# ---------------------------------------------------------------------------


def arg_types_of(args: Sequence[object]) -> Tuple[Type, ...]:
    """Infer IR types from example NumPy/Python arguments."""
    tys: List[Type] = []
    for a in args:
        arr = np.asarray(a)
        tys.append(with_rank(from_np_dtype(arr.dtype), arr.ndim))
    return tuple(tys)


def trace(
    f: Callable,
    in_types: Sequence[Type],
    name: Optional[str] = None,
    arg_names: Optional[Sequence[str]] = None,
) -> Fun:
    """Trace ``f`` at the given parameter types into an ``ir.Fun``.

    ``f`` receives one ``TVal`` per parameter and returns a TVal (or a
    tuple/list of TVals, or Python scalars, which become constants).
    """
    name = name or getattr(f, "__name__", "traced") or "traced"
    if arg_names is None:
        arg_names = []
        code = getattr(f, "__code__", None)
        if code is not None:
            arg_names = list(code.co_varnames[: code.co_argcount])
        while len(arg_names) < len(in_types):
            arg_names.append(f"arg{len(arg_names)}")
    params = tuple(Var(fresh(n), t) for n, t in zip(arg_names, in_types))
    with _obs_tracing.span("trace", cat="compile", fun=name):
        with scope() as b:
            out = f(*[TVal(p) for p in params])
            if out is None:
                raise IRError(f"{name}: traced function returned None")
            outs = out if isinstance(out, (tuple, list)) else (out,)
            result = tuple(lift(o).atom for o in outs)
            body = b.finish(result)
        fun = Fun(name, params, body)
        check_fun(fun)
        validate_fun(fun)
    from ..ir.verify import maybe_verify_fun

    return maybe_verify_fun(fun, where="trace")


def trace_like(f: Callable, example_args: Sequence[object], name: Optional[str] = None) -> Fun:
    """Trace ``f`` with parameter types inferred from example arguments."""
    return trace(f, arg_types_of(example_args), name=name)
