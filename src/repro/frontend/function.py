"""Compiled-function wrapper: trace → (optimise) → run on a chosen backend.

Backends
--------

* ``"vec"`` (default) — the vectorised SIMT simulator, re-interpreting the
  IR on every call;
* ``"ref"`` — the reference interpreter (semantics oracle, drives the cost
  model);
* ``"plan"`` — the plan compiler: the function is lowered once to a flat
  sequence of NumPy closures and memoised per argument shape/dtype signature
  (see ``exec/plan.py`` for cache keying and invalidation), so repeat calls
  skip optimisation and AST dispatch entirely.

``call_batched`` is the batched multi-seed entry used by ``jacobian``: it
evaluates the function once with selected arguments carrying a leading batch
axis (supported on the ``vec`` and ``plan`` backends, whose batching
machinery makes it a single bulk pass).
"""
from __future__ import annotations

from typing import Sequence, Tuple

from ..exec.cost import Cost, CostRecorder
from ..exec.interp import RefInterp
from ..exec.plan import run_fun_plan, run_fun_plan_batched
from ..exec.vector import run_fun_vec, run_fun_vec_batched
from ..ir.ast import Fun
from ..ir.pretty import pretty
from ..util import ReproError

__all__ = ["Compiled", "compile_fun"]

BACKENDS = ("vec", "ref", "plan")

#: Backends able to evaluate all seeds of a multi-seed derivative in one
#: batched pass (the reference interpreter loops instead).
BATCHED_BACKENDS = ("vec", "plan")


class Compiled:
    """A runnable IR function.

    ``backend="vec"`` (default) uses the vectorised SIMT simulator;
    ``backend="ref"`` the reference interpreter; ``backend="plan"`` the
    cached plan compiler.  ``cost()`` measures the cost-model counters of a
    run (reference interpretation).

    ``passes`` selects the optimisation passes applied at construction (a
    sequence of registered pass names — see ``opt.pipeline``); None means
    the default set, overridable via the ``REPRO_OPT_PASSES`` environment
    variable.
    """

    def __init__(
        self,
        fun: Fun,
        optimize: bool = True,
        passes: "Sequence[str] | None" = None,
    ) -> None:
        if optimize:
            from ..opt.pipeline import optimize_fun

            fun = optimize_fun(fun, passes=passes)
        self.fun = fun

    @property
    def name(self) -> str:
        return self.fun.name

    def __repr__(self) -> str:
        return f"<Compiled {self.fun.name}>"

    def show(self) -> str:
        """Pretty-printed IR (after optimisation)."""
        return pretty(self.fun)

    def __call__(self, *args, backend: str = "vec"):
        if backend == "vec":
            res = run_fun_vec(self.fun, args)
        elif backend == "plan":
            res = run_fun_plan(self.fun, args)
        elif backend == "ref":
            res = RefInterp().run(self.fun, args)
        else:
            raise ReproError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        return res[0] if len(res) == 1 else res

    def call_batched(
        self,
        args: Sequence[object],
        batched: Sequence[bool],
        batch_size: int,
        backend: str = "plan",
    ) -> Tuple[object, ...]:
        """Evaluate once with the flagged arguments batched on a leading axis.

        Always returns a tuple of results, each with a leading ``batch_size``
        axis.  Only the bulk backends support this; use a Python loop for
        ``ref``.
        """
        if backend == "plan":
            return run_fun_plan_batched(self.fun, args, batched, batch_size)
        if backend == "vec":
            return run_fun_vec_batched(self.fun, args, batched, batch_size)
        raise ReproError(
            f"backend {backend!r} cannot run batched seeds; "
            f"choose from {BATCHED_BACKENDS}"
        )

    def cost(self, *args) -> Cost:
        """Run under the cost model; returns work/span/memory counters."""
        rec = CostRecorder()
        RefInterp(rec).run(self.fun, args)
        return rec.snapshot()


def compile_fun(
    fun: Fun, optimize: bool = True, passes: "Sequence[str] | None" = None
) -> Compiled:
    return Compiled(fun, optimize=optimize, passes=passes)
