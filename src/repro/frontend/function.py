"""Compiled-function wrapper: trace → (optimise) → run on a chosen backend.

Backends
--------

Backends are resolved through the pluggable registry
(``exec/registry.py``) — the built-ins:

* ``"vec"`` (default) — the vectorised SIMT simulator, re-interpreting the
  IR on every call;
* ``"ref"`` — the reference interpreter (semantics oracle, drives the cost
  model);
* ``"plan"`` — the plan compiler: the function is lowered once to a flat
  sequence of NumPy closures and memoised per argument shape/dtype signature
  (see ``exec/plan.py`` for cache keying and invalidation), so repeat calls
  skip optimisation and AST dispatch entirely;
* ``"shard"`` — the sharded parallel executor: the dominant data-parallel
  SOAC (or the batch axis of a batched call) is partitioned across a
  persistent worker pool, each chunk running through the cached plan
  backend (``exec/shard.py``; non-shardable programs fall back to plan).

Unknown names raise listing the registered set; custom executors can be
added with ``repro.exec.registry.register_backend``.

``call_batched`` is the batched multi-seed entry used by ``jacobian``: it
evaluates the function once with selected arguments carrying a leading batch
axis (supported on backends with the ``batched`` capability — ``vec``,
``plan`` and ``shard`` — whose batching machinery makes it a single bulk
pass).
"""
from __future__ import annotations

from typing import Sequence, Tuple

from ..exec.cost import Cost, CostRecorder
from ..exec.interp import RefInterp
from ..exec.registry import (
    available_backends,
    batched_backends,
    default_backend,
    get_backend,
    record_call,
)
from ..ir.ast import Fun
from ..ir.pretty import pretty
from ..obs import tracing as _obs_tracing
from ..util import ReproError

__all__ = ["Compiled", "compile_fun", "BACKENDS", "BATCHED_BACKENDS"]


def __getattr__(name: str):
    # Live views of the registry, not import-time snapshots — a backend
    # registered after this module loads is visible immediately, so
    # capability checks against these names can never go stale.
    # ``BATCHED_BACKENDS`` lists the backends able to evaluate all seeds of
    # a multi-seed derivative in one batched pass (``ref`` loops instead).
    if name == "BACKENDS":
        return available_backends()
    if name == "BATCHED_BACKENDS":
        return batched_backends()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Compiled:
    """A runnable IR function.

    ``backend=None`` (default) resolves through the registry-level
    ``default_backend()`` — ``REPRO_BACKEND`` or the plan compiler — so
    every entry point in the system shares one default; any registered
    backend name selects that executor explicitly (``ref``, ``vec``,
    ``plan``, ``shard``, or a custom registration).  ``cost()`` measures
    the cost-model counters of a run (reference interpretation).

    ``passes`` selects the optimisation passes applied at construction (a
    sequence of registered pass names — see ``opt.pipeline``); None means
    the default set, overridable via the ``REPRO_OPT_PASSES`` environment
    variable.

    ``schedule`` overrides the cost model's default execution schedule (see
    ``ir.schedule``): a directive string like ``"parallel(2)·vectorized"``
    or a tuple of directive objects, attached *after* optimisation to the
    dominant schedulable statement — illegal schedules raise
    ``ScheduleError`` naming the offending directive.  With no explicit
    ``schedule``, the ``REPRO_SCHEDULE`` environment override (if set) is
    applied leniently to every statement where it is legal.
    """

    def __init__(
        self,
        fun: Fun,
        optimize: bool = True,
        passes: "Sequence[str] | None" = None,
        schedule=None,
    ) -> None:
        if optimize:
            from ..opt.pipeline import optimize_fun

            fun = optimize_fun(fun, passes=passes)
        # Schedules attach after optimisation: the optimiser rebuilds SOAC
        # nodes positionally, which deliberately resets schedule fields.
        if schedule is not None:
            from ..ir.schedule import apply_schedule

            fun = apply_schedule(fun, schedule, strict=True)
        else:
            from ..ir.schedule import apply_env_schedule

            fun = apply_env_schedule(fun)
        # Pass-boundary verification after schedule application — this is
        # the boundary where layer 3 (parallel safety) sees the directives.
        from ..ir.verify import maybe_verify_fun

        self.fun = maybe_verify_fun(fun, where="schedule")

    @property
    def name(self) -> str:
        return self.fun.name

    def __repr__(self) -> str:
        return f"<Compiled {self.fun.name}>"

    def show(self) -> str:
        """Pretty-printed IR (after optimisation)."""
        return pretty(self.fun)

    def __call__(self, *args, backend: "str | None" = None):
        name = backend or default_backend()
        record_call(name)
        with _obs_tracing.span("call", cat="api", fun=self.fun.name, backend=name):
            res = get_backend(name).run(self.fun, args)
        return res[0] if len(res) == 1 else res

    def call_batched(
        self,
        args: Sequence[object],
        batched: Sequence[bool],
        batch_size: int,
        backend: "str | None" = None,
    ) -> Tuple[object, ...]:
        """Evaluate once with the flagged arguments batched on a leading axis.

        Always returns a tuple of results, each with a leading ``batch_size``
        axis.  Only backends with the ``batched`` capability support this;
        use a Python loop for ``ref``.
        """
        name = backend or default_backend()
        be = get_backend(name)
        if be.run_batched is None:
            raise ReproError(
                f"backend {name!r} cannot run batched seeds; "
                f"choose from {batched_backends()}"
            )
        record_call(name)
        with _obs_tracing.span(
            "call", cat="api", fun=self.fun.name, backend=name, batched=True
        ):
            return be.run_batched(self.fun, args, batched, batch_size)

    def cost(self, *args) -> Cost:
        """Run under the cost model; returns work/span/memory counters."""
        rec = CostRecorder()
        RefInterp(rec).run(self.fun, args)
        return rec.snapshot()


def compile_fun(
    fun: Fun,
    optimize: bool = True,
    passes: "Sequence[str] | None" = None,
    schedule=None,
) -> Compiled:
    return Compiled(fun, optimize=optimize, passes=passes, schedule=schedule)
