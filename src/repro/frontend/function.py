"""Compiled-function wrapper: trace → (optimise) → run on a chosen backend."""
from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from ..exec.cost import Cost, CostRecorder
from ..exec.interp import RefInterp
from ..exec.vector import run_fun_vec
from ..ir.ast import Fun
from ..ir.pretty import pretty
from ..util import ReproError

__all__ = ["Compiled", "compile_fun"]

BACKENDS = ("vec", "ref")


class Compiled:
    """A runnable IR function.

    ``backend="vec"`` (default) uses the vectorised SIMT simulator;
    ``backend="ref"`` the reference interpreter.  ``cost()`` measures the
    cost-model counters of a run (reference interpretation).
    """

    def __init__(self, fun: Fun, optimize: bool = True) -> None:
        if optimize:
            from ..opt.pipeline import optimize_fun

            fun = optimize_fun(fun)
        self.fun = fun

    @property
    def name(self) -> str:
        return self.fun.name

    def __repr__(self) -> str:
        return f"<Compiled {self.fun.name}>"

    def show(self) -> str:
        """Pretty-printed IR (after optimisation)."""
        return pretty(self.fun)

    def __call__(self, *args, backend: str = "vec"):
        if backend not in BACKENDS:
            raise ReproError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        if backend == "vec":
            res = run_fun_vec(self.fun, args)
        else:
            res = RefInterp().run(self.fun, args)
        return res[0] if len(res) == 1 else res

    def cost(self, *args) -> Cost:
        """Run under the cost model; returns work/span/memory counters."""
        rec = CostRecorder()
        RefInterp(rec).run(self.fun, args)
        return rec.snapshot()


def compile_fun(fun: Fun, optimize: bool = True) -> Compiled:
    return Compiled(fun, optimize=optimize)
