"""User-facing array combinators (the surface language).

These functions are the Python spellings of the IR's SOACs and control flow;
each one traces its function arguments into IR lambdas and emits a statement
into the enclosing trace.  They are re-exported at the package root, so user
code reads::

    import repro as rp

    def cost(points, centres):
        return rp.sum(rp.map(lambda p: ..., points))
"""
from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..ir.ast import (
    Concat,
    If,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    Select,
    Size,
    Update,
    Var,
    WhileLoop,
    ZerosLike,
)
from ..ir.builder import as_atom, const
from ..ir.types import (
    ArrayType,
    BOOL,
    F32,
    F64,
    I32,
    I64,
    Scalar,
    elem_type,
    is_float,
    rank_of,
    with_rank,
)
from ..util import IRError, fresh
from .trace import TVal, cur_builder, lift, scope

__all__ = [
    "map_",
    "reduce_",
    "scan_",
    "reduce_by_index",
    "scatter",
    "gather",
    "iota",
    "replicate",
    "size",
    "zeros_like",
    "reverse",
    "concat",
    "update",
    "fori_loop",
    "while_loop",
    "cond",
    "where",
    "minimum",
    "maximum",
    "astype",
    "sin",
    "cos",
    "tan",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "erf",
    "floor",
    "sign",
    "abs_",
    "sum_",
    "prod_",
    "min_",
    "max_",
    "dot",
    "matmul",
    "transpose",
]


def _as_tvals(xs) -> List[TVal]:
    return [lift(x) for x in xs]


def _arr_var(x: TVal, what: str) -> Var:
    if x.rank == 0:
        raise IRError(f"{what}: expected an array, got a scalar")
    a = x.atom
    if not isinstance(a, Var):
        raise IRError(f"{what}: expected an array variable")
    return a


def _pack(vals: Sequence[TVal]):
    return vals[0] if len(vals) == 1 else tuple(vals)


# ---------------------------------------------------------------------------
# SOACs
# ---------------------------------------------------------------------------


def map_(f: Callable, *arrs) -> Union[TVal, Tuple[TVal, ...]]:
    """``map f xs [ys ...]`` — apply ``f`` elementwise; variadic and
    multi-result (``f`` may return a tuple).  Free variables in ``f`` are
    closed over, exactly like the paper's lambdas."""
    if not arrs:
        raise IRError("map: needs at least one array")
    ts = _as_tvals(arrs)
    avars = [_arr_var(t, "map") for t in ts]
    params = tuple(
        Var(fresh("x"), with_rank(elem_type(v.type), rank_of(v.type) - 1))
        for v in avars
    )
    with scope() as b:
        out = f(*[TVal(p) for p in params])
        outs = out if isinstance(out, (tuple, list)) else (out,)
        body = b.finish(tuple(lift(o).atom for o in outs))
    vs = cur_builder().map(Lambda(params, body), avars, names=["m"] * len(body.result))
    return _pack([TVal(v) for v in vs])


def _binop_lambda(op_f: Callable, nes: Sequence, elems: Sequence[Scalar]) -> Tuple[Lambda, Tuple]:
    """Trace a k-ary associative operator ``op_f(*accs, *xs) -> k results``."""
    k = len(elems)
    accs = tuple(Var(fresh("a"), t) for t in elems)
    xs = tuple(Var(fresh("b"), t) for t in elems)
    with scope() as b:
        out = op_f(*[TVal(v) for v in accs + xs])
        outs = out if isinstance(out, (tuple, list)) else (out,)
        if len(outs) != k:
            raise IRError(f"operator must return {k} values, got {len(outs)}")
        res = []
        for o, t in zip(outs, elems):
            ov = lift(o, like=TVal(accs[0]) if is_float(t) else None)
            res.append(ov.atom)
        body = b.finish(tuple(res))
    ne_atoms = tuple(
        lift(ne, like=TVal(Var("_", t)) if is_float(t) else None, ty=t if not is_float(t) else None).atom
        for ne, t in zip(nes, elems)
    )
    return Lambda(accs + xs, body), ne_atoms


def _soac_args(op: Callable, ne, arrs, what: str):
    ts = _as_tvals(arrs)
    avars = [_arr_var(t, what) for t in ts]
    for v in avars:
        if rank_of(v.type) != 1:
            raise IRError(f"{what}: operands must be rank-1 (element type scalar)")
    elems = [elem_type(v.type) for v in avars]
    nes = ne if isinstance(ne, (tuple, list)) else (ne,)
    if len(nes) != len(avars):
        raise IRError(f"{what}: {len(avars)} arrays need {len(avars)} neutral elements")
    lam, ne_atoms = _binop_lambda(op, nes, elems)
    return lam, ne_atoms, avars


def reduce_(op: Callable, ne, *arrs) -> Union[TVal, Tuple[TVal, ...]]:
    """``reduce op ne xs`` with an associative ``op``.

    For ``k`` arrays, ``op`` receives ``2k`` scalars ``(a1..ak, b1..bk)`` and
    returns ``k`` — the tuple-reduction form used e.g. for argmin."""
    lam, ne_atoms, avars = _soac_args(op, ne, arrs, "reduce")
    vs = cur_builder().reduce(lam, ne_atoms, avars, names=["r"] * len(ne_atoms))
    return _pack([TVal(v) for v in vs])


def scan_(op: Callable, ne, *arrs) -> Union[TVal, Tuple[TVal, ...]]:
    """Inclusive prefix scan with an associative ``op`` (see ``reduce_``)."""
    lam, ne_atoms, avars = _soac_args(op, ne, arrs, "scan")
    vs = cur_builder().scan(lam, ne_atoms, avars, names=["s"] * len(ne_atoms))
    return _pack([TVal(v) for v in vs])


def reduce_by_index(num_bins, op: Callable, ne, inds, *vals) -> Union[TVal, Tuple[TVal, ...]]:
    """Generalised histogram: fold values landing in the same bin with ``op``
    (associative & commutative).  Out-of-range indices are ignored."""
    lam, ne_atoms, avars = _soac_args(op, ne, vals, "reduce_by_index")
    iv = _arr_var(lift(inds), "reduce_by_index")
    nb = lift(num_bins, ty=I64).atom
    vs = cur_builder().reduce_by_index(nb, lam, ne_atoms, iv, avars, names=["h"] * len(ne_atoms))
    return _pack([TVal(v) for v in vs])


def scatter(dest, inds, vals) -> TVal:
    """Bulk in-place update; consumes ``dest`` (functional copy semantics in
    the executors).  Indices must not contain duplicates."""
    d = _arr_var(lift(dest), "scatter")
    i = _arr_var(lift(inds), "scatter")
    v = _arr_var(lift(vals), "scatter")
    return TVal(cur_builder().scatter(d, i, v))


def gather(arr, inds) -> TVal:
    """``map (i -> arr[i]) inds``."""
    a = _arr_var(lift(arr), "gather")
    i = _arr_var(lift(inds), "gather")
    return TVal(cur_builder().gather(a, i))


# ---------------------------------------------------------------------------
# Array constructors / utilities
# ---------------------------------------------------------------------------


def iota(n, dtype: Scalar = I64) -> TVal:
    return TVal(cur_builder().emit1(Iota(lift(n, ty=I64).atom, dtype), "is"))


def replicate(n, v) -> TVal:
    return TVal(cur_builder().emit1(Replicate(lift(n, ty=I64).atom, lift(v).atom), "r"))


def size(arr, dim: int = 0) -> TVal:
    return TVal(cur_builder().emit1(Size(_arr_var(lift(arr), "size"), dim), "n"))


def zeros_like(x) -> TVal:
    return TVal(cur_builder().emit1(ZerosLike(lift(x).atom), "z"))


def reverse(x) -> TVal:
    return TVal(cur_builder().emit1(Reverse(_arr_var(lift(x), "reverse")), "rev"))


def concat(x, y) -> TVal:
    return TVal(
        cur_builder().emit1(
            Concat(_arr_var(lift(x), "concat"), _arr_var(lift(y), "concat")), "cat"
        )
    )


def update(arr, idx, v) -> TVal:
    """``arr with [idx] <- v`` — functional in-place update."""
    a = _arr_var(lift(arr), "update")
    idx = idx if isinstance(idx, (tuple, list)) else (idx,)
    ia = tuple(lift(i, ty=I64).atom for i in idx)
    va = lift(v, like=lift(arr) if is_float(elem_type(a.type)) else None).atom
    return TVal(cur_builder().emit1(Update(a, ia, va), a.name))


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


def _trace_state_body(body_out, b, state_types) -> Tuple:
    outs = body_out if isinstance(body_out, (tuple, list)) else (body_out,)
    if len(outs) != len(state_types):
        raise IRError(
            f"loop body must return {len(state_types)} state values, got {len(outs)}"
        )
    res = []
    for o, t in zip(outs, state_types):
        ov = lift(o)
        if ov.atom.type != t:
            raise IRError(
                f"loop body state type changed: {ov.atom.type} != {t} "
                f"(loop-variant values must keep their type/rank)"
            )
        res.append(ov.atom)
    return b.finish(tuple(res))


def fori_loop(n, body_fn: Callable, init, *, stripmine: int = 0, checkpoint: str = "iters"):
    """``loop (state = init) for i < n do body_fn(i, *state)``.

    ``stripmine=k`` strip-mines the loop ``k`` times before reverse AD (the
    paper's §4.3 time–space knob); ``checkpoint="entry"`` marks the loop as
    free of false dependencies (§6.2) so only the loop entry is checkpointed.
    """
    inits = init if isinstance(init, (tuple, list)) else (init,)
    in_tv = _as_tvals(inits)
    params = tuple(Var(fresh("p"), t.atom.type) for t in in_tv)
    ivar = Var(fresh("i"), I64)
    with scope() as b:
        out = body_fn(TVal(ivar), *[TVal(p) for p in params])
        body = _trace_state_body(out, b, [p.type for p in params])
    vs = cur_builder().loop(
        params,
        tuple(t.atom for t in in_tv),
        ivar,
        lift(n, ty=I64).atom,
        body,
        stripmine=stripmine,
        checkpoint=checkpoint,
    )
    return _pack([TVal(v) for v in vs])


def while_loop(cond_fn: Callable, body_fn: Callable, init, *, bound=None):
    """``loop (state = init) while cond_fn(*state) do body_fn(*state)``.

    Reverse AD of a while loop needs ``bound`` (a static iteration bound) —
    the ``while_bound`` pass turns it into a guarded for-loop (§6.2).
    """
    inits = init if isinstance(init, (tuple, list)) else (init,)
    in_tv = _as_tvals(inits)
    params = tuple(Var(fresh("p"), t.atom.type) for t in in_tv)
    with scope() as cb:
        c = cond_fn(*[TVal(p) for p in params])
        cbody = cb.finish((lift(c).atom,))
    cond_lam = Lambda(params, cbody)
    with scope() as b:
        out = body_fn(*[TVal(p) for p in params])
        body = _trace_state_body(out, b, [p.type for p in params])
    vs = cur_builder().while_loop(
        params, tuple(t.atom for t in in_tv), cond_lam, body,
        bound=None if bound is None else lift(bound, ty=I64).atom,
    )
    return _pack([TVal(v) for v in vs])


def cond(pred, then_fn: Callable, else_fn: Callable):
    """``if pred then then_fn() else else_fn()`` — branches are thunks that
    close over traced values; both must return the same shape of results."""
    p = lift(pred)
    if p.dtype is not BOOL or p.rank != 0:
        raise IRError("cond: predicate must be a boolean scalar")
    with scope() as tb:
        t_out = then_fn()
        touts = t_out if isinstance(t_out, (tuple, list)) else (t_out,)
        t_tv = _as_tvals(touts)
        then = tb.finish(tuple(t.atom for t in t_tv))
    with scope() as fb:
        f_out = else_fn()
        fouts = f_out if isinstance(f_out, (tuple, list)) else (f_out,)
        f_tv = []
        for fo, t in zip(fouts, t_tv):
            f_tv.append(lift(fo, like=t if is_float(t.dtype) else None))
        els = fb.finish(tuple(f.atom for f in f_tv))
    if len(touts) != len(fouts):
        raise IRError("cond: branches return different numbers of values")
    vs = cur_builder().if_(p.atom, then, els, names=["c"] * len(then.result))
    return _pack([TVal(v) for v in vs])


# ---------------------------------------------------------------------------
# Scalar math
# ---------------------------------------------------------------------------


def where(c, t, f) -> TVal:
    tl = lift(t)
    return TVal(
        cur_builder().emit1(
            Select(lift(c).atom, tl.atom, lift(f, like=tl if is_float(tl.dtype) else None).atom), "w"
        )
    )


def minimum(x, y) -> TVal:
    xl = lift(x)
    return xl._bin("min", y)


def maximum(x, y) -> TVal:
    xl = lift(x)
    return xl._bin("max", y)


def astype(x, dtype: Scalar) -> TVal:
    return TVal(cur_builder().cast(lift(x).atom, dtype))


def _unop(name: str):
    def f(x) -> TVal:
        return TVal(cur_builder().unop(name, lift(x).atom))

    f.__name__ = name
    f.__doc__ = f"Elementwise ``{name}``."
    return f


sin = _unop("sin")
cos = _unop("cos")
tan = _unop("tan")
exp = _unop("exp")
log = _unop("log")
sqrt = _unop("sqrt")
tanh = _unop("tanh")
sigmoid = _unop("sigmoid")
erf = _unop("erf")
floor = _unop("floor")
sign = _unop("sgn")
abs_ = _unop("abs")


# ---------------------------------------------------------------------------
# Sugar (library functions written in the surface language)
# ---------------------------------------------------------------------------


def sum_(xs) -> TVal:
    """``reduce (+) 0 xs``."""
    return reduce_(lambda a, b: a + b, 0.0 if is_float(lift(xs).dtype) else 0, xs)


def prod_(xs) -> TVal:
    return reduce_(lambda a, b: a * b, 1.0 if is_float(lift(xs).dtype) else 1, xs)


def min_(xs) -> TVal:
    return reduce_(lambda a, b: minimum(a, b), np.inf, xs)


def max_(xs) -> TVal:
    return reduce_(lambda a, b: maximum(a, b), -np.inf, xs)


def dot(xs, ys) -> TVal:
    """``sum (map2 (*) xs ys)``."""
    return sum_(map_(lambda x, y: x * y, xs, ys))


def matmul(a, b) -> TVal:
    """Dense matrix product written with nested maps — its reverse AD
    produces exactly the accumulator pattern that §6.1's optimisation turns
    back into two matmul-shaped map-reduce kernels."""
    al = lift(a)
    bl = lift(b)
    if al.rank != 2 or bl.rank != 2:
        raise IRError("matmul: operands must be rank-2")
    ncols = size(bl, dim=1)
    k = size(bl, dim=0)

    def row(arow):
        def entry(j):
            return sum_(map_(lambda kk: arow[kk] * bl[kk, j], iota(k)))

        return map_(entry, iota(ncols))

    return map_(row, al)


def transpose(a) -> TVal:
    """Transpose a rank-2 array via gathers (no dedicated IR construct)."""
    al = lift(a)
    if al.rank != 2:
        raise IRError("transpose: operand must be rank-2")
    nrows = size(al, dim=0)
    ncols = size(al, dim=1)
    return map_(lambda j: map_(lambda i: al[i, j], iota(nrows)), iota(ncols))
