"""Comparator baselines: an eager tape-based NumPy autodiff (PyTorch /
Tapenade stand-in, memory-instrumented)."""
from . import eager  # noqa: F401
