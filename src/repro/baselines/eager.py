"""Eager, tape-based reverse-mode AD over NumPy — the comparator baseline.

This is the execution model of the tools the paper compares against:

* like **PyTorch**, operations execute eagerly on whole arrays and every
  intermediate is recorded on a global tape; ``backward`` replays the tape
  in reverse;
* like **Tapenade**'s store-all strategy, *all* primal intermediates are
  retained until the return sweep — there is no redundant-execution /
  recompute-from-scope trade; the instrumented ``tape_bytes`` /
  ``peak_tape_bytes`` make the memory contrast with the paper's tapeless
  approach measurable.

Only the operations the benchmark applications need are implemented, but
they are implemented properly: full broadcasting (with gradient
un-broadcasting), matmul, reductions with axes, gather/index and
scatter-add, stacking, and the usual transcendentals.
"""
from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

try:
    from scipy.special import erf as _sp_erf
except Exception:  # pragma: no cover
    _sp_erf = np.vectorize(__import__("math").erf)

__all__ = ["T", "Tape", "tape", "grad", "value_and_grad"]


class Tape:
    """The global operation tape; records nodes and retained bytes."""

    def __init__(self) -> None:
        self.nodes: List["T"] = []
        self.tape_bytes = 0
        self.peak_tape_bytes = 0

    def record(self, t: "T") -> None:
        self.nodes.append(t)
        self.tape_bytes += t.data.nbytes
        self.peak_tape_bytes = max(self.peak_tape_bytes, self.tape_bytes)

    def reset(self) -> None:
        self.nodes.clear()
        self.tape_bytes = 0
        self.peak_tape_bytes = 0


tape = Tape()


def _unbroadcast(g: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``g`` down to ``shape`` (reverse of NumPy broadcasting)."""
    g = np.asarray(g)
    if g.shape == shape:
        return g
    nd = g.ndim - len(shape)
    if nd > 0:
        g = g.sum(axis=tuple(range(nd)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and g.shape[i] != 1)
    if axes:
        g = g.sum(axis=axes, keepdims=True)
    return g.reshape(shape)


class T:
    """A taped tensor."""

    __slots__ = ("data", "grad", "parents", "bwd", "requires_grad")
    __array_priority__ = 1000

    def __init__(
        self,
        data,
        parents: Sequence["T"] = (),
        bwd: Optional[Callable[[np.ndarray], Sequence[Optional[np.ndarray]]]] = None,
        requires_grad: bool = False,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.parents = tuple(parents)
        self.bwd = bwd
        self.requires_grad = requires_grad or any(p.requires_grad for p in parents)
        if self.requires_grad and parents:
            tape.record(self)

    # -- helpers ---------------------------------------------------------------

    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    def __repr__(self) -> str:
        return f"T(shape={self.data.shape})"

    # -- reverse sweep ------------------------------------------------------------

    def backward(self, seed=None) -> None:
        order: List[T] = []
        seen = set()

        def topo(t: "T") -> None:
            if id(t) in seen or not t.requires_grad:
                return
            seen.add(id(t))
            for p in t.parents:
                topo(p)
            order.append(t)

        topo(self)
        for t in order:
            t.grad = None
        self.grad = (
            np.ones_like(self.data) if seed is None else np.asarray(seed, dtype=np.float64)
        )
        for t in reversed(order):
            if t.bwd is None or t.grad is None:
                continue
            gs = t.bwd(t.grad)
            for p, g in zip(t.parents, gs):
                if g is None or not p.requires_grad:
                    continue
                g = _unbroadcast(g, p.data.shape)
                p.grad = g if p.grad is None else p.grad + g

    # -- arithmetic -----------------------------------------------------------------

    def _lift(self, o) -> "T":
        return o if isinstance(o, T) else T(o)

    def __add__(self, o):
        o = self._lift(o)
        return T(self.data + o.data, (self, o), lambda g: (g, g))

    __radd__ = __add__

    def __sub__(self, o):
        o = self._lift(o)
        return T(self.data - o.data, (self, o), lambda g: (g, -g))

    def __rsub__(self, o):
        return self._lift(o) - self

    def __mul__(self, o):
        o = self._lift(o)
        return T(self.data * o.data, (self, o), lambda g: (g * o.data, g * self.data))

    __rmul__ = __mul__

    def __truediv__(self, o):
        o = self._lift(o)
        out = self.data / o.data
        return T(out, (self, o), lambda g: (g / o.data, -g * out / o.data))

    def __rtruediv__(self, o):
        return self._lift(o) / self

    def __neg__(self):
        return T(-self.data, (self,), lambda g: (-g,))

    def __pow__(self, k):
        if isinstance(k, T):
            out = self.data ** k.data
            return T(
                out,
                (self, k),
                lambda g: (
                    g * k.data * self.data ** (k.data - 1),
                    g * out * np.log(self.data),
                ),
            )
        return T(
            self.data ** k, (self,), lambda g: (g * k * self.data ** (k - 1),)
        )

    def __matmul__(self, o):
        o = self._lift(o)
        return T(
            self.data @ o.data,
            (self, o),
            lambda g: (g @ o.data.swapaxes(-1, -2), self.data.swapaxes(-1, -2) @ g),
        )

    # -- indexing ----------------------------------------------------------------------

    def __getitem__(self, idx):
        out = self.data[idx]

        def bwd(g):
            gi = np.zeros_like(self.data)
            np.add.at(gi, idx, g)
            return (gi,)

        return T(out, (self,), bwd)

    @property
    def Tr(self) -> "T":
        return T(self.data.T, (self,), lambda g: (g.T,))

    def reshape(self, *shape):
        old = self.data.shape
        return T(self.data.reshape(*shape), (self,), lambda g: (g.reshape(old),))

    def sum(self, axis=None, keepdims=False):
        out = self.data.sum(axis=axis, keepdims=keepdims)

        def bwd(g):
            g = np.asarray(g)
            if axis is None:
                return (np.broadcast_to(g, self.data.shape).copy(),)
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.data.shape).copy(),)

        return T(out, (self,), bwd)

    def max(self, axis=None, keepdims=False):
        out = self.data.max(axis=axis, keepdims=keepdims)

        def bwd(g):
            g = np.asarray(g)
            full = out if keepdims or axis is None else np.expand_dims(out, axis)
            mask = self.data == full
            mask = mask / mask.sum(axis=axis, keepdims=True)
            gg = g if keepdims or axis is None else np.expand_dims(g, axis)
            return (mask * gg,)

        return T(out, (self,), bwd)

    def min(self, axis=None, keepdims=False):
        return -((-self).max(axis=axis, keepdims=keepdims))


# -- free functions -------------------------------------------------------------------


def _unop(fn, dfn):
    def f(x: T) -> T:
        x = x if isinstance(x, T) else T(x)
        out = fn(x.data)
        return T(out, (x,), lambda g: (g * dfn(x.data, out),))

    return f


exp = _unop(np.exp, lambda x, y: y)
log = _unop(np.log, lambda x, y: 1.0 / x)
sqrt = _unop(np.sqrt, lambda x, y: 0.5 / y)
sin = _unop(np.sin, lambda x, y: np.cos(x))
cos = _unop(np.cos, lambda x, y: -np.sin(x))
tanh = _unop(np.tanh, lambda x, y: 1.0 - y * y)
erf = _unop(_sp_erf, lambda x, y: 2.0 / np.sqrt(np.pi) * np.exp(-x * x))
abs_ = _unop(np.abs, lambda x, y: np.sign(x))


def sigmoid(x: T) -> T:
    x = x if isinstance(x, T) else T(x)
    out = 0.5 * (np.tanh(0.5 * x.data) + 1.0)
    return T(out, (x,), lambda g: (g * out * (1.0 - out),))


def maximum(a, b) -> T:
    a = a if isinstance(a, T) else T(a)
    b = b if isinstance(b, T) else T(b)
    out = np.maximum(a.data, b.data)
    return T(
        out,
        (a, b),
        lambda g: (g * (a.data >= b.data), g * (a.data < b.data)),
    )


def minimum(a, b) -> T:
    a = a if isinstance(a, T) else T(a)
    b = b if isinstance(b, T) else T(b)
    out = np.minimum(a.data, b.data)
    return T(
        out,
        (a, b),
        lambda g: (g * (a.data <= b.data), g * (a.data > b.data)),
    )


def where(c, a, b) -> T:
    c = np.asarray(c.data if isinstance(c, T) else c)
    a = a if isinstance(a, T) else T(a)
    b = b if isinstance(b, T) else T(b)
    return T(
        np.where(c, a.data, b.data),
        (a, b),
        lambda g: (np.where(c, g, 0.0), np.where(c, 0.0, g)),
    )


def stack(ts: Sequence[T], axis: int = 0) -> T:
    ts = [t if isinstance(t, T) else T(t) for t in ts]
    out = np.stack([t.data for t in ts], axis=axis)

    def bwd(g):
        return tuple(np.take(g, i, axis=axis) for i in range(len(ts)))

    return T(out, tuple(ts), bwd)


def concat(ts: Sequence[T], axis: int = 0) -> T:
    ts = [t if isinstance(t, T) else T(t) for t in ts]
    out = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.data.shape[axis] for t in ts]

    def bwd(g):
        outs = []
        off = 0
        for s in sizes:
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(off, off + s)
            outs.append(g[tuple(sl)])
            off += s
        return tuple(outs)

    return T(out, tuple(ts), bwd)


def gather(x: T, idx) -> T:
    return x[np.asarray(idx)]


def scatter_add(x: T, idx, v: T) -> T:
    """out = x with out[idx] += v (taped)."""
    x = x if isinstance(x, T) else T(x)
    v = v if isinstance(v, T) else T(v)
    out = np.array(x.data)
    np.add.at(out, np.asarray(idx), v.data)

    def bwd(g):
        return (g, g[np.asarray(idx)])

    return T(out, (x, v), bwd)


def logsumexp(x: T, axis=None, keepdims=False) -> T:
    m = T(x.data.max(axis=axis, keepdims=True))
    y = log((exp(x - m)).sum(axis=axis, keepdims=True)) + m
    if not keepdims and axis is not None:
        y = T(np.squeeze(y.data, axis=axis), (y,), lambda g: (np.expand_dims(g, axis),))
    elif not keepdims and axis is None:
        y = T(y.data.reshape(()), (y,), lambda g: (np.reshape(g, (1,) * x.ndim),))
    return y


def grad(f: Callable) -> Callable:
    """Gradient of a scalar function of T arguments."""

    def run(*args):
        tape.reset()
        ts = [T(a, requires_grad=True) for a in args]
        out = f(*ts)
        out.backward()
        gs = tuple(
            t.grad if t.grad is not None else np.zeros_like(t.data) for t in ts
        )
        return gs[0] if len(gs) == 1 else gs

    return run


def value_and_grad(f: Callable) -> Callable:
    def run(*args):
        tape.reset()
        ts = [T(a, requires_grad=True) for a in args]
        out = f(*ts)
        out.backward()
        gs = tuple(
            t.grad if t.grad is not None else np.zeros_like(t.data) for t in ts
        )
        return out.data, (gs[0] if len(gs) == 1 else gs)

    return run
