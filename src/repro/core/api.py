"""User-facing AD entry points: ``jvp``, ``vjp``, ``grad``, ``jacobian``,
``hessian_diag``.

These mirror the paper's ``jvp``/``vjp`` language constructs (§2.0.1/2.0.2):

* ``vjp(f)(x̲, ȳ) = ȳ · J_f(x̲)``  — reverse mode, one pass for a full
  gradient of a scalar function;
* ``jvp(f)(x̲, ẋ) = J_f(x̲) · ẋ``  — forward mode, one pass per direction;
* ``jacobian`` maps ``vjp``/``jvp`` over a basis, picking the cheaper mode
  from the input/output dimensions;
* ``hessian_diag`` nests forward over reverse (the §7.4 k-means trick —
  sparsity exploited by choosing seed vectors).

Batched seeds
-------------

On the batched-capable backends (``vec``, ``plan``, ``shard``) ``jacobian``
evaluates *all* basis seeds in a single pass: the n (fwd) or m (rev) seed
vectors are stacked on a leading batch axis and the derivative function runs
once with that axis treated as one more parallel level — instead of n/m
separate interpreter invocations.  On ``shard`` that seed axis is
additionally partitioned across the worker pool (``exec/shard.py``).  Pass
``batched=False`` to force the per-seed loop (the only strategy available
on the ``ref`` backend).
"""
from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..exec.registry import batched_backends, default_backend, get_backend
from ..frontend.function import Compiled, compile_fun
from ..ir.ast import Fun
from ..ir.types import is_float, rank_of
from ..opt.pipeline import AD_SAFE_PASSES, optimize_fun
from ..opt.while_bound import while_bound_fun
from ..opt.stripmine import stripmine_fun
from ..util import ADError
from .jvp import jvp_fun
from .vjp import vjp_fun

__all__ = ["jvp", "vjp", "grad", "value_and_grad", "jacobian", "hessian_diag"]

FunLike = Union[Fun, Compiled]


def _fun_of(f: FunLike) -> Fun:
    if isinstance(f, Compiled):
        return f.fun
    return f


def _pre_ad(fun: Fun) -> Fun:
    """Pre-AD pipeline: simplify, bound while loops, apply strip-mining
    annotations (the paper runs AD on an already heavily-optimised program).

    Runs the AD-safe pass set only: the input may come from an
    already-optimised ``Compiled`` whose fused redomap-shaped operators the
    AD rules cannot differentiate — ``vjp_fun``/``jvp_fun`` unfuse their
    input, and nothing here may re-fuse it.  The post-AD optimisation of
    the derivative function re-fuses — the paper's "AD preserves fusion
    opportunities" round trip.
    """
    fun = optimize_fun(fun, passes=AD_SAFE_PASSES)
    fun = while_bound_fun(fun)
    fun = stripmine_fun(fun)
    return optimize_fun(fun, passes=AD_SAFE_PASSES)


def _as_tuple(res) -> tuple:
    """Normalise a ``Compiled`` call result (which unwraps singletons)."""
    return res if isinstance(res, tuple) else (res,)


class ADFunction(Compiled):
    """A compiled derivative function with bookkeeping about its shape."""

    def __init__(
        self, fun: Fun, n_primal_out: int, optimize: bool = True, passes=None,
        schedule=None,
    ) -> None:
        super().__init__(fun, optimize=optimize, passes=passes, schedule=schedule)
        self.n_primal_out = n_primal_out


def vjp(
    f: FunLike, optimize: bool = True, acc_opt: bool = True, wrt=None, passes=None,
    schedule=None,
) -> ADFunction:
    """Reverse-mode derivative.

    ``vjp(f)(*args, *seeds)`` returns ``(*primal_results, *adjoints)`` where
    ``seeds`` are the adjoints of ``f``'s float results and ``adjoints`` are
    the adjoints of ``f``'s float parameters.  ``acc_opt`` applies the §6.1
    accumulator→reduce/histogram rewrites (on by default, as in the paper;
    disable for the ablation).  ``passes`` selects the optimisation passes
    applied to the *derivative* program (the pre-AD pipeline always runs the
    AD-safe set).  ``schedule`` overrides the derivative program's execution
    schedule (see ``ir.schedule``; applied after its optimisation).
    """
    fun = _pre_ad(_fun_of(f))
    out = vjp_fun(fun, wrt=wrt)
    if acc_opt:
        from ..opt.acc_opt import acc_opt_fun

        out = acc_opt_fun(out)
    return ADFunction(
        out, len(fun.body.result), optimize=optimize, passes=passes,
        schedule=schedule,
    )


def jvp(f: FunLike, optimize: bool = True, passes=None, schedule=None) -> ADFunction:
    """Forward-mode derivative.

    ``jvp(f)(*args, *tangents)`` returns ``(*primal_results, *tangent_results)``.
    """
    fun = _pre_ad(_fun_of(f))
    out = jvp_fun(fun)
    return ADFunction(
        out, len(fun.body.result), optimize=optimize, passes=passes,
        schedule=schedule,
    )


def grad(
    f: FunLike, optimize: bool = True, wrt=None, passes=None, schedule=None
) -> Callable:
    """Gradient of a scalar-valued function: ``grad(f)(*args)`` returns the
    adjoints of the (``wrt``-selected) float parameters."""
    fun = _fun_of(f)
    n_res = len(fun.body.result)
    r0 = fun.body.result[0].type
    if n_res != 1 or not is_float(r0) or rank_of(r0) != 0:
        raise ADError("grad: function must return a single float scalar")
    g = vjp(f, optimize=optimize, wrt=wrt, passes=passes, schedule=schedule)

    def run(*args, backend: Optional[str] = None):
        res = _as_tuple(g(*args, 1.0, backend=backend or default_backend()))
        adjs = res[1:]
        return adjs[0] if len(adjs) == 1 else adjs

    run.adfun = g  # type: ignore[attr-defined]
    return run


def value_and_grad(
    f: FunLike, optimize: bool = True, wrt=None, passes=None, schedule=None
) -> Callable:
    """Like ``grad`` but also returns the primal value."""
    fun = _fun_of(f)
    r0 = fun.body.result[0].type
    if len(fun.body.result) != 1 or not is_float(r0) or rank_of(r0) != 0:
        raise ADError("value_and_grad: function must return a single float scalar")
    g = vjp(f, optimize=optimize, wrt=wrt, passes=passes, schedule=schedule)

    def run(*args, backend: Optional[str] = None):
        # Normalise exactly as ``grad`` does: ``Compiled`` unwraps singleton
        # results, so ``res`` may be a bare value rather than a tuple.
        res = _as_tuple(g(*args, 1.0, backend=backend or default_backend()))
        adjs = res[1:]
        return res[0], (adjs[0] if len(adjs) == 1 else adjs)

    run.adfun = g  # type: ignore[attr-defined]
    return run


def jacobian(f: FunLike, mode: Optional[str] = None) -> Callable:
    """Dense Jacobian of a single-input/single-output function.

    ``mode`` is "fwd" (map ``jvp`` over input basis vectors), "rev" (map
    ``vjp`` over output basis vectors), or None to choose by dimensions at
    call time — the §2 cost argument.

    The returned callable accepts ``backend`` and ``batched`` keywords.  On
    the batched-capable backends (``vec``/``plan``/``shard``) all basis
    seeds are evaluated in one batched pass by default — on ``shard`` the
    stacked seeds additionally become the shard axis, spreading the pass
    across the worker pool; ``batched=False`` forces the per-seed loop,
    which is also the fallback on ``ref``.
    """
    fun = _fun_of(f)
    if len(fun.params) != 1 or len(fun.body.result) != 1:
        raise ADError("jacobian: use vjp/jvp directly for multi-arg functions")
    primal = compile_fun(fun)  # compiled once, outside the hot path
    fwd = jvp(f)
    rev = vjp(f)

    def run(x, backend: Optional[str] = None, batched: Optional[bool] = None):
        backend = backend or default_backend()
        be = get_backend(backend)  # fail early, naming the registered set
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(primal(x, backend=backend))
        n, m = x.size, y.size
        use = mode or ("fwd" if n <= m else "rev")
        use_batched = batched if batched is not None else be.batched
        if use_batched and not be.batched:
            raise ADError(
                f"jacobian: batched seeds are not supported on backend "
                f"{backend!r}; choose from {batched_backends()} or pass "
                f"batched=False"
            )
        if use == "fwd":
            if use_batched:
                seeds = np.eye(n, dtype=np.float64).reshape((n,) + x.shape)
                out = fwd.call_batched((x, seeds), (False, True), n, backend=backend)
                dys = np.asarray(out[-1]).reshape(n, -1)  # (n, m)
                return dys.T.reshape(y.shape + x.shape)
            rows = []
            for i in range(n):
                seed = np.zeros_like(x).reshape(-1)
                seed[i] = 1.0
                out = _as_tuple(fwd(x, seed.reshape(x.shape), backend=backend))
                rows.append(np.asarray(out[-1]).reshape(-1))
            return np.stack(rows, axis=1).reshape(y.shape + x.shape)
        if use_batched:
            seeds = np.eye(m, dtype=np.float64).reshape((m,) + y.shape)
            out = rev.call_batched((x, seeds), (False, True), m, backend=backend)
            xbars = np.asarray(out[-1]).reshape(m, -1)  # (m, n)
            return xbars.reshape(y.shape + x.shape)
        rows = []
        for j in range(m):
            seed = np.zeros_like(y).reshape(-1)
            seed[j] = 1.0
            out = _as_tuple(rev(x, seed.reshape(y.shape), backend=backend))
            rows.append(np.asarray(out[-1]).reshape(-1))
        return np.stack(rows, axis=0).reshape(y.shape + x.shape)

    run.fwd = fwd  # type: ignore[attr-defined]
    run.rev = rev  # type: ignore[attr-defined]
    return run


def hessian_diag(f: FunLike, wrt: int = 0) -> Callable:
    """Diagonal of the Hessian of a scalar function with respect to the
    ``wrt``-th parameter, computed with a *single* ``jvp(vjp(f))``
    invocation: when the Hessian is diagonal, seeding the all-ones tangent
    returns ``H·1`` = the diagonal — the sparsity-through-seeding trick of
    §7.4 (k-means).  Other parameters are treated as data.

    The tangent calling convention is derived from the parameter lists the
    transforms actually produced (never assumed positionally): ``jvp`` of
    ``gradf`` appends one tangent per float parameter of ``gradf`` — the
    float parameters of ``f`` in order, then the adjoint seed.  Any mismatch
    raises ``ADError`` instead of silently mis-seeding.
    """
    fun = _pre_ad(_fun_of(f))
    r0 = fun.body.result[0].type
    if len(fun.body.result) != 1 or not is_float(r0) or rank_of(r0) != 0:
        raise ADError("hessian_diag: function must return a single float scalar")
    if not 0 <= wrt < len(fun.params):
        # Negative indices would pass ``params[wrt]`` but never match the
        # (non-negative) parameter positions when seeding tangents, silently
        # yielding H·0 = zeros — reject them outright.
        raise ADError(
            f"hessian_diag: wrt={wrt} out of range for {len(fun.params)} parameters"
        )
    if not is_float(fun.params[wrt].type):
        raise ADError("hessian_diag: wrt parameter must be a float array")
    from ..opt.acc_opt import acc_opt_fun

    gradf = vjp_fun(fun, wrt=[wrt])  # (params..., seed) -> (y, xbar)
    # AD-safe passes only: ``gradf`` is differentiated again below, so the
    # fusion pass (whose redomap shapes the jvp rules cannot handle) must
    # not run until the final ADFunction compilation.
    gradf = acc_opt_fun(optimize_fun(gradf, passes=AD_SAFE_PASSES))
    hof = jvp_fun(optimize_fun(gradf, passes=AD_SAFE_PASSES))
    compiled = ADFunction(hof, len(gradf.body.result))

    # Derive (and check) the tangent ordering from the actual parameter
    # lists rather than trusting positional conventions.
    n_args = len(fun.params)
    gparams = gradf.params
    if len(gparams) != n_args + 1 or [p.name for p in gparams[:n_args]] != [
        p.name for p in fun.params
    ]:
        raise ADError(
            "hessian_diag: vjp produced an unexpected parameter list "
            f"{[p.name for p in gparams]} for primal parameters "
            f"{[p.name for p in fun.params]}"
        )
    seed_param = gparams[-1]
    if not is_float(seed_param.type) or rank_of(seed_param.type) != 0:
        raise ADError(
            f"hessian_diag: expected a scalar float adjoint seed parameter, "
            f"got {seed_param.name}: {seed_param.type}"
        )
    float_idx = [i for i, p in enumerate(gparams) if is_float(p.type)]
    tan_params = hof.params[len(gparams):]
    if len(tan_params) != len(float_idx):
        raise ADError(
            f"hessian_diag: jvp produced {len(tan_params)} tangent "
            f"parameters for {len(float_idx)} float parameters"
        )

    def run(*args, backend: Optional[str] = None):
        backend = backend or default_backend()
        if len(args) != n_args:
            raise ADError(
                f"hessian_diag: expected {n_args} arguments, got {len(args)}"
            )
        tangents = []
        for i in float_idx:
            if i < n_args:  # a float parameter of f
                a = np.asarray(args[i], dtype=np.float64)
                tangents.append(np.ones_like(a) if i == wrt else np.zeros_like(a))
            else:  # the adjoint seed: constant 1.0, so its tangent is zero
                tangents.append(0.0)
        out = compiled(*args, 1.0, *tangents, backend=backend)
        # Results: (y, x̄, ẏ, x̄̇) — the last is (d/dε)∇f(x+ε·1) = H·1.
        return np.asarray(out[-1])

    run.adfun = compiled  # type: ignore[attr-defined]
    return run
