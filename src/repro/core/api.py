"""User-facing AD entry points: ``jvp``, ``vjp``, ``grad``, ``jacobian``,
``hessian_diag``.

These mirror the paper's ``jvp``/``vjp`` language constructs (§2.0.1/2.0.2):

* ``vjp(f)(x̲, ȳ) = ȳ · J_f(x̲)``  — reverse mode, one pass for a full
  gradient of a scalar function;
* ``jvp(f)(x̲, ẋ) = J_f(x̲) · ẋ``  — forward mode, one pass per direction;
* ``jacobian`` maps ``vjp``/``jvp`` over a basis, picking the cheaper mode
  from the input/output dimensions;
* ``hessian_diag`` nests forward over reverse (the §7.4 k-means trick —
  sparsity exploited by choosing seed vectors).
"""
from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..frontend.function import Compiled, compile_fun
from ..ir.ast import Fun
from ..ir.types import is_float, rank_of
from ..opt.pipeline import optimize_fun
from ..opt.while_bound import while_bound_fun
from ..opt.stripmine import stripmine_fun
from ..util import ADError
from .jvp import jvp_fun
from .vjp import vjp_fun

__all__ = ["jvp", "vjp", "grad", "value_and_grad", "jacobian", "hessian_diag"]

FunLike = Union[Fun, Compiled]


def _fun_of(f: FunLike) -> Fun:
    if isinstance(f, Compiled):
        return f.fun
    return f


def _pre_ad(fun: Fun) -> Fun:
    """Pre-AD pipeline: simplify, bound while loops, apply strip-mining
    annotations (the paper runs AD on an already heavily-optimised program)."""
    fun = optimize_fun(fun)
    fun = while_bound_fun(fun)
    fun = stripmine_fun(fun)
    return optimize_fun(fun)


class ADFunction(Compiled):
    """A compiled derivative function with bookkeeping about its shape."""

    def __init__(self, fun: Fun, n_primal_out: int, optimize: bool = True) -> None:
        super().__init__(fun, optimize=optimize)
        self.n_primal_out = n_primal_out


def vjp(f: FunLike, optimize: bool = True, acc_opt: bool = True, wrt=None) -> ADFunction:
    """Reverse-mode derivative.

    ``vjp(f)(*args, *seeds)`` returns ``(*primal_results, *adjoints)`` where
    ``seeds`` are the adjoints of ``f``'s float results and ``adjoints`` are
    the adjoints of ``f``'s float parameters.  ``acc_opt`` applies the §6.1
    accumulator→reduce/histogram rewrites (on by default, as in the paper;
    disable for the ablation).
    """
    fun = _pre_ad(_fun_of(f))
    out = vjp_fun(fun, wrt=wrt)
    if acc_opt:
        from ..opt.acc_opt import acc_opt_fun

        out = acc_opt_fun(out)
    return ADFunction(out, len(fun.body.result), optimize=optimize)


def jvp(f: FunLike, optimize: bool = True) -> ADFunction:
    """Forward-mode derivative.

    ``jvp(f)(*args, *tangents)`` returns ``(*primal_results, *tangent_results)``.
    """
    fun = _pre_ad(_fun_of(f))
    out = jvp_fun(fun)
    return ADFunction(out, len(fun.body.result), optimize=optimize)


def grad(f: FunLike, optimize: bool = True, wrt=None) -> Callable:
    """Gradient of a scalar-valued function: ``grad(f)(*args)`` returns the
    adjoints of the (``wrt``-selected) float parameters."""
    fun = _fun_of(f)
    n_res = len(fun.body.result)
    r0 = fun.body.result[0].type
    if n_res != 1 or not is_float(r0) or rank_of(r0) != 0:
        raise ADError("grad: function must return a single float scalar")
    g = vjp(f, optimize=optimize, wrt=wrt)

    def run(*args, backend: str = "vec"):
        res = g(*args, 1.0, backend=backend)
        res = res if isinstance(res, tuple) else (res,)
        adjs = res[1:]
        return adjs[0] if len(adjs) == 1 else adjs

    run.adfun = g  # type: ignore[attr-defined]
    return run


def value_and_grad(f: FunLike, optimize: bool = True, wrt=None) -> Callable:
    """Like ``grad`` but also returns the primal value."""
    fun = _fun_of(f)
    r0 = fun.body.result[0].type
    if len(fun.body.result) != 1 or not is_float(r0) or rank_of(r0) != 0:
        raise ADError("value_and_grad: function must return a single float scalar")
    g = vjp(f, optimize=optimize, wrt=wrt)

    def run(*args, backend: str = "vec"):
        res = g(*args, 1.0, backend=backend)
        adjs = res[1:]
        return res[0], (adjs[0] if len(adjs) == 1 else adjs)

    run.adfun = g  # type: ignore[attr-defined]
    return run


def jacobian(f: FunLike, mode: Optional[str] = None) -> Callable:
    """Dense Jacobian of a single-input/single-output function.

    ``mode`` is "fwd" (map ``jvp`` over input basis vectors), "rev" (map
    ``vjp`` over output basis vectors), or None to choose by dimensions at
    call time — the §2 cost argument.
    """
    fun = _fun_of(f)
    if len(fun.params) != 1 or len(fun.body.result) != 1:
        raise ADError("jacobian: use vjp/jvp directly for multi-arg functions")
    fwd = jvp(f)
    rev = vjp(f)

    def run(x, backend: str = "vec"):
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(compile_fun(fun)(x, backend=backend))
        n, m = x.size, y.size
        use = mode or ("fwd" if n <= m else "rev")
        if use == "fwd":
            rows = []
            for i in range(n):
                seed = np.zeros_like(x).reshape(-1)
                seed[i] = 1.0
                out = fwd(x, seed.reshape(x.shape), backend=backend)
                out = out if isinstance(out, tuple) else (out,)
                rows.append(np.asarray(out[-1]).reshape(-1))
            return np.stack(rows, axis=1).reshape(y.shape + x.shape)
        rows = []
        for j in range(m):
            seed = np.zeros_like(y).reshape(-1)
            seed[j] = 1.0
            out = rev(x, seed.reshape(y.shape), backend=backend)
            out = out if isinstance(out, tuple) else (out,)
            rows.append(np.asarray(out[-1]).reshape(-1))
        return np.stack(rows, axis=0).reshape(y.shape + x.shape)

    return run


def hessian_diag(f: FunLike, wrt: int = 0) -> Callable:
    """Diagonal of the Hessian of a scalar function with respect to the
    ``wrt``-th parameter, computed with a *single* ``jvp(vjp(f))``
    invocation: when the Hessian is diagonal, seeding the all-ones tangent
    returns ``H·1`` = the diagonal — the sparsity-through-seeding trick of
    §7.4 (k-means).  Other parameters are treated as data."""
    fun = _pre_ad(_fun_of(f))
    r0 = fun.body.result[0].type
    if len(fun.body.result) != 1 or not is_float(r0) or rank_of(r0) != 0:
        raise ADError("hessian_diag: function must return a single float scalar")
    if not is_float(fun.params[wrt].type):
        raise ADError("hessian_diag: wrt parameter must be a float array")
    from ..opt.acc_opt import acc_opt_fun

    gradf = vjp_fun(fun, wrt=[wrt])  # (params..., seed) -> (y, xbar)
    gradf = acc_opt_fun(optimize_fun(gradf))
    hof = jvp_fun(optimize_fun(gradf))
    compiled = ADFunction(hof, len(gradf.body.result))

    def run(*args, backend: str = "vec"):
        tangents = []
        for i, (p, a) in enumerate(zip(fun.params, args)):
            if is_float(p.type):
                a = np.asarray(a, dtype=np.float64)
                tangents.append(np.ones_like(a) if i == wrt else np.zeros_like(a))
        # gradf args: (args..., seed); tangents follow for its float params.
        out = compiled(*args, 1.0, *tangents, 0.0, backend=backend)
        # Results: (y, x̄, ẏ, x̄̇) — the last is (d/dε)∇f(x+ε·1) = H·1.
        return np.asarray(out[-1])

    run.adfun = compiled  # type: ignore[attr-defined]
    return run
