"""Forward-mode AD as a program transformation (paper §3).

Tangent statements are interleaved with primal statements; tangent variables
are associated with primal variables by an environment (the paper's "simple
mapping"), and SOAC arguments/results bundle tangents with their primal
counterparts.  The transform supports the full language — including the
accumulator constructs produced by reverse AD, which is what makes
``jvp ∘ vjp`` (the k-means Hessian trick, §7.4) work.

Conventions for bundling (all "float positions" in order, primals first):

* ``Fun``:    params ``(p..., ṗ_float...)``, results ``(r..., ṙ_float...)``;
* ``Map``:    arrays ``(a..., ȧ...)``, accumulators ``(acc..., acċ...)``,
  lambda results ``(acc..., acċ..., r..., ṙ...)``;
* ``Reduce/Scan/Hist``: the operator is lifted to dual numbers — params
  ``(acc..., acċ..., x..., ẋ...)`` — which preserves associativity because
  differentiation commutes with composition;
* ``Loop/While/If``: state/result tuples are extended with tangents.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.ast import (
    AtomExp,
    Atom,
    BinOp,
    Body,
    Cast,
    Concat,
    Const,
    Exp,
    Fun,
    If,
    Index,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Size,
    Stm,
    UnOp,
    UpdAcc,
    Update,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from ..ir.builder import Builder, const
from ..ir.typecheck import check_fun
from ..ir.validate import validate_fun
from ..ir.types import elem_type, is_float
from ..util import ADError, fresh
from .rules_scalar import binop_partials, unop_partial

__all__ = ["jvp_fun"]


def _dvar(v: Var) -> Var:
    return Var(fresh(v.name + "_dot"), v.type)


class _JVP:
    """Forward-mode transformer; ``tan`` maps primal names to tangent atoms."""

    def __init__(self) -> None:
        self.tan: Dict[str, Atom] = {}

    # -- tangents ----------------------------------------------------------------

    def tangent(self, a: Atom) -> Atom:
        """Tangent of a float atom."""
        if isinstance(a, Const):
            return Const(0.0, a.type)
        t = self.tan.get(a.name)
        if t is None:
            raise ADError(f"no tangent recorded for {a.name} : {a.type}")
        return t

    def _zero_tan(self, b: Builder, a: Atom) -> Atom:
        return b.zeros_like(a)

    # -- bodies -----------------------------------------------------------------

    def body(self, body: Body, b: Builder) -> Tuple[Tuple[Atom, ...], Tuple[Atom, ...]]:
        """Emit transformed statements into ``b``; return (primal results,
        tangent results of the float results)."""
        for stm in body.stms:
            self.stm(stm, b)
        prim = body.result
        tans = tuple(self.tangent(a) for a in prim if is_float(a.type))
        return prim, tans

    def sub_body(self, body: Body) -> Body:
        b = Builder()
        prim, tans = self.body(body, b)
        return b.finish(tuple(prim) + tans)

    def lam_with_tangents(self, lam: Lambda) -> Tuple[Tuple[Var, ...], Tuple[Var, ...]]:
        """Fresh tangent params for the float params of ``lam`` (registered)."""
        dparams = []
        for p in lam.params:
            if is_float(p.type):
                dp = _dvar(p)
                self.tan[p.name] = dp
                dparams.append(dp)
        return lam.params, tuple(dparams)

    # -- statements --------------------------------------------------------------

    def stm(self, stm: Stm, b: Builder) -> None:
        e = stm.exp
        handler = getattr(self, "_jvp_" + type(e).__name__, None)
        if handler is None:
            raise ADError(f"jvp: unsupported construct {type(e).__name__}")
        handler(stm, e, b)

    def _bind(self, stm: Stm, b: Builder) -> None:
        """Emit the primal statement unchanged."""
        b.emit_into(stm.pat, stm.exp)

    def _set_tan(self, v: Var, t: Optional[Atom], b: Builder) -> None:
        if not is_float(v.type):
            return
        if t is None:
            t = b.zeros_like(v)
        self.tan[v.name] = t

    # -- scalar-ish expressions -------------------------------------------------------

    def _jvp_AtomExp(self, stm: Stm, e: AtomExp, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        self._set_tan(v, self.tangent(e.x) if is_float(v.type) else None, b)

    def _jvp_UnOp(self, stm: Stm, e: UnOp, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        if not is_float(v.type):
            return
        d = unop_partial(b, e.op, e.x, v)
        if d is None:
            self._set_tan(v, None, b)
        else:
            self._set_tan(v, b.mul(d, self.tangent(e.x), v.name + "_dot"), b)

    def _jvp_BinOp(self, stm: Stm, e: BinOp, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        if not is_float(v.type):
            return
        dx, dy = binop_partials(b, e.op, e.x, e.y, v)
        terms: List[Atom] = []
        if dx is not None:
            terms.append(b.mul(dx, self.tangent(e.x), "t"))
        if dy is not None:
            terms.append(b.mul(dy, self.tangent(e.y), "t"))
        if not terms:
            self._set_tan(v, None, b)
        elif len(terms) == 1:
            self._set_tan(v, terms[0], b)
        else:
            self._set_tan(v, b.add(terms[0], terms[1], v.name + "_dot"), b)

    def _jvp_Select(self, stm: Stm, e: Select, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        if is_float(v.type):
            dt = b.select(e.c, self.tangent(e.t), self.tangent(e.f), v.name + "_dot")
            self._set_tan(v, dt, b)

    def _jvp_Cast(self, stm: Stm, e: Cast, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        if is_float(v.type):
            if is_float(e.x.type):
                self._set_tan(v, b.cast(self.tangent(e.x), e.to, v.name + "_dot"), b)
            else:
                self._set_tan(v, None, b)

    # -- array expressions ---------------------------------------------------------

    def _jvp_Index(self, stm: Stm, e: Index, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        if is_float(v.type):
            darr = self.tangent(e.arr)
            assert isinstance(darr, Var)
            self._set_tan(v, b.index(darr, e.idx, v.name + "_dot"), b)

    def _jvp_Update(self, stm: Stm, e: Update, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        if is_float(v.type):
            darr = self.tangent(e.arr)
            assert isinstance(darr, Var)
            dv = self.tangent(e.val)
            self._set_tan(v, b.update(darr, e.idx, dv, v.name + "_dot"), b)

    def _jvp_Iota(self, stm: Stm, e: Iota, b: Builder) -> None:
        self._bind(stm, b)

    def _jvp_Size(self, stm: Stm, e: Size, b: Builder) -> None:
        self._bind(stm, b)

    def _jvp_Replicate(self, stm: Stm, e: Replicate, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        if is_float(v.type):
            dv = self.tangent(e.v)
            self._set_tan(v, b.replicate(e.n, dv, v.name + "_dot"), b)

    def _jvp_ZerosLike(self, stm: Stm, e: ZerosLike, b: Builder) -> None:
        self._bind(stm, b)
        self._set_tan(stm.pat[0], None, b)

    def _jvp_ScratchLike(self, stm: Stm, e: ScratchLike, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        if is_float(v.type):
            self._set_tan(v, b.scratch_like(e.n, e.x, v.name + "_dot"), b)

    def _jvp_Reverse(self, stm: Stm, e: Reverse, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        if is_float(v.type):
            darr = self.tangent(e.x)
            assert isinstance(darr, Var)
            self._set_tan(v, b.reverse(darr, v.name + "_dot"), b)

    def _jvp_Concat(self, stm: Stm, e: Concat, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        if is_float(v.type):
            dx, dy = self.tangent(e.x), self.tangent(e.y)
            assert isinstance(dx, Var) and isinstance(dy, Var)
            self._set_tan(v, b.concat(dx, dy, v.name + "_dot"), b)

    # -- SOACs -------------------------------------------------------------------------

    def _float_tangents_of(self, atoms: Sequence[Atom]) -> List[Atom]:
        return [self.tangent(a) for a in atoms if is_float(a.type)]

    def _jvp_Map(self, stm: Stm, e: Map, b: Builder) -> None:
        n_arr, n_acc = len(e.arrs), len(e.accs)
        arr_params = e.lam.params[:n_arr]
        acc_params = e.lam.params[n_arr:]

        darrs = [self.tangent(a) for a in e.arrs if is_float(a.type)]
        daccs = [self.tangent(a) for a in e.accs]
        darr_params = []
        for p, a in zip(arr_params, e.arrs):
            if is_float(a.type):
                dp = _dvar(p)
                self.tan[p.name] = dp
                darr_params.append(dp)
        dacc_params = []
        for p in acc_params:
            dp = _dvar(p)
            self.tan[p.name] = dp
            dacc_params.append(dp)

        lb = Builder()
        prim, _ = self.body(e.lam.body, lb)
        accs_res = list(prim[:n_acc])
        daccs_res = [self.tangent(a) for a in accs_res]
        outs = list(prim[n_acc:])
        douts = [self.tangent(a) for a in outs if is_float(a.type)]
        lam_body = lb.finish(tuple(accs_res) + tuple(daccs_res) + tuple(outs) + tuple(douts))
        new_params = tuple(arr_params) + tuple(darr_params) + tuple(acc_params) + tuple(dacc_params)
        new_lam = Lambda(new_params, lam_body)

        new_arrs = tuple(e.arrs) + tuple(darrs)  # type: ignore[arg-type]
        new_accs = tuple(e.accs) + tuple(daccs)  # type: ignore[arg-type]
        names = (
            [v.name for v in stm.pat[:n_acc]]
            + [v.name + "_dot" for v in stm.pat[:n_acc]]
            + [v.name for v in stm.pat[n_acc:]]
            + [v.name + "_dot" for v, a in zip(stm.pat[n_acc:], outs) if is_float(a.type)]
        )
        vs = b.map(new_lam, new_arrs, new_accs, names=names)
        # Rebind: accs, dacc tangents, primal outs, out tangents.
        res_accs = vs[:n_acc]
        res_daccs = vs[n_acc : 2 * n_acc]
        rest = vs[2 * n_acc :]
        res_outs = rest[: len(outs)]
        res_douts = rest[len(outs) :]
        for v_old, v_new in zip(stm.pat[:n_acc], res_accs):
            self._alias(v_old, v_new, b)
        for v_old, dv in zip(stm.pat[:n_acc], res_daccs):
            self.tan[v_old.name] = dv
        j = 0
        for v_old, v_new, a in zip(stm.pat[n_acc:], res_outs, outs):
            self._alias(v_old, v_new, b)
            if is_float(a.type):
                self.tan[v_old.name] = res_douts[j]
                j += 1

    def _alias(self, old: Var, new: Var, b: Builder) -> None:
        """Bind the original pattern name to the new result."""
        b.emit_into((old,), AtomExp(new))

    def _lift_operator(
        self, lam: Lambda, nes: Tuple[Atom, ...], b: Builder
    ) -> Tuple[Lambda, Tuple[Atom, ...], List[bool]]:
        """Lift an associative k-ary operator to dual numbers."""
        k = len(nes)
        accs, elems = lam.params[:k], lam.params[k:]
        floats = [is_float(ne.type) for ne in nes]
        daccs, delems = [], []
        for p, fl in zip(accs, floats):
            if fl:
                dp = _dvar(p)
                self.tan[p.name] = dp
                daccs.append(dp)
        for p, fl in zip(elems, floats):
            if fl:
                dp = _dvar(p)
                self.tan[p.name] = dp
                delems.append(dp)
        lb = Builder()
        prim, _ = self.body(lam.body, lb)
        dres = [self.tangent(a) for a, fl in zip(prim, floats) if fl]
        body = lb.finish(tuple(prim) + tuple(dres))
        new_lam = Lambda(tuple(accs) + tuple(daccs) + tuple(elems) + tuple(delems), body)
        dnes = []
        for ne, fl in zip(nes, floats):
            if not fl:
                continue
            if isinstance(ne, Const):
                dnes.append(Const(0.0, elem_type(ne.type)))
            else:
                dnes.append(b.zeros_like(ne))  # array-typed neutral elements
        return new_lam, tuple(nes) + tuple(dnes), floats

    def _jvp_Reduce(self, stm: Stm, e: Reduce, b: Builder) -> None:
        new_lam, new_nes, floats = self._lift_operator(e.lam, e.nes, b)
        darrs = [self.tangent(a) for a, fl in zip(e.arrs, floats) if fl]
        new_arrs = tuple(e.arrs) + tuple(darrs)  # type: ignore[arg-type]
        names = [v.name for v in stm.pat] + [v.name + "_dot" for v, fl in zip(stm.pat, floats) if fl]
        vs = b.reduce(new_lam, new_nes, new_arrs, names=names)
        k = len(e.nes)
        j = k
        for v_old, v_new, fl in zip(stm.pat, vs[:k], floats):
            self._alias(v_old, v_new, b)
            if fl:
                self.tan[v_old.name] = vs[j]
                j += 1

    def _jvp_Scan(self, stm: Stm, e: Scan, b: Builder) -> None:
        new_lam, new_nes, floats = self._lift_operator(e.lam, e.nes, b)
        darrs = [self.tangent(a) for a, fl in zip(e.arrs, floats) if fl]
        new_arrs = tuple(e.arrs) + tuple(darrs)  # type: ignore[arg-type]
        names = [v.name for v in stm.pat] + [v.name + "_dot" for v, fl in zip(stm.pat, floats) if fl]
        vs = b.scan(new_lam, new_nes, new_arrs, names=names)
        k = len(e.nes)
        j = k
        for v_old, v_new, fl in zip(stm.pat, vs[:k], floats):
            self._alias(v_old, v_new, b)
            if fl:
                self.tan[v_old.name] = vs[j]
                j += 1

    def _jvp_ReduceByIndex(self, stm: Stm, e: ReduceByIndex, b: Builder) -> None:
        new_lam, new_nes, floats = self._lift_operator(e.lam, e.nes, b)
        dvals = [self.tangent(a) for a, fl in zip(e.vals, floats) if fl]
        new_vals = tuple(e.vals) + tuple(dvals)  # type: ignore[arg-type]
        names = [v.name for v in stm.pat] + [v.name + "_dot" for v, fl in zip(stm.pat, floats) if fl]
        vs = b.reduce_by_index(e.num_bins, new_lam, new_nes, e.inds, new_vals, names=names)
        k = len(e.nes)
        j = k
        for v_old, v_new, fl in zip(stm.pat, vs[:k], floats):
            self._alias(v_old, v_new, b)
            if fl:
                self.tan[v_old.name] = vs[j]
                j += 1

    def _jvp_Scatter(self, stm: Stm, e: Scatter, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        if is_float(v.type):
            ddest = self.tangent(e.dest)
            dvals = self.tangent(e.vals)
            assert isinstance(ddest, Var) and isinstance(dvals, Var)
            self._set_tan(v, b.scatter(ddest, e.inds, dvals, v.name + "_dot"), b)

    # -- control flow ----------------------------------------------------------------

    def _jvp_Loop(self, stm: Stm, e: Loop, b: Builder) -> None:
        floats = [is_float(p.type) for p in e.params]
        dparams = []
        for p, fl in zip(e.params, floats):
            if fl:
                dp = _dvar(p)
                self.tan[p.name] = dp
                dparams.append(dp)
        dinits = [self.tangent(i) for i, fl in zip(e.inits, floats) if fl]
        lb = Builder()
        prim, _ = self.body(e.body, lb)
        dres = [self.tangent(a) for a, fl in zip(prim, floats) if fl]
        body = lb.finish(tuple(prim) + tuple(dres))
        names = [v.name for v in stm.pat] + [v.name + "_dot" for v, fl in zip(stm.pat, floats) if fl]
        vs = b.loop(
            tuple(e.params) + tuple(dparams),
            tuple(e.inits) + tuple(dinits),
            e.ivar,
            e.n,
            body,
            names=names,
            stripmine=e.stripmine,
            checkpoint=e.checkpoint,
        )
        k = len(e.params)
        j = k
        for v_old, v_new, fl in zip(stm.pat, vs[:k], floats):
            self._alias(v_old, v_new, b)
            if fl:
                self.tan[v_old.name] = vs[j]
                j += 1

    def _jvp_WhileLoop(self, stm: Stm, e: WhileLoop, b: Builder) -> None:
        floats = [is_float(p.type) for p in e.params]
        dparams = []
        for p, fl in zip(e.params, floats):
            if fl:
                dp = _dvar(p)
                self.tan[p.name] = dp
                dparams.append(dp)
        dinits = [self.tangent(i) for i, fl in zip(e.inits, floats) if fl]
        lb = Builder()
        prim, _ = self.body(e.body, lb)
        dres = [self.tangent(a) for a, fl in zip(prim, floats) if fl]
        body = lb.finish(tuple(prim) + tuple(dres))
        new_params = tuple(e.params) + tuple(dparams)
        # The condition reads only primal state; extend its parameter list.
        cond_extra = tuple(_dvar(p) for p in dparams)
        m = {p.name: np_ for p, np_ in zip(e.cond.params, e.params)}
        from ..ir.traversal import subst

        cond_body = subst(Lambda(e.cond.params, e.cond.body), m).body
        new_cond = Lambda(new_params, cond_body)
        names = [v.name for v in stm.pat] + [v.name + "_dot" for v, fl in zip(stm.pat, floats) if fl]
        vs = b.while_loop(
            new_params,
            tuple(e.inits) + tuple(dinits),
            new_cond,
            body,
            bound=e.bound,
            names=names,
        )
        k = len(e.params)
        j = k
        for v_old, v_new, fl in zip(stm.pat, vs[:k], floats):
            self._alias(v_old, v_new, b)
            if fl:
                self.tan[v_old.name] = vs[j]
                j += 1

    def _jvp_If(self, stm: Stm, e: If, b: Builder) -> None:
        floats = [is_float(v.type) for v in stm.pat]
        then = self.sub_body(e.then)
        els = self.sub_body(e.els)
        names = [v.name for v in stm.pat] + [v.name + "_dot" for v, fl in zip(stm.pat, floats) if fl]
        vs = b.if_(e.cond, then, els, names=names)
        k = len(stm.pat)
        j = k
        for v_old, v_new, fl in zip(stm.pat, vs[:k], floats):
            self._alias(v_old, v_new, b)
            if fl:
                self.tan[v_old.name] = vs[j]
                j += 1

    # -- accumulators ------------------------------------------------------------------

    def _jvp_WithAcc(self, stm: Stm, e: WithAcc, b: Builder) -> None:
        n = len(e.arrs)
        darrs = [self.tangent(a) for a in e.arrs]
        dacc_params = []
        for p in e.lam.params:
            dp = _dvar(p)
            self.tan[p.name] = dp
            dacc_params.append(dp)
        lb = Builder()
        prim, _ = self.body(e.lam.body, lb)
        accs_res = list(prim[:n])
        dacc_res = [self.tangent(a) for a in accs_res]
        extra = list(prim[n:])
        dextra = [self.tangent(a) for a in extra if is_float(a.type)]
        body = lb.finish(tuple(accs_res) + tuple(dacc_res) + tuple(extra) + tuple(dextra))
        new_lam = Lambda(tuple(e.lam.params) + tuple(dacc_params), body)
        new_arrs = tuple(e.arrs) + tuple(darrs)  # type: ignore[arg-type]
        names = (
            [v.name for v in stm.pat[:n]]
            + [v.name + "_dot" for v in stm.pat[:n]]
            + [v.name for v in stm.pat[n:]]
            + [v.name + "_dot" for v, a in zip(stm.pat[n:], extra) if is_float(a.type)]
        )
        vs = b.with_acc(new_arrs, new_lam, names=names)
        res_arrs = vs[:n]
        res_darrs = vs[n : 2 * n]
        rest = vs[2 * n :]
        for v_old, v_new in zip(stm.pat[:n], res_arrs):
            self._alias(v_old, v_new, b)
        for v_old, dv in zip(stm.pat[:n], res_darrs):
            self.tan[v_old.name] = dv
        res_extra = rest[: len(extra)]
        res_dextra = rest[len(extra) :]
        j = 0
        for v_old, v_new, a in zip(stm.pat[n:], res_extra, extra):
            self._alias(v_old, v_new, b)
            if is_float(a.type):
                self.tan[v_old.name] = res_dextra[j]
                j += 1

    def _jvp_UpdAcc(self, stm: Stm, e: UpdAcc, b: Builder) -> None:
        self._bind(stm, b)
        v = stm.pat[0]
        dacc = self.tangent(e.acc)
        assert isinstance(dacc, Var)
        dv = self.tangent(e.v)
        self.tan[v.name] = b.upd_acc(dacc, e.idx, dv, v.name + "_dot")


def jvp_fun(fun: Fun, check: bool = True) -> Fun:
    """Forward-mode transform: params gain tangent seeds for every float
    parameter; results gain tangents of every float result.

    The input is unfused first: the reduce/scan/hist rules assume canonical
    associative operators, not the fusion engine's redomap shapes.
    """
    from ..opt.fusion import unfuse_fun

    fun = unfuse_fun(fun)
    j = _JVP()
    dparams = []
    for p in fun.params:
        if is_float(p.type):
            dp = _dvar(p)
            j.tan[p.name] = dp
            dparams.append(dp)
    b = Builder()
    prim, tans = j.body(fun.body, b)
    body = b.finish(tuple(prim) + tuple(tans))
    out = Fun(fun.name + "_jvp", tuple(fun.params) + tuple(dparams), body)
    if check:
        check_fun(out)
        validate_fun(out)
    from ..ir.verify import maybe_verify_fun

    return maybe_verify_fun(out, where="jvp")
