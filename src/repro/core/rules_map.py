"""Reverse AD of ``map`` (paper §5.4).

The return sweep of ``let ys = map (λx → body) as`` is a map over
``(as, ȳs)`` whose lambda re-executes the forward sweep of ``body``
(redundant execution) and then runs its return sweep:

* adjoints of the lambda's *parameters* come back elementwise and are added
  to the adjoints of the argument arrays;
* adjoints of free *scalars* are returned per iteration and summed with a
  ``reduce (+)``;
* adjoints of free *arrays* become **accumulators**: reads (``a[i]``) in the
  original lambda turn into ``upd`` accumulations in the reverse lambda.
  Arrays whose adjoint is not yet an accumulator get a fresh ``withacc``
  region around the reverse map; accumulators inherited from an enclosing
  reverse map are threaded straight through (the paper's implicit conversion
  between accumulators and arrays of accumulators).
"""
from __future__ import annotations

from typing import List

from ..ir.ast import AtomExp, Body, Lambda, Map, Stm, Var, WithAcc
from ..ir.builder import Builder, const
from ..ir.traversal import free_vars
from ..ir.types import AccType, ArrayType, elem_type, is_float, rank_of, with_rank
from ..util import ADError, fresh
from .adjoint import AdjScope

__all__ = ["rev_map"]


def rev_map(vjp, stm: Stm, e: Map, sc: AdjScope) -> None:
    if e.accs:
        raise ADError(
            "reverse AD of maps with accumulators is unsupported "
            "(higher-order derivatives: use jvp(vjp(f)))"
        )
    b = sc.b
    lam = e.lam

    # Adjoints of the map's results (zeros where unused).
    ybars: List[Var] = []
    for v in stm.pat:
        if is_float(v.type):
            yb = sc.lookup(v)
            if not isinstance(yb, Var):
                yb = b.copy(yb, v.name + "_bar")
            ybars.append(yb)
        else:
            ybars.append(None)  # type: ignore[arg-type]

    # Classify the lambda's free variables (non-differentiable data skipped).
    fvs = [
        v
        for v in free_vars(lam).values()
        if is_float(v.type) and v.name not in vjp.nodiff
    ]
    scalar_fvs = [v for v in fvs if rank_of(v.type) == 0]
    array_fvs = [v for v in fvs if rank_of(v.type) > 0]
    inherited = [v for v in array_fvs if v.name in vjp.acc_env]
    local = [v for v in array_fvs if v.name not in vjp.acc_env]

    # Current adjoint values of the locally-accumulated arrays.
    local_cur: List[Var] = []
    for v in local:
        a = sc.lookup(v)
        if not isinstance(a, Var):
            a = b.copy(a, v.name + "_bar")
        local_cur.append(a)

    # ----- build the reverse lambda -------------------------------------------
    ybar_params = []
    for v, yb in zip(stm.pat, ybars):
        if yb is None:
            continue
        at = v.type
        ybar_params.append(
            Var(fresh(v.name + "_be"), with_rank(elem_type(at), rank_of(at) - 1))
        )
    acc_order = list(local) + list(inherited)
    acc_params = [
        Var(fresh(v.name + "_acc"), AccType(elem_type(v.type), rank_of(v.type)))
        for v in acc_order
    ]

    saved_acc = dict(vjp.acc_env)
    for v, ap in zip(acc_order, acc_params):
        vjp.acc_env[v.name] = ap

    lb = Builder()
    seeds: List = []
    j = 0
    for v, r in zip(stm.pat, lam.body.result):
        if is_float(v.type):
            seeds.append(ybar_params[j])
            j += 1
        else:
            seeds.append(None)
    want = [p for p in lam.params if is_float(p.type)] + scalar_fvs
    adjs = vjp.transform_scope(lam.body, seeds, want, lb)
    acc_res = [vjp.acc_env[v.name] for v in acc_order]
    lam_body = lb.finish(tuple(acc_res) + tuple(adjs))

    # Restore the enclosing accumulator environment.
    vjp.acc_env.clear()
    vjp.acc_env.update(saved_acc)

    rev_params = tuple(lam.params) + tuple(ybar_params) + tuple(acc_params)
    rev_lam = Lambda(rev_params, lam_body)
    map_arrs = tuple(e.arrs) + tuple(yb for yb in ybars if yb is not None)

    n_float_params = len([p for p in lam.params if is_float(p.type)])
    out_names = (
        [v.name + "_acc" for v in acc_order]
        + [p.name + "_bar" for p in lam.params if is_float(p.type)]
        + [v.name + "_c" for v in scalar_fvs]
    )

    if local:
        # Fresh withacc region for the locally-materialised adjoints.
        wa_params = [
            Var(fresh(v.name + "_wacc"), AccType(elem_type(v.type), rank_of(v.type)))
            for v in local
        ]
        wb = Builder()
        # Inside the region the map consumes the fresh accs (for local) and
        # the enclosing accs (for inherited, threaded through as secondary
        # results).
        inner_accs = list(wa_params) + [vjp.acc_env[v.name] for v in inherited]
        vs = wb.map(rev_lam, map_arrs, inner_accs, names=out_names)
        local_out = vs[: len(local)]
        rest = vs[len(local):]
        wa_body = wb.finish(tuple(local_out) + tuple(rest))
        wa_lam = Lambda(tuple(wa_params), wa_body)
        wa_names = [v.name + "_bar" for v in local] + [
            n for n in out_names[len(local):]
        ]
        ws = b.with_acc(local_cur, wa_lam, names=wa_names)
        for v, arr_out in zip(local, ws[: len(local)]):
            sc.set(v, arr_out)
        rest_out = ws[len(local):]
    else:
        vs = b.map(rev_lam, map_arrs, [vjp.acc_env[v.name] for v in inherited], names=out_names)
        rest_out = vs

    # Inherited accumulators continue with their post-map values.
    for v, nv in zip(inherited, rest_out[: len(inherited)]):
        vjp.acc_env[v.name] = nv
    rest_out = rest_out[len(inherited):]

    # Elementwise adjoints of the argument arrays.
    xbars = rest_out[:n_float_params]
    k = 0
    for p, arr in zip(lam.params, e.arrs):
        if is_float(p.type):
            sc.add(arr, xbars[k])
            k += 1

    # Per-iteration contributions of free scalars: sum them.
    contribs = rest_out[n_float_params:]
    for v, carr in zip(scalar_fvs, contribs):
        a1 = Var(fresh("a"), v.type)
        a2 = Var(fresh("b"), v.type)
        ab = Builder()
        s = ab.add(a1, a2, "s")
        total = b.reduce(
            Lambda((a1, a2), ab.finish([s])),
            [const(0.0, elem_type(v.type))],
            [carr],
            names=[v.name + "_c"],
        )[0]
        sc.add(v, total)
