"""Scalar derivative rules shared by forward and reverse mode.

Each rule emits, via a ``Builder``, the partial derivative of a primitive
with respect to one operand, *at the primal point* — i.e. the local Jacobian
entries of Fig. 1's rewrite rules.  Both ``jvp`` (tangent = Σ ∂f/∂aᵢ · ȧᵢ)
and ``vjp`` (āᵢ += ∂f/∂aᵢ · v̄) are assembled from the same table, which
keeps the two modes consistent by construction.
"""
from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..ir.ast import Atom, BinOp, Const, Select, UnOp, Var
from ..ir.builder import Builder, const_like
from ..ir.types import elem_type, is_float
from ..util import ADError

__all__ = ["unop_partial", "binop_partials", "is_diff_atom"]


def is_diff_atom(a: Atom) -> bool:
    """Does this atom carry derivatives (float element type)?"""
    return is_float(a.type)


def unop_partial(b: Builder, op: str, x: Atom, primal: Atom) -> Optional[Atom]:
    """∂(op x)/∂x as an atom, or None if identically zero.

    ``primal`` is the bound result of the unop, reusable per the redundant
    execution guarantee (the forward sweep brought it into scope).
    """
    one = const_like(1.0, x)
    if op == "neg":
        return b.neg(one, "d")
    if op == "sin":
        return b.unop("cos", x, "d")
    if op == "cos":
        s = b.unop("sin", x, "d")
        return b.neg(s, "d")
    if op == "tan":
        t2 = b.mul(primal, primal, "d")
        return b.add(one, t2, "d")
    if op == "exp":
        return primal
    if op == "log":
        return b.div(one, x, "d")
    if op == "sqrt":
        two = const_like(2.0, x)
        den = b.mul(two, primal, "d")
        return b.div(one, den, "d")
    if op == "abs":
        return b.unop("sgn", x, "d")
    if op == "sgn":
        return None
    if op == "tanh":
        t2 = b.mul(primal, primal, "d")
        return b.sub(one, t2, "d")
    if op == "sigmoid":
        omt = b.sub(one, primal, "d")
        return b.mul(primal, omt, "d")
    if op == "floor":
        return None
    if op == "erf":
        # d/dx erf(x) = 2/sqrt(pi) * exp(-x^2)
        x2 = b.mul(x, x, "d")
        nx2 = b.neg(x2, "d")
        ex = b.unop("exp", nx2, "d")
        c = const_like(2.0 / math.sqrt(math.pi), x)
        return b.mul(c, ex, "d")
    if op == "not":
        return None
    raise ADError(f"no derivative rule for unary op {op!r}")


def binop_partials(
    b: Builder, op: str, x: Atom, y: Atom, primal: Atom
) -> Tuple[Optional[Atom], Optional[Atom]]:
    """(∂/∂x, ∂/∂y) of ``x op y`` as atoms (None where identically zero)."""
    one = const_like(1.0, x) if is_float(x.type) else None
    if op == "add":
        return one, one
    if op == "sub":
        none = b.neg(one, "d")
        return one, none
    if op == "mul":
        return y, x
    if op == "div":
        dx = b.div(one, y, "d")
        # ∂(x/y)/∂y = -x/y² = -primal/y
        q = b.div(primal, y, "d")
        dy = b.neg(q, "d")
        return dx, dy
    if op == "pow":
        # ∂/∂x = y·x^(y-1);  ∂/∂y = x^y·ln(x)
        ym1 = b.sub(y, one, "d")
        xp = b.binop("pow", x, ym1, "d")
        dx = b.mul(y, xp, "d")
        lx = b.unop("log", x, "d")
        dy = b.mul(primal, lx, "d")
        return dx, dy
    if op == "min":
        c = b.binop("le", x, y, "d")
        zero = const_like(0.0, x)
        dx = b.select(c, one, zero, "d")
        dy = b.select(c, zero, one, "d")
        return dx, dy
    if op == "max":
        c = b.binop("ge", x, y, "d")
        zero = const_like(0.0, x)
        dx = b.select(c, one, zero, "d")
        dy = b.select(c, zero, one, "d")
        return dx, dy
    if op == "mod":
        # x mod y = x - floor(x/y)·y  ⇒  ∂/∂x = 1, ∂/∂y = -floor(x/y)
        q = b.div(x, y, "d")
        fq = b.unop("floor", q, "d")
        dy = b.neg(fq, "d")
        return one, dy
    if op in ("lt", "le", "gt", "ge", "eq", "ne", "and", "or"):
        return None, None
    raise ADError(f"no derivative rule for binary op {op!r}")
