"""Adjoint bookkeeping for the reverse-mode transform.

The paper keeps an environment mapping each program variable to its adjoint
(§4.2, omitted from Fig. 3 for readability); ``AdjScope`` is that
environment for one lexical scope of the return sweep.  Adjoints are SSA:
every contribution binds a fresh variable (``a_bar' = a_bar + c``).

Array adjoints come in two modes:

* **value mode** — an ordinary array, updated with whole-array adds or
  functional index updates;
* **accumulator mode** (paper §5.4) — inside a ``map``'s return sweep, the
  adjoint of a free array is an accumulator; contributions become ``UpdAcc``
  (operationally ``atomicAdd``).  ``acc_env`` maps original variable names to
  their current accumulator variable and is shared across nested scopes.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.ast import (
    Atom,
    Const,
    Iota,
    Lambda,
    Size,
    Var,
)
from ..ir.types import ArrayType, I64
from ..ir.builder import Builder, const
from ..ir.traversal import refresh_body, subst
from ..ir.types import elem_type, is_float, rank_of
from ..util import ADError, fresh

__all__ = ["AdjScope", "inline_lambda", "sum_leading_axis"]


def inline_lambda(b: Builder, lam: Lambda, args: Sequence[Atom]) -> Tuple[Atom, ...]:
    """Splice a (refreshed) copy of ``lam``'s body into ``b`` with its
    parameters bound to ``args``; returns the result atoms."""
    if len(args) != len(lam.params):
        raise ADError(f"inline: arity mismatch {len(args)} != {len(lam.params)}")
    body = refresh_body(lam.body, {p.name: a for p, a in zip(lam.params, args)})
    b.extend(body.stms)
    return body.result


def sum_leading_axis(b: Builder, arr: Var) -> Var:
    """Sum an array over its leading axis (any rank ≥ 1), used e.g. for the
    adjoint of ``replicate`` and the §6.1 rewrites.

    Emitted as a single ``reduce`` whose elements are the (rank-1) rows and
    whose operator is the rank-polymorphic elementwise ``+`` — the backends
    turn this into one dense ``np.add.reduce`` (a vectorised segmented sum,
    the kernel shape the paper's block/register-tiling pass targets)."""
    rank = rank_of(arr.type)
    et = elem_type(arr.type)
    elem_t = et if rank == 1 else ArrayType(et, rank - 1)
    a1 = Var(fresh("a"), elem_t)
    a2 = Var(fresh("b"), elem_t)
    lb = Builder()
    s = lb.add(a1, a2, "s")
    lam = Lambda((a1, a2), lb.finish([s]))
    if rank == 1:
        ne = const(0.0, et)
    else:
        # Neutral element: a zero row.  (These rewrites only run on arrays
        # with at least one row; guarded by construction.)
        r0 = b.index(arr, (const(0, I64),), "r0")
        ne = b.zeros_like(r0)
    return b.reduce(lam, [ne], [arr], names=["sum"])[0]


class AdjScope:
    """Adjoint environment for one scope of the return sweep."""

    def __init__(
        self,
        b: Builder,
        acc_env: Dict[str, Var],
        init: Optional[Dict[str, Atom]] = None,
        nodiff: Optional[set] = None,
    ) -> None:
        self.b = b
        self.adj: Dict[str, Atom] = dict(init or {})
        self.acc_env = acc_env
        self.nodiff = nodiff if nodiff is not None else set()

    # -- queries ------------------------------------------------------------

    def has(self, v: Var) -> bool:
        return v.name in self.adj or v.name in self.acc_env

    def lookup(self, v: Var) -> Atom:
        """Current adjoint of ``v`` (zeros if none yet).  Value mode only."""
        if v.name in self.acc_env:
            raise ADError(f"adjoint of {v.name} is an accumulator; cannot read it")
        a = self.adj.get(v.name)
        if a is None:
            a = self.b.zeros_like(v, name=v.name + "_bar")
            self.adj[v.name] = a
        return a

    def set(self, v: Var, a: Atom) -> None:
        self.adj[v.name] = a

    # -- contributions ----------------------------------------------------------

    def add(self, v: Atom, contrib: Atom) -> None:
        """``v̄ += contrib`` (whole value).

        Contributions of higher rank than the target (a broadcast operand)
        are summed over the broadcast (leading) axes; lower-rank
        contributions broadcast in the add (or are replicated when the
        target is an accumulator, which needs exact rank).
        """
        if isinstance(v, Const) or not is_float(v.type):
            return
        assert isinstance(v, Var)
        if v.name in self.nodiff:
            return
        while rank_of(contrib.type) > rank_of(v.type):
            if not isinstance(contrib, Var):
                raise ADError("cannot reduce a constant contribution")
            contrib = sum_leading_axis(self.b, contrib)
        if v.name in self.acc_env:
            acc = self.acc_env[v.name]
            c = self._match_rank(v, contrib)
            self.acc_env[v.name] = self.b.upd_acc(acc, (), c, acc.name)
            return
        cur = self.adj.get(v.name)
        if cur is None:
            # First contribution: bind directly (the +0 is folded away).
            if rank_of(contrib.type) < rank_of(v.type):
                contrib = self._match_rank(v, contrib)
            self.adj[v.name] = self.b.copy(contrib, v.name + "_bar")
        else:
            self.adj[v.name] = self.b.add(cur, contrib, v.name + "_bar")

    def add_at(self, v: Var, idx: Tuple[Atom, ...], contrib: Atom) -> None:
        """``v̄[idx] += contrib`` — the ``upd`` of §4.2."""
        if not is_float(v.type) or v.name in self.nodiff:
            return
        if v.name in self.acc_env:
            acc = self.acc_env[v.name]
            self.acc_env[v.name] = self.b.upd_acc(acc, idx, contrib, acc.name)
            return
        cur = self.lookup(v)
        assert isinstance(cur, Var)
        old = self.b.index(cur, idx, "old")
        s = self.b.add(old, contrib, "s")
        self.adj[v.name] = self.b.update(cur, idx, s, v.name + "_bar")

    # -- helpers ---------------------------------------------------------------

    def _match_rank(self, v: Var, contrib: Atom) -> Atom:
        """Replicate a low-rank contribution up to ``v``'s rank (whole-array
        accumulator updates need exact rank; broadcasting handles the rest)."""
        want = rank_of(v.type)
        have = rank_of(contrib.type)
        if have == want:
            return contrib
        if have > want:
            raise ADError(f"contribution rank {have} exceeds target rank {want}")
        from ..ir.ast import Size

        out = contrib
        # Broadcast by replication along each missing leading axis of v.
        for d in range(want - have - 1, -1, -1):
            n = self.b.emit1(Size(v, d), "n")
            out = self.b.replicate(n, out, "repc")
        return out

    def final(self, v: Var) -> Atom:
        """Adjoint of ``v`` at scope exit (zeros if never contributed)."""
        if v.name in self.acc_env:
            raise ADError(f"{v.name} is accumulated; no value-mode adjoint")
        return self.lookup(v)
