"""The paper's contribution: forward- and reverse-mode AD transforms."""
from .jvp import jvp_fun  # noqa: F401
from .vjp import vjp_fun  # noqa: F401
from . import api  # noqa: F401
from .api import grad, hessian_diag, jacobian, jvp, value_and_grad, vjp  # noqa: F401
