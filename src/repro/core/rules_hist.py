"""Reverse AD of ``reduce_by_index`` / generalised histograms (paper §5.1.2).

The specialised operators mirror the reduce rules, per bin, with the
histogram adjoint gathered through the index array:

* ``+``   : ās[i] += h̄[inds[i]] (a gather, guarded for out-of-range);
* ``min``/``max`` : the forward sweep computes per-bin argmin/argmax; the
  return sweep scatters each bin's adjoint to its winning element (a map
  over bins accumulating into ās);
* ``*``   : the forward sweep keeps per-bin zero counts and non-zero
  products; the return sweep distributes like reduce-``*``.

The fully-general case uses the sort + segmented-scan construction the
paper reports as work in progress — implemented here as an extension (see
``_rev_hist_general``).
"""
from __future__ import annotations

from ..ir.analysis import recognize_binop_lambda
from ..ir.ast import (
    AtomExp,
    Iota,
    Lambda,
    ReduceByIndex,
    Size,
    Stm,
    Var,
    WithAcc,
)
from ..ir.builder import Builder, const
from ..ir.types import AccType, I64, elem_type, is_float, rank_of
from ..util import ADError, fresh
from ..ir.ast import Lambda as _Lam  # noqa: F401 (re-export convenience)
from .adjoint import AdjScope
from .rules_reduce import argminmax_lambda

__all__ = ["fwd_hist", "rev_hist"]


def fwd_hist(vjp, stm: Stm, e: ReduceByIndex, b: Builder):
    op = recognize_binop_lambda(e.lam) if len(e.nes) == 1 else None
    if op is None or not is_float(stm.pat[0].type):
        b.emit_into(stm.pat, e)
        return {"kind": "general"}
    arr = e.vals[0]
    et = elem_type(arr.type)
    if op == "add":
        b.emit_into(stm.pat, e)
        return {"kind": "add"}
    if op == "mul":
        x = Var(fresh("x"), et)
        xb = Builder()
        isz = xb.binop("eq", x, const(0.0, et), "isz")
        zf = xb.select(isz, const(1, I64), const(0, I64), "zf")
        nzv = xb.select(isz, const(1.0, et), x, "nzv")
        zflags, nzvals = b.map(Lambda((x,), xb.finish([zf, nzv])), [arr], names=["zf", "nzv"])
        a1 = Var(fresh("a"), I64)
        a2 = Var(fresh("b"), I64)
        ab = Builder()
        s = ab.add(a1, a2, "s")
        addl = Lambda((a1, a2), ab.finish([s]))
        (nz,) = b.reduce_by_index(e.num_bins, addl, [const(0, I64)], e.inds, [zflags], names=["nz"])
        m1 = Var(fresh("a"), et)
        m2 = Var(fresh("b"), et)
        mb = Builder()
        pr = mb.mul(m1, m2, "p")
        mull = Lambda((m1, m2), mb.finish([pr]))
        (p,) = b.reduce_by_index(e.num_bins, mull, [const(1.0, et)], e.inds, [nzvals], names=["p"])
        c = Var(fresh("c"), I64)
        pp = Var(fresh("p"), et)
        hb = Builder()
        c0 = hb.binop("eq", c, const(0, I64), "c0")
        hv = hb.select(c0, pp, const(0.0, et), "hv")
        (h,) = b.map(Lambda((c, pp), hb.finish([hv])), [nz, p], names=["h"])
        b.emit_into(stm.pat, AtomExp(h))
        return {"kind": "mul", "nz": nz, "p": p}
    # min / max: per-bin argmin.
    n = b.emit1(Size(arr), "n")
    idxs = b.emit1(Iota(n), "is")
    lam = argminmax_lambda(et, op)
    ninf = const(float("inf") if op == "min" else float("-inf"), et)
    hv, hi = b.reduce_by_index(
        e.num_bins, lam, [ninf, const(2**62, I64)], e.inds, [arr, idxs], names=["hv", "hi"]
    )
    b.emit_into(stm.pat, AtomExp(hv))
    return {"kind": op, "hi": hi, "n": n}


def rev_hist(vjp, stm: Stm, e: ReduceByIndex, aux, sc: AdjScope) -> None:
    b = sc.b
    kind = aux["kind"]
    if kind == "general":
        # The sort + segmented-scan construction (reported as work in
        # progress in the paper) — implemented here as an extension.
        return _rev_hist_general(vjp, stm, e, sc)
    arr = e.vals[0]
    et = elem_type(arr.type)
    hbar = sc.lookup(stm.pat[0])
    if not isinstance(hbar, Var):
        hbar = b.copy(hbar, "hbar")
    m = e.num_bins

    if kind == "add":
        # ās[i] += h̄[inds[i]] for in-range indices.
        ix = Var(fresh("ix"), elem_type(e.inds.type))
        gb = Builder()
        lo = gb.binop("ge", ix, const(0, I64), "lo")
        hi = gb.binop("lt", ix, m, "hi")
        ok = gb.binop("and", lo, hi, "ok")
        mm1 = gb.sub(m, const(1, I64), "mm1")
        safe0 = gb.binop("max", ix, const(0, I64), "s0")
        safe = gb.binop("min", safe0, mm1, "safe")
        hv = gb.index(hbar, (safe,), "hv")
        cv = gb.select(ok, hv, const(0.0, et), "cv")
        (contrib,) = b.map(Lambda((ix,), gb.finish([cv])), [e.inds], names=["c"])
        sc.add(arr, contrib)
        return

    if kind == "mul":
        nz, p = aux["nz"], aux["p"]
        ix = Var(fresh("ix"), elem_type(e.inds.type))
        a = Var(fresh("a"), et)
        gb = Builder()
        lo = gb.binop("ge", ix, const(0, I64), "lo")
        hi = gb.binop("lt", ix, m, "hi")
        ok = gb.binop("and", lo, hi, "ok")
        mm1 = gb.sub(m, const(1, I64), "mm1")
        safe0 = gb.binop("max", ix, const(0, I64), "s0")
        safe = gb.binop("min", safe0, mm1, "safe")
        cb = gb.index(nz, (safe,), "cb")
        pb_ = gb.index(p, (safe,), "pb")
        hb = gb.index(hbar, (safe,), "hb")
        c0 = gb.binop("eq", cb, const(0, I64), "c0")
        c1 = gb.binop("eq", cb, const(1, I64), "c1")
        az = gb.binop("eq", a, const(0.0, et), "az")
        pa = gb.div(pb_, a, "pa")
        v0 = gb.mul(hb, pa, "v0")
        v1 = gb.mul(hb, pb_, "v1")
        one0 = gb.binop("and", c1, az, "one0")
        inner = gb.select(one0, v1, const(0.0, et), "inner")
        r0 = gb.select(c0, v0, inner, "r")
        cv = gb.select(ok, r0, const(0.0, et), "cv")
        (contrib,) = b.map(Lambda((ix, a), gb.finish([cv])), [e.inds, arr], names=["c"])
        sc.add(arr, contrib)
        return

    # min / max: scatter each bin's adjoint to its winning element.
    hi_arr, n = aux["hi"], aux["n"]

    def emit_bin_map(bb: Builder, acc: Var) -> Var:
        bi = Var(fresh("b"), I64)
        accp = Var(fresh("acc"), acc.type)
        ib = Builder()
        wi = ib.index(hi_arr, (bi,), "wi")
        ok = ib.binop("lt", wi, n, "ok")
        nm1 = ib.sub(n, const(1, I64), "nm1")
        safe = ib.binop("min", wi, nm1, "safe")
        hv = ib.index(hbar, (bi,), "hv")
        cv = ib.select(ok, hv, const(0.0, et), "cv")
        na = ib.upd_acc(accp, (safe,), cv, "acc")
        lam = Lambda((bi, accp), ib.finish([na]))
        it = bb.emit1(Iota(m), "bs")
        (out,) = bb.map(lam, [it], [acc], names=["acc"])
        return out

    if arr.name in vjp.acc_env:
        acc = vjp.acc_env[arr.name]
        vjp.acc_env[arr.name] = emit_bin_map(b, acc)
    else:
        cur = sc.lookup(arr)
        if not isinstance(cur, Var):
            cur = b.copy(cur, arr.name + "_bar")
        wa_acc = Var(fresh(arr.name + "_wacc"), AccType(et, rank_of(arr.type)))
        wb = Builder()
        out = emit_bin_map(wb, wa_acc)
        wa_lam = Lambda((wa_acc,), wb.finish([out]))
        (new_adj,) = b.with_acc([cur], wa_lam, names=[arr.name + "_bar"])
        sc.set(arr, new_adj)


# ---------------------------------------------------------------------------
# General operators: the sort + segmented-scan construction (§5.1.2)
# ---------------------------------------------------------------------------
#
# The paper reports this rule as work in progress; we implement it as an
# extension.  The plan (paper's own sketch): group the contributing elements
# by bin (a stable counting sort), compute per-element prefix (ls) and suffix
# (rs) products *within each segment* with segmented exclusive scans, and
# apply the core rewrite rule  ās[i] += ∂(l ⊙ a ⊙ r)/∂a · h̄[bin(i)].
#
# The counting sort's position assignment is a sequential O(n) loop here
# (Futhark would use a radix sort to stay parallel); everything else is maps,
# scans and scatters.  Work is O(n·cost(⊙)); correctness is what the tests
# check — see ``test_hist_general_operator`` variants.


def _seg_exclusive_scan(b, lam_op, ne, vals, flags, reverse_dir: bool):
    """Segmented *exclusive* scan of ``vals`` (segment starts where
    ``flags``==1), optionally right-to-left.  Returns the per-position
    prefix/suffix combination (ne at segment boundaries)."""
    from ..ir.ast import Iota, Size
    from .adjoint import inline_lambda

    et = elem_type(vals.type)
    work_vals = b.reverse(vals, "rv") if reverse_dir else vals
    work_flags = b.reverse(flags, "rf") if reverse_dir else flags

    # Segmented inclusive scan with the classic flag-carrying operator:
    # ((f1,v1) ⊕ (f2,v2)) = (f1 max f2, f2 ? v2 : v1 ⊙ v2)  — associative.
    f1 = Var(fresh("f1"), I64)
    v1 = Var(fresh("v1"), et)
    f2 = Var(fresh("f2"), I64)
    v2 = Var(fresh("v2"), et)
    ob = Builder()
    nf = ob.binop("max", f1, f2, "nf")
    (comb,) = inline_lambda(ob, lam_op, (v1, v2))
    isstart = ob.binop("eq", f2, const(1, I64), "st")
    nv = ob.select(isstart, v2, comb, "nv")
    seg_op = Lambda((f1, v1, f2, v2), ob.finish([nf, nv]))
    fs, incl = b.scan(seg_op, [const(0, I64), ne], [work_flags, work_vals], names=["fs", "incl"])

    # Exclusive shift within segments: boundary positions get ne.
    n = b.emit1(Size(vals), "n")
    idxs = b.emit1(Iota(n), "is")
    i = Var(fresh("i"), I64)
    sb = Builder()
    fcur = sb.index(work_flags, (i,), "f")
    at_start = sb.binop("eq", fcur, const(1, I64), "ats")
    im1 = sb.sub(i, const(1, I64), "im1")
    safe = sb.binop("max", im1, const(0, I64), "safe")
    prev = sb.index(incl, (safe,), "prev")
    first = sb.binop("eq", i, const(0, I64), "first")
    from ..ir.ast import BinOp

    guard = sb.binop("or", at_start, first, "g")
    v = sb.select(guard, ne, prev, "v")
    (out,) = b.map(Lambda((i,), sb.finish([v])), [idxs], names=["excl"])
    if reverse_dir:
        out = b.reverse(out, "rex")
    return out


def _rev_hist_general(vjp, stm, e: ReduceByIndex, sc: AdjScope) -> None:
    from ..ir.ast import Iota, Loop, Scatter, Size, Update, ZerosLike
    from ..ir.builder import as_atom
    from ..ir.traversal import free_vars
    from ..ir.types import ArrayType, is_float as _isf
    from .adjoint import inline_lambda
    from .rules_reduce import lifted_op
    from ..util import ADError as _ADError

    if len(e.nes) != 1:
        raise _ADError("reverse AD of tuple-valued general histograms is unsupported")
    lam = e.lam
    if any(_isf(v.type) for v in free_vars(lam).values()):
        raise _ADError(
            "reverse AD of reduce_by_index with a free-variable-capturing "
            "operator is not supported"
        )
    b = sc.b
    arr = e.vals[0]
    inds = e.inds
    et = elem_type(arr.type)
    ne = e.nes[0]
    m = e.num_bins
    hbar = sc.lookup(stm.pat[0])
    if not isinstance(hbar, Var):
        hbar = b.copy(hbar, "hbar")

    n = b.emit1(Size(arr), "n")
    idxs = b.emit1(Iota(n), "is")

    # -- validity masks and per-bin counts --------------------------------
    ix = Var(fresh("ix"), elem_type(inds.type))
    vb = Builder()
    lo = vb.binop("ge", ix, const(0, I64), "lo")
    hi = vb.binop("lt", ix, m, "hi")
    ok = vb.binop("and", lo, hi, "ok")
    one = vb.select(ok, const(1, I64), const(0, I64), "one")
    (ones,) = b.map(Lambda((ix,), vb.finish([one])), [inds], names=["ones"])
    a1 = Var(fresh("a"), I64)
    a2 = Var(fresh("b"), I64)
    ab = Builder()
    s0 = ab.add(a1, a2, "s")
    addl = Lambda((a1, a2), ab.finish([s0]))
    (counts,) = b.reduce_by_index(m, addl, [const(0, I64)], inds, [ones], names=["cnt"])

    # offsets = exclusive scan of counts
    (cincl,) = b.scan(addl, [const(0, I64)], [counts], names=["cincl"])
    bi = Var(fresh("b"), I64)
    ob2 = Builder()
    is0 = ob2.binop("eq", bi, const(0, I64), "is0")
    bm1 = ob2.sub(bi, const(1, I64), "bm1")
    sfb = ob2.binop("max", bm1, const(0, I64), "sfb")
    pv = ob2.index(cincl, (sfb,), "pv")
    ov = ob2.select(is0, const(0, I64), pv, "ov")
    bidx = b.emit1(Iota(m), "bs")
    (offsets,) = b.map(Lambda((bi,), ob2.finish([ov])), [bidx], names=["off"])

    # -- stable counting-sort positions (sequential cursor loop) ------------
    cur0 = b.copy(offsets, "cur0")
    from ..ir.ast import ScratchLike as _SL

    pos_init = b.emit1(_SL(n, const(0, I64)), "pos0")
    curp = Var(fresh("cur"), ArrayType(I64, 1))
    posp = Var(fresh("pos"), ArrayType(I64, 1))
    li = Var(fresh("i"), I64)
    lb = Builder()
    ind_i = lb.index(inds, (li,), "ind")
    lo2 = lb.binop("ge", ind_i, const(0, I64), "lo")
    hi2 = lb.binop("lt", ind_i, m, "hi")
    ok2 = lb.binop("and", lo2, hi2, "ok")
    mm1 = lb.sub(m, const(1, I64), "mm1")
    sfi0 = lb.binop("max", ind_i, const(0, I64), "s0")
    sfi = lb.binop("min", sfi0, mm1, "sfi")
    slot = lb.index(curp, (sfi,), "slot")
    p_i = lb.select(ok2, slot, n, "p")  # invalid elements park at n (dropped)
    posn = lb.update(posp, (li,), p_i, "pos")
    nslot = lb.add(slot, const(1, I64), "ns")
    nslot_eff = lb.select(ok2, nslot, slot, "nse")
    curn = lb.update(curp, (sfi,), nslot_eff, "cur")
    loop_body = lb.finish([curn, posn])
    livar = Var(fresh("si"), I64)
    _cur_out, positions = b.loop(
        (curp, posp), (cur0, pos_init), li, n, loop_body, names=["cur", "positions"]
    )

    # -- sort values / bins / flags by position ------------------------------
    zvals = b.emit1(ZerosLike(arr), "zv")
    sorted_vals = b.scatter(zvals, positions, arr, "svals")
    # flags: 1 at each segment start (the element whose position equals its
    # bin's offset); scatter is safe (positions are unique).
    fi = Var(fresh("i"), I64)
    fb = Builder()
    find = fb.index(inds, (fi,), "ind")
    flo = fb.binop("ge", find, const(0, I64), "lo")
    fhi = fb.binop("lt", find, m, "hi")
    fok = fb.binop("and", flo, fhi, "ok")
    fmm1 = fb.sub(m, const(1, I64), "mm1")
    fsf0 = fb.binop("max", find, const(0, I64), "s0")
    fsf = fb.binop("min", fsf0, fmm1, "sf")
    offv = fb.index(offsets, (fsf,), "offv")
    fpos = fb.index(positions, (fi,), "fpos")
    isfirst = fb.binop("eq", fpos, offv, "isf")
    both = fb.binop("and", fok, isfirst, "both")
    fl = fb.select(both, const(1, I64), const(0, I64), "fl")
    (flags_src,) = b.map(Lambda((fi,), fb.finish([fl])), [idxs], names=["flsrc"])
    zflags = b.emit1(ZerosLike(flags_src), "zf")
    flags = b.scatter(zflags, positions, flags_src, "flags")
    # reversed-direction flags: segment *ends* become starts.
    ri = Var(fresh("i"), I64)
    rb = Builder()
    nm1 = rb.sub(n, const(1, I64), "nm1")
    at_end = rb.binop("eq", ri, nm1, "ae")
    rp1 = rb.add(ri, const(1, I64), "rp1")
    sfr = rb.binop("min", rp1, nm1, "sfr")
    nxt = rb.index(flags, (sfr,), "nxt")
    nxt1 = rb.binop("eq", nxt, const(1, I64), "n1")
    ise = rb.binop("or", at_end, nxt1, "ise")
    rf = rb.select(ise, const(1, I64), const(0, I64), "rf")
    (end_flags,) = b.map(Lambda((ri,), rb.finish([rf])), [idxs], names=["eflags"])

    # -- segmented exclusive prefix/suffix products ---------------------------
    ls = _seg_exclusive_scan(b, lam, ne, sorted_vals, flags, reverse_dir=False)
    rs = _seg_exclusive_scan(b, lam, ne, sorted_vals, end_flags, reverse_dir=True)

    # -- core rewrite rule at each sorted position, gathered back --------------
    lift = lifted_op(lam)
    gi = Var(fresh("i"), I64)
    gb = Builder()
    gind = gb.index(inds, (gi,), "ind")
    glo = gb.binop("ge", gind, const(0, I64), "lo")
    ghi = gb.binop("lt", gind, m, "hi")
    gok = gb.binop("and", glo, ghi, "ok")
    gmm1 = gb.sub(m, const(1, I64), "mm1")
    gsf0 = gb.binop("max", gind, const(0, I64), "s0")
    gsf = gb.binop("min", gsf0, gmm1, "sf")
    gpos0 = gb.index(positions, (gi,), "p")
    gnm1 = gb.sub(n, const(1, I64), "nm1")
    gpos = gb.binop("min", gpos0, gnm1, "ps")
    l_i = gb.index(ls, (gpos,), "l")
    r_i = gb.index(rs, (gpos,), "r")
    a_i = gb.index(arr, (gi,), "a")
    one_c = const(1.0, et)
    zero_c = const(0.0, et)
    t1, dt = inline_lambda(gb, lift, (l_i, a_i, zero_c, one_c))
    _y, dy = inline_lambda(gb, lift, (t1, r_i, one_c, zero_c))
    dya = gb.mul(dy, dt, "dya")
    hb_i = gb.index(hbar, (gsf,), "hb")
    cv0 = gb.mul(dya, hb_i, "cv0")
    cv = gb.select(gok, cv0, zero_c, "cv")
    (contrib,) = b.map(Lambda((gi,), gb.finish([cv])), [idxs], names=["c"])
    sc.add(arr, contrib)
