"""Reverse AD of ``reduce`` (paper §5.1).

The general rule computes, for every i, the prefix ``l_i = a_0 ⊙ … ⊙ a_{i-1}``
and suffix ``r_i = a_{i+1} ⊙ … ⊙ a_{n-1}`` with two exclusive scans, then
applies the core rewrite rule to ``y = l_i ⊙ a_i ⊙ r_i``:

    ā_i += ∂(l_i ⊙ a_i ⊙ r_i)/∂a_i · ȳ

The special cases (§5.1.1) replace this 5-pass pipeline:

* ``+``   : ā += ȳ (broadcast);
* ``*``   : forward sweep counts zeros and multiplies non-zeros; the return
  sweep distributes ``ȳ·(y/aᵢ)`` / ``ȳ·p`` according to the zero count;
* ``min``/``max`` : forward sweep computes the argmin/argmax (tuple reduce);
  only the winning element receives ``ȳ``.
"""
from __future__ import annotations

from typing import List, Optional, Tuple

from ..ir.analysis import recognize_binop_lambda
from ..ir.ast import (
    AtomExp,
    Atom,
    BinOp,
    Const,
    Index,
    Iota,
    Lambda,
    Reduce,
    Select,
    Size,
    Stm,
    Var,
)
from ..ir.builder import Builder, const, const_like
from ..ir.traversal import free_vars
from ..ir.types import BOOL, I64, elem_type, is_float
from ..util import ADError, fresh
from .adjoint import AdjScope, inline_lambda

__all__ = ["fwd_reduce", "rev_reduce", "lifted_op", "argminmax_lambda"]


def lifted_op(lam: Lambda) -> Lambda:
    """Forward-mode lift of a binary scalar operator ``λ a b → z`` into
    ``λ a b ȧ ḃ → (z, ż)`` — used to evaluate ∂⊙/∂a and ∂⊙/∂b at a point."""
    from .jvp import _JVP, _dvar

    a, b_ = lam.params
    j = _JVP()
    da, db = _dvar(a), _dvar(b_)
    j.tan[a.name] = da
    j.tan[b_.name] = db
    bb = Builder()
    prim, tans = j.body(lam.body, bb)
    body = bb.finish(tuple(prim) + tuple(tans))
    return Lambda((a, b_, da, db), body)


def argminmax_lambda(et, op: str) -> Lambda:
    """Tuple-reduce operator computing (extremal value, first index)."""
    v1 = Var(fresh("v1"), et)
    i1 = Var(fresh("i1"), I64)
    v2 = Var(fresh("v2"), et)
    i2 = Var(fresh("i2"), I64)
    b = Builder()
    better = b.binop("lt" if op == "min" else "gt", v1, v2, "bt")
    eq = b.binop("eq", v1, v2, "eq")
    ile = b.binop("le", i1, i2, "ile")
    tie = b.binop("and", eq, ile, "tie")
    take1 = b.binop("or", better, tie, "take1")
    v = b.select(take1, v1, v2, "v")
    i = b.select(take1, i1, i2, "i")
    return Lambda((v1, i1, v2, i2), b.finish([v, i]))


def fwd_reduce(vjp, stm: Stm, e: Reduce, b: Builder):
    """Forward sweep; special operators compute extra bookkeeping."""
    op = recognize_binop_lambda(e.lam) if len(e.nes) == 1 else None
    if op is None or not is_float(stm.pat[0].type):
        b.emit_into(stm.pat, e)
        return {"kind": "general" if len(e.nes) == 1 else "tuple"}
    arr = e.arrs[0]
    et = elem_type(arr.type)
    if op == "add":
        b.emit_into(stm.pat, e)
        return {"kind": "add"}
    if op == "mul":
        # One map-reduce pass: count zeros, multiply the non-zeros.
        x = Var(fresh("x"), et)
        xb = Builder()
        isz = xb.binop("eq", x, const(0.0, et), "isz")
        zf = xb.select(isz, const(1, I64), const(0, I64), "zf")
        nzv = xb.select(isz, const(1.0, et), x, "nzv")
        lam = Lambda((x,), xb.finish([zf, nzv]))
        zflags, nzvals = b.map(lam, [arr], names=["zf", "nzv"])

        c1, c2, x1, x2 = (Var(fresh(n), t) for n, t in
                          (("c1", I64), ("p1", et), ("c2", I64), ("p2", et)))
        ob = Builder()
        cs = ob.add(c1, x1, "cs")
        ps = ob.mul(c2, x2, "ps")
        op2 = Lambda((c1, c2, x1, x2), ob.finish([cs, ps]))
        nz, p = b.reduce(op2, [const(0, I64), const(1.0, et)], [zflags, nzvals], names=["nz", "p"])
        has0 = b.binop("eq", nz, const(0, I64), "has0")
        y = b.select(has0, p, const(0.0, et), "y")
        b.emit_into(stm.pat, AtomExp(y))
        return {"kind": "mul", "nz": nz, "p": p}
    # min / max: the common argmin trick.
    n = b.emit1(Size(arr), "n")
    idxs = b.emit1(Iota(n), "is")
    lam = argminmax_lambda(et, op)
    ninf = const(float("inf") if op == "min" else float("-inf"), et)
    y, iy = b.reduce(lam, [ninf, const(2**62, I64)], [arr, idxs], names=["y", "iy"])
    b.emit_into(stm.pat, AtomExp(y))
    return {"kind": op, "iy": iy, "n": n}


def rev_reduce(vjp, stm: Stm, e: Reduce, aux, sc: AdjScope) -> None:
    b = sc.b
    kind = aux["kind"]
    if kind == "tuple":
        raise ADError(
            "reverse AD of tuple-valued reduces with a general operator is "
            "not supported (specialise the operator or use jvp)"
        )
    arr = e.arrs[0]
    et = elem_type(arr.type)
    ybar = sc.lookup(stm.pat[0])

    if kind == "add":
        # ∂(l+a+r)/∂a · ȳ = ȳ for every element (derived automatically from
        # the general rule by the simplifier; hardwired here as in §5.1.1).
        sc.add(arr, ybar)
        return

    if kind == "mul":
        nz, p = aux["nz"], aux["p"]
        a = Var(fresh("a"), et)
        ab = Builder()
        c0 = ab.binop("eq", nz, const(0, I64), "c0")
        c1 = ab.binop("eq", nz, const(1, I64), "c1")
        az = ab.binop("eq", a, const(0.0, et), "az")
        pa = ab.div(p, a, "pa")
        v0 = ab.mul(ybar, pa, "v0")
        v1 = ab.mul(ybar, p, "v1")
        one0 = ab.binop("and", c1, az, "one0")
        inner = ab.select(one0, v1, const(0.0, et), "inner")
        r = ab.select(c0, v0, inner, "r")
        lam = Lambda((a,), ab.finish([r]))
        (contrib,) = b.map(lam, [arr], names=["c"])
        sc.add(arr, contrib)
        return

    if kind in ("min", "max"):
        iy, n = aux["iy"], aux["n"]
        # Guarded one-hot contribution: only the winning index receives ȳ
        # (branch-free so it also works in accumulator mode / empty arrays).
        inb = b.binop("lt", iy, n, "inb")
        nm1 = b.sub(n, const(1, I64), "nm1")
        safe = b.binop("min", iy, nm1, "safe")
        zero = const(0.0, et)
        cv = b.select(inb, ybar, zero, "cv")
        sc.add_at(arr, (safe,), cv)
        return

    # ----- general rule: two exclusive scans + a map of the local vjp -------
    lam = e.lam
    if any(is_float(v.type) for v in free_vars(lam).values()):
        raise ADError(
            "reverse AD of reduce with a free-variable-capturing operator is "
            "not supported (paper §5.1 assumes ⊙ has no free variables)"
        )
    ne = e.nes[0]
    n = b.emit1(Size(arr), "n")

    # ls: forward exclusive scan.
    (incl,) = b.scan(lam, [ne], [arr], names=["incl"])
    idxs = b.emit1(Iota(n), "is")
    i1 = Var(fresh("i"), I64)
    sb = Builder()
    is0 = sb.binop("eq", i1, const(0, I64), "is0")
    im1 = sb.sub(i1, const(1, I64), "im1")
    safe = sb.binop("max", im1, const(0, I64), "safe")
    prev = sb.index(incl, (safe,), "prev")
    lv = sb.select(is0, ne, prev, "lv")
    (ls,) = b.map(Lambda((i1,), sb.finish([lv])), [idxs], names=["ls"])

    # rs: reversed exclusive scan with the flipped operator.
    pa, pb_ = lam.params
    fb = Builder()
    fres = inline_lambda(fb, lam, (pb_, pa))
    flip = Lambda((pa, pb_), fb.finish(fres))
    rarr = b.reverse(arr, "ra")
    (rincl,) = b.scan(flip, [ne], [rarr], names=["rincl"])
    i2 = Var(fresh("i"), I64)
    rb = Builder()
    is02 = rb.binop("eq", i2, const(0, I64), "is0")
    im12 = rb.sub(i2, const(1, I64), "im1")
    safe2 = rb.binop("max", im12, const(0, I64), "safe")
    prev2 = rb.index(rincl, (safe2,), "prev")
    rv = rb.select(is02, ne, prev2, "rv")
    (rs_rev,) = b.map(Lambda((i2,), rb.finish([rv])), [idxs], names=["rsrev"])
    rs = b.reverse(rs_rev, "rs")

    # ā_i += ∂(l ⊙ a ⊙ r)/∂a · ȳ, computed with the lifted operator.
    lift = lifted_op(lam)
    lp = Var(fresh("l"), et)
    ap = Var(fresh("a"), et)
    rp = Var(fresh("r"), et)
    mb = Builder()
    one = const(1.0, et)
    zero = const(0.0, et)
    # t = l ⊙ a with ∂t/∂a;  y = t ⊙ r with ∂y/∂t;  chain them.
    t, dt = inline_lambda(mb, lift, (lp, ap, zero, one))
    _y, dy = inline_lambda(mb, lift, (t, rp, one, zero))
    dya = mb.mul(dy, dt, "dya")
    cv = mb.mul(dya, ybar, "cv")
    mlam = Lambda((lp, ap, rp), mb.finish([cv]))
    (contrib,) = b.map(mlam, [ls, arr, rs], names=["c"])
    sc.add(arr, contrib)
