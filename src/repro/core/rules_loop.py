"""Reverse AD of sequential for-loops (paper Fig. 3, §4.3, §6.2).

Sequential loops are the only construct that requires iteration
checkpointing: the forward sweep saves each loop-variant value at iteration
entry into a scratch array; the return sweep loop runs the iterations in
reverse, re-installs the checkpointed state, redundantly re-executes the
body's forward sweep, and then runs the body's return sweep.  Adjoints of
the loop's free variables are threaded as loop-variant state (Fig. 3's
``fvs_bdy``); adjoints of accumulated arrays thread as accumulator state.

``checkpoint="entry"`` (§6.2, the user annotation for loops free of false
dependencies) skips per-iteration checkpointing for array state: any value
an iteration reads is still present in the *final* array, so the return
sweep re-installs the loop's final value instead — preserving the original
work asymptotics when the body updates arrays in place.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.ast import (
    AtomExp,
    Atom,
    Body,
    Index,
    Lambda,
    Loop,
    ScratchLike,
    Stm,
    Update,
    Var,
)
from ..ir.builder import Builder, const
from ..ir.traversal import free_vars
from ..ir.types import AccType, ArrayType, elem_type, is_float, rank_of, with_rank
from ..util import ADError, fresh
from .adjoint import AdjScope

__all__ = ["fwd_loop", "rev_loop"]


def fwd_loop(vjp, stm: Stm, e: Loop, b: Builder):
    """Forward sweep: the original loop, with loop-variant values
    checkpointed into scratch arrays (Fig. 3's ``xs[i] = x``)."""
    ckpt_mask = []
    for p in e.params:
        if e.checkpoint == "entry" and rank_of(p.type) > 0:
            ckpt_mask.append(False)  # re-install from the final value (§6.2)
        else:
            ckpt_mask.append(True)

    ckpt_bufs: List[Optional[Var]] = []
    for p, init, m in zip(e.params, e.inits, ckpt_mask):
        if m:
            ckpt_bufs.append(b.scratch_like(e.n, init, name=p.name + "_ckpt"))
        else:
            ckpt_bufs.append(None)

    ck_params = [
        Var(fresh(p.name + "_cs"), with_rank(elem_type(p.type), rank_of(p.type) + 1))
        for p, m in zip(e.params, ckpt_mask)
        if m
    ]
    lb = Builder()
    ck_res = []
    k = 0
    for p, m in zip(e.params, ckpt_mask):
        if m:
            ck_res.append(lb.update(ck_params[k], (e.ivar,), p, name=ck_params[k].name))
            k += 1
    lb.extend(e.body.stms)
    body = lb.finish(tuple(e.body.result) + tuple(ck_res))

    ck_outs = tuple(
        Var(fresh(p.name + "_ck"), with_rank(elem_type(p.type), rank_of(p.type) + 1))
        for p, m in zip(e.params, ckpt_mask)
        if m
    )
    new_loop = Loop(
        tuple(e.params) + tuple(ck_params),
        tuple(e.inits) + tuple(cb for cb in ckpt_bufs if cb is not None),
        e.ivar,
        e.n,
        body,
        0,
        "iters",
    )
    b.emit_into(tuple(stm.pat) + ck_outs, new_loop)
    return {"ck_outs": ck_outs, "ckpt_mask": ckpt_mask}


def rev_loop(vjp, stm: Stm, e: Loop, aux, sc: AdjScope) -> None:
    b = sc.b
    ck_outs: Tuple[Var, ...] = aux["ck_outs"]
    ckpt_mask: List[bool] = aux["ckpt_mask"]

    # Adjoints of the loop's results (= final params).
    ybars: List[Optional[Atom]] = []
    for v, p in zip(stm.pat, e.params):
        ybars.append(sc.lookup(v) if is_float(v.type) else None)

    # Free variables of the body needing adjoints, split by mode.
    bound = {p.name for p in e.params} | {e.ivar.name}
    fvs = [
        v
        for v in free_vars(e.body).values()
        if is_float(v.type) and v.name not in bound and v.name not in vjp.nodiff
    ]
    acc_fvs = [v for v in fvs if v.name in vjp.acc_env]
    val_fvs = [v for v in fvs if v.name not in vjp.acc_env]

    # Reverse-loop state: adjoints of float params, value-mode free-variable
    # adjoints, and threaded accumulators.
    float_params = [p for p in e.params if is_float(p.type)]
    pbar_params = [Var(fresh(p.name + "_bar"), p.type) for p in float_params]
    wbar_params = [Var(fresh(v.name + "_bar"), v.type) for v in val_fvs]
    accp_params = [
        Var(fresh(v.name + "_acc"), AccType(elem_type(v.type), rank_of(v.type)))
        for v in acc_fvs
    ]

    pbar_inits = [yb for yb, p in zip(ybars, e.params) if is_float(p.type)]
    wbar_inits = []
    for v in val_fvs:
        a = sc.lookup(v)
        wbar_inits.append(a)
    acc_inits = [vjp.acc_env[v.name] for v in acc_fvs]

    ivar2 = Var(fresh("ri"), elem_type(e.ivar.type))
    lb = Builder()
    nm1 = lb.sub(e.n, const(1, elem_type(e.ivar.type)), "nm1")
    jj = lb.sub(nm1, ivar2, "j")
    # Re-install the loop state of original iteration j (Fig. 3's
    # ``x = xs[i]``): checkpointed values come from the scratch arrays;
    # entry-mode arrays re-install the final value (their reads survive).
    k = 0
    for p, m, res in zip(e.params, ckpt_mask, stm.pat):
        if m:
            lb.emit_into((p,), Index(ck_outs[k], (jj,)))
            k += 1
        else:
            lb.emit_into((p,), AtomExp(res))
    lb.emit_into((e.ivar,), AtomExp(jj))

    saved_acc = dict(vjp.acc_env)
    for v, ap in zip(acc_fvs, accp_params):
        vjp.acc_env[v.name] = ap

    # Seeds: the body's results are the next iteration's params, whose
    # adjoints arrive as the reverse loop's pbar state.
    seeds: List[Optional[Atom]] = []
    j = 0
    for p in e.params:
        if is_float(p.type):
            seeds.append(pbar_params[j])
            j += 1
        else:
            seeds.append(None)
    init_adj = {v.name: w for v, w in zip(val_fvs, wbar_params)}
    adjs = vjp.transform_scope(e.body, seeds, list(float_params) + list(val_fvs), lb, init_adj)
    p_adjs = adjs[: len(float_params)]
    w_adjs = adjs[len(float_params):]
    acc_res = [vjp.acc_env[v.name] for v in acc_fvs]
    body = lb.finish(tuple(p_adjs) + tuple(w_adjs) + tuple(acc_res))

    vjp.acc_env.clear()
    vjp.acc_env.update(saved_acc)

    names = (
        [p.name + "_bar" for p in float_params]
        + [v.name + "_bar" for v in val_fvs]
        + [v.name + "_acc" for v in acc_fvs]
    )
    vs = b.loop(
        tuple(pbar_params) + tuple(wbar_params) + tuple(accp_params),
        tuple(pbar_inits) + tuple(wbar_inits) + tuple(acc_inits),
        ivar2,
        e.n,
        body,
        names=names,
    )
    p_finals = vs[: len(float_params)]
    w_finals = vs[len(float_params) : len(float_params) + len(val_fvs)]
    acc_finals = vs[len(float_params) + len(val_fvs):]

    # Threaded free-variable adjoints REPLACE the prior value (the thread
    # consumed and includes it) — and must do so before the initialiser
    # contributions below, which may target the same variables.
    for v, w in zip(val_fvs, w_finals):
        sc.set(v, w)
    for v, a in zip(acc_fvs, acc_finals):
        vjp.acc_env[v.name] = a
    # ←stms_x0: the adjoint of the loop-variant initialiser (Fig. 3).
    j = 0
    for p, init in zip(e.params, e.inits):
        if is_float(p.type):
            sc.add(init, p_finals[j])
            j += 1
