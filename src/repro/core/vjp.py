"""Reverse-mode AD by redundant execution (paper §4).

The transform follows Fig. 3:

* ``transform_scope`` (the paper's ``vjp_body``) first emits the **forward
  sweep** — the scope's original statements, re-executed so that every
  variable the return sweep may need is in scope (this is the "tape": the
  in-scope variables themselves) — then seeds the result adjoints and emits
  the **return sweep** in reverse statement order;
* sequential loops are the only construct that checkpoints (loop-variant
  values are saved per iteration, Fig. 3/4);
* inside ``map``, free-array adjoints become **accumulators** (§5.4);
  free-scalar adjoints are returned per iteration and summed;
* the parallel operators use the rewrite rules of §5 (``rules_reduce``,
  ``rules_scan``, ``rules_hist``, ``rules_scatter``, ``rules_map``,
  ``rules_loop``).

Re-execution overhead is bounded by the nesting depth; the redundant forward
sweeps of perfect nests become dead code that ``opt.dce`` removes (§4.1),
which ``tests/test_opt_dce.py`` checks structurally on the paper's Fig. 2.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.ast import (
    AtomExp,
    Atom,
    BinOp,
    Body,
    Cast,
    Concat,
    Const,
    Exp,
    Fun,
    If,
    Index,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Size,
    Stm,
    UnOp,
    UpdAcc,
    Update,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from ..ir.builder import Builder, const, const_like
from ..ir.traversal import free_vars
from ..ir.typecheck import check_fun
from ..ir.validate import validate_fun
from ..ir.types import elem_type, is_float, rank_of
from ..util import ADError, fresh
from .adjoint import AdjScope
from .rules_scalar import binop_partials, unop_partial

__all__ = ["vjp_fun", "VJP"]


class VJP:
    """Reverse-mode transformer.

    ``acc_env`` maps original variable names to their current accumulator
    variable wherever the adjoint is in accumulator mode; it is shared down
    nested scopes (accumulators are ordinary values threaded through maps,
    loops and branches).
    """

    def __init__(self, nodiff: Optional[set] = None) -> None:
        self.acc_env: Dict[str, Var] = {}
        self.nodiff: set = nodiff if nodiff is not None else set()

    # ------------------------------------------------------------------ scopes

    def transform_scope(
        self,
        body: Body,
        seeds: Sequence[Optional[Atom]],
        want: Sequence[Var],
        b: Builder,
        init_adj: Optional[Dict[str, Atom]] = None,
    ) -> List[Atom]:
        """Fig. 3's ``vjp_body``: forward sweep, seed, return sweep.

        ``seeds[i]`` is the adjoint of ``body.result[i]`` (None for
        non-float results).  Returns the final adjoints of ``want``.
        """
        aux_list = []
        for stm in body.stms:
            aux_list.append((stm, self.fwd_stm(stm, b)))
        sc = AdjScope(b, self.acc_env, init_adj, nodiff=self.nodiff)
        for a, s in zip(body.result, seeds):
            if s is not None and isinstance(a, Var) and is_float(a.type):
                sc.add(a, s)
        for stm, aux in reversed(aux_list):
            self.rev_stm(stm, aux, sc)
        return [sc.final(w) for w in want]

    # ------------------------------------------------------------- forward sweep

    def fwd_stm(self, stm: Stm, b: Builder):
        """Emit the forward-sweep version of ``stm``; return rule-specific
        auxiliary data for the return sweep."""
        e = stm.exp
        if isinstance(e, Loop):
            from .rules_loop import fwd_loop

            return fwd_loop(self, stm, e, b)
        if isinstance(e, Reduce):
            from .rules_reduce import fwd_reduce

            return fwd_reduce(self, stm, e, b)
        if isinstance(e, ReduceByIndex):
            from .rules_hist import fwd_hist

            return fwd_hist(self, stm, e, b)
        if isinstance(e, (WithAcc, UpdAcc)):
            raise ADError(
                "reverse AD of accumulator constructs is not supported; "
                "compute higher-order derivatives as jvp(vjp(f)) (paper §7.4)"
            )
        b.emit_into(stm.pat, e)
        return None

    # ------------------------------------------------------------- return sweep

    def rev_stm(self, stm: Stm, aux, sc: AdjScope) -> None:
        # A statement whose bound float results were never used by the
        # return sweep so far has all-zero result adjoints and contributes
        # nothing (its own operand adjoints stay untouched).
        if not any(is_float(v.type) and v.name in sc.adj for v in stm.pat):
            return
        e = stm.exp
        handler = getattr(self, "_rev_" + type(e).__name__, None)
        if handler is None:
            raise ADError(f"vjp: unsupported construct {type(e).__name__}")
        handler(stm, e, aux, sc)

    # -- scalar / simple array rules ------------------------------------------------

    def _ybar(self, stm: Stm, sc: AdjScope) -> Atom:
        return sc.lookup(stm.pat[0])

    def _rev_AtomExp(self, stm: Stm, e: AtomExp, aux, sc: AdjScope) -> None:
        sc.add(e.x, self._ybar(stm, sc))

    def _rev_UnOp(self, stm: Stm, e: UnOp, aux, sc: AdjScope) -> None:
        if not is_float(stm.pat[0].type):
            return
        ybar = self._ybar(stm, sc)
        d = unop_partial(sc.b, e.op, e.x, stm.pat[0])
        if d is not None:
            sc.add(e.x, sc.b.mul(d, ybar, "c"))

    def _rev_BinOp(self, stm: Stm, e: BinOp, aux, sc: AdjScope) -> None:
        if not is_float(stm.pat[0].type):
            return
        ybar = self._ybar(stm, sc)
        dx, dy = binop_partials(sc.b, e.op, e.x, e.y, stm.pat[0])
        if dx is not None and is_float(e.x.type):
            sc.add(e.x, sc.b.mul(dx, ybar, "c"))
        if dy is not None and is_float(e.y.type):
            sc.add(e.y, sc.b.mul(dy, ybar, "c"))

    def _rev_Select(self, stm: Stm, e: Select, aux, sc: AdjScope) -> None:
        if not is_float(stm.pat[0].type):
            return
        ybar = self._ybar(stm, sc)
        zero = const_like(0.0, e.t)
        if isinstance(e.t, Var):
            sc.add(e.t, sc.b.select(e.c, ybar, zero, "c"))
        if isinstance(e.f, Var):
            sc.add(e.f, sc.b.select(e.c, zero, ybar, "c"))

    def _rev_Cast(self, stm: Stm, e: Cast, aux, sc: AdjScope) -> None:
        if is_float(stm.pat[0].type) and is_float(e.x.type):
            ybar = self._ybar(stm, sc)
            sc.add(e.x, sc.b.cast(ybar, elem_type(e.x.type), "c"))

    def _rev_Index(self, stm: Stm, e: Index, aux, sc: AdjScope) -> None:
        if is_float(stm.pat[0].type):
            sc.add_at(e.arr, e.idx, self._ybar(stm, sc))

    def _rev_Update(self, stm: Stm, e: Update, aux, sc: AdjScope) -> None:
        if not is_float(stm.pat[0].type):
            return
        ybar = self._ybar(stm, sc)
        if not isinstance(ybar, Var):
            raise ADError("update: array adjoint must be a variable")
        # v̄ += ȳ[idx]
        if isinstance(e.val, Var):
            sc.add(e.val, sc.b.index(ybar, e.idx, "c"))
        # ā += ȳ with [idx] <- 0  (the overwritten slot contributed nothing)
        z = sc.b.zeros_like(e.val)
        sc.add(e.arr, sc.b.update(ybar, e.idx, z, "c"))

    def _rev_Iota(self, stm: Stm, e: Iota, aux, sc: AdjScope) -> None:
        pass

    def _rev_Size(self, stm: Stm, e: Size, aux, sc: AdjScope) -> None:
        pass

    def _rev_ZerosLike(self, stm: Stm, e: ZerosLike, aux, sc: AdjScope) -> None:
        pass

    def _rev_ScratchLike(self, stm: Stm, e: ScratchLike, aux, sc: AdjScope) -> None:
        pass

    def _rev_Replicate(self, stm: Stm, e: Replicate, aux, sc: AdjScope) -> None:
        if is_float(stm.pat[0].type) and isinstance(e.v, Var):
            # Adjoint of a broadcast is the sum over the new axis; sc.add
            # performs the leading-axis reduction.
            sc.add(e.v, self._ybar(stm, sc))

    def _rev_Reverse(self, stm: Stm, e: Reverse, aux, sc: AdjScope) -> None:
        if is_float(stm.pat[0].type):
            ybar = self._ybar(stm, sc)
            assert isinstance(ybar, Var)
            sc.add(e.x, sc.b.reverse(ybar, "c"))

    def _rev_Concat(self, stm: Stm, e: Concat, aux, sc: AdjScope) -> None:
        if not is_float(stm.pat[0].type):
            return
        ybar = self._ybar(stm, sc)
        assert isinstance(ybar, Var)
        b = sc.b
        nx = b.emit1(Size(e.x), "nx")
        ny = b.emit1(Size(e.y), "ny")
        # x̄ += ȳ[0:nx];  ȳ̄ += ȳ[nx:nx+ny] — expressed as gathers.
        i = Var(fresh("i"), elem_type(nx.type))
        ib = Builder()
        el = ib.index(ybar, (i,), "el")
        xs_part = b.map(Lambda((i,), ib.finish([el])), [b.emit1(Iota(nx), "is")], names=["c"])[0]
        sc.add(e.x, xs_part)
        j = Var(fresh("j"), elem_type(ny.type))
        jb = Builder()
        off = jb.add(j, nx, "off")
        el2 = jb.index(ybar, (off,), "el")
        ys_part = b.map(Lambda((j,), jb.finish([el2])), [b.emit1(Iota(ny), "is")], names=["c"])[0]
        sc.add(e.y, ys_part)

    # -- SOACs and control flow (rules modules) ------------------------------------

    def _rev_Map(self, stm: Stm, e: Map, aux, sc: AdjScope) -> None:
        from .rules_map import rev_map

        rev_map(self, stm, e, sc)

    def _rev_Reduce(self, stm: Stm, e: Reduce, aux, sc: AdjScope) -> None:
        from .rules_reduce import rev_reduce

        rev_reduce(self, stm, e, aux, sc)

    def _rev_Scan(self, stm: Stm, e: Scan, aux, sc: AdjScope) -> None:
        from .rules_scan import rev_scan

        rev_scan(self, stm, e, sc)

    def _rev_ReduceByIndex(self, stm: Stm, e: ReduceByIndex, aux, sc: AdjScope) -> None:
        from .rules_hist import rev_hist

        rev_hist(self, stm, e, aux, sc)

    def _rev_Scatter(self, stm: Stm, e: Scatter, aux, sc: AdjScope) -> None:
        from .rules_scatter import rev_scatter

        rev_scatter(self, stm, e, sc)

    def _rev_Loop(self, stm: Stm, e: Loop, aux, sc: AdjScope) -> None:
        from .rules_loop import rev_loop

        rev_loop(self, stm, e, aux, sc)

    def _rev_WhileLoop(self, stm: Stm, e: WhileLoop, aux, sc: AdjScope) -> None:
        # A while loop reached by the return sweep with live float adjoints
        # cannot be checkpointed (statically-unknown iteration count, §6.2).
        raise ADError(
            "reverse AD of a while loop requires an iteration bound: "
            "annotate it (while_loop(..., bound=n)) or let the while_bound "
            "pass insert an inspector; then it becomes a bounded for-loop"
        )

    def _rev_If(self, stm: Stm, e: If, aux, sc: AdjScope) -> None:
        b = sc.b
        ybars: List[Optional[Atom]] = [
            sc.lookup(v) if is_float(v.type) else None for v in stm.pat
        ]
        # Free variables of either branch that need adjoints.
        fvs = {}
        for bodyx in (e.then, e.els):
            for name, v in free_vars(bodyx).items():
                if is_float(v.type) and name not in self.nodiff:
                    fvs.setdefault(name, v)
        acc_fvs = [v for v in fvs.values() if v.name in self.acc_env]
        val_fvs = [v for v in fvs.values() if v.name not in self.acc_env]

        saved_acc = {v.name: self.acc_env[v.name] for v in acc_fvs}

        def branch(bodyx: Body) -> Body:
            bb = Builder()
            for n, a in saved_acc.items():
                self.acc_env[n] = a
            adjs = self.transform_scope(bodyx, ybars, val_fvs, bb)
            acc_res = [self.acc_env[v.name] for v in acc_fvs]
            return bb.finish(tuple(acc_res) + tuple(adjs))

        then_b = branch(e.then)
        els_b = branch(e.els)
        for n, a in saved_acc.items():
            self.acc_env[n] = a
        names = [v.name + "_acc" for v in acc_fvs] + [v.name + "_bar" for v in val_fvs]
        vs = b.if_(e.cond, then_b, els_b, names=names)
        for v, nv in zip(acc_fvs, vs[: len(acc_fvs)]):
            self.acc_env[v.name] = nv
        for v, contrib in zip(val_fvs, vs[len(acc_fvs):]):
            sc.add(v, contrib)


def vjp_fun(fun: Fun, check: bool = True, wrt=None) -> Fun:
    """Reverse-mode transform.

    ``vjp(f) : (params..., seeds of float results...) ->
    (results..., adjoints of float params...)`` — the paper's ←P extended
    with the primal results (Fig. 1c returns them too).  ``wrt`` optionally
    restricts which parameters (by index) receive adjoints; the others are
    treated as non-differentiable data (their adjoint code is never built).

    The input is unfused first: the reduce/scan/hist rules assume canonical
    associative operators, not the fusion engine's redomap shapes.
    """
    from ..opt.fusion import unfuse_fun

    fun = unfuse_fun(fun)
    nodiff = set()
    if wrt is not None:
        wanted = set(wrt)
        nodiff = {p.name for i, p in enumerate(fun.params) if i not in wanted}
    v = VJP(nodiff)
    seeds: List[Optional[Atom]] = []
    seed_params: List[Var] = []
    for i, r in enumerate(fun.body.result):
        if is_float(r.type):
            sp = Var(fresh(f"seed{i}"), r.type)
            seed_params.append(sp)
            seeds.append(sp)
        else:
            seeds.append(None)
    want = [
        p
        for i, p in enumerate(fun.params)
        if is_float(p.type) and (wrt is None or i in set(wrt))
    ]
    b = Builder()
    adjs = v.transform_scope(fun.body, seeds, want, b)
    body = b.finish(tuple(fun.body.result) + tuple(adjs))
    out = Fun(fun.name + "_vjp", tuple(fun.params) + tuple(seed_params), body)
    if check:
        check_fun(out)
        validate_fun(out)
    from ..ir.verify import maybe_verify_fun

    return maybe_verify_fun(out, where="vjp")
