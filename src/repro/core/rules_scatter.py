"""Reverse AD of ``scatter`` (paper §5.3).

For ``ys = scatter xs is vs`` (no duplicate indices):

* ``v̄s += gather ȳs is``  — each written slot's adjoint flows to its value;
* ``x̄s  = scatter ȳs is 0`` — the overwritten slots of ``xs`` never reached
  the output, so their adjoints are zeroed;
* the paper additionally saves and restores the overwritten elements
  (``xs_saved``) because its ``scatter`` consumes ``xs`` in place; our
  executors are copy-on-write, so ``xs`` is still live and no restore is
  needed — the rule's work remains O(m), not O(n).
"""
from __future__ import annotations

from ..ir.ast import Lambda, Scatter, Size, Stm, Var, ZerosLike
from ..ir.builder import Builder, const
from ..ir.types import I64, elem_type, is_float
from ..util import fresh
from .adjoint import AdjScope

__all__ = ["rev_scatter"]


def rev_scatter(vjp, stm: Stm, e: Scatter, sc: AdjScope) -> None:
    if not is_float(stm.pat[0].type):
        return
    b = sc.b
    ybar = sc.lookup(stm.pat[0])
    if not isinstance(ybar, Var):
        ybar = b.copy(ybar, "ybar")
    n = b.emit1(Size(e.dest), "n")

    # v̄s += gather ȳs is (out-of-range writes were dropped; guard likewise).
    et = elem_type(e.vals.type)
    vrank = e.vals.type.rank
    ix = Var(fresh("ix"), elem_type(e.inds.type))
    gb = Builder()
    lo = gb.binop("ge", ix, const(0, I64), "lo")
    hi = gb.binop("lt", ix, n, "hi")
    ok = gb.binop("and", lo, hi, "ok")
    nm1 = gb.sub(n, const(1, I64), "nm1")
    safe0 = gb.binop("max", ix, const(0, I64), "s0")
    safe = gb.binop("min", safe0, nm1, "safe")
    hv = gb.index(ybar, (safe,), "hv")
    if vrank == 1:
        zero = const(0.0, et)
        cv = gb.select(ok, hv, zero, "cv")
    else:
        z = gb.zeros_like(hv)
        cv = gb.select(ok, hv, z, "cv")
    (contrib,) = b.map(Lambda((ix,), gb.finish([cv])), [e.inds], names=["c"])
    sc.add(e.vals, contrib)

    # x̄s = ȳs with the scattered slots zeroed.
    zv = b.emit1(ZerosLike(e.vals), "zv")
    xsbar = b.scatter(ybar, e.inds, zv, e.dest.name + "_bar")
    sc.add(e.dest, xsbar)
