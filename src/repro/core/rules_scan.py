"""Reverse AD of ``scan`` (paper §5.2).

The adjoint of an inclusive scan obeys the backward linear recurrence

    r̄s[i] = ȳs[i] + c_i · r̄s[i+1],   c_i = ∂(rs[i] ⊙ as[i+1])/∂rs[i]

which is solved with a scan whose operator is linear-function composition
(Blelloch's classic trick).  The element contributions follow with one map:

    ās[i] += (i == 0 ? 1 : ∂(rs[i-1] ⊙ as[i])/∂as[i]) · r̄s[i]

The special case ``scan (+)`` needs no derivatives at all:
``ās += reverse (scan (+) 0 (reverse ȳs))``.
"""
from __future__ import annotations

from ..ir.analysis import recognize_binop_lambda
from ..ir.ast import Const, Iota, Lambda, Scan, Size, Stm, Var
from ..ir.builder import Builder, const
from ..ir.traversal import free_vars
from ..ir.types import I64, elem_type, is_float
from ..util import ADError, fresh
from .adjoint import AdjScope, inline_lambda
from .rules_reduce import lifted_op

__all__ = ["rev_scan"]


def rev_scan(vjp, stm: Stm, e: Scan, sc: AdjScope) -> None:
    if len(e.nes) != 1:
        raise ADError("reverse AD of tuple-valued scans is not supported")
    b = sc.b
    arr = e.arrs[0]
    et = elem_type(arr.type)
    rs = stm.pat[0]  # the scan's result array (in scope: forward sweep ran)
    if not is_float(rs.type):
        return
    ysbar = sc.lookup(rs)
    if not isinstance(ysbar, Var):
        ysbar = b.copy(ysbar, "ysbar")

    op = recognize_binop_lambda(e.lam)
    if op == "add":
        rev_y = b.reverse(ysbar, "ry")
        a1 = Var(fresh("a"), et)
        a2 = Var(fresh("b"), et)
        ab = Builder()
        s = ab.add(a1, a2, "s")
        addl = Lambda((a1, a2), ab.finish([s]))
        (cum,) = b.scan(addl, [const(0.0, et)], [rev_y], names=["cum"])
        contrib = b.reverse(cum, "c")
        sc.add(arr, contrib)
        return

    if any(is_float(v.type) for v in free_vars(e.lam).values()):
        raise ADError(
            "reverse AD of scan with a free-variable-capturing operator is "
            "not supported (paper §5.2 assumes ⊙ has no free variables)"
        )

    lift = lifted_op(e.lam)
    n = b.emit1(Size(arr), "n")
    nm1 = b.sub(n, const(1, I64), "nm1")
    idxs = b.emit1(Iota(n), "is")
    one = const(1.0, et)
    zero = const(0.0, et)

    # (ds, cs): ds_i = ȳs[i], cs_i = ∂(rs[i] ⊙ as[i+1])/∂rs[i]; the last
    # element is the affine identity (0, 1).
    i1 = Var(fresh("i"), I64)
    mb = Builder()
    last = mb.binop("eq", i1, nm1, "last")
    ip1 = mb.add(i1, const(1, I64), "ip1")
    safe = mb.binop("min", ip1, nm1, "safe")
    r_i = mb.index(rs, (i1,), "r_i")
    a_n = mb.index(arr, (safe,), "a_n")
    _t, dr = inline_lambda(mb, lift, (r_i, a_n, one, zero))
    d_v = mb.index(ysbar, (i1,), "d_v")
    ds_v = mb.select(last, zero, d_v, "ds")
    cs_v = mb.select(last, one, dr, "cs")
    ds, cs = b.map(Lambda((i1,), mb.finish([ds_v, cs_v])), [idxs], names=["ds", "cs"])

    # Scan with linear-function composition over the reversed sequence.
    d1 = Var(fresh("d1"), et)
    c1 = Var(fresh("c1"), et)
    d2 = Var(fresh("d2"), et)
    c2 = Var(fresh("c2"), et)
    lb = Builder()
    t1 = lb.mul(c2, d1, "t")
    nd = lb.add(d2, t1, "nd")
    nc = lb.mul(c2, c1, "nc")
    lin_o = Lambda((d1, c1, d2, c2), lb.finish([nd, nc]))
    rds = b.reverse(ds, "rds")
    rcs = b.reverse(cs, "rcs")
    sd, scn = b.scan(lin_o, [zero, one], [rds, rcs], names=["sd", "sc"])

    # rs_bar = reverse (map (λ(d,c) → d + c·ȳs[n-1]) (sd, sc))
    ylast = b.index(ysbar, (nm1,), "ylast")
    dp = Var(fresh("d"), et)
    cp = Var(fresh("c"), et)
    pb = Builder()
    t2 = pb.mul(cp, ylast, "t")
    u = pb.add(dp, t2, "u")
    (rsbar_rev,) = b.map(Lambda((dp, cp), pb.finish([u])), [sd, scn], names=["rbr"])
    rsbar = b.reverse(rsbar_rev, "rsbar")

    # ās[i] += (i == 0 ? rs_bar[0] : ∂(rs[i-1] ⊙ as[i])/∂as[i] · rs_bar[i])
    i2 = Var(fresh("i"), I64)
    qb = Builder()
    is0 = qb.binop("eq", i2, const(0, I64), "is0")
    im1 = qb.sub(i2, const(1, I64), "im1")
    safe2 = qb.binop("max", im1, const(0, I64), "safe")
    r_p = qb.index(rs, (safe2,), "r_p")
    a_i = qb.index(arr, (i2,), "a_i")
    _t2, da = inline_lambda(qb, lift, (r_p, a_i, zero, one))
    rb_i = qb.index(rsbar, (i2,), "rb_i")
    da_eff = qb.select(is0, const(1.0, et), da, "da")
    cv = qb.mul(da_eff, rb_i, "cv")
    (contrib,) = b.map(Lambda((i2,), qb.finish([cv])), [idxs], names=["c"])
    sc.add(arr, contrib)
