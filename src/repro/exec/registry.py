"""Pluggable executor-backend registry.

Until PR 3 the backend set was a hard-coded ``"ref"|"vec"|"plan"`` string
check repeated in ``core/api.py``, ``frontend/function.py`` and the
benchmark wiring — adding the shard executor would have meant touching every
one of them (and any future backend the same again).  This module makes the
backend set data: a ``Backend`` record bundles the two executor entry points
with its capability flags, and every dispatch site resolves names through
``get_backend`` — which also gives unknown-backend errors one helpful shape
(the requested name plus the currently-registered set) instead of failing
deep inside dispatch.

Built-in backends, registered at import:

* ``vec``   — the vectorised SIMT simulator (re-interprets the IR per call);
* ``ref``   — the reference interpreter (semantics oracle, cost model);
* ``plan``  — the cached plan compiler (lower once, replay closures);
* ``codegen`` — the source codegen executor (same lowering, plan IR rendered
  to one compiled Python function; see ``exec/codegen.py``);
* ``shard`` — the sharded parallel executor (chunked plan execution on a
  worker pool; see ``exec/shard.py``).

Registering a custom backend is one call::

    from repro.exec.registry import Backend, register_backend
    register_backend(Backend("traced", run=my_run, run_batched=my_batched))

after which ``compiled(*args, backend="traced")``, ``grad(...)`` and the
rest of the API accept the new name.
"""
from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..ir.ast import Fun
from ..obs import metrics as _obs_metrics
from ..util import ReproError

__all__ = [
    "Backend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "default_backend",
    "available_backends",
    "batched_backends",
    "record_call",
    "DEFAULT_BACKEND",
]

#: Per-backend dispatch counters (``repro.obs`` section ``"backend_calls"``):
#: one count per top-level ``Compiled`` call routed to each backend name.
BACKEND_CALLS = _obs_metrics.counter_group("backend_calls", {})


def record_call(name: str) -> None:
    """Count one top-level dispatch to backend ``name``."""
    BACKEND_CALLS[name] = BACKEND_CALLS.get(name, 0) + 1

#: Fallback default when ``REPRO_BACKEND`` is unset: the plan compiler —
#: the paper's compiled-bulk-code executor, and with the two-tier cache the
#: cheapest repeat-call path.  Semantics are identical across backends (the
#: parity suite asserts it), so the default is purely a performance choice.
DEFAULT_BACKEND = "plan"


@dataclass(frozen=True)
class Backend:
    """One executor: a name, entry points, and capability flags.

    ``run(fun, args)`` evaluates a ``Fun`` and returns the result tuple.
    ``run_batched(fun, args, batched, batch_size)`` — when not None — is the
    batched multi-seed entry (flagged arguments carry a leading batch axis);
    its presence *is* the ``batched`` capability.  ``sharded`` marks
    executors that spread work across a worker pool (used by stats/ablation
    tooling, and reserved in the plan-cache key).
    """

    name: str
    run: Callable[[Fun, Sequence[object]], Tuple[object, ...]]
    run_batched: Optional[Callable] = None
    sharded: bool = False
    description: str = ""

    @property
    def batched(self) -> bool:
        """Whether this backend can evaluate batched multi-seed calls."""
        return self.run_batched is not None


_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend, overwrite: bool = False) -> Backend:
    """Register ``backend`` under its name; returns it for chaining.

    Re-registering an existing name raises unless ``overwrite=True`` (a
    silent replacement of ``"plan"`` would be a debugging nightmare).
    """
    if not backend.name:
        raise ReproError("register_backend: backend name must be non-empty")
    if backend.name in _REGISTRY and not overwrite:
        raise ReproError(
            f"backend {backend.name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> Backend:
    """Remove and return a registered backend; unknown names raise
    ``ReproError`` listing the registered set (same shape as ``get_backend``)."""
    be = _REGISTRY.pop(name, None)
    if be is None:
        raise ReproError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(available_backends())}"
        )
    return be


def get_backend(name: str) -> Backend:
    """Resolve a backend name, or raise listing the registered set."""
    be = _REGISTRY.get(name)
    if be is None:
        raise ReproError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(available_backends())}"
        )
    return be


def default_backend() -> str:
    """The session-default backend name, shared by every entry point.

    ``REPRO_BACKEND`` selects it (read per call, so tests/operators can flip
    it), falling back to ``DEFAULT_BACKEND``; either way the name is
    validated against the registry so a typo fails loudly at the first
    dispatch, naming the registered set.  ``Compiled.__call__``,
    ``call_batched`` and the ``grad``/``value_and_grad``/``jacobian``/
    ``hessian_diag`` wrappers all resolve ``backend=None`` through this one
    function — the former per-entry-point defaults drifted ("vec" here,
    "plan" there).
    """
    return get_backend(os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND)).name


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def batched_backends() -> Tuple[str, ...]:
    """Names of backends able to run batched multi-seed calls."""
    return tuple(n for n, b in _REGISTRY.items() if b.batched)


# ---------------------------------------------------------------------------
# Built-ins
# ---------------------------------------------------------------------------


def _run_ref(fun: Fun, args: Sequence[object]) -> Tuple[object, ...]:
    from .interp import RefInterp

    return RefInterp().run(fun, args)


def _register_builtins() -> None:
    from .codegen import run_fun_codegen, run_fun_codegen_batched
    from .plan import run_fun_plan, run_fun_plan_batched
    from .shard import run_fun_shard, run_fun_shard_batched
    from .vector import run_fun_vec, run_fun_vec_batched

    register_backend(
        Backend(
            "vec",
            run=run_fun_vec,
            run_batched=run_fun_vec_batched,
            description="vectorised SIMT simulator (re-interprets per call)",
        )
    )
    register_backend(
        Backend(
            "ref",
            run=_run_ref,
            description="reference interpreter (semantics oracle)",
        )
    )
    register_backend(
        Backend(
            "plan",
            run=run_fun_plan,
            run_batched=run_fun_plan_batched,
            description="cached plan compiler (lower once, replay closures)",
        )
    )
    register_backend(
        Backend(
            "codegen",
            run=run_fun_codegen,
            run_batched=run_fun_codegen_batched,
            description="source codegen (plan IR compiled to one Python function)",
        )
    )
    register_backend(
        Backend(
            "shard",
            run=run_fun_shard,
            run_batched=run_fun_shard_batched,
            sharded=True,
            description="sharded parallel executor over the plan backend",
        )
    )


_register_builtins()
