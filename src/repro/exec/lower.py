"""Backend-neutral lowering: ``Fun`` + static shape facts → linear plan IR.

Until PR 6 the plan backend lowered and *emitted* in one pass —
``_PlanCompiler`` walked the AST and directly built instruction closures, so
every compile-time decision (slot allocation, scalar-run fusion, SOAC
fast-path recognition, specialisation folds) was welded to one execution
strategy.  This module factors those decisions out into an explicit **plan
IR**: a flat sequence of instruction records over a slot-numbered register
space, with every statically resolvable choice already made:

* atoms resolve to slots (``Ref`` with a slot index) or prebuilt scalar
  ``BV`` constants;
* runs of ≥2 adjacent scalar statements (``_RUN_FUSIBLE``) collapse into one
  ``IRun`` whose interior temporaries never touch the register file (the
  live-after sets come from ONE backward free-vars sweep per body);
* reduce/scan/histogram operators are recognised (``recognize_binop_lambda``
  / ``recognize_redomap_lambda``) and the chosen strategy — ufunc fast path,
  fused redomap, or generic fold — is recorded on the instruction;
* with tier-2 ``StaticInfo`` facts, ``Size`` folds to a constant, iota /
  replicate / histogram extents become compile-time ints (small iotas are
  prebuilt outright), and reduce lowering picks its variant by the known
  extent (``ext`` on the node; the emitters compile dead branches away).

Emitters consume the IR without re-deciding anything: ``exec/plan.py`` emits
one Python closure per instruction (the interpreter), ``exec/codegen.py``
renders the same IR to the source of a single Python function
(``backend="codegen"``).  Sharing the lowering is what makes the two
backends bitwise-identical by construction — they execute the same NumPy
calls in the same order, only dispatched differently.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.analysis import (
    StaticInfo,
    infer_static_shapes,
    recognize_binop_lambda,
    recognize_redomap_lambda,
)
from ..ir.ast import (
    Atom,
    AtomExp,
    BinOp,
    Body,
    Cast,
    Concat,
    Const,
    Exp,
    Fun,
    If,
    Index,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Size,
    Stm,
    UnOp,
    UpdAcc,
    Update,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from ..ir.schedule import SCHEDULABLE as _SCHEDULABLE
from ..ir.schedule import schedule_str as _schedule_str
from ..ir.traversal import free_vars_exp
from ..ir.types import np_dtype
from ..obs import tracing as _tracing
from ..util import ExecError
from .vector import BV, _ne_is_identity

__all__ = [
    "Ref",
    "IntRef",
    "RunOp",
    "PBody",
    "PlanIR",
    "lower_fun",
    "lower_specialized",
    "plan_schedules",
    "spec_signature",
    "check_spec_sig",
    "IRun",
    "IUpdate",
    "IIota",
    "IReplicate",
    "IScratch",
    "ISize",
    "IReverse",
    "IConcat",
    "IMap",
    "IReduce",
    "IScan",
    "IHist",
    "IScatter",
    "ILoop",
    "IWhile",
    "IIf",
    "IWithAcc",
    "IUpdAcc",
    "_RUN_FUSIBLE",
    "_IOTA_PREBUILD_MAX",
]


#: Statement expressions eligible for scalar-run fusion: pure, single-result,
#: independent of the engine's mask/batch state (they only read operands).
_RUN_FUSIBLE = (AtomExp, UnOp, BinOp, Select, Cast, Index, ZerosLike)

#: Largest statically known iota a specialised lowering prebuilds (beyond
#: it, holding the constant array per cached plan costs more memory than the
#: per-call ``np.arange`` costs time).
_IOTA_PREBUILD_MAX = 1 << 16


class Ref:
    """A resolved atom: a register slot (``slot is not None``) or a prebuilt
    scalar constant ``BV`` (shared — consumers never mutate scalar BVs)."""

    __slots__ = ("slot", "name", "bv")

    def __init__(self, slot=None, name=None, bv=None):
        self.slot = slot
        self.name = name
        self.bv = bv


class IntRef:
    """A lane-uniform integer extent: a compile-time ``const`` (literal or
    folded from the specialisation signature) or a ``ref`` validated for
    lane-uniformity per call."""

    __slots__ = ("const", "ref", "what")

    def __init__(self, const=None, ref=None, what=""):
        self.const = const
        self.ref = ref
        self.what = what


class RunOp:
    """One scalar op inside a fused run.  ``xs`` operands are run-local
    indices (``int`` — the value of a previous op in the same run) or
    ``Ref``s.  ``op`` names the scalar operator (unop/binop); ``dtype`` is
    the target of a cast."""

    __slots__ = ("kind", "op", "xs", "dtype")

    def __init__(self, kind, xs, op=None, dtype=None):
        self.kind = kind
        self.xs = xs
        self.op = op
        self.dtype = dtype


class PBody:
    """A lowered body: instruction records plus result refs."""

    __slots__ = ("instrs", "result")

    def __init__(self, instrs, result):
        self.instrs = instrs
        self.result = result


class _Instr:
    kind = "?"
    #: Source provenance: the ``ir.Stm``s this instruction executes, set by
    #: ``_Lowerer.lower_body`` on top-level instructions.  The profile
    #: emitter (``obs/profiler.py``) keys its per-instruction timings to
    #: these statements; everything else ignores them.
    prov: tuple = ()
    #: The active schedule of the lowered SOAC/loop statement, formatted
    #: (``ir.schedule.schedule_str``) — carried so execute/shard spans and
    #: the profiler report can say *how* a statement was scheduled.  Empty
    #: on non-schedulable instructions.
    schedule: str = ""


class IRun(_Instr):
    """A fused run of scalar statements.  ``exports`` lists the run-local
    values live after the run as ``(local_index, slot, name)``; interior
    temporaries stay run-local."""

    kind = "run"
    __slots__ = ("ops", "exports")

    def __init__(self, ops, exports):
        self.ops = ops
        self.exports = exports


class IUpdate(_Instr):
    kind = "update"
    __slots__ = ("arr", "idx", "val", "out")

    def __init__(self, arr, idx, val, out):
        self.arr, self.idx, self.val, self.out = arr, idx, val, out


class IIota(_Instr):
    kind = "iota"
    __slots__ = ("n", "dtype", "prebuilt", "out")

    def __init__(self, n, dtype, prebuilt, out):
        self.n, self.dtype, self.prebuilt, self.out = n, dtype, prebuilt, out


class IReplicate(_Instr):
    kind = "replicate"
    __slots__ = ("n", "v", "out")

    def __init__(self, n, v, out):
        self.n, self.v, self.out = n, v, out


class IScratch(_Instr):
    kind = "scratch"
    __slots__ = ("n", "x", "out")

    def __init__(self, n, x, out):
        self.n, self.x, self.out = n, x, out


class ISize(_Instr):
    kind = "size"
    __slots__ = ("arr", "dim", "const", "out")

    def __init__(self, arr, dim, const, out):
        self.arr, self.dim, self.const, self.out = arr, dim, const, out


class IReverse(_Instr):
    kind = "reverse"
    __slots__ = ("x", "out")

    def __init__(self, x, out):
        self.x, self.out = x, out


class IConcat(_Instr):
    kind = "concat"
    __slots__ = ("x", "y", "out")

    def __init__(self, x, y, out):
        self.x, self.y, self.out = x, y, out


class IMap(_Instr):
    """``chunk > 1`` realises a ``sequential(chunk)`` schedule directive:
    the emitters slice the (acc-free, top-level, unmasked) map into in-order
    chunks of that extent and concatenate the payloads — bitwise-identical
    to the bulk path because elementwise NumPy slices compose exactly."""

    kind = "map"
    __slots__ = ("arrs", "accs", "params", "body", "n_acc", "outs", "chunk")

    def __init__(self, arrs, accs, params, body, n_acc, outs, chunk=0):
        self.arrs, self.accs, self.params = arrs, accs, params
        self.body, self.n_acc, self.outs = body, n_acc, outs
        self.chunk = chunk


class IReduce(_Instr):
    """``strategy`` ∈ {"ufunc", "redomap", "generic"}.  For ufunc/redomap,
    ``op`` names the recognised operator, ``fold`` whether the neutral
    element must still be folded in, and ``ext`` the statically known leading
    extent (``None`` when dynamic).  Redomap carries the fused map part
    (``mparams``/``mbody``); generic carries the full lambda."""

    kind = "reduce"
    __slots__ = (
        "strategy", "arrs", "nes", "op", "fold", "ext",
        "mparams", "mbody", "params", "body", "outs",
    )

    def __init__(self, strategy, arrs, nes, outs, op=None, fold=False, ext=None,
                 mparams=None, mbody=None, params=None, body=None):
        self.strategy, self.arrs, self.nes, self.outs = strategy, arrs, nes, outs
        self.op, self.fold, self.ext = op, fold, ext
        self.mparams, self.mbody = mparams, mbody
        self.params, self.body = params, body


class IScan(IReduce):
    kind = "scan"


class IHist(_Instr):
    """Generalised histogram; same strategy taxonomy as ``IReduce`` (no
    extent specialisation — the bin count, not the input extent, dominates)."""

    kind = "hist"
    __slots__ = (
        "num_bins", "arrs", "nes", "strategy", "op",
        "mparams", "mbody", "params", "body", "outs",
    )

    def __init__(self, num_bins, arrs, nes, strategy, outs, op=None,
                 mparams=None, mbody=None, params=None, body=None):
        self.num_bins, self.arrs, self.nes = num_bins, arrs, nes
        self.strategy, self.outs, self.op = strategy, outs, op
        self.mparams, self.mbody = mparams, mbody
        self.params, self.body = params, body


class IScatter(_Instr):
    kind = "scatter"
    __slots__ = ("dest", "inds", "vals", "out")

    def __init__(self, dest, inds, vals, out):
        self.dest, self.inds, self.vals, self.out = dest, inds, vals, out


class ILoop(_Instr):
    kind = "loop"
    __slots__ = ("n", "inits", "ivar", "params", "body", "outs")

    def __init__(self, n, inits, ivar, params, body, outs):
        self.n, self.inits, self.ivar = n, inits, ivar
        self.params, self.body, self.outs = params, body, outs


class IWhile(_Instr):
    kind = "while"
    __slots__ = ("inits", "cparams", "cbody", "params", "body", "outs")

    def __init__(self, inits, cparams, cbody, params, body, outs):
        self.inits, self.cparams, self.cbody = inits, cparams, cbody
        self.params, self.body, self.outs = params, body, outs


class IIf(_Instr):
    kind = "if"
    __slots__ = ("cond", "then", "els", "outs")

    def __init__(self, cond, then, els, outs):
        self.cond, self.then, self.els, self.outs = cond, then, els, outs


class IWithAcc(_Instr):
    kind = "withacc"
    __slots__ = ("arrs", "params", "body", "n_acc", "outs")

    def __init__(self, arrs, params, body, n_acc, outs):
        self.arrs, self.params, self.body = arrs, params, body
        self.n_acc, self.outs = n_acc, outs


class IUpdAcc(_Instr):
    kind = "updacc"
    __slots__ = ("acc", "idx", "v", "out")

    def __init__(self, acc, idx, v, out):
        self.acc, self.idx, self.v, self.out = acc, idx, v, out


class PlanIR:
    """The lowered form of one ``Fun``: a flat slot space, parameter slots,
    and a ``PBody`` of instruction records.  ``fused`` counts statements
    collapsed into runs, ``folds`` the compile-time folds the specialised
    lowering performed (both surfaced via ``plan_cache_stats``)."""

    __slots__ = ("fun", "param_slots", "param_types", "body", "nslots",
                 "fused", "folds", "specialized")

    def __init__(self, fun, param_slots, param_types, body, nslots,
                 fused, folds, specialized):
        self.fun = fun
        self.param_slots = param_slots
        self.param_types = param_types
        self.body = body
        self.nslots = nslots
        self.fused = fused
        self.folds = folds
        self.specialized = specialized


def plan_schedules(ir: "PlanIR") -> str:
    """Comma-joined distinct active schedules of the plan's top-level
    SOAC/loop instructions — the ``schedule`` attribute on execute spans."""
    return ",".join(dict.fromkeys(
        ins.schedule for ins in ir.body.instrs if ins.schedule
    ))


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


class _Lowerer:
    """One-shot lowering of a ``Fun`` body to plan IR.

    All SSA names in a program are globally unique, so a single flat slot
    space serves every scope (exactly the flat-environment invariant the
    interpreters rely on).
    """

    def __init__(self, static: Optional[StaticInfo] = None) -> None:
        self.slots: Dict[str, int] = {}
        self.fused = 0
        self.static = static
        self.folds = 0

    # -- atoms ----------------------------------------------------------------

    def static_int(self, a: Atom) -> Optional[int]:
        """The compile-time value of a lane-uniform integer atom, if known."""
        if isinstance(a, Const):
            return int(a.value)
        if self.static is not None:
            v = self.static.int_of(a.name)
            if v is not None:
                self.folds += 1
                return int(v)
        return None

    def static_extent(self, arrs) -> Optional[int]:
        """The statically known leading extent of a SOAC's input arrays."""
        if self.static is None or not arrs:
            return None
        s = self.static.shape(arrs[0].name)
        if s is not None and len(s) >= 1:
            self.folds += 1
            return int(s[0])
        return None

    def slot(self, name: str) -> int:
        s = self.slots.get(name)
        if s is None:
            s = len(self.slots)
            self.slots[name] = s
        return s

    def ref(self, a: Atom) -> Ref:
        if isinstance(a, Var):
            return Ref(slot=self.slot(a.name), name=a.name)
        return Ref(bv=BV(np.asarray(np_dtype(a.type)(a.value)), 0))

    def refs(self, xs) -> Tuple[Ref, ...]:
        return tuple(self.ref(a) for a in xs)

    def int_ref(self, a: Atom, what: str) -> IntRef:
        n = self.static_int(a)
        if n is not None:
            return IntRef(const=n, what=what)
        return IntRef(ref=self.ref(a), what=what)

    def pslots(self, params) -> Tuple[Tuple[int, str], ...]:
        return tuple((self.slot(p.name), p.name) for p in params)

    def outs_of(self, stm: Stm, expected: int) -> Tuple[Tuple[int, str], ...]:
        if len(stm.pat) != expected:
            raise ExecError(
                f"statement binds {len(stm.pat)} vars, got {expected}"
            )
        return tuple((self.slot(v.name), v.name) for v in stm.pat)

    def out_of(self, stm: Stm) -> Tuple[int, str]:
        if len(stm.pat) != 1:
            raise ExecError("statement binds multiple vars, got 1 value")
        v = stm.pat[0]
        return (self.slot(v.name), v.name)

    # -- bodies ---------------------------------------------------------------

    def lower_body(self, body: Body) -> PBody:
        stms = body.stms
        n = len(stms)
        # Find the fusible runs first, then compute each run's live-after
        # set with ONE backward free-vars sweep over the body (walking the
        # whole tail per run would make lowering quadratic in body size).
        spans = []
        i = 0
        while i < n:
            if isinstance(stms[i].exp, _RUN_FUSIBLE) and len(stms[i].pat) == 1:
                j = i
                while (
                    j < n
                    and isinstance(stms[j].exp, _RUN_FUSIBLE)
                    and len(stms[j].pat) == 1
                ):
                    j += 1
                if j - i >= 2:
                    spans.append((i, j))
                    i = j
                    continue
            i += 1
        used_after_at = {}
        if spans:
            ends = {j for _, j in spans}
            live = {a.name for a in body.result if isinstance(a, Var)}
            if n in ends:
                used_after_at[n] = frozenset(live)
            for k in range(n - 1, -1, -1):
                live.update(free_vars_exp(stms[k].exp))
                if k in ends:
                    used_after_at[k] = frozenset(live)
        instrs: List[_Instr] = []
        span_at = {i: j for i, j in spans}
        i = 0
        while i < n:
            j = span_at.get(i)
            if j is not None:
                ins = self._lower_run(stms[i:j], used_after_at[j])
                ins.prov = tuple(stms[i:j])
                instrs.append(ins)
                self.fused += j - i
                i = j
                continue
            ins = self._lower_stm(stms[i])
            ins.prov = (stms[i],)
            e = stms[i].exp
            if isinstance(e, _SCHEDULABLE):
                ins.schedule = _schedule_str(e)
            instrs.append(ins)
            i += 1
        return PBody(tuple(instrs), self.refs(body.result))

    # -- fused scalar runs ----------------------------------------------------

    def _run_operand(self, a: Atom, local_of: Dict[str, int]):
        if isinstance(a, Var) and a.name in local_of:
            return local_of[a.name]
        return self.ref(a)

    def _lower_run_exp(self, e: Exp, local_of: Dict[str, int]) -> RunOp:
        rd = lambda a: self._run_operand(a, local_of)  # noqa: E731
        if isinstance(e, AtomExp):
            return RunOp("atom", (rd(e.x),))
        if isinstance(e, UnOp):
            return RunOp("unop", (rd(e.x),), op=e.op)
        if isinstance(e, BinOp):
            return RunOp("binop", (rd(e.x), rd(e.y)), op=e.op)
        if isinstance(e, Select):
            return RunOp("select", (rd(e.c), rd(e.t), rd(e.f)))
        if isinstance(e, Cast):
            return RunOp("cast", (rd(e.x),), dtype=np_dtype(e.to))
        if isinstance(e, Index):
            return RunOp("index", (rd(e.arr),) + tuple(rd(i) for i in e.idx))
        if isinstance(e, ZerosLike):
            return RunOp("zeroslike", (rd(e.x),))
        raise ExecError(f"plan run lower: unexpected {type(e).__name__}")

    def _lower_run(self, run: Sequence[Stm], used_after) -> IRun:
        local_of: Dict[str, int] = {}
        ops = []
        exports = []
        for idx, s in enumerate(run):
            ops.append(self._lower_run_exp(s.exp, local_of))
            name = s.pat[0].name
            local_of[name] = idx
            if name in used_after:
                exports.append((idx, self.slot(name), name))
        return IRun(tuple(ops), tuple(exports))

    # -- statements -----------------------------------------------------------

    def _lower_stm(self, stm: Stm) -> _Instr:
        e = stm.exp
        if isinstance(e, _RUN_FUSIBLE):
            # A standalone scalar statement is a fused run of length 1 with
            # one export (shared scalar handlers in the emitters).
            op = self._lower_run_exp(e, {})
            out = self.out_of(stm)
            return IRun((op,), ((0,) + out,))
        if isinstance(e, Update):
            return IUpdate(self.ref(e.arr), self.refs(e.idx), self.ref(e.val),
                           self.out_of(stm))
        if isinstance(e, Iota):
            dt = np_dtype(e.elem)
            if self.static is not None:
                n = self.static_int(e.n)
                if n is not None and 0 <= n <= _IOTA_PREBUILD_MAX:
                    # Specialised lowering: the array is a compile-time
                    # constant.  Emitters hand out a fresh copy per call
                    # (memcpy, no extent resolution or arange fill) — unlike
                    # the shared scalar Const BVs, an array could escape as
                    # a function result, and a caller mutating it must not
                    # corrupt the cached plan.
                    return IIota(IntRef(const=n, what="iota length"), dt,
                                 np.arange(n, dtype=dt), self.out_of(stm))
            return IIota(self.int_ref(e.n, "iota length"), dt, None,
                         self.out_of(stm))
        if isinstance(e, Replicate):
            return IReplicate(self.int_ref(e.n, "replicate count"),
                              self.ref(e.v), self.out_of(stm))
        if isinstance(e, ScratchLike):
            return IScratch(self.ref(e.n), self.ref(e.x), self.out_of(stm))
        if isinstance(e, Size):
            if self.static is not None:
                s = self.static.shape(e.arr.name)
                if s is not None and -len(s) <= e.dim < len(s):
                    # Specialised lowering: the extent is determined by the
                    # signature — no register read, no pshape() walk.
                    self.folds += 1
                    bv = BV(np.asarray(np.int64(s[e.dim])), 0)
                    return ISize(None, e.dim, bv, self.out_of(stm))
            return ISize(self.ref(e.arr), e.dim, None, self.out_of(stm))
        if isinstance(e, Reverse):
            return IReverse(self.ref(e.x), self.out_of(stm))
        if isinstance(e, Concat):
            return IConcat(self.ref(e.x), self.ref(e.y), self.out_of(stm))
        if isinstance(e, Map):
            return self._lower_map(e, stm)
        if isinstance(e, Reduce):
            return self._lower_reduce(e, stm)
        if isinstance(e, Scan):
            return self._lower_scan(e, stm)
        if isinstance(e, ReduceByIndex):
            return self._lower_hist(e, stm)
        if isinstance(e, Scatter):
            return IScatter(self.ref(e.dest), self.ref(e.inds),
                            self.ref(e.vals), self.out_of(stm))
        if isinstance(e, Loop):
            return ILoop(
                self.ref(e.n), self.refs(e.inits),
                (self.slot(e.ivar.name), e.ivar.name),
                self.pslots(e.params), self.lower_body(e.body),
                self.outs_of(stm, len(e.params)),
            )
        if isinstance(e, WhileLoop):
            return IWhile(
                self.refs(e.inits),
                self.pslots(e.cond.params), self.lower_body(e.cond.body),
                self.pslots(e.params), self.lower_body(e.body),
                self.outs_of(stm, len(e.params)),
            )
        if isinstance(e, If):
            if len(e.then.result) != len(e.els.result):
                raise ExecError("if: branch result arity mismatch")
            return IIf(self.ref(e.cond), self.lower_body(e.then),
                       self.lower_body(e.els),
                       self.outs_of(stm, len(e.then.result)))
        if isinstance(e, WithAcc):
            return IWithAcc(
                self.refs(e.arrs), self.pslots(e.lam.params),
                self.lower_body(e.lam.body), len(e.arrs),
                self.outs_of(stm, len(e.lam.body.result)),
            )
        if isinstance(e, UpdAcc):
            return IUpdAcc(self.ref(e.acc), self.refs(e.idx), self.ref(e.v),
                           self.out_of(stm))
        raise ExecError(f"plan lower: unknown expression {type(e).__name__}")

    # -- SOACs ----------------------------------------------------------------

    def _lower_map(self, e: Map, stm: Stm) -> IMap:
        chunk = 0
        if not e.accs:
            from ..ir.schedule import Sequential

            chunk = next(
                (d.chunk for d in e.schedule
                 if isinstance(d, Sequential) and d.chunk > 1), 0,
            )
        return IMap(
            self.refs(e.arrs), self.refs(e.accs), self.pslots(e.lam.params),
            self.lower_body(e.lam.body), len(e.accs),
            self.outs_of(stm, len(e.lam.body.result)),
            chunk=chunk,
        )

    def _lower_map_part(self, mlam: Lambda):
        return self.pslots(mlam.params), self.lower_body(mlam.body)

    def _lower_reduce(self, e: Reduce, stm: Stm) -> IReduce:
        arrs = self.refs(e.arrs)
        nes = self.refs(e.nes)
        outs = self.outs_of(stm, len(e.nes))
        op = recognize_binop_lambda(e.lam) if len(e.nes) == 1 else None
        if op is not None:
            return IReduce(
                "ufunc", arrs, nes, outs, op=op,
                fold=not _ne_is_identity(op, e.nes[0]),
                ext=self.static_extent(e.arrs),
            )
        rm = recognize_redomap_lambda(e.lam) if len(e.nes) == 1 else None
        if rm is not None:
            # Fused (redomap-shaped) operator: bulk-map the element function,
            # then reduce with the ufunc — fusion keeps the fast path.
            mop, mlam = rm
            ext = self.static_extent(e.arrs)
            mparams, mbody = self._lower_map_part(mlam)
            return IReduce(
                "redomap", arrs, nes, outs, op=mop,
                fold=not _ne_is_identity(mop, e.nes[0]), ext=ext,
                mparams=mparams, mbody=mbody,
            )
        return IReduce(
            "generic", arrs, nes, outs,
            params=self.pslots(e.lam.params), body=self.lower_body(e.lam.body),
        )

    def _lower_scan(self, e: Scan, stm: Stm) -> IScan:
        arrs = self.refs(e.arrs)
        nes = self.refs(e.nes)
        outs = self.outs_of(stm, len(e.nes))
        op = recognize_binop_lambda(e.lam) if len(e.nes) == 1 else None
        if op is not None:
            return IScan(
                "ufunc", arrs, nes, outs, op=op,
                fold=not _ne_is_identity(op, e.nes[0]),
            )
        rm = recognize_redomap_lambda(e.lam) if len(e.nes) == 1 else None
        if rm is not None:
            mop, mlam = rm
            ext = self.static_extent(e.arrs)
            mparams, mbody = self._lower_map_part(mlam)
            return IScan(
                "redomap", arrs, nes, outs, op=mop,
                fold=not _ne_is_identity(mop, e.nes[0]), ext=ext,
                mparams=mparams, mbody=mbody,
            )
        return IScan(
            "generic", arrs, nes, outs,
            params=self.pslots(e.lam.params), body=self.lower_body(e.lam.body),
        )

    def _lower_hist(self, e: ReduceByIndex, stm: Stm) -> IHist:
        num_bins = self.int_ref(e.num_bins, "histogram size")
        arrs = self.refs((e.inds,) + e.vals)
        nes = self.refs(e.nes)
        outs = self.outs_of(stm, len(e.nes))
        op = recognize_binop_lambda(e.lam) if len(e.nes) == 1 else None
        if op is not None:
            return IHist(num_bins, arrs, nes, "ufunc", outs, op=op)
        rm = recognize_redomap_lambda(e.lam) if len(e.nes) == 1 else None
        if rm is not None:
            mop, mlam = rm
            mparams, mbody = self._lower_map_part(mlam)
            return IHist(num_bins, arrs, nes, "redomap", outs, op=mop,
                         mparams=mparams, mbody=mbody)
        return IHist(
            num_bins, arrs, nes, "generic", outs,
            params=self.pslots(e.lam.params), body=self.lower_body(e.lam.body),
        )


def lower_fun(fun: Fun, static: Optional[StaticInfo] = None) -> PlanIR:
    """Lower ``fun`` to plan IR — shape-generic with ``static=None``, else
    specialised to the signature's static facts (bitwise-equal results)."""
    with _tracing.span("lower", cat="compile", fun=fun.name, specialized=static is not None):
        lo = _Lowerer(static)
        param_slots = tuple(lo.slot(p.name) for p in fun.params)
        param_types = tuple(p.type for p in fun.params)
        body = lo.lower_body(fun.body)
        ir = PlanIR(fun, param_slots, param_types, body, len(lo.slots),
                    lo.fused, lo.folds, static is not None)
    # Layer-2 verification happens here, once per lowering — cached plans
    # (exec/plan.py) reuse the verified PlanIR and never re-check.
    from .verify_plan import maybe_verify_plan_ir

    return maybe_verify_plan_ir(ir)


def spec_signature(args: Sequence[object], batched=None):
    """The ``(payload shapes, batched flags)`` pair a specialised lowering is
    valid for (the batch axis of flagged args is stripped — static facts
    describe payload shapes)."""
    flags = tuple(bool(f) for f in batched) if batched is not None else (False,) * len(args)
    shapes = []
    for a, f in zip(args, flags):
        s = np.asarray(a).shape
        shapes.append(tuple(s[1:]) if f else tuple(s))
    return tuple(shapes), flags


def lower_specialized(fun: Fun, args: Sequence[object], batched=None):
    """Lower ``fun`` specialised to ``args``' concrete shapes; returns
    ``(PlanIR, spec_sig)``."""
    shapes, flags = spec_signature(args, batched)
    return (
        lower_fun(fun, static=infer_static_shapes(fun, list(shapes))),
        (shapes, flags),
    )


def check_spec_sig(fun_name: str, spec_sig, args: Sequence[object], batched) -> None:
    """Reject arguments outside a specialised plan's signature loudly —
    constants folded for one signature are wrong for every other."""
    if spec_sig is None:
        return
    exp_shapes, exp_flags = spec_sig
    flags = tuple(batched) if batched is not None else (False,) * len(args)
    if flags != exp_flags:
        raise ExecError(
            f"{fun_name}: plan specialised for batched flags "
            f"{exp_flags}, called with {flags}"
        )
    for i, (a, f, exp) in enumerate(zip(args, flags, exp_shapes)):
        s = np.asarray(a).shape
        if f:
            s = s[1:]
        if tuple(s) != exp:
            raise ExecError(
                f"{fun_name}: plan specialised for argument {i} "
                f"payload shape {exp}, got {tuple(s)}"
            )
