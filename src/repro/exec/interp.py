"""Reference interpreter.

A direct, recursive evaluator over the IR: Python loops for SOACs, copy-on-
write for ``Update``/``Scatter``, mutable ``AccVal`` buffers for accumulators.
It is the semantics oracle for every other component (the vectorised
interpreter and both AD transforms are tested against it), and it drives the
cost model via ``CostRecorder`` hooks.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.analysis import recognize_binop_lambda
from ..ir.ast import (
    AtomExp,
    Atom,
    BinOp,
    Body,
    Cast,
    Concat,
    Const,
    Exp,
    Fun,
    If,
    Index,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Size,
    Stm,
    UnOp,
    UpdAcc,
    Update,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from ..ir.types import AccType, np_dtype, rank_of
from ..util import ExecError
from .cost import CostRecorder, NullRecorder
from . import values as _values
from .prims import apply_binop, apply_unop, cast_to
from .values import AccVal, coerce_arg, scalar_value, zeros_of

__all__ = ["RefInterp", "run_fun"]

Env = Dict[str, object]


def _size(v) -> int:
    return int(np.asarray(v).size)


class RefInterp:
    """Reference evaluator; one instance per call (not reentrant)."""

    def __init__(self, recorder: Optional[CostRecorder] = None) -> None:
        self.rec = recorder if recorder is not None else NullRecorder()

    # -- entry point ---------------------------------------------------------

    def run(self, fun: Fun, args: Sequence[object]) -> Tuple[object, ...]:
        if len(args) != len(fun.params):
            raise ExecError(
                f"{fun.name}: expected {len(fun.params)} arguments, got {len(args)}"
            )
        env: Env = {}
        for p, a in zip(fun.params, args):
            env[p.name] = coerce_arg(a, p.type)
        with np.errstate(all="ignore"):
            return self.eval_body(fun.body, env)

    # -- core ------------------------------------------------------------------

    def atom(self, a: Atom, env: Env):
        if isinstance(a, Var):
            try:
                return env[a.name]
            except KeyError:
                raise ExecError(f"unbound variable {a.name}") from None
        return np_dtype(a.type)(a.value)

    def eval_body(self, body: Body, env: Env) -> Tuple[object, ...]:
        for stm in body.stms:
            self.eval_stm(stm, env)
        return tuple(self.atom(a, env) for a in body.result)

    def eval_stm(self, stm: Stm, env: Env) -> None:
        vals = self.eval_exp(stm.exp, env)
        if len(vals) != len(stm.pat):
            raise ExecError(
                f"statement binds {len(stm.pat)} vars, got {len(vals)} values"
            )
        for v, val in zip(stm.pat, vals):
            env[v.name] = val

    def apply_lambda(self, lam: Lambda, args: Sequence[object], env: Env):
        # Lexical closure: lambda bodies see the enclosing environment.  All
        # generated names are unique, so a flat environment is safe.
        for p, a in zip(lam.params, args):
            env[p.name] = a
        return self.eval_body(lam.body, env)

    # -- expressions -----------------------------------------------------------

    def eval_exp(self, e: Exp, env: Env) -> Tuple[object, ...]:
        rec = self.rec

        if isinstance(e, AtomExp):
            return (self.atom(e.x, env),)

        if isinstance(e, UnOp):
            x = self.atom(e.x, env)
            n = _size(x)
            rec.op(n)
            if n > 1:
                rec.mem(reads=n, writes=n)
            return (apply_unop(e.op, x),)

        if isinstance(e, BinOp):
            x = self.atom(e.x, env)
            y = self.atom(e.y, env)
            n = max(_size(x), _size(y))
            rec.op(n)
            if n > 1:
                rec.mem(reads=_size(x) + _size(y), writes=n)
            return (apply_binop(e.op, x, y),)

        if isinstance(e, Select):
            c = self.atom(e.c, env)
            t = self.atom(e.t, env)
            f = self.atom(e.f, env)
            n = max(_size(c), _size(t), _size(f))
            rec.op(n)
            return (np.where(c, t, f) if n > 1 or np.asarray(c).ndim else (t if c else f),)

        if isinstance(e, Cast):
            x = self.atom(e.x, env)
            rec.op(_size(x))
            v = cast_to(x, np_dtype(e.to))
            return (v if v.ndim else v[()],)

        if isinstance(e, Index):
            arr = self.atom(e.arr, env)
            idx = tuple(int(scalar_value(self.atom(i, env))) for i in e.idx)
            try:
                v = arr[idx]
            except IndexError:
                raise ExecError(f"index {idx} out of bounds for shape {arr.shape}")
            rec.mem(reads=_size(v))
            return (v,)

        if isinstance(e, Update):
            arr = self.atom(e.arr, env)
            idx = tuple(int(scalar_value(self.atom(i, env))) for i in e.idx)
            val = self.atom(e.val, env)
            out = np.array(arr)  # copy-on-write functional semantics
            out[idx] = val
            rec.mem(writes=_size(val))
            return (out,)

        if isinstance(e, Iota):
            n = int(scalar_value(self.atom(e.n, env)))
            rec.mem(writes=n)
            return (np.arange(n, dtype=np_dtype(e.elem)),)

        if isinstance(e, Replicate):
            n = int(scalar_value(self.atom(e.n, env)))
            v = np.asarray(self.atom(e.v, env))
            out = np.broadcast_to(v, (n,) + v.shape).copy()
            rec.mem(writes=out.size)
            return (out,)

        if isinstance(e, ZerosLike):
            x = self.atom(e.x, env)
            return (zeros_of(x),)

        if isinstance(e, ScratchLike):
            n = int(scalar_value(self.atom(e.n, env)))
            x = np.asarray(self.atom(e.x, env))
            out = np.zeros((n,) + x.shape, dtype=x.dtype)
            rec.alloc(out.size)
            return (out,)

        if isinstance(e, Size):
            arr = self.atom(e.arr, env)
            if isinstance(arr, AccVal):
                return (np.int64(arr.buf.shape[e.dim]),)
            return (np.int64(np.asarray(arr).shape[e.dim]),)

        if isinstance(e, Reverse):
            arr = self.atom(e.x, env)
            rec.mem(reads=_size(arr), writes=_size(arr))
            return (np.asarray(arr)[::-1].copy(),)

        if isinstance(e, Concat):
            x = np.asarray(self.atom(e.x, env))
            y = np.asarray(self.atom(e.y, env))
            rec.mem(reads=x.size + y.size, writes=x.size + y.size)
            return (np.concatenate([x, y], axis=0),)

        if isinstance(e, Map):
            return self._eval_map(e, env)

        if isinstance(e, Reduce):
            return self._eval_reduce(e, env)

        if isinstance(e, Scan):
            return self._eval_scan(e, env)

        if isinstance(e, ReduceByIndex):
            return self._eval_hist(e, env)

        if isinstance(e, Scatter):
            dest = np.array(self.atom(e.dest, env))  # functional copy
            inds = np.asarray(self.atom(e.inds, env))
            vals = np.asarray(self.atom(e.vals, env))
            m = len(inds)
            ok = (inds >= 0) & (inds < dest.shape[0])
            dest[inds[ok]] = vals[ok]
            rec.mem(reads=int(vals[ok].size), writes=int(vals[ok].size))
            return (dest,)

        if isinstance(e, Loop):
            return self._eval_loop(e, env)

        if isinstance(e, WhileLoop):
            return self._eval_while(e, env)

        if isinstance(e, If):
            c = bool(scalar_value(self.atom(e.cond, env)))
            rec.op(1)
            return self.eval_body(e.then if c else e.els, env)

        if isinstance(e, WithAcc):
            arrs = [np.array(self.atom(a, env)) for a in e.arrs]  # one copy each
            accs = [AccVal(a) for a in arrs]
            res = self.apply_lambda(e.lam, accs, env)
            out: List[object] = []
            for i, a in enumerate(res[: len(accs)]):
                if not isinstance(a, AccVal):
                    raise ExecError("withacc: lambda must return its accumulators")
                out.append(a.buf)
            out.extend(res[len(accs):])
            return tuple(out)

        if isinstance(e, UpdAcc):
            acc = self.atom(e.acc, env)
            if not isinstance(acc, AccVal):
                raise ExecError("upd: operand is not an accumulator")
            idx = tuple(int(scalar_value(self.atom(i, env))) for i in e.idx)
            v = self.atom(e.v, env)
            rec.op(_size(v))
            rec.mem(reads=_size(v), writes=_size(v))  # atomic RMW
            if idx:
                acc.buf[idx] += v
            else:
                acc.buf += v
            return (acc,)

        raise ExecError(f"eval_exp: unknown expression {type(e).__name__}")

    # -- SOACs -------------------------------------------------------------------

    def _map_len(self, arrs: Sequence[np.ndarray]) -> int:
        n = len(arrs[0])
        for a in arrs[1:]:
            if len(a) != n:
                raise ExecError(f"map: array length mismatch {n} vs {len(a)}")
        return n

    def _eval_map(self, e: Map, env: Env) -> Tuple[object, ...]:
        arrs = [np.asarray(self.atom(a, env)) for a in e.arrs]
        accs = [self.atom(a, env) for a in e.accs]
        n = self._map_len(arrs)
        rec = self.rec
        rec.mem(reads=sum(a.size for a in arrs))
        rec.push("par", n)
        rows: List[Tuple[object, ...]] = []
        for i in range(n):
            rec.iter_begin()
            res = self.apply_lambda(e.lam, [a[i] for a in arrs] + accs, env)
            accs = list(res[: len(accs)])
            rows.append(res[len(e.accs):])
            rec.iter_end()
        rec.pop()
        out: List[object] = list(accs)
        k = len(e.lam.body.result) - len(e.accs)
        for j in range(k):
            if n:
                col = np.stack([np.asarray(r[j]) for r in rows])
            else:
                rt = e.lam.body.result[len(e.accs) + j].type
                col = np.zeros((0,) * (rank_of(rt) + 1), dtype=np_dtype(rt))
            rec.mem(writes=col.size)
            out.append(col)
        return tuple(out)

    def _eval_reduce(self, e: Reduce, env: Env) -> Tuple[object, ...]:
        arrs = [np.asarray(self.atom(a, env)) for a in e.arrs]
        n = self._map_len(arrs)
        rec = self.rec
        rec.mem(reads=sum(a.size for a in arrs))
        acc = [self.atom(ne, env) for ne in e.nes]
        rec.push("red", n)
        for i in range(n):
            rec.iter_begin()
            acc = list(self.apply_lambda(e.lam, acc + [a[i] for a in arrs], env))
            rec.iter_end()
        rec.pop()
        return tuple(acc)

    def _eval_scan(self, e: Scan, env: Env) -> Tuple[object, ...]:
        arrs = [np.asarray(self.atom(a, env)) for a in e.arrs]
        n = self._map_len(arrs)
        rec = self.rec
        rec.mem(reads=sum(a.size for a in arrs))
        acc = [self.atom(ne, env) for ne in e.nes]
        outs: List[List[object]] = [[] for _ in e.nes]
        rec.push("red", n)  # work-depth model: O(n) work, O(log n) depth
        for i in range(n):
            rec.iter_begin()
            acc = list(self.apply_lambda(e.lam, acc + [a[i] for a in arrs], env))
            for j, v in enumerate(acc):
                outs[j].append(v)
            rec.iter_end()
        rec.pop()
        res = []
        for j, col in enumerate(outs):
            if n:
                res.append(np.stack([np.asarray(v) for v in col]))
            else:
                rt = e.nes[j].type
                res.append(np.zeros((0,) * (rank_of(rt) + 1), dtype=np_dtype(rt)))
        rec.mem(writes=sum(int(np.asarray(r).size) for r in res))
        return tuple(res)

    def _eval_hist(self, e: ReduceByIndex, env: Env) -> Tuple[object, ...]:
        m = int(scalar_value(self.atom(e.num_bins, env)))
        inds = np.asarray(self.atom(e.inds, env))
        vals = [np.asarray(self.atom(v, env)) for v in e.vals]
        n = self._map_len([inds] + vals)
        rec = self.rec
        rec.mem(reads=inds.size + sum(v.size for v in vals))
        nes = [self.atom(ne, env) for ne in e.nes]
        hists = [
            np.broadcast_to(np.asarray(ne), (m,) + np.asarray(ne).shape).copy()
            for ne in nes
        ]
        rec.push("par", n)
        for i in range(n):
            rec.iter_begin()
            b = int(inds[i])
            if 0 <= b < m:
                cur = [h[b] for h in hists]
                new = self.apply_lambda(e.lam, cur + [v[i] for v in vals], env)
                for h, v in zip(hists, new):
                    h[b] = v
                rec.mem(reads=len(hists), writes=len(hists))
            rec.iter_end()
        rec.pop()
        return tuple(hists)

    # -- loops -------------------------------------------------------------------

    def _eval_loop(self, e: Loop, env: Env) -> Tuple[object, ...]:
        n = int(scalar_value(self.atom(e.n, env)))
        state = [self.atom(i, env) for i in e.inits]
        rec = self.rec
        rec.push("seq")
        ity = np_dtype(e.ivar.type)
        for i in range(n):
            mark = rec.alloc_mark()
            env[e.ivar.name] = ity(i)
            for p, v in zip(e.params, state):
                env[p.name] = v
            state = list(self.eval_body(e.body, env))
            rec.alloc_release(mark)
        rec.pop()
        return tuple(state)

    def _eval_while(self, e: WhileLoop, env: Env) -> Tuple[object, ...]:
        state = [self.atom(i, env) for i in e.inits]
        rec = self.rec
        rec.push("seq")
        limit = _values.WHILE_FUEL
        fuel = limit
        while True:
            for p, v in zip(e.cond.params, state):
                env[p.name] = v
            (c,) = self.eval_body(e.cond.body, env)
            if not bool(scalar_value(c)):
                break
            for p, v in zip(e.params, state):
                env[p.name] = v
            state = list(self.eval_body(e.body, env))
            fuel -= 1
            if fuel <= 0:
                raise ExecError(
                    f"while loop exceeded iteration fuel ({limit} iterations)"
                )
        rec.pop()
        return tuple(state)


def run_fun(
    fun: Fun, args: Sequence[object], recorder: Optional[CostRecorder] = None
) -> Tuple[object, ...]:
    """Convenience wrapper: evaluate ``fun`` on ``args`` with the reference
    interpreter."""
    return RefInterp(recorder).run(fun, args)
