"""Executors: reference interpreter, vectorised SIMT simulator, plan
compiler (closure-compiled, cached), and the cost model."""
from .cost import Cost, CostRecorder  # noqa: F401
from .interp import RefInterp, run_fun  # noqa: F401
from .plan import (  # noqa: F401
    Plan,
    clear_plan_cache,
    compile_plan,
    plan_cache_stats,
    plan_for,
    run_fun_plan,
    run_fun_plan_batched,
)
from .values import AccVal, coerce_arg, zeros_of  # noqa: F401
from .vector import VecInterp, run_fun_vec, run_fun_vec_batched  # noqa: F401
