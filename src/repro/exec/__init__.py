"""Executors: reference interpreter, vectorised SIMT simulator, the plan
family (shared lowering in ``lower``, closure emitter in ``plan``, source
codegen emitter in ``codegen``), the sharded parallel executor, and the
cost model — all resolvable by name through the backend registry."""
from .codegen import (  # noqa: F401
    CodegenPlan,
    compile_codegen,
    run_fun_codegen,
    run_fun_codegen_batched,
)
from .cost import Cost, CostRecorder  # noqa: F401
from .interp import RefInterp, run_fun  # noqa: F401
from .lower import PlanIR, lower_fun, lower_specialized  # noqa: F401
from .plan import (  # noqa: F401
    Plan,
    clear_plan_cache,
    compile_plan,
    plan_cache_stats,
    plan_for,
    run_fun_plan,
    run_fun_plan_batched,
    specialize_enabled,
    specialized_plan,
)
from .registry import (  # noqa: F401
    Backend,
    available_backends,
    batched_backends,
    default_backend,
    get_backend,
    register_backend,
    unregister_backend,
)
from .shard import (  # noqa: F401
    reset_shard_stats,
    run_fun_shard,
    run_fun_shard_batched,
    shard_stats,
    shutdown_shard_pool,
)
from .values import AccVal, coerce_arg, zeros_of  # noqa: F401
from .vector import VecInterp, run_fun_vec, run_fun_vec_batched  # noqa: F401
