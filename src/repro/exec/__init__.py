"""Executors: reference interpreter, vectorised SIMT simulator, cost model."""
from .cost import Cost, CostRecorder  # noqa: F401
from .interp import RefInterp, run_fun  # noqa: F401
from .values import AccVal, coerce_arg, zeros_of  # noqa: F401
