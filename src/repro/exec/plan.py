"""Plan compiler — closure-compiled bulk-parallel execution.

The vectorised interpreter (``exec/vector.py``) already executes SOACs as
bulk NumPy ops, but it re-walks the IR on *every* call: each statement costs
an ``isinstance`` dispatch chain, dict-based environment lookups, and atom
re-resolution.  For the paper's workloads — where a differentiated program is
evaluated thousands of times on same-shaped inputs — that per-call AST
interpretation is pure overhead.

This module lowers an optimised ``Fun`` *once* into a **plan**: a flat
sequence of Python closures, one per statement, operating on a slot-indexed
register file.  All compile-time-decidable work happens at lowering time:

* atoms resolve to register slots (variables) or prebuilt batched constants;
* operator tables (``apply_unop``/``apply_binop``), cast dtypes, and the
  specialisable reduce/scan/histogram operators (``recognize_binop_lambda``,
  plus the fusion engine's redomap shapes via
  ``recognize_redomap_lambda`` — fused reductions bulk-map their element
  function and finish with the same ufunc fast path) are resolved
  statically;
* lambda bodies of SOACs and control flow are recursively compiled, so
  nested scopes execute with zero dispatch as well;
* runs of ≥2 adjacent scalar statements collapse into one fused closure
  whose intermediates stay in closure-local storage — one dispatch and no
  register-file round-trips per run interior (counted in
  ``plan_cache_stats()["fused_stms"]``).

Runtime semantics are *identical* to the vectorised interpreter — plans reuse
its ``BV`` batched-value representation, masking discipline, and helper
machinery — so SIMT-style divergence, accumulators, and lane-varying loops
all behave the same (the test suite runs every program on ``ref``, ``vec``
and ``plan`` and asserts agreement).

Caching — two tiers
-------------------

``plan_for(fun, args, batched=..., backend=...)`` memoises plans in a
module-level, lock-guarded cache with two tiers:

* **tier 1 (generic)** — keyed by ``(id(fun), backend, rank/dtype
  signature, batched flags)``.  Concrete extents are dropped from the key:
  plans are shape-generic, so one lowering serves a whole problem-size
  sweep (GMM D0→D6, BA camera counts, shard chunk extents) instead of
  re-lowering per shape and churning the LRU.  The backend dimension
  separates entries lowered for the plan backend proper from those the
  shard executor lowers for its chunk functions.
* **tier 2 (specialised, ``REPRO_PLAN_SPECIALIZE``, default on)** — after a
  concrete ``(shape, dtype)`` signature scores enough tier-1 hits that the
  predicted specialisation savings amortise the estimated re-lowering cost
  (``ir.cost_model.promotion_threshold``; signatures admitting no folds are
  never promoted; ``REPRO_PLAN_SPECIALIZE_AFTER`` overrides with a bare
  hit-count threshold), the plan is
  re-lowered with the signature's static facts folded in
  (``ir.analysis.infer_static_shapes``): ``Size`` expressions become
  prebuilt constants, iota/replicate/histogram extents become compile-time
  ints (small iotas prebuilt outright), and reduce/scan lowering picks its
  strategy by the known extent.  Specialised and generic plans agree
  bitwise — promotion is purely a perf move.

Keying by object identity is sound because the cache holds a strong
reference to each keyed ``Fun`` (entries are immutable; ids cannot be
recycled while their entries live).  Repeat calls on same-shaped arguments
skip tracing, optimisation, and lowering entirely; ``PLAN_STATS`` counts
hits/misses/specialized-hits/promotions/evictions and fused-statement/fold
totals so callers can assert cache behaviour.  Each tier is an LRU bounded
by ``REPRO_PLAN_CACHE_SIZE`` entries (default 512, ``0`` unbounded);
``clear_plan_cache`` drops everything eagerly (plans are derived purely
from immutable ``Fun`` values, so entries never go stale).  All cache and
counter state is mutated under one re-entrant lock — shard thread mode
resolves plans from pool workers concurrently.

Batched seeds
-------------

``Plan.run_batched(args, batched, batch_size)`` evaluates the plan with the
flagged arguments carrying one extra leading batch axis — the batched
multi-seed driver used by ``jacobian``: all n/m basis vectors evaluate in a
single pass, stacked on the leading axis, instead of n/m separate runs.
"""
from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.analysis import (
    StaticInfo,
    infer_static_shapes,
    recognize_binop_lambda,
    recognize_redomap_lambda,
)
from ..ir.ast import (
    AtomExp,
    Atom,
    BinOp,
    Body,
    Cast,
    Concat,
    Const,
    Exp,
    Fun,
    If,
    Index,
    Iota,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Size,
    Stm,
    UnOp,
    UpdAcc,
    Update,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from ..ir.traversal import free_vars_exp
from ..ir.types import np_dtype
from ..util import BoundedLRU, ExecError, env_capacity
from . import values as _values
from .prims import apply_binop, apply_unop, cast_to
from .values import coerce_arg
from .vector import (
    _UFUNC,
    AccBV,
    BV,
    _align,
    _batch_args,
    _combine_mask,
    _elem,
    _expand,
    _gather,
    _grids,
    _mask_where,
    _ne_is_identity,
    _neutral_of,
    _uniform_int,
    _where,
)

__all__ = [
    "Plan",
    "compile_plan",
    "plan_for",
    "specialized_plan",
    "specialize_enabled",
    "run_fun_plan",
    "run_fun_plan_batched",
    "PLAN_STATS",
    "plan_cache_stats",
    "clear_plan_cache",
]


# ---------------------------------------------------------------------------
# Runtime state
# ---------------------------------------------------------------------------


class _Engine:
    """Mutable per-call state: register file, batch stack, predication mask."""

    __slots__ = ("regs", "bstack", "mask")

    def __init__(self, nslots: int) -> None:
        self.regs: List[object] = [None] * nslots
        self.bstack: List[int] = []
        self.mask: Optional[BV] = None


def _run_body(eng: _Engine, code) -> Tuple[object, ...]:
    instrs, res = code
    for ins in instrs:
        ins(eng)
    regs = eng.regs
    return tuple(r(regs) for r in res)


# The masking/elementwise/gather/SOAC-entry primitives (_combine_mask,
# _mask_where, _elem, _where, _gather, _uniform_int, _batch_args) are imported
# from exec/vector.py — one shared copy is what guarantees the two backends
# cannot drift semantically.


def _map_args_rt(eng: _Engine, readers) -> Tuple[List[BV], int]:
    regs = eng.regs
    return _batch_args(eng, [rd(regs) for rd in readers])


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------


#: Statement expressions eligible for scalar-run fusion: pure, single-result,
#: independent of the engine's mask/batch state (they only read operands).
_RUN_FUSIBLE = (AtomExp, UnOp, BinOp, Select, Cast, Index, ZerosLike)

#: Largest statically known iota a specialised plan prebuilds at lowering
#: time (beyond it, holding the constant array per cached plan costs more
#: memory than the per-call ``np.arange`` costs time).
_IOTA_PREBUILD_MAX = 1 << 16


class _PlanCompiler:
    """One-shot lowering of a ``Fun`` body to instruction closures.

    All SSA names in a program are globally unique, so a single flat slot
    space serves every scope (exactly the flat-environment invariant the
    interpreters rely on).

    Runs of ≥2 adjacent scalar statements (``_RUN_FUSIBLE``) collapse into
    one fused closure: intra-run temporaries live in a closure-local list
    and only values consumed outside the run are written back to the
    register file — fewer instruction dispatches and register round-trips
    on the scalar-heavy bodies AD emits.  ``self.fused`` counts statements
    so collapsed (surfaced via ``plan_cache_stats``).

    ``static`` (tier-2 specialisation) carries facts inferred from one
    concrete argument signature (``ir.analysis.infer_static_shapes``): when
    present, ``Size`` expressions fold to prebuilt constants, iota /
    replicate / histogram extents become compile-time ints (small iotas are
    prebuilt outright), and the reduce fast path is picked by the statically
    known extent.  ``self.folds`` counts the folds performed (surfaced as
    ``plan_cache_stats()["spec_folds"]``).  A plan lowered with
    ``static=None`` is fully shape-generic — bitwise-identical results are
    the invariant between the two, asserted by the cache test suite.
    """

    def __init__(self, static: Optional[StaticInfo] = None) -> None:
        self.slots: Dict[str, int] = {}
        self.fused = 0
        self.static = static
        self.folds = 0

    def static_int(self, a: Atom) -> Optional[int]:
        """The compile-time value of a lane-uniform integer atom, if known."""
        if isinstance(a, Const):
            return int(a.value)
        if self.static is not None:
            v = self.static.int_of(a.name)
            if v is not None:
                self.folds += 1
                return int(v)
        return None

    def static_extent(self, arrs) -> Optional[int]:
        """The statically known leading extent of a SOAC's input arrays."""
        if self.static is None or not arrs:
            return None
        s = self.static.shape(arrs[0].name)
        if s is not None and len(s) >= 1:
            self.folds += 1
            return int(s[0])
        return None

    def slot(self, name: str) -> int:
        s = self.slots.get(name)
        if s is None:
            s = len(self.slots)
            self.slots[name] = s
        return s

    def reader(self, a: Atom) -> Callable:
        """A ``regs -> BV`` accessor, resolved at compile time."""
        if isinstance(a, Var):
            i = self.slot(a.name)
            name = a.name

            def rd(regs, _i=i, _n=name):
                v = regs[_i]
                if v is None:
                    raise ExecError(f"unbound variable {_n}")
                return v

            return rd
        bv = BV(np.asarray(np_dtype(a.type)(a.value)), 0)
        return lambda regs, _bv=bv: _bv

    def int_reader(self, a: Atom, what: str) -> Callable:
        """Accessor for a lane-uniform integer (iota/replicate/hist extents).

        Constants — literal or statically inferred from the specialisation
        signature — resolve at compile time; everything else reads the
        register file and validates lane-uniformity per call.
        """
        n = self.static_int(a)
        if n is not None:
            return lambda eng, _n=n: _n
        rd = self.reader(a)
        return lambda eng, _rd=rd, _w=what: _uniform_int(_rd(eng.regs), _w)

    # -- bodies ---------------------------------------------------------------

    def compile_body(self, body: Body):
        stms = body.stms
        n = len(stms)
        # Find the fusible runs first, then compute each run's live-after
        # set with ONE backward free-vars sweep over the body (walking the
        # whole tail per run would make lowering quadratic in body size).
        spans = []
        i = 0
        while i < n:
            if isinstance(stms[i].exp, _RUN_FUSIBLE) and len(stms[i].pat) == 1:
                j = i
                while (
                    j < n
                    and isinstance(stms[j].exp, _RUN_FUSIBLE)
                    and len(stms[j].pat) == 1
                ):
                    j += 1
                if j - i >= 2:
                    spans.append((i, j))
                    i = j
                    continue
            i += 1
        used_after_at = {}
        if spans:
            ends = {j for _, j in spans}
            live = {a.name for a in body.result if isinstance(a, Var)}
            if n in ends:
                used_after_at[n] = frozenset(live)
            for k in range(n - 1, -1, -1):
                live.update(free_vars_exp(stms[k].exp))
                if k in ends:
                    used_after_at[k] = frozenset(live)
        instrs = []
        span_at = {i: j for i, j in spans}
        i = 0
        while i < n:
            j = span_at.get(i)
            if j is not None:
                instrs.append(self._compile_run(stms[i:j], used_after_at[j]))
                self.fused += j - i
                i = j
                continue
            instrs.append(self._compile_stm(stms[i]))
            i += 1
        res = tuple(self.reader(r) for r in body.result)
        return tuple(instrs), res

    def _compile_stm(self, stm: Stm):
        fn, multi = self.compile_exp(stm.exp)
        if multi:
            slots = tuple(self.slot(v.name) for v in stm.pat)

            def ins(eng, _fn=fn, _slots=slots):
                vals = _fn(eng)
                if len(vals) != len(_slots):
                    raise ExecError(
                        f"statement binds {len(_slots)} vars, got {len(vals)}"
                    )
                regs = eng.regs
                for s, v in zip(_slots, vals):
                    regs[s] = v

        else:
            if len(stm.pat) != 1:
                raise ExecError("statement binds multiple vars, got 1 value")
            s0 = self.slot(stm.pat[0].name)

            def ins(eng, _fn=fn, _s=s0):
                eng.regs[_s] = _fn(eng)

        return ins

    # -- fused scalar runs ----------------------------------------------------

    def _run_reader(self, a: Atom, local_of: Dict[str, int]) -> Callable:
        """A ``(regs, loc) -> BV`` accessor: run-local values read from the
        closure-local list, everything else from the register file."""
        if isinstance(a, Var) and a.name in local_of:
            idx = local_of[a.name]
            return lambda regs, loc, _i=idx: loc[_i]
        base = self.reader(a)
        return lambda regs, loc, _b=base: _b(regs)

    def _compile_run_exp(self, e: Exp, local_of: Dict[str, int]) -> Callable:
        rd = lambda a: self._run_reader(a, local_of)  # noqa: E731
        if isinstance(e, AtomExp):
            return rd(e.x)
        if isinstance(e, UnOp):
            rx = rd(e.x)
            op = e.op
            return lambda regs, loc, _rx=rx, _op=op: _elem(
                lambda d: apply_unop(_op, d), _rx(regs, loc)
            )
        if isinstance(e, BinOp):
            rx, ry = rd(e.x), rd(e.y)
            op = e.op
            return lambda regs, loc, _rx=rx, _ry=ry, _op=op: _elem(
                lambda a, b: apply_binop(_op, a, b), _rx(regs, loc), _ry(regs, loc)
            )
        if isinstance(e, Select):
            rc, rt, rf = rd(e.c), rd(e.t), rd(e.f)
            return lambda regs, loc, _rc=rc, _rt=rt, _rf=rf: _where(
                _rc(regs, loc), _rt(regs, loc), _rf(regs, loc)
            )
        if isinstance(e, Cast):
            rx = rd(e.x)
            dt = np_dtype(e.to)

            def cast_fn(regs, loc, _rx=rx, _dt=dt):
                v = _rx(regs, loc)
                return BV(cast_to(v.data, _dt), v.bdims)

            return cast_fn
        if isinstance(e, Index):
            ra = rd(e.arr)
            ris = tuple(rd(i) for i in e.idx)
            return lambda regs, loc, _ra=ra, _ris=ris: _gather(
                _ra(regs, loc), [r(regs, loc) for r in _ris]
            )
        if isinstance(e, ZerosLike):
            rx = rd(e.x)

            def zl_fn(regs, loc, _rx=rx):
                v = _rx(regs, loc)
                return BV(np.zeros_like(np.asarray(v.data)), v.bdims)

            return zl_fn
        raise ExecError(f"plan run compile: unexpected {type(e).__name__}")

    def _compile_run(self, run, used_after):
        """One fused closure for a run of adjacent scalar statements.

        ``used_after`` is the set of names live after the run (computed by
        ``compile_body``'s backward sweep); only those escape to the
        register file, everything else stays in run-local temporaries."""
        local_of: Dict[str, int] = {}
        ops = []
        exports = []
        for idx, s in enumerate(run):
            ops.append(self._compile_run_exp(s.exp, local_of))
            name = s.pat[0].name
            local_of[name] = idx
            if name in used_after:
                exports.append((idx, self.slot(name)))
        k = len(run)

        def ins(eng, _ops=tuple(ops), _exports=tuple(exports), _k=k):
            regs = eng.regs
            loc = [None] * _k
            for x, op in enumerate(_ops):
                loc[x] = op(regs, loc)
            for li, s in _exports:
                regs[s] = loc[li]

        return ins

    # -- expressions ----------------------------------------------------------

    def compile_exp(self, e: Exp):
        """Lower one expression; returns ``(closure, is_multi_result)``."""
        if isinstance(e, _RUN_FUSIBLE):
            # One shared set of scalar handlers: a standalone scalar
            # statement is a fused run of length 1 with no locals.
            op = self._compile_run_exp(e, {})
            return (lambda eng, _op=op: _op(eng.regs, ())), False

        if isinstance(e, Update):
            return self._compile_update(e), False

        if isinstance(e, Iota):
            dt = np_dtype(e.elem)
            if self.static is not None:
                n = self.static_int(e.n)
                if n is not None and 0 <= n <= _IOTA_PREBUILD_MAX:
                    # Specialised lowering: the array is a compile-time
                    # constant.  Hand out a fresh copy per call (memcpy, no
                    # extent resolution or arange fill) — unlike the shared
                    # scalar Const BVs, an array could escape as a function
                    # result, and a caller mutating it must not corrupt the
                    # cached plan.
                    arr = np.arange(n, dtype=dt)
                    return (lambda eng, _a=arr: BV(_a.copy(), 0)), False
            rn = self.int_reader(e.n, "iota length")

            def fn(eng, _rn=rn, _dt=dt):
                return BV(np.arange(_rn(eng), dtype=_dt), 0)

            return fn, False

        if isinstance(e, Replicate):
            rn = self.int_reader(e.n, "replicate count")
            rv = self.reader(e.v)

            def fn(eng, _rn=rn, _rv=rv):
                n = _rn(eng)
                v = _rv(eng.regs)
                d = np.asarray(v.data)
                d2 = np.expand_dims(d, axis=v.bdims)
                shape = d.shape[: v.bdims] + (n,) + d.shape[v.bdims:]
                return BV(np.broadcast_to(d2, shape).copy(), v.bdims)

            return fn, False

        if isinstance(e, ScratchLike):
            rn = self.reader(e.n)
            rx = self.reader(e.x)

            def fn(eng, _rn=rn, _rx=rx):
                nd = np.asarray(_rn(eng.regs).data)
                n = 0 if nd.size == 0 else int(nd.max())
                v = _rx(eng.regs)
                bshape = tuple(eng.bstack)
                dt = np.asarray(v.data).dtype
                return BV(np.zeros(bshape + (n,) + v.pshape(), dtype=dt), len(bshape))

            return fn, False

        if isinstance(e, Size):
            if self.static is not None:
                s = self.static.shape(e.arr.name)
                if s is not None and -len(s) <= e.dim < len(s):
                    # Specialised lowering: the extent is determined by the
                    # signature — no register read, no pshape() walk.
                    self.folds += 1
                    bv = BV(np.asarray(np.int64(s[e.dim])), 0)
                    return (lambda eng, _bv=bv: _bv), False
            rd = self.reader(e.arr)
            dim = e.dim

            def fn(eng, _rd=rd, _dim=dim):
                v = _rd(eng.regs)
                if isinstance(v, AccBV):
                    shape = v.data.shape[v.bdims:]
                    return BV(np.asarray(np.int64(shape[_dim])), 0)
                return BV(np.asarray(np.int64(v.pshape()[_dim])), 0)

            return fn, False

        if isinstance(e, Reverse):
            rd = self.reader(e.x)

            def fn(eng, _rd=rd):
                v = _rd(eng.regs)
                return BV(np.flip(np.asarray(v.data), axis=v.bdims).copy(), v.bdims)

            return fn, False

        if isinstance(e, Concat):
            rx = self.reader(e.x)
            ry = self.reader(e.y)

            def fn(eng, _rx=rx, _ry=ry):
                regs = eng.regs
                (dx, dy), k, _ = _align([_rx(regs), _ry(regs)])
                bx = np.broadcast_shapes(dx.shape[:k], dy.shape[:k])
                dx = np.broadcast_to(dx, bx + dx.shape[k:])
                dy = np.broadcast_to(dy, bx + dy.shape[k:])
                return BV(np.concatenate([dx, dy], axis=k), k)

            return fn, False

        if isinstance(e, Map):
            return self._compile_map(e), True
        if isinstance(e, Reduce):
            return self._compile_reduce(e), True
        if isinstance(e, Scan):
            return self._compile_scan(e), True
        if isinstance(e, ReduceByIndex):
            return self._compile_hist(e), True
        if isinstance(e, Scatter):
            return self._compile_scatter(e), False
        if isinstance(e, Loop):
            return self._compile_loop(e), True
        if isinstance(e, WhileLoop):
            return self._compile_while(e), True
        if isinstance(e, If):
            return self._compile_if(e), True
        if isinstance(e, WithAcc):
            return self._compile_withacc(e), True
        if isinstance(e, UpdAcc):
            return self._compile_updacc(e), False

        raise ExecError(f"plan compile: unknown expression {type(e).__name__}")

    # -- compound expressions -------------------------------------------------

    def _compile_update(self, e: Update) -> Callable:
        ra = self.reader(e.arr)
        ris = tuple(self.reader(i) for i in e.idx)
        rv = self.reader(e.val)

        def fn(eng, _ra=ra, _ris=ris, _rv=rv):
            regs = eng.regs
            arr = _ra(regs)
            idxs = [r(regs) for r in _ris]
            val = _rv(regs)
            k = max([arr.bdims, val.bdims] + [i.bdims for i in idxs])
            if eng.mask is not None:
                k = max(k, eng.mask.bdims)
            bshape = tuple(eng.bstack[:k])
            ad = _expand(arr, k)
            ad = np.broadcast_to(ad, bshape + ad.shape[k:]).copy()
            sel = _grids(bshape) + tuple(
                np.clip(_expand(i, k), 0, max(ad.shape[k + a] - 1, 0))
                for a, i in enumerate(idxs)
            )
            vd = _expand(val, k)
            if eng.mask is None:
                ad[sel] = vd
            else:
                old = ad[sel]
                md = _expand(eng.mask, k)
                md = md.reshape(md.shape + (1,) * (old.ndim - md.ndim))
                ad[sel] = np.where(md, vd, old)
            return BV(ad, k)

        return fn

    def _compile_map(self, e: Map) -> Callable:
        arr_rds = tuple(self.reader(a) for a in e.arrs)
        acc_rds = tuple(self.reader(a) for a in e.accs)
        pslots = tuple(self.slot(p.name) for p in e.lam.params)
        code = self.compile_body(e.lam.body)
        n_acc = len(e.accs)

        def fn(eng, _arrs=arr_rds, _accs=acc_rds, _ps=pslots, _code=code, _na=n_acc):
            d = len(eng.bstack)
            params, n = _map_args_rt(eng, _arrs)
            regs = eng.regs
            vals = params + [rd(regs) for rd in _accs]
            for s, v in zip(_ps, vals):
                regs[s] = v
            eng.bstack.append(n)
            try:
                res = _run_body(eng, _code)
            finally:
                eng.bstack.pop()
            out: List[object] = []
            for r in res[:_na]:
                if not isinstance(r, AccBV):
                    raise ExecError("map: accumulator results must lead")
                out.append(r)
            for r in res[_na:]:
                rd = _expand(r, d + 1)
                if rd.shape[d] != n:
                    rd = np.broadcast_to(rd, rd.shape[:d] + (n,) + rd.shape[d + 1:])
                out.append(BV(np.ascontiguousarray(rd), d))
            return tuple(out)

        return fn

    def _compile_reduce(self, e: Reduce) -> Callable:
        arr_rds = tuple(self.reader(a) for a in e.arrs)
        ne_rds = tuple(self.reader(ne) for ne in e.nes)
        op = recognize_binop_lambda(e.lam) if len(e.nes) == 1 else None
        if op is not None:
            ufunc = _UFUNC[op]
            fold = not _ne_is_identity(op, e.nes[0])
            ext = self.static_extent(e.arrs)
            if ext == 0:
                # Specialised lowering, extent 0: the reduce is the neutral
                # element — no ufunc launch at all.
                def empty(eng, _arrs=arr_rds, _ne=ne_rds[0]):
                    d = len(eng.bstack)
                    args, _n = _map_args_rt(eng, _arrs)
                    data = np.asarray(args[0].data)
                    nd = _expand(_ne(eng.regs), d)
                    shape = data.shape[:d] + data.shape[d + 1:]
                    return (BV(np.broadcast_to(nd, shape).copy(), d),)

                return empty
            if ext == 1:
                # Specialised lowering, extent 1: a reduction over one
                # element is that element (plus the neutral fold).
                def one(eng, _arrs=arr_rds, _ne=ne_rds[0], _uf=ufunc, _fold=fold):
                    d = len(eng.bstack)
                    args, _n = _map_args_rt(eng, _arrs)
                    red = np.take(np.asarray(args[0].data), 0, axis=d)
                    if _fold:
                        red = _uf(_expand(_ne(eng.regs), d), red)
                    return (BV(red, d),)

                return one
            if ext is not None:
                # Specialised lowering, known extent >= 2: the empty branch
                # is dead, compile it away.
                def fast_nz(eng, _arrs=arr_rds, _ne=ne_rds[0], _uf=ufunc, _fold=fold):
                    d = len(eng.bstack)
                    args, _n = _map_args_rt(eng, _arrs)
                    red = _uf.reduce(np.asarray(args[0].data), axis=d)
                    if _fold:
                        red = _uf(_expand(_ne(eng.regs), d), red)
                    return (BV(red, d),)

                return fast_nz

            def fast(eng, _arrs=arr_rds, _ne=ne_rds[0], _uf=ufunc, _fold=fold):
                d = len(eng.bstack)
                args, _n = _map_args_rt(eng, _arrs)
                data = np.asarray(args[0].data)
                if data.shape[d] == 0:
                    nd = _expand(_ne(eng.regs), d)
                    shape = data.shape[:d] + data.shape[d + 1:]
                    return (BV(np.broadcast_to(nd, shape).copy(), d),)
                red = _uf.reduce(data, axis=d)
                if _fold:
                    red = _uf(_expand(_ne(eng.regs), d), red)
                return (BV(red, d),)

            return fast
        rm = recognize_redomap_lambda(e.lam) if len(e.nes) == 1 else None
        if rm is not None:
            # Fused (redomap-shaped) operator: bulk-map the element function,
            # then reduce with the ufunc — fusion keeps the fast path.
            mop, mlam = rm
            ufunc = _UFUNC[mop]
            fold = not _ne_is_identity(mop, e.nes[0])
            ext = self.static_extent(e.arrs)
            mp = self._compile_map_part(mlam)

            if ext is not None and ext > 0:
                # Specialised lowering: the extent is known nonzero, the
                # empty branch is dead.
                def fused_nz(eng, _arrs=arr_rds, _ne=ne_rds[0], _mp=mp, _uf=ufunc, _fold=fold):
                    d = len(eng.bstack)
                    args, n = _map_args_rt(eng, _arrs)
                    red = _uf.reduce(_mp(eng, args, n), axis=d)
                    if _fold:
                        red = _uf(_expand(_ne(eng.regs), d), red)
                    return (BV(red, d),)

                return fused_nz

            def fused(eng, _arrs=arr_rds, _ne=ne_rds[0], _mp=mp, _uf=ufunc, _fold=fold):
                d = len(eng.bstack)
                args, n = _map_args_rt(eng, _arrs)
                if n == 0:
                    nd = _expand(_ne(eng.regs), d)
                    bshape = tuple(eng.bstack)
                    return (BV(np.broadcast_to(nd, bshape + nd.shape[d:]).copy(), d),)
                data = _mp(eng, args, n)
                red = _uf.reduce(data, axis=d)
                if _fold:
                    red = _uf(_expand(_ne(eng.regs), d), red)
                return (BV(red, d),)

            return fused
        pslots = tuple(self.slot(p.name) for p in e.lam.params)
        code = self.compile_body(e.lam.body)

        def fn(eng, _arrs=arr_rds, _nes=ne_rds, _ps=pslots, _code=code):
            d = len(eng.bstack)
            args, n = _map_args_rt(eng, _arrs)
            regs = eng.regs
            acc = [rd(regs) for rd in _nes]
            for i in range(n):
                elems = [BV(np.take(np.asarray(a.data), i, axis=d), d) for a in args]
                for s, v in zip(_ps, acc + elems):
                    regs[s] = v
                acc = list(_run_body(eng, _code))
            return tuple(acc)

        return fn

    def _compile_map_part(self, mlam) -> Callable:
        """Compile a redomap map part; returns ``(eng, batched_args, n) ->
        ndarray`` yielding the mapped payload with extent ``n`` on the
        current batch axis."""
        pslots = tuple(self.slot(p.name) for p in mlam.params)
        code = self.compile_body(mlam.body)

        def run(eng, args, n, _ps=pslots, _code=code):
            d = len(eng.bstack)
            regs = eng.regs
            for s, v in zip(_ps, args):
                regs[s] = v
            eng.bstack.append(n)
            try:
                (r,) = _run_body(eng, _code)
            finally:
                eng.bstack.pop()
            rd = _expand(r, d + 1)
            if rd.shape[d] != n:
                rd = np.broadcast_to(rd, rd.shape[:d] + (n,) + rd.shape[d + 1:])
            return rd

        return run

    def _compile_scan(self, e: Scan) -> Callable:
        arr_rds = tuple(self.reader(a) for a in e.arrs)
        ne_rds = tuple(self.reader(ne) for ne in e.nes)
        op = recognize_binop_lambda(e.lam) if len(e.nes) == 1 else None
        if op is not None:
            ufunc = _UFUNC[op]
            fold = not _ne_is_identity(op, e.nes[0])

            def fast(eng, _arrs=arr_rds, _ne=ne_rds[0], _uf=ufunc, _fold=fold):
                d = len(eng.bstack)
                args, _n = _map_args_rt(eng, _arrs)
                data = np.asarray(args[0].data)
                acc = _uf.accumulate(data, axis=d)
                if _fold:
                    nd = np.expand_dims(_expand(_ne(eng.regs), d), axis=d)
                    acc = _uf(nd, acc)
                return (BV(acc, d),)

            return fast
        rm = recognize_redomap_lambda(e.lam) if len(e.nes) == 1 else None
        if rm is not None:
            mop, mlam = rm
            ufunc = _UFUNC[mop]
            fold = not _ne_is_identity(mop, e.nes[0])
            ext = self.static_extent(e.arrs)
            mp = self._compile_map_part(mlam)

            if ext is not None and ext > 0:
                # Specialised lowering: known nonzero extent, dead empty
                # branch compiled away (the scan analogue of ``fused_nz``).
                def fused_nz(eng, _arrs=arr_rds, _mp=mp, _uf=ufunc, _nes=ne_rds, _fold=fold):
                    d = len(eng.bstack)
                    args, n = _map_args_rt(eng, _arrs)
                    acc = _uf.accumulate(_mp(eng, args, n), axis=d)
                    if _fold:
                        nd = np.expand_dims(_expand(_nes[0](eng.regs), d), axis=d)
                        acc = _uf(nd, acc)
                    return (BV(acc, d),)

                return fused_nz

            def fused(eng, _arrs=arr_rds, _mp=mp, _uf=ufunc, _nes=ne_rds, _fold=fold):
                d = len(eng.bstack)
                args, n = _map_args_rt(eng, _arrs)
                if n == 0:
                    ne = _nes[0](eng.regs)
                    dt = np.asarray(ne.data).dtype
                    return (BV(np.zeros((0,) * (ne.prank + 1), dtype=dt), 0),)
                data = _mp(eng, args, n)
                acc = _uf.accumulate(data, axis=d)
                if _fold:
                    nd = np.expand_dims(_expand(_nes[0](eng.regs), d), axis=d)
                    acc = _uf(nd, acc)
                return (BV(acc, d),)

            return fused
        pslots = tuple(self.slot(p.name) for p in e.lam.params)
        code = self.compile_body(e.lam.body)

        def fn(eng, _arrs=arr_rds, _nes=ne_rds, _ps=pslots, _code=code):
            d = len(eng.bstack)
            args, n = _map_args_rt(eng, _arrs)
            regs = eng.regs
            acc = [rd(regs) for rd in _nes]
            cols: List[List[np.ndarray]] = [[] for _ in _nes]
            for i in range(n):
                elems = [BV(np.take(np.asarray(a.data), i, axis=d), d) for a in args]
                for s, v in zip(_ps, acc + elems):
                    regs[s] = v
                acc = list(_run_body(eng, _code))
                for j, a in enumerate(acc):
                    cols[j].append(_expand(a, d))
            outs = []
            for j, col in enumerate(cols):
                if n == 0:
                    ne = _nes[j](regs)
                    dt = np.asarray(ne.data).dtype
                    outs.append(BV(np.zeros((0,) * (ne.prank + 1), dtype=dt), 0))
                    continue
                shape = np.broadcast_shapes(*[c.shape for c in col])
                col = [np.broadcast_to(c, shape) for c in col]
                outs.append(BV(np.stack(col, axis=d), d))
            return tuple(outs)

        return fn

    def _compile_hist(self, e: ReduceByIndex) -> Callable:
        rm = self.int_reader(e.num_bins, "histogram size")
        arr_rds = tuple(self.reader(a) for a in (e.inds,) + e.vals)
        ne_rds = tuple(self.reader(ne) for ne in e.nes)
        op = recognize_binop_lambda(e.lam) if len(e.nes) == 1 else None
        if op is not None:
            ufunc = _UFUNC[op]

            def fast(eng, _rm=rm, _arrs=arr_rds, _ne=ne_rds[0], _op=op, _uf=ufunc):
                d = len(eng.bstack)
                m = _rm(eng)
                args, n = _map_args_rt(eng, _arrs)
                inds, v = args[0], args[1]
                bshape = tuple(eng.bstack)
                idata = np.broadcast_to(np.asarray(inds.data), bshape + (n,))
                valid = (idata >= 0) & (idata < m)
                if eng.mask is not None:
                    md = _expand(eng.mask, d)
                    md = np.broadcast_to(
                        md.reshape(md.shape + (1,) * (valid.ndim - md.ndim)),
                        valid.shape,
                    )
                    valid = valid & md
                isel = _grids(bshape, extra=1) + (np.clip(idata, 0, max(m - 1, 0)),)
                pe = v.pshape()
                vdata = np.broadcast_to(np.asarray(v.data), bshape + (n,) + pe)
                dt = vdata.dtype
                ne = _ne(eng.regs)
                hist = np.ascontiguousarray(
                    np.broadcast_to(
                        np.expand_dims(_expand(ne, d), axis=d), bshape + (m,) + pe
                    ).astype(dt)
                )
                neutral = _neutral_of(_op, dt)
                w = valid.reshape(valid.shape + (1,) * (vdata.ndim - valid.ndim))
                contrib = np.where(w, vdata, neutral)
                _uf.at(hist, isel, contrib)
                return (BV(hist, d),)

            return fast
        redomap = recognize_redomap_lambda(e.lam) if len(e.nes) == 1 else None
        if redomap is not None:
            mop, mlam = redomap
            ufunc = _UFUNC[mop]
            mp = self._compile_map_part(mlam)

            def fused(eng, _rm=rm, _arrs=arr_rds, _ne=ne_rds[0], _mp=mp, _uf=ufunc, _mop=mop):
                d = len(eng.bstack)
                m = _rm(eng)
                args, n = _map_args_rt(eng, _arrs)
                inds, vals = args[0], list(args[1:])
                bshape = tuple(eng.bstack)
                idata = np.broadcast_to(np.asarray(inds.data), bshape + (n,))
                valid = (idata >= 0) & (idata < m)
                if eng.mask is not None:
                    md = _expand(eng.mask, d)
                    md = np.broadcast_to(
                        md.reshape(md.shape + (1,) * (valid.ndim - md.ndim)),
                        valid.shape,
                    )
                    valid = valid & md
                data = _mp(eng, vals, n)
                pe = data.shape[d + 1:]
                dt = data.dtype
                ne = _ne(eng.regs)
                hist = np.ascontiguousarray(
                    np.broadcast_to(
                        np.expand_dims(_expand(ne, d), axis=d), bshape + (m,) + pe
                    ).astype(dt)
                )
                neutral = _neutral_of(_mop, dt)
                vdata = np.broadcast_to(data, bshape + (n,) + pe)
                w = valid.reshape(valid.shape + (1,) * (vdata.ndim - valid.ndim))
                contrib = np.where(w, vdata, neutral)
                isel = _grids(bshape, extra=1) + (np.clip(idata, 0, max(m - 1, 0)),)
                _uf.at(hist, isel, contrib)
                return (BV(hist, d),)

            return fused
        pslots = tuple(self.slot(p.name) for p in e.lam.params)
        code = self.compile_body(e.lam.body)

        def fn(eng, _rm=rm, _arrs=arr_rds, _nes=ne_rds, _ps=pslots, _code=code):
            d = len(eng.bstack)
            m = _rm(eng)
            args, n = _map_args_rt(eng, _arrs)
            inds, vals = args[0], list(args[1:])
            bshape = tuple(eng.bstack)
            idata = np.broadcast_to(np.asarray(inds.data), bshape + (n,))
            valid = (idata >= 0) & (idata < m)
            if eng.mask is not None:
                md = _expand(eng.mask, d)
                md = np.broadcast_to(
                    md.reshape(md.shape + (1,) * (valid.ndim - md.ndim)), valid.shape
                )
                valid = valid & md
            regs = eng.regs
            hists = []
            for ne_rd, v in zip(_nes, vals):
                nev = ne_rd(regs)
                pshape = v.pshape()
                dt = np.asarray(v.data).dtype
                h = np.broadcast_to(
                    np.expand_dims(_expand(nev, d), axis=d),
                    bshape + (m,) + pshape,
                ).astype(dt)
                hists.append(np.ascontiguousarray(h))
            gsel = _grids(bshape)
            for i in range(n):
                b = idata[..., i]
                vi = valid[..., i]
                s = gsel + (np.clip(b, 0, max(m - 1, 0)),)
                cur = [BV(h[s], d) for h in hists]
                elems = [BV(np.take(np.asarray(v.data), i, axis=d), d) for v in vals]
                for sl, val in zip(_ps, cur + elems):
                    regs[sl] = val
                new = _run_body(eng, _code)
                for h, nv in zip(hists, new):
                    nd = _expand(nv, d)
                    old = h[s]
                    w = vi.reshape(vi.shape + (1,) * (old.ndim - vi.ndim))
                    h[s] = np.where(w, np.broadcast_to(nd, old.shape), old)
            return tuple(BV(h, d) for h in hists)

        return fn

    def _compile_scatter(self, e: Scatter) -> Callable:
        rdest = self.reader(e.dest)
        arr_rds = (self.reader(e.inds), self.reader(e.vals))

        def fn(eng, _rd=rdest, _arrs=arr_rds):
            d = len(eng.bstack)
            dest = _rd(eng.regs)
            args, n = _map_args_rt(eng, _arrs)
            inds, vals = args
            bshape = tuple(eng.bstack)
            dd = _expand(dest, d)
            dd = np.broadcast_to(dd, bshape + dd.shape[d:]).copy()
            ln = dd.shape[d]
            idata = np.broadcast_to(np.asarray(inds.data), bshape + (n,))
            pe = vals.pshape()
            vdata = np.broadcast_to(np.asarray(vals.data), bshape + (n,) + pe)
            valid = (idata >= 0) & (idata < ln)
            if eng.mask is not None:
                md = _expand(eng.mask, d)
                md = np.broadcast_to(
                    md.reshape(md.shape + (1,) * (valid.ndim - md.ndim)), valid.shape
                )
                valid = valid & md
            sel = _grids(bshape, extra=1) + (np.clip(idata, 0, max(ln - 1, 0)),)
            old = dd[sel]
            w = valid.reshape(valid.shape + (1,) * (old.ndim - valid.ndim))
            dd[sel] = np.where(w, np.broadcast_to(vdata, old.shape), old)
            return BV(dd, d)

        return fn

    # -- control flow ---------------------------------------------------------

    def _compile_if(self, e: If) -> Callable:
        rc = self.reader(e.cond)
        then_code = self.compile_body(e.then)
        els_code = self.compile_body(e.els)

        def fn(eng, _rc=rc, _then=then_code, _els=els_code):
            c = _rc(eng.regs)
            cd = np.asarray(c.data)
            if cd.size == 1 and eng.mask is None:
                return _run_body(eng, _then if bool(cd.reshape(-1)[0]) else _els)
            saved = eng.mask
            notc = BV(np.logical_not(cd), c.bdims)
            eng.mask = _combine_mask(saved, c)
            tvals = _run_body(eng, _then)
            eng.mask = _combine_mask(saved, notc)
            fvals = _run_body(eng, _els)
            eng.mask = saved
            return tuple(_where(c, t, f) for t, f in zip(tvals, fvals))

        return fn

    def _compile_loop(self, e: Loop) -> Callable:
        rn = self.reader(e.n)
        init_rds = tuple(self.reader(i) for i in e.inits)
        islot = self.slot(e.ivar.name)
        pslots = tuple(self.slot(p.name) for p in e.params)
        code = self.compile_body(e.body)

        def fn(eng, _rn=rn, _inits=init_rds, _is=islot, _ps=pslots, _code=code):
            regs = eng.regs
            nv = _rn(regs)
            nd = np.asarray(nv.data)
            nmax = 0 if nd.size == 0 else int(nd.max())
            state = [rd(regs) for rd in _inits]
            uniform = nd.size == 1 or (nd.size > 0 and nd.min() == nd.max())
            saved = eng.mask
            for i in range(nmax):
                regs[_is] = BV(np.asarray(np.int64(i)), 0)
                if not uniform:
                    active = BV(i < nd, nv.bdims)
                    eng.mask = _combine_mask(saved, active)
                for s, v in zip(_ps, state):
                    regs[s] = v
                new = list(_run_body(eng, _code))
                if uniform:
                    state = new
                else:
                    active = BV(i < nd, nv.bdims)
                    state = [
                        s2 if isinstance(s2, AccBV) else _where(active, s2, s)
                        for s, s2 in zip(state, new)
                    ]
                    eng.mask = saved
            eng.mask = saved
            return tuple(state)

        return fn

    def _compile_while(self, e: WhileLoop) -> Callable:
        init_rds = tuple(self.reader(i) for i in e.inits)
        cslots = tuple(self.slot(p.name) for p in e.cond.params)
        cond_code = self.compile_body(e.cond.body)
        pslots = tuple(self.slot(p.name) for p in e.params)
        body_code = self.compile_body(e.body)

        def fn(eng, _inits=init_rds, _cs=cslots, _cc=cond_code, _ps=pslots, _bc=body_code):
            regs = eng.regs
            state = [rd(regs) for rd in _inits]
            saved = eng.mask
            limit = _values.WHILE_FUEL
            fuel = limit
            while True:
                for s, v in zip(_cs, state):
                    regs[s] = v
                (c,) = _run_body(eng, _cc)
                active = _combine_mask(saved, c)
                if not np.any(np.asarray(active.data)):
                    break
                eng.mask = active
                for s, v in zip(_ps, state):
                    regs[s] = v
                new = list(_run_body(eng, _bc))
                state = [
                    s2 if isinstance(s2, AccBV) else _where(active, s2, s)
                    for s, s2 in zip(state, new)
                ]
                eng.mask = saved
                fuel -= 1
                if fuel <= 0:
                    raise ExecError(
                        f"while loop exceeded iteration fuel ({limit} iterations)"
                    )
            eng.mask = saved
            return tuple(state)

        return fn

    # -- accumulators ---------------------------------------------------------

    def _compile_withacc(self, e: WithAcc) -> Callable:
        arr_rds = tuple(self.reader(a) for a in e.arrs)
        pslots = tuple(self.slot(p.name) for p in e.lam.params)
        code = self.compile_body(e.lam.body)
        n_acc = len(e.arrs)

        def fn(eng, _arrs=arr_rds, _ps=pslots, _code=code, _na=n_acc):
            d = len(eng.bstack)
            bshape = tuple(eng.bstack)
            regs = eng.regs
            accs = []
            for rd in _arrs:
                v = rd(regs)
                ad = _expand(v, d)
                ad = np.broadcast_to(ad, bshape + ad.shape[d:]).copy()
                accs.append(AccBV(ad, d))
            for s, acc in zip(_ps, accs):
                regs[s] = acc
            res = _run_body(eng, _code)
            out: List[object] = []
            for r in res[:_na]:
                if not isinstance(r, AccBV):
                    raise ExecError("withacc: lambda must return its accumulators")
                out.append(BV(r.data, r.bdims))
            out.extend(res[_na:])
            return tuple(out)

        return fn

    def _compile_updacc(self, e: UpdAcc) -> Callable:
        racc = self.reader(e.acc)
        rv = self.reader(e.v)
        ris = tuple(self.reader(i) for i in e.idx)

        def fn(eng, _racc=racc, _rv=rv, _ris=ris):
            regs = eng.regs
            acc = _racc(regs)
            if not isinstance(acc, AccBV):
                raise ExecError("upd: operand is not an accumulator")
            v = _rv(regs)
            idxs = [r(regs) for r in _ris]
            k = max([v.bdims, acc.bdims] + [i.bdims for i in idxs])
            if eng.mask is not None:
                k = max(k, eng.mask.bdims)
            bshape = tuple(eng.bstack[:k])
            vd = _expand(v, k)
            vd = np.broadcast_to(vd, bshape + vd.shape[k:])
            vd = _mask_where(eng, vd, k, np.zeros((), dtype=vd.dtype))
            if not idxs:
                extra = tuple(range(acc.bdims, k))
                acc.data += vd.sum(axis=extra) if extra else vd
                return acc
            sel = _grids(bshape)[: acc.bdims] + tuple(
                np.clip(
                    np.broadcast_to(_expand(i, k), bshape),
                    0,
                    max(acc.data.shape[acc.bdims + a] - 1, 0),
                )
                for a, i in enumerate(idxs)
            )
            np.add.at(acc.data, sel, vd)
            return acc

        return fn


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


class Plan:
    """An executable lowering of one ``Fun``: flat instructions over slots.

    With ``static=None`` the plan is fully shape-generic (tier 1 of the plan
    cache — one lowering serves every concrete signature of a rank/dtype
    signature).  With a ``StaticInfo`` the lowering folds everything the
    concrete signature determines (tier 2 — see ``_PlanCompiler``); results
    are bitwise identical either way.
    """

    def __init__(
        self,
        fun: Fun,
        static: Optional[StaticInfo] = None,
        spec_sig: Optional[tuple] = None,
    ) -> None:
        self.fun = fun
        self.specialized = static is not None
        #: ``(payload shapes, batched flags)`` the specialised lowering is
        #: valid for; ``run``/``run_batched`` enforce it — folded constants
        #: silently produce wrong numbers on any other signature.
        self.spec_sig = spec_sig
        c = _PlanCompiler(static)
        self.param_slots = tuple(c.slot(p.name) for p in fun.params)
        self.param_types = tuple(p.type for p in fun.params)
        self.code = c.compile_body(fun.body)
        self.nslots = len(c.slots)
        #: Statements collapsed into fused scalar-run closures (recursive).
        self.fused_stms = c.fused
        #: Compile-time folds performed by the specialised lowering.
        self.spec_folds = c.folds
        with _LOCK:
            PLAN_STATS["fused_stms"] += c.fused
            PLAN_STATS["spec_folds"] += c.folds

    def __repr__(self) -> str:
        kind = "specialized " if self.specialized else ""
        return (
            f"<{kind}Plan {self.fun.name}: {len(self.code[0])} instrs, "
            f"{self.nslots} slots, {self.fused_stms} fused, "
            f"{self.spec_folds} folds>"
        )

    def _check_spec_sig(self, args: Sequence[object], batched) -> None:
        """Reject arguments outside a specialised plan's signature loudly —
        constants folded for one signature are wrong for every other."""
        if self.spec_sig is None:
            return
        exp_shapes, exp_flags = self.spec_sig
        flags = tuple(batched) if batched is not None else (False,) * len(args)
        if flags != exp_flags:
            raise ExecError(
                f"{self.fun.name}: plan specialised for batched flags "
                f"{exp_flags}, called with {flags}"
            )
        for i, (a, f, exp) in enumerate(zip(args, flags, exp_shapes)):
            s = np.asarray(a).shape
            if f:
                s = s[1:]
            if tuple(s) != exp:
                raise ExecError(
                    f"{self.fun.name}: plan specialised for argument {i} "
                    f"payload shape {exp}, got {tuple(s)}"
                )

    def run(self, args: Sequence[object]) -> Tuple[object, ...]:
        if len(args) != len(self.param_slots):
            raise ExecError(
                f"{self.fun.name}: expected {len(self.param_slots)} arguments, "
                f"got {len(args)}"
            )
        self._check_spec_sig(args, None)
        eng = _Engine(self.nslots)
        regs = eng.regs
        for s, a, t in zip(self.param_slots, args, self.param_types):
            regs[s] = BV(np.asarray(coerce_arg(a, t)), 0)
        with np.errstate(all="ignore"):
            res = _run_body(eng, self.code)
        out = []
        for r in res:
            if isinstance(r, AccBV):
                raise ExecError("accumulator escaped to top level")
            d = np.asarray(r.data)
            out.append(d if d.ndim else d[()])
        return tuple(out)

    def run_batched(
        self, args: Sequence[object], batched: Sequence[bool], batch_size: int
    ) -> Tuple[object, ...]:
        """Evaluate once with the flagged arguments batched on a leading axis.

        Semantics match ``exec.vector.run_fun_vec_batched``: execution starts
        with one pre-pushed batch level of extent ``batch_size``, batched
        arguments are ``BV``s with one batch dim, shared arguments broadcast.
        Every result is returned with a leading ``batch_size`` axis.
        """
        if len(args) != len(self.param_slots):
            raise ExecError(
                f"{self.fun.name}: expected {len(self.param_slots)} arguments, "
                f"got {len(args)}"
            )
        if len(batched) != len(args):
            raise ExecError("run_batched: batched flags must match arguments")
        self._check_spec_sig(args, batched)
        b = int(batch_size)
        eng = _Engine(self.nslots)
        eng.bstack.append(b)
        regs = eng.regs
        for s, a, t, flag in zip(self.param_slots, args, self.param_types, batched):
            if flag:
                arr = np.asarray(a)
                if arr.ndim == 0 or arr.shape[0] != b:
                    raise ExecError(
                        f"batched argument: leading axis {arr.shape[:1]} does "
                        f"not match batch size {b}"
                    )
                regs[s] = BV(np.ascontiguousarray(arr, dtype=np_dtype(t)), 1)
            else:
                regs[s] = BV(np.asarray(coerce_arg(a, t)), 0)
        with np.errstate(all="ignore"):
            res = _run_body(eng, self.code)
        out = []
        for r in res:
            if isinstance(r, AccBV):
                raise ExecError("accumulator escaped to top level")
            d = _expand(r, 1)
            out.append(np.ascontiguousarray(np.broadcast_to(d, (b,) + d.shape[1:])))
        return tuple(out)


def compile_plan(
    fun: Fun,
    args: Optional[Sequence[object]] = None,
    batched: Optional[Sequence[bool]] = None,
) -> Plan:
    """Lower ``fun`` to a fresh (uncached) plan.

    With ``args`` the lowering is specialised to their concrete shapes (the
    tier-2 lowering, forced — no promotion threshold); without, it is the
    shape-generic tier-1 lowering.
    """
    if args is None:
        return Plan(fun)
    return specialized_plan(fun, args, batched)


def specialized_plan(
    fun: Fun,
    args: Sequence[object],
    batched: Optional[Sequence[bool]] = None,
) -> Plan:
    """A fresh plan specialised to ``args``' concrete shapes (uncached).

    ``batched`` flags mark arguments whose leading axis is the batch axis of
    ``run_batched`` — it is stripped before inference, since static facts
    describe *payload* shapes.
    """
    flags = tuple(bool(f) for f in batched) if batched is not None else (False,) * len(args)
    shapes = []
    for a, f in zip(args, flags):
        s = np.asarray(a).shape
        shapes.append(tuple(s[1:]) if f else tuple(s))
    return Plan(
        fun,
        static=infer_static_shapes(fun, shapes),
        spec_sig=(tuple(shapes), flags),
    )


# ---------------------------------------------------------------------------
# Plan cache — two tiers
# ---------------------------------------------------------------------------

#: Counters for the module-level plan cache (reset on clear).  Every
#: ``plan_for`` call increments exactly one of ``misses`` (a generic tier-1
#: lowering — by construction one per rank/dtype signature), ``hits`` (the
#: generic plan served a concrete signature), or ``specialized_hits`` (a
#: promoted tier-2 plan served its exact signature); ``promotions`` counts
#: tier-2 lowerings, ``evictions`` LRU drops across both tiers,
#: ``fused_stms`` scalar statements collapsed into fused run closures, and
#: ``spec_folds`` compile-time folds performed by specialised lowerings.
PLAN_STATS = {
    "hits": 0,
    "misses": 0,
    "specialized_hits": 0,
    "promotions": 0,
    "evictions": 0,
    "fused_stms": 0,
    "spec_folds": 0,
}

#: Tier 1: shape-generic plans keyed by ``(fun, backend, rank/dtype
#: signature, batched flags)``.  Tier 2: specialised plans keyed by the full
#: concrete ``(shape, dtype)`` signature.  ``_PROMO`` counts tier-1 hits per
#: concrete signature, driving promotion; its entries are ``(fun, count)``
#: pairs — the strong ``fun`` reference (identity-checked on read) upholds
#: the same id-recycling soundness invariant as the plan tiers.  All three
#: are mutated only under ``_LOCK`` together with ``PLAN_STATS`` (shard
#: thread mode resolves plans from pool workers).
_GENERIC = BoundedLRU()
_SPECIAL = BoundedLRU()
_PROMO = BoundedLRU()
_LOCK = threading.RLock()
_MISS = object()

_DEFAULT_CACHE_SIZE = 512


def specialize_enabled() -> bool:
    """Whether tier-2 specialisation is on (``REPRO_PLAN_SPECIALIZE``,
    default on; ``0``/``off``/``false``/``no`` disable)."""
    return os.environ.get("REPRO_PLAN_SPECIALIZE", "1").lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def _specialize_after() -> int:
    """Tier-1 hits on one concrete signature before promotion
    (``REPRO_PLAN_SPECIALIZE_AFTER``, default 2, min 1)."""
    return max(1, env_capacity("REPRO_PLAN_SPECIALIZE_AFTER", 2))


def _payload_shapes(args: Sequence[object], batched) -> list:
    """Concrete payload shapes (batch axis stripped from flagged args)."""
    flags = tuple(bool(f) for f in batched) if batched is not None else (False,) * len(args)
    out = []
    for a, f in zip(args, flags):
        s = np.asarray(a).shape
        out.append(tuple(s[1:]) if f else tuple(s))
    return out


def _promo_threshold(fun: Fun, args, batched) -> Optional[int]:
    """Tier-1 hit count at which this signature gets promoted.

    ``REPRO_PLAN_SPECIALIZE_AFTER`` in the environment overrides with the
    old bare counter; otherwise the threshold is derived from the static
    cost model (``ir.cost_model.promotion_threshold``): the smallest hit
    count whose predicted per-call specialisation savings amortise the
    estimated re-lowering cost — signatures whose shapes admit *no*
    compile-time folds are never promoted (``None``)."""
    if "REPRO_PLAN_SPECIALIZE_AFTER" in os.environ:
        return _specialize_after()
    from ..ir.cost_model import promotion_threshold

    return promotion_threshold(fun, _payload_shapes(args, batched))


def _sig_of(args: Sequence[object]) -> tuple:
    """The concrete (tier-2) signature: per-arg shape and dtype."""
    sig = []
    for a in args:
        arr = np.asarray(a)
        sig.append((arr.shape, arr.dtype.str))
    return tuple(sig)


def _generic_sig_of(args: Sequence[object]) -> tuple:
    """The generic (tier-1) signature: per-arg rank and dtype — concrete
    extents dropped, so a D0→D6 shape sweep shares one entry."""
    sig = []
    for a in args:
        arr = np.asarray(a)
        sig.append((arr.ndim, arr.dtype.str))
    return tuple(sig)


def plan_for(
    fun: Fun,
    args: Sequence[object],
    batched: Optional[Sequence[bool]] = None,
    backend: str = "plan",
) -> Plan:
    """The cached plan for ``fun`` given ``args``' shapes/dtypes — two tiers.

    **Tier 1 (generic):** keyed by ``(id(fun), backend, rank/dtype
    signature, batched flags)`` — concrete extents are *not* part of the
    key, so sweeping a problem-size axis (GMM D0→D6, BA camera counts,
    shard chunk extents) re-uses one lowering instead of re-lowering and
    evicting per shape.  The ``backend`` dimension keeps entries lowered on
    behalf of different executors apart (shard chunk plans can never
    collide with plain plan-backend entries for the same ``Fun``).

    **Tier 2 (specialised, ``REPRO_PLAN_SPECIALIZE``):** after a concrete
    ``(shape, dtype)`` signature scores ``REPRO_PLAN_SPECIALIZE_AFTER``
    tier-1 hits, it is promoted: a plan is re-lowered with the signature's
    static facts folded in (``Size`` constants, prebuilt iotas, extent-picked
    reduce strategies — see ``_PlanCompiler``) and served for that exact
    signature from then on.  Promotion is a pure optimisation: specialised
    and generic plans agree bitwise.

    Cached plans hold strong references to their ``fun``, so keyed ids
    cannot be recycled while entries live; both tiers are LRUs bounded by
    ``REPRO_PLAN_CACHE_SIZE`` entries each (default 512, ``0`` unbounded)
    and entries never go stale (``Fun`` is immutable).  The whole lookup —
    cache mutation, counters, and any lowering — runs under one re-entrant
    lock, so concurrent shard workers can never corrupt the LRU order or
    lose stat increments (and a plan is lowered once, not once per racing
    thread).
    """
    flags = tuple(batched) if batched is not None else None
    base = (id(fun), backend, flags)
    gkey = base + (_generic_sig_of(args),)
    cap = env_capacity("REPRO_PLAN_CACHE_SIZE", _DEFAULT_CACHE_SIZE)
    with _LOCK:
        plan = _GENERIC.get(gkey, _MISS)
        if plan is _MISS:
            PLAN_STATS["misses"] += 1
            plan = Plan(fun)
            PLAN_STATS["evictions"] += _GENERIC.put(gkey, plan, cap)
            return plan
        skey = base + (_sig_of(args),)
        sp = _SPECIAL.get(skey, _MISS)
        if sp is not _MISS:
            PLAN_STATS["specialized_hits"] += 1
            return sp
        PLAN_STATS["hits"] += 1
        if specialize_enabled():
            ent = _PROMO.get(skey)
            if ent is not None and ent[0] is fun:
                n, thr = ent[1] + 1, ent[2]
            else:
                # First tier-1 hit of this signature: derive (and memoise)
                # its promotion threshold from the cost model — the
                # amortisation estimate runs once per signature, not per hit.
                n, thr = 1, _promo_threshold(fun, args, batched)
            _PROMO.put(skey, (fun, n, thr), cap * 8 if cap > 0 else 0)
            if thr is not None and n >= thr:
                sp = specialized_plan(fun, args, batched)
                PLAN_STATS["promotions"] += 1
                PLAN_STATS["evictions"] += _SPECIAL.put(skey, sp, cap)
                return sp
        return plan


def plan_cache_stats() -> Dict[str, int]:
    """A snapshot of the cache counters plus the current entry counts
    (``entries`` — generic tier, ``specialized_entries`` — specialised)."""
    with _LOCK:
        return {
            **PLAN_STATS,
            "entries": len(_GENERIC),
            "specialized_entries": len(_SPECIAL),
        }


def clear_plan_cache() -> None:
    """Drop every cached plan (both tiers) and reset all counters."""
    with _LOCK:
        _GENERIC.clear()
        _SPECIAL.clear()
        _PROMO.clear()
        for k in PLAN_STATS:
            PLAN_STATS[k] = 0


def run_fun_plan(fun: Fun, args: Sequence[object]) -> Tuple[object, ...]:
    """Evaluate ``fun`` via the (cached) plan backend."""
    return plan_for(fun, args).run(args)


def run_fun_plan_batched(
    fun: Fun, args: Sequence[object], batched: Sequence[bool], batch_size: int
) -> Tuple[object, ...]:
    """Evaluate ``fun`` once with batched arguments via the plan backend."""
    return plan_for(fun, args, batched).run_batched(args, batched, batch_size)
