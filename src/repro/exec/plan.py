"""Plan backend — closure emission + runtime over the shared plan IR.

The vectorised interpreter (``exec/vector.py``) already executes SOACs as
bulk NumPy ops, but it re-walks the IR on *every* call: each statement costs
an ``isinstance`` dispatch chain, dict-based environment lookups, and atom
re-resolution.  For the paper's workloads — where a differentiated program is
evaluated thousands of times on same-shaped inputs — that per-call AST
interpretation is pure overhead.

Since PR 6 the plan family is layered:

* ``exec/lower.py`` turns an optimised ``Fun`` (plus optional static shape
  facts) into an explicit linear **plan IR** — slot allocation, fused scalar
  runs, SOAC fast-path selection, and specialisation folds all decided there,
  once, for every emitter;
* this module **emits** that IR as a flat sequence of Python closures, one
  per instruction, over a slot-indexed register file (the interpreter
  emitter), and hosts the runtime (``_Engine``) plus the two-tier plan
  cache shared by all plan-family emitters;
* ``exec/codegen.py`` emits the same IR as the source of a single Python
  function (``backend="codegen"``) — no per-instruction dispatch at all.

Runtime semantics are *identical* to the vectorised interpreter — plans reuse
its ``BV`` batched-value representation, masking discipline, and helper
machinery — so SIMT-style divergence, accumulators, and lane-varying loops
all behave the same (the test suite runs every program on ``ref``, ``vec``,
``plan`` and ``codegen`` and asserts agreement).

Caching — two tiers
-------------------

``plan_for(fun, args, batched=..., backend=..., emitter=...)`` memoises
plans in a module-level, lock-guarded cache with two tiers:

* **tier 1 (generic)** — keyed by ``(ir_hash(fun), backend, emitter,
  rank/dtype signature, batched flags)``.  The key leads with the
  alpha-invariant content hash (``ir.analysis.ir_hash``), so
  alpha-equivalent ``Fun`` bodies — retraced derivatives, per-worker
  re-optimised copies — share one lowering instead of one per object
  identity.  Concrete extents are dropped from the key: plans are
  shape-generic, so one lowering serves a whole problem-size sweep (GMM
  D0→D6, BA camera counts, shard chunk extents) instead of re-lowering per
  shape and churning the LRU.  The backend/emitter dimensions separate
  entries lowered for the plan backend proper from shard chunk plans and
  codegen code objects.
* **tier 2 (specialised, ``REPRO_PLAN_SPECIALIZE``, default on)** — after a
  concrete ``(shape, dtype)`` signature scores enough tier-1 hits that the
  predicted specialisation savings amortise the estimated re-lowering cost
  (``ir.cost_model.promotion_threshold``; signatures admitting no folds are
  never promoted; ``REPRO_PLAN_SPECIALIZE_AFTER`` overrides with a bare
  hit-count threshold), the plan is re-lowered with the signature's static
  facts folded in (``ir.analysis.infer_static_shapes``): ``Size``
  expressions become prebuilt constants, iota/replicate/histogram extents
  become compile-time ints (small iotas prebuilt outright), and reduce/scan
  lowering picks its strategy by the known extent.  Specialised and generic
  plans agree bitwise — promotion is purely a perf move.

Repeat calls on same-shaped arguments skip tracing, optimisation, and
lowering entirely; ``PLAN_STATS`` counts hits/misses/specialized-hits/
promotions/evictions and fused-statement/fold totals, and ``EMITTER_STATS``
breaks plan construction down per emitter, so callers can assert cache
behaviour.  Each tier is an LRU bounded by ``REPRO_PLAN_CACHE_SIZE`` entries
(default 512, ``0`` unbounded); ``clear_plan_cache`` drops everything
eagerly (plans are derived purely from immutable ``Fun`` values, so entries
never go stale).  All cache and counter state is mutated under one
re-entrant lock — shard thread mode resolves plans from pool workers
concurrently.

Batched seeds
-------------

``Plan.run_batched(args, batched, batch_size)`` evaluates the plan with the
flagged arguments carrying one extra leading batch axis — the batched
multi-seed driver used by ``jacobian``: all n/m basis vectors evaluate in a
single pass, stacked on the leading axis, instead of n/m separate runs.
"""
from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.analysis import StaticInfo, infer_static_shapes, ir_hash
from ..ir.ast import Fun
from ..ir.types import np_dtype
from ..obs import metrics as _obs_metrics, tracing as _obs_tracing
from ..util import BoundedLRU, ExecError, env_capacity
from . import values as _values
from .lower import (
    IntRef,
    PlanIR,
    Ref,
    check_spec_sig,
    lower_fun,
    plan_schedules,
    spec_signature,
)
from .prims import apply_binop, apply_unop, cast_to
from .values import coerce_arg
from .vector import (
    _UFUNC,
    AccBV,
    BV,
    _align,
    _batch_args,
    _combine_mask,
    _elem,
    _expand,
    _gather,
    _grids,
    _mask_where,
    _neutral_of,
    _uniform_int,
    _where,
)

__all__ = [
    "Plan",
    "compile_plan",
    "plan_for",
    "specialized_plan",
    "specialize_enabled",
    "register_emitter",
    "run_fun_plan",
    "run_fun_plan_batched",
    "PLAN_STATS",
    "EMITTER_STATS",
    "plan_cache_stats",
    "clear_plan_cache",
    "reset_plan_cache_stats",
    "profile_enabled",
]

_span = _obs_tracing.span


# ---------------------------------------------------------------------------
# Runtime state
# ---------------------------------------------------------------------------


class _Engine:
    """Mutable per-call state: register file, batch stack, predication mask."""

    __slots__ = ("regs", "bstack", "mask")

    def __init__(self, nslots: int) -> None:
        self.regs: List[object] = [None] * nslots
        self.bstack: List[int] = []
        self.mask: Optional[BV] = None


def _run_body(eng: _Engine, code) -> Tuple[object, ...]:
    instrs, res = code
    for ins in instrs:
        ins(eng)
    regs = eng.regs
    return tuple(r(regs) for r in res)


# The masking/elementwise/gather/SOAC-entry primitives (_combine_mask,
# _mask_where, _elem, _where, _gather, _uniform_int, _batch_args) are imported
# from exec/vector.py — one shared copy is what guarantees the backends
# cannot drift semantically.


def _map_args_rt(eng: _Engine, readers) -> Tuple[List[BV], int]:
    regs = eng.regs
    return _batch_args(eng, [rd(regs) for rd in readers])


# ---------------------------------------------------------------------------
# Closure emission over the plan IR
# ---------------------------------------------------------------------------


def _reader(ref: Ref) -> Callable:
    """A ``regs -> BV`` accessor for a lowered atom."""
    if ref.slot is not None:
        i, name = ref.slot, ref.name

        def rd(regs, _i=i, _n=name):
            v = regs[_i]
            if v is None:
                raise ExecError(f"unbound variable {_n}")
            return v

        return rd
    bv = ref.bv
    return lambda regs, _bv=bv: _bv


def _int_reader(iref: IntRef) -> Callable:
    """Accessor for a lane-uniform integer (iota/replicate/hist extents).

    Lowering already folded compile-time constants into ``IntRef.const``;
    everything else reads the register file and validates lane-uniformity
    per call."""
    if iref.const is not None:
        n = iref.const
        return lambda eng, _n=n: _n
    rd = _reader(iref.ref)
    return lambda eng, _rd=rd, _w=iref.what: _uniform_int(_rd(eng.regs), _w)


def _run_operand(x) -> Callable:
    """A ``(regs, loc) -> BV`` accessor: run-local values (``int`` indices)
    read from the closure-local list, everything else from the register
    file."""
    if isinstance(x, int):
        return lambda regs, loc, _i=x: loc[_i]
    base = _reader(x)
    return lambda regs, loc, _b=base: _b(regs)


def _emit_run_op(o) -> Callable:
    kind = o.kind
    if kind == "atom":
        return _run_operand(o.xs[0])
    if kind == "unop":
        rx = _run_operand(o.xs[0])
        op = o.op
        return lambda regs, loc, _rx=rx, _op=op: _elem(
            lambda d: apply_unop(_op, d), _rx(regs, loc)
        )
    if kind == "binop":
        rx, ry = _run_operand(o.xs[0]), _run_operand(o.xs[1])
        op = o.op
        return lambda regs, loc, _rx=rx, _ry=ry, _op=op: _elem(
            lambda a, b: apply_binop(_op, a, b), _rx(regs, loc), _ry(regs, loc)
        )
    if kind == "select":
        rc, rt, rf = (_run_operand(x) for x in o.xs)
        return lambda regs, loc, _rc=rc, _rt=rt, _rf=rf: _where(
            _rc(regs, loc), _rt(regs, loc), _rf(regs, loc)
        )
    if kind == "cast":
        rx = _run_operand(o.xs[0])
        dt = o.dtype

        def cast_fn(regs, loc, _rx=rx, _dt=dt):
            v = _rx(regs, loc)
            return BV(cast_to(v.data, _dt), v.bdims)

        return cast_fn
    if kind == "index":
        ra = _run_operand(o.xs[0])
        ris = tuple(_run_operand(x) for x in o.xs[1:])
        return lambda regs, loc, _ra=ra, _ris=ris: _gather(
            _ra(regs, loc), [r(regs, loc) for r in _ris]
        )
    if kind == "zeroslike":
        rx = _run_operand(o.xs[0])

        def zl_fn(regs, loc, _rx=rx):
            v = _rx(regs, loc)
            return BV(np.zeros_like(np.asarray(v.data)), v.bdims)

        return zl_fn
    raise ExecError(f"plan emit: unexpected run op {kind!r}")


def _assign_single(fn: Callable, out) -> Callable:
    s0 = out[0]

    def ins(eng, _fn=fn, _s=s0):
        eng.regs[_s] = _fn(eng)

    return ins


def _assign_multi(fn: Callable, outs) -> Callable:
    slots = tuple(s for s, _ in outs)

    def ins(eng, _fn=fn, _slots=slots):
        vals = _fn(eng)
        regs = eng.regs
        for s, v in zip(_slots, vals):
            regs[s] = v

    return ins


class _ClosureEmitter:
    """The interpreter emitter: one Python closure per plan-IR instruction.

    Every compile-time decision already lives in the IR — this class only
    binds readers/writers and transliterates each instruction into the
    closure that executes it (the NumPy call sequences are shared verbatim
    with the codegen emitter, which is what keeps the two bitwise equal)."""

    # -- bodies ---------------------------------------------------------------

    def emit_body(self, pbody) -> tuple:
        instrs = tuple(self._emit_ins(i) for i in pbody.instrs)
        res = tuple(_reader(r) for r in pbody.result)
        return instrs, res

    def _emit_ins(self, ins) -> Callable:
        return getattr(self, "_emit_" + ins.kind)(ins)

    # -- fused scalar runs ----------------------------------------------------

    def _emit_run(self, ins) -> Callable:
        ops = tuple(_emit_run_op(o) for o in ins.ops)
        if len(ops) == 1:
            # A standalone scalar statement: one export, no locals.
            (_, s0, _n) = ins.exports[0]
            op = ops[0]

            def one(eng, _op=op, _s=s0):
                eng.regs[_s] = _op(eng.regs, ())

            return one
        exports = tuple((li, s) for li, s, _n in ins.exports)
        k = len(ops)

        def run(eng, _ops=ops, _exports=exports, _k=k):
            regs = eng.regs
            loc = [None] * _k
            for x, op in enumerate(_ops):
                loc[x] = op(regs, loc)
            for li, s in _exports:
                regs[s] = loc[li]

        return run

    # -- simple expressions ---------------------------------------------------

    def _emit_update(self, e) -> Callable:
        ra = _reader(e.arr)
        ris = tuple(_reader(i) for i in e.idx)
        rv = _reader(e.val)

        def fn(eng, _ra=ra, _ris=ris, _rv=rv):
            regs = eng.regs
            arr = _ra(regs)
            idxs = [r(regs) for r in _ris]
            val = _rv(regs)
            k = max([arr.bdims, val.bdims] + [i.bdims for i in idxs])
            if eng.mask is not None:
                k = max(k, eng.mask.bdims)
            bshape = tuple(eng.bstack[:k])
            ad = _expand(arr, k)
            ad = np.broadcast_to(ad, bshape + ad.shape[k:]).copy()
            sel = _grids(bshape) + tuple(
                np.clip(_expand(i, k), 0, max(ad.shape[k + a] - 1, 0))
                for a, i in enumerate(idxs)
            )
            vd = _expand(val, k)
            if eng.mask is None:
                ad[sel] = vd
            else:
                old = ad[sel]
                md = _expand(eng.mask, k)
                md = md.reshape(md.shape + (1,) * (old.ndim - md.ndim))
                ad[sel] = np.where(md, vd, old)
            return BV(ad, k)

        return _assign_single(fn, e.out)

    def _emit_iota(self, e) -> Callable:
        if e.prebuilt is not None:
            arr = e.prebuilt
            return _assign_single(lambda eng, _a=arr: BV(_a.copy(), 0), e.out)
        rn = _int_reader(e.n)
        dt = e.dtype

        def fn(eng, _rn=rn, _dt=dt):
            return BV(np.arange(_rn(eng), dtype=_dt), 0)

        return _assign_single(fn, e.out)

    def _emit_replicate(self, e) -> Callable:
        rn = _int_reader(e.n)
        rv = _reader(e.v)

        def fn(eng, _rn=rn, _rv=rv):
            n = _rn(eng)
            v = _rv(eng.regs)
            d = np.asarray(v.data)
            d2 = np.expand_dims(d, axis=v.bdims)
            shape = d.shape[: v.bdims] + (n,) + d.shape[v.bdims:]
            return BV(np.broadcast_to(d2, shape).copy(), v.bdims)

        return _assign_single(fn, e.out)

    def _emit_scratch(self, e) -> Callable:
        rn = _reader(e.n)
        rx = _reader(e.x)

        def fn(eng, _rn=rn, _rx=rx):
            nd = np.asarray(_rn(eng.regs).data)
            n = 0 if nd.size == 0 else int(nd.max())
            v = _rx(eng.regs)
            bshape = tuple(eng.bstack)
            dt = np.asarray(v.data).dtype
            return BV(np.zeros(bshape + (n,) + v.pshape(), dtype=dt), len(bshape))

        return _assign_single(fn, e.out)

    def _emit_size(self, e) -> Callable:
        if e.const is not None:
            bv = e.const
            return _assign_single(lambda eng, _bv=bv: _bv, e.out)
        rd = _reader(e.arr)
        dim = e.dim

        def fn(eng, _rd=rd, _dim=dim):
            v = _rd(eng.regs)
            if isinstance(v, AccBV):
                shape = v.data.shape[v.bdims:]
                return BV(np.asarray(np.int64(shape[_dim])), 0)
            return BV(np.asarray(np.int64(v.pshape()[_dim])), 0)

        return _assign_single(fn, e.out)

    def _emit_reverse(self, e) -> Callable:
        rd = _reader(e.x)

        def fn(eng, _rd=rd):
            v = _rd(eng.regs)
            return BV(np.flip(np.asarray(v.data), axis=v.bdims).copy(), v.bdims)

        return _assign_single(fn, e.out)

    def _emit_concat(self, e) -> Callable:
        rx = _reader(e.x)
        ry = _reader(e.y)

        def fn(eng, _rx=rx, _ry=ry):
            regs = eng.regs
            (dx, dy), k, _ = _align([_rx(regs), _ry(regs)])
            bx = np.broadcast_shapes(dx.shape[:k], dy.shape[:k])
            dx = np.broadcast_to(dx, bx + dx.shape[k:])
            dy = np.broadcast_to(dy, bx + dy.shape[k:])
            return BV(np.concatenate([dx, dy], axis=k), k)

        return _assign_single(fn, e.out)

    # -- SOACs ----------------------------------------------------------------

    def _emit_map(self, e) -> Callable:
        arr_rds = tuple(_reader(a) for a in e.arrs)
        acc_rds = tuple(_reader(a) for a in e.accs)
        pslots = tuple(s for s, _ in e.params)
        code = self.emit_body(e.body)
        n_acc = e.n_acc
        chunk = getattr(e, "chunk", 0)

        if chunk > 1 and not e.accs and n_acc == 0:
            # ``sequential(chunk)`` schedule: run the (acc-free) map in
            # in-order chunks and concatenate.  ``_batch_args`` guarantees
            # every param's data has extent exactly ``n`` on the batch axis,
            # so slicing at axis 0 is exact, and elementwise NumPy ops on
            # slices are bitwise-equal to the bulk evaluation.  The chunked
            # path only fires at top level (no batch axis, no mask) — the
            # same plan may also serve batched runs, which fall back to the
            # bulk path below.
            def fn_chunked(eng, _arrs=arr_rds, _ps=pslots, _code=code,
                           _chunk=chunk):
                d = len(eng.bstack)
                params, n = _map_args_rt(eng, _arrs)
                regs = eng.regs

                def one(vals, m):
                    for s, v in zip(_ps, vals):
                        regs[s] = v
                    eng.bstack.append(m)
                    try:
                        res = _run_body(eng, _code)
                    finally:
                        eng.bstack.pop()
                    out = []
                    for r in res:
                        rd = _expand(r, d + 1)
                        if rd.shape[d] != m:
                            rd = np.broadcast_to(
                                rd, rd.shape[:d] + (m,) + rd.shape[d + 1:]
                            )
                        out.append(rd)
                    return out

                if d == 0 and eng.mask is None and n > _chunk:
                    parts = [
                        one([BV(p.data[lo:lo + _chunk], p.bdims)
                             for p in params],
                            min(_chunk, n - lo))
                        for lo in range(0, n, _chunk)
                    ]
                    return tuple(
                        BV(np.ascontiguousarray(
                            np.concatenate([p[j] for p in parts], axis=0)), 0)
                        for j in range(len(parts[0]))
                    )
                return tuple(
                    BV(np.ascontiguousarray(rd), d) for rd in one(params, n)
                )

            return _assign_multi(fn_chunked, e.outs)

        def fn(eng, _arrs=arr_rds, _accs=acc_rds, _ps=pslots, _code=code, _na=n_acc):
            d = len(eng.bstack)
            params, n = _map_args_rt(eng, _arrs)
            regs = eng.regs
            vals = params + [rd(regs) for rd in _accs]
            for s, v in zip(_ps, vals):
                regs[s] = v
            eng.bstack.append(n)
            try:
                res = _run_body(eng, _code)
            finally:
                eng.bstack.pop()
            out: List[object] = []
            for r in res[:_na]:
                if not isinstance(r, AccBV):
                    raise ExecError("map: accumulator results must lead")
                out.append(r)
            for r in res[_na:]:
                rd = _expand(r, d + 1)
                if rd.shape[d] != n:
                    rd = np.broadcast_to(rd, rd.shape[:d] + (n,) + rd.shape[d + 1:])
                out.append(BV(np.ascontiguousarray(rd), d))
            return tuple(out)

        return _assign_multi(fn, e.outs)

    def _emit_map_part(self, params, body) -> Callable:
        """Emit a redomap map part; returns ``(eng, batched_args, n) ->
        ndarray`` yielding the mapped payload with extent ``n`` on the
        current batch axis."""
        pslots = tuple(s for s, _ in params)
        code = self.emit_body(body)

        def run(eng, args, n, _ps=pslots, _code=code):
            d = len(eng.bstack)
            regs = eng.regs
            for s, v in zip(_ps, args):
                regs[s] = v
            eng.bstack.append(n)
            try:
                (r,) = _run_body(eng, _code)
            finally:
                eng.bstack.pop()
            rd = _expand(r, d + 1)
            if rd.shape[d] != n:
                rd = np.broadcast_to(rd, rd.shape[:d] + (n,) + rd.shape[d + 1:])
            return rd

        return run

    def _emit_reduce(self, e) -> Callable:
        arr_rds = tuple(_reader(a) for a in e.arrs)
        ne_rds = tuple(_reader(ne) for ne in e.nes)
        if e.strategy == "ufunc":
            ufunc = _UFUNC[e.op]
            fold = e.fold
            if e.ext == 0:
                # Specialised lowering, extent 0: the reduce is the neutral
                # element — no ufunc launch at all.
                def empty(eng, _arrs=arr_rds, _ne=ne_rds[0]):
                    d = len(eng.bstack)
                    args, _n = _map_args_rt(eng, _arrs)
                    data = np.asarray(args[0].data)
                    nd = _expand(_ne(eng.regs), d)
                    shape = data.shape[:d] + data.shape[d + 1:]
                    return (BV(np.broadcast_to(nd, shape).copy(), d),)

                return _assign_multi(empty, e.outs)
            if e.ext == 1:
                # Specialised lowering, extent 1: a reduction over one
                # element is that element (plus the neutral fold).
                def one(eng, _arrs=arr_rds, _ne=ne_rds[0], _uf=ufunc, _fold=fold):
                    d = len(eng.bstack)
                    args, _n = _map_args_rt(eng, _arrs)
                    red = np.take(np.asarray(args[0].data), 0, axis=d)
                    if _fold:
                        red = _uf(_expand(_ne(eng.regs), d), red)
                    return (BV(red, d),)

                return _assign_multi(one, e.outs)
            if e.ext is not None:
                # Specialised lowering, known extent >= 2: the empty branch
                # is dead, compile it away.
                def fast_nz(eng, _arrs=arr_rds, _ne=ne_rds[0], _uf=ufunc, _fold=fold):
                    d = len(eng.bstack)
                    args, _n = _map_args_rt(eng, _arrs)
                    red = _uf.reduce(np.asarray(args[0].data), axis=d)
                    if _fold:
                        red = _uf(_expand(_ne(eng.regs), d), red)
                    return (BV(red, d),)

                return _assign_multi(fast_nz, e.outs)

            def fast(eng, _arrs=arr_rds, _ne=ne_rds[0], _uf=ufunc, _fold=fold):
                d = len(eng.bstack)
                args, _n = _map_args_rt(eng, _arrs)
                data = np.asarray(args[0].data)
                if data.shape[d] == 0:
                    nd = _expand(_ne(eng.regs), d)
                    shape = data.shape[:d] + data.shape[d + 1:]
                    return (BV(np.broadcast_to(nd, shape).copy(), d),)
                red = _uf.reduce(data, axis=d)
                if _fold:
                    red = _uf(_expand(_ne(eng.regs), d), red)
                return (BV(red, d),)

            return _assign_multi(fast, e.outs)
        if e.strategy == "redomap":
            ufunc = _UFUNC[e.op]
            fold = e.fold
            mp = self._emit_map_part(e.mparams, e.mbody)

            if e.ext is not None and e.ext > 0:
                # Specialised lowering: the extent is known nonzero, the
                # empty branch is dead.
                def fused_nz(eng, _arrs=arr_rds, _ne=ne_rds[0], _mp=mp, _uf=ufunc, _fold=fold):
                    d = len(eng.bstack)
                    args, n = _map_args_rt(eng, _arrs)
                    red = _uf.reduce(_mp(eng, args, n), axis=d)
                    if _fold:
                        red = _uf(_expand(_ne(eng.regs), d), red)
                    return (BV(red, d),)

                return _assign_multi(fused_nz, e.outs)

            def fused(eng, _arrs=arr_rds, _ne=ne_rds[0], _mp=mp, _uf=ufunc, _fold=fold):
                d = len(eng.bstack)
                args, n = _map_args_rt(eng, _arrs)
                if n == 0:
                    nd = _expand(_ne(eng.regs), d)
                    bshape = tuple(eng.bstack)
                    return (BV(np.broadcast_to(nd, bshape + nd.shape[d:]).copy(), d),)
                data = _mp(eng, args, n)
                red = _uf.reduce(data, axis=d)
                if _fold:
                    red = _uf(_expand(_ne(eng.regs), d), red)
                return (BV(red, d),)

            return _assign_multi(fused, e.outs)
        pslots = tuple(s for s, _ in e.params)
        code = self.emit_body(e.body)

        def fn(eng, _arrs=arr_rds, _nes=ne_rds, _ps=pslots, _code=code):
            d = len(eng.bstack)
            args, n = _map_args_rt(eng, _arrs)
            regs = eng.regs
            acc = [rd(regs) for rd in _nes]
            for i in range(n):
                elems = [BV(np.take(np.asarray(a.data), i, axis=d), d) for a in args]
                for s, v in zip(_ps, acc + elems):
                    regs[s] = v
                acc = list(_run_body(eng, _code))
            return tuple(acc)

        return _assign_multi(fn, e.outs)

    def _emit_scan(self, e) -> Callable:
        arr_rds = tuple(_reader(a) for a in e.arrs)
        ne_rds = tuple(_reader(ne) for ne in e.nes)
        if e.strategy == "ufunc":
            ufunc = _UFUNC[e.op]
            fold = e.fold

            def fast(eng, _arrs=arr_rds, _ne=ne_rds[0], _uf=ufunc, _fold=fold):
                d = len(eng.bstack)
                args, _n = _map_args_rt(eng, _arrs)
                data = np.asarray(args[0].data)
                acc = _uf.accumulate(data, axis=d)
                if _fold:
                    nd = np.expand_dims(_expand(_ne(eng.regs), d), axis=d)
                    acc = _uf(nd, acc)
                return (BV(acc, d),)

            return _assign_multi(fast, e.outs)
        if e.strategy == "redomap":
            ufunc = _UFUNC[e.op]
            fold = e.fold
            mp = self._emit_map_part(e.mparams, e.mbody)

            if e.ext is not None and e.ext > 0:
                # Specialised lowering: known nonzero extent, dead empty
                # branch compiled away (the scan analogue of ``fused_nz``).
                def fused_nz(eng, _arrs=arr_rds, _mp=mp, _uf=ufunc, _nes=ne_rds, _fold=fold):
                    d = len(eng.bstack)
                    args, n = _map_args_rt(eng, _arrs)
                    acc = _uf.accumulate(_mp(eng, args, n), axis=d)
                    if _fold:
                        nd = np.expand_dims(_expand(_nes[0](eng.regs), d), axis=d)
                        acc = _uf(nd, acc)
                    return (BV(acc, d),)

                return _assign_multi(fused_nz, e.outs)

            def fused(eng, _arrs=arr_rds, _mp=mp, _uf=ufunc, _nes=ne_rds, _fold=fold):
                d = len(eng.bstack)
                args, n = _map_args_rt(eng, _arrs)
                if n == 0:
                    ne = _nes[0](eng.regs)
                    dt = np.asarray(ne.data).dtype
                    return (BV(np.zeros((0,) * (ne.prank + 1), dtype=dt), 0),)
                data = _mp(eng, args, n)
                acc = _uf.accumulate(data, axis=d)
                if _fold:
                    nd = np.expand_dims(_expand(_nes[0](eng.regs), d), axis=d)
                    acc = _uf(nd, acc)
                return (BV(acc, d),)

            return _assign_multi(fused, e.outs)
        pslots = tuple(s for s, _ in e.params)
        code = self.emit_body(e.body)

        def fn(eng, _arrs=arr_rds, _nes=ne_rds, _ps=pslots, _code=code):
            d = len(eng.bstack)
            args, n = _map_args_rt(eng, _arrs)
            regs = eng.regs
            acc = [rd(regs) for rd in _nes]
            cols: List[List[np.ndarray]] = [[] for _ in _nes]
            for i in range(n):
                elems = [BV(np.take(np.asarray(a.data), i, axis=d), d) for a in args]
                for s, v in zip(_ps, acc + elems):
                    regs[s] = v
                acc = list(_run_body(eng, _code))
                for j, a in enumerate(acc):
                    cols[j].append(_expand(a, d))
            outs = []
            for j, col in enumerate(cols):
                if n == 0:
                    ne = _nes[j](regs)
                    dt = np.asarray(ne.data).dtype
                    outs.append(BV(np.zeros((0,) * (ne.prank + 1), dtype=dt), 0))
                    continue
                shape = np.broadcast_shapes(*[c.shape for c in col])
                col = [np.broadcast_to(c, shape) for c in col]
                outs.append(BV(np.stack(col, axis=d), d))
            return tuple(outs)

        return _assign_multi(fn, e.outs)

    def _emit_hist(self, e) -> Callable:
        rm = _int_reader(e.num_bins)
        arr_rds = tuple(_reader(a) for a in e.arrs)
        ne_rds = tuple(_reader(ne) for ne in e.nes)
        if e.strategy == "ufunc":
            op = e.op
            ufunc = _UFUNC[op]

            def fast(eng, _rm=rm, _arrs=arr_rds, _ne=ne_rds[0], _op=op, _uf=ufunc):
                d = len(eng.bstack)
                m = _rm(eng)
                args, n = _map_args_rt(eng, _arrs)
                inds, v = args[0], args[1]
                bshape = tuple(eng.bstack)
                idata = np.broadcast_to(np.asarray(inds.data), bshape + (n,))
                valid = (idata >= 0) & (idata < m)
                if eng.mask is not None:
                    md = _expand(eng.mask, d)
                    md = np.broadcast_to(
                        md.reshape(md.shape + (1,) * (valid.ndim - md.ndim)),
                        valid.shape,
                    )
                    valid = valid & md
                isel = _grids(bshape, extra=1) + (np.clip(idata, 0, max(m - 1, 0)),)
                pe = v.pshape()
                vdata = np.broadcast_to(np.asarray(v.data), bshape + (n,) + pe)
                dt = vdata.dtype
                ne = _ne(eng.regs)
                hist = np.ascontiguousarray(
                    np.broadcast_to(
                        np.expand_dims(_expand(ne, d), axis=d), bshape + (m,) + pe
                    ).astype(dt)
                )
                neutral = _neutral_of(_op, dt)
                w = valid.reshape(valid.shape + (1,) * (vdata.ndim - valid.ndim))
                contrib = np.where(w, vdata, neutral)
                _uf.at(hist, isel, contrib)
                return (BV(hist, d),)

            return _assign_multi(fast, e.outs)
        if e.strategy == "redomap":
            mop = e.op
            ufunc = _UFUNC[mop]
            mp = self._emit_map_part(e.mparams, e.mbody)

            def fused(eng, _rm=rm, _arrs=arr_rds, _ne=ne_rds[0], _mp=mp, _uf=ufunc, _mop=mop):
                d = len(eng.bstack)
                m = _rm(eng)
                args, n = _map_args_rt(eng, _arrs)
                inds, vals = args[0], list(args[1:])
                bshape = tuple(eng.bstack)
                idata = np.broadcast_to(np.asarray(inds.data), bshape + (n,))
                valid = (idata >= 0) & (idata < m)
                if eng.mask is not None:
                    md = _expand(eng.mask, d)
                    md = np.broadcast_to(
                        md.reshape(md.shape + (1,) * (valid.ndim - md.ndim)),
                        valid.shape,
                    )
                    valid = valid & md
                data = _mp(eng, vals, n)
                pe = data.shape[d + 1:]
                dt = data.dtype
                ne = _ne(eng.regs)
                hist = np.ascontiguousarray(
                    np.broadcast_to(
                        np.expand_dims(_expand(ne, d), axis=d), bshape + (m,) + pe
                    ).astype(dt)
                )
                neutral = _neutral_of(_mop, dt)
                vdata = np.broadcast_to(data, bshape + (n,) + pe)
                w = valid.reshape(valid.shape + (1,) * (vdata.ndim - valid.ndim))
                contrib = np.where(w, vdata, neutral)
                isel = _grids(bshape, extra=1) + (np.clip(idata, 0, max(m - 1, 0)),)
                _uf.at(hist, isel, contrib)
                return (BV(hist, d),)

            return _assign_multi(fused, e.outs)
        pslots = tuple(s for s, _ in e.params)
        code = self.emit_body(e.body)

        def fn(eng, _rm=rm, _arrs=arr_rds, _nes=ne_rds, _ps=pslots, _code=code):
            d = len(eng.bstack)
            m = _rm(eng)
            args, n = _map_args_rt(eng, _arrs)
            inds, vals = args[0], list(args[1:])
            bshape = tuple(eng.bstack)
            idata = np.broadcast_to(np.asarray(inds.data), bshape + (n,))
            valid = (idata >= 0) & (idata < m)
            if eng.mask is not None:
                md = _expand(eng.mask, d)
                md = np.broadcast_to(
                    md.reshape(md.shape + (1,) * (valid.ndim - md.ndim)), valid.shape
                )
                valid = valid & md
            regs = eng.regs
            hists = []
            for ne_rd, v in zip(_nes, vals):
                nev = ne_rd(regs)
                pshape = v.pshape()
                dt = np.asarray(v.data).dtype
                h = np.broadcast_to(
                    np.expand_dims(_expand(nev, d), axis=d),
                    bshape + (m,) + pshape,
                ).astype(dt)
                hists.append(np.ascontiguousarray(h))
            gsel = _grids(bshape)
            for i in range(n):
                b = idata[..., i]
                vi = valid[..., i]
                s = gsel + (np.clip(b, 0, max(m - 1, 0)),)
                cur = [BV(h[s], d) for h in hists]
                elems = [BV(np.take(np.asarray(v.data), i, axis=d), d) for v in vals]
                for sl, val in zip(_ps, cur + elems):
                    regs[sl] = val
                new = _run_body(eng, _code)
                for h, nv in zip(hists, new):
                    nd = _expand(nv, d)
                    old = h[s]
                    w = vi.reshape(vi.shape + (1,) * (old.ndim - vi.ndim))
                    h[s] = np.where(w, np.broadcast_to(nd, old.shape), old)
            return tuple(BV(h, d) for h in hists)

        return _assign_multi(fn, e.outs)

    def _emit_scatter(self, e) -> Callable:
        rdest = _reader(e.dest)
        arr_rds = (_reader(e.inds), _reader(e.vals))

        def fn(eng, _rd=rdest, _arrs=arr_rds):
            d = len(eng.bstack)
            dest = _rd(eng.regs)
            args, n = _map_args_rt(eng, _arrs)
            inds, vals = args
            bshape = tuple(eng.bstack)
            dd = _expand(dest, d)
            dd = np.broadcast_to(dd, bshape + dd.shape[d:]).copy()
            ln = dd.shape[d]
            idata = np.broadcast_to(np.asarray(inds.data), bshape + (n,))
            pe = vals.pshape()
            vdata = np.broadcast_to(np.asarray(vals.data), bshape + (n,) + pe)
            valid = (idata >= 0) & (idata < ln)
            if eng.mask is not None:
                md = _expand(eng.mask, d)
                md = np.broadcast_to(
                    md.reshape(md.shape + (1,) * (valid.ndim - md.ndim)), valid.shape
                )
                valid = valid & md
            sel = _grids(bshape, extra=1) + (np.clip(idata, 0, max(ln - 1, 0)),)
            old = dd[sel]
            w = valid.reshape(valid.shape + (1,) * (old.ndim - valid.ndim))
            dd[sel] = np.where(w, np.broadcast_to(vdata, old.shape), old)
            return BV(dd, d)

        return _assign_single(fn, e.out)

    # -- control flow ---------------------------------------------------------

    def _emit_if(self, e) -> Callable:
        rc = _reader(e.cond)
        then_code = self.emit_body(e.then)
        els_code = self.emit_body(e.els)

        def fn(eng, _rc=rc, _then=then_code, _els=els_code):
            c = _rc(eng.regs)
            cd = np.asarray(c.data)
            if cd.size == 1 and eng.mask is None:
                return _run_body(eng, _then if bool(cd.reshape(-1)[0]) else _els)
            saved = eng.mask
            notc = BV(np.logical_not(cd), c.bdims)
            eng.mask = _combine_mask(saved, c)
            tvals = _run_body(eng, _then)
            eng.mask = _combine_mask(saved, notc)
            fvals = _run_body(eng, _els)
            eng.mask = saved
            return tuple(_where(c, t, f) for t, f in zip(tvals, fvals))

        return _assign_multi(fn, e.outs)

    def _emit_loop(self, e) -> Callable:
        rn = _reader(e.n)
        init_rds = tuple(_reader(i) for i in e.inits)
        islot = e.ivar[0]
        pslots = tuple(s for s, _ in e.params)
        code = self.emit_body(e.body)

        def fn(eng, _rn=rn, _inits=init_rds, _is=islot, _ps=pslots, _code=code):
            regs = eng.regs
            nv = _rn(regs)
            nd = np.asarray(nv.data)
            nmax = 0 if nd.size == 0 else int(nd.max())
            state = [rd(regs) for rd in _inits]
            uniform = nd.size == 1 or (nd.size > 0 and nd.min() == nd.max())
            saved = eng.mask
            for i in range(nmax):
                regs[_is] = BV(np.asarray(np.int64(i)), 0)
                if not uniform:
                    active = BV(i < nd, nv.bdims)
                    eng.mask = _combine_mask(saved, active)
                for s, v in zip(_ps, state):
                    regs[s] = v
                new = list(_run_body(eng, _code))
                if uniform:
                    state = new
                else:
                    active = BV(i < nd, nv.bdims)
                    state = [
                        s2 if isinstance(s2, AccBV) else _where(active, s2, s)
                        for s, s2 in zip(state, new)
                    ]
                    eng.mask = saved
            eng.mask = saved
            return tuple(state)

        return _assign_multi(fn, e.outs)

    def _emit_while(self, e) -> Callable:
        init_rds = tuple(_reader(i) for i in e.inits)
        cslots = tuple(s for s, _ in e.cparams)
        cond_code = self.emit_body(e.cbody)
        pslots = tuple(s for s, _ in e.params)
        body_code = self.emit_body(e.body)

        def fn(eng, _inits=init_rds, _cs=cslots, _cc=cond_code, _ps=pslots, _bc=body_code):
            regs = eng.regs
            state = [rd(regs) for rd in _inits]
            saved = eng.mask
            limit = _values.WHILE_FUEL
            fuel = limit
            while True:
                for s, v in zip(_cs, state):
                    regs[s] = v
                (c,) = _run_body(eng, _cc)
                active = _combine_mask(saved, c)
                if not np.any(np.asarray(active.data)):
                    break
                eng.mask = active
                for s, v in zip(_ps, state):
                    regs[s] = v
                new = list(_run_body(eng, _bc))
                state = [
                    s2 if isinstance(s2, AccBV) else _where(active, s2, s)
                    for s, s2 in zip(state, new)
                ]
                eng.mask = saved
                fuel -= 1
                if fuel <= 0:
                    raise ExecError(
                        f"while loop exceeded iteration fuel ({limit} iterations)"
                    )
            eng.mask = saved
            return tuple(state)

        return _assign_multi(fn, e.outs)

    # -- accumulators ---------------------------------------------------------

    def _emit_withacc(self, e) -> Callable:
        arr_rds = tuple(_reader(a) for a in e.arrs)
        pslots = tuple(s for s, _ in e.params)
        code = self.emit_body(e.body)
        n_acc = e.n_acc

        def fn(eng, _arrs=arr_rds, _ps=pslots, _code=code, _na=n_acc):
            d = len(eng.bstack)
            bshape = tuple(eng.bstack)
            regs = eng.regs
            accs = []
            for rd in _arrs:
                v = rd(regs)
                ad = _expand(v, d)
                ad = np.broadcast_to(ad, bshape + ad.shape[d:]).copy()
                accs.append(AccBV(ad, d))
            for s, acc in zip(_ps, accs):
                regs[s] = acc
            res = _run_body(eng, _code)
            out: List[object] = []
            for r in res[:_na]:
                if not isinstance(r, AccBV):
                    raise ExecError("withacc: lambda must return its accumulators")
                out.append(BV(r.data, r.bdims))
            out.extend(res[_na:])
            return tuple(out)

        return _assign_multi(fn, e.outs)

    def _emit_updacc(self, e) -> Callable:
        racc = _reader(e.acc)
        rv = _reader(e.v)
        ris = tuple(_reader(i) for i in e.idx)

        def fn(eng, _racc=racc, _rv=rv, _ris=ris):
            regs = eng.regs
            acc = _racc(regs)
            if not isinstance(acc, AccBV):
                raise ExecError("upd: operand is not an accumulator")
            v = _rv(regs)
            idxs = [r(regs) for r in _ris]
            k = max([v.bdims, acc.bdims] + [i.bdims for i in idxs])
            if eng.mask is not None:
                k = max(k, eng.mask.bdims)
            bshape = tuple(eng.bstack[:k])
            vd = _expand(v, k)
            vd = np.broadcast_to(vd, bshape + vd.shape[k:])
            vd = _mask_where(eng, vd, k, np.zeros((), dtype=vd.dtype))
            if not idxs:
                extra = tuple(range(acc.bdims, k))
                acc.data += vd.sum(axis=extra) if extra else vd
                return acc
            sel = _grids(bshape)[: acc.bdims] + tuple(
                np.clip(
                    np.broadcast_to(_expand(i, k), bshape),
                    0,
                    max(acc.data.shape[acc.bdims + a] - 1, 0),
                )
                for a, i in enumerate(idxs)
            )
            np.add.at(acc.data, sel, vd)
            return acc

        return _assign_single(fn, e.out)


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


class Plan:
    """An executable lowering of one ``Fun``: flat instruction closures over
    slots, emitted from the shared plan IR (``exec/lower.py``).

    With ``static=None`` the plan is fully shape-generic (tier 1 of the plan
    cache — one lowering serves every concrete signature of a rank/dtype
    signature).  With a ``StaticInfo`` the lowering folds everything the
    concrete signature determines (tier 2 — see ``lower._Lowerer``); results
    are bitwise identical either way.
    """

    #: ``EMITTER_STATS`` bucket and span label; subclasses (the profile
    #: emitter) override it so their constructions are attributed apart.
    emitter_name = "plan"

    def __init__(
        self,
        fun: Fun,
        static: Optional[StaticInfo] = None,
        spec_sig: Optional[tuple] = None,
        ir: Optional[PlanIR] = None,
    ) -> None:
        with _obs_tracing.timed(
            "emit", cat="compile", fun=fun.name, emitter=self.emitter_name
        ) as tm:
            if ir is None:
                ir = lower_fun(fun, static)
            self.fun = fun
            self.specialized = ir.specialized
            #: ``(payload shapes, batched flags)`` the specialised lowering is
            #: valid for; ``run``/``run_batched`` enforce it — folded constants
            #: silently produce wrong numbers on any other signature.
            self.spec_sig = spec_sig
            em = _ClosureEmitter()
            self.param_slots = ir.param_slots
            self.param_types = ir.param_types
            self.code = em.emit_body(ir.body)
            self.nslots = ir.nslots
            #: Distinct active schedules of the top-level SOAC/loop
            #: statements, for the execute span.
            self.schedule_str = plan_schedules(ir)
            #: Statements collapsed into fused scalar-run closures (recursive).
            self.fused_stms = ir.fused
            #: Compile-time folds performed by the specialised lowering.
            self.spec_folds = ir.folds
        with _LOCK:
            PLAN_STATS["fused_stms"] += ir.fused
            PLAN_STATS["spec_folds"] += ir.folds
            st = EMITTER_STATS.setdefault(self.emitter_name, {"plans": 0, "emit_s": 0.0})
            st["plans"] += 1
            st["emit_s"] += tm.seconds

    def __repr__(self) -> str:
        kind = "specialized " if self.specialized else ""
        return (
            f"<{kind}Plan {self.fun.name}: {len(self.code[0])} instrs, "
            f"{self.nslots} slots, {self.fused_stms} fused, "
            f"{self.spec_folds} folds>"
        )

    def _check_spec_sig(self, args: Sequence[object], batched) -> None:
        check_spec_sig(self.fun.name, self.spec_sig, args, batched)

    def run(self, args: Sequence[object]) -> Tuple[object, ...]:
        if len(args) != len(self.param_slots):
            raise ExecError(
                f"{self.fun.name}: expected {len(self.param_slots)} arguments, "
                f"got {len(args)}"
            )
        self._check_spec_sig(args, None)
        with _span("execute", cat="exec", fun=self.fun.name, emitter=self.emitter_name,
                   schedule=self.schedule_str or None):
            eng = _Engine(self.nslots)
            regs = eng.regs
            for s, a, t in zip(self.param_slots, args, self.param_types):
                regs[s] = BV(np.asarray(coerce_arg(a, t)), 0)
            with np.errstate(all="ignore"):
                res = _run_body(eng, self.code)
            out = []
            for r in res:
                if isinstance(r, AccBV):
                    raise ExecError("accumulator escaped to top level")
                d = np.asarray(r.data)
                out.append(d if d.ndim else d[()])
            return tuple(out)

    def run_batched(
        self, args: Sequence[object], batched: Sequence[bool], batch_size: int
    ) -> Tuple[object, ...]:
        """Evaluate once with the flagged arguments batched on a leading axis.

        Semantics match ``exec.vector.run_fun_vec_batched``: execution starts
        with one pre-pushed batch level of extent ``batch_size``, batched
        arguments are ``BV``s with one batch dim, shared arguments broadcast.
        Every result is returned with a leading ``batch_size`` axis.
        """
        if len(args) != len(self.param_slots):
            raise ExecError(
                f"{self.fun.name}: expected {len(self.param_slots)} arguments, "
                f"got {len(args)}"
            )
        if len(batched) != len(args):
            raise ExecError("run_batched: batched flags must match arguments")
        self._check_spec_sig(args, batched)
        with _span("execute", cat="exec", fun=self.fun.name, emitter=self.emitter_name,
                   batched=True, schedule=self.schedule_str or None):
            b = int(batch_size)
            eng = _Engine(self.nslots)
            eng.bstack.append(b)
            regs = eng.regs
            for s, a, t, flag in zip(self.param_slots, args, self.param_types, batched):
                if flag:
                    arr = np.asarray(a)
                    if arr.ndim == 0 or arr.shape[0] != b:
                        raise ExecError(
                            f"batched argument: leading axis {arr.shape[:1]} does "
                            f"not match batch size {b}"
                        )
                    regs[s] = BV(np.ascontiguousarray(arr, dtype=np_dtype(t)), 1)
                else:
                    regs[s] = BV(np.asarray(coerce_arg(a, t)), 0)
            with np.errstate(all="ignore"):
                res = _run_body(eng, self.code)
            out = []
            for r in res:
                if isinstance(r, AccBV):
                    raise ExecError("accumulator escaped to top level")
                d = _expand(r, 1)
                out.append(np.ascontiguousarray(np.broadcast_to(d, (b,) + d.shape[1:])))
            return tuple(out)


def compile_plan(
    fun: Fun,
    args: Optional[Sequence[object]] = None,
    batched: Optional[Sequence[bool]] = None,
) -> Plan:
    """Lower ``fun`` to a fresh (uncached) plan.

    With ``args`` the lowering is specialised to their concrete shapes (the
    tier-2 lowering, forced — no promotion threshold); without, it is the
    shape-generic tier-1 lowering.
    """
    if args is None:
        return Plan(fun)
    return specialized_plan(fun, args, batched)


def specialized_plan(
    fun: Fun,
    args: Sequence[object],
    batched: Optional[Sequence[bool]] = None,
) -> Plan:
    """A fresh plan specialised to ``args``' concrete shapes (uncached).

    ``batched`` flags mark arguments whose leading axis is the batch axis of
    ``run_batched`` — it is stripped before inference, since static facts
    describe *payload* shapes.
    """
    shapes, flags = spec_signature(args, batched)
    return Plan(
        fun,
        static=infer_static_shapes(fun, list(shapes)),
        spec_sig=(shapes, flags),
    )


# ---------------------------------------------------------------------------
# Emitter registry
# ---------------------------------------------------------------------------

#: Plan emitters by name: ``build(fun, static=None, spec_sig=None)`` returns
#: a plan-like object (``run``/``run_batched``/``spec_sig``).  The closure
#: interpreter registers as ``"plan"`` here; ``exec/codegen.py`` registers
#: ``"codegen"`` on import (resolved lazily below so the plan backend never
#: pays for the codegen module).
_EMITTERS: Dict[str, Callable] = {}


def register_emitter(name: str, build: Callable) -> None:
    """Register a plan-family emitter (``build(fun, static, spec_sig)``)."""
    _EMITTERS[name] = build


register_emitter("plan", Plan)


def _resolve_emitter(name: str) -> Callable:
    build = _EMITTERS.get(name)
    if build is None and name == "codegen":
        from . import codegen  # noqa: F401  (registers itself on import)

        build = _EMITTERS.get(name)
    if build is None and name == "profile":
        from ..obs import profiler  # noqa: F401  (registers itself on import)

        build = _EMITTERS.get(name)
    if build is None:
        raise ExecError(
            f"unknown plan emitter {name!r} (have {sorted(_EMITTERS)})"
        )
    return build


def profile_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` routes default plan-backend executions
    through the per-instruction ``"profile"`` emitter.  Any non-falsy
    value enables it; a value with a path separator or ``.json`` suffix
    is additionally the report file written at interpreter exit (see
    ``obs/profiler.py``)."""
    return os.environ.get("REPRO_PROFILE", "").lower() not in ("", "0", "off", "false", "no")


def _specialized_build(
    build: Callable, fun: Fun, args: Sequence[object], batched
):
    """A fresh tier-2 plan through ``build`` (the promotion path)."""
    shapes, flags = spec_signature(args, batched)
    return build(
        fun,
        static=infer_static_shapes(fun, list(shapes)),
        spec_sig=(shapes, flags),
    )


# ---------------------------------------------------------------------------
# Plan cache — two tiers
# ---------------------------------------------------------------------------

#: Counters for the module-level plan cache (reset on clear).  Every
#: ``plan_for`` call increments exactly one of ``misses`` (a generic tier-1
#: lowering — by construction one per rank/dtype signature), ``hits`` (the
#: generic plan served a concrete signature), or ``specialized_hits`` (a
#: promoted tier-2 plan served its exact signature); ``promotions`` counts
#: tier-2 lowerings, ``evictions`` LRU drops across both tiers,
#: ``fused_stms`` scalar statements collapsed into fused run closures, and
#: ``spec_folds`` compile-time folds performed by specialised lowerings.
PLAN_STATS = _obs_metrics.counter_group(
    "plan_cache",
    {
        "hits": 0,
        "misses": 0,
        "specialized_hits": 0,
        "promotions": 0,
        "evictions": 0,
        "fused_stms": 0,
        "spec_folds": 0,
    },
)

#: Per-emitter construction counters (``plans`` built, ``emit_s`` wall-clock
#: spent lowering+emitting; the codegen emitter adds ``code_objects``,
#: ``source_bytes`` and ``compile_s``).  Mutated under ``_LOCK``; snapshot
#: via ``plan_cache_stats()["emitters"]``; reset by ``clear_plan_cache``.
EMITTER_STATS: Dict[str, Dict[str, object]] = {}

#: Tier 1: shape-generic plans keyed by ``(ir_hash(fun), backend, emitter,
#: rank/dtype signature, batched flags)``.  Tier 2: specialised plans keyed
#: by the full concrete ``(shape, dtype)`` signature.  ``_PROMO`` counts
#: tier-1 hits per concrete signature, driving promotion; its entries are
#: ``(count, threshold)`` pairs.  Content-hash keys make entries shareable
#: across alpha-equivalent ``Fun`` objects (and immune to id recycling —
#: the old identity-keyed soundness argument is gone entirely).  All three
#: are mutated only under ``_LOCK`` together with the stats dicts (shard
#: thread mode resolves plans from pool workers).
_GENERIC = BoundedLRU()
_SPECIAL = BoundedLRU()
_PROMO = BoundedLRU()
_LOCK = threading.RLock()
_MISS = object()

_DEFAULT_CACHE_SIZE = 512


def specialize_enabled() -> bool:
    """Whether tier-2 specialisation is on (``REPRO_PLAN_SPECIALIZE``,
    default on; ``0``/``off``/``false``/``no`` disable)."""
    return os.environ.get("REPRO_PLAN_SPECIALIZE", "1").lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def _specialize_after() -> int:
    """Tier-1 hits on one concrete signature before promotion
    (``REPRO_PLAN_SPECIALIZE_AFTER``, default 2, min 1)."""
    return max(1, env_capacity("REPRO_PLAN_SPECIALIZE_AFTER", 2))


def _payload_shapes(args: Sequence[object], batched) -> list:
    """Concrete payload shapes (batch axis stripped from flagged args)."""
    flags = tuple(bool(f) for f in batched) if batched is not None else (False,) * len(args)
    out = []
    for a, f in zip(args, flags):
        s = np.asarray(a).shape
        out.append(tuple(s[1:]) if f else tuple(s))
    return out


def _promo_threshold(fun: Fun, args, batched) -> Optional[int]:
    """Tier-1 hit count at which this signature gets promoted.

    ``REPRO_PLAN_SPECIALIZE_AFTER`` in the environment overrides with the
    old bare counter; otherwise the threshold is derived from the static
    cost model (``ir.cost_model.promotion_threshold``): the smallest hit
    count whose predicted per-call specialisation savings amortise the
    estimated re-lowering cost — signatures whose shapes admit *no*
    compile-time folds are never promoted (``None``)."""
    if "REPRO_PLAN_SPECIALIZE_AFTER" in os.environ:
        return _specialize_after()
    from ..ir.cost_model import promotion_threshold

    return promotion_threshold(fun, _payload_shapes(args, batched))


def _sig_of(args: Sequence[object]) -> tuple:
    """The concrete (tier-2) signature: per-arg shape and dtype."""
    sig = []
    for a in args:
        arr = np.asarray(a)
        sig.append((arr.shape, arr.dtype.str))
    return tuple(sig)


def _generic_sig_of(args: Sequence[object]) -> tuple:
    """The generic (tier-1) signature: per-arg rank and dtype — concrete
    extents dropped, so a D0→D6 shape sweep shares one entry."""
    sig = []
    for a in args:
        arr = np.asarray(a)
        sig.append((arr.ndim, arr.dtype.str))
    return tuple(sig)


def plan_for(
    fun: Fun,
    args: Sequence[object],
    batched: Optional[Sequence[bool]] = None,
    backend: str = "plan",
    emitter: Optional[str] = None,
):
    """The cached plan for ``fun`` given ``args``' shapes/dtypes — two tiers.

    **Tier 1 (generic):** keyed by ``(ir_hash(fun), backend, emitter,
    rank/dtype signature, batched flags)`` — the content hash shares one
    lowering across alpha-equivalent ``Fun`` bodies, and concrete extents
    are *not* part of the key, so sweeping a problem-size axis (GMM D0→D6,
    BA camera counts, shard chunk extents) re-uses one lowering instead of
    re-lowering and evicting per shape.  The ``backend``/``emitter``
    dimensions keep entries lowered on behalf of different executors apart
    (shard chunk plans and codegen code objects can never collide with
    plain plan-backend entries for the same ``Fun``).

    **Tier 2 (specialised, ``REPRO_PLAN_SPECIALIZE``):** after a concrete
    ``(shape, dtype)`` signature scores ``REPRO_PLAN_SPECIALIZE_AFTER``
    tier-1 hits, it is promoted: a plan is re-lowered with the signature's
    static facts folded in (``Size`` constants, prebuilt iotas, extent-picked
    reduce strategies — see ``exec/lower.py``) and served for that exact
    signature from then on.  Promotion is a pure optimisation: specialised
    and generic plans agree bitwise.

    ``emitter`` picks how the lowered IR executes — ``"plan"`` (closure
    interpreter, the default) or ``"codegen"`` (compiled source); it
    defaults to ``"codegen"`` when ``backend="codegen"``.  Both tiers are
    LRUs bounded by ``REPRO_PLAN_CACHE_SIZE`` entries each (default 512,
    ``0`` unbounded) and entries never go stale (``Fun`` is immutable).
    The whole lookup — cache mutation, counters, and any lowering — runs
    under one re-entrant lock, so concurrent shard workers can never
    corrupt the LRU order or lose stat increments (and a plan is lowered
    once, not once per racing thread).
    """
    if emitter is None:
        if backend == "codegen":
            emitter = "codegen"
        elif profile_enabled():
            emitter = "profile"
        else:
            emitter = "plan"
    build = _resolve_emitter(emitter)
    flags = tuple(batched) if batched is not None else None
    base = (ir_hash(fun), backend, emitter, flags)
    gkey = base + (_generic_sig_of(args),)
    cap = env_capacity("REPRO_PLAN_CACHE_SIZE", _DEFAULT_CACHE_SIZE)
    with _LOCK:
        plan = _GENERIC.get(gkey, _MISS)
        if plan is _MISS:
            PLAN_STATS["misses"] += 1
            plan = build(fun)
            PLAN_STATS["evictions"] += _GENERIC.put(gkey, plan, cap)
            return plan
        skey = base + (_sig_of(args),)
        sp = _SPECIAL.get(skey, _MISS)
        if sp is not _MISS:
            PLAN_STATS["specialized_hits"] += 1
            return sp
        PLAN_STATS["hits"] += 1
        if specialize_enabled():
            ent = _PROMO.get(skey)
            if ent is not None:
                n, thr = ent[0] + 1, ent[1]
            else:
                # First tier-1 hit of this signature: derive (and memoise)
                # its promotion threshold from the cost model — the
                # amortisation estimate runs once per signature, not per hit.
                n, thr = 1, _promo_threshold(fun, args, batched)
            _PROMO.put(skey, (n, thr), cap * 8 if cap > 0 else 0)
            if thr is not None and n >= thr:
                with _span("promote", cat="compile", fun=fun.name, emitter=emitter):
                    sp = _specialized_build(build, fun, args, batched)
                PLAN_STATS["promotions"] += 1
                PLAN_STATS["evictions"] += _SPECIAL.put(skey, sp, cap)
                return sp
        return plan


def plan_cache_stats() -> Dict[str, object]:
    """A snapshot of the cache counters plus the current entry counts
    (``entries`` — generic tier, ``specialized_entries`` — specialised) and
    the per-emitter construction breakdown (``emitters``)."""
    from ..ir.verify import verify_mode, VERIFY_STATS

    with _LOCK:
        return {
            **PLAN_STATS,
            "entries": len(_GENERIC),
            "specialized_entries": len(_SPECIAL),
            "emitters": {k: dict(v) for k, v in EMITTER_STATS.items()},
            # Verification is per *lowering*, never per call: cache hits
            # reuse the verified PlanIR, so these counters stand still on
            # the hot path (asserted by the A9 overhead guard).
            "verify": {
                "mode": verify_mode(),
                "plan_checks": VERIFY_STATS["plan_checks"],
                "codegen_checks": VERIFY_STATS["codegen_checks"],
            },
        }


def clear_plan_cache() -> None:
    """Drop every cached plan (both tiers) and reset all counters.

    This clears ``EMITTER_STATS`` too — the per-emitter construction
    totals describe the plans being dropped, so they go with them.  To
    zero the counters while *keeping* cached plans, use
    ``reset_plan_cache_stats``.
    """
    with _LOCK:
        _GENERIC.clear()
        _SPECIAL.clear()
        _PROMO.clear()
        reset_plan_cache_stats()


def reset_plan_cache_stats() -> None:
    """Zero ``PLAN_STATS`` and ``EMITTER_STATS`` without dropping cached
    plans — the ``reset_*`` counterpart of the other stats surfaces,
    registered with ``obs.reset_all()``."""
    with _LOCK:
        PLAN_STATS.reset()
        EMITTER_STATS.clear()


_obs_metrics.register_source("plan_cache", plan_cache_stats, reset_plan_cache_stats)


def run_fun_plan(fun: Fun, args: Sequence[object]) -> Tuple[object, ...]:
    """Evaluate ``fun`` via the (cached) plan backend."""
    return plan_for(fun, args).run(args)


def run_fun_plan_batched(
    fun: Fun, args: Sequence[object], batched: Sequence[bool], batch_size: int
) -> Tuple[object, ...]:
    """Evaluate ``fun`` once with batched arguments via the plan backend."""
    return plan_for(fun, args, batched).run_batched(args, batched, batch_size)
