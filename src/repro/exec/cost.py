"""Work / span / memory cost model.

The paper's evaluation is framed around machine-independent ratios (AD
overhead = differentiated / primal).  We reproduce those with an instrumented
interpretation that counts:

* ``work``  — scalar operations (a bulk op over m elements costs m);
* ``span``  — the work-depth critical path: ``map`` iterations run in
  parallel (max), ``reduce``/``scan`` cost ``O(log n)`` levels of their
  operator, sequential loops sum their iterations;
* ``mem``   — global-memory element traffic (array reads + writes; scalars
  live in registers, which is exactly the locality argument of §4.1);
* ``peak_mem`` — high-water mark of live checkpoint/tape allocations, used by
  the strip-mining ablation.

The recorder is driven by hooks in the reference interpreter.  Frames nest:
a ``par`` frame combines its iterations with max, a ``red(n)`` frame with
``max * ceil(log2 n)`` (a balanced combining tree), a ``seq`` frame adds.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["CostRecorder", "Cost"]


@dataclass
class Cost:
    """An immutable summary of a recorded execution."""

    work: int = 0
    span: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    peak_alloc: int = 0

    @property
    def mem(self) -> int:
        return self.mem_reads + self.mem_writes

    def ratio(self, other: "Cost") -> float:
        """Work ratio self/other — the paper's 'overhead' metric."""
        return self.work / max(other.work, 1)


class _Frame:
    __slots__ = ("mode", "n", "span", "iter_max", "iter_span")

    def __init__(self, mode: str, n: int = 0) -> None:
        self.mode = mode  # 'seq' | 'par' | 'red'
        self.n = n
        self.span = 0  # accumulated sequential span in this frame
        self.iter_max = 0  # max span among completed iterations
        self.iter_span = 0


class CostRecorder:
    """Mutable cost accumulator passed to the interpreter."""

    def __init__(self) -> None:
        self.work = 0
        self.mem_reads = 0
        self.mem_writes = 0
        self.live_alloc = 0
        self.peak_alloc = 0
        self._frames: List[_Frame] = [_Frame("seq")]

    # -- scalar / memory events ------------------------------------------------

    def op(self, count: int = 1, span: int = 1) -> None:
        """``count`` scalar ops executed as one parallel step of depth ``span``."""
        self.work += count
        self._frames[-1].span += span

    def mem(self, reads: int = 0, writes: int = 0) -> None:
        self.mem_reads += reads
        self.mem_writes += writes

    def alloc(self, elems: int) -> None:
        """Tape/checkpoint allocation (tracked for peak footprint)."""
        self.live_alloc += elems
        self.peak_alloc = max(self.peak_alloc, self.live_alloc)

    def free(self, elems: int) -> None:
        self.live_alloc = max(0, self.live_alloc - elems)

    def alloc_mark(self) -> int:
        return self.live_alloc

    def alloc_release(self, mark: int) -> None:
        """Free everything allocated since ``mark`` (loop-iteration scoped:
        checkpoint buffers allocated inside an iteration die with it)."""
        self.live_alloc = min(self.live_alloc, mark)

    # -- structured frames -------------------------------------------------------

    def push(self, mode: str, n: int = 0) -> None:
        self._frames.append(_Frame(mode, n))

    def iter_begin(self) -> None:
        f = self._frames[-1]
        f.iter_span = f.span
        # Iterations of par/red frames each start from the frame's base span.

    def iter_end(self) -> None:
        f = self._frames[-1]
        delta = f.span - f.iter_span
        f.iter_max = max(f.iter_max, delta)
        if f.mode in ("par", "red"):
            f.span = f.iter_span  # parallel iterations don't accumulate

    def pop(self) -> None:
        f = self._frames.pop()
        parent = self._frames[-1]
        if f.mode == "par":
            parent.span += f.span + f.iter_max
        elif f.mode == "red":
            levels = max(1, math.ceil(math.log2(max(f.n, 2))))
            parent.span += f.span + f.iter_max * levels
        else:
            parent.span += f.span

    # -- summary ---------------------------------------------------------------

    def snapshot(self) -> Cost:
        return Cost(
            work=self.work,
            span=self._frames[0].span,
            mem_reads=self.mem_reads,
            mem_writes=self.mem_writes,
            peak_alloc=self.peak_alloc,
        )


class NullRecorder(CostRecorder):
    """Recorder that records nothing (kept API-compatible, near-zero cost)."""

    def op(self, count: int = 1, span: int = 1) -> None:  # noqa: D102
        pass

    def mem(self, reads: int = 0, writes: int = 0) -> None:  # noqa: D102
        pass

    def alloc(self, elems: int) -> None:  # noqa: D102
        pass

    def free(self, elems: int) -> None:  # noqa: D102
        pass

    def alloc_mark(self) -> int:  # noqa: D102
        return 0

    def alloc_release(self, mark: int) -> None:  # noqa: D102
        pass

    def push(self, mode: str, n: int = 0) -> None:  # noqa: D102
        pass

    def iter_begin(self) -> None:  # noqa: D102
        pass

    def iter_end(self) -> None:  # noqa: D102
        pass

    def pop(self) -> None:  # noqa: D102
        pass
