"""NumPy implementations of the scalar primitives.

All primitives are elementwise and rank-polymorphic (NumPy broadcasting), so
the same table serves the reference interpreter (on scalars) and the
vectorised interpreter (on whole batches).
"""
from __future__ import annotations

import numpy as np

try:  # scipy is available in this environment, but keep a fallback.
    from scipy.special import erf as _erf
except Exception:  # pragma: no cover
    _vec_erf = np.vectorize(__import__("math").erf)

    def _erf(x):
        return _vec_erf(x)

from ..util import ExecError

__all__ = ["apply_unop", "apply_binop", "cast_to", "NEUTRAL"]


def _sigmoid(x):
    # Numerically-stable logistic.
    return 0.5 * (np.tanh(np.asarray(x) * 0.5) + 1.0)


_UNOPS = {
    "neg": np.negative,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "sgn": np.sign,
    "not": np.logical_not,
    "tanh": np.tanh,
    "sigmoid": _sigmoid,
    "floor": np.floor,
    "erf": _erf,
}


def _div(x, y):
    # Integer division is Futhark-style truncating-toward-negative-infinity
    # (NumPy floor division); float division is true division.
    if np.issubdtype(np.asarray(x).dtype, np.integer):
        return x // y
    return x / y


_BINOPS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": _div,
    "pow": np.power,
    "min": np.minimum,
    "max": np.maximum,
    "and": np.logical_and,
    "or": np.logical_or,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
    "mod": np.mod,
}

#: Neutral elements for the specialisable commutative operators (used by the
#: reduce/scan/hist rules and by predication in the vectorised interpreter).
NEUTRAL = {
    "add": 0,
    "mul": 1,
    "min": np.inf,
    "max": -np.inf,
}


def apply_unop(op: str, x):
    try:
        f = _UNOPS[op]
    except KeyError:
        raise ExecError(f"unknown unary op {op!r}") from None
    return f(x)


def apply_binop(op: str, x, y):
    try:
        f = _BINOPS[op]
    except KeyError:
        raise ExecError(f"unknown binary op {op!r}") from None
    return f(x, y)


def cast_to(x, dtype):
    x = np.asarray(x)
    return x.astype(dtype)
