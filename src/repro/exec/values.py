"""Runtime value helpers shared by the executors.

Values are NumPy scalars (rank 0) or ``np.ndarray``s; accumulators are the
``AccVal`` wrapper around a mutable buffer.  ``coerce_arg``/``check_value``
bridge between user-supplied Python values and typed IR values.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..ir.types import ArrayType, Scalar, Type, np_dtype, rank_of
from ..util import ExecError

__all__ = [
    "AccVal",
    "coerce_arg",
    "check_value",
    "zeros_of",
    "scalar_value",
    "WHILE_FUEL",
]

#: Iteration budget for ``WhileLoop`` execution, shared by every backend
#: (reference, vectorised, plan).  A loop that runs this many iterations is
#: assumed divergent and aborted with an ``ExecError`` naming the budget.
#: Mutable configuration knob: executors read it at call time, so tests (or
#: callers with genuinely longer-running loops) may rebind
#: ``repro.exec.values.WHILE_FUEL``.
WHILE_FUEL: int = 10_000_000


@dataclass
class AccVal:
    """A mutable accumulator buffer (reference interpreter).

    The paper's accumulators have no runtime representation; operationally an
    ``upd`` is an (atomic) in-place addition on the underlying array.  We
    model exactly that: ``WithAcc`` copies the source array once, ``UpdAcc``
    mutates the buffer, and the final unwrap returns the buffer.
    """

    buf: np.ndarray


def coerce_arg(value, ty: Type):
    """Coerce a user-supplied value to the runtime representation of ``ty``."""
    dt = np_dtype(ty)
    rank = rank_of(ty)
    arr = np.asarray(value)
    if arr.ndim != rank:
        raise ExecError(f"argument rank {arr.ndim} does not match type {ty}")
    if rank == 0:
        return arr.astype(dt)[()]
    return np.ascontiguousarray(arr, dtype=dt)


def check_value(value, ty: Type, what: str = "value") -> None:
    """Cheap structural check that a runtime value inhabits ``ty``."""
    rank = rank_of(ty)
    if isinstance(value, AccVal):
        raise ExecError(f"{what}: accumulator escaped")
    nd = np.asarray(value).ndim
    if nd != rank:
        raise ExecError(f"{what}: rank {nd} does not match type {ty}")


def zeros_of(like):
    """A zero with the shape/dtype of ``like`` (adjoint seed)."""
    a = np.asarray(like)
    if a.ndim == 0:
        return a.dtype.type(0)
    return np.zeros_like(a)


def scalar_value(x) -> object:
    """Extract a Python scalar from a rank-0 value (for trip counts etc.)."""
    return np.asarray(x)[()]
