"""Sharded parallel executor — the ``parallel`` schedule directive's runtime.

The plan backend (``exec/plan.py``) runs a whole program as one sequence of
NumPy closures — fast, but single-threaded: one ufunc loop at a time.  This
module is the multi-core layer above it, realising the ``parallel``
directive of the schedule IR (``ir/schedule.py``): the leading axis of the
program's dominant data-parallel SOAC becomes a *parallel* loop over a
persistent worker pool, and each chunk still executes as bulk *vectorized*
plan code — the ``parallel(w)·vectorized`` split of JAX's ``gmap``.

Execution model
---------------

``run_fun_shard(fun, args)`` consults the schedule-legality analysis
(``ir.analysis.parallel_split``, memoised per function).  An explicit
``parallel`` directive on a statement (attached via ``schedule=`` or
``REPRO_SCHEDULE``) pins the split point and — when it names a worker
count — the pool size for that call; otherwise the heaviest legal
statement is chosen by estimated work:

* **shardable** — the body splits into prefix / shard point / suffix.  The
  prefix runs once in the parent (plan backend); the shard point's input
  arrays are partitioned along the leading axis into worker-count-independent
  chunks; each chunk executes the pre-lowered chunk plan on the pool; the
  chunk results are recombined (concatenation for a ``map`` shard point, one
  associative combine for a ``reduce``/redomap) and the suffix runs once in
  the parent.  Chunk boundaries depend only on the extent, the static cost
  estimate of the shard point (each chunk targets ~``REPRO_COST_TASK_GRAIN``
  estimated work; ``REPRO_SHARD_MIN_CHUNK`` overrides with a fixed floor)
  and the env knobs — *never* on the worker count — so results are
  identical at 1 and N workers.
* **not shardable** (scans, data-dependent loops, scalar programs, extents
  below the derived/overridden chunk floor) — falls back to the plan
  backend, counted in ``shard_stats()["fallback_calls"]``.

``run_fun_shard_batched`` shards the *batch* axis of a batched multi-seed
call instead — no analysis needed, the axis is parallel by construction.
This is how sharding composes with batched AD: ``jacobian``'s stacked basis
seeds become the shard axis, so multi-seed forward/reverse passes (GMM, BA,
HAND) spread across workers.

Workers
-------

``REPRO_SHARD_WORKERS`` (default: the machine's CPU count) sizes a lazy,
persistent pool; ``REPRO_SHARD_MODE`` selects it:

* ``thread`` (default) — a ``ThreadPoolExecutor``.  Chunk inputs are
  zero-copy NumPy views of the parent's arrays (outputs are fresh per-chunk
  arrays the parent recombines by concatenation), and NumPy releases the
  GIL inside the bulk ufunc loops where the time goes.  Each worker
  resolves its chunk plan through the (thread-safe) two-tier plan cache:
  chunks of every extent share one tier-1 shape-generic lowering, and hot
  chunk-extent buckets are promoted to tier-2 specialised plans —
  ``Plan.run`` keeps all mutable state per call, so concurrent runs are
  safe.  ``REPRO_SHARD_EMITTER`` (``plan``/``codegen``) selects which
  plan-family emitter chunks compile with; unset, chunks run codegen-
  compiled exactly when the session backend is ``codegen``.
* ``process`` — a spawn-based ``ProcessPoolExecutor`` for workloads whose
  Python-side dispatch would serialise on the GIL.  ndarray inputs/outputs
  travel through ``multiprocessing.shared_memory`` segments (pickled inline
  below ``REPRO_SHARD_SHM_MIN`` bytes); each worker caches built plans by
  the dispatched program's ``ir_hash`` so a function ships per call but is
  built once per worker.  With ``REPRO_SHARD_EMITTER=codegen`` (or a
  ``codegen`` session backend) the parent ships generated source plus the
  injected constants instead of pickled IR, and workers ``compile()`` it
  (``exec/codegen.py``'s ``ShippedCodegenPlan``).  A pool-infrastructure
  failure (a broken worker, spawn unavailable, an unpicklable environment)
  is counted in ``shard_stats()["pool_errors"]`` and degrades the call to
  the thread path (serial in-process when one worker is configured) — but
  the degradation is *bounded*, not sticky: after
  ``REPRO_SHARD_RETRY_AFTER`` degraded calls (the interval doubling on
  each consecutive failure, capped at 8x) the pool is re-probed, and
  ``reset_shard_degradation()`` re-arms it immediately.  Errors a chunk
  program actually raised propagate unchanged.

``shard_stats()`` mirrors ``plan_cache_stats()``: call/chunk/fallback/pool
counters (including degraded-call and retry counts) plus the configured
workers, mode and live degradation flag; ``reset_shard_stats()``,
``reset_shard_degradation()`` and ``shutdown_shard_pool()`` are the test
hooks.
"""
from __future__ import annotations

import atexit
import math
import os
import pickle
import threading
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.analysis import ParallelSplit, ir_hash, parallel_split
from ..ir.ast import Fun
from ..ir.cost_model import soac_elem_cost, task_grain
from ..obs import metrics as _obs_metrics, tracing as _obs_tracing
from ..util import BoundedLRU, ReproError, env_capacity
from .plan import Plan, plan_for, profile_enabled, run_fun_plan, run_fun_plan_batched
from .vector import _UFUNC

__all__ = [
    "run_fun_shard",
    "run_fun_shard_batched",
    "SHARD_STATS",
    "shard_stats",
    "reset_shard_stats",
    "reset_shard_degradation",
    "shard_workers",
    "shard_mode",
    "shutdown_shard_pool",
]


# ---------------------------------------------------------------------------
# Configuration (read per call so tests/benchmarks can flip env vars)
# ---------------------------------------------------------------------------


def shard_workers() -> int:
    """Worker-pool size: ``REPRO_SHARD_WORKERS`` or the CPU count."""
    try:
        w = int(os.environ.get("REPRO_SHARD_WORKERS", os.cpu_count() or 1))
    except ValueError:
        w = os.cpu_count() or 1
    return max(1, w)


def shard_mode() -> str:
    """``REPRO_SHARD_MODE``: ``thread`` (default) or ``process``."""
    mode = os.environ.get("REPRO_SHARD_MODE", "thread")
    return mode if mode in ("thread", "process") else "thread"


def _min_chunk() -> int:
    """Smallest worthwhile chunk extent (``REPRO_SHARD_MIN_CHUNK``).

    With the cost model in charge this knob is an *override*: when the env
    var is set, chunk counts derive from it exactly as before the model
    existed; when unset, ``_chunk_bounds`` derives the chunk size from the
    estimated per-element cost of the shard point instead.
    """
    return max(1, env_capacity("REPRO_SHARD_MIN_CHUNK", 1024))


def _min_chunk_overridden() -> bool:
    return "REPRO_SHARD_MIN_CHUNK" in os.environ


def _max_tasks() -> int:
    """Chunk-count ceiling per call (``REPRO_SHARD_MAX_TASKS``)."""
    return max(1, env_capacity("REPRO_SHARD_MAX_TASKS", 16))


def _shm_min() -> int:
    """Bytes below which process-mode values travel by pickle, not shm."""
    return env_capacity("REPRO_SHARD_SHM_MIN", 16384)


def _chunk_emitter() -> str:
    """Which plan-family emitter shard chunks compile with.

    ``REPRO_SHARD_EMITTER`` picks explicitly (``plan`` or ``codegen``);
    unset, chunks follow the session default — codegen-compiled when the
    session backend is ``codegen``, profile-instrumented when
    ``REPRO_PROFILE`` is on (so sharded execute time stays attributed),
    closure plans otherwise.  Process-mode workers honour ``codegen`` by
    compiling shipped generated source (``exec/codegen.py``'s
    ``ShippedCodegenPlan`` — closure code objects do not pickle, source
    text does); the ``profile`` emitter is thread-side only, so process
    workers map it to plain ``Plan``s.
    """
    em = os.environ.get("REPRO_SHARD_EMITTER")
    if em is not None:
        if em not in ("plan", "codegen"):
            raise ReproError(
                f"REPRO_SHARD_EMITTER={em!r}: expected 'plan' or 'codegen'"
            )
        return em
    if os.environ.get("REPRO_BACKEND") == "codegen":
        return "codegen"
    return "profile" if profile_enabled() else "plan"


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

#: Counters mirroring ``plan_cache_stats``: sharded/batched/fallback call
#: counts, total dispatched chunks, pool (re)builds, infrastructure
#: failures, and process-degradation bookkeeping (calls served by the
#: thread path while degraded; pool re-probe attempts).  ``shard_stats()``
#: adds the live worker/mode/degradation configuration.
SHARD_STATS = _obs_metrics.counter_group(
    "shard",
    {
        "sharded_calls": 0,
        "batched_calls": 0,
        "fallback_calls": 0,
        "chunks": 0,
        "pool_builds": 0,
        "pool_errors": 0,
        "process_degraded_calls": 0,
        "process_retries": 0,
    },
)

_span = _obs_tracing.span


def shard_stats() -> Dict[str, object]:
    """A snapshot of the shard counters plus the current configuration."""
    return {
        **SHARD_STATS,
        "workers": shard_workers(),
        "mode": shard_mode(),
        "process_degraded": _DEGRADED,
        "analysis_entries": len(_SPLITS),
    }


def reset_shard_stats() -> None:
    """Zero every counter (configuration values are env-derived, untouched)
    and re-arm process mode after a pool failure."""
    SHARD_STATS.reset()
    reset_shard_degradation()


_obs_metrics.register_source("shard", shard_stats, reset_shard_stats)


# ---------------------------------------------------------------------------
# Shardability memo
# ---------------------------------------------------------------------------

_SPLITS = BoundedLRU()
_SPLITS_CAP = 1024


def _split_for(fun: Fun) -> Tuple[Optional[ParallelSplit], Optional[float]]:
    """``(parallel_split(fun), estimated per-element cost of the split
    point)``, memoised by identity.  The element cost drives
    ``_chunk_bounds``' derived chunk sizing; it is computed once per
    function, not per call."""
    ent = _SPLITS.get(id(fun))
    if ent is not None and ent[0] is fun:
        return ent[1], ent[2]
    split = parallel_split(fun)
    elem_cost = None
    if split is not None:
        elem_cost = soac_elem_cost(split.chunk_fun.body.stms[0].exp)
    _SPLITS.put(id(fun), (fun, split, elem_cost), _SPLITS_CAP)
    return split, elem_cost


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------

_POOL = None
_POOL_KEY = None
_POOL_LOCK = threading.Lock()

#: Bounded degrade: once the process pool proves broken (spawn unavailable,
#: unpicklable environment), later calls go straight to the thread path
#: instead of paying a doomed pool construction per call — but not forever.
#: After ``REPRO_SHARD_RETRY_AFTER`` degraded calls (the interval doubling
#: on each consecutive failure, capped at 8x) the next call re-probes the
#: pool; ``reset_shard_degradation()`` re-arms it immediately.
_DEGRADE_LOCK = threading.Lock()
_DEGRADED = False
_DEGRADED_CALLS = 0
_RETRY_AT = 0
_RETRY_BACKOFF = 0


def _retry_after() -> int:
    """Degraded calls before process mode is re-probed
    (``REPRO_SHARD_RETRY_AFTER``)."""
    return max(1, env_capacity("REPRO_SHARD_RETRY_AFTER", 64))


def reset_shard_degradation() -> None:
    """Forget a process-pool failure: the next process-mode call probes the
    pool again, with the retry backoff reset (also invoked by
    ``reset_shard_stats``)."""
    global _DEGRADED, _DEGRADED_CALLS, _RETRY_AT, _RETRY_BACKOFF
    with _DEGRADE_LOCK:
        _DEGRADED = False
        _DEGRADED_CALLS = 0
        _RETRY_AT = 0
        _RETRY_BACKOFF = 0


def _process_degraded() -> bool:
    """True while this call should skip the process pool.

    Counts the calls served by the thread path while degraded; once the
    backoff interval has elapsed, the next call re-probes the pool
    (returns False once, counted as a retry)."""
    global _DEGRADED, _DEGRADED_CALLS
    with _DEGRADE_LOCK:
        if not _DEGRADED:
            return False
        _DEGRADED_CALLS += 1
        SHARD_STATS["process_degraded_calls"] += 1
        if _DEGRADED_CALLS >= _RETRY_AT:
            SHARD_STATS["process_retries"] += 1
            _DEGRADED = False
            _DEGRADED_CALLS = 0
            return False
        return True


def _degrade_process() -> None:
    global _DEGRADED, _DEGRADED_CALLS, _RETRY_AT, _RETRY_BACKOFF
    with _DEGRADE_LOCK:
        _DEGRADED = True
        _DEGRADED_CALLS = 0
        _RETRY_BACKOFF = min(_RETRY_BACKOFF + 1, 4)
        _RETRY_AT = _retry_after() * (2 ** (_RETRY_BACKOFF - 1))


def _note_process_ok() -> None:
    global _DEGRADED, _DEGRADED_CALLS, _RETRY_AT, _RETRY_BACKOFF
    with _DEGRADE_LOCK:
        _DEGRADED = False
        _DEGRADED_CALLS = 0
        _RETRY_AT = 0
        _RETRY_BACKOFF = 0


def _get_pool(mode: str, workers: int):
    """The pool for ``(mode, workers)``, built/replaced under a lock so
    concurrent shard calls cannot race construction against teardown and
    leak an executor.  A caller can still lose its pool to a concurrent
    reconfiguration between lookup and submit — submission sites treat the
    resulting RuntimeError as 'run this call in-process' rather than an
    error (correctness never depends on the pool)."""
    global _POOL, _POOL_KEY
    key = (mode, workers)
    with _POOL_LOCK:
        if _POOL is not None and _POOL_KEY == key:
            return _POOL
        _shutdown_pool_locked()
        if mode == "process":
            import multiprocessing as mp

            _POOL = ProcessPoolExecutor(
                max_workers=workers, mp_context=mp.get_context("spawn")
            )
        else:
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
        _POOL_KEY = key
        SHARD_STATS["pool_builds"] += 1
        return _POOL


def _shutdown_pool_locked() -> None:
    global _POOL, _POOL_KEY
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_KEY = None


def shutdown_shard_pool() -> None:
    """Tear down the worker pool (it is rebuilt lazily on next use)."""
    with _POOL_LOCK:
        _shutdown_pool_locked()


atexit.register(shutdown_shard_pool)


# ---------------------------------------------------------------------------
# Chunking
# ---------------------------------------------------------------------------


def _edges(n: int, nchunks: int) -> List[Tuple[int, int]]:
    """Near-even ``[lo, hi)`` bounds covering ``[0, n)`` — at most
    ``nchunks`` of them, and never an empty chunk: a ``(k, k)`` chunk would
    do no map work but *would* contribute a spurious neutral-element
    partial to the reduce kind's fixed combine tree (``linspace`` emits
    such duplicates whenever ``nchunks > n``)."""
    nchunks = max(1, min(nchunks, n)) if n > 0 else 1
    edges = np.linspace(0, n, nchunks + 1).astype(np.int64)
    return [
        (int(edges[i]), int(edges[i + 1]))
        for i in range(nchunks)
        if edges[i + 1] > edges[i]
    ] or [(0, n)]


def _chunk_bounds(n: int, elem_cost: Optional[float] = None) -> List[Tuple[int, int]]:
    """Chunk bounds for a shard extent of ``n``.

    Depends only on ``n``, the estimated per-element cost of the shard
    point, and the env knobs — never on the worker count — which is what
    makes sharded results identical at 1 and N workers even for the reduce
    kind (the partial-combine tree is fixed).

    The chunk count is derived from the cost model: each chunk should carry
    roughly ``REPRO_COST_TASK_GRAIN`` work+traffic units
    (``ir.cost_model.task_grain``), so statement-heavy shard points split
    into more, smaller chunks than trivial maps at the same extent.
    Setting ``REPRO_SHARD_MIN_CHUNK`` overrides the derivation with the old
    fixed-extent floor; ``REPRO_SHARD_MAX_TASKS`` caps the count either
    way.  ``n == 0`` yields one empty chunk (run in-process by the
    dispatcher); ``n > 0`` never yields an empty chunk.
    """
    if n <= 0:
        return [(0, n)]
    if elem_cost is not None and not _min_chunk_overridden():
        per = max(1, int(math.ceil(task_grain() / max(elem_cost, 1.0))))
        nchunks = n // per
    else:
        nchunks = n // _min_chunk()
    nchunks = min(_max_tasks(), nchunks, n)
    if nchunks <= 1:
        return [(0, n)]
    return _edges(n, nchunks)


# ---------------------------------------------------------------------------
# Process-mode plumbing (shared-memory transport + worker-side plan cache)
# ---------------------------------------------------------------------------


def _new_segment(arr: np.ndarray):
    """Copy ``arr`` into a fresh shared-memory segment.

    Returns ``(shm handle, wire spec)`` — the one place the wire format for
    ``_decode_arg``/``_decode_result`` is produced, shared by both transport
    directions (parent→worker inputs and worker→parent outputs).
    """
    from multiprocessing import shared_memory

    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
    np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[...] = arr
    return shm, ("shm", shm.name, arr.shape, arr.dtype.str)


def _shm_export(arr: np.ndarray, holds: list):
    """Parent-side export: the handle is appended to ``holds`` so the caller
    closes and unlinks every segment once all futures have resolved."""
    shm, spec = _new_segment(arr)
    holds.append(shm)
    return spec


def _encode_arg(a, memo: dict, holds: list):
    """Value -> wire spec.  ndarrays above the shm threshold go through
    shared memory (deduplicated by object identity, so a broadcast argument
    is exported once per call, not once per chunk)."""
    if isinstance(a, np.ndarray) and a.nbytes >= max(1, _shm_min()):
        spec = memo.get(id(a))
        if spec is None:
            spec = _shm_export(a, holds)
            memo[id(a)] = spec
        return spec
    return ("raw", a)


#: Worker-side cache of built plans, keyed ``f"{ir_hash(fun)}:{kind}"`` —
#: the dispatched program's content hash (schedule bytes included) plus the
#: plan kind, so a worker-lowered ``Plan`` and a codegen-shipped build of
#: the same program never collide.  A true LRU (shared ``util.BoundedLRU``,
#: like every other cache in the system) so a long session cycling through
#: many functions evicts cold plans one at a time instead of wiping the
#: hot set.
_WORKER_PLANS = BoundedLRU()
_WORKER_PLANS_CAP = 128


def _decode_arg(spec, opened: list):
    tag = spec[0]
    if tag == "raw":
        return spec[1]
    from multiprocessing import shared_memory

    # NB: attaching registers with the resource tracker on 3.8-3.12, but
    # spawn children share the parent's tracker process and its cache is a
    # set, so the duplicate registration is harmless: each segment is
    # unlinked (and so unregistered) exactly once by its final owner.
    _, name, shape, dtype = spec
    shm = shared_memory.SharedMemory(name=name)
    opened.append(shm)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


def _encode_result(r):
    arr = np.asarray(r)
    if arr.nbytes >= max(1, _shm_min()) and arr.ndim:
        # Ownership passes to the parent, which attaches, copies out, and
        # unlinks; the shared resource tracker sees one register (deduped
        # across processes) and one unregister via that unlink.
        shm, spec = _new_segment(arr)
        shm.close()
        return spec
    return ("raw", r)


def _process_task(payload):
    """Worker entry: decode args, run the (cached) plan, encode results.

    ``kind`` selects how the blob becomes a runnable plan: ``"plan"`` ships
    pickled IR and lowers worker-side; ``"codegen"`` ships generated source
    plus injected constants and ``compile()``s it — no IR, no lowering."""
    key, kind, blob, specs, batched, batch_n = payload
    plan = _WORKER_PLANS.get(key)
    if plan is None:
        if kind == "codegen":
            from .codegen import ShippedCodegenPlan

            plan = ShippedCodegenPlan(blob)
        else:
            plan = Plan(pickle.loads(blob))
        _WORKER_PLANS.put(key, plan, _WORKER_PLANS_CAP)
    opened: list = []
    try:
        args = [_decode_arg(s, opened) for s in specs]
        if batched is None:
            res = plan.run(args)
        else:
            res = plan.run_batched(args, batched, batch_n)
        out = []
        try:
            for r in res:
                out.append(_encode_result(r))
        except BaseException:
            # A half-encoded result set would leak its segments: the parent
            # never learns their names.  Unlink what was already exported.
            from multiprocessing import shared_memory

            for spec in out:
                if spec[0] == "shm":
                    try:
                        seg = shared_memory.SharedMemory(name=spec[1])
                        seg.close()
                        seg.unlink()
                    except Exception:
                        pass
            raise
        return out
    finally:
        for shm in opened:
            shm.close()


def _decode_result(spec):
    if spec[0] == "raw":
        return spec[1]
    from multiprocessing import shared_memory

    _, name, shape, dtype = spec
    shm = shared_memory.SharedMemory(name=name)
    out = np.array(np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf))
    shm.close()
    shm.unlink()
    return out


def _shm_spec_bytes(specs) -> int:
    """Shared-memory bytes a chunk's wire specs reference (the shipped
    volume; broadcast segments are deduplicated across chunks by
    ``_encode_arg`` but each chunk still maps and reads them)."""
    total = 0
    for s in specs:
        if s[0] == "shm":
            _, _, shape, dtype = s
            total += int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
    return total


def _dispatch_process(
    fun: Fun,
    arg_lists: Sequence[Sequence[object]],
    batched,
    batch_ns,
    workers: int,
    bounds=None,
    schedule: str = "",
):
    pool = _get_pool("process", workers)
    kind = "codegen" if _chunk_emitter() == "codegen" else "plan"
    if kind == "codegen":
        from .codegen import codegen_payload

        blob = codegen_payload(fun)
    else:
        blob = pickle.dumps(fun)
    key = f"{ir_hash(fun)}:{kind}"
    memo: dict = {}
    holds: list = []
    try:
        futs = []
        for i, args in enumerate(arg_lists):
            specs = [_encode_arg(a, memo, holds) for a in args]
            # The span covers encode+submit (worker compute is not
            # parent-visible); its payload — chunk extent and shm bytes
            # shipped — is what chunk-placement analysis needs.
            with _span(
                "shard:chunk",
                cat="shard",
                fun=fun.name,
                mode="process",
                chunk=i,
                extent=(bounds[i][1] - bounds[i][0]) if bounds is not None else None,
                bytes=_shm_spec_bytes(specs),
                schedule=schedule or None,
            ):
                futs.append(
                    pool.submit(
                        _process_task,
                        (
                            key,
                            kind,
                            blob,
                            specs,
                            batched,
                            batch_ns[i] if batch_ns is not None else None,
                        ),
                    )
                )
        results = []
        err = None
        for f in futs:
            try:
                specs = f.result()
            except BaseException as e:  # drain the rest before raising
                if err is None:
                    err = e
                continue
            if err is None:
                results.append(tuple(_decode_result(s) for s in specs))
            else:
                for s in specs:  # orphaned outputs of post-failure chunks
                    if s[0] == "shm":
                        try:
                            _decode_result(s)
                        except Exception:
                            pass
        if err is not None:
            raise err
        return results
    finally:
        for shm in holds:
            shm.close()
            shm.unlink()


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def _dispatch(
    fun: Fun,
    arg_lists: Sequence[Sequence[object]],
    batched=None,
    batch_ns=None,
    bounds=None,
    workers: Optional[int] = None,
    schedule: str = "",
) -> List[Tuple[object, ...]]:
    """Run ``fun`` over every chunk argument list, in order.

    ``workers`` overrides the env-derived pool size (an explicit
    ``parallel(w)`` directive); ``schedule`` is the active schedule string
    stamped on every ``shard:chunk`` span.

    Thread mode (and the in-process fallback for a broken process pool)
    resolves the chunk plan *per chunk* through the two-tier plan cache —
    chunks of every extent share one tier-1 generic entry (which retired
    this module's former private plan-sharing), and hot chunk-extent
    buckets get promoted to tier-2 specialised plans (``plan_for`` is
    thread-safe, so pool workers resolve concurrently).  Process mode ships
    the pickled ``Fun`` plus shm descriptors to ``_process_task``.  Results
    always come back in chunk order.
    """
    workers = workers or shard_workers()
    SHARD_STATS["chunks"] += len(arg_lists)
    if shard_mode() == "process" and not _process_degraded():
        try:
            res = _dispatch_process(
                fun, arg_lists, batched, batch_ns, workers,
                bounds=bounds, schedule=schedule,
            )
            _note_process_ok()
            return res
        except (
            BrokenExecutor,
            CancelledError,
            RuntimeError,
            OSError,
            ImportError,
            pickle.PicklingError,
        ):
            # Pool-infrastructure failure (spawn unavailable, broken worker,
            # unpicklable environment): degrade to the thread path below.
            # Program-level errors — ReproError and anything else a chunk
            # actually raised — propagate unchanged.
            SHARD_STATS["pool_errors"] += 1
            shutdown_shard_pool()
            _degrade_process()

    emitter = _chunk_emitter()

    def run_chunk(i, args, bn=None):
        extent = bounds[i][1] - bounds[i][0] if bounds is not None else bn
        # Runs on the pool worker, so the span's tid/worker name attribute
        # the chunk to the thread that actually executed it.
        with _span(
            "shard:chunk",
            cat="shard",
            fun=fun.name,
            mode="thread",
            chunk=i,
            extent=extent,
            worker=threading.current_thread().name,
            schedule=schedule or None,
        ):
            plan = plan_for(fun, args, batched, backend="shard", emitter=emitter)
            if batched is None:
                return plan.run(args)
            return plan.run_batched(args, batched, bn)

    def serially():
        if batched is None:
            return [run_chunk(i, args) for i, args in enumerate(arg_lists)]
        return [run_chunk(i, args, batch_ns[i]) for i, args in enumerate(arg_lists)]

    if workers <= 1 or len(arg_lists) <= 1:
        return serially()
    try:
        pool = _get_pool("thread", workers)
        if batched is None:
            futs = [pool.submit(run_chunk, i, args) for i, args in enumerate(arg_lists)]
        else:
            futs = [
                pool.submit(run_chunk, i, args, batch_ns[i])
                for i, args in enumerate(arg_lists)
            ]
    except RuntimeError:
        # The pool was shut down under us by a concurrent reconfiguration;
        # chunk results don't depend on where they run, so run in-process.
        SHARD_STATS["pool_errors"] += 1
        return serially()
    try:
        return [f.result() for f in futs]
    except CancelledError:
        # Queued chunks were cancelled by a concurrent pool teardown — rerun
        # in-process.  Program errors (anything a chunk actually *raised*,
        # RuntimeError subclasses included) propagate from result() as-is.
        SHARD_STATS["pool_errors"] += 1
        return serially()


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _fallback(fun: Fun, args: Sequence[object]) -> Tuple[object, ...]:
    SHARD_STATS["fallback_calls"] += 1
    return run_fun_plan(fun, args)


def run_fun_shard(fun: Fun, args: Sequence[object]) -> Tuple[object, ...]:
    """Evaluate ``fun`` with its dominant SOAC sharded across the pool.

    Falls back to the plan backend when the shardability analysis rejects
    the program outright.  A shardable program whose extent is below the
    chunking threshold still runs through the prefix/chunk/suffix plans —
    as one in-process chunk, so the already-evaluated prefix is never
    thrown away and re-executed — and is counted as a fallback call.
    """
    split, elem_cost = _split_for(fun)
    if split is None:
        return _fallback(fun, args)
    pre = run_fun_plan(split.prefix_fun, args)
    shard_vals = [np.asarray(pre[i]) for i in split.sharded_src]
    if not shard_vals or shard_vals[0].ndim == 0:
        return _fallback(fun, args)
    n = shard_vals[0].shape[0]
    if any(v.ndim == 0 or v.shape[0] != n for v in shard_vals):
        return _fallback(fun, args)
    bounds = _chunk_bounds(n, elem_cost)
    bcast = [pre[i] for i in split.chunk_broadcast]
    arg_lists = [[v[lo:hi] for v in shard_vals] + bcast for lo, hi in bounds]
    outs = _dispatch(
        split.chunk_fun, arg_lists, bounds=bounds,
        workers=split.workers or None, schedule=split.schedule_str,
    )
    if split.kind == "map":
        combined = [
            np.concatenate([np.asarray(o[i]) for o in outs], axis=0)
            for i in range(split.n_outs)
        ]
    else:
        stacked = np.stack([np.asarray(o[0]) for o in outs], axis=0)
        comb = _UFUNC[split.combine_op].reduce(stacked, axis=0)
        if split.ne_src is not None:
            tag, v = split.ne_src
            ne_val = np.asarray(pre[v] if tag == "pre" else v)
            comb = _UFUNC[split.combine_op](ne_val.astype(stacked.dtype), comb)
        combined = [comb]
    SHARD_STATS["sharded_calls" if len(bounds) > 1 else "fallback_calls"] += 1
    if split.suffix_fun is not None:
        sargs = [
            combined[i] if tag == "out" else pre[i]
            for tag, i in split.suffix_src
        ]
        return run_fun_plan(split.suffix_fun, sargs)
    out = []
    for tag, i in split.out_src:
        d = np.asarray(combined[i])
        out.append(d if d.ndim else d[()])
    return tuple(out)


def run_fun_shard_batched(
    fun: Fun, args: Sequence[object], batched: Sequence[bool], batch_size: int
) -> Tuple[object, ...]:
    """Evaluate a batched multi-seed call with the batch axis sharded.

    Batch elements are independent by construction (the axis is a stacked
    seed/vmap axis), so any chunking is sound; chunks are sized to the
    worker count.  Falls back to one plan call when there is a single
    worker or a single batch element.
    """
    b = int(batch_size)
    nchunks = min(shard_workers(), b)
    if nchunks <= 1:
        SHARD_STATS["fallback_calls"] += 1
        return run_fun_plan_batched(fun, args, batched, b)
    bounds = _edges(b, nchunks)
    batched = tuple(bool(f) for f in batched)
    arrs = [np.asarray(a) if f else a for a, f in zip(args, batched)]
    arg_lists = [
        [a[lo:hi] if f else a for a, f in zip(arrs, batched)]
        for lo, hi in bounds
    ]
    batch_ns = [hi - lo for lo, hi in bounds]
    outs = _dispatch(
        fun, arg_lists, batched=batched, batch_ns=batch_ns, bounds=bounds,
        schedule=f"parallel({nchunks})·vectorized",
    )
    SHARD_STATS["batched_calls"] += 1
    return tuple(
        np.concatenate([np.asarray(o[i]) for o in outs], axis=0)
        for i in range(len(outs[0]))
    )
