"""Vectorised interpreter — the "GPU" of this reproduction.

Evaluates ``map`` nests by *batching* instead of looping: entering a ``map``
pushes a batch level, lambda parameters become whole NumPy arrays with a
leading batch axis, and every scalar statement of the (possibly deeply
nested) lambda body executes as one bulk NumPy op over all iterations at
once.  This is the flattening execution model the paper relies on (§4.1):
perfectly nested maps cost one bulk operation per scalar statement.

Divergent control flow is executed SIMT-style:

* ``If`` under a batched condition runs *both* branches under complementary
  predication masks and selects results with ``where`` — what a GPU warp
  does;
* ``Loop``/``WhileLoop`` with lane-varying trip counts run to the maximum
  trip count with per-lane active masks;
* accumulator updates (``UpdAcc``) become ``np.add.at`` — the moral
  equivalent of the CUDA ``atomicAdd`` the paper lowers accumulators to —
  with inactive lanes contributing zero.

Batched values are ``BV(data, bdims)``: ``data`` carries ``bdims`` leading
batch axes aligned with the interpreter's batch-size stack.  Batch axes may
have size 1 (kept broadcastable); values are only materialised to full batch
extent where in-place writes require ownership.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.analysis import (
    OP_IDENTITY as _OP_IDENTITY,
    ne_is_identity as _ne_is_identity,
    recognize_binop_lambda,
    recognize_redomap_lambda,
)
from ..ir.ast import (
    AtomExp,
    Atom,
    BinOp,
    Body,
    Cast,
    Concat,
    Exp,
    Fun,
    If,
    Index,
    Iota,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Size,
    UnOp,
    UpdAcc,
    Update,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from ..ir.types import np_dtype
from ..util import ExecError
from . import values as _values
from .prims import apply_binop, apply_unop, cast_to
from .values import coerce_arg

__all__ = ["VecInterp", "run_fun_vec", "run_fun_vec_batched", "BV", "AccBV"]

_UFUNC = {"add": np.add, "mul": np.multiply, "min": np.minimum, "max": np.maximum}


def _neutral_of(op: str, dt: np.dtype):
    """The neutral element of a specialisable op at a concrete dtype."""
    if op == "add":
        return dt.type(0)
    if op == "mul":
        return dt.type(1)
    if dt.kind == "f":
        return dt.type(np.inf if op == "min" else -np.inf)
    info = np.iinfo(dt)
    return dt.type(info.max if op == "min" else info.min)


# The specialisable-op identity table and the syntactic ne-is-identity test
# live in ir/analysis.py (imported above as _OP_IDENTITY/_ne_is_identity):
# the shardability analysis substitutes chunk neutral elements from the same
# table, and the two must never diverge.


@dataclass
class BV:
    """A batched value: ``bdims`` leading batch axes, then the payload."""

    data: np.ndarray
    bdims: int

    @property
    def prank(self) -> int:
        return np.asarray(self.data).ndim - self.bdims

    def pshape(self) -> Tuple[int, ...]:
        return np.asarray(self.data).shape[self.bdims:]


@dataclass
class AccBV:
    """A mutable batched accumulator buffer (always fully materialised)."""

    data: np.ndarray
    bdims: int


def _expand(v: BV, k: int) -> np.ndarray:
    """Raise ``v`` to ``k`` batch dims by inserting singleton axes."""
    d = np.asarray(v.data)
    if v.bdims == k:
        return d
    if v.bdims > k:
        raise ExecError("cannot lower batch dims")
    return d.reshape(d.shape[: v.bdims] + (1,) * (k - v.bdims) + d.shape[v.bdims:])


def _align(vs: Sequence[BV]) -> Tuple[List[np.ndarray], int, int]:
    """Expand values to a common batch depth and payload rank so that plain
    NumPy broadcasting implements the IR's elementwise semantics."""
    k = max(v.bdims for v in vs)
    pmax = max(v.prank for v in vs)
    out = []
    for v in vs:
        d = _expand(v, k)
        p = d.ndim - k
        if p < pmax:
            d = d.reshape(d.shape[:k] + (1,) * (pmax - p) + d.shape[k:])
        out.append(d)
    return out, k, pmax


def _grids(prefix: Tuple[int, ...], extra: int = 0) -> Tuple[np.ndarray, ...]:
    """Open index grids over the leading axes, padded with ``extra`` trailing
    singleton dims so they broadcast against deeper index arrays."""
    k = len(prefix)
    gs = []
    for a, s in enumerate(prefix):
        shape = (1,) * a + (s,) + (1,) * (k - 1 - a + extra)
        gs.append(np.arange(s).reshape(shape))
    return tuple(gs)


# ---------------------------------------------------------------------------
# Runtime primitives shared with the plan compiler (exec/plan.py)
#
# These are state-generic: ``state`` is any object with ``bstack``/``mask``
# attributes (a ``VecInterp`` or a plan ``_Engine``).  Keeping one copy here
# is what guarantees the two backends cannot drift semantically.
# ---------------------------------------------------------------------------


def _combine_mask(m: Optional[BV], extra: BV) -> BV:
    if m is None:
        return extra
    datas, k, _ = _align([m, extra])
    return BV(np.logical_and(datas[0], datas[1]), k)


def _mask_where(state, v: np.ndarray, k: int, neutral) -> np.ndarray:
    """Replace inactive lanes' elements of ``v`` (batch depth ``k``) by
    ``neutral``."""
    if state.mask is None:
        return v
    md = _expand(state.mask, k) if state.mask.bdims <= k else np.asarray(state.mask.data)
    md = md.reshape(md.shape + (1,) * (np.asarray(v).ndim - md.ndim))
    return np.where(md, v, neutral)


def _elem(f, *vs) -> BV:
    # Fast path: with no batch axes anywhere, the explicit rank padding
    # ``_align`` performs is exactly NumPy's implicit left-pad broadcasting,
    # so applying ``f`` directly is bitwise identical — and this is the hot
    # case in element-at-a-time generic SOAC loops.
    for v in vs:
        if v.bdims:
            datas, k, _ = _align(list(vs))
            return BV(np.asarray(f(*datas)), k)
    return BV(np.asarray(f(*[np.asarray(v.data) for v in vs])), 0)


def _where(c: BV, t, f):
    if isinstance(t, AccBV) or isinstance(f, AccBV):
        if t is f:
            return t
        raise ExecError("accumulators must be threaded identically through branches")
    return _elem(np.where, c, t, f)


def _gather(arr: BV, idxs: List[BV]) -> BV:
    k = max([arr.bdims] + [i.bdims for i in idxs])
    ad = _expand(arr, k)
    # Clip for memory safety: inactive/divergent lanes may hold garbage
    # indices; their results are never selected downstream.
    sel = []
    for a, i in enumerate(idxs):
        dim = ad.shape[k + a]
        sel.append(np.clip(_expand(i, k), 0, max(dim - 1, 0)))
    if k == 0:
        out = ad[tuple(int(np.asarray(i)[()]) for i in sel)]
        return BV(np.asarray(out), 0)
    out = ad[_grids(ad.shape[:k]) + tuple(sel)]
    return BV(np.asarray(out), k)


def _uniform_int(v: BV, what: str) -> int:
    """A lane-uniform integer extent (iota/replicate/histogram sizes)."""
    d = np.asarray(v.data)
    if d.size == 0:
        return 0
    u = np.unique(d)
    if u.size != 1:
        raise ExecError(
            f"{what} varies across parallel lanes (irregular nested "
            f"parallelism is not supported by the vectorised backend)"
        )
    return int(u[0])


def _batch_args(state, vs: Sequence[BV]) -> Tuple[List[BV], int]:
    """Enter SOAC arguments: push their leading payload axis to batch depth
    ``len(state.bstack) + 1`` and return the common extent."""
    d = len(state.bstack)
    params: List[BV] = []
    n: Optional[int] = None
    for v in vs:
        dd = _expand(v, d)
        if dd.ndim <= d:
            raise ExecError("map/soac: argument has no payload axis")
        ln = dd.shape[d]
        if n is None:
            n = ln
        elif ln != n:
            raise ExecError(f"map/soac: array length mismatch {n} vs {ln}")
        params.append(BV(dd, d + 1))
    return params, int(n or 0)


class VecInterp:
    """Vectorising evaluator (one instance per call; not reentrant)."""

    def __init__(self) -> None:
        self.bstack: List[int] = []
        self.mask: Optional[BV] = None  # boolean BV with payload rank 0

    # -- entry ----------------------------------------------------------------

    def run(self, fun: Fun, args: Sequence[object]) -> Tuple[object, ...]:
        if len(args) != len(fun.params):
            raise ExecError(
                f"{fun.name}: expected {len(fun.params)} arguments, got {len(args)}"
            )
        env: Dict[str, object] = {}
        for p, a in zip(fun.params, args):
            env[p.name] = BV(np.asarray(coerce_arg(a, p.type)), 0)
        with np.errstate(all="ignore"):
            res = self.eval_body(fun.body, env)
        out = []
        for r in res:
            if isinstance(r, AccBV):
                raise ExecError("accumulator escaped to top level")
            d = np.asarray(r.data)
            out.append(d if d.ndim else d[()])
        return tuple(out)

    # -- environment --------------------------------------------------------------

    def atom(self, a: Atom, env):
        if isinstance(a, Var):
            try:
                return env[a.name]
            except KeyError:
                raise ExecError(f"unbound variable {a.name}") from None
        return BV(np.asarray(np_dtype(a.type)(a.value)), 0)

    def eval_body(self, body: Body, env) -> Tuple[object, ...]:
        for stm in body.stms:
            vals = self.eval_exp(stm.exp, env)
            if len(vals) != len(stm.pat):
                raise ExecError(f"statement binds {len(stm.pat)} vars, got {len(vals)}")
            for v, val in zip(stm.pat, vals):
                env[v.name] = val
        return tuple(self.atom(r, env) for r in body.result)

    # -- masking / elementwise (shared module-level primitives) ----------------------

    _combine_mask = staticmethod(_combine_mask)

    def _mask_where(self, v: np.ndarray, k: int, neutral) -> np.ndarray:
        return _mask_where(self, v, k, neutral)

    def _elem(self, f, *vs) -> BV:
        return _elem(f, *vs)

    def _where(self, c: BV, t, f):
        return _where(c, t, f)

    # -- expressions ------------------------------------------------------------------------

    def eval_exp(self, e: Exp, env) -> Tuple[object, ...]:
        if isinstance(e, AtomExp):
            return (self.atom(e.x, env),)

        if isinstance(e, UnOp):
            return (self._elem(lambda d: apply_unop(e.op, d), self.atom(e.x, env)),)

        if isinstance(e, BinOp):
            return (
                self._elem(
                    lambda a, b: apply_binop(e.op, a, b),
                    self.atom(e.x, env),
                    self.atom(e.y, env),
                ),
            )

        if isinstance(e, Select):
            return (
                self._where(
                    self.atom(e.c, env), self.atom(e.t, env), self.atom(e.f, env)
                ),
            )

        if isinstance(e, Cast):
            v = self.atom(e.x, env)
            return (BV(cast_to(v.data, np_dtype(e.to)), v.bdims),)

        if isinstance(e, Index):
            return (self._gather(self.atom(e.arr, env), [self.atom(i, env) for i in e.idx]),)

        if isinstance(e, Update):
            return (self._update(e, env),)

        if isinstance(e, Iota):
            n = self._static_int(e.n, env, "iota length")
            return (BV(np.arange(n, dtype=np_dtype(e.elem)), 0),)

        if isinstance(e, Replicate):
            n = self._static_int(e.n, env, "replicate count")
            v = self.atom(e.v, env)
            d = np.asarray(v.data)
            d2 = np.expand_dims(d, axis=v.bdims)
            shape = d.shape[: v.bdims] + (n,) + d.shape[v.bdims:]
            return (BV(np.broadcast_to(d2, shape).copy(), v.bdims),)

        if isinstance(e, ZerosLike):
            v = self.atom(e.x, env)
            return (BV(np.zeros_like(np.asarray(v.data)), v.bdims),)

        if isinstance(e, ScratchLike):
            # Checkpoint buffers may have lane-varying logical extents (loops
            # with data-dependent trip counts); allocate the maximum — the
            # slack is never read back.
            nv = self.atom(e.n, env)
            nd = np.asarray(nv.data)
            n = 0 if nd.size == 0 else int(nd.max())
            v = self.atom(e.x, env)
            bshape = tuple(self.bstack)
            dt = np.asarray(v.data).dtype
            return (BV(np.zeros(bshape + (n,) + v.pshape(), dtype=dt), len(bshape)),)

        if isinstance(e, Size):
            v = self.atom(e.arr, env)
            if isinstance(v, AccBV):
                shape = v.data.shape[v.bdims:]
                return (BV(np.asarray(np.int64(shape[e.dim])), 0),)
            return (BV(np.asarray(np.int64(v.pshape()[e.dim])), 0),)

        if isinstance(e, Reverse):
            v = self.atom(e.x, env)
            return (BV(np.flip(np.asarray(v.data), axis=v.bdims).copy(), v.bdims),)

        if isinstance(e, Concat):
            x = self.atom(e.x, env)
            y = self.atom(e.y, env)
            (dx, dy), k, _ = _align([x, y])
            bx = np.broadcast_shapes(dx.shape[:k], dy.shape[:k])
            dx = np.broadcast_to(dx, bx + dx.shape[k:])
            dy = np.broadcast_to(dy, bx + dy.shape[k:])
            return (BV(np.concatenate([dx, dy], axis=k), k),)

        if isinstance(e, Map):
            return self._eval_map(e, env)
        if isinstance(e, Reduce):
            return self._eval_reduce(e, env)
        if isinstance(e, Scan):
            return self._eval_scan(e, env)
        if isinstance(e, ReduceByIndex):
            return self._eval_hist(e, env)
        if isinstance(e, Scatter):
            return (self._eval_scatter(e, env),)
        if isinstance(e, Loop):
            return self._eval_loop(e, env)
        if isinstance(e, WhileLoop):
            return self._eval_while(e, env)
        if isinstance(e, If):
            return self._eval_if(e, env)
        if isinstance(e, WithAcc):
            return self._eval_withacc(e, env)
        if isinstance(e, UpdAcc):
            return (self._eval_updacc(e, env),)

        raise ExecError(f"vec eval: unknown expression {type(e).__name__}")

    # -- helpers ---------------------------------------------------------------------------

    def _static_int(self, a: Atom, env, what: str) -> int:
        return _uniform_int(self.atom(a, env), what)

    def _gather(self, arr: BV, idxs: List[BV]) -> BV:
        return _gather(arr, idxs)

    def _update(self, e: Update, env) -> BV:
        arr = self.atom(e.arr, env)
        idxs = [self.atom(i, env) for i in e.idx]
        val = self.atom(e.val, env)
        k = max([arr.bdims, val.bdims] + [i.bdims for i in idxs])
        if self.mask is not None:
            k = max(k, self.mask.bdims)
        # Materialise the destination at full batch size: each lane owns a
        # private copy (functional semantics), so lanes never collide.
        bshape = tuple(self.bstack[:k])
        ad = _expand(arr, k)
        ad = np.broadcast_to(ad, bshape + ad.shape[k:]).copy()
        sel = _grids(bshape) + tuple(
            np.clip(_expand(i, k), 0, max(ad.shape[k + a] - 1, 0))
            for a, i in enumerate(idxs)
        )
        vd = _expand(val, k)
        if self.mask is None:
            ad[sel] = vd
        else:
            old = ad[sel]
            md = _expand(self.mask, k)
            md = md.reshape(md.shape + (1,) * (old.ndim - md.ndim))
            ad[sel] = np.where(md, vd, old)
        return BV(ad, k)

    # -- SOACs ------------------------------------------------------------------------------

    def _map_args(self, e_arrs: Tuple[Var, ...], env) -> Tuple[List[BV], int]:
        return _batch_args(self, [self.atom(a, env) for a in e_arrs])

    def _eval_map(self, e: Map, env) -> Tuple[object, ...]:
        d = len(self.bstack)
        params, n = self._map_args(e.arrs, env)
        accs = [self.atom(a, env) for a in e.accs]
        for p, v in zip(e.lam.params, params + accs):
            env[p.name] = v
        self.bstack.append(n)
        try:
            res = self.eval_body(e.lam.body, env)
        finally:
            self.bstack.pop()
        out: List[object] = []
        for r in res[: len(e.accs)]:
            if not isinstance(r, AccBV):
                raise ExecError("map: accumulator results must lead")
            out.append(r)
        for r in res[len(e.accs):]:
            rd = _expand(r, d + 1)
            if rd.shape[d] != n:  # materialise the new payload axis
                rd = np.broadcast_to(rd, rd.shape[:d] + (n,) + rd.shape[d + 1:])
            out.append(BV(np.ascontiguousarray(rd), d))
        return tuple(out)

    def _bulk_map(self, lam, args: List[BV], n: int, env) -> np.ndarray:
        """Run a (single-result, acc-free) lambda as a bulk map over batched
        element arguments; returns the mapped payload with extent ``n`` on
        the current batch axis.  Shared by the redomap fast paths."""
        d = len(self.bstack)
        for p, v in zip(lam.params, args):
            env[p.name] = v
        self.bstack.append(n)
        try:
            (r,) = self.eval_body(lam.body, env)
        finally:
            self.bstack.pop()
        rd = _expand(r, d + 1)
        if rd.shape[d] != n:
            rd = np.broadcast_to(rd, rd.shape[:d] + (n,) + rd.shape[d + 1:])
        return rd

    def _eval_reduce(self, e: Reduce, env) -> Tuple[object, ...]:
        d = len(self.bstack)
        args, n = self._map_args(e.arrs, env)
        op = recognize_binop_lambda(e.lam) if len(e.nes) == 1 else None
        if op is not None:
            data = np.asarray(args[0].data)
            if data.shape[d] == 0:
                ne = self.atom(e.nes[0], env)
                nd = _expand(ne, d)
                shape = data.shape[:d] + data.shape[d + 1:]
                return (BV(np.broadcast_to(nd, shape).copy(), d),)
            red = _UFUNC[op].reduce(data, axis=d)
            if not _ne_is_identity(op, e.nes[0]):
                red = _UFUNC[op](_expand(self.atom(e.nes[0], env), d), red)
            return (BV(red, d),)
        # Fused (redomap-shaped) operator: bulk-map the element function,
        # then reduce with the recognised ufunc — fusion keeps the fast path.
        rm = recognize_redomap_lambda(e.lam) if len(e.nes) == 1 else None
        if rm is not None:
            mop, mlam = rm
            if n == 0:
                ne = self.atom(e.nes[0], env)
                nd = _expand(ne, d)
                bshape = tuple(self.bstack)
                return (BV(np.broadcast_to(nd, bshape + nd.shape[d:]).copy(), d),)
            data = self._bulk_map(mlam, args, n, env)
            red = _UFUNC[mop].reduce(data, axis=d)
            if not _ne_is_identity(mop, e.nes[0]):
                red = _UFUNC[mop](_expand(self.atom(e.nes[0], env), d), red)
            return (BV(red, d),)
        # General fold: sequential over the reduced axis, batched over lanes.
        acc = [self.atom(ne, env) for ne in e.nes]
        for i in range(n):
            elems = [BV(np.take(np.asarray(a.data), i, axis=d), d) for a in args]
            for p, v in zip(e.lam.params, acc + elems):
                env[p.name] = v
            acc = list(self.eval_body(e.lam.body, env))
        return tuple(acc)

    def _eval_scan(self, e: Scan, env) -> Tuple[object, ...]:
        d = len(self.bstack)
        args, n = self._map_args(e.arrs, env)
        op = recognize_binop_lambda(e.lam) if len(e.nes) == 1 else None
        if op is not None:
            data = np.asarray(args[0].data)
            acc = _UFUNC[op].accumulate(data, axis=d)
            if not _ne_is_identity(op, e.nes[0]):
                nd = np.expand_dims(_expand(self.atom(e.nes[0], env), d), axis=d)
                acc = _UFUNC[op](nd, acc)
            return (BV(acc, d),)
        rm = recognize_redomap_lambda(e.lam) if len(e.nes) == 1 else None
        if rm is not None and n > 0:
            mop, mlam = rm
            data = self._bulk_map(mlam, args, n, env)
            acc = _UFUNC[mop].accumulate(data, axis=d)
            if not _ne_is_identity(mop, e.nes[0]):
                nd = np.expand_dims(_expand(self.atom(e.nes[0], env), d), axis=d)
                acc = _UFUNC[mop](nd, acc)
            return (BV(acc, d),)
        acc = [self.atom(ne, env) for ne in e.nes]
        cols: List[List[np.ndarray]] = [[] for _ in e.nes]
        for i in range(n):
            elems = [BV(np.take(np.asarray(a.data), i, axis=d), d) for a in args]
            for p, v in zip(e.lam.params, acc + elems):
                env[p.name] = v
            acc = list(self.eval_body(e.lam.body, env))
            for j, a in enumerate(acc):
                cols[j].append(_expand(a, d))
        outs = []
        for j, col in enumerate(cols):
            if n == 0:
                ne = self.atom(e.nes[j], env)
                dt = np.asarray(ne.data).dtype
                outs.append(BV(np.zeros((0,) * (ne.prank + 1), dtype=dt), 0))
                continue
            shape = np.broadcast_shapes(*[c.shape for c in col])
            col = [np.broadcast_to(c, shape) for c in col]
            outs.append(BV(np.stack(col, axis=d), d))
        return tuple(outs)

    def _eval_hist(self, e: ReduceByIndex, env) -> Tuple[object, ...]:
        d = len(self.bstack)
        m = self._static_int(e.num_bins, env, "histogram size")
        args, n = self._map_args((e.inds,) + e.vals, env)
        inds, vals = args[0], list(args[1:])
        bshape = tuple(self.bstack)
        idata = np.broadcast_to(np.asarray(inds.data), bshape + (n,))
        valid = (idata >= 0) & (idata < m)
        if self.mask is not None:
            md = _expand(self.mask, d)
            md = np.broadcast_to(
                md.reshape(md.shape + (1,) * (valid.ndim - md.ndim)), valid.shape
            )
            valid = valid & md
        isel = _grids(bshape, extra=1) + (np.clip(idata, 0, max(m - 1, 0)),)
        op = recognize_binop_lambda(e.lam) if len(e.nes) == 1 else None
        if op is not None:
            v = vals[0]
            pe = v.pshape()  # element payload shape (beyond the n axis)
            vdata = np.broadcast_to(np.asarray(v.data), bshape + (n,) + pe)
            dt = vdata.dtype
            ne = self.atom(e.nes[0], env)
            hist = np.ascontiguousarray(
                np.broadcast_to(
                    np.expand_dims(_expand(ne, d), axis=d), bshape + (m,) + pe
                ).astype(dt)
            )
            neutral = _neutral_of(op, dt)
            w = valid.reshape(valid.shape + (1,) * (vdata.ndim - valid.ndim))
            contrib = np.where(w, vdata, neutral)
            _UFUNC[op].at(hist, isel, contrib)
            return (BV(hist, d),)
        # Fused (redomap-shaped) operator: bulk-map the contribution function
        # over the value arrays, then scatter-accumulate with the ufunc.
        rm = recognize_redomap_lambda(e.lam) if len(e.nes) == 1 else None
        if rm is not None:
            mop, mlam = rm
            data = self._bulk_map(mlam, vals, n, env)
            pe = data.shape[d + 1:]
            dt = data.dtype
            ne = self.atom(e.nes[0], env)
            hist = np.ascontiguousarray(
                np.broadcast_to(
                    np.expand_dims(_expand(ne, d), axis=d), bshape + (m,) + pe
                ).astype(dt)
            )
            neutral = _neutral_of(mop, dt)
            vdata = np.broadcast_to(data, bshape + (n,) + pe)
            w = valid.reshape(valid.shape + (1,) * (vdata.ndim - valid.ndim))
            contrib = np.where(w, vdata, neutral)
            _UFUNC[mop].at(hist, isel, contrib)
            return (BV(hist, d),)
        # General path: sequential over elements, batched over lanes.
        hists = []
        for ne, v in zip(e.nes, vals):
            nev = self.atom(ne, env)
            pshape = v.pshape()
            dt = np.asarray(v.data).dtype
            h = np.broadcast_to(
                np.expand_dims(_expand(nev, d), axis=d),
                bshape + (m,) + pshape,
            ).astype(dt)
            hists.append(np.ascontiguousarray(h))
        gsel = _grids(bshape)
        for i in range(n):
            b = idata[..., i]
            vi = valid[..., i]
            s = gsel + (np.clip(b, 0, max(m - 1, 0)),)
            cur = [BV(h[s], d) for h in hists]
            elems = [BV(np.take(np.asarray(v.data), i, axis=d), d) for v in vals]
            for p, val in zip(e.lam.params, cur + elems):
                env[p.name] = val
            new = self.eval_body(e.lam.body, env)
            for h, nv in zip(hists, new):
                nd = _expand(nv, d)
                old = h[s]
                w = vi.reshape(vi.shape + (1,) * (old.ndim - vi.ndim))
                h[s] = np.where(w, np.broadcast_to(nd, old.shape), old)
        return tuple(BV(h, d) for h in hists)

    def _eval_scatter(self, e: Scatter, env) -> BV:
        d = len(self.bstack)
        dest = self.atom(e.dest, env)
        args, n = self._map_args((e.inds, e.vals), env)
        inds, vals = args
        bshape = tuple(self.bstack)
        dd = _expand(dest, d)
        dd = np.broadcast_to(dd, bshape + dd.shape[d:]).copy()
        ln = dd.shape[d]
        idata = np.broadcast_to(np.asarray(inds.data), bshape + (n,))
        pe = vals.pshape()
        vdata = np.broadcast_to(np.asarray(vals.data), bshape + (n,) + pe)
        valid = (idata >= 0) & (idata < ln)
        if self.mask is not None:
            md = _expand(self.mask, d)
            md = np.broadcast_to(
                md.reshape(md.shape + (1,) * (valid.ndim - md.ndim)), valid.shape
            )
            valid = valid & md
        sel = _grids(bshape, extra=1) + (np.clip(idata, 0, max(ln - 1, 0)),)
        old = dd[sel]
        w = valid.reshape(valid.shape + (1,) * (old.ndim - valid.ndim))
        dd[sel] = np.where(w, np.broadcast_to(vdata, old.shape), old)
        return BV(dd, d)

    # -- control flow ----------------------------------------------------------------------

    def _eval_if(self, e: If, env) -> Tuple[object, ...]:
        c = self.atom(e.cond, env)
        cd = np.asarray(c.data)
        if cd.size == 1 and self.mask is None:
            branch = e.then if bool(cd.reshape(-1)[0]) else e.els
            return self.eval_body(branch, env)
        saved = self.mask
        notc = BV(np.logical_not(cd), c.bdims)
        self.mask = self._combine_mask(saved, c)
        tvals = self.eval_body(e.then, env)
        self.mask = self._combine_mask(saved, notc)
        fvals = self.eval_body(e.els, env)
        self.mask = saved
        return tuple(self._where(c, t, f) for t, f in zip(tvals, fvals))

    def _eval_loop(self, e: Loop, env) -> Tuple[object, ...]:
        nv = self.atom(e.n, env)
        nd = np.asarray(nv.data)
        nmax = 0 if nd.size == 0 else int(nd.max())
        state = [self.atom(i, env) for i in e.inits]
        uniform = nd.size == 1 or (nd.size > 0 and nd.min() == nd.max())
        saved = self.mask
        for i in range(nmax):
            env[e.ivar.name] = BV(np.asarray(np.int64(i)), 0)
            if not uniform:
                active = BV(i < nd, nv.bdims)
                self.mask = self._combine_mask(saved, active)
            for p, v in zip(e.params, state):
                env[p.name] = v
            new = list(self.eval_body(e.body, env))
            if uniform:
                state = new
            else:
                active = BV(i < nd, nv.bdims)
                state = [
                    s2 if isinstance(s2, AccBV) else self._where(active, s2, s)
                    for s, s2 in zip(state, new)
                ]
                self.mask = saved
        self.mask = saved
        return tuple(state)

    def _eval_while(self, e: WhileLoop, env) -> Tuple[object, ...]:
        state = [self.atom(i, env) for i in e.inits]
        saved = self.mask
        limit = _values.WHILE_FUEL
        fuel = limit
        while True:
            for p, v in zip(e.cond.params, state):
                env[p.name] = v
            (c,) = self.eval_body(e.cond.body, env)
            active = self._combine_mask(saved, c)
            if not np.any(np.asarray(active.data)):
                break
            self.mask = active
            for p, v in zip(e.params, state):
                env[p.name] = v
            new = list(self.eval_body(e.body, env))
            state = [
                s2 if isinstance(s2, AccBV) else self._where(active, s2, s)
                for s, s2 in zip(state, new)
            ]
            self.mask = saved
            fuel -= 1
            if fuel <= 0:
                raise ExecError(
                    f"while loop exceeded iteration fuel ({limit} iterations)"
                )
        self.mask = saved
        return tuple(state)

    # -- accumulators -------------------------------------------------------------------------

    def _eval_withacc(self, e: WithAcc, env) -> Tuple[object, ...]:
        d = len(self.bstack)
        bshape = tuple(self.bstack)
        accs = []
        for a in e.arrs:
            v = self.atom(a, env)
            ad = _expand(v, d)
            ad = np.broadcast_to(ad, bshape + ad.shape[d:]).copy()
            accs.append(AccBV(ad, d))
        for p, acc in zip(e.lam.params, accs):
            env[p.name] = acc
        res = self.eval_body(e.lam.body, env)
        out: List[object] = []
        for r in res[: len(accs)]:
            if not isinstance(r, AccBV):
                raise ExecError("withacc: lambda must return its accumulators")
            out.append(BV(r.data, r.bdims))
        out.extend(res[len(accs):])
        return tuple(out)

    def _eval_updacc(self, e: UpdAcc, env) -> AccBV:
        acc = self.atom(e.acc, env)
        if not isinstance(acc, AccBV):
            raise ExecError("upd: operand is not an accumulator")
        v = self.atom(e.v, env)
        idxs = [self.atom(i, env) for i in e.idx]
        k = max([v.bdims, acc.bdims] + [i.bdims for i in idxs])
        if self.mask is not None:
            k = max(k, self.mask.bdims)
        bshape = tuple(self.bstack[:k])
        vd = _expand(v, k)
        vd = np.broadcast_to(vd, bshape + vd.shape[k:])
        vd = self._mask_where(vd, k, np.zeros((), dtype=vd.dtype))
        if not idxs:
            # Whole-array add: contributions from deeper batch levels sum.
            extra = tuple(range(acc.bdims, k))
            acc.data += vd.sum(axis=extra) if extra else vd
            return acc
        sel = _grids(bshape)[: acc.bdims] + tuple(
            np.clip(
                np.broadcast_to(_expand(i, k), bshape),
                0,
                max(acc.data.shape[acc.bdims + a] - 1, 0),
            )
            for a, i in enumerate(idxs)
        )
        np.add.at(acc.data, sel, vd)
        return acc


def run_fun_vec(fun: Fun, args: Sequence[object]) -> Tuple[object, ...]:
    """Evaluate ``fun`` with the vectorised backend."""
    return VecInterp().run(fun, args)


def run_fun_vec_batched(
    fun: Fun,
    args: Sequence[object],
    batched: Sequence[bool],
    batch_size: int,
) -> Tuple[object, ...]:
    """Evaluate ``fun`` once with selected arguments batched.

    Arguments flagged in ``batched`` carry one extra leading axis of extent
    ``batch_size`` (e.g. a stack of AD seed vectors); the others are shared
    across the batch.  Execution enters the interpreter with one pre-pushed
    batch level — exactly the state of evaluating a ``map`` over the batch —
    so every statement runs as a single bulk NumPy op over all batch members.
    Every result is returned with a leading ``batch_size`` axis.

    This is the batched-seed driver behind ``jacobian``: all n/m basis
    seeds evaluate in one interpreter pass instead of n/m separate runs.
    """
    if len(args) != len(fun.params):
        raise ExecError(
            f"{fun.name}: expected {len(fun.params)} arguments, got {len(args)}"
        )
    if len(batched) != len(args):
        raise ExecError("run_fun_vec_batched: batched flags must match arguments")
    interp = VecInterp()
    b = int(batch_size)
    interp.bstack.append(b)
    env: Dict[str, object] = {}
    for p, a, flag in zip(fun.params, args, batched):
        if flag:
            arr = np.asarray(a)
            if arr.ndim == 0 or arr.shape[0] != b:
                raise ExecError(
                    f"batched argument {p.name}: leading axis {arr.shape[:1]} "
                    f"does not match batch size {b}"
                )
            env[p.name] = BV(np.ascontiguousarray(arr, dtype=np_dtype(p.type)), 1)
        else:
            env[p.name] = BV(np.asarray(coerce_arg(a, p.type)), 0)
    with np.errstate(all="ignore"):
        res = interp.eval_body(fun.body, env)
    out = []
    for r in res:
        if isinstance(r, AccBV):
            raise ExecError("accumulator escaped to top level")
        d = _expand(r, 1)
        out.append(np.ascontiguousarray(np.broadcast_to(d, (b,) + d.shape[1:])))
    return tuple(out)
