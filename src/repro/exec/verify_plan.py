"""Layer-2 static verifier: plan-IR well-formedness and codegen sanity.

The plan compiler (``exec/lower.py``) flattens SSA names onto a single slot
space; both emitters (closure interpreter and source codegen) rely on a set
of structural invariants this module checks once per lowering:

* **slot def-before-use** — every ``Ref``/``IntRef`` read is dominated by a
  write to its slot (function parameter, loop/lambda parameter binding,
  instruction output, or fused-run export).  Values defined inside a nested
  body never leak into the enclosing scope's defined set: inner temporaries
  are dead after the instruction completes;
* **static single-assignment of slots** — each slot has exactly one static
  writer site (a ``WhileLoop``'s condition parameters alias the loop
  parameters by construction and count as one);
* **fused-run integrity** — run-local integer operands only reference
  earlier ops in the same run, and only the declared ``exports`` escape to
  slots;
* **structural arities** — loop bodies return one value per loop parameter,
  ``if`` branches agree with the instruction's outputs, the while condition
  returns a single value.

``verify_codegen_source`` checks the source-codegen emitter's output: the
generated module must parse (``ast.parse``) and must not reference any free
name beyond the injected namespace defaults and a small builtin allowlist
(every helper is passed as a keyword-only default of ``_plan_main``, so a
stray global load means the emitter produced a dangling reference).

Both are gated on ``REPRO_VERIFY`` (see ``ir/verify.py``) and run at
*compile* time only — cached-plan reuse never re-verifies (the ``verify``
section of ``plan_cache_stats()`` counts checks per lowering).
"""
from __future__ import annotations

import ast as _pyast
import dis
from typing import Optional, Set

from ..ir.verify import VERIFY_STATS, VerifyError, verify_mode
from ..obs import tracing as _tracing
from .lower import (
    IIf,
    ILoop,
    IMap,
    IntRef,
    IReduce,
    IRun,
    IWhile,
    IWithAcc,
    PBody,
    PlanIR,
    Ref,
)

__all__ = ["verify_plan_ir", "maybe_verify_plan_ir", "verify_codegen_source"]


def _stm_of(instr) -> Optional[object]:
    prov = getattr(instr, "prov", ())
    return prov[0] if prov else None


class _PlanChecker:
    def __init__(self, ir: PlanIR, where: str):
        self.ir = ir
        self.where = where

    def fail(self, msg: str, instr=None) -> None:
        raise VerifyError(f"plan IR: {msg}", self.where, _stm_of(instr))

    # -- write/read primitives ---------------------------------------------

    def write(self, slot: int, name: str, defined: Set[int], instr=None) -> None:
        if not (0 <= slot < self.ir.nslots):
            self.fail(f"slot {slot} ({name!r}) outside register space", instr)
        # Slot SSA along every execution path: a live slot is never
        # re-assigned (sibling scopes may reuse a slot — the earlier value
        # is dead by then — mirroring the name-reuse the Fun verifier
        # accepts across sibling lambdas).
        if slot in defined:
            self.fail(
                f"slot {slot} ({name!r}) assigned twice along one "
                f"execution path (slot SSA violation)",
                instr,
            )
        defined.add(slot)

    def read(self, r, defined: Set[int], instr=None, what: str = "") -> None:
        if r is None:
            return
        if isinstance(r, IntRef):
            if r.const is None:
                self.read(r.ref, defined, instr, what or r.what)
            return
        if isinstance(r, Ref) and r.slot is not None:
            if r.slot not in defined:
                self.fail(
                    f"read of undefined slot {r.slot} ({r.name or what!r})",
                    instr,
                )

    def reads(self, refs, defined: Set[int], instr=None) -> None:
        for r in refs or ():
            self.read(r, defined, instr)

    def bind_params(self, pslots, defined: Set[int], instr) -> None:
        for slot, name in pslots or ():
            self.write(slot, name, defined, instr)

    # -- bodies -------------------------------------------------------------

    def check_body(self, body: PBody, defined: Set[int]) -> None:
        for instr in body.instrs:
            self.check_instr(instr, defined)
        self.reads(body.result, defined)

    def check_instr(self, instr, defined: Set[int]) -> None:
        kind = instr.kind
        if isinstance(instr, IRun):
            for pos, op in enumerate(instr.ops):
                for x in op.xs:
                    if isinstance(x, int):
                        if not (0 <= x < pos):
                            self.fail(
                                f"run op {pos} references run-local value "
                                f"{x} not computed earlier in the run",
                                instr,
                            )
                    else:
                        self.read(x, defined, instr)
            for idx, slot, name in instr.exports:
                if not (0 <= idx < len(instr.ops)):
                    self.fail(
                        f"run export {name!r} references op {idx} outside "
                        f"the run",
                        instr,
                    )
                self.write(slot, name, defined, instr)
        elif kind == "update":
            self.read(instr.arr, defined, instr)
            self.reads(instr.idx, defined, instr)
            self.read(instr.val, defined, instr)
            self.write(*instr.out, defined, instr)
        elif kind == "iota":
            self.read(instr.n, defined, instr)
            self.write(*instr.out, defined, instr)
        elif kind == "replicate":
            self.read(instr.n, defined, instr)
            self.read(instr.v, defined, instr)
            self.write(*instr.out, defined, instr)
        elif kind == "scratch":
            self.read(instr.n, defined, instr)
            self.read(instr.x, defined, instr)
            self.write(*instr.out, defined, instr)
        elif kind == "size":
            self.read(instr.arr, defined, instr)
            self.write(*instr.out, defined, instr)
        elif kind == "reverse":
            self.read(instr.x, defined, instr)
            self.write(*instr.out, defined, instr)
        elif kind == "concat":
            self.read(instr.x, defined, instr)
            self.read(instr.y, defined, instr)
            self.write(*instr.out, defined, instr)
        elif isinstance(instr, IMap):
            self.reads(instr.arrs, defined, instr)
            self.reads(instr.accs, defined, instr)
            inner = set(defined)
            self.bind_params(instr.params, inner, instr)
            self.check_body(instr.body, inner)
            if len(instr.outs) != len(instr.body.result):
                self.fail(
                    f"map binds {len(instr.outs)} outputs for "
                    f"{len(instr.body.result)} lambda results",
                    instr,
                )
            for slot, name in instr.outs:
                self.write(slot, name, defined, instr)
        elif isinstance(instr, IReduce):  # also IScan (subclass)
            self.reads(instr.arrs, defined, instr)
            self.reads(instr.nes, defined, instr)
            self._check_operator_part(instr, defined)
            for slot, name in instr.outs:
                self.write(slot, name, defined, instr)
        elif kind == "hist":
            self.read(instr.num_bins, defined, instr)
            self.reads(instr.arrs, defined, instr)
            self.reads(instr.nes, defined, instr)
            self._check_operator_part(instr, defined)
            for slot, name in instr.outs:
                self.write(slot, name, defined, instr)
        elif kind == "scatter":
            self.read(instr.dest, defined, instr)
            self.read(instr.inds, defined, instr)
            self.read(instr.vals, defined, instr)
            self.write(*instr.out, defined, instr)
        elif isinstance(instr, ILoop):
            self.read(instr.n, defined, instr)
            self.reads(instr.inits, defined, instr)
            if len(instr.inits) != len(instr.params):
                self.fail(
                    f"loop has {len(instr.inits)} inits for "
                    f"{len(instr.params)} parameters",
                    instr,
                )
            inner = set(defined)
            self.bind_params(instr.params, inner, instr)
            self.write(*instr.ivar, inner, instr)
            self.check_body(instr.body, inner)
            if len(instr.body.result) != len(instr.params):
                self.fail(
                    f"loop body returns {len(instr.body.result)} values "
                    f"for {len(instr.params)} carried parameters",
                    instr,
                )
            for slot, name in instr.outs:
                self.write(slot, name, defined, instr)
        elif isinstance(instr, IWhile):
            self.reads(instr.inits, defined, instr)
            inner = set(defined)
            pset = {slot for slot, _ in instr.params}
            self.bind_params(instr.params, inner, instr)
            for slot, name in instr.cparams:
                # Condition params alias the loop params by construction;
                # a disjoint condition binder is its own write site.
                if slot not in pset:
                    self.write(slot, name, inner, instr)
            self.check_body(instr.cbody, inner)
            if len(instr.cbody.result) != 1:
                self.fail(
                    f"while condition returns {len(instr.cbody.result)} "
                    f"values (expected 1)",
                    instr,
                )
            self.check_body(instr.body, inner)
            if len(instr.body.result) != len(instr.params):
                self.fail(
                    f"while body returns {len(instr.body.result)} values "
                    f"for {len(instr.params)} carried parameters",
                    instr,
                )
            for slot, name in instr.outs:
                self.write(slot, name, defined, instr)
        elif isinstance(instr, IIf):
            self.read(instr.cond, defined, instr)
            then_scope = set(defined)
            self.check_body(instr.then, then_scope)
            els_scope = set(defined)
            self.check_body(instr.els, els_scope)
            if len(instr.then.result) != len(instr.outs) or len(
                instr.els.result
            ) != len(instr.outs):
                self.fail(
                    f"if branches return "
                    f"{len(instr.then.result)}/{len(instr.els.result)} "
                    f"values for {len(instr.outs)} outputs",
                    instr,
                )
            for slot, name in instr.outs:
                self.write(slot, name, defined, instr)
        elif isinstance(instr, IWithAcc):
            self.reads(instr.arrs, defined, instr)
            inner = set(defined)
            self.bind_params(instr.params, inner, instr)
            self.check_body(instr.body, inner)
            if len(instr.outs) != len(instr.body.result):
                self.fail(
                    f"withacc binds {len(instr.outs)} outputs for "
                    f"{len(instr.body.result)} lambda results",
                    instr,
                )
            for slot, name in instr.outs:
                self.write(slot, name, defined, instr)
        elif kind == "updacc":
            self.read(instr.acc, defined, instr)
            self.reads(instr.idx, defined, instr)
            self.read(instr.v, defined, instr)
            self.write(*instr.out, defined, instr)
        else:  # pragma: no cover - exhaustiveness guard
            self.fail(f"unknown instruction kind {kind!r}", instr)

    def _check_operator_part(self, instr, defined: Set[int]) -> None:
        """The fused map part / generic lambda of a reduce/scan/hist."""
        if instr.mparams is not None or instr.mbody is not None:
            inner = set(defined)
            self.bind_params(instr.mparams, inner, instr)
            self.check_body(instr.mbody, inner)
        if instr.params is not None or instr.body is not None:
            inner = set(defined)
            self.bind_params(instr.params, inner, instr)
            self.check_body(instr.body, inner)


def verify_plan_ir(ir: PlanIR, where: str = "lower") -> PlanIR:
    """Check the plan-IR invariants; returns ``ir`` unchanged on success."""
    with _tracing.span(
        "verify", cat="verify", fun=ir.fun.name, where=where, layer="plan"
    ):
        VERIFY_STATS["plan_checks"] += 1
        try:
            ck = _PlanChecker(ir, where)
            defined: Set[int] = set()
            seen_params: Set[int] = set()
            for slot, p in zip(ir.param_slots, ir.fun.params):
                if slot in seen_params:
                    ck.fail(f"parameter slot {slot} ({p.name!r}) duplicated")
                seen_params.add(slot)
                ck.write(slot, p.name, defined)
            ck.check_body(ir.body, defined)
        except VerifyError:
            VERIFY_STATS["failures"] += 1
            raise
    return ir


def maybe_verify_plan_ir(ir: PlanIR, where: str = "lower") -> PlanIR:
    """``verify_plan_ir`` gated on ``REPRO_VERIFY`` (the lowering hook)."""
    if verify_mode() == "off":
        return ir
    return verify_plan_ir(ir, where=where)


# ---------------------------------------------------------------------------
# Codegen source sanity
# ---------------------------------------------------------------------------

#: Builtins the rendered source may reference as globals.  Everything else
#: must arrive through the injected keyword-only defaults of ``_plan_main``.
_SAFE_BUILTINS = frozenset(
    {
        "range",
        "len",
        "int",
        "float",
        "bool",
        "min",
        "max",
        "abs",
        "slice",
        "tuple",
        "list",
        "zip",
        "enumerate",
        "isinstance",
        "Exception",
        "RuntimeError",
        "ValueError",
    }
)


def _code_objects(code):
    yield code
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            yield from _code_objects(const)


def verify_codegen_source(
    fun_name: str, source: str, namespace, where: str = "codegen"
) -> None:
    """Check a rendered codegen module: parses, and no dangling free names."""
    with _tracing.span(
        "verify", cat="verify", fun=fun_name, where=where, layer="codegen"
    ):
        VERIFY_STATS["codegen_checks"] += 1
        try:
            _pyast.parse(source)
        except SyntaxError as err:
            VERIFY_STATS["failures"] += 1
            raise VerifyError(
                f"generated source for {fun_name!r} does not parse: {err}",
                where=where,
            ) from err
        allowed = set(namespace) | _SAFE_BUILTINS
        code = compile(source, f"<verify:{fun_name}>", "exec")
        for co in _code_objects(code):
            for ins in dis.get_instructions(co):
                if ins.opname in ("LOAD_GLOBAL", "LOAD_NAME"):
                    if ins.argval not in allowed:
                        VERIFY_STATS["failures"] += 1
                        raise VerifyError(
                            f"generated source for {fun_name!r} references "
                            f"free name {ins.argval!r} outside the injected "
                            f"namespace",
                            where=where,
                        )


def maybe_verify_codegen_source(fun_name: str, source: str, namespace) -> None:
    """``verify_codegen_source`` gated on ``REPRO_VERIFY``."""
    if verify_mode() == "off":
        return
    verify_codegen_source(fun_name, source, namespace)
