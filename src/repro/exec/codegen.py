"""Source-codegen emitter — plan IR rendered to one compiled Python function.

The closure interpreter (``exec/plan.py``) executes a lowered plan as a flat
list of Python closures: one indirect call, one argument tuple, and a few
register-file reads per instruction.  For the scalar-heavy bodies AD emits,
that per-instruction dispatch is the remaining interpreter overhead — the
NumPy work inside each closure is often nanoseconds.

This emitter removes the dispatch entirely.  It renders the **same plan IR**
(``exec/lower.py``) to the source of a single Python function:

* register slots become local variables (``s12``) — no register-file
  indexing, no unbound checks on the hot path;
* fused scalar runs become straight-line expressions over locals;
* SOAC fast paths become the direct NumPy call sequences, with ufuncs,
  dtypes, prebuilt iotas and constant ``BV``s injected as compile-time
  constants (``_K3``) through the exec namespace;
* control flow becomes real Python ``for``/``while``/``if`` — only ``If``
  branches get nested ``def``s (each branch body is emitted once and the
  scalar fast path and the masked path both call it, instead of duplicating
  branch source 2^depth times);
* generic SOAC lambdas inline into Python loops — still element-at-a-time,
  but with zero closure dispatch per statement.

The source is ``compile()``/``exec()``d once per plan and the resulting
code object lives in the ordinary two-tier plan cache (same keys, same
promotion logic — ``plan_for(..., backend="codegen")``).  Because lowering
is shared and every instruction template transliterates the interpreter's
closure body, the generated function performs the **same NumPy calls in the
same order** — results are bitwise identical to the plan backend, which the
test suite asserts across the full parity battery and fuzz corpus.

Soundness of the flat local-variable space: SSA names are globally unique
per program, so no two slots alias one local; ``If`` branch ``def``s only
assign names bound inside that branch (never read outside it in scoped
programs) and close over earlier locals by reference.  One deliberate
divergence: reading a genuinely unbound variable raises ``NameError``
instead of the interpreter's ``ExecError`` — valid scoped programs never do
this, and dropping the per-read check is part of the speedup.

Set ``REPRO_CODEGEN_DUMP=<dir>`` to write every generated source file to
``<dir>`` for debugging.
"""
from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.analysis import StaticInfo, infer_static_shapes, ir_hash
from ..ir.ast import Fun
from ..ir.types import np_dtype
from ..obs import tracing as _obs_tracing
from ..util import ExecError, env_capacity
from . import values as _values
from .lower import (
    IntRef,
    PlanIR,
    Ref,
    check_spec_sig,
    lower_fun,
    plan_schedules,
    spec_signature,
)
from .plan import (
    EMITTER_STATS,
    PLAN_STATS,
    _Engine,
    _LOCK,
    plan_for,
    register_emitter,
)
from .prims import _BINOPS, _UNOPS, cast_to
from .vector import (
    _UFUNC,
    AccBV,
    BV,
    _align,
    _batch_args,
    _combine_mask,
    _elem,
    _expand,
    _gather,
    _grids,
    _mask_where,
    _neutral_of,
    _uniform_int,
    _where,
)

__all__ = [
    "CodegenPlan",
    "compile_codegen",
    "run_fun_codegen",
    "run_fun_codegen_batched",
]


#: Names every generated function can rely on (the shared runtime helpers —
#: one copy with the interpreter backends, which is what pins the semantics).
_BASE_NAMESPACE = {
    "np": np,
    "BV": BV,
    "AccBV": AccBV,
    "ExecError": ExecError,
    "_expand": _expand,
    "_align": _align,
    "_combine_mask": _combine_mask,
    "_mask_where": _mask_where,
    "_elem": _elem,
    "_where": _where,
    "_gather": _gather,
    "_uniform_int": _uniform_int,
    "_batch_args": _batch_args,
    "_grids": _grids,
    "_neutral_of": _neutral_of,
    "_values": _values,
    "cast_to": cast_to,
}


class _SrcEmitter:
    """Renders one ``PlanIR`` to Python source plus an exec namespace.

    Slots print as ``s{n}`` locals, injected Python objects as ``_K{n}``
    namespace constants, temporaries as ``_t{n}`` (the counter is global to
    the program so a name is never reused across scopes — nested branch
    ``def``s can shadow nothing)."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.level = 1
        self.n = 0
        self.consts: List[object] = []
        self._const_names: Dict[int, str] = {}

    # -- infrastructure -------------------------------------------------------

    def w(self, line: str) -> None:
        self.lines.append("    " * self.level + line)

    def fresh(self, prefix: str = "t") -> str:
        self.n += 1
        return f"_{prefix}{self.n}"

    def const(self, obj) -> str:
        # Uppercase prefix: fresh() temporaries are all lowercase, so an
        # injected constant can never be shadowed by a generated local.
        nm = self._const_names.get(id(obj))
        if nm is None:
            nm = f"_K{len(self.consts)}"
            self._const_names[id(obj)] = nm
            self.consts.append(obj)
        return nm

    def ref(self, r: Ref) -> str:
        if r.slot is not None:
            return f"s{r.slot}"
        return self.const(r.bv)

    def int_expr(self, iref: IntRef) -> str:
        if iref.const is not None:
            return repr(int(iref.const))
        return f"_uniform_int({self.ref(iref.ref)}, {iref.what!r})"

    # -- bodies ---------------------------------------------------------------

    def emit_body(self, pbody) -> Tuple[str, ...]:
        """Emit a lowered body at the current indent; returns the names of
        its results."""
        if not pbody.instrs:
            self.w("pass")  # keep indented blocks (try:, def:) syntactically valid
        for ins in pbody.instrs:
            getattr(self, "_emit_" + ins.kind)(ins)
        return tuple(self.ref(r) for r in pbody.result)

    # -- fused scalar runs ----------------------------------------------------

    def _run_expr(self, o, names: List[str]) -> str:
        opn = lambda x: names[x] if isinstance(x, int) else self.ref(x)  # noqa: E731
        k = o.kind
        if k == "atom":
            return opn(o.xs[0])
        if k == "unop":
            try:
                uf = _UNOPS[o.op]
            except KeyError:
                raise ExecError(f"unknown unary op {o.op!r}") from None
            return f"_elem({self.const(uf)}, {opn(o.xs[0])})"
        if k == "binop":
            try:
                uf = _BINOPS[o.op]
            except KeyError:
                raise ExecError(f"unknown binary op {o.op!r}") from None
            return f"_elem({self.const(uf)}, {opn(o.xs[0])}, {opn(o.xs[1])})"
        if k == "select":
            c, t, f = (opn(x) for x in o.xs)
            return f"_where({c}, {t}, {f})"
        if k == "cast":
            x = opn(o.xs[0])
            return f"BV(cast_to({x}.data, {self.const(o.dtype)}), {x}.bdims)"
        if k == "index":
            a = opn(o.xs[0])
            idx = ", ".join(opn(x) for x in o.xs[1:])
            return f"_gather({a}, [{idx}])"
        if k == "zeroslike":
            x = opn(o.xs[0])
            return f"BV(np.zeros_like(np.asarray({x}.data)), {x}.bdims)"
        raise ExecError(f"codegen: unexpected run op {k!r}")

    def _emit_run(self, ins) -> None:
        exported = {li: s for li, s, _n in ins.exports}
        names: List[str] = []
        for i, o in enumerate(ins.ops):
            nm = f"s{exported[i]}" if i in exported else self.fresh()
            self.w(f"{nm} = {self._run_expr(o, names)}")
            names.append(nm)

    # -- simple expressions ---------------------------------------------------

    def _emit_update(self, e) -> None:
        arr, val = self.ref(e.arr), self.ref(e.val)
        idxs = [self.ref(i) for i in e.idx]
        k, bs, ad, vd = (self.fresh("k"), self.fresh("bs"), self.fresh("ad"),
                         self.fresh("vd"))
        dims = ", ".join([f"{arr}.bdims", f"{val}.bdims"]
                         + [f"{i}.bdims" for i in idxs])
        self.w(f"{k} = max(({dims}))")
        self.w("if eng.mask is not None:")
        self.w(f"    {k} = max({k}, eng.mask.bdims)")
        self.w(f"{bs} = tuple(eng.bstack[:{k}])")
        self.w(f"{ad} = _expand({arr}, {k})")
        self.w(f"{ad} = np.broadcast_to({ad}, {bs} + {ad}.shape[{k}:]).copy()")
        clips = ", ".join(
            f"np.clip(_expand({i}, {k}), 0, max({ad}.shape[{k} + {a}] - 1, 0))"
            for a, i in enumerate(idxs)
        )
        sel = self.fresh("sel")
        tail = f" + ({clips},)" if idxs else ""
        self.w(f"{sel} = _grids({bs}){tail}")
        self.w(f"{vd} = _expand({val}, {k})")
        self.w("if eng.mask is None:")
        self.w(f"    {ad}[{sel}] = {vd}")
        self.w("else:")
        old, md = self.fresh("old"), self.fresh("md")
        self.w(f"    {old} = {ad}[{sel}]")
        self.w(f"    {md} = _expand(eng.mask, {k})")
        self.w(f"    {md} = {md}.reshape({md}.shape + (1,) * ({old}.ndim - {md}.ndim))")
        self.w(f"    {ad}[{sel}] = np.where({md}, {vd}, {old})")
        self.w(f"s{e.out[0]} = BV({ad}, {k})")

    def _emit_iota(self, e) -> None:
        if e.prebuilt is not None:
            self.w(f"s{e.out[0]} = BV({self.const(e.prebuilt)}.copy(), 0)")
            return
        self.w(
            f"s{e.out[0]} = BV(np.arange({self.int_expr(e.n)}, "
            f"dtype={self.const(e.dtype)}), 0)"
        )

    def _emit_replicate(self, e) -> None:
        v = self.ref(e.v)
        n, d, d2 = self.fresh("n"), self.fresh("d"), self.fresh("d2")
        self.w(f"{n} = {self.int_expr(e.n)}")
        self.w(f"{d} = np.asarray({v}.data)")
        self.w(f"{d2} = np.expand_dims({d}, axis={v}.bdims)")
        self.w(
            f"s{e.out[0]} = BV(np.broadcast_to({d2}, {d}.shape[:{v}.bdims] "
            f"+ ({n},) + {d}.shape[{v}.bdims:]).copy(), {v}.bdims)"
        )

    def _emit_scratch(self, e) -> None:
        x = self.ref(e.x)
        nd, n, bs = self.fresh("nd"), self.fresh("n"), self.fresh("bs")
        self.w(f"{nd} = np.asarray({self.ref(e.n)}.data)")
        self.w(f"{n} = 0 if {nd}.size == 0 else int({nd}.max())")
        self.w(f"{bs} = tuple(eng.bstack)")
        self.w(
            f"s{e.out[0]} = BV(np.zeros({bs} + ({n},) + {x}.pshape(), "
            f"dtype=np.asarray({x}.data).dtype), len({bs}))"
        )

    def _emit_size(self, e) -> None:
        if e.const is not None:
            self.w(f"s{e.out[0]} = {self.const(e.const)}")
            return
        v = self.ref(e.arr)
        self.w(f"if isinstance({v}, AccBV):")
        self.w(
            f"    s{e.out[0]} = BV(np.asarray(np.int64("
            f"{v}.data.shape[{v}.bdims:][{e.dim}])), 0)"
        )
        self.w("else:")
        self.w(
            f"    s{e.out[0]} = BV(np.asarray(np.int64({v}.pshape()[{e.dim}])), 0)"
        )

    def _emit_reverse(self, e) -> None:
        x = self.ref(e.x)
        self.w(
            f"s{e.out[0]} = BV(np.flip(np.asarray({x}.data), "
            f"axis={x}.bdims).copy(), {x}.bdims)"
        )

    def _emit_concat(self, e) -> None:
        x, y = self.ref(e.x), self.ref(e.y)
        dx, dy, k, bx = (self.fresh("dx"), self.fresh("dy"), self.fresh("k"),
                         self.fresh("bx"))
        self.w(f"({dx}, {dy}), {k}, {self.fresh()} = _align([{x}, {y}])")
        self.w(f"{bx} = np.broadcast_shapes({dx}.shape[:{k}], {dy}.shape[:{k}])")
        self.w(f"{dx} = np.broadcast_to({dx}, {bx} + {dx}.shape[{k}:])")
        self.w(f"{dy} = np.broadcast_to({dy}, {bx} + {dy}.shape[{k}:])")
        self.w(f"s{e.out[0]} = BV(np.concatenate([{dx}, {dy}], axis={k}), {k})")

    # -- SOAC prologues --------------------------------------------------------

    def _soac_prologue(self, arrs) -> Tuple[str, str, str]:
        """Emit ``d``/``args``/``n`` for a SOAC entry; returns their names."""
        d, args, n = self.fresh("d"), self.fresh("a"), self.fresh("n")
        self.w(f"{d} = len(eng.bstack)")
        lst = ", ".join(self.ref(a) for a in arrs)
        self.w(f"{args}, {n} = _batch_args(eng, [{lst}])")
        return d, args, n

    def _emit_soac_body(self, params, body, bind, n: str) -> Tuple[str, ...]:
        """Bind SOAC lambda params (``bind(i, slot)`` emits one binding),
        push the batch level, and emit the body inside try/finally."""
        for i, (slot, _name) in enumerate(params):
            bind(i, slot)
        self.w(f"eng.bstack.append({n})")
        self.w("try:")
        self.level += 1
        res = self.emit_body(body)
        self.level -= 1
        self.w("finally:")
        self.w("    eng.bstack.pop()")
        return res

    def _emit_map(self, e) -> None:
        if getattr(e, "chunk", 0) > 1 and not e.accs and e.n_acc == 0:
            self._emit_map_chunked(e, e.chunk)
            return
        d, args, n = self._soac_prologue(e.arrs)
        na = len(e.arrs)
        accs = [self.ref(a) for a in e.accs]

        def bind(i, slot):
            if i < na:
                self.w(f"s{slot} = {args}[{i}]")
            else:
                self.w(f"s{slot} = {accs[i - na]}")

        res = self._emit_soac_body(e.params, e.body, bind, n)
        for j, (slot, _nm) in enumerate(e.outs):
            if j < e.n_acc:
                self.w(f"if not isinstance({res[j]}, AccBV):")
                self.w('    raise ExecError("map: accumulator results must lead")')
                self.w(f"s{slot} = {res[j]}")
            else:
                rd = self.fresh("rd")
                self.w(f"{rd} = _expand({res[j]}, {d} + 1)")
                self.w(f"if {rd}.shape[{d}] != {n}:")
                self.w(
                    f"    {rd} = np.broadcast_to({rd}, {rd}.shape[:{d}] "
                    f"+ ({n},) + {rd}.shape[{d} + 1:])"
                )
                self.w(f"s{slot} = BV(np.ascontiguousarray({rd}), {d})")

    def _emit_map_chunked(self, e, chunk: int) -> None:
        """A ``sequential(chunk)`` schedule on an acc-free map: the body is
        emitted once into a nested helper ``def`` (sound: the temp counter is
        global, SSA slots are unique, and nested defs close over enclosing
        locals), which both the in-order chunk loop and the bulk fallback
        call.  The chunked path only fires at top level (no batch axis, no
        mask); slicing is exact because ``_batch_args`` guarantees every
        param has extent exactly ``n`` on the batch axis, so the chunked
        payloads concatenate bitwise-identically to the bulk evaluation."""
        d, args, n = self._soac_prologue(e.arrs)
        body_fn, mv, mn = self.fresh("mapseq"), self.fresh("mv"), self.fresh("mn")
        self.w(f"def {body_fn}({mv}, {mn}):")
        self.level += 1
        res = self._emit_soac_body(
            e.params, e.body,
            lambda i, slot: self.w(f"s{slot} = {mv}[{i}]"), mn,
        )
        outs = []
        for j in range(len(e.outs)):
            rd = self.fresh("rd")
            self.w(f"{rd} = _expand({res[j]}, {d} + 1)")
            self.w(f"if {rd}.shape[{d}] != {mn}:")
            self.w(
                f"    {rd} = np.broadcast_to({rd}, {rd}.shape[:{d}] "
                f"+ ({mn},) + {rd}.shape[{d} + 1:])"
            )
            outs.append(rd)
        self.w(f"return ({', '.join(outs)},)")
        self.level -= 1
        parts, lo, p = self.fresh("parts"), self.fresh("lo"), self.fresh("p")
        self.w(f"if {d} == 0 and eng.mask is None and {n} > {chunk}:")
        self.w(
            f"    {parts} = [{body_fn}([BV({p}.data[{lo}:{lo} + {chunk}], "
            f"{p}.bdims) for {p} in {args}], min({chunk}, {n} - {lo})) "
            f"for {lo} in range(0, {n}, {chunk})]"
        )
        for j, (slot, _nm) in enumerate(e.outs):
            self.w(
                f"    s{slot} = BV(np.ascontiguousarray(np.concatenate("
                f"[{p}[{j}] for {p} in {parts}], axis=0)), 0)"
            )
        self.w("else:")
        self.w(f"    {parts} = {body_fn}({args}, {n})")
        for j, (slot, _nm) in enumerate(e.outs):
            self.w(f"    s{slot} = BV(np.ascontiguousarray({parts}[{j}]), {d})")

    def _emit_map_part(self, mparams, mbody, src, d: str, n: str) -> str:
        """Inline a redomap map part: bind params via ``src(i)`` expressions,
        run the body one batch level down, normalise the payload extent.
        Returns the name holding the mapped ndarray."""
        res = self._emit_soac_body(
            mparams, mbody, lambda i, slot: self.w(f"s{slot} = {src(i)}"), n
        )
        rd = self.fresh("md")
        self.w(f"{rd} = _expand({res[0]}, {d} + 1)")
        self.w(f"if {rd}.shape[{d}] != {n}:")
        self.w(
            f"    {rd} = np.broadcast_to({rd}, {rd}.shape[:{d}] + ({n},) "
            f"+ {rd}.shape[{d} + 1:])"
        )
        return rd

    # -- reduce / scan ---------------------------------------------------------

    def _emit_reduce(self, e) -> None:
        d, args, n = self._soac_prologue(e.arrs)
        out = e.outs[0][0]
        if e.strategy == "ufunc":
            ne = self.ref(e.nes[0])
            uf = self.const(_UFUNC[e.op])
            red = self.fresh("red")
            if e.ext == 0:
                data, nd = self.fresh("dd"), self.fresh("nd")
                self.w(f"{data} = np.asarray({args}[0].data)")
                self.w(f"{nd} = _expand({ne}, {d})")
                self.w(
                    f"s{out} = BV(np.broadcast_to({nd}, {data}.shape[:{d}] "
                    f"+ {data}.shape[{d} + 1:]).copy(), {d})"
                )
                return
            if e.ext == 1:
                self.w(f"{red} = np.take(np.asarray({args}[0].data), 0, axis={d})")
                if e.fold:
                    self.w(f"{red} = {uf}(_expand({ne}, {d}), {red})")
                self.w(f"s{out} = BV({red}, {d})")
                return
            if e.ext is not None:
                self.w(f"{red} = {uf}.reduce(np.asarray({args}[0].data), axis={d})")
                if e.fold:
                    self.w(f"{red} = {uf}(_expand({ne}, {d}), {red})")
                self.w(f"s{out} = BV({red}, {d})")
                return
            data, nd = self.fresh("dd"), self.fresh("nd")
            self.w(f"{data} = np.asarray({args}[0].data)")
            self.w(f"if {data}.shape[{d}] == 0:")
            self.w(f"    {nd} = _expand({ne}, {d})")
            self.w(
                f"    {red} = np.broadcast_to({nd}, {data}.shape[:{d}] "
                f"+ {data}.shape[{d} + 1:]).copy()"
            )
            self.w("else:")
            self.w(f"    {red} = {uf}.reduce({data}, axis={d})")
            if e.fold:
                self.w(f"    {red} = {uf}(_expand({ne}, {d}), {red})")
            self.w(f"s{out} = BV({red}, {d})")
            return
        if e.strategy == "redomap":
            ne = self.ref(e.nes[0])
            uf = self.const(_UFUNC[e.op])
            red = self.fresh("red")
            src = lambda i, _a=args: f"{_a}[{i}]"  # noqa: E731
            if e.ext is not None and e.ext > 0:
                data = self._emit_map_part(e.mparams, e.mbody, src, d, n)
                self.w(f"{red} = {uf}.reduce({data}, axis={d})")
                if e.fold:
                    self.w(f"{red} = {uf}(_expand({ne}, {d}), {red})")
                self.w(f"s{out} = BV({red}, {d})")
                return
            nd = self.fresh("nd")
            self.w(f"if {n} == 0:")
            self.w(f"    {nd} = _expand({ne}, {d})")
            self.w(
                f"    s{out} = BV(np.broadcast_to({nd}, tuple(eng.bstack) "
                f"+ {nd}.shape[{d}:]).copy(), {d})"
            )
            self.w("else:")
            self.level += 1
            data = self._emit_map_part(e.mparams, e.mbody, src, d, n)
            self.w(f"{red} = {uf}.reduce({data}, axis={d})")
            if e.fold:
                self.w(f"{red} = {uf}(_expand({ne}, {d}), {red})")
            self.w(f"s{out} = BV({red}, {d})")
            self.level -= 1
            return
        self._emit_fold_loop(e, d, args, n, scan=False)

    def _emit_scan(self, e) -> None:
        d, args, n = self._soac_prologue(e.arrs)
        out = e.outs[0][0] if len(e.outs) == 1 else None
        if e.strategy == "ufunc":
            ne = self.ref(e.nes[0])
            uf = self.const(_UFUNC[e.op])
            acc, nd = self.fresh("acc"), self.fresh("nd")
            self.w(f"{acc} = {uf}.accumulate(np.asarray({args}[0].data), axis={d})")
            if e.fold:
                self.w(f"{nd} = np.expand_dims(_expand({ne}, {d}), axis={d})")
                self.w(f"{acc} = {uf}({nd}, {acc})")
            self.w(f"s{out} = BV({acc}, {d})")
            return
        if e.strategy == "redomap":
            ne = self.ref(e.nes[0])
            uf = self.const(_UFUNC[e.op])
            acc, nd = self.fresh("acc"), self.fresh("nd")
            src = lambda i, _a=args: f"{_a}[{i}]"  # noqa: E731
            if e.ext is not None and e.ext > 0:
                data = self._emit_map_part(e.mparams, e.mbody, src, d, n)
                self.w(f"{acc} = {uf}.accumulate({data}, axis={d})")
                if e.fold:
                    self.w(f"{nd} = np.expand_dims(_expand({ne}, {d}), axis={d})")
                    self.w(f"{acc} = {uf}({nd}, {acc})")
                self.w(f"s{out} = BV({acc}, {d})")
                return
            self.w(f"if {n} == 0:")
            self.w(
                f"    s{out} = BV(np.zeros((0,) * ({ne}.prank + 1), "
                f"dtype=np.asarray({ne}.data).dtype), 0)"
            )
            self.w("else:")
            self.level += 1
            data = self._emit_map_part(e.mparams, e.mbody, src, d, n)
            self.w(f"{acc} = {uf}.accumulate({data}, axis={d})")
            if e.fold:
                self.w(f"{nd} = np.expand_dims(_expand({ne}, {d}), axis={d})")
                self.w(f"{acc} = {uf}({nd}, {acc})")
            self.w(f"s{out} = BV({acc}, {d})")
            self.level -= 1
            return
        self._emit_fold_loop(e, d, args, n, scan=True)

    def _emit_fold_loop(self, e, d: str, args: str, n: str, scan: bool) -> None:
        """The generic element-at-a-time fold shared by reduce and scan."""
        k = len(e.nes)
        nes = [self.ref(ne) for ne in e.nes]
        acc, i, el = self.fresh("acc"), self.fresh("i"), self.fresh("el")
        self.w(f"{acc} = [{', '.join(nes)}]")
        if scan:
            cols = self.fresh("cols")
            self.w(f"{cols} = [[] for {self.fresh()} in range({k})]")
        self.w(f"for {i} in range({n}):")
        self.level += 1
        av = self.fresh("av")
        self.w(
            f"{el} = [BV(np.take(np.asarray({av}.data), {i}, axis={d}), {d}) "
            f"for {av} in {args}]"
        )
        for j, (slot, _nm) in enumerate(e.params):
            self.w(f"s{slot} = {acc}[{j}]" if j < k else f"s{slot} = {el}[{j - k}]")
        res = self.emit_body(e.body)
        self.w(f"{acc} = [{', '.join(res)}]")
        if scan:
            j2, a2 = self.fresh("j"), self.fresh("a")
            self.w(f"for {j2}, {a2} in enumerate({acc}):")
            self.w(f"    {cols}[{j2}].append(_expand({a2}, {d}))")
        self.level -= 1
        if not scan:
            for j, (slot, _nm) in enumerate(e.outs):
                self.w(f"s{slot} = {acc}[{j}]")
            return
        outs, j2, nev, sh, c2 = (self.fresh("outs"), self.fresh("j"),
                                 self.fresh("ne"), self.fresh("sh"),
                                 self.fresh("c"))
        self.w(f"{outs} = []")
        self.w(f"for {j2} in range({k}):")
        self.w(f"    if {n} == 0:")
        self.w(f"        {nev} = [{', '.join(nes)}][{j2}]")
        self.w(
            f"        {outs}.append(BV(np.zeros((0,) * ({nev}.prank + 1), "
            f"dtype=np.asarray({nev}.data).dtype), 0))"
        )
        self.w("        continue")
        self.w(
            f"    {sh} = np.broadcast_shapes(*[{c2}.shape "
            f"for {c2} in {cols}[{j2}]])"
        )
        self.w(
            f"    {outs}.append(BV(np.stack([np.broadcast_to({c2}, {sh}) "
            f"for {c2} in {cols}[{j2}]], axis={d}), {d}))"
        )
        for j, (slot, _nm) in enumerate(e.outs):
            self.w(f"s{slot} = {outs}[{j}]")

    # -- histograms ------------------------------------------------------------

    def _hist_valid(self, d: str, args: str, n: str, m: str) -> Tuple[str, str, str]:
        """Emit the index/valid/mask prologue shared by all hist variants."""
        bs, idata, valid = self.fresh("bs"), self.fresh("id"), self.fresh("vm")
        self.w(f"{bs} = tuple(eng.bstack)")
        self.w(f"{idata} = np.broadcast_to(np.asarray({args}[0].data), {bs} + ({n},))")
        self.w(f"{valid} = ({idata} >= 0) & ({idata} < {m})")
        self.w("if eng.mask is not None:")
        md = self.fresh("md")
        self.w(f"    {md} = _expand(eng.mask, {d})")
        self.w(
            f"    {md} = np.broadcast_to({md}.reshape({md}.shape + (1,) "
            f"* ({valid}.ndim - {md}.ndim)), {valid}.shape)"
        )
        self.w(f"    {valid} = {valid} & {md}")
        return bs, idata, valid

    def _emit_hist(self, e) -> None:
        d, args, n = None, None, None
        m = self.fresh("m")
        # num_bins resolves before the arrays batch in the closure emitter
        # (int_reader runs first inside the instruction) — keep the order.
        out = e.outs[0][0] if len(e.outs) == 1 else None
        if e.strategy == "ufunc":
            dnm = self.fresh("d")
            self.w(f"{dnm} = len(eng.bstack)")
            self.w(f"{m} = {self.int_expr(e.num_bins)}")
            args, n = self.fresh("a"), self.fresh("n")
            lst = ", ".join(self.ref(a) for a in e.arrs)
            self.w(f"{args}, {n} = _batch_args(eng, [{lst}])")
            bs, idata, valid = self._hist_valid(dnm, args, n, m)
            ne = self.ref(e.nes[0])
            uf = self.const(_UFUNC[e.op])
            isel, pe, vdata, dt, hist, w = (
                self.fresh("sel"), self.fresh("pe"), self.fresh("vd"),
                self.fresh("dt"), self.fresh("h"), self.fresh("w"),
            )
            self.w(
                f"{isel} = _grids({bs}, extra=1) "
                f"+ (np.clip({idata}, 0, max({m} - 1, 0)),)"
            )
            self.w(f"{pe} = {args}[1].pshape()")
            self.w(
                f"{vdata} = np.broadcast_to(np.asarray({args}[1].data), "
                f"{bs} + ({n},) + {pe})"
            )
            self.w(f"{dt} = {vdata}.dtype")
            self.w(
                f"{hist} = np.ascontiguousarray(np.broadcast_to("
                f"np.expand_dims(_expand({ne}, {dnm}), axis={dnm}), "
                f"{bs} + ({m},) + {pe}).astype({dt}))"
            )
            self.w(
                f"{w} = {valid}.reshape({valid}.shape + (1,) "
                f"* ({vdata}.ndim - {valid}.ndim))"
            )
            self.w(
                f"{uf}.at({hist}, {isel}, "
                f"np.where({w}, {vdata}, _neutral_of({e.op!r}, {dt})))"
            )
            self.w(f"s{out} = BV({hist}, {dnm})")
            return
        if e.strategy == "redomap":
            dnm = self.fresh("d")
            self.w(f"{dnm} = len(eng.bstack)")
            self.w(f"{m} = {self.int_expr(e.num_bins)}")
            args, n = self.fresh("a"), self.fresh("n")
            lst = ", ".join(self.ref(a) for a in e.arrs)
            self.w(f"{args}, {n} = _batch_args(eng, [{lst}])")
            bs, idata, valid = self._hist_valid(dnm, args, n, m)
            ne = self.ref(e.nes[0])
            uf = self.const(_UFUNC[e.op])
            src = lambda i, _a=args: f"{_a}[{i} + 1]"  # noqa: E731
            data = self._emit_map_part(e.mparams, e.mbody, src, dnm, n)
            pe, dt, hist, vdata, w, isel = (
                self.fresh("pe"), self.fresh("dt"), self.fresh("h"),
                self.fresh("vd"), self.fresh("w"), self.fresh("sel"),
            )
            self.w(f"{pe} = {data}.shape[{dnm} + 1:]")
            self.w(f"{dt} = {data}.dtype")
            self.w(
                f"{hist} = np.ascontiguousarray(np.broadcast_to("
                f"np.expand_dims(_expand({ne}, {dnm}), axis={dnm}), "
                f"{bs} + ({m},) + {pe}).astype({dt}))"
            )
            self.w(f"{vdata} = np.broadcast_to({data}, {bs} + ({n},) + {pe})")
            self.w(
                f"{w} = {valid}.reshape({valid}.shape + (1,) "
                f"* ({vdata}.ndim - {valid}.ndim))"
            )
            self.w(
                f"{isel} = _grids({bs}, extra=1) "
                f"+ (np.clip({idata}, 0, max({m} - 1, 0)),)"
            )
            self.w(
                f"{uf}.at({hist}, {isel}, "
                f"np.where({w}, {vdata}, _neutral_of({e.op!r}, {dt})))"
            )
            self.w(f"s{out} = BV({hist}, {dnm})")
            return
        # generic
        dnm = self.fresh("d")
        self.w(f"{dnm} = len(eng.bstack)")
        self.w(f"{m} = {self.int_expr(e.num_bins)}")
        args, n = self.fresh("a"), self.fresh("n")
        lst = ", ".join(self.ref(a) for a in e.arrs)
        self.w(f"{args}, {n} = _batch_args(eng, [{lst}])")
        bs, idata, valid = self._hist_valid(dnm, args, n, m)
        k = len(e.nes)
        nes = [self.ref(ne) for ne in e.nes]
        hists, nev, v2, h2 = (self.fresh("hs"), self.fresh("ne"),
                              self.fresh("v"), self.fresh("h"))
        self.w(f"{hists} = []")
        self.w(f"for {nev}, {v2} in zip([{', '.join(nes)}], {args}[1:]):")
        self.w(
            f"    {h2} = np.broadcast_to(np.expand_dims(_expand({nev}, {dnm}), "
            f"axis={dnm}), {bs} + ({m},) + {v2}.pshape())"
            f".astype(np.asarray({v2}.data).dtype)"
        )
        self.w(f"    {hists}.append(np.ascontiguousarray({h2}))")
        gsel, i, b, vi, s = (self.fresh("gs"), self.fresh("i"), self.fresh("b"),
                             self.fresh("vi"), self.fresh("s"))
        self.w(f"{gsel} = _grids({bs})")
        self.w(f"for {i} in range({n}):")
        self.level += 1
        self.w(f"{b} = {idata}[..., {i}]")
        self.w(f"{vi} = {valid}[..., {i}]")
        self.w(f"{s} = {gsel} + (np.clip({b}, 0, max({m} - 1, 0)),)")
        el, av = self.fresh("el"), self.fresh("av")
        for j, (slot, _nm) in enumerate(e.params):
            if j < k:
                self.w(f"s{slot} = BV({hists}[{j}][{s}], {dnm})")
        self.w(
            f"{el} = [BV(np.take(np.asarray({av}.data), {i}, axis={dnm}), {dnm}) "
            f"for {av} in {args}[1:]]"
        )
        for j, (slot, _nm) in enumerate(e.params):
            if j >= k:
                self.w(f"s{slot} = {el}[{j - k}]")
        res = self.emit_body(e.body)
        hv, nv, ndv, old, w2 = (self.fresh("h"), self.fresh("nv"),
                                self.fresh("nd"), self.fresh("old"),
                                self.fresh("w"))
        self.w(f"for {hv}, {nv} in zip({hists}, ({', '.join(res)},)):")
        self.w(f"    {ndv} = _expand({nv}, {dnm})")
        self.w(f"    {old} = {hv}[{s}]")
        self.w(
            f"    {w2} = {vi}.reshape({vi}.shape + (1,) "
            f"* ({old}.ndim - {vi}.ndim))"
        )
        self.w(
            f"    {hv}[{s}] = np.where({w2}, "
            f"np.broadcast_to({ndv}, {old}.shape), {old})"
        )
        self.level -= 1
        for j, (slot, _nm) in enumerate(e.outs):
            self.w(f"s{slot} = BV({hists}[{j}], {dnm})")

    def _emit_scatter(self, e) -> None:
        dest = self.ref(e.dest)
        d, args, n = self._soac_prologue((e.inds, e.vals))
        bs, dd, ln, idata, vdata, valid, sel, old, w = (
            self.fresh("bs"), self.fresh("dd"), self.fresh("ln"),
            self.fresh("id"), self.fresh("vd"), self.fresh("vm"),
            self.fresh("sel"), self.fresh("old"), self.fresh("w"),
        )
        self.w(f"{bs} = tuple(eng.bstack)")
        self.w(f"{dd} = _expand({dest}, {d})")
        self.w(f"{dd} = np.broadcast_to({dd}, {bs} + {dd}.shape[{d}:]).copy()")
        self.w(f"{ln} = {dd}.shape[{d}]")
        self.w(f"{idata} = np.broadcast_to(np.asarray({args}[0].data), {bs} + ({n},))")
        self.w(
            f"{vdata} = np.broadcast_to(np.asarray({args}[1].data), "
            f"{bs} + ({n},) + {args}[1].pshape())"
        )
        self.w(f"{valid} = ({idata} >= 0) & ({idata} < {ln})")
        self.w("if eng.mask is not None:")
        md = self.fresh("md")
        self.w(f"    {md} = _expand(eng.mask, {d})")
        self.w(
            f"    {md} = np.broadcast_to({md}.reshape({md}.shape + (1,) "
            f"* ({valid}.ndim - {md}.ndim)), {valid}.shape)"
        )
        self.w(f"    {valid} = {valid} & {md}")
        self.w(
            f"{sel} = _grids({bs}, extra=1) "
            f"+ (np.clip({idata}, 0, max({ln} - 1, 0)),)"
        )
        self.w(f"{old} = {dd}[{sel}]")
        self.w(
            f"{w} = {valid}.reshape({valid}.shape + (1,) "
            f"* ({old}.ndim - {valid}.ndim))"
        )
        self.w(
            f"{dd}[{sel}] = np.where({w}, "
            f"np.broadcast_to({vdata}, {old}.shape), {old})"
        )
        self.w(f"s{e.out[0]} = BV({dd}, {d})")

    # -- control flow ----------------------------------------------------------

    def _emit_if(self, e) -> None:
        bt, bf = self.fresh("brt"), self.fresh("brf")
        for nm, body in ((bt, e.then), (bf, e.els)):
            self.w(f"def {nm}():")
            self.level += 1
            res = self.emit_body(body)
            self.w(f"return ({', '.join(res)},)" if res else "return ()")
            self.level -= 1
        c = self.ref(e.cond)
        cd, vals = self.fresh("cd"), self.fresh("vals")
        self.w(f"{cd} = np.asarray({c}.data)")
        self.w(f"if {cd}.size == 1 and eng.mask is None:")
        self.w(f"    {vals} = {bt}() if bool({cd}.reshape(-1)[0]) else {bf}()")
        self.w("else:")
        self.level += 1
        sv, nc, tv, fv = (self.fresh("sv"), self.fresh("nc"), self.fresh("tv"),
                          self.fresh("fv"))
        self.w(f"{sv} = eng.mask")
        self.w(f"{nc} = BV(np.logical_not({cd}), {c}.bdims)")
        self.w(f"eng.mask = _combine_mask({sv}, {c})")
        self.w(f"{tv} = {bt}()")
        self.w(f"eng.mask = _combine_mask({sv}, {nc})")
        self.w(f"{fv} = {bf}()")
        self.w(f"eng.mask = {sv}")
        t2, f2 = self.fresh("t"), self.fresh("f")
        self.w(
            f"{vals} = tuple(_where({c}, {t2}, {f2}) "
            f"for {t2}, {f2} in zip({tv}, {fv}))"
        )
        self.level -= 1
        for j, (slot, _nm) in enumerate(e.outs):
            self.w(f"s{slot} = {vals}[{j}]")

    def _emit_loop(self, e) -> None:
        nv = self.ref(e.n)
        nd, nmax, st, uni, sv, i = (
            self.fresh("nd"), self.fresh("nm"), self.fresh("st"),
            self.fresh("uni"), self.fresh("sv"), self.fresh("i"),
        )
        inits = ", ".join(self.ref(x) for x in e.inits)
        self.w(f"{nd} = np.asarray({nv}.data)")
        self.w(f"{nmax} = 0 if {nd}.size == 0 else int({nd}.max())")
        self.w(f"{st} = [{inits}]")
        self.w(
            f"{uni} = {nd}.size == 1 or ({nd}.size > 0 "
            f"and {nd}.min() == {nd}.max())"
        )
        self.w(f"{sv} = eng.mask")
        self.w(f"for {i} in range({nmax}):")
        self.level += 1
        self.w(f"s{e.ivar[0]} = BV(np.asarray(np.int64({i})), 0)")
        self.w(f"if not {uni}:")
        self.w(f"    eng.mask = _combine_mask({sv}, BV({i} < {nd}, {nv}.bdims))")
        for j, (slot, _nm) in enumerate(e.params):
            self.w(f"s{slot} = {st}[{j}]")
        res = self.emit_body(e.body)
        new = ", ".join(res)
        self.w(f"if {uni}:")
        self.w(f"    {st} = [{new}]")
        self.w("else:")
        act, a2, b2 = self.fresh("act"), self.fresh("a"), self.fresh("b")
        self.w(f"    {act} = BV({i} < {nd}, {nv}.bdims)")
        self.w(
            f"    {st} = [{b2} if isinstance({b2}, AccBV) "
            f"else _where({act}, {b2}, {a2}) "
            f"for {a2}, {b2} in zip({st}, [{new}])]"
        )
        self.w(f"    eng.mask = {sv}")
        self.level -= 1
        self.w(f"eng.mask = {sv}")
        for j, (slot, _nm) in enumerate(e.outs):
            self.w(f"s{slot} = {st}[{j}]")

    def _emit_while(self, e) -> None:
        st, sv, fuel = self.fresh("st"), self.fresh("sv"), self.fresh("fu")
        inits = ", ".join(self.ref(x) for x in e.inits)
        self.w(f"{st} = [{inits}]")
        self.w(f"{sv} = eng.mask")
        self.w(f"{fuel} = _values.WHILE_FUEL")
        self.w("while True:")
        self.level += 1
        for j, (slot, _nm) in enumerate(e.cparams):
            self.w(f"s{slot} = {st}[{j}]")
        (c,) = self.emit_body(e.cbody)
        act = self.fresh("act")
        self.w(f"{act} = _combine_mask({sv}, {c})")
        self.w(f"if not np.any(np.asarray({act}.data)):")
        self.w("    break")
        self.w(f"eng.mask = {act}")
        for j, (slot, _nm) in enumerate(e.params):
            self.w(f"s{slot} = {st}[{j}]")
        res = self.emit_body(e.body)
        a2, b2 = self.fresh("a"), self.fresh("b")
        self.w(
            f"{st} = [{b2} if isinstance({b2}, AccBV) "
            f"else _where({act}, {b2}, {a2}) "
            f"for {a2}, {b2} in zip({st}, [{', '.join(res)}])]"
        )
        self.w(f"eng.mask = {sv}")
        self.w(f"{fuel} -= 1")
        self.w(f"if {fuel} <= 0:")
        self.w(
            '    raise ExecError("while loop exceeded iteration fuel '
            '(%d iterations)" % _values.WHILE_FUEL)'
        )
        self.level -= 1
        self.w(f"eng.mask = {sv}")
        for j, (slot, _nm) in enumerate(e.outs):
            self.w(f"s{slot} = {st}[{j}]")

    # -- accumulators ----------------------------------------------------------

    def _emit_withacc(self, e) -> None:
        d, bs = self.fresh("d"), self.fresh("bs")
        self.w(f"{d} = len(eng.bstack)")
        self.w(f"{bs} = tuple(eng.bstack)")
        for (slot, _nm), arr in zip(e.params, e.arrs):
            ad = self.fresh("ad")
            self.w(f"{ad} = _expand({self.ref(arr)}, {d})")
            self.w(f"{ad} = np.broadcast_to({ad}, {bs} + {ad}.shape[{d}:]).copy()")
            self.w(f"s{slot} = AccBV({ad}, {d})")
        res = self.emit_body(e.body)
        for j, (slot, _nm) in enumerate(e.outs):
            if j < e.n_acc:
                self.w(f"if not isinstance({res[j]}, AccBV):")
                self.w(
                    '    raise ExecError('
                    '"withacc: lambda must return its accumulators")'
                )
                self.w(f"s{slot} = BV({res[j]}.data, {res[j]}.bdims)")
            else:
                self.w(f"s{slot} = {res[j]}")

    def _emit_updacc(self, e) -> None:
        acc, v = self.ref(e.acc), self.ref(e.v)
        idxs = [self.ref(i) for i in e.idx]
        self.w(f"if not isinstance({acc}, AccBV):")
        self.w('    raise ExecError("upd: operand is not an accumulator")')
        k, bs, vd = self.fresh("k"), self.fresh("bs"), self.fresh("vd")
        dims = ", ".join([f"{v}.bdims", f"{acc}.bdims"]
                         + [f"{i}.bdims" for i in idxs])
        self.w(f"{k} = max(({dims}))")
        self.w("if eng.mask is not None:")
        self.w(f"    {k} = max({k}, eng.mask.bdims)")
        self.w(f"{bs} = tuple(eng.bstack[:{k}])")
        self.w(f"{vd} = _expand({v}, {k})")
        self.w(f"{vd} = np.broadcast_to({vd}, {bs} + {vd}.shape[{k}:])")
        self.w(f"{vd} = _mask_where(eng, {vd}, {k}, np.zeros((), dtype={vd}.dtype))")
        if not idxs:
            ex = self.fresh("ex")
            self.w(f"{ex} = tuple(range({acc}.bdims, {k}))")
            self.w(f"{acc}.data += {vd}.sum(axis={ex}) if {ex} else {vd}")
        else:
            clips = ", ".join(
                f"np.clip(np.broadcast_to(_expand({i}, {k}), {bs}), 0, "
                f"max({acc}.data.shape[{acc}.bdims + {a}] - 1, 0))"
                for a, i in enumerate(idxs)
            )
            sel = self.fresh("sel")
            self.w(f"{sel} = _grids({bs})[:{acc}.bdims] + ({clips},)")
            self.w(f"np.add.at({acc}.data, {sel}, {vd})")
        self.w(f"s{e.out[0]} = {acc}")

    # -- top level -------------------------------------------------------------

    def render(self, ir: PlanIR) -> Tuple[str, Dict[str, object]]:
        # Body first: emitting it populates the const table.
        res = self.emit_body(ir.body)
        ret = f"return ({', '.join(res)},)" if res else "return ()"
        self.w(ret)
        ns = dict(_BASE_NAMESPACE)
        for i, obj in enumerate(self.consts):
            ns[f"_K{i}"] = obj
        # Every injected name (helpers + consts) is passed as a keyword-only
        # default: bound once at ``def`` time, then LOAD_FAST in the body —
        # the same trick the closure emitter plays with default args, without
        # which hot loops pay a dict lookup per global reference.  Nested
        # ``If``-branch defs reach them through closure cells, equally fast.
        params = "".join(f", s{s}" for s in ir.param_slots)
        injected = "".join(f", {nm}={nm}" for nm in ns)
        head = f"def _plan_main(eng{params}, *{injected}):"
        src = "\n".join([head] + self.lines) + "\n"
        return src, ns


# ---------------------------------------------------------------------------
# Codegen plans
# ---------------------------------------------------------------------------


_DUMP_SEQ = [0]


def _maybe_dump(fun: Fun, specialized: bool, src: str) -> None:
    path = os.environ.get("REPRO_CODEGEN_DUMP")
    if not path:
        return
    os.makedirs(path, exist_ok=True)
    with _LOCK:
        seq = _DUMP_SEQ[0]
        _DUMP_SEQ[0] += 1
    kind = "spec" if specialized else "generic"
    fname = f"{seq:04d}_{fun.name}_{kind}_{ir_hash(fun)[:12]}.py"
    with open(os.path.join(path, fname), "w") as fh:
        fh.write(f"# {fun.name} ({kind}) ir_hash={ir_hash(fun)}\n")
        fh.write(src)


class CodegenPlan:
    """A plan compiled to a single Python code object (``exec/codegen.py``).

    Drop-in equivalent of ``Plan`` — same constructor shape, same
    ``run``/``run_batched`` contract, same bitwise results — but execution
    is one compiled function call instead of a closure-per-instruction
    interpreter walk."""

    def __init__(
        self,
        fun: Fun,
        static: Optional[StaticInfo] = None,
        spec_sig: Optional[tuple] = None,
        ir: Optional[PlanIR] = None,
    ) -> None:
        with _obs_tracing.timed("emit", cat="compile", fun=fun.name, emitter="codegen") as tem:
            if ir is None:
                ir = lower_fun(fun, static)
            self.fun = fun
            self.specialized = ir.specialized
            self.spec_sig = spec_sig
            self.param_slots = ir.param_slots
            self.param_types = ir.param_types
            self.nslots = ir.nslots
            self.fused_stms = ir.fused
            self.spec_folds = ir.folds
            em = _SrcEmitter()
            src, ns = em.render(ir)
            self.source = src
            #: Injected Python constants, in ``_K{i}`` order — with
            #: ``source``/``param_types`` this is everything a process
            #: worker needs to recompile the plan (``codegen_payload``).
            self.consts = tuple(em.consts)
            self.schedule_str = plan_schedules(ir)
        # Layer-2 codegen sanity (ir/verify knob): the rendered module must
        # parse and reference nothing beyond the injected namespace.  Once
        # per compile; cached plans never re-check.
        from .verify_plan import maybe_verify_codegen_source

        maybe_verify_codegen_source(fun.name, src, ns)
        with _obs_tracing.timed("compile", cat="compile", fun=fun.name, emitter="codegen") as tcc:
            code = compile(src, f"<codegen:{fun.name}>", "exec")
            exec(code, ns)
            self._fn = ns["_plan_main"]
        _maybe_dump(fun, self.specialized, src)
        with _LOCK:
            PLAN_STATS["fused_stms"] += ir.fused
            PLAN_STATS["spec_folds"] += ir.folds
            st = EMITTER_STATS.setdefault(
                "codegen",
                {"plans": 0, "emit_s": 0.0, "code_objects": 0,
                 "source_bytes": 0, "compile_s": 0.0},
            )
            st["plans"] += 1
            st["emit_s"] += tem.seconds
            st["code_objects"] += 1
            st["source_bytes"] += len(src)
            st["compile_s"] += tcc.seconds

    def __repr__(self) -> str:
        kind = "specialized " if self.specialized else ""
        return (
            f"<{kind}CodegenPlan {self.fun.name}: {len(self.source)} source "
            f"bytes, {self.nslots} slots, {self.fused_stms} fused, "
            f"{self.spec_folds} folds>"
        )

    def _check_spec_sig(self, args: Sequence[object], batched) -> None:
        check_spec_sig(self.fun.name, self.spec_sig, args, batched)

    def run(self, args: Sequence[object]) -> Tuple[object, ...]:
        if len(args) != len(self.param_slots):
            raise ExecError(
                f"{self.fun.name}: expected {len(self.param_slots)} arguments, "
                f"got {len(args)}"
            )
        self._check_spec_sig(args, None)
        with _obs_tracing.span("execute", cat="exec", fun=self.fun.name, emitter="codegen",
                               schedule=self.schedule_str or None):
            eng = _Engine(0)
            vals = [
                BV(np.asarray(coerce_arg(a, t)), 0)
                for a, t in zip(args, self.param_types)
            ]
            with np.errstate(all="ignore"):
                res = self._fn(eng, *vals)
            out = []
            for r in res:
                if isinstance(r, AccBV):
                    raise ExecError("accumulator escaped to top level")
                d = np.asarray(r.data)
                out.append(d if d.ndim else d[()])
            return tuple(out)

    def run_batched(
        self, args: Sequence[object], batched: Sequence[bool], batch_size: int
    ) -> Tuple[object, ...]:
        """Evaluate once with the flagged arguments batched on a leading axis
        (same contract as ``Plan.run_batched``)."""
        if len(args) != len(self.param_slots):
            raise ExecError(
                f"{self.fun.name}: expected {len(self.param_slots)} arguments, "
                f"got {len(args)}"
            )
        if len(batched) != len(args):
            raise ExecError("run_batched: batched flags must match arguments")
        self._check_spec_sig(args, batched)
        with _obs_tracing.span("execute", cat="exec", fun=self.fun.name, emitter="codegen",
                               batched=True, schedule=self.schedule_str or None):
            b = int(batch_size)
            eng = _Engine(0)
            eng.bstack.append(b)
            vals = []
            for a, t, flag in zip(args, self.param_types, batched):
                if flag:
                    arr = np.asarray(a)
                    if arr.ndim == 0 or arr.shape[0] != b:
                        raise ExecError(
                            f"batched argument: leading axis {arr.shape[:1]} does "
                            f"not match batch size {b}"
                        )
                    vals.append(BV(np.ascontiguousarray(arr, dtype=np_dtype(t)), 1))
                else:
                    vals.append(BV(np.asarray(coerce_arg(a, t)), 0))
            with np.errstate(all="ignore"):
                res = self._fn(eng, *vals)
            out = []
            for r in res:
                if isinstance(r, AccBV):
                    raise ExecError("accumulator escaped to top level")
                d = _expand(r, 1)
                out.append(np.ascontiguousarray(np.broadcast_to(d, (b,) + d.shape[1:])))
            return tuple(out)


from .values import coerce_arg  # noqa: E402  (placed after class for clarity)


def compile_codegen(
    fun: Fun,
    args: Optional[Sequence[object]] = None,
    batched: Optional[Sequence[bool]] = None,
) -> CodegenPlan:
    """Compile ``fun`` to a fresh (uncached) codegen plan — specialised to
    ``args``' concrete shapes when given, shape-generic otherwise."""
    if args is None:
        return CodegenPlan(fun)
    shapes, flags = spec_signature(args, batched)
    return CodegenPlan(
        fun,
        static=infer_static_shapes(fun, list(shapes)),
        spec_sig=(shapes, flags),
    )


register_emitter("codegen", CodegenPlan)


# ---------------------------------------------------------------------------
# Shipping codegen plans to process workers
# ---------------------------------------------------------------------------
#
# Code objects don't pickle, but *source* does: a process worker can rebuild
# a codegen plan from ``(name, source, consts, param_types)`` — the injected
# ``_K{i}`` constants are ufuncs, dtypes and prebuilt arrays, all picklable
# for the programs the shard executor ships (anything exotic surfaces as a
# PicklingError at submit time and degrades to the thread pool).


_PAYLOAD_MEMO: "BoundedLRU" = None  # type: ignore[assignment]
_PAYLOAD_MEMO_CAP = 128


def codegen_payload(fun: Fun) -> Tuple[str, str, tuple, tuple]:
    """``(name, source, consts, param_types)`` for worker-side recompilation
    (memoised per ``fun`` identity; workers cache by ``ir_hash``)."""
    global _PAYLOAD_MEMO
    if _PAYLOAD_MEMO is None:
        from ..util import BoundedLRU

        _PAYLOAD_MEMO = BoundedLRU()
    ent = _PAYLOAD_MEMO.get(id(fun))
    if ent is not None and ent[0] is fun:
        return ent[1]
    plan = CodegenPlan(fun)
    payload = (fun.name, plan.source, plan.consts, tuple(plan.param_types))
    _PAYLOAD_MEMO.put(id(fun), (fun, payload), _PAYLOAD_MEMO_CAP)
    return payload


class _ShippedFun:
    """Stand-in for the ``fun`` a shipped plan no longer carries: the run
    methods only read ``.name`` (spans and error messages)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class ShippedCodegenPlan(CodegenPlan):
    """A ``CodegenPlan`` rebuilt worker-side from a ``codegen_payload``.

    Skips lowering and emission entirely — the parent already did both —
    and just recompiles the shipped source against the shared base
    namespace plus the shipped constants.  ``run``/``run_batched`` are
    inherited unchanged, so chunk execution is bitwise-identical to the
    parent's own codegen backend."""

    def __init__(self, payload: Tuple[str, str, tuple, tuple]) -> None:
        name, source, consts, param_types = payload
        ns = dict(_BASE_NAMESPACE)
        for i, obj in enumerate(consts):
            ns[f"_K{i}"] = obj
        with _obs_tracing.timed("compile", cat="compile", fun=name, emitter="codegen"):
            code = compile(source, f"<codegen:shipped:{name}>", "exec")
            exec(code, ns)
            self._fn = ns["_plan_main"]
        self.fun = _ShippedFun(name)
        self.specialized = False
        self.spec_sig = None
        self.param_slots = tuple(range(len(param_types)))
        self.param_types = tuple(param_types)
        self.nslots = 0
        self.fused_stms = 0
        self.spec_folds = 0
        self.source = source
        self.consts = tuple(consts)
        self.schedule_str = ""


def run_fun_codegen(fun: Fun, args: Sequence[object]) -> Tuple[object, ...]:
    """Evaluate ``fun`` via the (cached) codegen backend."""
    return plan_for(fun, args, backend="codegen").run(args)


def run_fun_codegen_batched(
    fun: Fun, args: Sequence[object], batched: Sequence[bool], batch_size: int
) -> Tuple[object, ...]:
    """Evaluate ``fun`` once with batched arguments via the codegen backend."""
    return plan_for(fun, args, batched, backend="codegen").run_batched(
        args, batched, batch_size
    )
