"""The ``"profile"`` plan emitter: per-instruction wall-clock attribution.

Registered through the emitter seam in ``exec/plan.py`` (the same
registry ``"codegen"`` uses), so it composes with both cache tiers, the
shard executor and every backend that resolves plans through
``plan_for``.  A ``ProfilePlan`` is a ``Plan`` whose top-level
instruction closures are wrapped with timing; each measurement is keyed
to the *source statements* the instruction executes (the provenance
``exec/lower.py`` records on every top-level plan-IR instruction) and
labelled via ``ir/pretty``.  Results are bitwise-identical to the plain
``plan`` emitter — the wrapper only observes.

``profile_report()`` ranks the top-k hotspots and sets measured seconds
against the static cost model's ``estimate_stms`` work for the same
statements, flagging rank-order inversions: statement pairs where one is
at least 4× hotter than the other yet the model orders them the other
way round.  Those inversions are exactly where cost-driven decisions
(fusion, shard chunking, tier-2 promotion) go wrong, which is what makes
the column pair actionable.

Selection: pass ``emitter="profile"`` to ``plan_for``, or set
``REPRO_PROFILE`` — any truthy value routes default plan-backend
executions through this emitter; a value naming a file (a path separator
or a ``.json`` suffix) additionally writes the report there at
interpreter exit.
"""
from __future__ import annotations

import atexit
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..ir.analysis import ir_hash
from ..ir.cost_model import estimate_stms
from ..ir.pretty import pretty_exp
from ..exec.lower import lower_fun
from ..exec.plan import Plan, register_emitter
from . import metrics, tracing

__all__ = [
    "ProfilePlan",
    "profile_report",
    "format_profile_report",
    "profile_summary",
    "reset_profile",
    "write_profile",
]

_PLOCK = threading.Lock()

#: The separation factor above which a measured ordering counts as
#: *strong* — only strongly-separated pairs can flag a cost-model
#: rank inversion (mirrors the ≥4x convention of the PR 5 validation).
RANK_SEPARATION = 4.0


class _Rec:
    __slots__ = ("label", "kind", "prov", "fun", "schedule", "calls", "seconds")

    def __init__(self, label: str, kind: str, prov: tuple, fun: str,
                 schedule: str = ""):
        self.label = label
        self.kind = kind
        self.prov = prov
        self.fun = fun
        self.schedule = schedule
        self.calls = 0
        self.seconds = 0.0


# (fun name, ir hash, specialized, instr index) -> _Rec
_DATA: Dict[tuple, _Rec] = {}


def _stm_label(stm) -> str:
    pats = ", ".join(v.name for v in stm.pat)
    txt = pretty_exp(stm.exp).splitlines()[0].strip()
    if len(txt) > 48:
        txt = txt[:45] + "..."
    return f"{pats} = {txt}"


def _label_of(prov: tuple, kind: str) -> str:
    if not prov:
        return f"<{kind}>"
    if len(prov) == 1:
        return _stm_label(prov[0])
    first, last = prov[0].pat[0].name, prov[-1].pat[0].name
    return f"run[{len(prov)}] {first}..{last}"


def _wrap(closure, key: tuple, label: str, kind: str, prov: tuple, fun: str,
          schedule: str = ""):
    """Time one instruction closure; the record is resolved per call so
    accumulation survives ``reset_profile`` on cached plans."""

    def timed_ins(eng, _c=closure):
        t0 = time.perf_counter()
        try:
            return _c(eng)
        finally:
            dt = time.perf_counter() - t0
            with _PLOCK:
                rec = _DATA.get(key)
                if rec is None:
                    rec = _DATA[key] = _Rec(label, kind, prov, fun, schedule)
                rec.calls += 1
                rec.seconds += dt

    return timed_ins


class ProfilePlan(Plan):
    """A ``Plan`` whose top-level instructions are timed and attributed.

    Lowering, caching and results are exactly the plain emitter's; only
    the emitted closures differ, by one timing wrapper each.
    """

    emitter_name = "profile"

    def __init__(self, fun, static=None, spec_sig=None, ir=None):
        if ir is None:
            ir = lower_fun(fun, static)
        super().__init__(fun, static=static, spec_sig=spec_sig, ir=ir)
        base = (fun.name, ir_hash(fun), bool(ir.specialized))
        instrs, res = self.code
        wrapped = tuple(
            _wrap(
                c,
                base + (i,),
                _label_of(ins.prov, ins.kind),
                ins.kind,
                ins.prov,
                fun.name,
                ins.schedule,
            )
            for i, (c, ins) in enumerate(zip(instrs, ir.body.instrs))
        )
        self.code = (wrapped, res)


register_emitter("profile", ProfilePlan)


def reset_profile() -> None:
    """Drop all accumulated per-instruction timings."""
    with _PLOCK:
        _DATA.clear()


def profile_summary() -> Dict[str, Any]:
    """The registry-sized view: totals only (full detail via
    ``profile_report``)."""
    with _PLOCK:
        recs = list(_DATA.values())
    return {
        "instructions": len(recs),
        "calls": sum(r.calls for r in recs),
        "seconds": sum(r.seconds for r in recs),
    }


def profile_report(top_k: int = 10) -> Dict[str, Any]:
    """Rank instruction hotspots; measured vs cost-model work side by side.

    Returns ``{total_s, execute_span_s, coverage, by_kind, entries}``.
    Each entry carries ``label`` / ``fun`` / ``kind`` / ``calls`` /
    ``seconds`` / ``share`` / ``est_work`` (``estimate_stms(...).total``
    over its provenance) / ``measured_rank`` / ``est_rank`` /
    ``mispredicted``.  ``coverage`` is instruction-attributed seconds
    over the ``execute`` span total (requires tracing on to be set) —
    the acceptance bar is ≥0.9 on the GMM gradient.
    """
    with _PLOCK:
        recs = sorted(_DATA.values(), key=lambda r: r.seconds, reverse=True)
        recs = [
            (r.label, r.kind, r.prov, r.fun, r.schedule, r.calls, r.seconds)
            for r in recs
        ]
    total = sum(sec for *_, sec in recs)
    by_kind: Dict[str, float] = {}
    for _, kind, _, _, _, _, sec in recs:
        by_kind[kind] = by_kind.get(kind, 0.0) + sec

    entries: List[Dict[str, Any]] = []
    ests: List[Optional[float]] = []
    for label, kind, prov, fun, schedule, calls, sec in recs[: max(top_k, 0)]:
        est = estimate_stms(prov).total if prov else None
        ests.append(est)
        entries.append(
            {
                "label": label,
                "fun": fun,
                "kind": kind,
                "schedule": schedule,
                "calls": calls,
                "seconds": sec,
                "share": (sec / total) if total else 0.0,
                "est_work": est,
                "measured_rank": len(entries) + 1,
            }
        )
    est_order = sorted(
        (i for i, e in enumerate(ests) if e is not None),
        key=lambda i: ests[i],
        reverse=True,
    )
    for rank, i in enumerate(est_order, start=1):
        entries[i]["est_rank"] = rank
    for e in entries:
        e.setdefault("est_rank", None)
        e["mispredicted"] = False
    # A pair (i hotter than j by >= RANK_SEPARATION) the model orders the
    # other way round flags both ends: i is under-estimated, j over.
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            ei, ej = ests[i], ests[j]
            if ei is None or ej is None:
                continue
            si, sj = entries[i]["seconds"], entries[j]["seconds"]
            if si >= RANK_SEPARATION * sj and ei < ej:
                entries[i]["mispredicted"] = True
                entries[j]["mispredicted"] = True

    phases = tracing.phase_totals()
    execute_s = phases.get("execute", {}).get("seconds")
    return {
        "total_s": total,
        "execute_span_s": execute_s,
        "coverage": (total / execute_s) if execute_s else None,
        "by_kind": by_kind,
        "entries": entries,
    }


def format_profile_report(report: Optional[Dict[str, Any]] = None, top_k: int = 10) -> str:
    """The report as an aligned text table (what the README shows)."""
    rep = report if report is not None else profile_report(top_k)
    lines = [
        f"profile: {rep['total_s']:.4f}s attributed over "
        f"{len(rep['entries'])} top instructions"
        + (
            f" ({100 * rep['coverage']:.1f}% of execute spans)"
            if rep["coverage"] is not None
            else ""
        ),
        f"{'#':>2s} {'seconds':>9s} {'share':>6s} {'calls':>7s} "
        f"{'est work':>10s} {'est#':>4s} {'':2s} label",
    ]
    for e in rep["entries"]:
        est = f"{e['est_work']:.3g}" if e["est_work"] is not None else "-"
        erk = str(e["est_rank"]) if e["est_rank"] is not None else "-"
        flag = "!" if e["mispredicted"] else ""
        sched = f" [{e['schedule']}]" if e.get("schedule") else ""
        lines.append(
            f"{e['measured_rank']:2d} {e['seconds']:9.4f} "
            f"{100 * e['share']:5.1f}% {e['calls']:7d} {est:>10s} {erk:>4s} "
            f"{flag:2s} {e['fun']}: {e['label']}{sched}"
        )
    if rep["by_kind"]:
        top = sorted(rep["by_kind"].items(), key=lambda kv: kv[1], reverse=True)
        lines.append("by kind: " + "  ".join(f"{k}={v:.4f}s" for k, v in top))
    return "\n".join(lines)


def _profile_path() -> Optional[str]:
    v = os.environ.get("REPRO_PROFILE", "")
    if v and (os.sep in v or v.endswith(".json")):
        return v
    return None


def write_profile(path: Optional[str] = None, top_k: int = 25) -> Optional[str]:
    """Write ``profile_report`` as JSON (default: the ``REPRO_PROFILE``
    file, when the knob names one); returns the path written."""
    path = path or _profile_path()
    if not path:
        return None
    with open(path, "w") as fh:
        json.dump(profile_report(top_k), fh, indent=1)
    return path


def _at_exit() -> None:
    try:
        write_profile()
    except OSError:
        pass


atexit.register(_at_exit)
metrics.register_source("profile", profile_summary, reset_profile)
