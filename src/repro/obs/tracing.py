"""Structured tracing: nestable spans over the compile/execute pipeline.

A *span* marks one phase (``trace``, ``opt:<pass>``, ``lower``, ``emit``,
``compile``, ``promote``, ``execute``, ``shard:chunk`` …).  Spans nest
freely, are thread-aware, and are collected into a bounded ring buffer
as Chrome-trace ``B``/``E`` event pairs; ``export()`` (or interpreter
exit, when ``REPRO_TRACE=<file>`` is set) writes the buffer as a
Chrome-trace JSON loadable in ``chrome://tracing`` / Perfetto.

Zero overhead when off: ``span()`` returns a shared no-op context
manager unless tracing is active, so hot paths pay one function call
and an environment-dict lookup.  Tracing activates either explicitly
(``enable()`` / ``collecting()``) or via the ``REPRO_TRACE`` environment
variable, which — like every other knob in this repo — is re-read per
call so tests can monkeypatch it.

``timed()`` is the migration target for the pipeline's historical
``time.perf_counter()`` bookkeeping: it *always* measures (exposing
``.seconds`` and feeding a registry timer) and additionally records a
trace event when tracing is on.
"""
from __future__ import annotations

import atexit
import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from ..util import env_capacity
from . import metrics

__all__ = [
    "span",
    "timed",
    "enable",
    "disable",
    "active",
    "collecting",
    "export",
    "events",
    "phase_totals",
    "reset",
]

_LOCK = threading.RLock()


class _TraceState:
    __slots__ = ("path", "explicit", "events", "phases", "epoch")

    def __init__(self, path: Optional[str], explicit: bool, maxlen: int):
        self.path = path
        self.explicit = explicit
        self.events: deque = deque(maxlen=maxlen)
        self.phases: Dict[str, List[float]] = {}  # name -> [count, seconds]
        self.epoch = time.perf_counter()


_STATE: Optional[_TraceState] = None
_ATEXIT_ARMED = False


def _buffer_cap() -> int:
    return env_capacity("REPRO_TRACE_BUFFER", 1 << 16)


def _arm_atexit() -> None:
    global _ATEXIT_ARMED
    if not _ATEXIT_ARMED:
        _ATEXIT_ARMED = True
        atexit.register(_at_exit)


def _at_exit() -> None:
    st = _STATE
    if st is not None and st.path:
        try:
            export()
        except OSError:
            pass


def active() -> Optional[_TraceState]:
    """The live trace state, or ``None`` when tracing is off.

    An explicit ``enable()`` wins; otherwise ``REPRO_TRACE`` governs,
    re-read per call so environment flips take effect immediately.
    """
    global _STATE
    st = _STATE
    if st is not None and st.explicit:
        return st
    path = os.environ.get("REPRO_TRACE")
    if path:
        if st is None or st.path != path:
            with _LOCK:
                st = _STATE
                if st is None or st.path != path:
                    st = _STATE = _TraceState(path, False, _buffer_cap())
                    _arm_atexit()
        return st
    if st is not None:  # env-driven state whose variable went away
        _STATE = None
    return None


def enable(path: Optional[str] = None) -> None:
    """Turn tracing on programmatically (wins over ``REPRO_TRACE``)."""
    global _STATE
    with _LOCK:
        _STATE = _TraceState(path, True, _buffer_cap())
        _arm_atexit()


def disable() -> None:
    """Turn off an explicitly-enabled tracer (env re-evaluated next call)."""
    global _STATE
    with _LOCK:
        _STATE = None


def reset() -> None:
    """Drop buffered events and phase totals, keeping the tracer active."""
    st = _STATE
    if st is not None:
        with _LOCK:
            st.events.clear()
            st.phases.clear()


class collecting:
    """Ensure spans are collected within a block.

    Leaves an already-active tracer untouched; otherwise enables an
    in-memory one and disables it on exit.  Used by the benchmark
    harness to get per-phase second totals without a trace file.
    """

    def __enter__(self) -> _TraceState:
        self._owned = active() is None
        if self._owned:
            enable(None)
        return active()  # type: ignore[return-value]

    def __exit__(self, *exc: Any) -> bool:
        if self._owned:
            disable()
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL = _NullSpan()


class Span:
    __slots__ = ("st", "name", "cat", "args", "t0")

    def __init__(self, st: _TraceState, name: str, cat: str, args: Dict[str, Any]):
        self.st = st
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "Span":
        st = self.st
        self.t0 = time.perf_counter()
        st.events.append(
            {
                "ph": "B",
                "name": self.name,
                "cat": self.cat,
                "ts": (self.t0 - st.epoch) * 1e6,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": self.args,
            }
        )
        return self

    def __exit__(self, *exc: Any) -> bool:
        # Runs on the exception path too: every B gets its E.
        t1 = time.perf_counter()
        st = self.st
        st.events.append(
            {
                "ph": "E",
                "name": self.name,
                "cat": self.cat,
                "ts": (t1 - st.epoch) * 1e6,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            }
        )
        cell = st.phases.get(self.name)
        if cell is None:
            cell = st.phases[self.name] = [0, 0.0]
        cell[0] += 1
        cell[1] += t1 - self.t0
        return False


def span(name: str, cat: str = "phase", **args: Any):
    """A nestable span; a shared no-op when tracing is off."""
    st = active()
    if st is None:
        return _NULL
    return Span(st, name, cat, args)


class Timed:
    """A span that always measures, for call sites that need the number.

    ``.seconds`` is valid after the block; the duration also lands in
    the metrics timer ``name`` and — when tracing is on — in the trace
    buffer like any other span.
    """

    __slots__ = ("name", "cat", "args", "t0", "seconds", "_sp")

    def __init__(self, name: str, cat: str, args: Dict[str, Any]):
        self.name = name
        self.cat = cat
        self.args = args
        self.seconds = 0.0

    def __enter__(self) -> "Timed":
        st = active()
        self._sp = Span(st, self.name, self.cat, self.args).__enter__() if st else None
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.seconds = time.perf_counter() - self.t0
        if self._sp is not None:
            self._sp.__exit__(*exc)
        metrics.observe(self.name, self.seconds)
        return False


def timed(name: str, cat: str = "phase", **args: Any) -> Timed:
    return Timed(name, cat, args)


def events() -> List[Dict[str, Any]]:
    """A balanced copy of the buffered events (oldest first).

    Ring-buffer eviction can orphan ``E`` events and an export taken
    mid-span leaves ``B`` events open; both are repaired so the JSON is
    always well-formed for trace viewers.
    """
    st = active()
    if st is None:
        return []
    with _LOCK:
        raw = list(st.events)
        now = (time.perf_counter() - st.epoch) * 1e6
    out: List[Dict[str, Any]] = []
    stacks: Dict[Any, List[Dict[str, Any]]] = {}
    for ev in raw:
        key = (ev["pid"], ev["tid"])
        if ev["ph"] == "B":
            stacks.setdefault(key, []).append(ev)
            out.append(ev)
        elif ev["ph"] == "E":
            if stacks.get(key):
                stacks[key].pop()
                out.append(ev)
            # else: begin was evicted from the ring buffer — drop the end
        else:
            out.append(ev)
    for (pid, tid), open_spans in stacks.items():
        for ev in reversed(open_spans):
            out.append({"ph": "E", "name": ev["name"], "cat": ev["cat"], "ts": now, "pid": pid, "tid": tid})
    return out


def export(path: Optional[str] = None) -> Optional[str]:
    """Write the buffer as Chrome-trace JSON; returns the path written.

    With no ``path`` argument, the tracer's configured file (from
    ``REPRO_TRACE`` or ``enable(path)``) is used; ``None`` is returned
    when tracing is off or no file is configured.
    """
    st = active()
    if st is None:
        return None
    path = path or st.path
    if not path:
        return None
    payload = {"traceEvents": events(), "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return path


def phase_totals() -> Dict[str, Dict[str, float]]:
    """Accumulated ``{span name: {count, seconds}}`` since enable/reset."""
    st = active()
    if st is None:
        return {}
    with _LOCK:
        return {k: {"count": c, "seconds": s} for k, (c, s) in st.phases.items()}
