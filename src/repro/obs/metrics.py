"""One metrics registry for the whole pipeline.

Before this module existed the repo had four stats surfaces with four
lifecycles: ``plan_cache_stats``/``clear_plan_cache`` (exec/plan),
``shard_stats``/``reset_shard_stats`` (exec/shard), ``opt_stats``/
``reset_opt_stats`` (opt/pipeline) and ``fusion_stats``/
``reset_fusion_stats`` (opt/fusion).  Each module now *re-homes* its
counters here, in one of two ways:

* ``counter_group(name, initial)`` returns a ``CounterGroup`` — a plain
  ``dict`` subclass, so existing ``STATS["hits"] += 1`` call sites keep
  working unchanged — that the registry owns: it appears in
  ``snapshot()`` and is zeroed by ``reset_all()``.
* ``register_source(name, snapshot_fn, reset_fn)`` overrides (or adds)
  the snapshot/reset pair for a section, for surfaces whose view is
  richer than their raw counters (e.g. ``plan_cache_stats`` adds cache
  entry counts and emitter aggregates).

On top of that the registry offers free-standing *labelled* counters,
gauges and timers (``inc``/``set_gauge``/``observe``/``timer``) for
instrumentation that has no module-level dict of its own.

``snapshot()`` returns one nested dict covering everything;
``delta(before, after)`` subtracts two snapshots recursively so tests
and benchmarks can attribute what a measured region changed.
"""
from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "CounterGroup",
    "counter_group",
    "register_source",
    "inc",
    "set_gauge",
    "observe",
    "timer",
    "snapshot",
    "reset_all",
    "delta",
]

_LOCK = threading.RLock()

_LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


class CounterGroup(dict):
    """A named group of counters owned by the registry.

    It is a ``dict`` so the modules that own the counters mutate it
    directly (``SHARD_STATS["chunks"] += 1``); the registry only needs
    to know how to read and reset it.
    """

    def __init__(self, name: str, initial: Dict[str, Any]):
        super().__init__(initial)
        self.name = name
        self._initial = dict(initial)

    def reset(self) -> None:
        for k in [k for k in self if k not in self._initial]:
            del self[k]
        for k, v in self._initial.items():
            self[k] = v


# section name -> (snapshot_fn, reset_fn)
_SECTIONS: Dict[str, Tuple[Callable[[], Any], Callable[[], None]]] = {}

_COUNTERS: Dict[_LabelKey, float] = {}
_GAUGES: Dict[_LabelKey, float] = {}
_TIMERS: Dict[_LabelKey, List[float]] = {}  # key -> [count, seconds]


def counter_group(name: str, initial: Dict[str, Any]) -> CounterGroup:
    """Create (and register) a module-owned counter dict."""
    g = CounterGroup(name, initial)
    with _LOCK:
        _SECTIONS.setdefault(name, (lambda g=g: dict(g), g.reset))
    return g


def register_source(name: str, snapshot_fn: Callable[[], Any], reset_fn: Callable[[], None]) -> None:
    """Register (or override) the snapshot/reset pair for a section.

    Modules whose public stats view is richer than a raw counter dict
    point their existing ``*_stats()``/``reset_*()`` functions here; the
    old functions stay callable and become the section's view.
    """
    with _LOCK:
        _SECTIONS[name] = (snapshot_fn, reset_fn)


def _key(name: str, labels: Dict[str, Any]) -> _LabelKey:
    return (name, tuple(sorted(labels.items())))


def _fmt(key: _LabelKey) -> str:
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def inc(name: str, value: float = 1, **labels: Any) -> None:
    """Increment a labelled counter."""
    k = _key(name, labels)
    with _LOCK:
        _COUNTERS[k] = _COUNTERS.get(k, 0) + value


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set a labelled gauge to its latest value."""
    with _LOCK:
        _GAUGES[_key(name, labels)] = value


def observe(name: str, seconds: float, **labels: Any) -> None:
    """Record one observation into a labelled timer."""
    k = _key(name, labels)
    with _LOCK:
        cell = _TIMERS.get(k)
        if cell is None:
            cell = _TIMERS[k] = [0, 0.0]
        cell[0] += 1
        cell[1] += seconds


class _Timer:
    __slots__ = ("name", "labels", "t0", "seconds")

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = labels
        self.seconds = 0.0

    def __enter__(self) -> "_Timer":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.seconds = time.perf_counter() - self.t0
        observe(self.name, self.seconds, **self.labels)
        return False


def timer(name: str, **labels: Any) -> _Timer:
    """Context manager measuring a block into a labelled timer."""
    return _Timer(name, labels)


def snapshot() -> Dict[str, Any]:
    """One nested dict covering every registered section plus the
    free-standing labelled counters/gauges/timers."""
    with _LOCK:
        sections = list(_SECTIONS.items())
        out: Dict[str, Any] = {
            "counters": {_fmt(k): v for k, v in _COUNTERS.items()},
            "gauges": {_fmt(k): v for k, v in _GAUGES.items()},
            "timers": {_fmt(k): {"count": c, "seconds": s} for k, (c, s) in _TIMERS.items()},
        }
    # Section snapshots run outside the registry lock: they may take the
    # owning module's lock, and the reverse ordering must stay impossible.
    for name, (snap, _) in sections:
        out[name] = snap()
    return out


def reset_all() -> None:
    """Zero every registered section and the labelled metrics."""
    with _LOCK:
        sections = list(_SECTIONS.values())
        _COUNTERS.clear()
        _GAUGES.clear()
        _TIMERS.clear()
    for _, reset in sections:
        reset()


def delta(before: Any, after: Any) -> Any:
    """Recursive difference of two snapshots.

    Numeric leaves become ``after - before`` (missing ``before`` counts
    as zero); non-numeric leaves keep the ``after`` value.
    """
    if isinstance(after, dict):
        b = before if isinstance(before, dict) else {}
        return {k: delta(b.get(k), v) for k, v in after.items()}
    if isinstance(after, bool):
        return after
    if isinstance(after, (int, float)):
        b = before if isinstance(before, (int, float)) and not isinstance(before, bool) else 0
        return after - b
    return after
