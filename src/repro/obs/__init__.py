"""repro.obs — the unified observability layer.

Three pillars, one import:

* :mod:`repro.obs.tracing` — nestable spans over every pipeline phase
  (trace → opt passes → lower → emit/compile → promote → execute, plus
  shard per-chunk spans), ring-buffered and exportable as Chrome-trace
  JSON via ``REPRO_TRACE=<file>``.
* :mod:`repro.obs.profiler` — the ``"profile"`` plan emitter: wraps
  every plan-IR instruction with timing keyed to its source statement
  and reports measured time against the static cost model.
* :mod:`repro.obs.metrics` — one registry for counters/gauges/timers;
  the four historical stats surfaces (plan cache, shard, opt, fusion)
  are re-homed here, with :func:`snapshot`/:func:`reset_all`/
  :func:`delta` as the single lifecycle.

Everything is zero-overhead when off: with ``REPRO_TRACE`` unset and the
default emitter, instrumented code paths pay a no-op span check only.
"""
from __future__ import annotations

from typing import Any, Dict

from . import metrics, tracing
from .metrics import delta
from .tracing import span, timed

__all__ = [
    "metrics",
    "tracing",
    "span",
    "timed",
    "delta",
    "snapshot",
    "reset_all",
]


def _ensure_sources() -> None:
    """Import the modules that own stats sections so snapshots are
    complete even before any program has been compiled."""
    from ..exec import plan as _plan, shard as _shard  # noqa: F401
    from ..exec import registry as _registry  # noqa: F401
    from ..opt import fusion as _fusion, pipeline as _pipeline  # noqa: F401


def snapshot() -> Dict[str, Any]:
    """One dict covering all stats surfaces and labelled metrics."""
    _ensure_sources()
    return metrics.snapshot()


def reset_all() -> None:
    """Zero every stats surface, the labelled metrics, the span buffer and
    the profiler's accumulated instruction timings (each surface registers
    its ``reset_*`` with the metrics registry on import)."""
    _ensure_sources()
    metrics.reset_all()
    tracing.reset()


def __getattr__(name: str):
    if name == "profiler":
        import importlib

        return importlib.import_module(".profiler", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
