"""Sparse k-means (paper §7.5, Table 4): CSR data, dense centres.

The cost uses the expanded norm ‖p − c‖² = ‖p‖² + ‖c‖² − 2·p·cᵀ so the
sparse row only participates through gathers (CSR in the IR version, COO
scatter in the eager baseline — exactly the formulations §7.5 describes).
"""
from __future__ import annotations

import numpy as np

import repro as rp
from ..baselines import eager as eg

__all__ = ["build_ir", "cost_np", "grad_manual", "cost_eager", "row_ids_of"]


def build_ir(nrows: int, k: int, d: int):
    """cost(indptr, indices, values, centres) -> scalar (CSR formulation)."""

    def cost(indptr, indices, values, centres):
        c2 = rp.map(
            lambda ci: rp.sum(rp.map(lambda j: centres[ci, j] ** 2.0, rp.iota(d))),
            rp.iota(k),
        )

        def per_row(i):
            start = indptr[i]
            count = indptr[i + 1] - start
            row2 = rp.fori_loop(
                count, lambda t, a: a + values[start + t] ** 2.0, 0.0
            )

            def dist_to(ci):
                dot = rp.fori_loop(
                    count,
                    lambda t, a: a + values[start + t] * centres[ci, indices[start + t]],
                    0.0,
                )
                return row2 + c2[ci] - 2.0 * dot

            return rp.min(rp.map(dist_to, rp.iota(k)))

        return rp.sum(rp.map(per_row, rp.iota(nrows)))

    return rp.trace(
        cost,
        [
            rp.ir.array(rp.I64, 1),
            rp.ir.array(rp.I64, 1),
            rp.ir.array(rp.F64, 1),
            rp.ir.array(rp.F64, 2),
        ],
        name="kmeans_sparse",
        arg_names=["indptr", "indices", "values", "centres"],
    )


def _dense_rows(indptr, indices, values, d):
    n = len(indptr) - 1
    dense = np.zeros((n, d))
    rows = row_ids_of(indptr)
    np.add.at(dense, (rows, indices), values)  # duplicates accumulate
    return dense


def cost_np(indptr, indices, values, centres) -> float:
    dense = _dense_rows(indptr, indices, values, centres.shape[1])
    d2 = ((dense[:, None, :] - centres[None, :, :]) ** 2).sum(-1)
    # The CSR formulation sums v² per nnz, which differs from ‖dense row‖²
    # only when a row repeats a column; datagen may produce repeats, so use
    # the same expansion as the IR program.
    row2 = np.zeros(len(indptr) - 1)
    np.add.at(row2, row_ids_of(indptr), values**2)
    c2 = (centres**2).sum(-1)
    cross = dense @ centres.T
    d2 = row2[:, None] + c2[None, :] - 2 * cross
    return float(d2.min(axis=1).sum())


def row_ids_of(indptr: np.ndarray) -> np.ndarray:
    """COO row ids from a CSR indptr."""
    n = len(indptr) - 1
    return np.repeat(np.arange(n), np.diff(indptr))


def grad_manual(indptr, indices, values, centres):
    """Hand-written gradient wrt centres (histogram method over assignments)."""
    k, d = centres.shape
    dense = _dense_rows(indptr, indices, values, d)
    row2 = np.zeros(len(indptr) - 1)
    np.add.at(row2, row_ids_of(indptr), values**2)
    c2 = (centres**2).sum(-1)
    d2 = row2[:, None] + c2[None, :] - 2 * dense @ centres.T
    assign = d2.argmin(axis=1)
    counts = np.bincount(assign, minlength=k).astype(np.float64)
    sums = np.zeros_like(centres)
    np.add.at(sums, assign, dense)
    return 2.0 * (counts[:, None] * centres - sums)


def cost_eager(indptr, indices, values, centres) -> "eg.T":
    """COO formulation with ``sparse.mm``-style scatter products (§7.5)."""
    rows = row_ids_of(np.asarray(indptr))
    v = values if isinstance(values, eg.T) else eg.T(values)
    c = centres if isinstance(centres, eg.T) else eg.T(centres)
    n = len(indptr) - 1
    k = c.shape[0]
    # cross[i, :] = Σ_j v_j · centres[:, col_j]  (a sparse-dense product)
    ct = c.Tr[np.asarray(indices)]  # (nnz, k)
    contrib = ct * v.reshape(-1, 1)
    cross = eg.scatter_add(eg.T(np.zeros((n, k))), rows, contrib)
    row2 = eg.scatter_add(eg.T(np.zeros(n)), rows, v * v)
    c2 = (c * c).sum(axis=1)
    d2 = row2.reshape(-1, 1) + c2.reshape(1, -1) - 2.0 * cross
    return d2.min(axis=1).sum()
