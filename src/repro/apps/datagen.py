"""Synthetic dataset generators for the benchmark applications.

The ADBench datasets, the NLP sparse matrices (movielens / nytimes / scrna)
and the RSBench/XSBench nuclide tables are not available offline; these
generators produce data with the same shapes, dtypes and structural
properties (Table 5a's (n, d, K) grid, CSR sparsity levels, resonance window
layout), which is what drives the cost of every objective.  All generators
are deterministic in their seed.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "gmm_instance",
    "kmeans_instance",
    "sparse_kmeans_instance",
    "lstm_instance",
    "ba_instance",
    "hand_instance",
    "xs_instance",
    "rs_instance",
    "GMM_SHAPES",
    "SPARSE_SHAPES",
]

#: Table 5a — the ADBench GMM dataset grid (n, d, K).
GMM_SHAPES = {
    "D0": (1000, 64, 200),
    "D1": (1000, 128, 200),
    "D2": (10000, 32, 200),
    "D3": (10000, 64, 25),
    "D4": (10000, 128, 25),
    "D5": (10000, 128, 200),
}

#: Sparse k-means NLP workloads (rows, cols, nnz-per-row) ~ Table 4.
SPARSE_SHAPES = {
    "movielens": (6040, 3706, 166),
    "nytimes": (30000, 10212, 71),
    "scrna": (26822, 2000, 59),
}


def gmm_instance(n: int, d: int, K: int, seed: int = 0):
    """ADBench-GMM-shaped instance: (alphas, means, icf, x, wishart)."""
    rng = np.random.default_rng(seed)
    L = d * (d + 1) // 2
    alphas = rng.standard_normal(K) * 0.5
    means = rng.standard_normal((K, d))
    icf = rng.standard_normal((K, L)) * 0.2
    x = rng.standard_normal((n, d))
    wishart = (1.0, 0)  # (gamma, m)
    return alphas, means, icf, x, wishart


def kmeans_instance(k: int, n: int, d: int, seed: int = 0):
    """Dense k-means: points drawn around k well-separated centres."""
    rng = np.random.default_rng(seed)
    centres = rng.standard_normal((k, d)) * 5.0
    assign = rng.integers(0, k, n)
    pts = centres[assign] + rng.standard_normal((n, d))
    init = centres + rng.standard_normal((k, d)) * 0.5
    return pts, init


def sparse_kmeans_instance(rows: int, cols: int, nnz_row: int, k: int = 10, seed: int = 0):
    """CSR-shaped sparse data: (indptr, indices, values, centres)."""
    rng = np.random.default_rng(seed)
    counts = np.maximum(1, rng.poisson(nnz_row, rows))
    indptr = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = rng.integers(0, cols, nnz).astype(np.int64)
    values = np.abs(rng.standard_normal(nnz)) + 0.1
    centres = np.abs(rng.standard_normal((k, cols))) * 0.1
    return indptr, indices, values, centres


def lstm_instance(bs: int, n: int, d: int, h: int, seed: int = 0):
    """LSTM inputs + parameters, [40]-style architecture.

    Weights follow the classic 4-gate layout: ``wx (4h, d)``, ``wh (4h, h)``,
    ``b (4h,)`` plus an output projection ``wy (d, h)``.
    """
    rng = np.random.default_rng(seed)
    scale = 0.2
    xs = rng.standard_normal((n, bs, d))
    wx = rng.standard_normal((4 * h, d)) * scale
    wh = rng.standard_normal((4 * h, h)) * scale
    b = rng.standard_normal(4 * h) * scale
    wy = rng.standard_normal((d, h)) * scale
    h0 = np.zeros((bs, h))
    c0 = np.zeros((bs, h))
    targets = rng.standard_normal((n, bs, d))
    return xs, wx, wh, b, wy, h0, c0, targets


def ba_instance(n_cams: int, n_pts: int, n_obs: int, seed: int = 0):
    """Bundle-adjustment-shaped instance (ADBench BA layout).

    Cameras are 11-vectors: rodrigues rotation (3), centre (3), focal (1),
    principal point (2), radial distortion (2).
    """
    rng = np.random.default_rng(seed)
    cams = rng.standard_normal((n_cams, 11)) * 0.1
    cams[:, 6] = 1.0 + 0.1 * rng.standard_normal(n_cams)  # focal
    pts = rng.standard_normal((n_pts, 3))
    pts[:, 2] += 10.0  # keep points in front of the cameras (well-conditioned)
    obs_cam = rng.integers(0, n_cams, n_obs).astype(np.int64)
    obs_pt = rng.integers(0, n_pts, n_obs).astype(np.int64)
    feats = rng.standard_normal((n_obs, 2)) * 0.1
    weights = np.abs(rng.standard_normal(n_obs)) + 0.5
    return cams, pts, weights, obs_cam, obs_pt, feats


def hand_instance(n_bones: int = 8, n_verts: int = 64, seed: int = 0):
    """Simplified hand-tracking instance: a kinematic chain of ``n_bones``
    rotations applied to skinned vertices, matched against targets.

    ``theta`` (3 per bone) are the pose parameters; ``base`` the rest-pose
    vertices; ``wghts`` the skinning weights; ``targets`` the observed
    points (the HAND objective's correspondences are fixed, "simple" mode).
    """
    rng = np.random.default_rng(seed)
    theta = rng.standard_normal(3 * n_bones) * 0.1
    base = rng.standard_normal((n_verts, 3))
    w = np.abs(rng.standard_normal((n_verts, n_bones))) + 0.1
    wghts = w / w.sum(axis=1, keepdims=True)
    targets = base + 0.05 * rng.standard_normal((n_verts, 3))
    return theta, base, wghts, targets


def xs_instance(n_lookups: int = 2000, n_nuclides: int = 32, n_gridpoints: int = 64, seed: int = 0):
    """XSBench-shaped instance: a unionised energy grid of cross-sections.

    Each nuclide has ``n_gridpoints`` (energy, xs...) rows; each lookup
    draws an energy and a material (a subset of nuclides) and sums
    interpolated cross-sections — indirect indexing + inner loops.
    """
    rng = np.random.default_rng(seed)
    egrid = np.sort(rng.random((n_nuclides, n_gridpoints)), axis=1)
    xs = np.abs(rng.standard_normal((n_nuclides, n_gridpoints))) + 0.01
    lookup_e = rng.random(n_lookups)
    mat_size = 8
    mats = rng.integers(0, n_nuclides, (n_lookups, mat_size)).astype(np.int64)
    conc = np.abs(rng.standard_normal((n_lookups, mat_size))) + 0.05
    return egrid, xs, lookup_e, mats, conc


def rs_instance(n_lookups: int = 1000, n_poles: int = 24, n_windows: int = 8, seed: int = 0):
    """RSBench-shaped instance: multipole resonance parameters per window.

    Each lookup evaluates a window of poles with a short inner loop of
    complex-like arithmetic (we carry re/im parts explicitly).
    """
    rng = np.random.default_rng(seed)
    pole_re = rng.standard_normal((n_windows, n_poles)) * 0.3
    pole_im = np.abs(rng.standard_normal((n_windows, n_poles))) + 0.1
    res_re = rng.standard_normal((n_windows, n_poles))
    res_im = rng.standard_normal((n_windows, n_poles))
    lookup_e = rng.random(n_lookups) * 2.0 + 0.5
    window_of = rng.integers(0, n_windows, n_lookups).astype(np.int64)
    return pole_re, pole_im, res_re, res_im, lookup_e, window_of
