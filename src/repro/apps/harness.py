"""Programmatic experiment harness.

The pytest-benchmark files under ``benchmarks/`` are the canonical way to
regenerate the paper's tables; this module exposes the same measurements as
plain functions for interactive use:

    >>> from repro.apps import harness
    >>> print(harness.table2())          # RSBench/XSBench overheads
    >>> print(harness.ablation_dce())

Each function returns a formatted string and accepts a ``scale`` knob so the
workloads can be grown toward the paper's sizes on faster machines.
"""
from __future__ import annotations

from typing import Callable

import numpy as np

import repro as rp
from ..baselines import eager as eg
from ..obs import tracing as _obs_tracing
from . import datagen, gmm, kmeans, lstm, rsbench, xsbench

__all__ = ["table1_gmm", "table2", "table3", "ablation_dce", "timeit"]


def timeit(f: Callable, repeats: int = 3) -> float:
    ts = []
    for _ in range(repeats):
        with _obs_tracing.timed("bench:call", cat="bench") as tm:
            f()
        ts.append(tm.seconds)
    return float(np.median(ts))


def table1_gmm(n: int = 128, d: int = 8, K: int = 8) -> str:
    """The GMM row of Table 1: Jacobian/objective ratios for the three
    implementations."""
    args = datagen.gmm_instance(n, d, K)[:4]
    fc = rp.compile(gmm.build_ir(n, d, K))
    g = rp.grad(fc, wrt=[0, 1, 2])
    alphas, means, icf, x = args
    gr = eg.grad(lambda a, m, i: gmm.objective_eager(a, m, i, x))
    r_ours = timeit(lambda: g(*args)) / timeit(lambda: fc(*args))
    r_tape = timeit(lambda: gr(alphas, means, icf)) / timeit(
        lambda: gmm.objective_eager(eg.T(alphas), eg.T(means), eg.T(icf), x).data
    )
    r_man = timeit(lambda: gmm.grad_manual(*args)) / timeit(lambda: gmm.objective_np(*args))
    return (
        f"Table 1 / GMM (n={n}, d={d}, K={K}) — Jacobian/objective ratio\n"
        f"  ours {r_ours:5.1f}x   tape {r_tape:5.1f}x   manual {r_man:5.1f}x   "
        f"(paper: 5.1 / 5.4 / 4.6)"
    )


def table2(scale: int = 1) -> str:
    """RSBench/XSBench primal runtime and AD overhead."""
    lines = ["Table 2 — Monte Carlo kernels (primal s, AD s, overhead)"]
    rs_args = datagen.rs_instance(4000 * scale, 32, 8)
    rs_fc = rp.compile(rsbench.build_ir(4000 * scale, 8, 32))
    rs_g = rp.grad(rs_fc, wrt=[2, 3])
    tp = timeit(lambda: rs_fc(*rs_args))
    ta = timeit(lambda: rs_g(*rs_args))
    lines.append(f"  RSBench  {tp:8.4f}  {ta:8.4f}  {ta/tp:5.1f}x   (paper 3.6x, Enzyme 4.2x)")
    xs_args = datagen.xs_instance(2000 * scale, 16, 48)
    xs_fc = rp.compile(xsbench.build_ir(2000 * scale, 16, 48, xs_args[3].shape[1]))
    xs_g = rp.grad(xs_fc, wrt=[1, 4])
    tp = timeit(lambda: xs_fc(*xs_args))
    ta = timeit(lambda: xs_g(*xs_args))
    lines.append(f"  XSBench  {tp:8.4f}  {ta:8.4f}  {ta/tp:5.1f}x   (paper 2.6x, Enzyme 3.2x)")
    return "\n".join(lines)


def table3(k: int = 5, n: int = 5000, d: int = 16) -> str:
    """Dense k-means Newton step timings (manual vs AD)."""
    pts, ctr = datagen.kmeans_instance(k, n, d)
    fc = rp.compile(kmeans.build_ir(n, k, d))
    g = rp.grad(fc, wrt=[1])
    h = rp.hessian_diag(fc, wrt=1)
    t_ad = timeit(lambda: (g(pts, ctr), h(pts, ctr)))
    t_man = timeit(lambda: kmeans.grad_hess_manual(pts, ctr))
    return (
        f"Table 3 / dense k-means (k={k}, n={n}, d={d}) — Newton step\n"
        f"  manual {t_man:.4f}s   ours(AD, jvp∘vjp) {t_ad:.4f}s"
    )


def ablation_dce() -> str:
    """§4.1: adjoint work of a perfect map nest, before/after DCE."""
    from ..core.vjp import vjp_fun
    from ..frontend.function import Compiled
    from ..opt.pipeline import optimize_fun

    def f(ass):
        return rp.map(lambda as_: rp.map(lambda a: a * a, as_), ass)

    fun = optimize_fun(rp.trace_like(f, (np.ones((16, 64)),)))
    raw = vjp_fun(fun)
    opt = optimize_fun(raw)
    ass = np.random.default_rng(0).standard_normal((16, 64))
    seed = np.ones((16, 64))
    wp = Compiled(fun, optimize=False).cost(ass).work
    wr = Compiled(raw, optimize=False).cost(ass, seed).work
    wo = Compiled(opt, optimize=False).cost(ass, seed).work
    return (
        "Ablation §4.1 — perfect nest re-execution is dead code\n"
        f"  primal work {wp}; adjoint before DCE {wr} ({wr/wp:.1f}x); "
        f"after DCE {wo} ({wo/wp:.1f}x)"
    )
