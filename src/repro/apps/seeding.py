"""Shared batched identity-seed driver for the forward-mode app Jacobians.

``ba.jacobian_ad`` (PR 2) established the multi-seed shape: stack every
basis seed on one leading batch axis and evaluate the derivative function
in a single ``call_batched`` pass.  The forward-mode HAND and LSTM
measurements need the same machinery over *jvp* tangents — this helper
holds the one copy of that pattern (flag construction, zero tangents, the
per-seed fallback loop) so the apps stay three-line wrappers that cannot
drift from each other.
"""
from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["identity_seed_pass"]


def identity_seed_pass(
    fwd,
    primals: Sequence[np.ndarray],
    seed_slot: int,
    backend: str = "plan",
    batched: "bool | None" = None,
) -> np.ndarray:
    """Directional derivatives of ``fwd`` over the full identity basis of
    one tangent.

    ``fwd`` is an ``rp.jvp`` ``ADFunction`` whose parameters are
    ``(*primals, *tangents)`` with one tangent per (all-float) primal.  The
    tangent of ``primals[seed_slot]`` — which must be rank-1, of length
    ``m`` — is seeded with every row of ``eye(m)``; the other tangents are
    zero.  On a batched-capable backend all ``m`` basis seeds stack on a
    leading batch axis and evaluate in one ``call_batched`` pass (on
    ``shard``, partitioned across the worker pool); otherwise (or with
    ``batched=False``) a per-seed loop runs.

    Returns the ``(m,)`` array of ``out[-1]`` per direction — for a scalar
    function, its gradient recovered column-by-column.
    """
    from ..exec.registry import get_backend

    primals = tuple(np.asarray(p) for p in primals)
    m = primals[seed_slot].shape[0]
    if batched is None:
        batched = get_backend(backend).batched
    zeros = [np.zeros_like(p) for p in primals]
    if batched:
        seeds = np.eye(m)
        tangents = zeros[:seed_slot] + [seeds] + zeros[seed_slot + 1:]
        flags = [False] * len(primals) + [False] * len(primals)
        flags[len(primals) + seed_slot] = True
        out = fwd.call_batched(
            (*primals, *tangents), tuple(flags), m, backend=backend
        )
        return np.asarray(out[-1]).reshape(m)
    cols = []
    for j in range(m):
        e = np.zeros(m)
        e[j] = 1.0
        tangents = zeros[:seed_slot] + [e] + zeros[seed_slot + 1:]
        out = fwd(*primals, *tangents, backend=backend)
        cols.append(float(np.asarray(out[-1])))
    return np.asarray(cols)
