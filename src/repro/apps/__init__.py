"""Benchmark applications: the paper's evaluation workloads, each with an
IR program (differentiated by our AD), a NumPy reference, a hand-written
gradient/Jacobian where the paper has a "Manual" column, and an eager-tape
formulation (the PyTorch/Tapenade comparator)."""
from . import ba, datagen, gmm, hand, harness, kmeans, kmeans_sparse, lstm, rsbench, xsbench  # noqa: F401
