"""LSTM sequence model (paper §7.7, Table 6; ADBench D-LSTM for Table 1).

The [40] architecture: one LSTM layer with the classic 4-gate cell,
an output projection, and a squared-error loss over the sequence:

    gates = Wx·x_t + Wh·h + b;  i,f,o,g = σ,σ,σ,tanh of the 4 slices
    c' = f∘c + i∘g;  h' = o∘tanh(c');  y_t = Wy·h';  loss += ‖y_t − t_t‖²

The IR program is a sequential loop over time steps whose state (h, c) is
checkpointed by reverse AD; the matrix products are nested maps, so their
adjoints go through the §6.1 accumulator optimisation — the paper's LSTM
story end to end.  ``grad_manual`` is hand-written BPTT (the "cuDNN"
manually-differentiated comparator), ``loss_eager`` the tape baseline.
"""
from __future__ import annotations

import numpy as np

import repro as rp
from ..baselines import eager as eg

__all__ = ["build_ir", "loss_np", "grad_fwd_ad", "grad_manual", "loss_eager"]


def build_ir(n: int, bs: int, d: int, h: int):
    """loss(xs, wx, wh, b, wy, targets) -> scalar."""
    H4 = 4 * h

    def loss(xs, wx, wh, b, wy, targets):
        def step(t, hs, cs, acc):
            def cell_row(bi):
                def gate(r):
                    gx = rp.sum(rp.map(lambda j: wx[r, j] * xs[t, bi, j], rp.iota(d)))
                    gh = rp.sum(rp.map(lambda u: wh[r, u] * hs[bi, u], rp.iota(h)))
                    return gx + gh + b[r]

                def unit(u):
                    ig = rp.sigmoid(gate(u))
                    fg = rp.sigmoid(gate(h + u))
                    og = rp.sigmoid(gate(2 * h + u))
                    gg = rp.tanh(gate(3 * h + u))
                    c_new = fg * cs[bi, u] + ig * gg
                    h_new = og * rp.tanh(c_new)
                    return h_new, c_new

                hr, cr = rp.map(unit, rp.iota(h))
                return hr, cr

            h2, c2 = rp.map(cell_row, rp.iota(bs))

            def err_row(bi):
                def out(j):
                    y = rp.sum(rp.map(lambda u: wy[j, u] * h2[bi, u], rp.iota(h)))
                    e = y - targets[t, bi, j]
                    return e * e

                return rp.sum(rp.map(out, rp.iota(d)))

            step_loss = rp.sum(rp.map(err_row, rp.iota(bs)))
            return h2, c2, acc + step_loss

        h0 = rp.map(lambda bi: rp.map(lambda u: 0.0 * rp.astype(u, rp.F64), rp.iota(h)), rp.iota(bs))
        c0 = rp.map(lambda bi: rp.map(lambda u: 0.0 * rp.astype(u, rp.F64), rp.iota(h)), rp.iota(bs))
        _, _, total = rp.fori_loop(n, step, (h0, c0, 0.0))
        return total

    return rp.trace(
        loss,
        [
            rp.ir.array(rp.F64, 3),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 1),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 3),
        ],
        name="lstm",
        arg_names=["xs", "wx", "wh", "b", "wy", "targets"],
    )


def grad_fwd_ad(fwd, xs, wx, wh, b, wy, targets, backend="plan", batched=None):
    """Forward-mode gradient of the LSTM loss w.r.t. the bias, batched.

    ``fwd`` is ``rp.jvp(compile(build_ir(...)))``.  The loss is scalar, so
    forward mode needs one pass per bias entry (4·h basis directions); on
    the batched-capable backends the whole identity basis is stacked on a
    leading batch axis and evaluated in a *single* ``call_batched`` pass —
    the same multi-seed shape as ``ba.jacobian_ad``/``hand.jacobian_fwd_ad``
    — with a per-seed loop fallback for ``ref``/``batched=False``.

    Returns the ``(4h,)`` bias gradient ``dL/db`` (equal, up to roundoff, to
    the reverse-mode gradient's bias component — asserted in the tests).
    """
    from .seeding import identity_seed_pass

    return identity_seed_pass(
        fwd, (xs, wx, wh, b, wy, targets), 3, backend=backend, batched=batched
    )


def _sig(x):
    return 0.5 * (np.tanh(0.5 * x) + 1.0)


def _fwd(xs, wx, wh, b, wy, targets):
    n, bs, d = xs.shape
    h = wh.shape[1]
    hs = np.zeros((bs, h))
    cs = np.zeros((bs, h))
    cache = []
    total = 0.0
    for t in range(n):
        gates = xs[t] @ wx.T + hs @ wh.T + b  # (bs, 4h)
        i = _sig(gates[:, :h])
        f = _sig(gates[:, h : 2 * h])
        o = _sig(gates[:, 2 * h : 3 * h])
        g = np.tanh(gates[:, 3 * h :])
        c_new = f * cs + i * g
        tc = np.tanh(c_new)
        h_new = o * tc
        y = h_new @ wy.T  # (bs, d)
        e = y - targets[t]
        total += (e * e).sum()
        cache.append((xs[t], hs, cs, i, f, o, g, c_new, tc, h_new, e))
        hs, cs = h_new, c_new
    return total, cache


def loss_np(xs, wx, wh, b, wy, targets) -> float:
    return float(_fwd(xs, wx, wh, b, wy, targets)[0])


def grad_manual(xs, wx, wh, b, wy, targets):
    """Hand-written BPTT (the manually-differentiated comparator)."""
    n, bs, d = xs.shape
    h = wh.shape[1]
    total, cache = _fwd(xs, wx, wh, b, wy, targets)
    gwx = np.zeros_like(wx)
    gwh = np.zeros_like(wh)
    gb = np.zeros_like(b)
    gwy = np.zeros_like(wy)
    dh_next = np.zeros((bs, h))
    dc_next = np.zeros((bs, h))
    for t in range(n - 1, -1, -1):
        x_t, h_prev, c_prev, i, f, o, g, c_new, tc, h_new, e = cache[t]
        dy = 2.0 * e  # (bs, d)
        gwy += dy.T @ h_new
        dh = dy @ wy + dh_next
        do = dh * tc
        dc = dh * o * (1 - tc * tc) + dc_next
        df = dc * c_prev
        di = dc * g
        dg = dc * i
        dgates = np.concatenate(
            [
                di * i * (1 - i),
                df * f * (1 - f),
                do * o * (1 - o),
                dg * (1 - g * g),
            ],
            axis=1,
        )  # (bs, 4h)
        gwx += dgates.T @ x_t
        gwh += dgates.T @ h_prev
        gb += dgates.sum(0)
        dh_next = dgates @ wh
        dc_next = dc * f
    return gwx, gwh, gb, gwy


def loss_eager(xs, wx, wh, b, wy, targets) -> "eg.T":
    xsd = np.asarray(xs.data if isinstance(xs, eg.T) else xs)
    n, bs, d = xsd.shape
    h = wh.shape[1] if not isinstance(wh, eg.T) else wh.data.shape[1]
    wx = wx if isinstance(wx, eg.T) else eg.T(wx)
    wh = wh if isinstance(wh, eg.T) else eg.T(wh)
    b = b if isinstance(b, eg.T) else eg.T(b)
    wy = wy if isinstance(wy, eg.T) else eg.T(wy)
    hs = eg.T(np.zeros((bs, h)))
    cs = eg.T(np.zeros((bs, h)))
    total = eg.T(0.0)
    tg = np.asarray(targets.data if isinstance(targets, eg.T) else targets)
    r = np.arange
    for t in range(n):
        gates = eg.T(xsd[t]) @ wx.Tr + hs @ wh.Tr + b
        i = eg.sigmoid(gates[:, r(h)])
        f = eg.sigmoid(gates[:, r(h, 2 * h)])
        o = eg.sigmoid(gates[:, r(2 * h, 3 * h)])
        g = eg.tanh(gates[:, r(3 * h, 4 * h)])
        cs = f * cs + i * g
        hs = o * eg.tanh(cs)
        y = hs @ wy.Tr
        e = y - tg[t]
        total = total + (e * e).sum()
    return total
