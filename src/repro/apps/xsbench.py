"""XSBench-shaped Monte Carlo cross-section lookup kernel (Table 2).

One big ``map`` over lookups; each lookup walks the nuclides of a material
(indirect indexing), finds the bracketing energy gridpoints with an inner
scan loop, linearly interpolates the cross-section, and accumulates a
concentration-weighted total — the "inner loops and control flow, as well
as indirect indexing of arrays" the paper stresses.  The differentiated
quantity is the total macroscopic cross-section wrt the xs table and the
concentrations.
"""
from __future__ import annotations

import numpy as np

import repro as rp
from ..baselines import eager as eg

__all__ = ["build_ir", "objective_np", "objective_eager"]


def build_ir(n_lookups: int, n_nuclides: int, n_grid: int, mat_size: int):
    def objective(egrid, xs, lookup_e, mats, conc):
        def per_lookup(i):
            e = lookup_e[i]

            def per_mat(m, total):
                nuc = mats[i, m]

                # Find the last gridpoint with energy <= e (linear scan,
                # like XSBench's grid search inner loop).
                def scan(t, j):
                    return rp.where(egrid[nuc, t] <= e, t, j)

                j = rp.fori_loop(n_grid - 1, scan, 0)
                e0 = egrid[nuc, j]
                e1 = egrid[nuc, j + 1]
                t = (e - e0) / (e1 - e0 + 1e-12)
                tcl = rp.maximum(rp.minimum(t, 1.0), 0.0)
                val = xs[nuc, j] * (1.0 - tcl) + xs[nuc, j + 1] * tcl
                return total + conc[i, m] * val

            return rp.fori_loop(mat_size, per_mat, 0.0)

        return rp.sum(rp.map(per_lookup, rp.iota(n_lookups)))

    return rp.trace(
        objective,
        [
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 1),
            rp.ir.array(rp.I64, 2),
            rp.ir.array(rp.F64, 2),
        ],
        name="xsbench",
        arg_names=["egrid", "xs", "lookup_e", "mats", "conc"],
    )


def objective_np(egrid, xs, lookup_e, mats, conc) -> float:
    n_lookups, mat_size = mats.shape
    total = 0.0
    for i in range(n_lookups):
        e = lookup_e[i]
        s = 0.0
        for m in range(mat_size):
            nuc = mats[i, m]
            j = int(np.searchsorted(egrid[nuc], e, side="right")) - 1
            j = min(max(j, 0), egrid.shape[1] - 2)
            e0, e1 = egrid[nuc, j], egrid[nuc, j + 1]
            t = np.clip((e - e0) / (e1 - e0 + 1e-12), 0.0, 1.0)
            s += conc[i, m] * (xs[nuc, j] * (1 - t) + xs[nuc, j + 1] * t)
        total += s
    return float(total)


def objective_eager(egrid, xs, lookup_e, mats, conc) -> "eg.T":
    """Vectorised eager formulation (gathers + taped interpolation)."""
    eg_np = np.asarray(egrid.data if isinstance(egrid, eg.T) else egrid)
    xs_t = xs if isinstance(xs, eg.T) else eg.T(xs)
    conc_t = conc if isinstance(conc, eg.T) else eg.T(conc)
    le = np.asarray(lookup_e)
    mats = np.asarray(mats)
    n_lookups, mat_size = mats.shape
    # Bracketing indices computed outside the tape (integer search).
    j = np.empty((n_lookups, mat_size), dtype=np.int64)
    for m in range(mat_size):
        nucs = mats[:, m]
        rows = eg_np[nucs]
        j[:, m] = np.clip(
            np.array([np.searchsorted(rows[i], le[i], side="right") - 1 for i in range(n_lookups)]),
            0,
            eg_np.shape[1] - 2,
        )
    nuc_idx = mats
    e0 = eg_np[nuc_idx, j]
    e1 = eg_np[nuc_idx, j + 1]
    t = np.clip((le[:, None] - e0) / (e1 - e0 + 1e-12), 0.0, 1.0)
    lo = xs_t[(nuc_idx, j)]
    hi = xs_t[(nuc_idx, j + 1)]
    val = lo * (1.0 - t) + hi * t
    return (conc_t * val).sum()
