"""Simplified HAND tracking objective (Table 1).

A kinematic chain of per-bone Euler rotations is applied to skinned
vertices; the residual is the distance to target points:

    pos(v) = Σ_b  w[v,b] · (R_0 · R_1 ⋯ R_b · base_v)
    err(v) = pos(v) − target_v

The pose parameters ``theta`` (3 per bone) are differentiated; the full
(3·n_verts × 3·n_bones) Jacobian is computed in forward mode over the 3·B
pose directions (ADBench's "simple" mode: dense Jacobian, correspondences
fixed).  The rotation chain is a sequential loop inside a map — the nesting
pattern reverse AD must checkpoint.
"""
from __future__ import annotations

import numpy as np

import repro as rp
from ..baselines import eager as eg

__all__ = [
    "build_ir",
    "objective_np",
    "jacobian_fwd_ad",
    "jacobian_manual",
    "objective_eager",
    "build_ir_complicated",
    "complicated_instance",
    "residuals_complicated_np",
    "jacobian_complicated_manual",
]


def _rot_apply_ir(th0, th1, th2, v0, v1, v2):
    """Apply Rz(th2)·Ry(th1)·Rx(th0) to (v0,v1,v2) — traced scalars."""
    c0, s0 = rp.cos(th0), rp.sin(th0)
    y1 = c0 * v1 - s0 * v2
    z1 = s0 * v1 + c0 * v2
    x1 = v0
    c1, s1 = rp.cos(th1), rp.sin(th1)
    x2 = c1 * x1 + s1 * z1
    z2 = -s1 * x1 + c1 * z1
    y2 = y1
    c2, s2 = rp.cos(th2), rp.sin(th2)
    x3 = c2 * x2 - s2 * y2
    y3 = s2 * x2 + c2 * y2
    return x3, y3, z2


def build_ir(n_bones: int, n_verts: int):
    """objective(theta, base, wghts, targets) -> scalar (sum of squared
    residuals; the benches differentiate the residual map with seeds)."""

    def objective(theta, base, wghts, targets):
        def per_vertex(v):
            def contribution(b, px, py, pz, acc0, acc1, acc2):
                # Rotate through the chain up to bone b.
                def chain(j, x, y, z):
                    return _rot_apply_ir(
                        theta[3 * j], theta[3 * j + 1], theta[3 * j + 2], x, y, z
                    )

                rx, ry, rz = rp.fori_loop(
                    b + 1, lambda j, x, y, z: chain(j, x, y, z), (px, py, pz)
                )
                return (
                    px,
                    py,
                    pz,
                    acc0 + wghts[v, b] * rx,
                    acc1 + wghts[v, b] * ry,
                    acc2 + wghts[v, b] * rz,
                )

            _, _, _, p0, p1, p2 = rp.fori_loop(
                n_bones,
                lambda b, px, py, pz, a0, a1, a2: contribution(b, px, py, pz, a0, a1, a2),
                (base[v, 0], base[v, 1], base[v, 2], 0.0, 0.0, 0.0),
            )
            e0 = p0 - targets[v, 0]
            e1 = p1 - targets[v, 1]
            e2 = p2 - targets[v, 2]
            return e0 * e0 + e1 * e1 + e2 * e2

        return rp.sum(rp.map(per_vertex, rp.iota(n_verts)))

    return rp.trace(
        objective,
        [
            rp.ir.array(rp.F64, 1),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
        ],
        name="hand",
        arg_names=["theta", "base", "wghts", "targets"],
    )


def jacobian_fwd_ad(fwd, theta, base, wghts, targets, backend="plan", batched=None):
    """All 3·B forward pose directions of the HAND objective in one pass.

    ``fwd`` is ``rp.jvp(compile(build_ir(B, V)))``.  The Table 1 HAND
    measurement enumerates the 3·B pose basis directions in forward mode; on
    the batched-capable backends the full identity basis is stacked on a
    leading batch axis and evaluated in a *single* ``call_batched`` pass —
    the same shape as ``ba.jacobian_ad`` — instead of a Python loop over
    seeds (the ``ref``/``batched=False`` fallback).

    Returns the ``(3B,)`` vector of directional derivatives
    ``dL/dθ_j = ∂ objective / ∂ theta[j]`` (the scalar objective's gradient,
    recovered column-by-column exactly as the seeded benchmark loop does).
    """
    from .seeding import identity_seed_pass

    return identity_seed_pass(
        fwd, (theta, base, wghts, targets), 0, backend=backend, batched=batched
    )


def _rot_np(th, v):
    c0, s0 = np.cos(th[0]), np.sin(th[0])
    x, y, z = v[..., 0], v[..., 1], v[..., 2]
    y, z = c0 * y - s0 * z, s0 * y + c0 * z
    c1, s1 = np.cos(th[1]), np.sin(th[1])
    x, z = c1 * x + s1 * z, -s1 * x + c1 * z
    c2, s2 = np.cos(th[2]), np.sin(th[2])
    x, y = c2 * x - s2 * y, s2 * x + c2 * y
    return np.stack([x, y, z], axis=-1)


def _positions_np(theta, base, wghts):
    n_bones = len(theta) // 3
    pos = np.zeros_like(base)
    cur = base.copy()
    acc = np.zeros_like(base)
    for b in range(n_bones):
        # rotate base through chain 0..b (recomputed, as in the IR version)
        cur = base.copy()
        for j in range(b + 1):
            cur = _rot_np(theta[3 * j : 3 * j + 3], cur)
        acc = acc + wghts[:, b : b + 1] * cur
    return acc


def objective_np(theta, base, wghts, targets) -> float:
    e = _positions_np(theta, base, wghts) - targets
    return float((e * e).sum())


def jacobian_manual(theta, base, wghts, targets, eps: float = 1e-7):
    """Dense Jacobian of the residuals wrt theta, hand-enumerated over the
    3·B pose directions (the structure the manual/Finite ADBench HAND
    implementations exploit)."""
    cols = []
    for j in range(len(theta)):
        tp = theta.copy()
        tm = theta.copy()
        tp[j] += eps
        tm[j] -= eps
        rp_ = _positions_np(tp, base, wghts) - targets
        rm_ = _positions_np(tm, base, wghts) - targets
        cols.append(((rp_ - rm_) / (2 * eps)).reshape(-1))
    return np.stack(cols, axis=1)  # (3·V, 3·B)


def objective_eager(theta, base, wghts, targets) -> "eg.T":
    th = theta if isinstance(theta, eg.T) else eg.T(theta)
    b_ = np.asarray(base.data if isinstance(base, eg.T) else base)
    w_ = np.asarray(wghts.data if isinstance(wghts, eg.T) else wghts)
    tg = np.asarray(targets.data if isinstance(targets, eg.T) else targets)
    n_bones = w_.shape[1]

    def rot(th3, xyz):
        x, y, z = xyz
        c0, s0 = eg.cos(th3[0]), eg.sin(th3[0])
        y, z = c0 * y - s0 * z, s0 * y + c0 * z
        c1, s1 = eg.cos(th3[1]), eg.sin(th3[1])
        x, z = c1 * x + s1 * z, -s1 * x + c1 * z
        c2, s2 = eg.cos(th3[2]), eg.sin(th3[2])
        x, y = c2 * x - s2 * y, s2 * x + c2 * y
        return (x, y, z)

    acc = [eg.T(np.zeros(b_.shape[0])) for _ in range(3)]
    for b in range(n_bones):
        cur = (eg.T(b_[:, 0]), eg.T(b_[:, 1]), eg.T(b_[:, 2]))
        for j in range(b + 1):
            th3 = [th[np.array([3 * j + a])].reshape(()) for a in range(3)]
            cur = rot(th3, cur)
        for a in range(3):
            acc[a] = acc[a] + eg.T(w_[:, b]) * cur[a]
    tot = eg.T(0.0)
    for a in range(3):
        e = acc[a] - tg[:, a]
        tot = tot + (e * e).sum()
    return tot


# ---------------------------------------------------------------------------
# The "complicated" variant (Table 1's HAND Comp. column)
# ---------------------------------------------------------------------------
#
# ADBench's complicated HAND adds correspondences: each vertex is matched to
# a point expressed in barycentric coordinates ``u`` over a candidate
# triangle, and the Jacobian gains a *sparse* block (each residual row
# depends only on its own vertex's u).  We model exactly that structure:
#
#     err(v) = pos(v) − Σ_j u[v, j] · cands[v, j, :]
#
# The Jacobian is (3V × (3B + 3V)): dense in the pose ``theta`` (forward
# passes), block-diagonal in ``u`` (three seeded reverse passes).


def complicated_instance(n_bones: int = 8, n_verts: int = 64, seed: int = 0):
    from .datagen import hand_instance

    theta, base, wghts, targets = hand_instance(n_bones, n_verts, seed)
    rng = np.random.default_rng(seed + 1)
    cands = targets[:, None, :] + 0.02 * rng.standard_normal((n_verts, 3, 3))
    u = np.abs(rng.standard_normal((n_verts, 3))) + 0.2
    u = u / u.sum(axis=1, keepdims=True)
    return theta, u, base, wghts, cands


def build_ir_complicated(n_bones: int, n_verts: int):
    """residuals(theta, u, base, wghts, cands) -> (e0, e1, e2) arrays."""

    def residuals(theta, u, base, wghts, cands):
        def per_vertex(v):
            def contribution(b, px, py, pz, a0, a1, a2):
                def chain(j, x, y, z):
                    return _rot_apply_ir(
                        theta[3 * j], theta[3 * j + 1], theta[3 * j + 2], x, y, z
                    )

                rx, ry, rz = rp.fori_loop(b + 1, chain, (px, py, pz))
                return (
                    px,
                    py,
                    pz,
                    a0 + wghts[v, b] * rx,
                    a1 + wghts[v, b] * ry,
                    a2 + wghts[v, b] * rz,
                )

            _, _, _, p0, p1, p2 = rp.fori_loop(
                n_bones,
                lambda b, px, py, pz, a0, a1, a2: contribution(b, px, py, pz, a0, a1, a2),
                (base[v, 0], base[v, 1], base[v, 2], 0.0, 0.0, 0.0),
            )
            m0 = rp.sum(rp.map(lambda j: u[v, j] * cands[v, j, 0], rp.iota(3)))
            m1 = rp.sum(rp.map(lambda j: u[v, j] * cands[v, j, 1], rp.iota(3)))
            m2 = rp.sum(rp.map(lambda j: u[v, j] * cands[v, j, 2], rp.iota(3)))
            return p0 - m0, p1 - m1, p2 - m2

        return rp.map(per_vertex, rp.iota(n_verts))

    return rp.trace(
        residuals,
        [
            rp.ir.array(rp.F64, 1),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 3),
        ],
        name="hand_complicated",
        arg_names=["theta", "u", "base", "wghts", "cands"],
    )


def residuals_complicated_np(theta, u, base, wghts, cands):
    pos = _positions_np(theta, base, wghts)
    match = (u[:, :, None] * cands).sum(axis=1)
    e = pos - match
    return e[:, 0], e[:, 1], e[:, 2]


def jacobian_complicated_manual(theta, u, base, wghts, cands, eps: float = 1e-7):
    """Dense pose block by direction enumeration + the closed-form sparse
    correspondence block (∂err_v/∂u[v,j] = −cands[v,j])."""
    dense = jacobian_manual(theta, base, wghts, (u[:, :, None] * cands).sum(axis=1))
    sparse = -cands  # (V, 3cands, 3dims): block-diagonal in v
    return dense, sparse
