"""Dense k-means clustering (paper §7.4, Table 3).

The cost function  f(C) = Σ_p min_c ‖p − c‖²  is written with nested ``map``
and ``reduce`` operations; Newton's method needs its gradient and Hessian.
As in the paper, the Hessian is diagonal, so a single ``jvp(vjp(f))``
invocation with an all-ones tangent returns exactly the diagonal — the
sparsity-through-seeding trick of §7.4.

Implementations: the IR program (ours), a manual NumPy gradient+Hessian (the
"Manual" column, histogram-style), and the eager-tape baseline ("PyTorch",
with the expanded-norm trick the paper describes to avoid broadcasting
blowup).
"""
from __future__ import annotations

import numpy as np

import repro as rp
from ..baselines import eager as eg

__all__ = [
    "build_ir",
    "cost_np",
    "grad_hess_manual",
    "cost_eager",
    "newton_step_ir",
    "newton_step_manual",
    "newton_step_eager",
]


def build_ir(n: int, k: int, d: int):
    """Trace cost(points, centres) -> scalar."""

    def cost(points, centres):
        def sqdist_to(c_idx, p):
            return rp.sum(
                rp.map(lambda j: (p[j] - centres[c_idx, j]) ** 2.0, rp.iota(d))
            )

        def per_point(p):
            ds = rp.map(lambda c: sqdist_to(c, p), rp.iota(k))
            return rp.min(ds)

        return rp.sum(rp.map(per_point, points))

    return rp.trace(
        cost,
        [rp.ir.array(rp.F64, 2), rp.ir.array(rp.F64, 2)],
        name="kmeans_cost",
        arg_names=["points", "centres"],
    )


def cost_np(points: np.ndarray, centres: np.ndarray) -> float:
    d2 = ((points[:, None, :] - centres[None, :, :]) ** 2).sum(-1)
    return float(d2.min(axis=1).sum())


def grad_hess_manual(points: np.ndarray, centres: np.ndarray):
    """Hand-written gradient and Hessian diagonal — the histogram method the
    paper compares against: group points by nearest centre (a generalised
    histogram), then per-centre sums."""
    d2 = ((points[:, None, :] - centres[None, :, :]) ** 2).sum(-1)
    assign = d2.argmin(axis=1)
    k, d = centres.shape
    counts = np.bincount(assign, minlength=k).astype(np.float64)
    sums = np.zeros_like(centres)
    np.add.at(sums, assign, points)
    grad = 2.0 * (counts[:, None] * centres - sums)
    hess_diag = np.broadcast_to(2.0 * counts[:, None], centres.shape).copy()
    return grad, hess_diag


def cost_eager(points, centres) -> "eg.T":
    """Eager formulation with the expanded quadratic (‖p‖² + ‖c‖² − 2p·cᵀ),
    exactly the memory-saving trick §7.4 describes for PyTorch."""
    p = points if isinstance(points, eg.T) else eg.T(points)
    c = centres if isinstance(centres, eg.T) else eg.T(centres)
    p2 = (p * p).sum(axis=1)  # (n,)
    c2 = (c * c).sum(axis=1)  # (k,)
    cross = p @ c.Tr  # (n,k)
    d2 = p2.reshape(-1, 1) + c2.reshape(1, -1) - 2.0 * cross
    return d2.min(axis=1).sum()


# ---------------------------------------------------------------------------
# Newton steps (what Table 3 times: Jacobian + Hessian per iteration)
# ---------------------------------------------------------------------------


def newton_step_ir(fun_compiled, points, centres, gradf=None, hessf=None):
    """One Newton iteration C ← C − ∇f / diag(H) using vjp + jvp∘vjp."""
    g = gradf(points, centres)
    h = hessf(points, centres)
    h = np.where(np.abs(h) < 1e-12, 1.0, h)
    return centres - g / h.reshape(centres.shape)


def newton_step_manual(points, centres):
    g, h = grad_hess_manual(points, centres)
    h = np.where(np.abs(h) < 1e-12, 1.0, h)
    return centres - g / h


def newton_step_eager(points, centres):
    gfn = eg.grad(lambda c: cost_eager(points, c))
    g = gfn(centres)
    # Hessian diagonal by forward differences over the gradient (PyTorch's
    # autograd computes Jacobian then Hessian; we model the double pass).
    eps = 1e-5
    gp = gfn(centres + eps)
    h = (gp - g) / eps
    h = np.where(np.abs(h) < 1e-12, 1.0, h)
    return centres - g / h
