"""ADBench BA: bundle-adjustment reprojection error (Table 1).

Per observation, an 11-parameter camera (Rodrigues rotation, centre, focal,
principal point, two radial distortion coefficients), a 3D point and a
weight produce a 2-vector reprojection residual plus a weight-regulariser
residual.  The Jacobian is block-sparse with known structure: each residual
row touches one camera, one point, one weight — so it is computed with
**seed vectors** (paper §7.1): the per-observation inputs are gathered
up-front and two reverse passes (one per residual component) recover every
block at once.
"""
from __future__ import annotations

import numpy as np

import repro as rp
from ..baselines import eager as eg

__all__ = [
    "build_ir",
    "residuals_np",
    "jacobian_ad",
    "jacobian_manual",
    "residuals_eager",
    "gather_obs",
]


def gather_obs(cams, pts, ws, obs_cam, obs_pt):
    """Gather per-observation parameter blocks (the seed-vector trick)."""
    return cams[obs_cam], pts[obs_pt], ws


def build_ir(n_obs: int):
    """residuals(gcams (n,11), gpts (n,3), ws (n,), feats (n,2)) ->
    (err0 (n,), err1 (n,), werr (n,))."""

    def residuals(gcams, gpts, ws, feats):
        def per_obs(i):
            # Rodrigues rotation of (X - C).
            x0 = gpts[i, 0] - gcams[i, 3]
            x1 = gpts[i, 1] - gcams[i, 4]
            x2 = gpts[i, 2] - gcams[i, 5]
            r0, r1, r2 = gcams[i, 0], gcams[i, 1], gcams[i, 2]
            th2 = r0 * r0 + r1 * r1 + r2 * r2
            theta = rp.sqrt(th2 + 1e-12)
            st = rp.sin(theta) / theta
            ct = (1.0 - rp.cos(theta)) / (th2 + 1e-12)
            # R·x = x·cosθ + (w×x)·sinθ/θ·θ ... (standard Rodrigues form)
            dot = r0 * x0 + r1 * x1 + r2 * x2
            cx0 = r1 * x2 - r2 * x1
            cx1 = r2 * x0 - r0 * x2
            cx2 = r0 * x1 - r1 * x0
            cth = rp.cos(theta)
            X0 = x0 * cth + cx0 * st + r0 * dot * ct
            X1 = x1 * cth + cx1 * st + r1 * dot * ct
            X2 = x2 * cth + cx2 * st + r2 * dot * ct
            # Projection + radial distortion.
            p0 = X0 / X2
            p1 = X1 / X2
            r2d = p0 * p0 + p1 * p1
            distort = 1.0 + gcams[i, 9] * r2d + gcams[i, 10] * r2d * r2d
            q0 = gcams[i, 6] * distort * p0 + gcams[i, 7]
            q1 = gcams[i, 6] * distort * p1 + gcams[i, 8]
            e0 = ws[i] * (q0 - feats[i, 0])
            e1 = ws[i] * (q1 - feats[i, 1])
            werr = 1.0 - ws[i] * ws[i]
            return e0, e1, werr

        return rp.map(per_obs, rp.iota(n_obs))

    return rp.trace(
        residuals,
        [
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 1),
            rp.ir.array(rp.F64, 2),
        ],
        name="ba",
        arg_names=["gcams", "gpts", "ws", "feats"],
    )


def jacobian_ad(jv, gcams, gpts, ws, feats, backend="plan", batched=None):
    """The AD reprojection-Jacobian blocks via the seed-vector trick (§7.1).

    ``jv`` is ``rp.vjp(compile(build_ir(n)), wrt=[0, 1, 2])``.  One reverse
    pass per residual component recovers every per-observation block at
    once; on the bulk backends both component seeds are stacked on a leading
    batch axis and evaluated in a *single* ``call_batched`` pass (the
    batched multi-seed driver) instead of a Python loop over seeds.

    Returns ``(J_cam (n,2,11), J_pt (n,2,3), J_w (n,2))`` — row ``i`` holds
    ``d err_c[i] / d {cam,pt,w}[i]`` for components ``c = 0, 1``.  (The
    weight-regulariser row ``d werr/d w = -2w`` is closed-form and omitted,
    as in the Table 1 measurement.)
    """
    from ..exec.registry import get_backend

    n = gcams.shape[0]
    if batched is None:
        batched = get_backend(backend).batched
    if batched:
        e0 = np.zeros((2, n))
        e0[0] = 1.0
        e1 = np.zeros((2, n))
        e1[1] = 1.0
        ez = np.zeros((2, n))
        out = jv.call_batched(
            (gcams, gpts, ws, feats, e0, e1, ez),
            (False, False, False, False, True, True, True),
            2,
            backend=backend,
        )
        cam_b, pt_b, w_b = (np.asarray(o) for o in out[-3:])
    else:
        rows = []
        for comp in range(2):
            seeds = [np.zeros(n), np.zeros(n), np.zeros(n)]
            seeds[comp] = np.ones(n)
            res = jv(gcams, gpts, ws, feats, *seeds, backend=backend)
            rows.append([np.asarray(r) for r in res[-3:]])
        cam_b = np.stack([r[0] for r in rows])
        pt_b = np.stack([r[1] for r in rows])
        w_b = np.stack([r[2] for r in rows])
    return (
        np.moveaxis(cam_b, 0, 1),  # (n, 2, 11)
        np.moveaxis(pt_b, 0, 1),  # (n, 2, 3)
        np.moveaxis(w_b, 0, 1),  # (n, 2)
    )


def _rodrigues_np(r, x):
    th2 = (r * r).sum(-1, keepdims=True)
    theta = np.sqrt(th2 + 1e-12)
    st = np.sin(theta) / theta
    ct = (1.0 - np.cos(theta)) / (th2 + 1e-12)
    dot = (r * x).sum(-1, keepdims=True)
    cross = np.cross(r, x)
    return x * np.cos(theta) + cross * st + r * dot * ct


def residuals_np(gcams, gpts, ws, feats):
    x = gpts - gcams[:, 3:6]
    X = _rodrigues_np(gcams[:, 0:3], x)
    p = X[:, :2] / X[:, 2:3]
    r2d = (p * p).sum(-1)
    distort = 1.0 + gcams[:, 9] * r2d + gcams[:, 10] * r2d * r2d
    q = gcams[:, 6:7] * distort[:, None] * p + gcams[:, 7:9]
    e = ws[:, None] * (q - feats)
    return e[:, 0], e[:, 1], 1.0 - ws * ws


def residuals_eager(gcams, gpts, ws, feats):
    g = gcams if isinstance(gcams, eg.T) else eg.T(gcams)
    P = gpts if isinstance(gpts, eg.T) else eg.T(gpts)
    w = ws if isinstance(ws, eg.T) else eg.T(ws)
    F = np.asarray(feats.data if isinstance(feats, eg.T) else feats)
    x0 = P[:, 0] - g[:, 3]
    x1 = P[:, 1] - g[:, 4]
    x2 = P[:, 2] - g[:, 5]
    r0, r1, r2 = g[:, 0], g[:, 1], g[:, 2]
    th2 = r0 * r0 + r1 * r1 + r2 * r2
    theta = eg.sqrt(th2 + 1e-12)
    st = eg.sin(theta) / theta
    ct = (1.0 - eg.cos(theta)) / (th2 + 1e-12)
    dot = r0 * x0 + r1 * x1 + r2 * x2
    cx0 = r1 * x2 - r2 * x1
    cx1 = r2 * x0 - r0 * x2
    cx2 = r0 * x1 - r1 * x0
    cth = eg.cos(theta)
    X0 = x0 * cth + cx0 * st + r0 * dot * ct
    X1 = x1 * cth + cx1 * st + r1 * dot * ct
    X2 = x2 * cth + cx2 * st + r2 * dot * ct
    p0 = X0 / X2
    p1 = X1 / X2
    r2d = p0 * p0 + p1 * p1
    distort = 1.0 + g[:, 9] * r2d + g[:, 10] * r2d * r2d
    q0 = g[:, 6] * distort * p0 + g[:, 7]
    q1 = g[:, 6] * distort * p1 + g[:, 8]
    e0 = w * (q0 - F[:, 0])
    e1 = w * (q1 - F[:, 1])
    return e0, e1, 1.0 - w * w


def jacobian_manual(gcams, gpts, ws, feats, eps: float = 1e-7):
    """The "manual" BA Jacobian: central differences on the closed-form
    residuals, exploiting the block structure (15 parameter directions).
    ADBench's hand-written BA Jacobian enumerates the same 15 columns with
    symbolic derivatives; numerically the two coincide to O(eps²), and the
    runtime structure (15 cheap vectorised passes) is identical."""
    n = gcams.shape[0]
    blocks = []
    packs = [gcams, gpts, ws[:, None]]
    for bi, blk in enumerate(packs):
        for j in range(blk.shape[1]):
            args_p = [a.copy() for a in packs]
            args_m = [a.copy() for a in packs]
            args_p[bi][:, j] += eps
            args_m[bi][:, j] -= eps
            ep = residuals_np(args_p[0], args_p[1], args_p[2][:, 0], feats)
            em = residuals_np(args_m[0], args_m[1], args_m[2][:, 0], feats)
            col = np.stack(
                [(a - b) / (2 * eps) for a, b in zip(ep, em)], axis=1
            )  # (n,3)
            blocks.append(col)
    return np.stack(blocks, axis=2)  # (n, 3, 15)
