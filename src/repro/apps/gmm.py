"""ADBench GMM: Gaussian-mixture-model log-likelihood (Tables 1 & 5).

Parameters are ADBench's: mixture logits ``alphas (K,)``, means
``means (K,d)``, and the inverse covariance factors ``icf (K, d(d+1)/2)``
packing the log-diagonal (first ``d`` entries) and the strictly-lower
triangle (row-major) of ``Q_k``.  The objective is

    Σ_i logsumexp_k [ α_k + Σ log diag Q_k − ½‖Q_k (x_i − μ_k)‖² ]
    − n·logsumexp(α) + wishart(icf) + const

Three implementations share this math:

* ``build_ir``      — the nested-parallel IR program (maps over points and
  components, a sequential triangular loop per row) that our AD transforms;
* ``objective_np``  — vectorised NumPy reference;
* ``grad_manual``   — hand-written adjoint (the "Manual" column);
* ``objective_eager`` — the eager-tape baseline (the "PyTorch"/"Tapenade"
  column).
"""
from __future__ import annotations

import math
from typing import Tuple

import numpy as np

import repro as rp
from ..baselines import eager as eg

__all__ = [
    "build_ir",
    "objective_np",
    "grad_manual",
    "objective_eager",
    "tri_indices",
]

GAMMA = 1.0  # wishart prior scale
WM = 0  # wishart prior dof offset


def tri_indices(d: int) -> Tuple[np.ndarray, np.ndarray]:
    """(index matrix into the packed lower triangle, strict-lower mask)."""
    idx = np.zeros((d, d), dtype=np.int64)
    mask = np.zeros((d, d))
    for r in range(d):
        for j in range(r):
            idx[r, j] = d + r * (r - 1) // 2 + j
            mask[r, j] = 1.0
    return idx, mask


# ---------------------------------------------------------------------------
# IR version
# ---------------------------------------------------------------------------


def build_ir(n: int, d: int, K: int):
    """Trace the GMM objective at the given shapes; returns an ``ir.Fun``
    of (alphas, means, icf, x) -> scalar."""

    def objective(alphas, means, icf, x):
        dd = rp.size(means, dim=1)
        k_is = rp.iota(K)

        def log_wishart(k):
            diag_sq = rp.sum(
                rp.map(lambda r: rp.exp(icf[k, r]) * rp.exp(icf[k, r]), rp.iota(d))
            )
            lo_sq = rp.sum(
                rp.map(
                    lambda t: icf[k, d + t] * icf[k, d + t],
                    rp.iota(d * (d - 1) // 2),
                )
            )
            sumlog = rp.sum(rp.map(lambda r: icf[k, r], rp.iota(d)))
            return 0.5 * GAMMA * GAMMA * (diag_sq + lo_sq) - WM * sumlog

        def inner(i, k):
            # ‖Q_k (x_i − μ_k)‖², rows via a sequential triangular loop.
            def qxc_sq(_unused):
                def row_term(r, acc):
                    base = rp.exp(icf[k, r]) * (x[i, r] - means[k, r])

                    def lo(j, s):
                        return s + icf[k, d + r * (r - 1) / 2 + j] * (
                            x[i, j] - means[k, j]
                        )

                    t = rp.fori_loop(r, lo, base)
                    return acc + t * t

                return rp.fori_loop(d, row_term, 0.0)

            sumlog = rp.sum(rp.map(lambda r: icf[k, r], rp.iota(d)))
            return alphas[k] + sumlog - 0.5 * qxc_sq(0)

        def lse_over_k(i):
            vals = rp.map(lambda k: inner(i, k), k_is)
            m = rp.max(vals)
            return rp.log(rp.sum(rp.map(lambda v: rp.exp(v - m), vals))) + m

        per_point = rp.map(lse_over_k, rp.iota(n))
        ma = rp.max(alphas)
        lse_alphas = rp.log(rp.sum(rp.map(lambda a: rp.exp(a - ma), alphas))) + ma
        wish = rp.sum(rp.map(log_wishart, k_is))
        const = -float(n) * float(d) * 0.5 * math.log(2.0 * math.pi)
        return const + rp.sum(per_point) - float(n) * lse_alphas + wish

    return rp.trace(
        objective,
        [
            rp.ir.array(rp.F64, 1),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
        ],
        name="gmm",
        arg_names=["alphas", "means", "icf", "x"],
    )


# ---------------------------------------------------------------------------
# NumPy reference + manual adjoint
# ---------------------------------------------------------------------------


def _unpack(icf: np.ndarray, d: int):
    idx, mask = tri_indices(d)
    ldiag = np.exp(icf[:, :d])  # (K,d)
    lt = icf[:, idx] * mask  # (K,d,d) strict lower
    return ldiag, lt


def _forward(alphas, means, icf, x):
    n, d = x.shape
    K = alphas.shape[0]
    ldiag, lt = _unpack(icf, d)
    xc = x[:, None, :] - means[None, :, :]  # (n,K,d)
    qxc = ldiag[None] * xc + np.einsum("krj,ikj->ikr", lt, xc)
    sq = (qxc * qxc).sum(-1)  # (n,K)
    sumlog = icf[:, :d].sum(-1)  # (K,)
    inner = alphas[None, :] + sumlog[None, :] - 0.5 * sq  # (n,K)
    m = inner.max(-1, keepdims=True)
    lse = np.log(np.exp(inner - m).sum(-1)) + m[:, 0]
    ma = alphas.max()
    lse_a = np.log(np.exp(alphas - ma).sum()) + ma
    wish = 0.5 * GAMMA * GAMMA * ((ldiag**2).sum() + ((icf[:, d:]) ** 2).sum()) - WM * sumlog.sum()
    const = -n * d * 0.5 * math.log(2 * math.pi)
    obj = const + lse.sum() - n * lse_a + wish
    return obj, (ldiag, lt, xc, qxc, inner, lse)


def objective_np(alphas, means, icf, x) -> float:
    return float(_forward(alphas, means, icf, x)[0])


def grad_manual(alphas, means, icf, x):
    """Hand-written adjoint of the objective (the "Manual" column)."""
    n, d = x.shape
    K = alphas.shape[0]
    idx, mask = tri_indices(d)
    obj, (ldiag, lt, xc, qxc, inner, lse) = _forward(alphas, means, icf, x)
    w = np.exp(inner - lse[:, None])  # softmax over k, (n,K)
    galphas = w.sum(0) - n * (np.exp(alphas - alphas.max()) / np.exp(alphas - alphas.max()).sum())
    gsumlog = w.sum(0)  # (K,)
    gqxc = -w[:, :, None] * qxc  # (n,K,d)
    gxc = ldiag[None] * gqxc + np.einsum("krj,ikr->ikj", lt, gqxc)
    gmeans = -gxc.sum(0)
    gldiag = (gqxc * xc).sum(0)  # (K,d)
    glt = np.einsum("ikr,ikj->krj", gqxc, xc) * mask[None]
    gicf = np.zeros_like(icf)
    # diagonal entries: through ldiag = exp(icf), sumlog, and the wishart.
    gicf[:, :d] = gldiag * ldiag + gsumlog[:, None] + GAMMA * GAMMA * ldiag**2 - WM
    # strict lower entries: triangle layout + wishart.
    for r in range(d):
        for j in range(r):
            gicf[:, d + r * (r - 1) // 2 + j] = glt[:, r, j]
    gicf[:, d:] += GAMMA * GAMMA * icf[:, d:]
    return galphas, gmeans, gicf


# ---------------------------------------------------------------------------
# Eager-tape baseline
# ---------------------------------------------------------------------------


def objective_eager(alphas: "eg.T", means: "eg.T", icf: "eg.T", x) -> "eg.T":
    """The eager (PyTorch-style) formulation: vectorised tensor ops."""
    xd = np.asarray(x.data if isinstance(x, eg.T) else x)
    n, d = xd.shape
    idx, mask = tri_indices(d)
    ldiag_log = icf[:, np.arange(d)]
    ldiag = eg.exp(ldiag_log)  # (K,d)
    lt = icf[:, idx] * mask  # (K,d,d)
    x_t = x if isinstance(x, eg.T) else eg.T(x)
    xc = x_t.reshape(n, 1, d) - means.reshape(1, -1, d)  # (n,K,d)
    Kn = means.shape[0]
    # qxc[i,k,:] = ldiag*xc + lt @ xc
    prod = (lt.reshape(1, Kn, d, d) * xc.reshape(n, Kn, 1, d)).sum(axis=3)
    qxc = ldiag.reshape(1, Kn, d) * xc + prod
    sq = (qxc * qxc).sum(axis=2)
    sumlog = ldiag_log.sum(axis=1)
    inner = alphas.reshape(1, Kn) + sumlog.reshape(1, Kn) - 0.5 * sq
    lse = eg.logsumexp(inner, axis=1)
    lse_a = eg.logsumexp(alphas)
    wish = 0.5 * GAMMA * GAMMA * ((ldiag * ldiag).sum() + (icf[:, np.arange(d, icf.shape[1])] ** 2).sum()) - WM * sumlog.sum()
    const = -n * d * 0.5 * math.log(2 * math.pi)
    return const + lse.sum() - float(n) * lse_a + wish
