"""RSBench-shaped multipole resonance kernel (Table 2).

One big ``map`` over lookups; each evaluates a window of resonance poles
with an inner loop of complex-valued arithmetic (carried as explicit
real/imaginary parts), indirectly indexed by the lookup's window.  The
differentiated quantity is the summed cross-section wrt the residue tables.
"""
from __future__ import annotations

import numpy as np

import repro as rp
from ..baselines import eager as eg

__all__ = ["build_ir", "objective_np", "objective_eager"]


def build_ir(n_lookups: int, n_windows: int, n_poles: int):
    def objective(pole_re, pole_im, res_re, res_im, lookup_e, window_of):
        def per_lookup(i):
            e = lookup_e[i]
            w = window_of[i]

            def per_pole(p, sig):
                dr = e - pole_re[w, p]
                di = pole_im[w, p]
                denom = dr * dr + di * di + 1e-12
                # Im/Re parts of residue/(E - pole):
                contrib = (res_re[w, p] * dr + res_im[w, p] * di) / denom
                return sig + contrib

            return rp.fori_loop(n_poles, per_pole, 0.0)

        return rp.sum(rp.map(per_lookup, rp.iota(n_lookups)))

    return rp.trace(
        objective,
        [
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 2),
            rp.ir.array(rp.F64, 1),
            rp.ir.array(rp.I64, 1),
        ],
        name="rsbench",
        arg_names=["pole_re", "pole_im", "res_re", "res_im", "lookup_e", "window_of"],
    )


def objective_np(pole_re, pole_im, res_re, res_im, lookup_e, window_of) -> float:
    w = window_of
    dr = lookup_e[:, None] - pole_re[w]  # (n, P)
    di = pole_im[w]
    denom = dr * dr + di * di + 1e-12
    contrib = (res_re[w] * dr + res_im[w] * di) / denom
    return float(contrib.sum())


def objective_eager(pole_re, pole_im, res_re, res_im, lookup_e, window_of) -> "eg.T":
    pr = pole_re if isinstance(pole_re, eg.T) else eg.T(pole_re)
    pi = pole_im if isinstance(pole_im, eg.T) else eg.T(pole_im)
    rr = res_re if isinstance(res_re, eg.T) else eg.T(res_re)
    ri = res_im if isinstance(res_im, eg.T) else eg.T(res_im)
    le = np.asarray(lookup_e)
    w = np.asarray(window_of)
    dr = eg.T(le.reshape(-1, 1)) - pr[w]
    di = pi[w]
    denom = dr * dr + di * di + 1e-12
    contrib = (rr[w] * dr + ri[w] * di) / denom
    return contrib.sum()
