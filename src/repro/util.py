"""Small shared utilities: fresh-name supply and error types."""
from __future__ import annotations

import itertools
import threading

__all__ = [
    "ReproError",
    "IRError",
    "TypeError_",
    "ADError",
    "ExecError",
    "NameSupply",
    "fresh",
    "reset_names",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed IR (construction or validation failure)."""


class TypeError_(ReproError):
    """IR type error (suffixed to avoid shadowing the builtin)."""


class ADError(ReproError):
    """A program cannot be differentiated (unsupported construct/shape)."""


class ExecError(ReproError):
    """Runtime failure while executing IR."""


class NameSupply:
    """Thread-safe supply of fresh SSA names.

    Names are ``<base>_<counter>``; the counter is global so every generated
    name in a program is unique, which the AD transforms rely on.
    """

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def fresh(self, base: str = "t") -> str:
        # Strip any previous numeric suffix so repeated freshening doesn't
        # produce ever-growing names like x_1_2_3.
        stem, _, tail = base.rpartition("_")
        if stem and tail.isdigit():
            base = stem
        with self._lock:
            return f"{base}_{next(self._counter)}"


_GLOBAL_SUPPLY = NameSupply()


def fresh(base: str = "t") -> str:
    """Return a globally fresh name derived from ``base``."""
    return _GLOBAL_SUPPLY.fresh(base)


def reset_names() -> None:
    """Reset the global name counter (tests only — not thread safe)."""
    global _GLOBAL_SUPPLY
    _GLOBAL_SUPPLY = NameSupply()
