"""Small shared utilities: fresh-name supply, error types, bounded LRU."""
from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict

__all__ = [
    "ReproError",
    "IRError",
    "TypeError_",
    "ADError",
    "ExecError",
    "NameSupply",
    "fresh",
    "reset_names",
    "BoundedLRU",
    "env_capacity",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed IR (construction or validation failure)."""


class TypeError_(ReproError):
    """IR type error (suffixed to avoid shadowing the builtin)."""


class ADError(ReproError):
    """A program cannot be differentiated (unsupported construct/shape)."""


class ExecError(ReproError):
    """Runtime failure while executing IR."""


class NameSupply:
    """Thread-safe supply of fresh SSA names.

    Names are ``<base>_<counter>``; the counter is global so every generated
    name in a program is unique, which the AD transforms rely on.
    """

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def fresh(self, base: str = "t") -> str:
        # Strip any previous numeric suffix so repeated freshening doesn't
        # produce ever-growing names like x_1_2_3.
        stem, _, tail = base.rpartition("_")
        if stem and tail.isdigit():
            base = stem
        with self._lock:
            return f"{base}_{next(self._counter)}"


_GLOBAL_SUPPLY = NameSupply()


def fresh(base: str = "t") -> str:
    """Return a globally fresh name derived from ``base``."""
    return _GLOBAL_SUPPLY.fresh(base)


#: Sentinel distinguishing "no entry" from a stored ``None`` in
#: ``BoundedLRU.get`` — a stored ``None`` is a real value and must both be
#: returned and refreshed as most-recently used.
_MISSING = object()


class BoundedLRU:
    """An access-ordered mapping bounded to a capacity supplied at put time.

    Shared by the optimisation memo, the analysis memos, and the plan cache:
    all key immutable values by object identity (holding strong references so
    ids cannot be recycled while entries live) and bound growth with an
    env-configured capacity read per call, so they stay behaviourally
    identical.

    Thread safety: every operation takes an internal re-entrant lock —
    ``OrderedDict.move_to_end``/``popitem`` are not safe under concurrent
    mutation (the shard executor's thread mode resolves plans from pool
    workers).  Compound caller sequences (get-then-put) remain benign races:
    the worst case is one duplicate lowering, never a corrupted mapping.
    """

    def __init__(self) -> None:
        self._d: "OrderedDict[object, object]" = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key, default=None):
        """The stored value (refreshed as most-recent), or ``default``.

        A stored ``None`` is a hit, not a miss: it is refreshed and returned
        like any other value (callers that store ``None`` distinguish a miss
        by passing their own sentinel ``default``).
        """
        with self._lock:
            v = self._d.get(key, _MISSING)
            if v is _MISSING:
                return default
            self._d.move_to_end(key)
            return v

    def put(self, key, value, capacity: int) -> int:
        """Store ``key``; evict least-recent entries beyond ``capacity``
        (``capacity <= 0`` means unbounded).  Returns the eviction count."""
        with self._lock:
            self._d[key] = value
            self._d.move_to_end(key)
            n = 0
            if capacity > 0:
                while len(self._d) > capacity:
                    self._d.popitem(last=False)
                    n += 1
            return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._d)

    def clear(self) -> None:
        with self._lock:
            self._d.clear()


def env_capacity(var: str, default: int) -> int:
    """An integer cache capacity from the environment (read at call time)."""
    try:
        return int(os.environ.get(var, default))
    except ValueError:
        return default


def reset_names() -> None:
    """Reset the global name counter (tests only — not thread safe)."""
    global _GLOBAL_SUPPLY
    _GLOBAL_SUPPLY = NameSupply()
