"""Layer-1 static verifier: pass-boundary checking of the array IR.

The paper's correctness story rests on invariants the rewrite engine must
preserve — SSA scoping, type preservation, schedule legality, and the §5.4
accumulator discipline.  This module packages them as one entry point,
``verify_fun``, invoked at pipeline boundaries behind the ``REPRO_VERIFY``
knob:

* ``off``       — no verification (production default; the hooks cost one
  environment lookup per *compile stage*, never per call);
* ``boundary``  — verify at stage boundaries: after tracing, after the whole
  optimisation pipeline, after AD transforms, after schedule application and
  at lowering (the default under pytest, see ``tests/conftest.py``);
* ``full``      — additionally verify after every individual optimisation
  pass (failures name the pass that fired), run the parallel-safety
  analysis (layer 3, below) and the plan/codegen checks of
  ``exec/verify_plan.py`` (layer 2).

Checks performed by ``verify_fun``:

* **SSA well-formedness** — every binder is unique across the whole function
  (the flat-environment invariant the executors rely on; a ``WhileLoop``'s
  condition lambda deliberately shares the loop's parameters) and every use
  is lexically dominated by its definition;
* **type preservation** — ``typecheck.check_fun``;
* **accumulator discipline** — ``validate.validate_fun`` (region/escape
  analysis);
* **schedule legality** — every attached schedule re-checked with
  ``schedule.check_schedule``.

Layer 3, ``verify_parallel_safety``, statically proves every ``parallel(w)``
directive race-free: the directive's legality conditions, no free
accumulator threading through the split, a commutative combine operator for
parallel reductions, and a scatter/``ufunc.at`` index-overlap analysis that
refuses provably-overlapping writes.  Violations raise ``VerifyError``
naming the pass and the offending statement.

Counters are surfaced through the ``obs`` metrics registry under the
``verify`` section; each verification runs inside a ``verify`` tracing span.
"""
from __future__ import annotations

import os
from typing import Dict, Optional, Set

from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..util import IRError, ReproError
from .analysis import (
    OP_IDENTITY,
    recognize_binop_lambda,
    recognize_redomap_lambda,
)
from .ast import (
    AtomExp,
    Body,
    Const,
    Exp,
    Fun,
    If,
    Lambda,
    Loop,
    Map,
    Reduce,
    Replicate,
    Scatter,
    Stm,
    Var,
    WhileLoop,
)
from .schedule import Parallel, check_schedule, format_schedule
from .traversal import exp_atoms, exp_lambdas, free_vars
from .typecheck import check_fun
from .types import AccType
from .validate import validate_fun

__all__ = [
    "VerifyError",
    "VERIFY_STATS",
    "verify_mode",
    "verify_fun",
    "maybe_verify_fun",
    "verify_parallel_safety",
    "verify_stats",
    "reset_verify_stats",
]


class VerifyError(IRError):
    """An IR invariant violation caught by the static verifier.

    The message names the pipeline location (``where`` — e.g. ``opt:fuse``,
    ``vjp``, ``schedule``, ``lower``) and the offending statement, so a
    failing pass is attributable without a bisection.
    """

    def __init__(self, msg: str, where: str = "", stm: Optional[Stm] = None):
        self.where = where
        self.stm = stm
        loc = f" after pass {where!r}" if where else ""
        at = ""
        if stm is not None:
            pat = ", ".join(v.name for v in stm.pat)
            at = f" in statement 'let ({pat}) = {type(stm.exp).__name__}'"
        super().__init__(f"IR verification failed{loc}{at}: {msg}")


_MODES = ("off", "boundary", "full")


def verify_mode() -> str:
    """The active verification mode: ``REPRO_VERIFY`` ∈ off|boundary|full."""
    mode = os.environ.get("REPRO_VERIFY", "off").strip().lower()
    return mode if mode in _MODES else "off"


# ---------------------------------------------------------------------------
# Stats (obs metrics registry section "verify")
# ---------------------------------------------------------------------------

VERIFY_STATS = _metrics.counter_group(
    "verify",
    {
        "fun_checks": 0,
        "plan_checks": 0,
        "codegen_checks": 0,
        "parallel_checks": 0,
        "failures": 0,
    },
)


def verify_stats() -> Dict[str, object]:
    """Verifier counters plus the active mode (one snapshot section)."""
    return {**VERIFY_STATS, "mode": verify_mode()}


def reset_verify_stats() -> None:
    for k in VERIFY_STATS:
        VERIFY_STATS[k] = 0


_metrics.register_source("verify", verify_stats, reset_verify_stats)


# ---------------------------------------------------------------------------
# SSA well-formedness
# ---------------------------------------------------------------------------


def _check_ssa(fun: Fun, where: str) -> None:
    """Def-before-use plus no-shadowing along every lexical path.

    The flat-environment executors key registers by *name*, so a binder may
    never rebind a name that is live in an enclosing scope (the inner write
    would clobber the outer register).  Sibling scopes may reuse names —
    AD's redundant-execution rewrites do — because the earlier binding is
    dead by the time the later scope runs.
    """

    def bind(v: Var, scope: Set[str], stm: Optional[Stm]) -> None:
        if v.name in scope:
            raise VerifyError(
                f"binder {v.name!r} shadows a definition live in an "
                f"enclosing scope",
                where,
                stm,
            )
        scope.add(v.name)

    def use(a, scope: Set[str], stm: Optional[Stm]) -> None:
        if isinstance(a, Var) and a.name not in scope:
            raise VerifyError(
                f"use of {a.name!r} before its definition", where, stm
            )

    def walk_body(body: Body, scope: Set[str]) -> None:
        scope = set(scope)
        for stm in body.stms:
            walk_exp(stm.exp, scope, stm)
            for v in stm.pat:
                bind(v, scope, stm)
        for a in body.result:
            use(a, scope, None)

    def walk_lambda(lam: Lambda, scope: Set[str], stm: Optional[Stm]) -> None:
        inner = set(scope)
        for p in lam.params:
            bind(p, inner, stm)
        walk_body(lam.body, inner)

    def walk_exp(e: Exp, scope: Set[str], stm: Optional[Stm]) -> None:
        for a in exp_atoms(e):
            use(a, scope, stm)
        if isinstance(e, WhileLoop):
            inner = set(scope)
            pnames = {p.name for p in e.params}
            for p in e.params:
                bind(p, inner, stm)
            # The condition lambda shares the loop's binders by construction
            # (frontend/ops.py, traversal.refresh) — re-binding those names
            # is not shadowing.  Any *other* name it binds is a new binder.
            cinner = set(inner)
            for p in e.cond.params:
                if p.name not in pnames:
                    bind(p, cinner, stm)
            walk_body(e.cond.body, cinner)
            walk_body(e.body, inner)
        elif isinstance(e, Loop):
            inner = set(scope)
            for p in e.params:
                bind(p, inner, stm)
            bind(e.ivar, inner, stm)
            walk_body(e.body, inner)
        elif isinstance(e, If):
            walk_body(e.then, scope)
            walk_body(e.els, scope)
        else:
            for lam in exp_lambdas(e):
                walk_lambda(lam, scope, stm)

    scope0: Set[str] = set()
    for p in fun.params:
        bind(p, scope0, None)
    walk_body(fun.body, scope0)


# ---------------------------------------------------------------------------
# Schedule legality
# ---------------------------------------------------------------------------


def _check_schedules(fun: Fun, where: str) -> None:
    def walk_body(body: Body) -> None:
        for stm in body.stms:
            sched = getattr(stm.exp, "schedule", ())
            if sched:
                err = check_schedule(stm.exp, sched, n_pat=len(stm.pat))
                if err is not None:
                    raise VerifyError(
                        f"illegal schedule "
                        f"{format_schedule(tuple(sched))!r}: {err}",
                        where,
                        stm,
                    )
            walk_exp(stm.exp)

    def walk_exp(e: Exp) -> None:
        for lam in exp_lambdas(e):
            walk_body(lam.body)
        if isinstance(e, (Loop, WhileLoop)):
            walk_body(e.body)
        elif isinstance(e, If):
            walk_body(e.then)
            walk_body(e.els)

    walk_body(fun.body)


# ---------------------------------------------------------------------------
# Layer 3: parallel-safety analysis
# ---------------------------------------------------------------------------

#: Operators whose chunk partials recombine in any order — required for a
#: parallel reduce, where worker completion order is nondeterministic.
#: (Floating-point reassociation is accepted, as in the paper's backend.)
COMMUTATIVE_OPS = frozenset(OP_IDENTITY)


def _resolve_def(name: str, defs: Dict[str, Exp]) -> Optional[Exp]:
    """Chase copies to the defining expression of ``name`` (same body only)."""
    seen: Set[str] = set()
    e = defs.get(name)
    while (
        isinstance(e, AtomExp)
        and isinstance(e.x, Var)
        and e.x.name not in seen
    ):
        seen.add(e.x.name)
        e = defs.get(e.x.name)
    return e


def _scatter_overlap(e: Scatter, defs: Dict[str, Exp]) -> Optional[str]:
    """A reason when the scatter's writes provably overlap.

    ``Iota``-derived (and reversed-iota) indices are provably duplicate-free;
    a ``Replicate`` of one index is provably all-duplicates — the
    ``ufunc.at``-style write would race under any chunked or parallel
    execution, and violates the IR precondition outright.
    Unknown index provenance passes (runtime semantics apply).
    """
    d = _resolve_def(e.inds.name, defs)
    if isinstance(d, Replicate):
        n = d.n
        if isinstance(n, Const) and int(n.value) <= 1:
            return None
        return (
            f"scatter indices {e.inds.name!r} replicate a single index — "
            f"overlapping writes race across chunks"
        )
    return None


def _map_split_hazard(e: Map) -> Optional[str]:
    for name, v in free_vars(e.lam).items():
        if isinstance(v.type, AccType):
            return (
                f"free accumulator {name!r} threads through the split — "
                f"chunks would race on its underlying buffer"
            )
    return None


def _reduce_combine_hazard(e: Reduce) -> Optional[str]:
    op = recognize_binop_lambda(e.lam)
    if op is None:
        rm = recognize_redomap_lambda(e.lam)
        op = rm[0] if rm is not None else None
    if op is None:
        return "combine operator not recognised as associative"
    if op not in COMMUTATIVE_OPS:
        return f"combine operator {op!r} is not commutative"
    return None


def verify_parallel_safety(fun: Fun, where: str = "") -> None:
    """Statically prove every parallel schedule race-free; raise otherwise."""
    VERIFY_STATS["parallel_checks"] += 1

    def walk_body(body: Body) -> None:
        defs: Dict[str, Exp] = {}
        for stm in body.stms:
            e = stm.exp
            if isinstance(e, Scatter):
                reason = _scatter_overlap(e, defs)
                if reason is not None:
                    raise VerifyError(
                        f"parallel-unsafe: {reason}", where, stm
                    )
            sched = tuple(getattr(e, "schedule", ()))
            if any(isinstance(d, Parallel) for d in sched):
                err = check_schedule(e, sched, n_pat=len(stm.pat))
                if err is not None:
                    raise VerifyError(
                        f"parallel-unsafe schedule "
                        f"{format_schedule(sched)!r}: {err}",
                        where,
                        stm,
                    )
                reason = None
                if isinstance(e, Map):
                    reason = _map_split_hazard(e)
                elif isinstance(e, Reduce):
                    reason = _reduce_combine_hazard(e)
                if reason is not None:
                    raise VerifyError(
                        f"parallel-unsafe: {reason}", where, stm
                    )
            for lam in exp_lambdas(e):
                walk_body(lam.body)
            if isinstance(e, (Loop, WhileLoop)):
                walk_body(e.body)
            elif isinstance(e, If):
                walk_body(e.then)
                walk_body(e.els)
            for v in stm.pat:
                defs.setdefault(v.name, e)

    walk_body(fun.body)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def verify_fun(fun: Fun, where: str = "", *, full: bool = False) -> Fun:
    """Run the layer-1 checks on ``fun``; returns it unchanged on success.

    Raises ``VerifyError`` naming ``where`` (the pass/stage that produced
    the IR) and the offending statement.  ``full`` additionally runs the
    parallel-safety analysis.
    """
    with _tracing.span("verify", cat="verify", fun=fun.name, where=where):
        VERIFY_STATS["fun_checks"] += 1
        try:
            _check_ssa(fun, where)
            check_fun(fun)
            validate_fun(fun)
            _check_schedules(fun, where)
            if full:
                verify_parallel_safety(fun, where=where)
        except VerifyError:
            VERIFY_STATS["failures"] += 1
            raise
        except ReproError as err:
            VERIFY_STATS["failures"] += 1
            raise VerifyError(str(err), where=where) from err
    return fun


def maybe_verify_fun(fun: Fun, where: str = "") -> Fun:
    """``verify_fun`` gated on ``REPRO_VERIFY`` (the standard hook form)."""
    mode = verify_mode()
    if mode == "off":
        return fun
    return verify_fun(fun, where=where, full=mode == "full")
