"""AST of the ANF array IR.

The language follows the paper's core IR (§2.1):

* programs are in A-normal form — every subexpression is a ``Var`` or
  ``Const`` except the bodies of lambdas, loops and ifs;
* a ``Body`` is a sequence of statements followed by a tuple of result atoms;
* a ``Stm`` binds a *tuple* of variables to a single expression (SOACs, loops
  and ifs are variadic in their results, so zips/unzips are implicit);
* lambdas appear only syntactically inside SOACs / ``WithAcc`` and are not
  values;
* the language is purely functional — ``Update``/``Scatter`` have functional
  copy semantics operationally guaranteed (by Futhark's uniqueness types;
  by copy-on-write in our executors);
* accumulators (``WithAcc``/``UpdAcc``) are the paper's write-only views used
  by reverse AD inside ``map``.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from .types import Scalar, Type

__all__ = [
    "Var",
    "Const",
    "Atom",
    "Exp",
    "AtomExp",
    "UnOp",
    "BinOp",
    "Select",
    "Cast",
    "Index",
    "Update",
    "Iota",
    "Replicate",
    "ZerosLike",
    "ScratchLike",
    "Size",
    "Reverse",
    "Concat",
    "Lambda",
    "Map",
    "Reduce",
    "Scan",
    "ReduceByIndex",
    "Scatter",
    "Loop",
    "WhileLoop",
    "If",
    "WithAcc",
    "UpdAcc",
    "Stm",
    "Body",
    "Fun",
    "UNOPS",
    "BINOPS",
    "COMPARISONS",
]


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A named SSA variable with its type."""

    name: str
    type: Type

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A scalar literal."""

    value: object
    type: Scalar

    def __repr__(self) -> str:
        if self.type is Scalar.BOOL:
            return "true" if self.value else "false"
        return repr(self.value)


Atom = Union[Var, Const]


# ---------------------------------------------------------------------------
# Operator tables
# ---------------------------------------------------------------------------

#: Unary scalar operators.  All are elementwise rank-polymorphic in the
#: executors (a deliberate convenience: generated adjoint code uses
#: whole-array adds where Futhark would write ``map2 (+)``).
UNOPS = frozenset(
    {
        "neg",
        "sin",
        "cos",
        "tan",
        "exp",
        "log",
        "sqrt",
        "abs",
        "sgn",
        "not",
        "tanh",
        "sigmoid",
        "floor",
        "erf",
    }
)

#: Binary scalar operators (likewise elementwise in executors).
BINOPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "div",
        "pow",
        "min",
        "max",
        "and",
        "or",
        "lt",
        "le",
        "gt",
        "ge",
        "eq",
        "ne",
        "mod",
    }
)

COMPARISONS = frozenset({"lt", "le", "gt", "ge", "eq", "ne"})


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AtomExp:
    """An atom used as an expression (copy / rename)."""

    x: Atom


@dataclass(frozen=True)
class UnOp:
    op: str
    x: Atom


@dataclass(frozen=True)
class BinOp:
    op: str
    x: Atom
    y: Atom


@dataclass(frozen=True)
class Select:
    """Scalar/elementwise select: ``c ? t : f``."""

    c: Atom
    t: Atom
    f: Atom


@dataclass(frozen=True)
class Cast:
    x: Atom
    to: Scalar


@dataclass(frozen=True)
class Index:
    """``arr[i0, i1, ...]`` — possibly partial (result rank = rank - len(idx))."""

    arr: Var
    idx: Tuple[Atom, ...]


@dataclass(frozen=True)
class Update:
    """Functional in-place write: result is ``arr`` with ``arr[idx] = val``.

    ``val``'s rank must equal ``arr.rank - len(idx)``.
    """

    arr: Var
    idx: Tuple[Atom, ...]
    val: Atom


@dataclass(frozen=True)
class Iota:
    """``[0, 1, ..., n-1]`` of the given integral element type."""

    n: Atom
    elem: Scalar = Scalar.I64


@dataclass(frozen=True)
class Replicate:
    """``n`` copies of ``v`` along a new leading axis."""

    n: Atom
    v: Atom


@dataclass(frozen=True)
class ZerosLike:
    """A zero value with the type/shape of ``x`` (used to seed adjoints)."""

    x: Atom


@dataclass(frozen=True)
class ScratchLike:
    """An uninitialised (zeroed) array of shape ``(n,) + shape(x)``.

    Used to allocate loop checkpoint storage (paper Fig. 3, ``scratch``).
    """

    n: Atom
    x: Atom


@dataclass(frozen=True)
class Size:
    """``length arr`` along dimension ``dim`` (an i64 scalar)."""

    arr: "Var"
    dim: int = 0


@dataclass(frozen=True)
class Reverse:
    """Reverse an array along its leading axis (used by reduce/scan rules)."""

    x: Var


@dataclass(frozen=True)
class Concat:
    """Concatenate two arrays along the leading axis."""

    x: Var
    y: Var


# ---------------------------------------------------------------------------
# Lambdas and SOACs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lambda:
    """An anonymous function; may reference enclosing variables freely."""

    params: Tuple[Var, ...]
    body: "Body"


@dataclass(frozen=True)
class Map:
    """``map lam arrs`` — variadic second-order map.

    * ``arrs`` are arrays of equal leading extent; the lambda receives one
      element of each.
    * ``accs`` are accumulator variables threaded through every iteration
      (paper §5.4: "implicit conversion between accumulators and arrays of
      accumulators").  The lambda's parameters are
      ``(elem_0 .. elem_{k-1}, acc_0 .. acc_{m-1})`` and its body must return
      the accumulators as its *leading* results, followed by the per-element
      results.  The Map's own results are the final accumulators followed by
      the result arrays.

    ``schedule`` is the node's axis schedule — an ordered tuple of directives
    from ``ir.schedule`` (``Vectorized | Parallel | Sequential``).  Empty means
    "use the default schedule" (see ``ir.schedule.default_schedule``).  The
    field is trailing-with-default on every schedulable node so positional
    rebuilds in the optimiser and AD reset it; schedules are applied *after*
    optimisation (``Compiled.__init__``).
    """

    lam: Lambda
    arrs: Tuple[Var, ...]
    accs: Tuple[Var, ...] = ()
    schedule: tuple = ()


@dataclass(frozen=True)
class Reduce:
    """``reduce lam nes arrs`` with an associative operator.

    The lambda has ``2k`` parameters (accumulator tuple, element tuple) and
    ``k`` results; ``nes`` are the neutral elements.  Elements are scalars.
    """

    lam: Lambda
    nes: Tuple[Atom, ...]
    arrs: Tuple[Var, ...]
    schedule: tuple = ()


@dataclass(frozen=True)
class Scan:
    """Inclusive prefix scan with an associative operator (same shape as Reduce)."""

    lam: Lambda
    nes: Tuple[Atom, ...]
    arrs: Tuple[Var, ...]
    schedule: tuple = ()


@dataclass(frozen=True)
class ReduceByIndex:
    """Generalised histogram (paper §5.1.2).

    ``num_bins`` gives the histogram size ``m``; ``inds`` holds bin indices
    (out-of-range indices are ignored, matching Futhark's semantics); ``vals``
    are the value arrays; ``lam``/``nes`` is the associative & commutative
    operator with neutral element(s).  Results are ``k`` arrays of length m.
    """

    num_bins: Atom
    lam: Lambda
    nes: Tuple[Atom, ...]
    inds: Var
    vals: Tuple[Var, ...]
    schedule: tuple = ()


@dataclass(frozen=True)
class Scatter:
    """``scatter dest inds vals`` — bulk in-place update (paper §5.3).

    Writes ``vals[i]`` to ``dest[inds[i]]``; indices must not contain
    duplicates (the paper's rule assumes the same); out-of-range indices are
    ignored.  Functional copy semantics in our executors.
    """

    dest: Var
    inds: Var
    vals: Var
    schedule: tuple = ()


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Loop:
    """``loop (params = inits) for ivar < n do body`` — a pure for-loop.

    ``body`` sees ``params`` and ``ivar``; its results become the params of
    the next iteration.  Annotations (mirroring the paper's user annotations):

    * ``stripmine`` — strip-mine this loop ``stripmine`` times before reverse
      AD (time–space trade-off of §4.3);
    * ``checkpoint`` — ``"iters"`` (default: save loop-variant values every
      iteration, Fig. 3) or ``"entry"`` (§6.2: loop-variant arrays free of
      false dependencies are saved once at loop entry and restored before the
      return sweep).

    ``stripmine=f`` is sugar for the schedule ``sequential(f)·sequential``:
    ``ir.schedule.apply_schedule`` converts a chunked sequential directive on
    a Loop into this annotation, which ``opt.stripmine`` then realises.
    """

    params: Tuple[Var, ...]
    inits: Tuple[Atom, ...]
    ivar: Var
    n: Atom
    body: "Body"
    stripmine: int = 0
    checkpoint: str = "iters"
    schedule: tuple = ()


@dataclass(frozen=True)
class WhileLoop:
    """``loop (params = inits) while cond do body``.

    Reverse AD requires either a static iteration ``bound`` annotation or the
    inspector strategy (§6.2); the ``while_bound`` pass rewrites bounded while
    loops into ``Loop`` + ``If``.
    """

    params: Tuple[Var, ...]
    inits: Tuple[Atom, ...]
    cond: "Lambda"
    body: "Body"
    bound: Optional[Atom] = None
    schedule: tuple = ()


@dataclass(frozen=True)
class If:
    """Multi-result conditional; both branches are bodies (new scopes)."""

    cond: Atom
    then: "Body"
    els: "Body"


# ---------------------------------------------------------------------------
# Accumulators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WithAcc:
    """``withacc arrs lam`` — run ``lam`` with accumulator views of ``arrs``.

    ``lam``'s parameters are the accumulators; its body must return the final
    accumulators (leading results) followed by any secondary results.  The
    WithAcc's results are the updated arrays followed by the secondary
    results.  While the accumulators live, the underlying arrays may not be
    read (checked by ``validate``).
    """

    arrs: Tuple[Var, ...]
    lam: Lambda


@dataclass(frozen=True)
class UpdAcc:
    """``upd idx v acc`` — additively update an accumulator.

    With an empty ``idx`` the whole underlying array is updated elementwise
    (``v`` has the array's full rank).  Returns the new accumulator.
    """

    acc: Var
    idx: Tuple[Atom, ...]
    v: Atom


Exp = Union[
    AtomExp,
    UnOp,
    BinOp,
    Select,
    Cast,
    Index,
    Update,
    Iota,
    Replicate,
    ZerosLike,
    ScratchLike,
    Size,
    Reverse,
    Concat,
    Map,
    Reduce,
    Scan,
    ReduceByIndex,
    Scatter,
    Loop,
    WhileLoop,
    If,
    WithAcc,
    UpdAcc,
]


# ---------------------------------------------------------------------------
# Statements, bodies, functions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stm:
    """``let (pat...) = exp``."""

    pat: Tuple[Var, ...]
    exp: Exp

    def __post_init__(self) -> None:
        assert isinstance(self.pat, tuple), "Stm.pat must be a tuple of Vars"


@dataclass(frozen=True)
class Body:
    """A sequence of statements followed by result atoms — a lexical scope."""

    stms: Tuple[Stm, ...]
    result: Tuple[Atom, ...]


@dataclass(frozen=True)
class Fun:
    """A top-level function (the unit AD operates on)."""

    name: str
    params: Tuple[Var, ...]
    body: Body

    @property
    def ret_types(self) -> Tuple[Type, ...]:
        return tuple(a.type for a in self.body.result)
