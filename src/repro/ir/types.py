"""Types of the array IR.

The language is rank-typed: an array type records its element (scalar) type
and its rank, while extents are dynamic and checked by the executors.  This
mirrors the paper's core language closely enough for the AD transformation —
the only shape information the transforms need is (a) scalar vs array and
(b) rank, e.g. to build ``ZerosLike`` adjoints and checkpoint arrays.
"""
from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Union

import numpy as np

__all__ = [
    "Scalar",
    "F32",
    "F64",
    "I32",
    "I64",
    "BOOL",
    "ArrayType",
    "AccType",
    "Type",
    "is_float",
    "is_integral",
    "elem_type",
    "array",
    "np_dtype",
    "from_np_dtype",
    "rank_of",
    "with_rank",
]


class Scalar(Enum):
    """Primitive scalar types."""

    F32 = "f32"
    F64 = "f64"
    I32 = "i32"
    I64 = "i64"
    BOOL = "bool"

    def __repr__(self) -> str:  # compact in IR dumps
        return self.value

    def __str__(self) -> str:
        return self.value


F32 = Scalar.F32
F64 = Scalar.F64
I32 = Scalar.I32
I64 = Scalar.I64
BOOL = Scalar.BOOL


@dataclass(frozen=True)
class ArrayType:
    """A rank-``rank`` array of ``elem`` scalars (rank >= 1)."""

    elem: Scalar
    rank: int

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError(f"array rank must be >= 1, got {self.rank}")

    def __repr__(self) -> str:
        return "[]" * self.rank + self.elem.value

    def __str__(self) -> str:
        return repr(self)


@dataclass(frozen=True)
class AccType:
    """An accumulator view of an array (paper §5.4).

    Accumulators are write-only views supporting ``UpdAcc``; they have no
    runtime representation distinct from the underlying array but the type
    system tracks them so the validator can enforce linear use.
    """

    elem: Scalar
    rank: int

    def __repr__(self) -> str:
        return "acc(" + "[]" * self.rank + self.elem.value + ")"

    def __str__(self) -> str:
        return repr(self)


Type = Union[Scalar, ArrayType, AccType]


_FLOATS = (Scalar.F32, Scalar.F64)
_INTS = (Scalar.I32, Scalar.I64)


def is_float(t: Type) -> bool:
    """True if ``t`` is a floating scalar or an array/accumulator thereof."""
    if isinstance(t, (ArrayType, AccType)):
        return t.elem in _FLOATS
    return t in _FLOATS


def is_integral(t: Type) -> bool:
    if isinstance(t, (ArrayType, AccType)):
        return t.elem in _INTS
    return t in _INTS


def elem_type(t: Type) -> Scalar:
    """The underlying scalar type of ``t``."""
    if isinstance(t, (ArrayType, AccType)):
        return t.elem
    return t


def rank_of(t: Type) -> int:
    """Array rank of ``t`` (0 for scalars)."""
    if isinstance(t, (ArrayType, AccType)):
        return t.rank
    return 0


def with_rank(elem: Scalar, rank: int) -> Type:
    """Scalar if rank == 0, else an ArrayType."""
    if rank == 0:
        return elem
    return ArrayType(elem, rank)


def array(elem: Scalar, rank: int = 1) -> ArrayType:
    """Convenience constructor for array types."""
    return ArrayType(elem, rank)


_NP_OF = {
    Scalar.F32: np.float32,
    Scalar.F64: np.float64,
    Scalar.I32: np.int32,
    Scalar.I64: np.int64,
    Scalar.BOOL: np.bool_,
}

_OF_NP = {
    np.dtype(np.float32): Scalar.F32,
    np.dtype(np.float64): Scalar.F64,
    np.dtype(np.int32): Scalar.I32,
    np.dtype(np.int64): Scalar.I64,
    np.dtype(np.bool_): Scalar.BOOL,
}


def np_dtype(t: Type):
    """NumPy dtype for the element type of ``t``."""
    return _NP_OF[elem_type(t)]


def from_np_dtype(dt) -> Scalar:
    """Scalar type corresponding to a NumPy dtype."""
    dt = np.dtype(dt)
    if dt in _OF_NP:
        return _OF_NP[dt]
    # Accept platform ints (e.g. intp) by widening.
    if np.issubdtype(dt, np.integer):
        return Scalar.I64
    if np.issubdtype(dt, np.floating):
        return Scalar.F64
    if np.issubdtype(dt, np.bool_):
        return Scalar.BOOL
    raise ValueError(f"unsupported numpy dtype {dt}")
