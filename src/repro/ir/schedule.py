"""First-class schedule IR for SOAC and loop statements.

A *schedule* is an ordered tuple of axis directives describing how the
leading axis of a SOAC (or the trip axis of a loop) is executed, outermost
directive first:

* ``vectorized``      — one bulk NumPy evaluation over the axis;
* ``parallel(w)``     — split the axis across ``w`` pool workers (0 = use
  ``REPRO_SHARD_WORKERS``); realised only by the shard runtime, a no-op on
  single-process backends, which is what keeps every legal schedule
  bitwise-identical to the default;
* ``sequential(c)``   — run the axis in order, ``c`` elements per step
  (0 = one at a time / plain sequential).  On a ``Loop`` a chunked
  sequential directive is sugar for the paper's §4.3 strip-mining
  annotation (``stripmine=c``); on a ``Map`` it lowers to an explicit
  chunk loop in plan IR.

The paper's strip-mine annotation, the shard backend's split point and the
batched multi-seed axis are all instances of this algebra; this module is
the one place that names it.  Schedules are *descriptions*: every directive
is realised by exactly one layer (vectorized → bulk emitters, sequential →
stripmine pass / chunked map lowering, parallel → shard runtime), and each
realisation is constructed to be bitwise-identical to the default bulk
execution — slicing an elementwise map is exact, and the shard chunk
grid is worker-count independent.

Legality is structural plus per-node:

* at most one ``parallel`` directive, and it must be outermost;
* at most one ``vectorized`` directive, and it must be innermost;
* ``Loop``: only ``sequential`` directives (the trip axis is
  loop-carried); ``WhileLoop``: only *unchunked* ``sequential`` (the trip
  count is data-dependent, so there is no axis to split);
* ``Map`` with accumulators: no splitting directives (accumulators thread
  sequentially through every element);
* ``Reduce``: ``parallel`` only for single-result reductions with a
  recognised associative operator and a scalar float neutral element (the
  conditions under which a tree combine is exact enough to reproduce);
* ``Scan``/``ReduceByIndex``/``Scatter``: no ``parallel`` and no chunked
  ``sequential`` (prefix dependence / bin conflicts / overlapping writes).

``apply_schedule`` attaches a schedule to a function after optimisation:
strict mode (the ``schedule=`` keyword on ``compile``/``grad``) targets the
dominant schedulable statement and raises ``ScheduleError`` naming the
offending directive when illegal; lenient mode (``REPRO_SCHEDULE``)
annotates every top-level statement where the schedule is legal and skips
the rest.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from .ast import (
    Body,
    Fun,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Scan,
    Scatter,
    Stm,
    WhileLoop,
)

__all__ = [
    "Directive",
    "Parallel",
    "SCHEDULABLE",
    "ScheduleError",
    "Sequential",
    "Vectorized",
    "apply_env_schedule",
    "apply_schedule",
    "check_schedule",
    "default_schedule",
    "env_schedule",
    "format_schedule",
    "parse_schedule",
    "schedule_key",
    "schedule_str",
]


class ScheduleError(ValueError):
    """An illegal or unparsable schedule; the message names the directive."""


@dataclass(frozen=True)
class Vectorized:
    """Bulk NumPy evaluation of the whole axis (the default for SOACs)."""


@dataclass(frozen=True)
class Parallel:
    """Split the axis across pool workers; 0 = ``REPRO_SHARD_WORKERS``."""

    workers: int = 0


@dataclass(frozen=True)
class Sequential:
    """In-order execution, ``chunk`` elements per step (0 = one at a time)."""

    chunk: int = 0


Directive = Union[Vectorized, Parallel, Sequential]

#: Expression classes that carry a ``schedule`` field.
SCHEDULABLE = (Map, Reduce, Scan, ReduceByIndex, Scatter, Loop, WhileLoop)

_DIRECTIVE_RE = re.compile(
    r"^(vectorized|parallel|sequential)(?:\((\d+)\))?$"
)


# ---------------------------------------------------------------------------
# Parsing / formatting / hashing
# ---------------------------------------------------------------------------


def format_directive(d: Directive) -> str:
    if isinstance(d, Vectorized):
        return "vectorized"
    if isinstance(d, Parallel):
        return f"parallel({d.workers})" if d.workers else "parallel"
    if isinstance(d, Sequential):
        return f"sequential({d.chunk})" if d.chunk else "sequential"
    raise ScheduleError(f"not a schedule directive: {d!r}")


def format_schedule(sched: Tuple[Directive, ...]) -> str:
    """Render a schedule as ``dir·dir·dir`` (empty schedule → '')."""
    return "·".join(format_directive(d) for d in sched)


def parse_schedule(text: str) -> Tuple[Directive, ...]:
    """Parse ``"parallel(2)·sequential(64)·vectorized"``.

    Directives may be separated by ``·``, ``*``, ``;``, ``,`` or whitespace.
    Raises ``ScheduleError`` on junk, naming the offending token.
    """
    toks = [t for t in re.split(r"[·*;,\s]+", text.strip()) if t]
    sched = []
    for tok in toks:
        m = _DIRECTIVE_RE.match(tok)
        if m is None:
            raise ScheduleError(
                f"cannot parse schedule directive {tok!r} "
                "(expected vectorized | parallel[(w)] | sequential[(c)])"
            )
        name, arg = m.group(1), m.group(2)
        if name == "vectorized":
            if arg is not None:
                raise ScheduleError(
                    f"directive {tok!r}: vectorized takes no argument"
                )
            sched.append(Vectorized())
        elif name == "parallel":
            sched.append(Parallel(int(arg) if arg else 0))
        else:
            sched.append(Sequential(int(arg) if arg else 0))
    return tuple(sched)


def _as_schedule(schedule) -> Tuple[Directive, ...]:
    if isinstance(schedule, str):
        return parse_schedule(schedule)
    sched = tuple(schedule)
    for d in sched:
        if not isinstance(d, (Vectorized, Parallel, Sequential)):
            raise ScheduleError(f"not a schedule directive: {d!r}")
    return sched


def schedule_key(sched: Tuple[Directive, ...]) -> bytes:
    """Stable bytes for ``ir_hash`` — distinct programs per schedule."""
    parts = []
    for d in sched:
        if isinstance(d, Vectorized):
            parts.append("v")
        elif isinstance(d, Parallel):
            parts.append(f"p{d.workers}")
        else:
            parts.append(f"s{d.chunk}")
    return ("sched[" + ",".join(parts) + "]").encode()


# ---------------------------------------------------------------------------
# Defaults
# ---------------------------------------------------------------------------


def default_schedule(e) -> Tuple[Directive, ...]:
    """The schedule a node executes under when none is attached."""
    if isinstance(e, Loop):
        if e.stripmine > 1:
            return (Sequential(e.stripmine), Sequential())
        return (Sequential(),)
    if isinstance(e, WhileLoop):
        return (Sequential(),)
    if isinstance(e, SCHEDULABLE):
        return (Vectorized(),)
    return ()


def schedule_str(e) -> str:
    """The *active* schedule of a node, formatted (attached or default)."""
    sched = getattr(e, "schedule", ()) or default_schedule(e)
    return format_schedule(sched)


# ---------------------------------------------------------------------------
# Legality
# ---------------------------------------------------------------------------


def _reduce_parallel_ok(e: Reduce, n_pat: Optional[int]) -> Optional[str]:
    from .analysis import recognize_binop_lambda, recognize_redomap_lambda
    from .types import is_float, rank_of

    if len(e.nes) != 1 or (n_pat is not None and n_pat != 1):
        return "parallel: only single-result reductions tree-combine exactly"
    if not e.arrs:
        return "parallel: reduce over no arrays has no axis to split"
    ne = e.nes[0]
    if not (is_float(ne.type) and rank_of(ne.type) == 0):
        return "parallel: reduce needs a scalar float neutral element"
    op = recognize_binop_lambda(e.lam)
    if op is None:
        rm = recognize_redomap_lambda(e.lam)
        if rm is None:
            return ("parallel: reduce operator is not a recognised "
                    "associative binop/redomap")
    return _arrs_not_free(e)


def _arrs_not_free(e) -> Optional[str]:
    from .traversal import free_vars

    free = free_vars(e.lam)
    for a in e.arrs:
        if a.name in free:
            return (f"parallel: lambda reads the whole input {a.name!r}, "
                    "so the axis cannot be split")
    return None


def check_schedule(e, sched, n_pat: Optional[int] = None) -> Optional[str]:
    """Return None when ``sched`` is legal for node ``e``, else the reason.

    The reason string always names the offending directive.  ``n_pat`` is
    the binding statement's pattern arity when known (reduce legality).
    """
    sched = _as_schedule(sched)
    if not sched:
        return None
    if not isinstance(e, SCHEDULABLE):
        return (f"{format_directive(sched[0])}: {type(e).__name__} "
                "statements carry no schedule")
    n_par = sum(isinstance(d, Parallel) for d in sched)
    n_vec = sum(isinstance(d, Vectorized) for d in sched)
    if n_par > 1:
        return "parallel: at most one parallel directive per schedule"
    if n_par and not isinstance(sched[0], Parallel):
        return "parallel: the parallel directive must be outermost"
    if n_vec > 1:
        return "vectorized: at most one vectorized directive per schedule"
    if n_vec and not isinstance(sched[-1], Vectorized):
        return "vectorized: the vectorized directive must be innermost"

    if isinstance(e, WhileLoop):
        for d in sched:
            if not (isinstance(d, Sequential) and d.chunk == 0):
                return (f"{format_directive(d)}: a while loop's trip count "
                        "is data-dependent — only bare 'sequential' is legal")
        return None
    if isinstance(e, Loop):
        for d in sched:
            if not isinstance(d, Sequential):
                return (f"{format_directive(d)}: loop iterations are "
                        "loop-carried — only 'sequential' directives are "
                        "legal (sequential(f)·sequential strip-mines)")
        # A chunked sequential must be the explicit strip-mine sugar —
        # the outer of a sequential(f)·sequential pair — never a blanket
        # (lenient) chunk directive silently restructuring checkpoints.
        if any(isinstance(d, Sequential) and d.chunk > 1 for d in sched):
            if not (len(sched) >= 2
                    and sched[-1] == Sequential()
                    and all(d.chunk > 1 for d in sched[:-1])):
                return (f"{format_directive(sched[0])}: chunking a loop "
                        "is strip-mining — write the explicit "
                        "'sequential(f)·sequential' form")
        return None

    splitting = [d for d in sched
                 if isinstance(d, Parallel)
                 or (isinstance(d, Sequential) and d.chunk > 1)]
    if isinstance(e, Map):
        if e.accs and splitting:
            return (f"{format_directive(splitting[0])}: map carries "
                    "accumulators, which thread sequentially through every "
                    "element")
        if n_par:
            if not e.arrs:
                return "parallel: map over no arrays has no axis to split"
            err = _arrs_not_free(e)
            if err:
                return err
        return None
    if isinstance(e, Reduce):
        for d in sched:
            if isinstance(d, Sequential) and d.chunk > 1:
                return (f"{format_directive(d)}: chunked sequential "
                        "reduction is not implemented — use bare "
                        "'sequential'")
        if n_par:
            return _reduce_parallel_ok(e, n_pat)
        return None
    # Scan / ReduceByIndex / Scatter: order- or conflict-sensitive.
    why = {
        Scan: "a scan's prefix dependence crosses any split point",
        ReduceByIndex: "histogram bins conflict across any split point",
        Scatter: "scatter writes may collide across any split point",
    }[type(e)]
    for d in splitting:
        return f"{format_directive(d)}: {why}"
    return None


# ---------------------------------------------------------------------------
# Application
# ---------------------------------------------------------------------------


def _annotate(e, sched: Tuple[Directive, ...]):
    if isinstance(e, Loop):
        f = next((d.chunk for d in sched
                  if isinstance(d, Sequential) and d.chunk > 1), 0)
        if f > 1:
            return replace(e, stripmine=f, schedule=sched)
    return replace(e, schedule=sched)


def apply_schedule(fun: Fun, schedule, strict: bool = True) -> Fun:
    """Return ``fun`` with ``schedule`` attached to top-level statements.

    Strict mode targets the dominant (largest estimated work) schedulable
    statement and raises ``ScheduleError`` if the schedule is illegal for
    it.  Lenient mode annotates every top-level statement for which the
    schedule is legal, silently skipping the rest (this is the
    ``REPRO_SCHEDULE`` semantics, so a blanket override never breaks a
    program that contains e.g. a data-dependent while loop).
    """
    sched = _as_schedule(schedule)
    if not sched:
        return fun
    stms = list(fun.body.stms)
    if strict:
        from .cost_model import stm_work

        idxs = [i for i, s in enumerate(stms)
                if isinstance(s.exp, SCHEDULABLE)]
        if not idxs:
            raise ScheduleError(
                f"{fun.name}: no schedulable (SOAC/loop) statement to "
                f"attach schedule '{format_schedule(sched)}' to"
            )
        k = max(idxs, key=lambda i: (stm_work(stms[i]), i))
        err = check_schedule(stms[k].exp, sched, n_pat=len(stms[k].pat))
        if err is not None:
            raise ScheduleError(
                f"{fun.name}: schedule '{format_schedule(sched)}' is "
                f"illegal for the dominant "
                f"{type(stms[k].exp).__name__.lower()} statement — {err}"
            )
        stms[k] = Stm(stms[k].pat, _annotate(stms[k].exp, sched))
    else:
        changed = False
        for i, s in enumerate(stms):
            if (isinstance(s.exp, SCHEDULABLE)
                    and check_schedule(s.exp, sched,
                                       n_pat=len(s.pat)) is None):
                stms[i] = Stm(s.pat, _annotate(s.exp, sched))
                changed = True
        if not changed:
            return fun
    return Fun(fun.name, fun.params, Body(tuple(stms), fun.body.result))


def env_schedule() -> Optional[Tuple[Directive, ...]]:
    """The ``REPRO_SCHEDULE`` override, parsed (None when unset/empty)."""
    v = os.environ.get("REPRO_SCHEDULE", "").strip()
    if not v:
        return None
    return parse_schedule(v)


def apply_env_schedule(fun: Fun) -> Fun:
    """Apply ``REPRO_SCHEDULE`` leniently; identity when unset."""
    sched = env_schedule()
    if not sched:
        return fun
    return apply_schedule(fun, sched, strict=False)
