"""Static work / span / memory-traffic cost model over the IR.

The dynamic cost model (``exec/cost.py``) *measures* a reference-interpreted
execution; this module *predicts* the same machine-independent quantities by
walking the IR once, without running it.  The prediction is what turns the
system's optimisation heuristics into decisions:

* ``opt/fusion.py`` fuses a producer/consumer pair only when the estimate
  says the fused SOAC carries less memory traffic and no more work
  (``REPRO_FUSE_COST``);
* ``exec/shard.py`` picks its shard point by estimated per-element SOAC
  work and sizes chunks so each pool task carries roughly
  ``REPRO_COST_TASK_GRAIN`` work units (the old
  ``REPRO_SHARD_MIN_CHUNK``/``REPRO_SHARD_MAX_TASKS`` knobs remain as
  overrides, not the policy);
* ``exec/plan.py`` promotes a hot signature to a tier-2 specialised plan
  when the predicted per-call specialisation saving times the observed hit
  count amortises the estimated re-lowering cost
  (``REPRO_PLAN_SPECIALIZE_AFTER`` remains as an override).

Shape facts come from ``ir.analysis.infer_static_shapes`` when concrete
argument shapes are available; otherwise every unknown array dimension is
assumed to have ``REPRO_COST_DEFAULT_EXTENT`` elements and unknown loop trip
counts ``REPRO_COST_LOOP_TRIP`` iterations, so the estimator degrades to a
*relative* model: exact extents cancel when two candidate rewrites of the
same program are compared (the fusion gate), and matter only for absolute
predictions (validated against ``CostRecorder`` on the fuzz corpus by the
property-test suite — constant-factor agreement and rank-order consistency).

The estimate mirrors ``CostRecorder``'s accounting: ``work`` counts scalar
operations (a bulk op over m elements costs m), ``span`` the work-depth
critical path (map iterations in parallel, reduce/scan combine in
``O(log n)`` levels, loops sequentially), ``mem`` the global-memory element
traffic (array reads + writes; scalars live in registers).  ``If`` branches
are estimated as the componentwise maximum of the two branches plus the
condition — the static model cannot know which branch runs.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis import StaticInfo, infer_static_shapes
from .ast import (
    AtomExp,
    Atom,
    BinOp,
    Body,
    Cast,
    Concat,
    Const,
    Exp,
    Fun,
    If,
    Index,
    Iota,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Size,
    Stm,
    UnOp,
    UpdAcc,
    Update,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from .types import rank_of
from ..util import env_capacity

__all__ = [
    "Estimate",
    "ZERO",
    "CostModel",
    "estimate_fun",
    "estimate_stm",
    "estimate_stms",
    "estimate_exp",
    "soac_estimates",
    "stm_work",
    "soac_elem_cost",
    "schedule_candidates",
    "score_schedule",
    "choose_schedule",
    "PARALLEL_TASK_OVERHEAD",
    "fusion_wins",
    "count_fold_opportunities",
    "promotion_threshold",
    "default_extent",
    "task_grain",
    "SOAC_OVERHEAD",
    "LOWER_COST_PER_STM",
    "SPEC_SAVING_PER_FOLD",
]


# ---------------------------------------------------------------------------
# Calibration constants (env-overridable; defaults documented in README)
# ---------------------------------------------------------------------------


def default_extent() -> int:
    """Assumed extent of an array dimension of unknown size
    (``REPRO_COST_DEFAULT_EXTENT``)."""
    return max(1, env_capacity("REPRO_COST_DEFAULT_EXTENT", 64))


def default_trip() -> int:
    """Assumed trip count of a loop with unknown bound
    (``REPRO_COST_LOOP_TRIP``)."""
    return max(1, env_capacity("REPRO_COST_LOOP_TRIP", 16))


def task_grain() -> int:
    """Estimated work+traffic units one shard pool task should carry
    (``REPRO_COST_TASK_GRAIN``).  Calibrated so a task amortises its
    dispatch overhead (a plan-cache lookup plus a pool future, ~tens of
    microseconds) against bulk NumPy throughput (~a few ns per element-op):
    2**17 units is a few hundred microseconds of useful work."""
    return max(1, env_capacity("REPRO_COST_TASK_GRAIN", 1 << 17))


#: Fixed work charged per SOAC *launch* — the per-dispatch constant that
#: makes horizontally fusing two sibling maps strictly cheaper than running
#: them separately even though their element work is unchanged.
SOAC_OVERHEAD = 8.0

#: Estimated cost (in work units) of lowering one IR statement to a plan
#: closure — the numerator of the tier-2 promotion amortisation test.
LOWER_COST_PER_STM = 1024.0

#: Estimated per-call saving (in work units) of one compile-time fold a
#: specialised plan performs (a ``Size``/extent resolution, a dead empty
#: branch, a prebuilt iota) — the denominator of the amortisation test.
SPEC_SAVING_PER_FOLD = 96.0


# ---------------------------------------------------------------------------
# Estimates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Estimate:
    """A static prediction of ``exec.cost.Cost``'s counters (floats — the
    model multiplies assumed extents, so fractional confidence-weighted
    contributions are allowed)."""

    work: float = 0.0
    span: float = 0.0
    mem_reads: float = 0.0
    mem_writes: float = 0.0

    @property
    def mem(self) -> float:
        return self.mem_reads + self.mem_writes

    @property
    def total(self) -> float:
        """One scalar decision metric: work plus memory traffic."""
        return self.work + self.mem

    def __add__(self, other: "Estimate") -> "Estimate":
        return Estimate(
            self.work + other.work,
            self.span + other.span,
            self.mem_reads + other.mem_reads,
            self.mem_writes + other.mem_writes,
        )

    def scaled(self, k: float, span_k: float = 1.0) -> "Estimate":
        """``k`` copies of this estimate; ``span_k`` scales the span
        separately (parallel copies keep their span, sequential ones
        multiply it)."""
        return Estimate(
            self.work * k, self.span * span_k, self.mem_reads * k, self.mem_writes * k
        )

    def cost(self):
        """The ``exec.cost.Cost``-compatible integer snapshot."""
        from ..exec.cost import Cost

        return Cost(
            work=int(round(self.work)),
            span=int(round(self.span)),
            mem_reads=int(round(self.mem_reads)),
            mem_writes=int(round(self.mem_writes)),
        )


ZERO = Estimate()


def _emax(a: Estimate, b: Estimate) -> Estimate:
    return Estimate(
        max(a.work, b.work),
        max(a.span, b.span),
        max(a.mem_reads, b.mem_reads),
        max(a.mem_writes, b.mem_writes),
    )


# ---------------------------------------------------------------------------
# The model
# ---------------------------------------------------------------------------


class CostModel:
    """A one-pass estimator over a scope's (possibly partial) shape facts.

    ``shapes`` maps SSA names to known physical shapes, ``ints`` names of
    statically known integers (both as produced by
    ``ir.analysis.infer_static_shapes`` — missing names fall back to the
    assumed ``default_extent``/``default_trip``).  The model is purely
    syntactic otherwise: it never executes anything.
    """

    def __init__(self, info: Optional[StaticInfo] = None) -> None:
        self.shapes: Dict[str, Tuple[int, ...]] = dict(info.shapes) if info else {}
        self.ints: Dict[str, int] = dict(info.ints) if info else {}
        self._dflt = default_extent()
        self._trip = default_trip()

    # -- shape/size queries ---------------------------------------------------

    def elems_of(self, a: Atom) -> float:
        """Estimated element count of an atom's value."""
        if isinstance(a, Const):
            return 1.0
        s = self.shapes.get(a.name)
        if s is not None:
            return float(max(1, _prod(s)))
        r = rank_of(a.type)
        return float(self._dflt ** r) if r > 0 else 1.0

    def is_array(self, a: Atom) -> bool:
        return isinstance(a, Var) and rank_of(a.type) > 0

    def extent_of(self, arrs: Sequence[Var]) -> float:
        """Estimated leading extent shared by a SOAC's input arrays."""
        for a in arrs:
            s = self.shapes.get(a.name)
            if s is not None and len(s) >= 1:
                return float(s[0])
        return float(self._dflt)

    def int_of(self, a: Atom, fallback: Optional[float] = None) -> float:
        if isinstance(a, Const):
            try:
                return float(max(0, int(a.value)))
            except (TypeError, ValueError):
                pass
        elif a.name in self.ints:
            return float(max(0, self.ints[a.name]))
        return float(self._dflt if fallback is None else fallback)

    def out_elems(self, pat: Sequence[Var], fallback: float) -> float:
        """Estimated total element count of a statement's results."""
        total = 0.0
        for v in pat:
            s = self.shapes.get(v.name)
            if s is not None:
                total += float(max(1, _prod(s)))
            elif rank_of(v.type) > 0:
                total += fallback
            else:
                total += 1.0
        return total

    # -- bodies ---------------------------------------------------------------

    def body(self, body: Body) -> Estimate:
        est = ZERO
        for stm in body.stms:
            est = est + self.stm(stm)
        return est

    def stm(self, stm: Stm) -> Estimate:
        return self.exp(stm.exp, stm.pat)

    # -- expressions ----------------------------------------------------------

    def exp(self, e: Exp, pat: Sequence[Var] = ()) -> Estimate:
        if isinstance(e, AtomExp):
            return ZERO  # a rename: copy-propagated away by every executor
        if isinstance(e, (UnOp, BinOp, Select, Cast)):
            ops = [e.x] if isinstance(e, (UnOp, Cast)) else (
                [e.x, e.y] if isinstance(e, BinOp) else [e.c, e.t, e.f]
            )
            n = max(self.elems_of(a) for a in ops)
            reads = sum(self.elems_of(a) for a in ops if self.is_array(a))
            writes = n if any(self.is_array(a) for a in ops) else 0.0
            return Estimate(work=n, span=1.0, mem_reads=reads, mem_writes=writes)
        if isinstance(e, Index):
            n = self.out_elems(pat, self.elems_of(e.arr))
            return Estimate(span=1.0, mem_reads=n)
        if isinstance(e, Update):
            n = self.elems_of(e.val)
            return Estimate(span=1.0, mem_writes=n)
        if isinstance(e, Iota):
            n = self.int_of(e.n)
            return Estimate(span=1.0, mem_writes=n)
        if isinstance(e, Replicate):
            n = self.int_of(e.n) * self.elems_of(e.v)
            return Estimate(span=1.0, mem_writes=n)
        if isinstance(e, ZerosLike):
            n = self.elems_of(e.x)
            return Estimate(span=1.0, mem_writes=n if self.is_array(e.x) else 0.0)
        if isinstance(e, ScratchLike):
            n = self.int_of(e.n) * self.elems_of(e.x)
            return Estimate(span=1.0, mem_writes=n)
        if isinstance(e, Size):
            return Estimate(work=1.0, span=1.0)
        if isinstance(e, Reverse):
            n = self.elems_of(e.x)
            return Estimate(span=1.0, mem_reads=n, mem_writes=n)
        if isinstance(e, Concat):
            n = self.elems_of(e.x) + self.elems_of(e.y)
            return Estimate(span=1.0, mem_reads=n, mem_writes=n)
        if isinstance(e, Scatter):
            n = self.elems_of(e.inds) + self.elems_of(e.vals)
            return Estimate(
                work=self.elems_of(e.inds),
                span=1.0,
                mem_reads=n,
                mem_writes=self.elems_of(e.vals),
            )
        if isinstance(e, UpdAcc):
            n = self.elems_of(e.v)
            return Estimate(work=n, span=1.0, mem_reads=n, mem_writes=n)

        if isinstance(e, Map):
            n = self.extent_of(e.arrs) if e.arrs else 1.0
            inner = self.body(e.lam.body)
            reads = sum(self.elems_of(a) for a in e.arrs)
            writes = self.out_elems(pat, n)
            return Estimate(
                work=inner.work * n + SOAC_OVERHEAD,
                span=inner.span + 1.0,  # parallel iterations
                mem_reads=inner.mem_reads * n + reads,
                mem_writes=inner.mem_writes * n + writes,
            )
        if isinstance(e, (Reduce, Scan)):
            n = self.extent_of(e.arrs)
            inner = self.body(e.lam.body)
            levels = max(1.0, math.ceil(math.log2(max(n, 2.0))))
            reads = sum(self.elems_of(a) for a in e.arrs)
            writes = self.out_elems(pat, n if isinstance(e, Scan) else 1.0)
            return Estimate(
                work=inner.work * n + SOAC_OVERHEAD,
                span=inner.span * levels + 1.0,  # balanced combine tree
                mem_reads=inner.mem_reads * n + reads,
                mem_writes=inner.mem_writes * n + writes,
            )
        if isinstance(e, ReduceByIndex):
            n = self.extent_of((e.inds,) + e.vals)
            m = self.int_of(e.num_bins)
            inner = self.body(e.lam.body)
            reads = self.elems_of(e.inds) + sum(self.elems_of(v) for v in e.vals)
            return Estimate(
                work=inner.work * n + SOAC_OVERHEAD,
                span=inner.span * max(1.0, math.ceil(math.log2(max(n, 2.0)))) + 1.0,
                mem_reads=inner.mem_reads * n + reads + n,  # atomic RMW reads
                mem_writes=inner.mem_writes * n + n + m,  # RMW writes + init
            )

        if isinstance(e, Loop):
            n = self.int_of(e.n, fallback=self._trip)
            inner = self.body(e.body)
            return inner.scaled(n, span_k=n) + Estimate(span=1.0)
        if isinstance(e, WhileLoop):
            n = self.int_of(e.bound, fallback=self._trip) if e.bound is not None else float(self._trip)
            inner = self.body(e.body) + self.body(e.cond.body)
            return inner.scaled(n, span_k=n) + Estimate(span=1.0)
        if isinstance(e, If):
            branch = _emax(self.body(e.then), self.body(e.els))
            return branch + Estimate(work=1.0, span=1.0)
        if isinstance(e, WithAcc):
            init = sum(self.elems_of(a) for a in e.arrs)
            return self.body(e.lam.body) + Estimate(span=1.0, mem_writes=init)

        return ZERO  # unknown/extension node: contributes nothing


def _prod(s: Sequence[int]) -> int:
    p = 1
    for x in s:
        p *= int(x)
    return p


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunEstimate:
    """Per-function estimate: the total plus per-top-level-statement and
    per-SOAC breakdowns (SOACs keyed by ``(kind, first pattern name)``)."""

    total: Estimate
    stms: Tuple[Tuple[Stm, Estimate], ...]
    soacs: Tuple[Tuple[str, str, Estimate], ...]


def _model_for(fun: Fun, arg_shapes) -> CostModel:
    if arg_shapes is None:
        arg_shapes = [None] * len(fun.params)
    return CostModel(infer_static_shapes(fun, arg_shapes))


def estimate_fun(
    fun: Fun,
    arg_shapes: Optional[Sequence[Optional[Tuple[int, ...]]]] = None,
) -> FunEstimate:
    """Statically estimate ``fun``, optionally under concrete argument
    payload shapes (``None`` entries/arg_shapes mean unknown)."""
    model = _model_for(fun, arg_shapes)
    stms: List[Tuple[Stm, Estimate]] = []
    soacs: List[Tuple[str, str, Estimate]] = []
    total = ZERO
    for stm in fun.body.stms:
        est = model.stm(stm)
        stms.append((stm, est))
        if isinstance(stm.exp, (Map, Reduce, Scan, ReduceByIndex, Scatter)):
            soacs.append((type(stm.exp).__name__.lower(), stm.pat[0].name, est))
        total = total + est
    return FunEstimate(total=total, stms=tuple(stms), soacs=tuple(soacs))


def estimate_stm(stm: Stm, model: Optional[CostModel] = None) -> Estimate:
    """Estimate one statement (a fresh shape-agnostic model by default)."""
    return (model or CostModel()).stm(stm)


def estimate_stms(stms: Sequence[Stm], model: Optional[CostModel] = None) -> Estimate:
    """The summed estimate of a statement group — one fused run's worth of
    source statements, as recorded in plan-IR instruction provenance.  The
    profile emitter (``obs/profiler.py``) ranks these against measured
    per-instruction wall-clock."""
    m = model or CostModel()
    est = ZERO
    for s in stms:
        est = est + m.stm(s)
    return est


def estimate_exp(e: Exp, pat: Sequence[Var] = (), model: Optional[CostModel] = None) -> Estimate:
    return (model or CostModel()).exp(e, pat)


def soac_estimates(
    fun: Fun,
    arg_shapes: Optional[Sequence[Optional[Tuple[int, ...]]]] = None,
) -> Tuple[Tuple[str, str, Estimate], ...]:
    """The per-top-level-SOAC estimates of ``estimate_fun`` alone."""
    return estimate_fun(fun, arg_shapes).soacs


def stm_work(stm: Stm) -> float:
    """Shape-agnostic decision weight of one statement (work + traffic) —
    the shard-point selector's replacement for the syntactic statement
    count."""
    est = estimate_stm(stm)
    return est.total


def soac_elem_cost(e: Exp) -> Optional[float]:
    """Estimated per-element cost (work + traffic) of one SOAC's lambda —
    what one extent unit of the sharded axis costs a chunk.  ``None`` for
    non-SOAC expressions."""
    if not isinstance(e, (Map, Reduce, Scan, ReduceByIndex)):
        return None
    model = CostModel()
    inner = model.body(e.lam.body)
    arrs = e.vals if isinstance(e, ReduceByIndex) else e.arrs
    # Each element costs the lambda body plus reading one element per input
    # array and writing one result element.
    per = inner.work + inner.mem + len(arrs) + 1.0
    return max(1.0, per)


# ---------------------------------------------------------------------------
# Decision 0: schedule selection (ir/schedule.py, exec/shard.py, A10)
# ---------------------------------------------------------------------------


#: Fixed cost charged per shard pool task: a plan-cache lookup, a future,
#: and the result hand-back.  Scaled in the same work+traffic units as
#: ``Estimate.total`` so ``score_schedule`` can trade it against the
#: parallel speedup.
PARALLEL_TASK_OVERHEAD = 256.0


def schedule_candidates(stm: Stm):
    """The legal candidate schedules for one statement, default first."""
    from .schedule import (
        Parallel,
        SCHEDULABLE,
        Sequential,
        Vectorized,
        check_schedule,
        default_schedule,
    )

    e = stm.exp
    if not isinstance(e, SCHEDULABLE):
        return ()
    cands = [default_schedule(e)]
    for sched in (
        (Parallel(), Vectorized()),
        (Sequential(default_extent()), Vectorized()),
        (Sequential(),),
    ):
        if sched in cands:
            continue
        if check_schedule(e, sched, n_pat=len(stm.pat)) is None:
            cands.append(sched)
    return tuple(cands)


def score_schedule(
    stm: Stm, sched, workers: Optional[int] = None,
    model: Optional[CostModel] = None,
) -> float:
    """Predicted cost (work+traffic units) of running ``stm`` under
    ``sched``.  Mirrors the shard runtime's own chunking: a ``parallel``
    directive splits the estimated total into ``task_grain()``-sized tasks
    (never more than the dispatch cap) and charges each task its pool
    overhead; a chunked ``sequential`` directive charges one extra SOAC
    launch per chunk.  Lower is better."""
    import os as _os

    from .schedule import Parallel, Sequential, _as_schedule

    total = estimate_stm(stm, model).total
    score = float(total)
    for d in _as_schedule(sched):
        if isinstance(d, Parallel):
            w = d.workers or workers or (_os.cpu_count() or 1)
            ntasks = max(1, min(int(total // task_grain()), 16))
            if ntasks <= 1:
                # Too small to split: the probe itself is pure overhead.
                score += PARALLEL_TASK_OVERHEAD
            else:
                score = (score / max(1, min(w, ntasks))
                         + ntasks * PARALLEL_TASK_OVERHEAD)
        elif isinstance(d, Sequential) and d.chunk > 1:
            score += SOAC_OVERHEAD * max(
                1.0, default_extent() / float(d.chunk)
            )
    return score


def choose_schedule(
    stm: Stm, workers: Optional[int] = None,
    model: Optional[CostModel] = None,
):
    """The cost model's schedule pick for one statement: the cheapest legal
    candidate under ``score_schedule``.  This is what the shard runtime's
    split inference and ablation A10's per-row 'chosen' column report."""
    cands = schedule_candidates(stm)
    if not cands:
        return ()
    return min(cands, key=lambda s: score_schedule(stm, s, workers, model))


# ---------------------------------------------------------------------------
# Decision 1: the fusion gate (opt/fusion.py)
# ---------------------------------------------------------------------------


def fusion_wins(
    before: Sequence[Stm], after: Sequence[Stm], model: Optional[CostModel] = None
) -> bool:
    """True when replacing ``before`` with ``after`` is predicted to reduce
    memory traffic without increasing work.

    This is the cost gate ``REPRO_FUSE_COST=on`` puts in front of every
    vertical/horizontal fusion step: vertical fusion eliminates the
    intermediate array's write+read (traffic strictly drops, work is
    unchanged — the producer still runs once per element thanks to the
    engine's single-use requirement), and horizontal fusion saves one SOAC
    launch.  The 5% work headroom absorbs the model's If-branch
    over-approximation differing across the two shapes of the same program.
    """
    m = model or CostModel()
    eb = ZERO
    for s in before:
        eb = eb + m.stm(s)
    ea = ZERO
    for s in after:
        ea = ea + m.stm(s)
    return ea.total <= eb.total and ea.work <= eb.work * 1.05 + 1.0


# ---------------------------------------------------------------------------
# Decision 3: tier-2 promotion amortisation (exec/plan.py)
# ---------------------------------------------------------------------------


def count_fold_opportunities(fun: Fun, info: StaticInfo) -> int:
    """How many compile-time folds a plan specialised under ``info`` could
    perform: ``Size`` nodes with known shapes, iota/replicate/histogram
    extents with known values, reduce/scan strategies pickable by a known
    extent.  The walk mirrors the fold sites in ``exec/lower._Lowerer``
    without lowering anything."""

    count = 0

    def known_int(a: Atom) -> bool:
        return isinstance(a, Const) or (isinstance(a, Var) and a.name in info.ints)

    def known_extent(arrs) -> bool:
        return bool(arrs) and info.shape(arrs[0].name) is not None

    def walk_body(body: Body) -> None:
        for stm in body.stms:
            walk_exp(stm.exp)

    def walk_exp(e: Exp) -> None:
        nonlocal count
        if isinstance(e, Size):
            if info.shape(e.arr.name) is not None:
                count += 1
        elif isinstance(e, Iota):
            if known_int(e.n) and not isinstance(e.n, Const):
                count += 1
        elif isinstance(e, (Replicate, ReduceByIndex)):
            nn = e.n if isinstance(e, Replicate) else e.num_bins
            if known_int(nn) and not isinstance(nn, Const):
                count += 1
            if isinstance(e, ReduceByIndex):
                walk_body(e.lam.body)
        elif isinstance(e, (Reduce, Scan)):
            if known_extent(e.arrs):
                count += 1
            walk_body(e.lam.body)
        elif isinstance(e, Map):
            walk_body(e.lam.body)
        elif isinstance(e, (Loop, WhileLoop)):
            walk_body(e.body)
            if isinstance(e, WhileLoop):
                walk_body(e.cond.body)
        elif isinstance(e, If):
            walk_body(e.then)
            walk_body(e.els)
        elif isinstance(e, WithAcc):
            walk_body(e.lam.body)

    walk_body(fun.body)
    return count


#: Ceiling on the derived promotion threshold: a signature hotter than this
#: many hits is worth specialising even when the model sees few folds (the
#: model is a lower bound on the real saving — dead-branch elision compounds).
_PROMO_MAX = 64


def promotion_threshold(
    fun: Fun, arg_shapes: Sequence[Optional[Tuple[int, ...]]]
) -> Optional[int]:
    """Tier-1 hits after which specialising ``fun`` for this signature pays:
    the smallest ``h`` with ``h * saving >= relower_cost``.  ``None`` when
    the signature admits no folds at all (promotion would buy nothing).

    The explicit ``REPRO_PLAN_SPECIALIZE_AFTER`` env knob overrides this
    derivation entirely (handled by the caller in ``exec/plan.py``).
    """
    info = infer_static_shapes(fun, arg_shapes)
    folds = count_fold_opportunities(fun, info)
    if folds <= 0:
        return None
    from .traversal import count_stms

    relower = LOWER_COST_PER_STM * max(1, count_stms(fun))
    saving = SPEC_SAVING_PER_FOLD * folds
    return max(1, min(_PROMO_MAX, int(math.ceil(relower / saving))))
