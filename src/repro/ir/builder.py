"""Imperative statement builder.

Both the tracing frontend and the AD transforms construct IR by pushing
statements onto a ``Builder``.  ``emit`` infers result types via the type
checker, invents fresh names, and returns the bound variables, so transform
code reads like the generated program:

    b = Builder()
    t = b.mul(x, y)
    s = b.add(t, z, name="s")
    body = b.finish([s])
"""
from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..util import IRError, fresh
from .ast import (
    AtomExp,
    Atom,
    BinOp,
    Body,
    Cast,
    Concat,
    Const,
    Exp,
    If,
    Index,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Stm,
    UnOp,
    UpdAcc,
    Update,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from .typecheck import infer_exp_types
from .types import BOOL, F64, I32, I64, Scalar, elem_type

__all__ = ["Builder", "const", "const_like", "as_atom"]


def const(value, ty: Optional[Scalar] = None) -> Const:
    """Make a scalar constant, inferring the type from the Python value."""
    if ty is None:
        if isinstance(value, (bool, np.bool_)):
            ty = BOOL
        elif isinstance(value, (int, np.integer)):
            ty = I64
        elif isinstance(value, (float, np.floating)):
            ty = F64
        else:
            raise IRError(f"cannot infer constant type for {value!r}")
    if ty is BOOL:
        value = bool(value)
    elif ty in (I32, I64):
        value = int(value)
    else:
        value = float(value)
    return Const(value, ty)


def const_like(value, a: Atom) -> Const:
    """A constant of the same element type as ``a``."""
    return const(value, elem_type(a.type))


def as_atom(x, ty: Optional[Scalar] = None) -> Atom:
    """Coerce a Var/Const/Python scalar to an Atom."""
    if isinstance(x, (Var, Const)):
        return x
    return const(x, ty)


class Builder:
    """Accumulates statements; every helper returns the bound Var(s)."""

    def __init__(self) -> None:
        self.stms: List[Stm] = []

    # -- core -------------------------------------------------------------

    def emit(self, exp: Exp, names: Optional[Sequence[str]] = None) -> Tuple[Var, ...]:
        """Append ``let (vs...) = exp`` with fresh names; return the vars."""
        tys = infer_exp_types(exp)
        if names is None:
            names = ["t"] * len(tys)
        if len(names) != len(tys):
            raise IRError(f"emit: {len(names)} names for {len(tys)} results")
        pat = tuple(Var(fresh(n), t) for n, t in zip(names, tys))
        self.stms.append(Stm(pat, exp))
        return pat

    def emit1(self, exp: Exp, name: str = "t") -> Var:
        (v,) = self.emit(exp, [name])
        return v

    def emit_into(self, pat: Tuple[Var, ...], exp: Exp) -> Tuple[Var, ...]:
        """Append a statement binding pre-made variables (types must match)."""
        tys = infer_exp_types(exp)
        if len(tys) != len(pat) or any(v.type != t for v, t in zip(pat, tys)):
            raise IRError(
                f"emit_into: pattern types {[v.type for v in pat]} do not match "
                f"inferred {list(tys)}"
            )
        self.stms.append(Stm(pat, exp))
        return pat

    def extend(self, stms: Iterable[Stm]) -> None:
        self.stms.extend(stms)

    def finish(self, result: Sequence[Atom]) -> Body:
        body = Body(tuple(self.stms), tuple(result))
        self.stms = []
        return body

    # -- scalar ops ---------------------------------------------------------

    def unop(self, op: str, x: Atom, name: str = "t") -> Var:
        return self.emit1(UnOp(op, x), name)

    def binop(self, op: str, x, y, name: str = "t") -> Var:
        x = as_atom(x)
        y = as_atom(y)
        return self.emit1(BinOp(op, x, y), name)

    def add(self, x, y, name: str = "t"):
        return self.binop("add", x, y, name)

    def sub(self, x, y, name: str = "t"):
        return self.binop("sub", x, y, name)

    def mul(self, x, y, name: str = "t"):
        return self.binop("mul", x, y, name)

    def div(self, x, y, name: str = "t"):
        return self.binop("div", x, y, name)

    def neg(self, x, name: str = "t"):
        return self.unop("neg", as_atom(x), name)

    def select(self, c: Atom, t: Atom, f: Atom, name: str = "t") -> Var:
        return self.emit1(Select(c, t, f), name)

    def cast(self, x: Atom, to: Scalar, name: str = "t") -> Var:
        return self.emit1(Cast(x, to), name)

    def copy(self, x: Atom, name: Optional[str] = None) -> Var:
        if name is None:
            name = x.name if isinstance(x, Var) else "c"
        return self.emit1(AtomExp(x), name)

    # -- arrays -------------------------------------------------------------

    def index(self, arr: Var, idx, name: str = "t") -> Var:
        idx = tuple(as_atom(i, I64) for i in (idx if isinstance(idx, (tuple, list)) else (idx,)))
        return self.emit1(Index(arr, idx), name)

    def update(self, arr: Var, idx, val: Atom, name: Optional[str] = None) -> Var:
        idx = tuple(as_atom(i, I64) for i in (idx if isinstance(idx, (tuple, list)) else (idx,)))
        return self.emit1(Update(arr, idx, val), name or arr.name)

    def iota(self, n, elem: Scalar = I64, name: str = "is") -> Var:
        return self.emit1(Iota(as_atom(n, I64), elem), name)

    def replicate(self, n, v: Atom, name: str = "r") -> Var:
        return self.emit1(Replicate(as_atom(n, I64), v), name)

    def zeros_like(self, x: Atom, name: Optional[str] = None) -> Var:
        base = (x.name + "_zb") if isinstance(x, Var) else "zb"
        return self.emit1(ZerosLike(x), name or base)

    def scratch_like(self, n, x: Atom, name: str = "ckpt") -> Var:
        return self.emit1(ScratchLike(as_atom(n, I64), x), name)

    def reverse(self, x: Var, name: str = "rev") -> Var:
        return self.emit1(Reverse(x), name)

    def concat(self, x: Var, y: Var, name: str = "cat") -> Var:
        return self.emit1(Concat(x, y), name)

    # -- SOACs ----------------------------------------------------------------

    def map(
        self,
        lam: Lambda,
        arrs: Sequence[Var],
        accs: Sequence[Var] = (),
        names: Optional[Sequence[str]] = None,
    ) -> Tuple[Var, ...]:
        return self.emit(Map(lam, tuple(arrs), tuple(accs)), names)

    def reduce(self, lam: Lambda, nes: Sequence[Atom], arrs: Sequence[Var], names=None) -> Tuple[Var, ...]:
        return self.emit(Reduce(lam, tuple(nes), tuple(arrs)), names)

    def scan(self, lam: Lambda, nes: Sequence[Atom], arrs: Sequence[Var], names=None) -> Tuple[Var, ...]:
        return self.emit(Scan(lam, tuple(nes), tuple(arrs)), names)

    def reduce_by_index(self, num_bins, lam, nes, inds, vals, names=None) -> Tuple[Var, ...]:
        return self.emit(
            ReduceByIndex(as_atom(num_bins, I64), lam, tuple(nes), inds, tuple(vals)),
            names,
        )

    def scatter(self, dest: Var, inds: Var, vals: Var, name: Optional[str] = None) -> Var:
        return self.emit1(Scatter(dest, inds, vals), name or dest.name)

    def gather(self, arr: Var, inds: Var, name: str = "g") -> Var:
        """``map (i -> arr[i]) inds`` — the paper's gather."""
        i = Var(fresh("i"), elem_type(inds.type))
        b = Builder()
        v = b.index(arr, (i,), name="v")
        lam = Lambda((i,), b.finish([v]))
        (out,) = self.map(lam, [inds], names=[name])
        return out

    # -- control flow -----------------------------------------------------------

    def loop(
        self,
        params: Sequence[Var],
        inits: Sequence[Atom],
        ivar: Var,
        n: Atom,
        body: Body,
        names=None,
        stripmine: int = 0,
        checkpoint: str = "iters",
    ) -> Tuple[Var, ...]:
        return self.emit(
            Loop(tuple(params), tuple(inits), ivar, n, body, stripmine, checkpoint),
            names or [p.name for p in params],
        )

    def while_loop(self, params, inits, cond: Lambda, body: Body, bound=None, names=None) -> Tuple[Var, ...]:
        return self.emit(
            WhileLoop(tuple(params), tuple(inits), cond, body,
                      None if bound is None else as_atom(bound, I64)),
            names or [p.name for p in params],
        )

    def if_(self, cond: Atom, then: Body, els: Body, names=None) -> Tuple[Var, ...]:
        return self.emit(If(cond, then, els), names)

    # -- accumulators ------------------------------------------------------------

    def with_acc(self, arrs: Sequence[Var], lam: Lambda, names=None) -> Tuple[Var, ...]:
        return self.emit(WithAcc(tuple(arrs), lam), names)

    def upd_acc(self, acc: Var, idx, v: Atom, name: Optional[str] = None) -> Var:
        idx = tuple(as_atom(i, I64) for i in (idx if isinstance(idx, (tuple, list)) else (idx,)))
        return self.emit1(UpdAcc(acc, idx, v), name or acc.name)
