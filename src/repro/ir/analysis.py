"""Small IR analyses shared by executors, AD rules and optimisation passes."""
from __future__ import annotations

from typing import Optional, Tuple

from .ast import AtomExp, BinOp, Body, Const, Lambda, Map, Stm, Var
from ..util import BoundedLRU, env_capacity

__all__ = [
    "recognize_binop_lambda",
    "recognize_addition",
    "recognize_redomap_lambda",
    "perfect_map_nest",
]


def recognize_binop_lambda(lam: Lambda) -> Optional[str]:
    """If ``lam`` is ``\\x y -> x `op` y`` for a commutative specialisable op,
    return the op name (``add``/``mul``/``min``/``max``), else None.

    This powers the paper's special-case reduce/scan/hist rules (§5.1.1): the
    general rules are always sound, the specialised ones are the fast paths.
    Accepts the operands in either order and tolerates a single intervening
    copy statement.
    """
    if len(lam.params) != 2 or len(lam.body.result) != 1:
        return None
    px, py = lam.params
    body = lam.body
    res = body.result[0]

    # Unwind trailing copies (t = x op y; r = t).
    defs = {}
    for stm in body.stms:
        if len(stm.pat) == 1:
            defs[stm.pat[0].name] = stm.exp
    seen = set()
    exp = None
    cur = res
    while isinstance(cur, Var) and cur.name in defs and cur.name not in seen:
        seen.add(cur.name)
        e = defs[cur.name]
        if isinstance(e, AtomExp):
            cur = e.x
            continue
        exp = e
        break
    if not isinstance(exp, BinOp) or exp.op not in ("add", "mul", "min", "max"):
        return None
    ops = {a.name for a in (exp.x, exp.y) if isinstance(a, Var)}
    if ops == {px.name, py.name}:
        return exp.op
    return None


def recognize_addition(lam: Lambda) -> bool:
    return recognize_binop_lambda(lam) == "add"


#: Memo for ``recognize_redomap_lambda``: the vectorised interpreter re-walks
#: the IR on every call (recognition per reduce/scan/hist evaluation, which
#: for reduces inside loops means once per iteration), and the analysis —
#: free-variable sets per statement — is not cheap.  Keyed by ``id`` with the
#: lambda kept alive (ids cannot recycle while entries live); an LRU bounded
#: by ``REPRO_ANALYSIS_CACHE_SIZE`` like the optimisation/plan caches.
_REDOMAP_MEMO = BoundedLRU()
_REDOMAP_MEMO_CAP = 4096


def recognize_redomap_lambda(lam: Lambda) -> Optional[Tuple[str, Lambda]]:
    """Decompose ``\\acc x.. -> acc `op` g(x..)`` into ``(op, g)``.

    This is the *redomap* shape the fusion engine produces when a ``map`` is
    fused into a single-operand ``reduce``/``scan``/``reduce_by_index``: a
    prefix of statements computing ``g`` of the element parameters, combined
    with the accumulator by one specialisable binop.  Executors use it to
    keep fused reductions on the bulk fast path (bulk-map ``g``, then
    ``ufunc.reduce``/``accumulate``/``at``), and ``opt.fusion.unfuse_fun``
    uses it to split fused reductions back into ``map`` + canonical operator
    before the AD rules (which assume associative operators) run.

    Returns ``None`` unless the accumulator parameter (``lam.params[0]``)
    feeds *exactly* the final combine.  ``g`` is returned as a ``Lambda``
    over the element parameters (``lam.params[1:]``).
    """
    hit = _REDOMAP_MEMO.get(id(lam))
    if hit is not None and hit[0] is lam:
        return hit[1]
    res = _recognize_redomap(lam)
    cap = env_capacity("REPRO_ANALYSIS_CACHE_SIZE", _REDOMAP_MEMO_CAP)
    _REDOMAP_MEMO.put(id(lam), (lam, res), cap)
    return res


def _recognize_redomap(lam: Lambda) -> Optional[Tuple[str, Lambda]]:
    if len(lam.params) < 2 or len(lam.body.result) != 1:
        return None
    acc = lam.params[0]
    body = lam.body
    defs = {}
    for stm in body.stms:
        if len(stm.pat) != 1:
            return None
        defs[stm.pat[0].name] = stm.exp
    # Unwind trailing copies from the result down to the combine binop.
    chain = set()
    cur = body.result[0]
    exp = None
    while isinstance(cur, Var) and cur.name in defs and cur.name not in chain:
        chain.add(cur.name)
        e = defs[cur.name]
        if isinstance(e, AtomExp):
            cur = e.x
            continue
        exp = e
        break
    if not isinstance(exp, BinOp) or exp.op not in ("add", "mul", "min", "max"):
        return None
    if isinstance(exp.x, Var) and exp.x.name == acc.name:
        v = exp.y
    elif isinstance(exp.y, Var) and exp.y.name == acc.name:
        v = exp.x
    else:
        return None
    if isinstance(v, Var) and v.name == acc.name:  # acc `op` acc is not a map
        return None
    # The map part is everything outside the combine chain; it must neither
    # read the accumulator nor the combine's results.
    from .traversal import free_vars_exp

    forbidden = chain | {acc.name}
    map_stms = []
    for stm in body.stms:
        if stm.pat[0].name in chain:
            if not isinstance(stm.exp, (AtomExp, BinOp)):
                return None
            continue
        if forbidden & set(free_vars_exp(stm.exp)):
            return None
        map_stms.append(stm)
    return exp.op, Lambda(tuple(lam.params[1:]), Body(tuple(map_stms), (v,)))


def perfect_map_nest(exp) -> Tuple[Tuple[Map, ...], Body]:
    """Peel a perfect nest of maps: returns the chain of Map nodes and the
    innermost body.  A nest link requires the lambda body to be exactly one
    Map statement whose results are the body's results (in order)."""
    chain = []
    while isinstance(exp, Map):
        chain.append(exp)
        body = exp.lam.body
        if (
            len(body.stms) == 1
            and isinstance(body.stms[0].exp, Map)
            and tuple(body.result) == tuple(body.stms[0].pat)
        ):
            exp = body.stms[0].exp
        else:
            return tuple(chain), body
    return tuple(chain), None  # type: ignore[return-value]
