"""Small IR analyses shared by executors, AD rules and optimisation passes."""
from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .ast import (
    AtomExp,
    BinOp,
    Body,
    Cast,
    Concat,
    Const,
    Fun,
    If,
    Index,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Size,
    Stm,
    UnOp,
    UpdAcc,
    Update,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from .types import is_float, np_dtype, rank_of
from ..util import BoundedLRU, env_capacity

__all__ = [
    "recognize_binop_lambda",
    "recognize_addition",
    "recognize_redomap_lambda",
    "perfect_map_nest",
    "OP_IDENTITY",
    "ne_is_identity",
    "ParallelSplit",
    "parallel_split",
    "StaticInfo",
    "infer_static_shapes",
    "ir_hash",
]


#: Identities of the specialisable reduce operators (float domain).  The
#: single source of truth: the executors' fast reduce/scan/hist paths (via
#: ``ne_is_identity``) and the shardability analysis (which substitutes the
#: identity as the chunk neutral element) both key off this table.
OP_IDENTITY = {"add": 0.0, "mul": 1.0, "min": float("inf"), "max": float("-inf")}


def ne_is_identity(op: str, ne) -> bool:
    """True when a syntactic neutral-element atom is provably the identity
    of ``op`` — the fast reduce/scan paths may then skip folding it in.
    A left fold from ``ne`` equals ``ne `op` fold-from-identity`` for the
    specialisable (associative) ops, so non-identity neutral elements are
    handled by one extra combine rather than falling off the fast path."""
    if not isinstance(ne, Const):
        return False
    try:
        return float(ne.value) == OP_IDENTITY[op]
    except (TypeError, ValueError):
        return False


def recognize_binop_lambda(lam: Lambda) -> Optional[str]:
    """If ``lam`` is ``\\x y -> x `op` y`` for a commutative specialisable op,
    return the op name (``add``/``mul``/``min``/``max``), else None.

    This powers the paper's special-case reduce/scan/hist rules (§5.1.1): the
    general rules are always sound, the specialised ones are the fast paths.
    Accepts the operands in either order and tolerates a single intervening
    copy statement.
    """
    if len(lam.params) != 2 or len(lam.body.result) != 1:
        return None
    px, py = lam.params
    body = lam.body
    res = body.result[0]

    # Unwind trailing copies (t = x op y; r = t).
    defs = {}
    for stm in body.stms:
        if len(stm.pat) == 1:
            defs[stm.pat[0].name] = stm.exp
    seen = set()
    exp = None
    cur = res
    while isinstance(cur, Var) and cur.name in defs and cur.name not in seen:
        seen.add(cur.name)
        e = defs[cur.name]
        if isinstance(e, AtomExp):
            cur = e.x
            continue
        exp = e
        break
    if not isinstance(exp, BinOp) or exp.op not in ("add", "mul", "min", "max"):
        return None
    ops = {a.name for a in (exp.x, exp.y) if isinstance(a, Var)}
    if ops == {px.name, py.name}:
        return exp.op
    return None


def recognize_addition(lam: Lambda) -> bool:
    return recognize_binop_lambda(lam) == "add"


#: Memo for ``recognize_redomap_lambda``: the vectorised interpreter re-walks
#: the IR on every call (recognition per reduce/scan/hist evaluation, which
#: for reduces inside loops means once per iteration), and the analysis —
#: free-variable sets per statement — is not cheap.  Keyed by ``id`` with the
#: lambda kept alive (ids cannot recycle while entries live); an LRU bounded
#: by ``REPRO_ANALYSIS_CACHE_SIZE`` like the optimisation/plan caches.
_REDOMAP_MEMO = BoundedLRU()
_REDOMAP_MEMO_CAP = 4096


def recognize_redomap_lambda(lam: Lambda) -> Optional[Tuple[str, Lambda]]:
    """Decompose ``\\acc x.. -> acc `op` g(x..)`` into ``(op, g)``.

    This is the *redomap* shape the fusion engine produces when a ``map`` is
    fused into a single-operand ``reduce``/``scan``/``reduce_by_index``: a
    prefix of statements computing ``g`` of the element parameters, combined
    with the accumulator by one specialisable binop.  Executors use it to
    keep fused reductions on the bulk fast path (bulk-map ``g``, then
    ``ufunc.reduce``/``accumulate``/``at``), and ``opt.fusion.unfuse_fun``
    uses it to split fused reductions back into ``map`` + canonical operator
    before the AD rules (which assume associative operators) run.

    Returns ``None`` unless the accumulator parameter (``lam.params[0]``)
    feeds *exactly* the final combine.  ``g`` is returned as a ``Lambda``
    over the element parameters (``lam.params[1:]``).
    """
    hit = _REDOMAP_MEMO.get(id(lam))
    if hit is not None and hit[0] is lam:
        return hit[1]
    res = _recognize_redomap(lam)
    cap = env_capacity("REPRO_ANALYSIS_CACHE_SIZE", _REDOMAP_MEMO_CAP)
    _REDOMAP_MEMO.put(id(lam), (lam, res), cap)
    return res


def _recognize_redomap(lam: Lambda) -> Optional[Tuple[str, Lambda]]:
    if len(lam.params) < 2 or len(lam.body.result) != 1:
        return None
    acc = lam.params[0]
    body = lam.body
    defs = {}
    for stm in body.stms:
        if len(stm.pat) != 1:
            return None
        defs[stm.pat[0].name] = stm.exp
    # Unwind trailing copies from the result down to the combine binop.
    chain = set()
    cur = body.result[0]
    exp = None
    while isinstance(cur, Var) and cur.name in defs and cur.name not in chain:
        chain.add(cur.name)
        e = defs[cur.name]
        if isinstance(e, AtomExp):
            cur = e.x
            continue
        exp = e
        break
    if not isinstance(exp, BinOp) or exp.op not in ("add", "mul", "min", "max"):
        return None
    if isinstance(exp.x, Var) and exp.x.name == acc.name:
        v = exp.y
    elif isinstance(exp.y, Var) and exp.y.name == acc.name:
        v = exp.x
    else:
        return None
    if isinstance(v, Var) and v.name == acc.name:  # acc `op` acc is not a map
        return None
    # The map part is everything outside the combine chain; it must neither
    # read the accumulator nor the combine's results.
    from .traversal import free_vars_exp

    forbidden = chain | {acc.name}
    map_stms = []
    for stm in body.stms:
        if stm.pat[0].name in chain:
            if not isinstance(stm.exp, (AtomExp, BinOp)):
                return None
            continue
        if forbidden & set(free_vars_exp(stm.exp)):
            return None
        map_stms.append(stm)
    return exp.op, Lambda(tuple(lam.params[1:]), Body(tuple(map_stms), (v,)))


# ---------------------------------------------------------------------------
# Parallel-directive legality + inference (the schedule IR's splitting pass)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParallelSplit:
    """A data-parallel decomposition of one ``Fun`` for the shard executor.

    This is the realisation of a ``parallel`` schedule directive
    (``ir.schedule``): the split point is the statement carrying an explicit
    ``Parallel`` directive when one exists, otherwise the heaviest legal
    top-level ``Map`` (no accumulators) or single-operand specialisable
    ``Reduce``/redomap — the cost model's default schedule choice.  The
    function body is split around that point into three derived functions:

    * ``prefix_fun``  — the statements before the shard point, evaluated once
      in the parent; its results (``prefix_fun.body.result``) carry every
      value the later stages need (sharded inputs, broadcast closure values,
      the reduce neutral element, suffix inputs);
    * ``chunk_fun``   — the shard point alone.  Its first ``n_sharded``
      parameters are the SOAC's input arrays, partitioned along the leading
      axis; the rest broadcast unsliced.  For the reduce kind the neutral
      element is replaced by the operator identity so chunk partials combine
      exactly once in the parent;
    * ``suffix_fun``  — the statements after the shard point (``None`` when
      the function's results come straight off the shard point), evaluated
      once in the parent on the recombined chunk results.

    Index plumbing (all into ``prefix_fun``'s result tuple unless tagged):

    * ``sharded_src[i]``      — prefix result feeding chunk parameter ``i``;
    * ``chunk_broadcast[j]``  — prefix result feeding chunk parameter
      ``n_sharded + j``;
    * ``suffix_src``          — per suffix parameter, ``("out", i)`` for the
      ``i``-th recombined chunk result or ``("pre", j)`` for a prefix result;
    * ``out_src``             — when ``suffix_fun`` is None, ``("out", i)``
      per function result;
    * ``combine_op``/``ne_src`` — reduce kind only: the ufunc combining the
      chunk partials, and where the real neutral element lives (``("pre", j)``
      or ``("const", v)``; ``None`` when it is provably the identity).
    * ``workers`` — worker count requested by an explicit ``parallel(w)``
      directive (0 = use ``REPRO_SHARD_WORKERS``);
    * ``schedule_str`` — the realised schedule, formatted, for obs spans.
    """

    kind: str  # "map" | "reduce"
    prefix_fun: Fun
    chunk_fun: Fun
    n_sharded: int
    sharded_src: Tuple[int, ...]
    chunk_broadcast: Tuple[int, ...]
    n_outs: int
    suffix_fun: Optional[Fun]
    suffix_src: Tuple[Tuple[str, int], ...]
    out_src: Tuple[Tuple[str, int], ...]
    combine_op: Optional[str] = None
    ne_src: Optional[Tuple[str, object]] = None
    workers: int = 0
    schedule_str: str = ""


def _parallel_candidate(stm: Stm):
    """``(kind, combine_op, chunk_exp, ne_atom)`` if a ``parallel``
    directive is legal on ``stm``, else None.

    A ``Map`` is splittable when it has no accumulators (those carry
    cross-element state) and none of its input arrays is also read whole
    inside the lambda (slicing would change what the lambda sees).  A
    ``Reduce`` is splittable when its operator is a recognised specialisable
    binop or redomap shape (associative, so chunk partials recombine) over a
    scalar float neutral element.  Scans, while-loops and data-dependent
    control flow at the top level are simply never candidates — the caller
    falls back to the plan backend.  (``ir.schedule.check_schedule`` applies
    the same conditions when validating an explicit ``parallel`` directive.)
    """
    e = stm.exp
    if isinstance(e, Map):
        if e.accs or not e.arrs:
            return None
        from .traversal import free_vars

        arr_names = {a.name for a in e.arrs}
        if arr_names & set(free_vars(e.lam)):
            return None
        return ("map", None, e, None)
    if isinstance(e, Reduce):
        if len(e.nes) != 1 or not e.arrs or len(stm.pat) != 1:
            return None
        ne = e.nes[0]
        if not (is_float(ne.type) and rank_of(ne.type) == 0):
            return None
        op = recognize_binop_lambda(e.lam)
        if op is None:
            rm = recognize_redomap_lambda(e.lam)
            op = rm[0] if rm is not None else None
        if op is None:
            return None
        from .traversal import free_vars

        arr_names = {a.name for a in e.arrs}
        if arr_names & set(free_vars(e.lam)):
            return None
        chunk_exp = replace(e, nes=(Const(OP_IDENTITY[op], ne.type),))
        return ("reduce", op, chunk_exp, ne)
    return None


def parallel_split(fun: Fun, weigh=None) -> Optional[ParallelSplit]:
    """Realise the ``parallel`` schedule directive, or None when absent.

    A statement carrying an explicit ``Parallel`` directive (attached by
    ``ir.schedule.apply_schedule``) wins the split point — the heaviest such
    statement when several are annotated.  Otherwise the pass falls back to
    *inferring* the default parallel schedule: the heaviest legal candidate
    (see ``_parallel_candidate``), weighed by the static cost model
    (``ir.cost_model.stm_work``: estimated scalar work plus memory traffic)
    — so e.g. GMM shards its big per-point redomap rather than the tiny
    wishart reduce that happens to come later.  ``weigh`` substitutes a
    custom ``Stm -> float`` weigher.  Programs with no top-level parallel
    SOAC — scans, data-dependent loops, pure scalar code — return None and
    run unsharded.

    The consumed ``Parallel`` directive is stripped from the chunk program
    (the chunk runs the remaining inner schedule), and its worker request is
    recorded on the split (``workers``) for the shard runtime to honour.
    """
    from .schedule import Parallel, format_schedule
    from .traversal import free_vars, free_vars_exp

    if weigh is None:
        from .cost_model import stm_work as weigh  # late: cost_model imports us

    stms = fun.body.stms
    best = None
    best_w = -1.0
    best_explicit = False
    for k, stm in enumerate(stms):
        cand = _parallel_candidate(stm)
        if cand is None:
            continue
        explicit = any(
            isinstance(d, Parallel)
            for d in getattr(stm.exp, "schedule", ())
        )
        if best_explicit and not explicit:
            continue
        w = float(weigh(stm))
        if (explicit and not best_explicit) or w >= best_w:
            # explicit directives outrank inference; ties -> later statement
            best, best_w, best_explicit = (k, cand), w, explicit
    if best is None:
        return None
    k, (kind, op, chunk_exp, ne_atom) = best
    stm = stms[k]

    # Consume the parallel directive: the chunk program runs whatever inner
    # schedule remains, and the directive's worker request rides the split.
    workers = 0
    sched = tuple(getattr(chunk_exp, "schedule", ()))
    if sched:
        for d in sched:
            if isinstance(d, Parallel):
                workers = d.workers
        inner = tuple(d for d in sched if not isinstance(d, Parallel))
        chunk_exp = replace(chunk_exp, schedule=inner)
    else:
        from .schedule import Vectorized

        sched = (Parallel(workers), Vectorized())
    schedule_str = format_schedule(
        sched if any(isinstance(d, Parallel) for d in sched)
        else (Parallel(workers),) + sched
    )

    # The prefix result tuple, grown on demand.
    pre_vars: list = []
    pre_idx = {}

    def pre(v: Var) -> int:
        i = pre_idx.get(v.name)
        if i is None:
            i = len(pre_vars)
            pre_idx[v.name] = i
            pre_vars.append(v)
        return i

    arrs = chunk_exp.arrs
    seen = set()
    sharded = [a for a in arrs if not (a.name in seen or seen.add(a.name))]
    chunk_free = free_vars_exp(chunk_exp)
    broadcast = [v for n, v in chunk_free.items() if n not in seen]
    sharded_src = tuple(pre(v) for v in sharded)
    chunk_broadcast = tuple(pre(v) for v in broadcast)
    chunk_fun = Fun(
        fun.name + "_shard_chunk",
        tuple(sharded) + tuple(broadcast),
        Body((Stm(stm.pat, chunk_exp),), tuple(stm.pat)),
    )

    ne_src = None
    if kind == "reduce":
        if isinstance(ne_atom, Var):
            ne_src = ("pre", pre(ne_atom))
        elif not ne_is_identity(op, ne_atom):
            ne_src = ("const", ne_atom.value)

    pat_pos = {v.name: i for i, v in enumerate(stm.pat)}
    suffix_stms = stms[k + 1:]
    suffix_fun = None
    suffix_src: Tuple[Tuple[str, int], ...] = ()
    out_src: Tuple[Tuple[str, int], ...] = ()
    if suffix_stms or not all(
        isinstance(a, Var) and a.name in pat_pos for a in fun.body.result
    ):
        sbody = Body(tuple(suffix_stms), fun.body.result)
        sfree = free_vars(sbody)
        sparams = tuple(sfree.values())
        suffix_fun = Fun(fun.name + "_shard_suffix", sparams, sbody)
        suffix_src = tuple(
            ("out", pat_pos[v.name]) if v.name in pat_pos else ("pre", pre(v))
            for v in sparams
        )
    else:
        out_src = tuple(("out", pat_pos[a.name]) for a in fun.body.result)

    prefix_fun = Fun(
        fun.name + "_shard_pre", fun.params, Body(stms[:k], tuple(pre_vars))
    )
    return ParallelSplit(
        kind=kind,
        prefix_fun=prefix_fun,
        chunk_fun=chunk_fun,
        n_sharded=len(sharded),
        sharded_src=sharded_src,
        chunk_broadcast=chunk_broadcast,
        n_outs=len(stm.pat),
        suffix_fun=suffix_fun,
        suffix_src=suffix_src,
        out_src=out_src,
        combine_op=op,
        ne_src=ne_src,
        workers=workers,
        schedule_str=schedule_str,
    )


# ---------------------------------------------------------------------------
# Static shape / size-value inference (tier-2 plan specialisation)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticInfo:
    """Facts derivable from one concrete argument signature.

    ``shapes`` maps SSA names to their *physical payload* shape (the shape a
    ``BV``'s ``pshape()`` reports — batch dims never change it); ``ints``
    maps names of scalar integers whose *value* is determined by the input
    shapes alone (``Size`` results and arithmetic over them).  Both are
    partial: a missing name means "not statically known", and every recorded
    fact must hold on **every** execution of its binding statement — loop
    and reduction lambdas only contribute when their state shapes are a
    fixpoint (result shape equals the initial shape), otherwise they are
    re-walked with the state parameters unbound.

    The tier-2 plan compiler (``exec/plan.py``) keys its compile-time folds
    off this: ``Size`` atoms become constants, iota/replicate/histogram
    extents become Python ints (prebuilding small iotas outright), and
    reduce/scan lowering picks its strategy by the known extent.
    """

    shapes: Dict[str, Tuple[int, ...]]
    ints: Dict[str, int]

    def shape(self, name: str) -> Optional[Tuple[int, ...]]:
        return self.shapes.get(name)

    def int_of(self, name: str) -> Optional[int]:
        return self.ints.get(name)


def infer_static_shapes(
    fun: Fun, arg_shapes: Sequence[Optional[Tuple[int, ...]]]
) -> StaticInfo:
    """Infer per-name static shapes/sizes of ``fun`` given concrete argument
    payload shapes (``None`` entries mark arguments of unknown shape)."""
    shapes: Dict[str, Tuple[int, ...]] = {}
    ints: Dict[str, int] = {}
    for p, s in zip(fun.params, arg_shapes):
        if s is not None:
            shapes[p.name] = tuple(int(x) for x in s)
    _infer_body(fun.body, shapes, ints)
    return StaticInfo(shapes, ints)


def _atom_shape(a, shapes) -> Optional[Tuple[int, ...]]:
    if isinstance(a, Var):
        return shapes.get(a.name)
    return ()  # Const atoms are scalars


def _atom_int(a, ints) -> Optional[int]:
    if isinstance(a, Var):
        return ints.get(a.name)
    if np.issubdtype(np_dtype(a.type), np.integer):
        return int(a.value)
    return None


def _bcast(*ss) -> Optional[Tuple[int, ...]]:
    if any(s is None for s in ss):
        return None
    try:
        return tuple(np.broadcast_shapes(*ss))
    except ValueError:
        return None


#: Integer BinOps that are exact and fold at specialisation time.
_INT_FOLD = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "min": min,
    "max": max,
}


def _infer_fixpoint_lambda(params, init_shapes, body, shapes, ints, extra=()):
    """Walk a stateful lambda/loop body, committing facts only when sound.

    ``params`` are the state parameters, ``init_shapes`` their entry shapes
    (``None`` = unknown); ``extra`` is a list of ``(param, shape)`` bindings
    that hold on every iteration (element parameters, the loop index).
    Returns the per-result shapes when the state shapes are a fixpoint
    (facts committed into ``shapes``/``ints``), else ``None`` after a
    conservative re-walk with the state parameters unbound.
    """
    if all(s is not None for s in init_shapes) and len(params) == len(init_shapes):
        sh2, it2 = dict(shapes), dict(ints)
        for p, s in zip(params, init_shapes):
            sh2[p.name] = s
        for p, s in extra:
            if s is not None:
                sh2[p.name] = s
        _infer_body(body, sh2, it2)
        res_sh = [_atom_shape(a, sh2) for a in body.result]
        if list(res_sh[: len(init_shapes)]) == list(init_shapes):
            shapes.update(sh2)
            ints.update(it2)
            return res_sh
    # State shapes unknown or not provably stable: facts derived from them
    # would only hold on the first iteration.  Re-walk with the state
    # parameters unbound so everything committed is iteration-independent.
    sh3, it3 = dict(shapes), dict(ints)
    for p, s in extra:
        if s is not None:
            sh3[p.name] = s
    _infer_body(body, sh3, it3)
    shapes.update(sh3)
    ints.update(it3)
    return None


def _infer_body(body: Body, shapes, ints) -> None:
    for stm in body.stms:
        out_sh, out_int = _infer_exp(stm.exp, shapes, ints, len(stm.pat))
        for v, s, i in zip(stm.pat, out_sh, out_int):
            if s is not None:
                shapes[v.name] = s
            if i is not None:
                ints[v.name] = int(i)


def _infer_exp(e, shapes, ints, n_out):
    """``(per-result shapes, per-result int values)`` — ``None`` = unknown."""
    nothing = ([None] * n_out, [None] * n_out)

    def only(shape, value=None):
        return ([shape], [value])

    if isinstance(e, AtomExp):
        return only(_atom_shape(e.x, shapes), _atom_int(e.x, ints))
    if isinstance(e, UnOp):
        return only(_atom_shape(e.x, shapes))
    if isinstance(e, BinOp):
        sx, sy = _atom_shape(e.x, shapes), _atom_shape(e.y, shapes)
        val = None
        fold = _INT_FOLD.get(e.op)
        if fold is not None:
            ix, iy = _atom_int(e.x, ints), _atom_int(e.y, ints)
            if ix is not None and iy is not None:
                val = fold(ix, iy)
        return only(_bcast(sx, sy), val)
    if isinstance(e, Select):
        return only(
            _bcast(
                _atom_shape(e.c, shapes),
                _atom_shape(e.t, shapes),
                _atom_shape(e.f, shapes),
            )
        )
    if isinstance(e, Cast):
        return only(_atom_shape(e.x, shapes))
    if isinstance(e, Index):
        s = shapes.get(e.arr.name)
        if s is not None and len(e.idx) <= len(s):
            return only(s[len(e.idx):])
        return nothing
    if isinstance(e, ZerosLike):
        return only(_atom_shape(e.x, shapes))
    if isinstance(e, Size):
        s = shapes.get(e.arr.name)
        if s is not None and -len(s) <= e.dim < len(s):
            return only((), s[e.dim])
        return only(())
    if isinstance(e, Iota):
        n = _atom_int(e.n, ints)
        return only((n,) if n is not None and n >= 0 else None)
    if isinstance(e, Replicate):
        n = _atom_int(e.n, ints)
        sv = _atom_shape(e.v, shapes)
        if n is not None and n >= 0 and sv is not None:
            return only((n,) + sv)
        return nothing
    if isinstance(e, ScratchLike):
        return nothing  # extent is a runtime max over the index array
    if isinstance(e, Reverse):
        return only(shapes.get(e.x.name))
    if isinstance(e, Concat):
        sx, sy = shapes.get(e.x.name), shapes.get(e.y.name)
        if sx and sy and sx[1:] == sy[1:]:
            return only((sx[0] + sy[0],) + sx[1:])
        return nothing
    if isinstance(e, Update):
        return only(shapes.get(e.arr.name))
    if isinstance(e, Scatter):
        return only(shapes.get(e.dest.name))
    if isinstance(e, UpdAcc):
        return only(shapes.get(e.acc.name))

    if isinstance(e, Map):
        arr_sh = [shapes.get(a.name) for a in e.arrs]
        n = next((s[0] for s in arr_sh if s), None)
        elems = list(
            zip(e.lam.params, [s[1:] if s else None for s in arr_sh])
        )
        accs = list(
            zip(e.lam.params[len(e.arrs):], [shapes.get(a.name) for a in e.accs])
        )
        sh2, it2 = dict(shapes), dict(ints)
        for p, s in elems + accs:
            if s is not None:
                sh2[p.name] = s
        _infer_body(e.lam.body, sh2, it2)
        shapes.update(sh2)
        ints.update(it2)
        na = len(e.accs)
        res_sh = [_atom_shape(a, sh2) for a in e.lam.body.result]
        out = [shapes.get(a.name) for a in e.accs]
        for rs in res_sh[na:]:
            out.append((n,) + rs if n is not None and rs is not None else None)
        return out[:n_out] + [None] * (n_out - len(out)), [None] * n_out

    if isinstance(e, (Reduce, Scan)):
        arr_sh = [shapes.get(a.name) for a in e.arrs]
        elem_sh = [s[1:] if s else None for s in arr_sh]
        n = next((s[0] for s in arr_sh if s), None)
        ne_sh = [_atom_shape(a, shapes) for a in e.nes]
        extra = list(zip(e.lam.params[len(e.nes):], elem_sh))
        res_sh = _infer_fixpoint_lambda(
            e.lam.params[: len(e.nes)], ne_sh, e.lam.body, shapes, ints, extra
        )
        if res_sh is None:
            return nothing
        # The executors' *empty* fast paths shape the result off the element
        # payload, not the neutral element — so a result-shape claim is only
        # sound when the extent is provably nonzero, or element and neutral
        # payload shapes provably coincide (multi-ne operators take the
        # general path, whose empty result carries the ne shapes).
        if len(e.nes) == 1 and not (n is not None and n > 0):
            if elem_sh[0] is None or ne_sh[0] is None or elem_sh[0] != ne_sh[0]:
                return nothing
        if isinstance(e, Reduce):
            return res_sh[:n_out] + [None] * (n_out - len(res_sh)), [None] * n_out
        # Scan: the general path's empty result collapses to a rank-matched
        # all-zero-extent shape, so only a provably nonzero extent is safe.
        if not (n is not None and n > 0):
            return nothing
        out = [(n,) + rs if rs is not None else None for rs in res_sh]
        return out[:n_out] + [None] * (n_out - len(out)), [None] * n_out

    if isinstance(e, ReduceByIndex):
        m = _atom_int(e.num_bins, ints)
        ne_sh = [_atom_shape(a, shapes) for a in e.nes]
        val_sh = [shapes.get(v.name) for v in e.vals]
        # Lambda element parameters correspond to the *value* arrays only
        # (the index array never enters the lambda).
        extra = list(
            zip(
                e.lam.params[len(e.nes):],
                [s[1:] if s else None for s in val_sh],
            )
        )
        _infer_fixpoint_lambda(
            e.lam.params[: len(e.nes)], ne_sh, e.lam.body, shapes, ints, extra
        )
        # Payload is (m,) + the value element shape on the non-fused paths;
        # the redomap-fused path maps the elements first, so stay unknown.
        if m is None or m < 0 or recognize_redomap_lambda(e.lam) is not None:
            return nothing
        out = [
            (m,) + s[1:] if s else None
            for s in val_sh
        ]
        return out[:n_out] + [None] * (n_out - len(out)), [None] * n_out

    if isinstance(e, Loop):
        init_sh = [_atom_shape(a, shapes) for a in e.inits]
        res_sh = _infer_fixpoint_lambda(
            e.params, init_sh, e.body, shapes, ints, extra=[(e.ivar, ())]
        )
        out = res_sh if res_sh is not None else [None] * n_out
        return out[:n_out] + [None] * (n_out - len(out)), [None] * n_out

    if isinstance(e, WhileLoop):
        init_sh = [_atom_shape(a, shapes) for a in e.inits]
        res_sh = _infer_fixpoint_lambda(
            e.params, init_sh, e.body, shapes, ints
        )
        # The condition's parameters carry the state: bind them only when the
        # body proved the state shapes stable across iterations.
        sh2, it2 = dict(shapes), dict(ints)
        if res_sh is not None:
            for p, s in zip(e.cond.params, init_sh):
                if s is not None:
                    sh2[p.name] = s
        _infer_body(e.cond.body, sh2, it2)
        shapes.update(sh2)
        ints.update(it2)
        out = res_sh if res_sh is not None else [None] * n_out
        return out[:n_out] + [None] * (n_out - len(out)), [None] * n_out

    if isinstance(e, If):
        sh_t, it_t = dict(shapes), dict(ints)
        _infer_body(e.then, sh_t, it_t)
        sh_f, it_f = dict(shapes), dict(ints)
        _infer_body(e.els, sh_f, it_f)
        shapes.update(sh_t)
        shapes.update(sh_f)
        ints.update(it_t)
        ints.update(it_f)
        out = []
        for at, af in zip(e.then.result, e.els.result):
            st, sf = _atom_shape(at, sh_t), _atom_shape(af, sh_f)
            out.append(st if st is not None and st == sf else None)
        return out[:n_out] + [None] * (n_out - len(out)), [None] * n_out

    if isinstance(e, WithAcc):
        acc_sh = [shapes.get(a.name) for a in e.arrs]
        sh2, it2 = dict(shapes), dict(ints)
        for p, s in zip(e.lam.params, acc_sh):
            if s is not None:
                sh2[p.name] = s
        _infer_body(e.lam.body, sh2, it2)
        shapes.update(sh2)
        ints.update(it2)
        na = len(e.arrs)
        res_sh = [_atom_shape(a, sh2) for a in e.lam.body.result]
        out = list(acc_sh) + res_sh[na:]
        return out[:n_out] + [None] * (n_out - len(out)), [None] * n_out

    return nothing


def perfect_map_nest(exp) -> Tuple[Tuple[Map, ...], Body]:
    """Peel a perfect nest of maps: returns the chain of Map nodes and the
    innermost body.  A nest link requires the lambda body to be exactly one
    Map statement whose results are the body's results (in order)."""
    chain = []
    while isinstance(exp, Map):
        chain.append(exp)
        body = exp.lam.body
        if (
            len(body.stms) == 1
            and isinstance(body.stms[0].exp, Map)
            and tuple(body.result) == tuple(body.stms[0].pat)
        ):
            exp = body.stms[0].exp
        else:
            return tuple(chain), body
    return tuple(chain), None  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Alpha-invariant content hash
# ---------------------------------------------------------------------------

#: Memo for ``ir_hash``: the plan cache calls it once per ``plan_for`` (i.e.
#: per executed call on the plan-family backends), and the hash walks the
#: whole ``Fun``.  Keyed by ``id`` with the hashed ``Fun`` kept alive in the
#: entry (ids cannot recycle while entries live); an LRU bounded by
#: ``REPRO_ANALYSIS_CACHE_SIZE`` like the other analysis memos.
_IR_HASH_MEMO = BoundedLRU()
_IR_HASH_MEMO_CAP = 4096


def ir_hash(fun: Fun) -> str:
    """An alpha-invariant structural content hash of ``fun``.

    Two ``Fun``s hash equal iff they are identical up to a consistent
    renaming of SSA names: every variable is replaced by its de-Bruijn-style
    introduction index (binding sites come before uses in ANF, and the walk
    order is deterministic, so alpha-equivalent programs number their
    variables identically).  Everything semantically load-bearing — node
    kinds, operator names, types, constant values, loop annotations — feeds
    the digest, so semantically different programs hash apart.

    This is the tier-1 plan-cache key: tracing the same source function
    twice yields alpha-equivalent ``Fun``s with fresh SSA names, and hashing
    lets them share one lowering (and is the identity a future disk cache or
    RPC plan shipping would key on).  Memoised per ``Fun`` object.
    """
    ent = _IR_HASH_MEMO.get(id(fun))
    if ent is not None and ent[0] is fun:
        return ent[1]
    h = hashlib.blake2b(digest_size=16)
    ids: Dict[str, int] = {}
    feed = h.update

    def name_of(n: str) -> int:
        i = ids.get(n)
        if i is None:
            i = len(ids)
            ids[n] = i
        return i

    def atom(a) -> None:
        if isinstance(a, Var):
            feed(b"v%d:%s;" % (name_of(a.name), repr(a.type).encode()))
        else:
            feed(b"c%s:%s;" % (repr(a.type).encode(), repr(a.value).encode()))

    def atoms(xs) -> None:
        for a in xs:
            atom(a)

    def lam(l: Lambda) -> None:
        feed(b"lam%d(" % len(l.params))
        atoms(l.params)
        body(l.body)
        feed(b")")

    def exp(e) -> None:
        t = type(e)
        feed(t.__name__.encode())
        if t in (AtomExp, ZerosLike):
            atom(e.x)
        elif t is UnOp:
            feed(e.op.encode())
            atom(e.x)
        elif t is BinOp:
            feed(e.op.encode())
            atoms((e.x, e.y))
        elif t is Select:
            atoms((e.c, e.t, e.f))
        elif t is Cast:
            atom(e.x)
            feed(repr(e.to).encode())
        elif t is Index:
            atom(e.arr)
            atoms(e.idx)
        elif t is Update:
            atom(e.arr)
            atoms(e.idx)
            atom(e.val)
        elif t is Iota:
            atom(e.n)
            feed(repr(e.elem).encode())
        elif t is Replicate:
            atoms((e.n, e.v))
        elif t is ScratchLike:
            atoms((e.n, e.x))
        elif t is Size:
            atom(e.arr)
            feed(b"%d" % e.dim)
        elif t is Reverse:
            atom(e.x)
        elif t is Concat:
            atoms((e.x, e.y))
        elif t is Map:
            lam(e.lam)
            atoms(e.arrs)
            feed(b"|")
            atoms(e.accs)
        elif t in (Reduce, Scan):
            lam(e.lam)
            atoms(e.nes)
            feed(b"|")
            atoms(e.arrs)
        elif t is ReduceByIndex:
            atom(e.num_bins)
            lam(e.lam)
            atoms(e.nes)
            feed(b"|")
            atom(e.inds)
            atoms(e.vals)
        elif t is Scatter:
            atoms((e.dest, e.inds, e.vals))
        elif t is Loop:
            atoms(e.params)
            feed(b"=")
            atoms(e.inits)
            atom(e.ivar)
            atom(e.n)
            body(e.body)
            feed(b"sm%d,cp%s" % (e.stripmine, e.checkpoint.encode()))
        elif t is WhileLoop:
            atoms(e.params)
            feed(b"=")
            atoms(e.inits)
            lam(e.cond)
            body(e.body)
            if e.bound is not None:
                feed(b"bound:")
                atom(e.bound)
        elif t is If:
            atom(e.cond)
            body(e.then)
            body(e.els)
        elif t is WithAcc:
            atoms(e.arrs)
            lam(e.lam)
        elif t is UpdAcc:
            atom(e.acc)
            atoms(e.idx)
            atom(e.v)
        else:  # future node kinds: still deterministic, never silent
            feed(repr(e).encode())
        sched = getattr(e, "schedule", ())
        if sched:  # non-default schedules are distinct programs
            from .schedule import schedule_key

            feed(schedule_key(sched))
        feed(b";")

    def body(b: Body) -> None:
        feed(b"{")
        for stm in b.stms:
            atoms(stm.pat)
            feed(b"=")
            exp(stm.exp)
        feed(b"->")
        atoms(b.result)
        feed(b"}")

    feed(b"fun%d(" % len(fun.params))
    atoms(fun.params)
    body(fun.body)
    feed(b")")
    digest = h.hexdigest()
    cap = env_capacity("REPRO_ANALYSIS_CACHE_SIZE", _IR_HASH_MEMO_CAP)
    _IR_HASH_MEMO.put(id(fun), (fun, digest), cap)
    return digest
