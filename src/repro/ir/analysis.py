"""Small IR analyses shared by executors, AD rules and optimisation passes."""
from __future__ import annotations

from typing import Optional, Tuple

from .ast import AtomExp, BinOp, Body, Const, Lambda, Map, Stm, Var

__all__ = ["recognize_binop_lambda", "recognize_addition", "perfect_map_nest"]


def recognize_binop_lambda(lam: Lambda) -> Optional[str]:
    """If ``lam`` is ``\\x y -> x `op` y`` for a commutative specialisable op,
    return the op name (``add``/``mul``/``min``/``max``), else None.

    This powers the paper's special-case reduce/scan/hist rules (§5.1.1): the
    general rules are always sound, the specialised ones are the fast paths.
    Accepts the operands in either order and tolerates a single intervening
    copy statement.
    """
    if len(lam.params) != 2 or len(lam.body.result) != 1:
        return None
    px, py = lam.params
    body = lam.body
    res = body.result[0]

    # Unwind trailing copies (t = x op y; r = t).
    defs = {}
    for stm in body.stms:
        if len(stm.pat) == 1:
            defs[stm.pat[0].name] = stm.exp
    seen = set()
    exp = None
    cur = res
    while isinstance(cur, Var) and cur.name in defs and cur.name not in seen:
        seen.add(cur.name)
        e = defs[cur.name]
        if isinstance(e, AtomExp):
            cur = e.x
            continue
        exp = e
        break
    if not isinstance(exp, BinOp) or exp.op not in ("add", "mul", "min", "max"):
        return None
    ops = {a.name for a in (exp.x, exp.y) if isinstance(a, Var)}
    if ops == {px.name, py.name}:
        return exp.op
    return None


def recognize_addition(lam: Lambda) -> bool:
    return recognize_binop_lambda(lam) == "add"


def perfect_map_nest(exp) -> Tuple[Tuple[Map, ...], Body]:
    """Peel a perfect nest of maps: returns the chain of Map nodes and the
    innermost body.  A nest link requires the lambda body to be exactly one
    Map statement whose results are the body's results (in order)."""
    chain = []
    while isinstance(exp, Map):
        chain.append(exp)
        body = exp.lam.body
        if (
            len(body.stms) == 1
            and isinstance(body.stms[0].exp, Map)
            and tuple(body.result) == tuple(body.stms[0].pat)
        ):
            exp = body.stms[0].exp
        else:
            return tuple(chain), body
    return tuple(chain), None  # type: ignore[return-value]
