"""IR traversal utilities: free variables, substitution, alpha-renaming.

The reverse-AD transform duplicates bodies (redundant execution) and splices
statements between scopes, so it leans heavily on:

* ``free_vars(node)`` — ordered mapping of the free variables of a body /
  lambda / expression (paper Fig. 3's ``FV``);
* ``subst(node, mapping)`` — capture-avoiding substitution of free variables
  by atoms;
* ``refresh(node)`` — alpha-rename every binder to a fresh name (used when a
  body is copied so the program stays SSA).
"""
from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator

from ..util import fresh
from .ast import (
    AtomExp,
    Atom,
    BinOp,
    Body,
    Cast,
    Concat,
    Exp,
    Fun,
    If,
    Index,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Size,
    Stm,
    UnOp,
    UpdAcc,
    Update,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)

__all__ = [
    "exp_atoms",
    "exp_lambdas",
    "free_vars",
    "free_vars_exp",
    "subst",
    "subst_exp",
    "refresh_body",
    "refresh_lambda",
    "rename_var",
    "inline_lambda",
    "map_stms",
    "count_stms",
    "count_soacs",
    "all_bound_vars",
]


# ---------------------------------------------------------------------------
# Direct atom / lambda children of an expression
# ---------------------------------------------------------------------------


def exp_atoms(e: Exp) -> Iterator[Atom]:
    """Atoms directly referenced by ``e`` (excluding nested bodies/lambdas)."""
    if isinstance(e, AtomExp):
        yield e.x
    elif isinstance(e, UnOp):
        yield e.x
    elif isinstance(e, BinOp):
        yield e.x
        yield e.y
    elif isinstance(e, Select):
        yield e.c
        yield e.t
        yield e.f
    elif isinstance(e, Cast):
        yield e.x
    elif isinstance(e, Index):
        yield e.arr
        yield from e.idx
    elif isinstance(e, Update):
        yield e.arr
        yield from e.idx
        yield e.val
    elif isinstance(e, Iota):
        yield e.n
    elif isinstance(e, Replicate):
        yield e.n
        yield e.v
    elif isinstance(e, ZerosLike):
        yield e.x
    elif isinstance(e, ScratchLike):
        yield e.n
        yield e.x
    elif isinstance(e, Size):
        yield e.arr
    elif isinstance(e, Reverse):
        yield e.x
    elif isinstance(e, Concat):
        yield e.x
        yield e.y
    elif isinstance(e, Map):
        yield from e.arrs
        yield from e.accs
    elif isinstance(e, (Reduce, Scan)):
        yield from e.nes
        yield from e.arrs
    elif isinstance(e, ReduceByIndex):
        yield e.num_bins
        yield from e.nes
        yield e.inds
        yield from e.vals
    elif isinstance(e, Scatter):
        yield e.dest
        yield e.inds
        yield e.vals
    elif isinstance(e, Loop):
        yield from e.inits
        yield e.n
    elif isinstance(e, WhileLoop):
        yield from e.inits
        if e.bound is not None:
            yield e.bound
    elif isinstance(e, If):
        yield e.cond
    elif isinstance(e, WithAcc):
        yield from e.arrs
    elif isinstance(e, UpdAcc):
        yield e.acc
        yield from e.idx
        yield e.v
    else:  # pragma: no cover - exhaustiveness guard
        raise TypeError(f"exp_atoms: unknown expression {type(e).__name__}")


def exp_lambdas(e: Exp) -> Iterator[Lambda]:
    """Lambdas directly contained in ``e``."""
    if isinstance(e, Map):
        yield e.lam
    elif isinstance(e, (Reduce, Scan)):
        yield e.lam
    elif isinstance(e, ReduceByIndex):
        yield e.lam
    elif isinstance(e, WhileLoop):
        yield e.cond
    elif isinstance(e, WithAcc):
        yield e.lam


# ---------------------------------------------------------------------------
# Free variables
# ---------------------------------------------------------------------------


def _fv_body(body: Body, bound: frozenset, out: Dict[str, Var]) -> None:
    for stm in body.stms:
        _fv_exp(stm.exp, bound, out)
        bound = bound | {v.name for v in stm.pat}
    for a in body.result:
        if isinstance(a, Var) and a.name not in bound and a.name not in out:
            out[a.name] = a


def _fv_lambda(lam: Lambda, bound: frozenset, out: Dict[str, Var]) -> None:
    _fv_body(lam.body, bound | {p.name for p in lam.params}, out)


def _fv_exp(e: Exp, bound: frozenset, out: Dict[str, Var]) -> None:
    for a in exp_atoms(e):
        if isinstance(a, Var) and a.name not in bound and a.name not in out:
            out[a.name] = a
    for lam in exp_lambdas(e):
        _fv_lambda(lam, bound, out)
    if isinstance(e, Loop):
        inner = bound | {p.name for p in e.params} | {e.ivar.name}
        _fv_body(e.body, inner, out)
    elif isinstance(e, WhileLoop):
        inner = bound | {p.name for p in e.params}
        _fv_body(e.body, inner, out)
    elif isinstance(e, If):
        _fv_body(e.then, bound, out)
        _fv_body(e.els, bound, out)


def free_vars(node) -> Dict[str, Var]:
    """Ordered ``name -> Var`` mapping of the free variables of ``node``.

    ``node`` may be a Body, Lambda, or Fun.  Order is first-use order, which
    keeps generated code deterministic.
    """
    out: Dict[str, Var] = {}
    if isinstance(node, Body):
        _fv_body(node, frozenset(), out)
    elif isinstance(node, Lambda):
        _fv_lambda(node, frozenset(), out)
    elif isinstance(node, Fun):
        _fv_body(node.body, frozenset(p.name for p in node.params), out)
    else:
        raise TypeError(f"free_vars: unsupported node {type(node).__name__}")
    return out


def free_vars_exp(e: Exp) -> Dict[str, Var]:
    """Ordered free variables of a single expression."""
    out: Dict[str, Var] = {}
    _fv_exp(e, frozenset(), out)
    return out


# ---------------------------------------------------------------------------
# Substitution
# ---------------------------------------------------------------------------

Mapping = Dict[str, Atom]


def _sub_atom(a: Atom, m: Mapping) -> Atom:
    if isinstance(a, Var) and a.name in m:
        return m[a.name]
    return a


def _sub_var(v: Var, m: Mapping) -> Var:
    """Substitute a position that syntactically requires a Var."""
    r = _sub_atom(v, m)
    if not isinstance(r, Var):
        raise TypeError(f"cannot substitute constant into Var position {v.name}")
    return r


def subst_exp(e: Exp, m: Mapping) -> Exp:
    """Capture-avoiding substitution of free variables in ``e``."""
    if not m:
        return e
    s = lambda a: _sub_atom(a, m)  # noqa: E731
    sv = lambda v: _sub_var(v, m)  # noqa: E731
    if isinstance(e, AtomExp):
        return AtomExp(s(e.x))
    if isinstance(e, UnOp):
        return UnOp(e.op, s(e.x))
    if isinstance(e, BinOp):
        return BinOp(e.op, s(e.x), s(e.y))
    if isinstance(e, Select):
        return Select(s(e.c), s(e.t), s(e.f))
    if isinstance(e, Cast):
        return Cast(s(e.x), e.to)
    if isinstance(e, Index):
        return Index(sv(e.arr), tuple(s(i) for i in e.idx))
    if isinstance(e, Update):
        return Update(sv(e.arr), tuple(s(i) for i in e.idx), s(e.val))
    if isinstance(e, Iota):
        return Iota(s(e.n), e.elem)
    if isinstance(e, Replicate):
        return Replicate(s(e.n), s(e.v))
    if isinstance(e, ZerosLike):
        return ZerosLike(s(e.x))
    if isinstance(e, ScratchLike):
        return ScratchLike(s(e.n), s(e.x))
    if isinstance(e, Size):
        return Size(sv(e.arr), e.dim)
    if isinstance(e, Reverse):
        return Reverse(sv(e.x))
    if isinstance(e, Concat):
        return Concat(sv(e.x), sv(e.y))
    if isinstance(e, Map):
        return Map(
            _sub_lambda(e.lam, m),
            tuple(sv(a) for a in e.arrs),
            tuple(sv(a) for a in e.accs),
        )
    if isinstance(e, Reduce):
        return Reduce(_sub_lambda(e.lam, m), tuple(s(a) for a in e.nes), tuple(sv(a) for a in e.arrs))
    if isinstance(e, Scan):
        return Scan(_sub_lambda(e.lam, m), tuple(s(a) for a in e.nes), tuple(sv(a) for a in e.arrs))
    if isinstance(e, ReduceByIndex):
        return ReduceByIndex(
            s(e.num_bins),
            _sub_lambda(e.lam, m),
            tuple(s(a) for a in e.nes),
            sv(e.inds),
            tuple(sv(a) for a in e.vals),
        )
    if isinstance(e, Scatter):
        return Scatter(sv(e.dest), sv(e.inds), sv(e.vals))
    if isinstance(e, Loop):
        inner = {k: v for k, v in m.items()}
        for p in e.params:
            inner.pop(p.name, None)
        inner.pop(e.ivar.name, None)
        return Loop(
            e.params,
            tuple(s(a) for a in e.inits),
            e.ivar,
            s(e.n),
            _sub_body(e.body, inner),
            e.stripmine,
            e.checkpoint,
        )
    if isinstance(e, WhileLoop):
        inner = {k: v for k, v in m.items()}
        for p in e.params:
            inner.pop(p.name, None)
        return WhileLoop(
            e.params,
            tuple(s(a) for a in e.inits),
            _sub_lambda(e.cond, m),
            _sub_body(e.body, inner),
            None if e.bound is None else s(e.bound),
        )
    if isinstance(e, If):
        return If(s(e.cond), _sub_body(e.then, m), _sub_body(e.els, m))
    if isinstance(e, WithAcc):
        return WithAcc(tuple(sv(a) for a in e.arrs), _sub_lambda(e.lam, m))
    if isinstance(e, UpdAcc):
        return UpdAcc(sv(e.acc), tuple(s(i) for i in e.idx), s(e.v))
    raise TypeError(f"subst_exp: unknown expression {type(e).__name__}")


def _sub_lambda(lam: Lambda, m: Mapping) -> Lambda:
    inner = {k: v for k, v in m.items()}
    for p in lam.params:
        inner.pop(p.name, None)
    return Lambda(lam.params, _sub_body(lam.body, inner))


def _sub_body(body: Body, m: Mapping) -> Body:
    if not m:
        return body
    m = dict(m)
    stms = []
    for stm in body.stms:
        stms.append(Stm(stm.pat, subst_exp(stm.exp, m)))
        for v in stm.pat:
            m.pop(v.name, None)
    result = tuple(_sub_atom(a, m) for a in body.result)
    return Body(tuple(stms), result)


def subst(node, m: Mapping):
    """Substitute free variables in a Body or Lambda."""
    if isinstance(node, Body):
        return _sub_body(node, m)
    if isinstance(node, Lambda):
        return _sub_lambda(node, m)
    raise TypeError(f"subst: unsupported node {type(node).__name__}")


# ---------------------------------------------------------------------------
# Alpha renaming (refreshing binders)
# ---------------------------------------------------------------------------


def rename_var(v: Var) -> Var:
    return Var(fresh(v.name), v.type)


def _refresh_exp(e: Exp, m: Mapping) -> Exp:
    """Refresh binders inside ``e`` while substituting ``m`` for free vars."""
    e = subst_exp(e, m)
    if isinstance(e, Map):
        return Map(refresh_lambda(e.lam), e.arrs, e.accs)
    if isinstance(e, Reduce):
        return Reduce(refresh_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, Scan):
        return Scan(refresh_lambda(e.lam), e.nes, e.arrs)
    if isinstance(e, ReduceByIndex):
        return ReduceByIndex(e.num_bins, refresh_lambda(e.lam), e.nes, e.inds, e.vals)
    if isinstance(e, Loop):
        new_params = tuple(rename_var(p) for p in e.params)
        new_ivar = rename_var(e.ivar)
        inner: Mapping = {p.name: np for p, np in zip(e.params, new_params)}
        inner[e.ivar.name] = new_ivar
        return Loop(new_params, e.inits, new_ivar, e.n, refresh_body(e.body, inner), e.stripmine, e.checkpoint)
    if isinstance(e, WhileLoop):
        new_params = tuple(rename_var(p) for p in e.params)
        inner = {p.name: np for p, np in zip(e.params, new_params)}
        cond_m = {p.name: np for p, np in zip(e.cond.params, new_params)}
        new_cond = Lambda(new_params, refresh_body(e.cond.body, cond_m))
        return WhileLoop(new_params, e.inits, new_cond, refresh_body(e.body, inner), e.bound)
    if isinstance(e, If):
        return If(e.cond, refresh_body(e.then, {}), refresh_body(e.els, {}))
    if isinstance(e, WithAcc):
        return WithAcc(e.arrs, refresh_lambda(e.lam))
    return e


def refresh_body(body: Body, m: Mapping | None = None) -> Body:
    """Alpha-rename every binder in ``body``; apply ``m`` to its free vars."""
    m = dict(m or {})
    stms = []
    for stm in body.stms:
        exp = _refresh_exp(stm.exp, m)
        new_pat = tuple(rename_var(v) for v in stm.pat)
        for v, nv in zip(stm.pat, new_pat):
            m[v.name] = nv
        stms.append(Stm(new_pat, exp))
    result = tuple(_sub_atom(a, m) for a in body.result)
    return Body(tuple(stms), result)


def refresh_lambda(lam: Lambda) -> Lambda:
    new_params = tuple(rename_var(p) for p in lam.params)
    m: Mapping = {p.name: np for p, np in zip(lam.params, new_params)}
    return Lambda(new_params, refresh_body(lam.body, m))


def inline_lambda(lam: Lambda, args: Iterable[Atom]) -> Body:
    """The body of ``lam`` with every binder refreshed and each parameter
    bound to the corresponding atom of ``args``.

    This is beta-reduction for our syntactic lambdas — the workhorse of the
    fusion engine, which splices producer bodies into consumer element
    functions.  Refreshing keeps the spliced copy SSA-unique even when the
    same lambda is inlined more than once.
    """
    args = tuple(args)
    if len(args) != len(lam.params):
        raise ValueError(
            f"inline_lambda: {len(lam.params)} parameters, {len(args)} arguments"
        )
    return refresh_body(lam.body, {p.name: a for p, a in zip(lam.params, args)})


# ---------------------------------------------------------------------------
# Misc structural helpers
# ---------------------------------------------------------------------------


def map_stms(body: Body, f: Callable[[Stm], Iterable[Stm]]) -> Body:
    """Rebuild ``body`` by expanding each statement through ``f`` (shallow)."""
    out = []
    for stm in body.stms:
        out.extend(f(stm))
    return Body(tuple(out), body.result)


def count_stms(node) -> int:
    """Total number of statements in a node, recursively (for tests)."""
    if isinstance(node, Fun):
        return count_stms(node.body)
    if isinstance(node, Lambda):
        return count_stms(node.body)
    if isinstance(node, Body):
        n = 0
        for stm in node.stms:
            n += 1 + count_stms_exp(stm.exp)
        return n
    raise TypeError(type(node).__name__)


def count_stms_exp(e: Exp) -> int:
    n = 0
    for lam in exp_lambdas(e):
        n += count_stms(lam.body)
    if isinstance(e, Loop):
        n += count_stms(e.body)
    elif isinstance(e, WhileLoop):
        n += count_stms(e.body)
    elif isinstance(e, If):
        n += count_stms(e.then) + count_stms(e.els)
    return n


def count_soacs(node) -> int:
    """Total number of SOAC statements (map/reduce/scan/hist/scatter) in a
    node, recursively — the fusion engine's progress metric."""
    if isinstance(node, Fun):
        return count_soacs(node.body)
    if isinstance(node, Lambda):
        return count_soacs(node.body)
    if not isinstance(node, Body):
        raise TypeError(type(node).__name__)
    n = 0
    for stm in node.stms:
        e = stm.exp
        if isinstance(e, (Map, Reduce, Scan, ReduceByIndex, Scatter)):
            n += 1
        for lam in exp_lambdas(e):
            n += count_soacs(lam.body)
        if isinstance(e, (Loop, WhileLoop)):
            n += count_soacs(e.body)
        elif isinstance(e, If):
            n += count_soacs(e.then) + count_soacs(e.els)
    return n


def all_bound_vars(node) -> Dict[str, Var]:
    """All variables bound anywhere inside a node (params, pats, ivars)."""
    out: Dict[str, Var] = {}

    def body(b: Body) -> None:
        for stm in b.stms:
            for v in stm.pat:
                out[v.name] = v
            exp(stm.exp)

    def lam(l: Lambda) -> None:
        for p in l.params:
            out[p.name] = p
        body(l.body)

    def exp(e: Exp) -> None:
        for l in exp_lambdas(e):
            lam(l)
        if isinstance(e, Loop):
            for p in e.params:
                out[p.name] = p
            out[e.ivar.name] = e.ivar
            body(e.body)
        elif isinstance(e, WhileLoop):
            for p in e.params:
                out[p.name] = p
            body(e.body)
        elif isinstance(e, If):
            body(e.then)
            body(e.els)

    if isinstance(node, Fun):
        for p in node.params:
            out[p.name] = p
        body(node.body)
    elif isinstance(node, Body):
        body(node)
    elif isinstance(node, Lambda):
        lam(node)
    else:
        raise TypeError(type(node).__name__)
    return out
