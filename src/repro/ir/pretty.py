"""Pretty-printer for the IR (Futhark-flavoured concrete syntax)."""
from __future__ import annotations

from .ast import (
    AtomExp,
    Atom,
    BinOp,
    Body,
    Cast,
    Concat,
    Exp,
    Fun,
    If,
    Index,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Size,
    Stm,
    UnOp,
    UpdAcc,
    Update,
    WhileLoop,
    WithAcc,
    ZerosLike,
)

__all__ = ["pretty", "pretty_exp"]

_BIN_SYMS = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "pow": "**",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "eq": "==",
    "ne": "!=",
    "and": "&&",
    "or": "||",
    "mod": "%",
}


def _atom(a: Atom) -> str:
    return repr(a)


def _atoms(atoms) -> str:
    return ", ".join(_atom(a) for a in atoms)


def _lam(lam: Lambda, ind: str) -> str:
    ps = " ".join(f"{p.name}: {p.type}" for p in lam.params)
    body = _body(lam.body, ind + "  ")
    return f"(\\{ps} ->\n{body}{ind})"


def pretty_exp(e: Exp, ind: str = "") -> str:
    if isinstance(e, AtomExp):
        return _atom(e.x)
    if isinstance(e, UnOp):
        return f"{e.op}({_atom(e.x)})"
    if isinstance(e, BinOp):
        sym = _BIN_SYMS.get(e.op)
        if sym:
            return f"{_atom(e.x)} {sym} {_atom(e.y)}"
        return f"{e.op}({_atom(e.x)}, {_atom(e.y)})"
    if isinstance(e, Select):
        return f"select({_atom(e.c)}, {_atom(e.t)}, {_atom(e.f)})"
    if isinstance(e, Cast):
        return f"{e.to}({_atom(e.x)})"
    if isinstance(e, Index):
        return f"{e.arr.name}[{_atoms(e.idx)}]"
    if isinstance(e, Update):
        return f"{e.arr.name} with [{_atoms(e.idx)}] <- {_atom(e.val)}"
    if isinstance(e, Iota):
        return f"iota({_atom(e.n)})"
    if isinstance(e, Replicate):
        return f"replicate({_atom(e.n)}, {_atom(e.v)})"
    if isinstance(e, ZerosLike):
        return f"zeros_like({_atom(e.x)})"
    if isinstance(e, ScratchLike):
        return f"scratch({_atom(e.n)}, like={_atom(e.x)})"
    if isinstance(e, Size):
        return f"length_{e.dim}({e.arr.name})"
    if isinstance(e, Reverse):
        return f"reverse({e.x.name})"
    if isinstance(e, Concat):
        return f"concat({e.x.name}, {e.y.name})"
    if isinstance(e, Map):
        args = _atoms(e.arrs)
        if e.accs:
            args += " ; accs=" + _atoms(e.accs)
        return f"map {_lam(e.lam, ind)} {args}"
    if isinstance(e, Reduce):
        return f"reduce {_lam(e.lam, ind)} ({_atoms(e.nes)}) {_atoms(e.arrs)}"
    if isinstance(e, Scan):
        return f"scan {_lam(e.lam, ind)} ({_atoms(e.nes)}) {_atoms(e.arrs)}"
    if isinstance(e, ReduceByIndex):
        return (
            f"reduce_by_index {_atom(e.num_bins)} {_lam(e.lam, ind)} "
            f"({_atoms(e.nes)}) {e.inds.name} {_atoms(e.vals)}"
        )
    if isinstance(e, Scatter):
        return f"scatter {e.dest.name} {e.inds.name} {e.vals.name}"
    if isinstance(e, Loop):
        hdr = ", ".join(f"{p.name} = {_atom(i)}" for p, i in zip(e.params, e.inits))
        ann = ""
        if e.stripmine:
            ann += f" @stripmine({e.stripmine})"
        if e.checkpoint != "iters":
            ann += f" @checkpoint({e.checkpoint})"
        body = _body(e.body, ind + "  ")
        return f"loop ({hdr}) for {e.ivar.name} < {_atom(e.n)}{ann} do\n{body}{ind}end"
    if isinstance(e, WhileLoop):
        hdr = ", ".join(f"{p.name} = {_atom(i)}" for p, i in zip(e.params, e.inits))
        cond = _lam(e.cond, ind)
        bound = "" if e.bound is None else f" @bound({_atom(e.bound)})"
        body = _body(e.body, ind + "  ")
        return f"loop ({hdr}) while {cond}{bound} do\n{body}{ind}end"
    if isinstance(e, If):
        t = _body(e.then, ind + "  ")
        f = _body(e.els, ind + "  ")
        return f"if {_atom(e.cond)}\n{ind}then\n{t}{ind}else\n{f}{ind}end"
    if isinstance(e, WithAcc):
        return f"withacc ({_atoms(e.arrs)}) {_lam(e.lam, ind)}"
    if isinstance(e, UpdAcc):
        return f"upd {e.acc.name}[{_atoms(e.idx)}] += {_atom(e.v)}"
    return f"<?{type(e).__name__}?>"


def _stm(stm: Stm, ind: str) -> str:
    pat = ", ".join(f"{v.name}: {v.type}" for v in stm.pat)
    return f"{ind}let {pat} = {pretty_exp(stm.exp, ind)}\n"


def _body(body: Body, ind: str) -> str:
    s = "".join(_stm(stm, ind) for stm in body.stms)
    s += f"{ind}in ({_atoms(body.result)})\n"
    return s


def pretty(node) -> str:
    """Render a Fun / Body / Lambda / Exp as concrete syntax."""
    if isinstance(node, Fun):
        ps = ", ".join(f"{p.name}: {p.type}" for p in node.params)
        return f"fun {node.name}({ps}) =\n{_body(node.body, '  ')}"
    if isinstance(node, Body):
        return _body(node, "")
    if isinstance(node, Lambda):
        return _lam(node, "")
    return pretty_exp(node)
