"""Type inference and checking for the IR.

``infer_exp_types`` computes the result types of a single expression from its
operand types (used by the builder and the AD transforms to construct
statements), and ``check_fun`` validates a whole function: scoping, arities,
element types, ranks, and accumulator placement.

Scalar ops are *elementwise rank-polymorphic*: operands may be arrays of any
rank (broadcast against scalars or same-rank arrays).  User-facing programs
produced by the tracer only apply them to scalars; the AD transform uses the
rank-polymorphic forms for whole-array adjoint updates.
"""
from __future__ import annotations

from typing import Dict, List, Tuple

from ..util import TypeError_
from .ast import (
    AtomExp,
    Atom,
    BINOPS,
    BinOp,
    Body,
    COMPARISONS,
    Cast,
    Concat,
    Exp,
    Fun,
    If,
    Index,
    Iota,
    Lambda,
    Loop,
    Map,
    Reduce,
    ReduceByIndex,
    Replicate,
    Reverse,
    Scan,
    Scatter,
    ScratchLike,
    Select,
    Size,
    Stm,
    UNOPS,
    UnOp,
    UpdAcc,
    Update,
    Var,
    WhileLoop,
    WithAcc,
    ZerosLike,
)
from .types import (
    AccType,
    ArrayType,
    BOOL,
    Scalar,
    Type,
    elem_type,
    is_integral,
    rank_of,
    with_rank,
)

__all__ = ["infer_exp_types", "check_fun", "check_lambda_arity"]


def _ty(a: Atom) -> Type:
    return a.type


def _expect_elem_eq(op: str, x: Atom, y: Atom) -> Scalar:
    ex, ey = elem_type(_ty(x)), elem_type(_ty(y))
    if ex is not ey:
        raise TypeError_(f"{op}: element types differ: {ex} vs {ey} ({x!r}, {y!r})")
    return ex


def _broadcast_rank(op: str, *atoms: Atom) -> int:
    ranks = [rank_of(_ty(a)) for a in atoms]
    nz = [r for r in ranks if r > 0]
    if nz and any(r != nz[0] for r in nz):
        raise TypeError_(f"{op}: mismatched operand ranks {ranks}")
    return max(ranks)


def _elem_of_array(v: Var, what: str) -> Tuple[Scalar, int]:
    t = _ty(v)
    if not isinstance(t, ArrayType):
        raise TypeError_(f"{what}: expected array, got {t} ({v!r})")
    return t.elem, t.rank


def infer_exp_types(e: Exp) -> Tuple[Type, ...]:
    """Result types of ``e``, assuming its operands' recorded types."""
    if isinstance(e, AtomExp):
        return (_ty(e.x),)

    if isinstance(e, UnOp):
        if e.op not in UNOPS:
            raise TypeError_(f"unknown unop {e.op}")
        t = _ty(e.x)
        if e.op == "not":
            if elem_type(t) is not BOOL:
                raise TypeError_("not: operand must be bool")
            return (t,)
        if elem_type(t) is BOOL:
            raise TypeError_(f"{e.op}: operand must be numeric")
        return (t,)

    if isinstance(e, BinOp):
        if e.op not in BINOPS:
            raise TypeError_(f"unknown binop {e.op}")
        rank = _broadcast_rank(e.op, e.x, e.y)
        if e.op in ("and", "or"):
            if elem_type(_ty(e.x)) is not BOOL or elem_type(_ty(e.y)) is not BOOL:
                raise TypeError_(f"{e.op}: operands must be bool")
            return (with_rank(BOOL, rank),)
        elem = _expect_elem_eq(e.op, e.x, e.y)
        if e.op in COMPARISONS:
            return (with_rank(BOOL, rank),)
        if elem is BOOL:
            raise TypeError_(f"{e.op}: operands must be numeric")
        return (with_rank(elem, rank),)

    if isinstance(e, Select):
        if elem_type(_ty(e.c)) is not BOOL:
            raise TypeError_("select: condition must be bool")
        elem = _expect_elem_eq("select", e.t, e.f)
        rank = _broadcast_rank("select", e.c, e.t, e.f)
        return (with_rank(elem, rank),)

    if isinstance(e, Cast):
        return (with_rank(e.to, rank_of(_ty(e.x))),)

    if isinstance(e, Index):
        elem, rank = _elem_of_array(e.arr, "index")
        if len(e.idx) == 0 or len(e.idx) > rank:
            raise TypeError_(f"index: {len(e.idx)} indices into rank-{rank} array")
        for i in e.idx:
            if not is_integral(_ty(i)) or rank_of(_ty(i)) != 0:
                raise TypeError_(f"index: indices must be integral scalars, got {_ty(i)}")
        return (with_rank(elem, rank - len(e.idx)),)

    if isinstance(e, Update):
        elem, rank = _elem_of_array(e.arr, "update")
        if len(e.idx) == 0 or len(e.idx) > rank:
            raise TypeError_(f"update: {len(e.idx)} indices into rank-{rank} array")
        want = rank - len(e.idx)
        if rank_of(_ty(e.val)) != want or elem_type(_ty(e.val)) is not elem:
            raise TypeError_(
                f"update: value type {_ty(e.val)} does not match slot "
                f"{with_rank(elem, want)}"
            )
        return (_ty(e.arr),)

    if isinstance(e, Iota):
        if not is_integral(_ty(e.n)):
            raise TypeError_("iota: count must be integral")
        if not is_integral(e.elem):
            raise TypeError_("iota: element type must be integral")
        return (ArrayType(e.elem, 1),)

    if isinstance(e, Replicate):
        if not is_integral(_ty(e.n)):
            raise TypeError_("replicate: count must be integral")
        t = _ty(e.v)
        if isinstance(t, AccType):
            raise TypeError_("replicate: cannot replicate accumulators")
        return (with_rank(elem_type(t), rank_of(t) + 1),)

    if isinstance(e, ZerosLike):
        t = _ty(e.x)
        if isinstance(t, AccType):
            raise TypeError_("zeros_like: cannot zero accumulators")
        return (t,)

    if isinstance(e, ScratchLike):
        if not is_integral(_ty(e.n)):
            raise TypeError_("scratch: count must be integral")
        t = _ty(e.x)
        return (with_rank(elem_type(t), rank_of(t) + 1),)

    if isinstance(e, Size):
        t = _ty(e.arr)
        if isinstance(t, (ArrayType, AccType)):
            rank = t.rank
        else:
            raise TypeError_(f"size: expected array or accumulator, got {t}")
        if not (0 <= e.dim < rank):
            raise TypeError_(f"size: dim {e.dim} out of range for rank {rank}")
        return (Scalar.I64,)

    if isinstance(e, Reverse):
        _elem_of_array(e.x, "reverse")
        return (_ty(e.x),)

    if isinstance(e, Concat):
        ex, rx = _elem_of_array(e.x, "concat")
        ey, ry = _elem_of_array(e.y, "concat")
        if ex is not ey or rx != ry:
            raise TypeError_("concat: operand types differ")
        return (_ty(e.x),)

    if isinstance(e, Map):
        lam = e.lam
        if len(e.arrs) == 0:
            raise TypeError_("map: needs at least one array argument")
        if len(lam.params) != len(e.arrs) + len(e.accs):
            raise TypeError_(
                f"map: lambda takes {len(lam.params)} params, expected "
                f"{len(e.arrs)} array elems + {len(e.accs)} accumulators"
            )
        for v, p in zip(e.arrs, lam.params):
            elem, rank = _elem_of_array(v, "map")
            want = with_rank(elem, rank - 1)
            if p.type != want:
                raise TypeError_(f"map: param {p!r}: {p.type} does not match element {want}")
        for v, p in zip(e.accs, lam.params[len(e.arrs):]):
            if not isinstance(_ty(v), AccType) or p.type != _ty(v):
                raise TypeError_(f"map: accumulator param {p!r} mismatch with {v!r}")
        res = [a.type for a in lam.body.result]
        n_acc = len(e.accs)
        if len(res) < n_acc:
            raise TypeError_("map: lambda must return all accumulators")
        for v, t in zip(e.accs, res[:n_acc]):
            if t != _ty(v):
                raise TypeError_("map: accumulator results must lead the lambda's results")
        out: List[Type] = [t for t in res[:n_acc]]
        for t in res[n_acc:]:
            if isinstance(t, AccType):
                raise TypeError_("map: non-leading accumulator result")
            out.append(with_rank(elem_type(t), rank_of(t) + 1))
        return tuple(out)

    if isinstance(e, (Reduce, Scan)):
        # Canonical operators are (k+k) -> k over k arrays whose element
        # types equal the neutral elements.  The fusion engine additionally
        # produces *redomap* shapes: m element arrays (m need not equal k)
        # with a (k+m) -> k lambda whose element parameters are typed by the
        # arrays and whose accumulators/results are typed by the neutral
        # elements (the map part is folded into the operator).
        k = len(e.nes)
        m = len(e.arrs)
        lam = e.lam
        if m == 0:
            raise TypeError_("reduce/scan: needs at least one array argument")
        if len(lam.params) != k + m or len(lam.body.result) != k:
            raise TypeError_(
                f"reduce/scan: operator must be ({k}+{m}) -> {k}, got "
                f"{len(lam.params)} -> {len(lam.body.result)}"
            )
        for i, ne in enumerate(e.nes):
            nt = _ty(ne)
            if lam.params[i].type != nt:
                raise TypeError_(f"reduce/scan: accumulator param {i} type mismatch")
            if lam.body.result[i].type != nt:
                raise TypeError_(f"reduce/scan: operator result {i} type mismatch")
        for j, v in enumerate(e.arrs):
            elem, rank = _elem_of_array(v, "reduce/scan")
            et = with_rank(elem, rank - 1)
            if lam.params[k + j].type != et:
                raise TypeError_(f"reduce/scan: element param {j} type mismatch")
        if isinstance(e, Reduce):
            return tuple(_ty(ne) for ne in e.nes)
        return tuple(with_rank(elem_type(_ty(ne)), rank_of(_ty(ne)) + 1) for ne in e.nes)

    if isinstance(e, ReduceByIndex):
        if not is_integral(_ty(e.num_bins)):
            raise TypeError_("reduce_by_index: bin count must be integral")
        _elem_of_array(e.inds, "reduce_by_index")
        if not is_integral(_ty(e.inds)):
            raise TypeError_("reduce_by_index: indices must be integral")
        # Like reduce/scan, the operator is (k+m) -> k: canonical hists have
        # m == k value arrays typed like the neutral elements; fused
        # (redomap-shaped) hists may draw their contributions from m
        # producer input arrays instead.
        k = len(e.nes)
        m = len(e.vals)
        if m == 0 or len(e.lam.params) != k + m or len(e.lam.body.result) != k:
            raise TypeError_("reduce_by_index: operator arity mismatch")
        for i, ne in enumerate(e.nes):
            nt = _ty(ne)
            if e.lam.params[i].type != nt or e.lam.body.result[i].type != nt:
                raise TypeError_("reduce_by_index: neutral element type mismatch")
        for j, v in enumerate(e.vals):
            elem, rank = _elem_of_array(v, "reduce_by_index")
            if e.lam.params[k + j].type != with_rank(elem, rank - 1):
                raise TypeError_("reduce_by_index: value element type mismatch")
        return tuple(with_rank(elem_type(_ty(ne)), rank_of(_ty(ne)) + 1) for ne in e.nes)

    if isinstance(e, Scatter):
        elem_d, rank_d = _elem_of_array(e.dest, "scatter")
        _elem_of_array(e.inds, "scatter")
        if not is_integral(_ty(e.inds)):
            raise TypeError_("scatter: indices must be integral")
        elem_v, rank_v = _elem_of_array(e.vals, "scatter")
        if elem_v is not elem_d or rank_v != rank_d:
            raise TypeError_("scatter: values must match destination element type/rank")
        return (_ty(e.dest),)

    if isinstance(e, Loop):
        if len(e.params) != len(e.inits):
            raise TypeError_("loop: #params != #inits")
        for p, i in zip(e.params, e.inits):
            if _ty(i) != p.type:
                raise TypeError_(f"loop: init for {p!r}: {_ty(i)} != {p.type}")
        if not is_integral(_ty(e.n)):
            raise TypeError_("loop: trip count must be integral")
        if not is_integral(e.ivar.type):
            raise TypeError_("loop: induction variable must be integral")
        if len(e.body.result) != len(e.params):
            raise TypeError_("loop: body must return one value per loop param")
        for p, r in zip(e.params, e.body.result):
            if _ty(r) != p.type:
                raise TypeError_(f"loop: body result for {p!r}: {_ty(r)} != {p.type}")
        return tuple(p.type for p in e.params)

    if isinstance(e, WhileLoop):
        if len(e.params) != len(e.inits) or len(e.body.result) != len(e.params):
            raise TypeError_("while: arity mismatch")
        if len(e.cond.body.result) != 1 or e.cond.body.result[0].type is not BOOL:
            raise TypeError_("while: condition must return a single bool")
        return tuple(p.type for p in e.params)

    if isinstance(e, If):
        if _ty(e.cond) is not BOOL:
            raise TypeError_("if: condition must be a boolean scalar")
        tt = tuple(a.type for a in e.then.result)
        tf = tuple(a.type for a in e.els.result)
        if tt != tf:
            raise TypeError_(f"if: branch types differ: {tt} vs {tf}")
        return tt

    if isinstance(e, WithAcc):
        lam = e.lam
        if len(lam.params) != len(e.arrs):
            raise TypeError_("withacc: lambda must take one accumulator per array")
        for v, p in zip(e.arrs, lam.params):
            elem, rank = _elem_of_array(v, "withacc")
            if p.type != AccType(elem, rank):
                raise TypeError_(f"withacc: param {p!r} must be acc of {v!r}")
        res = lam.body.result
        n = len(e.arrs)
        if len(res) < n:
            raise TypeError_("withacc: lambda must return all accumulators first")
        for v, r in zip(e.arrs, res[:n]):
            elem, rank = _elem_of_array(v, "withacc")
            if r.type != AccType(elem, rank):
                raise TypeError_("withacc: leading results must be the accumulators")
        out = [v.type for v in e.arrs]
        for r in res[n:]:
            # Secondary results may include *inherited* accumulators (created
            # by an enclosing WithAcc and threaded through this region) —
            # they pass through unchanged.
            out.append(r.type)
        return tuple(out)

    if isinstance(e, UpdAcc):
        t = _ty(e.acc)
        if not isinstance(t, AccType):
            raise TypeError_(f"upd: first operand must be an accumulator, got {t}")
        if len(e.idx) > t.rank:
            raise TypeError_("upd: too many indices")
        want = t.rank - len(e.idx)
        if rank_of(_ty(e.v)) != want or elem_type(_ty(e.v)) is not t.elem:
            raise TypeError_(
                f"upd: value type {_ty(e.v)} does not match slot "
                f"{with_rank(t.elem, want)}"
            )
        return (t,)

    raise TypeError_(f"infer_exp_types: unknown expression {type(e).__name__}")


# ---------------------------------------------------------------------------
# Whole-function checking
# ---------------------------------------------------------------------------


class _Checker:
    def __init__(self) -> None:
        self.scope: Dict[str, Type] = {}

    def atom(self, a: Atom) -> None:
        if isinstance(a, Var):
            if a.name not in self.scope:
                raise TypeError_(f"use of unbound variable {a.name}")
            if self.scope[a.name] != a.type:
                raise TypeError_(
                    f"variable {a.name} used at type {a.type}, bound at {self.scope[a.name]}"
                )

    def bind(self, v: Var) -> None:
        self.scope[v.name] = v.type

    def body(self, b: Body) -> Tuple[Type, ...]:
        saved = dict(self.scope)
        for stm in b.stms:
            self.stm(stm)
        for a in b.result:
            self.atom(a)
        tys = tuple(a.type for a in b.result)
        self.scope = saved
        return tys

    def lam(self, l: Lambda) -> Tuple[Type, ...]:
        saved = dict(self.scope)
        for p in l.params:
            self.bind(p)
        tys = self.body(l.body)
        self.scope = saved
        return tys

    def stm(self, stm: Stm) -> None:
        from .traversal import exp_atoms, exp_lambdas

        for a in exp_atoms(stm.exp):
            self.atom(a)
        for l in exp_lambdas(stm.exp):
            self.lam(l)
        e = stm.exp
        if isinstance(e, Loop):
            saved = dict(self.scope)
            for p in e.params:
                self.bind(p)
            self.bind(e.ivar)
            self.body(e.body)
            self.scope = saved
        elif isinstance(e, WhileLoop):
            saved = dict(self.scope)
            for p in e.params:
                self.bind(p)
            self.body(e.body)
            self.scope = saved
        elif isinstance(e, If):
            self.body(e.then)
            self.body(e.els)
        tys = infer_exp_types(e)
        if len(tys) != len(stm.pat):
            raise TypeError_(
                f"statement binds {len(stm.pat)} vars but expression produces "
                f"{len(tys)}: {stm.pat}"
            )
        for v, t in zip(stm.pat, tys):
            if v.type != t:
                raise TypeError_(f"binding {v.name}: declared {v.type}, inferred {t}")
            self.bind(v)


def check_fun(fun: Fun) -> Tuple[Type, ...]:
    """Type-check a function; returns its result types.  Raises TypeError_."""
    c = _Checker()
    seen = set()
    for p in fun.params:
        if p.name in seen:
            raise TypeError_(f"duplicate parameter {p.name}")
        seen.add(p.name)
        c.bind(p)
    return c.body(fun.body)


def check_lambda_arity(lam: Lambda, n_params: int, n_results: int, what: str) -> None:
    if len(lam.params) != n_params or len(lam.body.result) != n_results:
        raise TypeError_(
            f"{what}: lambda must be {n_params} -> {n_results}, got "
            f"{len(lam.params)} -> {len(lam.body.result)}"
        )
