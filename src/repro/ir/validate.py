"""Structural validation beyond typechecking.

The key extra invariant is the paper's accumulator discipline (§5.4): while an
array is turned into an accumulator by ``withacc``, the underlying array may
not be used, accumulators may not escape their region, and each accumulator
value is used *linearly* (consumed exactly once by ``UpdAcc``/``Map``/``If``
threading until returned).  We check a pragmatic SSA version of this: every
accumulator-typed variable is referenced at most once.
"""
from __future__ import annotations

from typing import Dict, Set

from ..util import IRError
from .ast import Body, Exp, Fun, If, Lambda, Loop, Map, Stm, Var, WhileLoop, WithAcc
from .traversal import exp_atoms, exp_lambdas
from .types import AccType

__all__ = ["validate_fun"]


def _walk_body(body: Body, acc_used: Dict[str, int]) -> None:
    for stm in body.stms:
        _walk_exp(stm.exp, acc_used)
        for v in stm.pat:
            if isinstance(v.type, AccType):
                acc_used.setdefault(v.name, 0)
    for a in body.result:
        if isinstance(a, Var) and isinstance(a.type, AccType):
            _use_acc(a, acc_used)


def _use_acc(v: Var, acc_used: Dict[str, int]) -> None:
    acc_used[v.name] = acc_used.get(v.name, 0) + 1
    if acc_used[v.name] > 1:
        raise IRError(f"accumulator {v.name} used more than once (non-linear use)")


def _walk_exp(e: Exp, acc_used: Dict[str, int]) -> None:
    for a in exp_atoms(e):
        if isinstance(a, Var) and isinstance(a.type, AccType):
            _use_acc(a, acc_used)
    for lam in exp_lambdas(e):
        inner = dict(acc_used)
        for p in lam.params:
            if isinstance(p.type, AccType):
                inner.setdefault(p.name, 0)
        _walk_body(lam.body, inner)
    if isinstance(e, Loop):
        inner = dict(acc_used)
        for p in e.params:
            if isinstance(p.type, AccType):
                inner.setdefault(p.name, 0)
        _walk_body(e.body, inner)
    elif isinstance(e, WhileLoop):
        _walk_body(e.body, dict(acc_used))
    elif isinstance(e, If):
        # Each branch may consume the same accumulators (only one runs).
        _walk_body(e.then, dict(acc_used))
        _walk_body(e.els, dict(acc_used))


def validate_fun(fun: Fun) -> None:
    """Raise IRError on accumulator-discipline violations."""
    for p in fun.params:
        if isinstance(p.type, AccType):
            raise IRError("function parameters may not be accumulators")
    for r in fun.body.result:
        if isinstance(r.type, AccType):
            raise IRError("function results may not be accumulators")
    _walk_body(fun.body, {})
