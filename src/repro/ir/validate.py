"""Structural validation beyond typechecking: the accumulator discipline.

The paper's §5.4 invariants for accumulators, checked as a region/escape
analysis over the SSA program:

* every ``withacc`` opens a fresh *region*; the accumulators handed to its
  lambda belong to that region, and while the region is live the underlying
  arrays may not be read (the accumulator is the only view);
* accumulators may not *escape* their region: the lambda's leading results
  must be the region's own accumulators, and any accumulator appearing among
  the secondary results must belong to a still-live *enclosing* region
  (inherited pass-through — how nested ``withacc``s thread an outer
  accumulator straight through, see ``opt/acc_opt``);
* accumulators are consumed *linearly*: within one scope each accumulator
  value is used at most once (``UpdAcc``, threading through ``Map``/``Loop``/
  ``If``, or being returned all count as the single use);
* loop-carried accumulators thread through regions: a ``Loop``/``WhileLoop``
  accumulator parameter inherits the region of its init and the body must
  return an accumulator of the same region in that position;
* accumulators never cross the function boundary (no acc params/results) and
  only accumulator-producing expressions (``withacc``/``upd``/threading) may
  bind one.

``validate_fun`` raises ``IRError`` on the first violation.  It is invoked on
the trace and post-AD paths and by the pass-boundary verifier
(``ir/verify.py``).
"""
from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..util import IRError
from .ast import (
    AtomExp,
    Body,
    Exp,
    Fun,
    If,
    Lambda,
    Loop,
    Map,
    Size,
    Stm,
    UpdAcc,
    Var,
    WhileLoop,
    WithAcc,
)
from .traversal import exp_atoms, exp_lambdas
from .types import AccType

__all__ = ["validate_fun"]


class _Regions:
    """Region state threaded through one validation walk."""

    __slots__ = ("region", "active", "frozen", "next_rid")

    def __init__(self) -> None:
        #: accumulator variable name -> id of its originating withacc region
        self.region: Dict[str, int] = {}
        #: region ids whose withacc is still open
        self.active: Set[int] = set()
        #: underlying array name -> region id freezing it against reads
        self.frozen: Dict[str, int] = {}
        self.next_rid = 0


def _use_acc(v: Var, used: Dict[str, int], st: _Regions) -> None:
    used[v.name] = used.get(v.name, 0) + 1
    if used[v.name] > 1:
        raise IRError(
            f"accumulator {v.name} used more than once (non-linear use)"
        )
    rid = st.region.get(v.name)
    if rid is not None and rid not in st.active:
        raise IRError(f"accumulator {v.name} escapes its withacc region")


def _region_of(a, st: _Regions, ctx: str) -> Optional[int]:
    """The region of an accumulator-typed atom; raises if it has none."""
    if not (isinstance(a, Var) and isinstance(a.type, AccType)):
        return None
    rid = st.region.get(a.name)
    if rid is None:
        raise IRError(f"accumulator {a.name} has no originating withacc ({ctx})")
    return rid


def _bind_acc(v: Var, rid: Optional[int], st: _Regions, ctx: str) -> None:
    if not isinstance(v.type, AccType):
        return
    if rid is None:
        raise IRError(f"{ctx} cannot bind accumulator {v.name}")
    st.region[v.name] = rid


def _walk_body(body: Body, used: Dict[str, int], st: _Regions) -> None:
    for stm in body.stms:
        _walk_stm(stm, used, st)
    for a in body.result:
        if isinstance(a, Var):
            if isinstance(a.type, AccType):
                _use_acc(a, used, st)
            elif a.name in st.frozen:
                raise IRError(
                    f"array {a.name} returned while an accumulator view "
                    f"of it is live"
                )


def _read_atoms(e: Exp, used: Dict[str, int], st: _Regions) -> None:
    if isinstance(e, Size):
        # A length observation is not a consumption: linearity governs the
        # accumulator's *write view*, and ``acc_opt`` legitimately reads
        # ``length(acc)`` for the histogram bin count while the accumulator
        # is still to be updated.  (Likewise harmless on a frozen array.)
        a = e.arr
        if isinstance(a.type, AccType):
            rid = st.region.get(a.name)
            if rid is not None and rid not in st.active:
                raise IRError(
                    f"accumulator {a.name} escapes its withacc region"
                )
        return
    for a in exp_atoms(e):
        if isinstance(a, Var):
            if isinstance(a.type, AccType):
                _use_acc(a, used, st)
            elif a.name in st.frozen:
                raise IRError(
                    f"array {a.name} read while an accumulator view of it "
                    f"is live (inside its withacc region)"
                )


def _walk_plain_lambda(lam: Lambda, used: Dict[str, int], st: _Regions) -> None:
    inner = dict(used)
    for p in lam.params:
        if isinstance(p.type, AccType):
            inner.setdefault(p.name, 0)
    _walk_body(lam.body, inner, st)


def _walk_stm(stm: Stm, used: Dict[str, int], st: _Regions) -> None:
    e = stm.exp
    if isinstance(e, WithAcc):
        _read_atoms(e, used, st)
        _walk_withacc(stm, e, used, st)
        return
    _read_atoms(e, used, st)

    if isinstance(e, UpdAcc):
        rid = _region_of(e.acc, st, "upd")
        for v in stm.pat:
            _bind_acc(v, rid, st, "upd")
    elif isinstance(e, AtomExp):
        rid = (
            _region_of(e.x, st, "copy")
            if isinstance(e.x, Var) and isinstance(e.x.type, AccType)
            else None
        )
        for v in stm.pat:
            _bind_acc(v, rid, st, "copy")
    elif isinstance(e, Map):
        _walk_map(stm, e, used, st)
    elif isinstance(e, Loop):
        _walk_loop_like(stm, e.params, e.inits, e.body, used, st, extra=(e.ivar,))
    elif isinstance(e, WhileLoop):
        rids = _walk_loop_like(stm, e.params, e.inits, e.body, used, st)
        # The cond lambda shares the loop's parameters (same binders).
        inner = dict(used)
        for p in e.cond.params:
            if isinstance(p.type, AccType):
                st.region.setdefault(p.name, rids.get(p.name, -1))
                inner.setdefault(p.name, 0)
        _walk_body(e.cond.body, inner, st)
    elif isinstance(e, If):
        then_r = _walk_branch(e.then, used, st)
        els_r = _walk_branch(e.els, used, st)
        for i, v in enumerate(stm.pat):
            if isinstance(v.type, AccType):
                rt = then_r[i] if i < len(then_r) else None
                re_ = els_r[i] if i < len(els_r) else None
                if rt is None or rt != re_:
                    raise IRError(
                        f"if branches return accumulators of different "
                        f"regions in position {i}"
                    )
                _bind_acc(v, rt, st, "if")
    else:
        for lam in exp_lambdas(e):
            _walk_plain_lambda(lam, used, st)
        for v in stm.pat:
            if isinstance(v.type, AccType):
                raise IRError(
                    f"{type(e).__name__} cannot produce accumulator {v.name}"
                )


def _walk_branch(body: Body, used: Dict[str, int], st: _Regions) -> List[Optional[int]]:
    # Each branch may consume the same accumulators (only one runs), so each
    # walks a private copy of the linear-use counts.
    _walk_body(body, dict(used), st)
    return [
        st.region.get(a.name)
        if isinstance(a, Var) and isinstance(a.type, AccType)
        else None
        for a in body.result
    ]


def _walk_map(stm: Stm, e: Map, used: Dict[str, int], st: _Regions) -> None:
    n_acc = len(e.accs)
    rids = [_region_of(a, st, "map acc") for a in e.accs]
    lam = e.lam
    inner = dict(used)
    # Lambda params are (elem..., acc...): the trailing n_acc params inherit
    # the regions of the threaded accumulators (§5.4 implicit conversion).
    acc_params = lam.params[len(lam.params) - n_acc :] if n_acc else ()
    for p, rid in zip(acc_params, rids):
        if isinstance(p.type, AccType) and rid is not None:
            st.region[p.name] = rid
        inner.setdefault(p.name, 0)
    _walk_body(lam.body, inner, st)
    # Leading lambda results re-emerge as the threaded accumulators and must
    # stay in their regions.
    for i, rid in enumerate(rids):
        if i < len(lam.body.result):
            r = lam.body.result[i]
            if _region_of(r, st, "map result") != rid:
                raise IRError(
                    f"map lambda result {i} does not return the threaded "
                    f"accumulator's region"
                )
    for v, rid in zip(stm.pat[:n_acc], rids):
        _bind_acc(v, rid, st, "map")
    for v in stm.pat[n_acc:]:
        if isinstance(v.type, AccType):
            raise IRError(
                f"map binds accumulator {v.name} outside its threaded "
                f"accumulator results"
            )


def _walk_loop_like(
    stm: Stm,
    params,
    inits,
    body: Body,
    used: Dict[str, int],
    st: _Regions,
    extra=(),
) -> Dict[str, int]:
    """Loop/while: acc params inherit their init's region; the body must
    return an accumulator of the same region in that position (linear
    threading of loop-carried accumulators)."""
    rids: Dict[str, int] = {}
    for i, (p, init) in enumerate(zip(params, inits)):
        if isinstance(p.type, AccType):
            rid = _region_of(init, st, "loop init")
            if rid is None:
                raise IRError(
                    f"loop accumulator parameter {p.name} must be "
                    f"initialised from an accumulator"
                )
            st.region[p.name] = rid
            rids[p.name] = rid
    inner = dict(used)
    for p in params:
        if isinstance(p.type, AccType):
            inner.setdefault(p.name, 0)
    _walk_body(body, inner, st)
    for i, p in enumerate(params):
        if isinstance(p.type, AccType) and i < len(body.result):
            r = body.result[i]
            if _region_of(r, st, "loop result") != rids.get(p.name):
                raise IRError(
                    f"loop-carried accumulator {p.name} is not threaded "
                    f"linearly (body result {i} left its region)"
                )
    for i, v in enumerate(stm.pat):
        if isinstance(v.type, AccType):
            if i >= len(params) or params[i].name not in rids:
                raise IRError(
                    f"loop binds accumulator {v.name} in a non-accumulator "
                    f"position"
                )
            _bind_acc(v, rids[params[i].name], st, "loop")
    return rids


def _walk_withacc(stm: Stm, e: WithAcc, used: Dict[str, int], st: _Regions) -> None:
    rid = st.next_rid
    st.next_rid += 1
    st.active.add(rid)
    n = len(e.arrs)
    for a in e.arrs:
        if a.name in st.frozen:
            raise IRError(
                f"array {a.name} already has a live accumulator "
                f"(nested withacc over the same array)"
            )
        st.frozen[a.name] = rid
    lam = e.lam
    for p in lam.params:
        if isinstance(p.type, AccType):
            st.region[p.name] = rid
    inner = dict(used)
    for p in lam.params:
        inner.setdefault(p.name, 0)
    _walk_body(lam.body, inner, st)
    # The withacc lambda runs exactly once, so consumption of *outer*
    # accumulators inside it counts in the enclosing scope too (that is how
    # an inherited accumulator threads through a nested region).
    for k in list(used):
        if inner.get(k, 0) > used[k]:
            used[k] = inner[k]
    # Leading results: the region's own accumulators, returned to die here.
    for i in range(min(n, len(lam.body.result))):
        r = lam.body.result[i]
        if _region_of(r, st, "withacc result") != rid:
            raise IRError(
                f"withacc lambda result {i} must return this region's own "
                f"accumulator"
            )
    # Secondary results: accumulators may only pass through if they belong
    # to a still-live enclosing region — the region's own accs escaping here
    # is exactly the §5.4 escape violation.
    sec_rids: List[Optional[int]] = []
    for r in lam.body.result[n:]:
        if isinstance(r, Var) and isinstance(r.type, AccType):
            r_rid = _region_of(r, st, "withacc secondary result")
            if r_rid == rid:
                raise IRError(
                    f"accumulator {r.name} escapes its withacc region via "
                    f"a secondary result"
                )
            if r_rid not in st.active:
                raise IRError(
                    f"accumulator {r.name} escapes its withacc region "
                    f"(region already closed)"
                )
            sec_rids.append(r_rid)
        else:
            sec_rids.append(None)
    st.active.discard(rid)
    for a in e.arrs:
        st.frozen.pop(a.name, None)
    for v in stm.pat[:n]:
        if isinstance(v.type, AccType):
            raise IRError(
                f"withacc result {v.name} must be the updated array, not an "
                f"accumulator"
            )
    for v, r_rid in zip(stm.pat[n:], sec_rids):
        if isinstance(v.type, AccType):
            _bind_acc(v, r_rid, st, "withacc secondary")


def validate_fun(fun: Fun) -> None:
    """Raise IRError on accumulator-discipline violations (paper §5.4)."""
    for p in fun.params:
        if isinstance(p.type, AccType):
            raise IRError("function parameters may not be accumulators")
    for r in fun.body.result:
        if isinstance(r.type, AccType):
            raise IRError("function results may not be accumulators")
    _walk_body(fun.body, {}, _Regions())
