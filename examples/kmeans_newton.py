"""k-means clustering by Newton's method (paper §7.4, Case Study 1).

The cost function is written with nested map/reduce; its gradient comes
from one reverse pass and the (diagonal) Hessian from nesting forward over
reverse — ``jvp(vjp(f))`` with an all-ones tangent — exactly the
sparsity-through-seed-vectors trick the paper demonstrates.

Run:  python examples/kmeans_newton.py
"""
import numpy as np

import repro as rp
from repro.apps import datagen, kmeans


def main() -> None:
    k, n, d = 5, 2000, 6
    points, centres = datagen.kmeans_instance(k, n, d, seed=42)

    f = rp.compile(kmeans.build_ir(n, k, d))
    gradf = rp.grad(f, wrt=[1])
    hessf = rp.hessian_diag(f, wrt=1)  # jvp ∘ vjp, one pass

    print(f"k-means: n={n} points, d={d}, k={k}")
    print(f"{'iter':>4s} {'cost':>14s}")
    c = centres.copy()
    for it in range(8):
        cost = f(points, c)
        print(f"{it:4d} {cost:14.2f}")
        g = gradf(points, c)
        h = hessf(points, c).reshape(c.shape)
        h = np.where(np.abs(h) < 1e-12, 1.0, h)
        c = c - g / h
    print(f"{'fin':>4s} {f(points, c):14.2f}")

    # Validate against the hand-written histogram method (the paper's
    # "manual" comparator).
    g_manual, h_manual = kmeans.grad_hess_manual(points, c)
    g_ad = gradf(points, c)
    print(f"\nmax |grad_AD − grad_manual| = {np.abs(g_ad - g_manual).max():.2e}")


if __name__ == "__main__":
    main()
