"""Fitting a Gaussian mixture by gradient descent on the ADBench GMM
objective (paper §7.6, Case Study 3).

The objective is a nested-parallel program (maps over points and
components, a sequential triangular solve per row); reverse AD produces
its full gradient in one pass, with the §6.1 accumulator rewrites turning
the matmul-like adjoints into dense reductions.

Run:  python examples/gmm_fit.py
"""
import numpy as np

import repro as rp
from repro.apps import datagen, gmm


def main() -> None:
    n, d, K = 400, 4, 4
    alphas, means, icf, x, _ = datagen.gmm_instance(n, d, K, seed=7)
    # Make the data actually mixture-like so the fit is visible.
    rng = np.random.default_rng(7)
    true_means = rng.standard_normal((K, d)) * 3.0
    assign = rng.integers(0, K, n)
    x = true_means[assign] + rng.standard_normal((n, d))

    f = rp.compile(gmm.build_ir(n, d, K))
    vg = rp.value_and_grad(f, wrt=[0, 1, 2])

    print(f"GMM: n={n} points, d={d}, K={K}")
    lr = 2e-4

    def clip(g, lim=50.0):
        n2 = np.linalg.norm(g)
        return g if n2 <= lim else g * (lim / n2)

    for it in range(20):
        loss, (ga, gm, gi) = vg(alphas, means, icf, x)
        if it % 4 == 0:
            print(f"  iter {it:3d}  -log-likelihood = {float(loss):12.3f}")
        alphas -= lr * clip(ga)
        means -= lr * clip(gm)
        icf -= lr * clip(gi)
    print(f"  final     -log-likelihood = {float(f(alphas, means, icf, x)):12.3f}")

    # Cross-check the AD gradient against the hand-derived one.
    ga, gm, gi = rp.grad(f, wrt=[0, 1, 2])(alphas, means, icf, x)
    ma, mm, mi = gmm.grad_manual(alphas, means, icf, x)
    print(f"\nmax |AD − manual|: alphas {np.abs(ga-ma).max():.2e}, "
          f"means {np.abs(gm-mm).max():.2e}, icf {np.abs(gi-mi).max():.2e}")


if __name__ == "__main__":
    main()
