"""Differentiating a Monte Carlo cross-section lookup kernel (paper §7.3).

The XSBench-shaped kernel is one big ``map`` whose body has inner loops,
data-dependent control flow and indirect indexing — the structural
features that make GPU reverse AD hard, and that the redundant-execution
technique handles without a tape.  The gradient with respect to the
cross-section table flows through gather-interpolation and comes back via
accumulators (atomic adds on a GPU; ``np.add.at`` here).

Run:  python examples/monte_carlo_xs.py
"""
import numpy as np

import repro as rp
from repro.apps import datagen, xsbench


def main() -> None:
    n_lookups, n_nuclides, n_grid = 1000, 12, 32
    egrid, xs, lookup_e, mats, conc = datagen.xs_instance(
        n_lookups, n_nuclides, n_grid, seed=11
    )

    f = rp.compile(xsbench.build_ir(n_lookups, n_nuclides, n_grid, mats.shape[1]))
    total = f(egrid, xs, lookup_e, mats, conc)
    print(f"XS kernel: {n_lookups} lookups over {n_nuclides} nuclides × {n_grid} gridpoints")
    print(f"total macroscopic cross-section = {float(total):.4f}")

    g = rp.grad(f, wrt=[1, 4])
    gxs, gconc = g(egrid, xs, lookup_e, mats, conc)
    print(f"∂total/∂xs: shape {gxs.shape}, nnz = {(gxs != 0).sum()} "
          f"(only the gridpoints lookups actually touched)")
    print(f"∂total/∂conc: shape {gconc.shape}, all positive: {bool((gconc > 0).all())}")

    # Sensitivity analysis: which nuclide's table matters most?
    per_nuclide = np.abs(gxs).sum(axis=1)
    top = np.argsort(per_nuclide)[::-1][:3]
    print(f"most sensitive nuclides: {top.tolist()}")

    # AD overhead, the paper's Table 2 metric:
    import time

    t0 = time.perf_counter(); f(egrid, xs, lookup_e, mats, conc); t_prim = time.perf_counter() - t0
    t0 = time.perf_counter(); g(egrid, xs, lookup_e, mats, conc); t_ad = time.perf_counter() - t0
    print(f"\nAD overhead = {t_ad / t_prim:.1f}x (paper reports 2.6x for XSBench, 3.2x for Enzyme)")


if __name__ == "__main__":
    main()
