"""Quickstart: trace, run, differentiate.

The library implements the SC'22 paper "AD for an Array Language with
Nested Parallelism": you write nested-parallel array programs in Python,
they are traced to a Futhark-style IR, and ``vjp``/``jvp`` differentiate
them as compiler transformations — reverse mode uses redundant execution
instead of a tape.

Run:  python examples/quickstart.py
"""
import numpy as np

import repro as rp


def main() -> None:
    # 1. Write a program with nested-parallel combinators. --------------------
    def log_likelihood(weights, xs, ys):
        """Logistic-regression negative log-likelihood."""
        def per_example(x_row, y):
            logit = rp.sum(rp.map(lambda w, x: w * x, weights, x_row))
            p = rp.sigmoid(logit)
            return -(y * rp.log(p) + (1.0 - y) * rp.log(1.0 - p))

        return rp.sum(rp.map(per_example, xs, ys))

    rng = np.random.default_rng(0)
    n, d = 200, 8
    w_true = rng.standard_normal(d)
    xs = rng.standard_normal((n, d))
    ys = (xs @ w_true + 0.3 * rng.standard_normal(n) > 0).astype(float)

    # 2. Trace it to the IR and compile. -------------------------------------
    fun = rp.trace_like(log_likelihood, (np.zeros(d), xs, ys))
    f = rp.compile(fun)
    print("Traced IR (excerpt):")
    print("\n".join(f.show().splitlines()[:8]), "\n  ...")

    # 3. Run on either backend. -----------------------------------------------
    w = np.zeros(d)
    print(f"\nloss(0) = {f(w, xs, ys):.4f}   "
          f"(reference backend: {f(w, xs, ys, backend='ref'):.4f})")

    # 4. Reverse-mode gradient (one pass, tapeless). ---------------------------
    grad = rp.grad(f, wrt=[0])
    for step in range(30):
        w = w - 0.05 * grad(w, xs, ys)
    print(f"loss after 30 GD steps = {f(w, xs, ys):.4f}")
    print(f"cosine(w, w_true) = "
          f"{float(w @ w_true / (np.linalg.norm(w) * np.linalg.norm(w_true))):.3f}")

    # 5. Forward mode and the consistency identity. ----------------------------
    fwd = rp.jvp(f)
    u = rng.standard_normal(d)
    _, dloss = fwd(w, xs, ys, u, np.zeros_like(xs), np.zeros_like(ys))
    gw = grad(w, xs, ys)
    print(f"\n⟨∇f, u⟩ = {float(gw @ u):+.6f}   jvp = {float(dloss):+.6f}  (must agree)")

    # 6. The cost model (work / span / memory of a run). ------------------------
    c = f.cost(w, xs, ys)
    print(f"\ncost model: work={c.work}  span={c.span}  mem={c.mem}")


if __name__ == "__main__":
    main()
