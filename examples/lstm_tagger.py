"""Training a small LSTM sequence model (paper §7.7, Case Study 3).

The forward pass is a sequential loop over time steps whose (h, c) state
reverse AD checkpoints per iteration (the paper's Fig. 3 loop rule); the
per-step matrix products are nested maps whose adjoints go through the
§6.1 accumulator→reduce rewrite.

Run:  python examples/lstm_tagger.py
"""
import numpy as np

import repro as rp
from repro.apps import datagen, lstm


def main() -> None:
    bs, n, d, h = 8, 6, 10, 12
    xs, wx, wh, b, wy, h0, c0, targets = datagen.lstm_instance(bs, n, d, h, seed=3)

    f = rp.compile(lstm.build_ir(xs.shape[0], xs.shape[1], xs.shape[2], wh.shape[1]))
    vg = rp.value_and_grad(f, wrt=[1, 2, 3, 4])

    print(f"LSTM: seq={xs.shape[0]} batch={xs.shape[1]} d={xs.shape[2]} h={wh.shape[1]}")
    lr = 2e-3
    for it in range(15):
        loss, (gwx, gwh, gb, gwy) = vg(xs, wx, wh, b, wy, targets)
        if it % 3 == 0:
            print(f"  iter {it:3d}  loss = {float(loss):10.4f}")
        wx -= lr * gwx
        wh -= lr * gwh
        b -= lr * gb
        wy -= lr * gwy
    print(f"  final     loss = {float(f(xs, wx, wh, b, wy, targets)):10.4f}")

    # Cross-check against hand-written BPTT (the "cuDNN" comparator role).
    ours = rp.grad(f, wrt=[1, 2, 3, 4])(xs, wx, wh, b, wy, targets)
    manual = lstm.grad_manual(xs, wx, wh, b, wy, targets)
    worst = max(np.abs(a - m).max() for a, m in zip(ours, manual))
    print(f"\nmax |AD − manual BPTT| over all weights = {worst:.2e}")


if __name__ == "__main__":
    main()
