"""Legacy setup shim.

The sandboxed environment has no network and an old setuptools without the
``wheel`` package, so PEP-517 editable installs fail; ``pip install -e .
--no-use-pep517`` with this shim works everywhere.  All metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
