"""Table 6 — LSTM (§7.7).

Paper: Jacobian runtimes on D0 (bs,n,d,h)=(1024,20,300,192) and
D1=(1024,300,80,256): Futhark ≈ 3× faster than PyTorch; cuDNN (manual)
8–25× faster than PyTorch; AD overheads 2–4×.
Shapes scaled (÷16 bs, ÷4 dims); "cuDNN" = hand-written BPTT.
"""
import pytest

from repro.apps import lstm
from repro.baselines import eager as eg
from common import bench_row, lstm_setup, timeit, write_table

DS = {
    "D0": (16, 5, 24, 12),  # bs, n, d, h  (paper: 1024, 20, 300, 192)
    "D1": (16, 12, 10, 16),  # paper: 1024, 300, 80, 256
}

_ROWS = {}


def _record(ds, key, value):
    _ROWS.setdefault(ds, {})[key] = value
    need = {"ours", "tape", "manual", "ours_obj", "tape_obj"}
    if len(_ROWS) == len(DS) and all(need <= set(v) for v in _ROWS.values()):
        lines = [
            "Table 6: LSTM gradient — seconds (and AD overheads)",
            f"{'ds':3s} {'tape':>9s} {'ours':>9s} {'manual':>9s} {'ours ovh':>9s} {'tape ovh':>9s}",
        ]
        for ds_, v in _ROWS.items():
            lines.append(
                f"{ds_:3s} {v['tape']:9.4f} {v['ours']:9.4f} {v['manual']:9.4f}"
                f" {v['ours']/v['ours_obj']:8.2f}x {v['tape']/v['tape_obj']:8.2f}x"
            )
        lines.append("paper (A100): PyT 51.9/713.7 ms; Fut 3.1/3.0x faster; cuDNN 14/25.5x; overheads 2.6/3.6 (PyT) 2.0/4.0 (Fut)")
        rows = [
            bench_row(f"{ds_}/{key}", seconds=t)
            for ds_, v in _ROWS.items()
            for key, t in v.items()
        ]
        write_table("table6_lstm", lines, rows=rows)


@pytest.mark.parametrize("ds", list(DS))
def test_table6_ours(benchmark, ds):
    bs, n, d, h = DS[ds]
    args, fc, g, fwd_raw = lstm_setup(bs, n, d, h)
    _record(ds, "ours_obj", timeit(fc, *args))
    benchmark(lambda: g(*args))
    _record(ds, "ours", timeit(lambda: g(*args)))


@pytest.mark.parametrize("ds", list(DS))
def test_table6_tape(benchmark, ds):
    bs, n, d, h = DS[ds]
    (xs, wx, wh, b, wy, tg), fc, g, fwd_raw = lstm_setup(bs, n, d, h)
    obj = lambda: lstm.loss_eager(xs, wx, wh, b, wy, tg).data
    gr = eg.grad(lambda a, b_, c_, d_: lstm.loss_eager(xs, a, b_, c_, d_, tg))
    _record(ds, "tape_obj", timeit(obj))
    benchmark(lambda: gr(wx, wh, b, wy))
    _record(ds, "tape", timeit(lambda: gr(wx, wh, b, wy)))


@pytest.mark.parametrize("ds", list(DS))
def test_table6_manual(benchmark, ds):
    bs, n, d, h = DS[ds]
    args, fc, g, fwd_raw = lstm_setup(bs, n, d, h)
    benchmark(lambda: lstm.grad_manual(*args))
    _record(ds, "manual", timeit(lambda: lstm.grad_manual(*args)))


def test_table6_fwd_batched_bias_gradient(benchmark):
    """Forward-mode d loss/d bias: all 4h basis seeds in one batched
    call_batched pass (lstm.grad_fwd_ad) vs the per-seed jvp loop — the
    ROADMAP's "wire LSTM onto batched jvp" item, measured."""
    import numpy as np

    from common import BENCH_BACKEND

    bs, n, d, h = DS["D0"]
    (xs, wx, wh, b, wy, tg), fc, g, fwd_raw = lstm_setup(bs, n, d, h)
    batched = lambda: lstm.grad_fwd_ad(fwd_raw, xs, wx, wh, b, wy, tg, backend=BENCH_BACKEND)
    looped = lambda: lstm.grad_fwd_ad(
        fwd_raw, xs, wx, wh, b, wy, tg, backend=BENCH_BACKEND, batched=False
    )
    np.testing.assert_allclose(batched(), looped(), rtol=1e-9, atol=1e-12)
    benchmark(batched)
    t_b = timeit(batched)
    t_l = timeit(looped)
    write_table(
        "table6_lstm_fwd",
        [
            "Table 6 (extra): LSTM d loss/d bias, forward mode over 4h seeds",
            f"D0 {DS['D0']}: batched {t_b * 1000:.1f} ms, per-seed loop "
            f"{t_l * 1000:.1f} ms ({t_l / t_b:.1f}x)",
            "all basis seeds stack on one leading batch axis (call_batched);",
            "on backend=shard that axis is partitioned across the worker pool.",
        ],
        rows=[
            bench_row("fwd_batched", seconds=t_b),
            bench_row("fwd_per_seed_loop", seconds=t_l),
        ],
    )
