"""Table 2 — RSBench / XSBench (vs Enzyme).

Paper: primal runtimes and the AD overhead (differentiated / primal) of the
two Monte Carlo neutron-transport kernels; Futhark 3.6×/2.6× vs Enzyme
4.2×/3.2×.  Enzyme cannot run here; we measure our overhead on the same
ported kernels and quote the paper's numbers alongside.
"""
import pytest

from common import bench_row, rs_setup, timeit, write_table, xs_setup

PAPER = {"RSBench": {"fut": 3.6, "enzyme": 4.2}, "XSBench": {"fut": 2.6, "enzyme": 3.2}}

_ROWS = {}


def _record(name, t_prim, t_ad):
    _ROWS[name] = (t_prim, t_ad)
    if len(_ROWS) == 2:
        lines = [
            "Table 2: Monte Carlo kernels — primal runtime and AD overhead",
            f"{'kernel':8s} {'primal(s)':>10s} {'AD(s)':>10s} {'overhead':>9s}  paper(Fut/Enzyme)",
        ]
        for k, (tp, ta) in _ROWS.items():
            pp = PAPER[k]
            lines.append(
                f"{k:8s} {tp:10.4f} {ta:10.4f} {ta / tp:8.1f}x  {pp['fut']:.1f}x/{pp['enzyme']:.1f}x"
            )
        rows = [
            bench_row(f"{k}/{kind}", seconds=t)
            for k, (tp, ta) in _ROWS.items()
            for kind, t in (("primal", tp), ("ad", ta))
        ]
        write_table("table2_enzyme", lines, rows=rows)


RS = (4000, 32, 8)
XS = (2000, 16, 48)


def test_table2_rsbench_primal(benchmark):
    args, fc, g = rs_setup(*RS)
    benchmark(lambda: fc(*args))


def test_table2_rsbench_ad(benchmark):
    args, fc, g = rs_setup(*RS)
    t_prim = timeit(lambda: fc(*args))
    benchmark(lambda: g(*args))
    _record("RSBench", t_prim, timeit(lambda: g(*args)))


def test_table2_xsbench_primal(benchmark):
    args, fc, g = xs_setup(*XS)
    benchmark(lambda: fc(*args))


def test_table2_xsbench_ad(benchmark):
    args, fc, g = xs_setup(*XS)
    t_prim = timeit(lambda: fc(*args))
    benchmark(lambda: g(*args))
    _record("XSBench", t_prim, timeit(lambda: g(*args)))
