"""Table 5 — GMM on the D0–D5 grid (§7.6).

Paper (Table 5b, A100/f64): Futhark speedup over PyTorch 0.87–2.18×;
overheads (Jacobian/primal): PyTorch 2.45–5.28×, Futhark 2.0–3.18×.
The (n,d,K) grid of Table 5a is scaled ÷8 in n and ÷4 in d,K for the
interpreted executors; the comparison structure is unchanged.
"""
import pytest

from repro.apps import datagen, gmm
from repro.baselines import eager as eg
from common import bench_row, gmm_setup, timeit, write_table

SCALE_NOTE = "shapes = Table 5a scaled (n/8, d/4, K/4)"
GRID = {
    name: (max(n // 8, 32), max(d // 4, 2), max(K // 4, 2))
    for name, (n, d, K) in datagen.GMM_SHAPES.items()
}

_ROWS = {}


def _record(ds, key, value):
    _ROWS.setdefault(ds, {})[key] = value
    need = {"ours_jac", "ours_obj", "ours_cg_jac", "tape_jac", "tape_obj"}
    if len(_ROWS) == len(GRID) and all(need <= set(v) for v in _ROWS.values()):
        lines = [
            f"Table 5: GMM Jacobian — ours vs tape baseline ({SCALE_NOTE})",
            f"{'ds':4s} {'tape jac(s)':>12s} {'speedup':>8s} {'cg jac(s)':>10s} {'tape ovh':>9s} {'ours ovh':>9s}",
        ]
        for ds, v in _ROWS.items():
            sp = v["tape_jac"] / v["ours_jac"]
            lines.append(
                f"{ds:4s} {v['tape_jac']:12.4f} {sp:7.2f}x {v['ours_cg_jac']:10.4f} {v['tape_jac']/v['tape_obj']:8.2f}x {v['ours_jac']/v['ours_obj']:8.2f}x"
            )
        lines.append("paper (5b): speedups 0.87–2.18x; overheads PyT 2.45–5.28x, Fut 2.0–3.18x")
        rows = [
            bench_row(f"{ds}/{key}", seconds=t,
                      backend="codegen" if key == "ours_cg_jac" else None)
            for ds, v in _ROWS.items()
            for key, t in v.items()
        ]
        write_table("table5_gmm", lines, rows=rows)


@pytest.mark.parametrize("ds", list(GRID))
def test_table5_ours(benchmark, ds):
    n, d, K = GRID[ds]
    args, fc, g = gmm_setup(n, d, K)
    _record(ds, "ours_obj", timeit(fc, *args))
    benchmark(lambda: g(*args))
    _record(ds, "ours_jac", timeit(lambda: g(*args)))


@pytest.mark.parametrize("ds", list(GRID))
def test_table5_ours_codegen(benchmark, ds):
    """The same Jacobian with the plan IR rendered to source (``codegen``):
    per-instruction dispatch eliminated, results bitwise-equal to ``plan``."""
    n, d, K = GRID[ds]
    args, fc, g = gmm_setup(n, d, K)
    benchmark(lambda: g(*args, backend="codegen"))
    _record(ds, "ours_cg_jac", timeit(lambda: g(*args, backend="codegen")))


@pytest.mark.parametrize("ds", list(GRID))
def test_table5_tape(benchmark, ds):
    n, d, K = GRID[ds]
    args, fc, g = gmm_setup(n, d, K)
    alphas, means, icf, x = args
    obj = lambda: gmm.objective_eager(eg.T(alphas), eg.T(means), eg.T(icf), x).data
    gr = eg.grad(lambda a, m, i: gmm.objective_eager(a, m, i, x))
    _record(ds, "tape_obj", timeit(obj))
    benchmark(lambda: gr(alphas, means, icf))
    _record(ds, "tape_jac", timeit(lambda: gr(alphas, means, icf)))
