"""Table 3 — dense k-means (§7.4).

Paper: per-iteration runtime of Newton k-means (Jacobian + Hessian) —
Manual (histogram method) vs Futhark AD (vjp + jvp∘vjp) vs PyTorch, on
(k,n,d) = (5, 494019, 35) and (1024, 10000, 256); manual ≈ 4× faster than
AD on the first, parity on the second, AD slightly beats PyTorch.
Workloads scaled ~50×: structure identical.
"""
import pytest

from repro.apps import kmeans
from common import bench_row, kmeans_setup, timeit, write_table

WORKLOADS = {
    "W0 (5,~10k,35)": (5, 10000, 35),
    "W1 (64,2k,64)": (64, 2000, 64),
}

_ROWS = {}


def _record(wname, impl, t):
    _ROWS.setdefault(wname, {})[impl] = t
    if len(_ROWS) == len(WORKLOADS) and all(len(v) == 4 for v in _ROWS.values()):
        lines = [
            "Table 3: dense k-means — one Newton step (grad + Hessian diag), seconds",
            f"{'workload':16s} {'manual':>9s} {'ours(AD)':>9s} {'ours(cg)':>9s} {'tape':>9s}",
        ]
        for w, v in _ROWS.items():
            lines.append(
                f"{w:16s} {v['manual']:9.4f} {v['ours']:9.4f} "
                f"{v['ours_cg']:9.4f} {v['tape']:9.4f}"
            )
        lines.append("paper: manual 9.3/9.9 ms, Futhark-AD 36.6/9.6 ms, PyTorch 44.9/11.2 ms (A100)")
        rows = [
            bench_row(f"{w}/{impl}", seconds=t,
                      backend="codegen" if impl == "ours_cg" else None)
            for w, v in _ROWS.items()
            for impl, t in v.items()
        ]
        write_table("table3_kmeans_dense", lines, rows=rows)


@pytest.mark.parametrize("wname", list(WORKLOADS))
def test_table3_ours(benchmark, wname):
    k, n, d = WORKLOADS[wname]
    (pts, ctr), fc, g, h = kmeans_setup(k, n, d)

    def step():
        g(pts, ctr)
        h(pts, ctr)

    benchmark(step)
    _record(wname, "ours", timeit(step))


@pytest.mark.parametrize("wname", list(WORKLOADS))
def test_table3_ours_codegen(benchmark, wname):
    """The same AD step with the plan IR rendered to source (``codegen``):
    per-instruction dispatch eliminated, results bitwise-equal to ``plan``."""
    k, n, d = WORKLOADS[wname]
    (pts, ctr), fc, g, h = kmeans_setup(k, n, d)

    def step():
        g(pts, ctr, backend="codegen")
        h(pts, ctr, backend="codegen")

    benchmark(step)
    _record(wname, "ours_cg", timeit(step))


@pytest.mark.parametrize("wname", list(WORKLOADS))
def test_table3_manual(benchmark, wname):
    k, n, d = WORKLOADS[wname]
    (pts, ctr), fc, g, h = kmeans_setup(k, n, d)
    benchmark(lambda: kmeans.grad_hess_manual(pts, ctr))
    _record(wname, "manual", timeit(lambda: kmeans.grad_hess_manual(pts, ctr)))


@pytest.mark.parametrize("wname", list(WORKLOADS))
def test_table3_tape(benchmark, wname):
    k, n, d = WORKLOADS[wname]
    (pts, ctr), fc, g, h = kmeans_setup(k, n, d)
    benchmark(lambda: kmeans.newton_step_eager(pts, ctr))
    _record(wname, "tape", timeit(lambda: kmeans.newton_step_eager(pts, ctr)))
