"""Table 4 — sparse k-means (§7.5).

Paper: gradient runtime on three NLP CSR workloads — manual ≈ 2.5–3.7×
faster than Futhark AD; PyTorch (COO) >400× slower than Futhark AD.
Synthetic CSR matrices with matching shape/sparsity, scaled ~8×.
"""
import pytest

from repro.apps import datagen, kmeans_sparse
from repro.baselines import eager as eg
from common import bench_row, kmeans_sparse_setup, timeit, write_table

# (rows, cols, nnz/row) scaled ~8x down from SPARSE_SHAPES.
WORKLOADS = {
    "movielens": (755, 463, 20, 10),
    "nytimes": (3750, 1276, 9, 10),
    "scrna": (3352, 250, 7, 10),
}

_ROWS = {}


def _record(wname, impl, t):
    _ROWS.setdefault(wname, {})[impl] = t
    if len(_ROWS) == len(WORKLOADS) and all(len(v) == 3 for v in _ROWS.values()):
        lines = [
            "Table 4: sparse k-means — gradient runtime, seconds",
            f"{'workload':12s} {'manual':>9s} {'ours(AD)':>9s} {'tape(COO)':>10s}",
        ]
        for w, v in _ROWS.items():
            lines.append(f"{w:12s} {v['manual']:9.4f} {v['ours']:9.4f} {v['tape']:10.4f}")
        lines.append("paper (A100): manual 61/83/156 ms, Futhark-AD 152/300/579 ms, PyTorch 61223/226896/367799 ms")
        rows = [
            bench_row(f"{w}/{impl}", seconds=t)
            for w, v in _ROWS.items()
            for impl, t in v.items()
        ]
        write_table("table4_kmeans_sparse", lines, rows=rows)


@pytest.mark.parametrize("wname", list(WORKLOADS))
def test_table4_ours(benchmark, wname):
    rows, cols, nnz, k = WORKLOADS[wname]
    data, fc, g = kmeans_sparse_setup(rows, cols, nnz, k)
    benchmark(lambda: g(*data))
    _record(wname, "ours", timeit(lambda: g(*data)))


@pytest.mark.parametrize("wname", list(WORKLOADS))
def test_table4_manual(benchmark, wname):
    rows, cols, nnz, k = WORKLOADS[wname]
    data, fc, g = kmeans_sparse_setup(rows, cols, nnz, k)
    benchmark(lambda: kmeans_sparse.grad_manual(*data))
    _record(wname, "manual", timeit(lambda: kmeans_sparse.grad_manual(*data)))


@pytest.mark.parametrize("wname", list(WORKLOADS))
def test_table4_tape(benchmark, wname):
    rows, cols, nnz, k = WORKLOADS[wname]
    (indptr, indices, values, centres), fc, g = kmeans_sparse_setup(rows, cols, nnz, k)
    gr = eg.grad(lambda c: kmeans_sparse.cost_eager(indptr, indices, values, c))
    benchmark(lambda: gr(centres))
    _record(wname, "tape", timeit(lambda: gr(centres)))
