"""Shared benchmark infrastructure.

Workloads are the paper's, scaled down by a documented factor (``SCALE``
notes below) because the executors are NumPy-over-interpreter, not CUDA.
Every table file writes a paper-style text table to
``benchmarks/results/*.txt`` in addition to pytest-benchmark's own report,
and records the paper's reported numbers next to ours.

All "ours" rows run on the plan-compiled backend by default (lowered once,
cached per shape signature — see ``repro.exec.plan``), which is what the
paper's compiled-bulk-code numbers correspond to.  ``REPRO_BENCH_BACKEND``
selects any registered backend instead: ``vec``/``ref`` to measure the
interpreters, ``codegen`` to run plan IR rendered to compiled Python source
(no per-instruction dispatch, bitwise-equal to ``plan``), ``shard`` to
spread the dominant SOAC (and the batched seed axes) across the worker
pool (``REPRO_SHARD_WORKERS``/``REPRO_SHARD_MODE``).
Unknown names fail at import with the registered set listed.
"""
from __future__ import annotations

import functools
import json
import os
import time
from typing import Callable, Optional

import numpy as np

import repro as rp
from repro import obs
from repro.apps import ba, datagen, gmm, hand, kmeans, kmeans_sparse, lstm, rsbench, xsbench
from repro.exec.plan import plan_cache_stats
from repro.exec.registry import get_backend
from repro.exec.shard import shard_stats
from repro.obs import tracing as obs_tracing

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
os.makedirs(RESULTS_DIR, exist_ok=True)

#: Repo root — ``write_table`` mirrors every JSON artifact here as
#: ``BENCH_<table>.json`` so the cross-PR perf trajectory lives at the top
#: level of the repository (the per-run copy stays in ``results/``).
ROOT_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Backend every "ours" measurement runs on (tables 1/3/5 etc.); validated
#: through the backend registry so a typo fails loudly here, not deep in
#: dispatch half-way through a benchmark run.
BENCH_BACKEND = get_backend(os.environ.get("REPRO_BENCH_BACKEND", "plan")).name


def on_bench_backend(f: Callable) -> Callable:
    """Pin a compiled/derivative callable to ``BENCH_BACKEND``."""
    return functools.partial(f, backend=BENCH_BACKEND)


def bench_row(name: str, seconds: Optional[float] = None, backend: Optional[str] = None, **extra) -> dict:
    """One machine-readable benchmark row for ``write_table(rows=...)``:
    a measurement name, the backend it ran on, its wall-clock seconds (None
    for rows recording non-time metrics), plus free-form extra fields.

    Timed rows additionally carry the per-phase span breakdown (``phases``:
    lower/emit/compile/execute… seconds) and the obs-counter delta (``obs``)
    of the most recent ``timeit`` measurement."""
    row = {"name": name, "backend": backend or BENCH_BACKEND, "seconds": seconds}
    if seconds is not None and _LAST_MEASUREMENT is not None:
        row.setdefault("phases", _LAST_MEASUREMENT["phases"])
        row.setdefault("obs", _LAST_MEASUREMENT["obs"])
    row.update(extra)
    return row


def write_table(name: str, lines, rows=None) -> None:
    """Write a paper-style text table *and* a machine-readable artifact.

    Every table emits ``results/BENCH_<name>.json`` — and mirrors it to the
    repo root as ``BENCH_<name>.json`` — so the perf trajectory is
    trackable across PRs: the per-row measurements (``bench_row`` dicts
    when the caller passes them), the backend, a snapshot of the plan-cache
    and shard counters at write time, and the human-readable lines.
    """
    path = os.path.join(RESULTS_DIR, name + ".txt")
    text = "\n".join(lines) + "\n"
    with open(path, "w") as f:
        f.write(text)
    payload = {
        "table": name,
        "backend": BENCH_BACKEND,
        "unix_time": time.time(),
        "rows": [dict(r) for r in (rows or [])],
        "plan_cache": plan_cache_stats(),
        "shard": shard_stats(),
        "lines": list(lines),
    }
    blob = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    for out_dir in (RESULTS_DIR, ROOT_DIR):
        with open(os.path.join(out_dir, f"BENCH_{name}.json"), "w") as f:
            f.write(blob)
    print("\n" + text)


#: Phase/obs breakdown of the most recent ``timeit`` call (attached to the
#: next ``bench_row`` with a ``seconds`` value; see ``last_measurement``).
_LAST_MEASUREMENT: Optional[dict] = None


def last_measurement() -> Optional[dict]:
    """``{"phases": {span: {count, seconds}}, "obs": counter deltas}`` for
    the most recent ``timeit`` measurement, or None before the first one."""
    return _LAST_MEASUREMENT


def timeit(f: Callable, *args, repeats: int = 3) -> float:
    """Median wall-clock seconds of ``f(*args)``.

    Each measurement runs under span collection (``obs.tracing``), so a
    per-phase time breakdown and the delta of every obs counter across the
    repeats are recorded as a side effect (``last_measurement()``)."""
    global _LAST_MEASUREMENT
    ts = []
    with obs_tracing.collecting():
        p0 = obs_tracing.phase_totals()
        s0 = obs.snapshot()
        for _ in range(repeats):
            t0 = time.perf_counter()
            f(*args)
            ts.append(time.perf_counter() - t0)
        p1 = obs_tracing.phase_totals()
        s1 = obs.snapshot()
    _LAST_MEASUREMENT = {
        "phases": obs.delta(p0, p1),
        "obs": obs.delta(s0, s1),
    }
    return float(np.median(ts))


# ---------------------------------------------------------------------------
# Cached problem setups (trace + AD transform once per session)
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def gmm_setup(n: int, d: int, K: int, seed: int = 0):
    args = datagen.gmm_instance(n, d, K, seed)[:4]
    fc = rp.compile(gmm.build_ir(n, d, K))
    g = rp.grad(fc, wrt=[0, 1, 2])
    return args, on_bench_backend(fc), on_bench_backend(g)


@functools.lru_cache(maxsize=None)
def kmeans_setup(k: int, n: int, d: int, seed: int = 0):
    pts, ctr = datagen.kmeans_instance(k, n, d, seed)
    fc = rp.compile(kmeans.build_ir(n, k, d))
    g = rp.grad(fc, wrt=[1])
    h = rp.hessian_diag(fc, wrt=1)
    return (pts, ctr), on_bench_backend(fc), on_bench_backend(g), on_bench_backend(h)


@functools.lru_cache(maxsize=None)
def kmeans_sparse_setup(rows: int, cols: int, nnz_row: int, k: int, seed: int = 0):
    data = datagen.sparse_kmeans_instance(rows, cols, nnz_row, k, seed)
    fc = rp.compile(kmeans_sparse.build_ir(rows, k, cols))
    g = rp.grad(fc, wrt=[3])
    return data, on_bench_backend(fc), on_bench_backend(g)


@functools.lru_cache(maxsize=None)
def lstm_setup(bs: int, n: int, d: int, h: int, seed: int = 0):
    """Returns ``(args, loss, grad, raw jvp ADFunction)`` — the raw forward
    function is what ``lstm.grad_fwd_ad`` drives through ``call_batched`` so
    all 4·h bias basis seeds evaluate in one batched pass."""
    xs, wx, wh, b, wy, h0, c0, tg = datagen.lstm_instance(bs, n, d, h, seed)
    # note: datagen signature is (bs, n, d, h) -> xs is (n, bs, d)
    fc = rp.compile(lstm.build_ir(xs.shape[0], xs.shape[1], xs.shape[2], wh.shape[1]))
    g = rp.grad(fc, wrt=[1, 2, 3, 4])
    fwd = rp.jvp(fc)
    return (xs, wx, wh, b, wy, tg), on_bench_backend(fc), on_bench_backend(g), fwd


@functools.lru_cache(maxsize=None)
def ba_setup(n_cams: int, n_pts: int, n_obs: int, seed: int = 0):
    """Returns ``(args, objective, vjp-callable, raw ADFunction)`` — the raw
    function is what ``ba.jacobian_ad`` drives through ``call_batched`` so
    both residual-component seeds evaluate in one batched pass."""
    cams, pts, ws, oc, op, feats = datagen.ba_instance(n_cams, n_pts, n_obs, seed)
    gc, gp, gw = ba.gather_obs(cams, pts, ws, oc, op)
    fc = rp.compile(ba.build_ir(n_obs))
    jv = rp.vjp(fc, wrt=[0, 1, 2])
    return (gc, gp, gw, feats), on_bench_backend(fc), on_bench_backend(jv), jv


@functools.lru_cache(maxsize=None)
def hand_setup(n_bones: int, n_verts: int, seed: int = 0):
    """Returns ``(args, objective, raw jvp ADFunction)`` — the raw function
    is what ``hand.jacobian_fwd_ad`` drives through ``call_batched`` so all
    3·B pose-direction seeds evaluate in one batched pass."""
    args = datagen.hand_instance(n_bones, n_verts, seed)
    fc = rp.compile(hand.build_ir(n_bones, n_verts))
    fwd = rp.jvp(fc)
    return args, on_bench_backend(fc), fwd


@functools.lru_cache(maxsize=None)
def xs_setup(n_lookups: int, n_nuc: int, n_grid: int, seed: int = 0):
    args = datagen.xs_instance(n_lookups, n_nuc, n_grid, seed)
    fc = rp.compile(xsbench.build_ir(n_lookups, n_nuc, n_grid, args[3].shape[1]))
    g = rp.grad(fc, wrt=[1, 4])
    return args, on_bench_backend(fc), on_bench_backend(g)


@functools.lru_cache(maxsize=None)
def rs_setup(n_lookups: int, n_poles: int, n_windows: int, seed: int = 0):
    args = datagen.rs_instance(n_lookups, n_poles, n_windows, seed)
    fc = rp.compile(rsbench.build_ir(n_lookups, n_windows, n_poles))
    g = rp.grad(fc, wrt=[2, 3])
    return args, on_bench_backend(fc), on_bench_backend(g)
