"""Ablations A1–A6 (per DESIGN.md):

A1  §6.1 accumulator→reduce on the matmul adjoint (the GMM/LSTM lever);
A2  §4.3 strip-mining time–space trade-off (checkpoint memory vs re-exec);
A3  §4.1 perfect nests ⇒ no re-execution (DCE kills the forward sweeps);
A4  §5.1 specialised reduce rules vs the general two-scan rule;
A5  SOAC fusion on/off on the GMM gradient (the pass-registry flag);
A6  shard on/off on the GMM full Jacobian (batched forward seeds as the
    shard axis, plan backend vs the sharded executor).
"""
import os

import numpy as np
import pytest

import repro as rp
from repro.apps import datagen, gmm
from repro.core.api import vjp
from repro.exec.cost import CostRecorder
from repro.exec.interp import RefInterp
from repro.frontend.function import Compiled
from repro.ir import count_soacs, count_stms
from repro.opt.pipeline import AD_SAFE_PASSES, optimize_fun
from repro.core.vjp import vjp_fun
from common import BENCH_BACKEND, timeit, write_table

rng = np.random.default_rng(0)


# --- A1: accumulator optimisation ------------------------------------------------

MM = (224, 128, 160)


@pytest.fixture(scope="module")
def mm_adjoints():
    n, k, m = MM
    f = rp.compile(rp.trace_like(lambda a, b: rp.matmul(a, b), (np.ones((n, k)), np.ones((k, m)))))
    raw = vjp(f, acc_opt=False)
    opt = vjp(f, acc_opt=True)
    A = rng.standard_normal((n, k))
    B = rng.standard_normal((k, m))
    S = rng.standard_normal((n, m))
    return raw, opt, (A, B, S)


def test_ablation_a1_acc_opt_off(benchmark, mm_adjoints):
    raw, opt, args = mm_adjoints
    benchmark(lambda: raw(*args))


def test_ablation_a1_acc_opt_on(benchmark, mm_adjoints):
    raw, opt, args = mm_adjoints
    benchmark(lambda: opt(*args))
    t_raw = timeit(lambda: raw(*args))
    t_opt = timeit(lambda: opt(*args))
    write_table(
        "ablation_a1_accopt",
        [
            "A1: matmul adjoint — §6.1 accumulator→reduce rewrite",
            f"shape {MM}: atomic-updates {t_raw:.3f}s, rewritten {t_opt:.3f}s, speedup {t_raw/t_opt:.2f}x",
            "paper: 'nearly one order of magnitude at application level' on GPU;",
            "the win grows with the summed dimension (atomics→dense reduction).",
        ],
    )
    assert t_opt < t_raw


# --- A2: strip-mining ---------------------------------------------------------------


def _stripmine_grad(sm: int):
    def f(x):
        return rp.fori_loop(1024, lambda i, a: rp.sin(a) * x, x, stripmine=sm)

    return rp.grad(rp.compile(rp.trace_like(f, (1.0,))))


def _peak_and_work(g):
    rec = CostRecorder()
    RefInterp(rec).run(g.adfun.fun, [0.8, 1.0])
    c = rec.snapshot()
    return c.peak_alloc, c.work


@pytest.mark.parametrize("sm", [0, 8, 32])
def test_ablation_a2_stripmine(benchmark, sm):
    g = _stripmine_grad(sm)
    benchmark(lambda: g(0.8))
    if sm == 32:
        rows = ["A2: strip-mining a 1024-iteration loop — §4.3 time-space trade-off",
                f"{'factor':>7s} {'peak ckpt':>10s} {'work':>10s}"]
        for k in (0, 8, 32):
            p, w = _peak_and_work(_stripmine_grad(k))
            rows.append(f"{k:7d} {p:10d} {w:10d}")
        rows.append("memory drops ~f-fold per level; work grows by one extra forward sweep")
        write_table("ablation_a2_stripmine", rows)
        p0, w0 = _peak_and_work(_stripmine_grad(0))
        p32, w32 = _peak_and_work(_stripmine_grad(32))
        assert p32 < p0 / 4 and w32 < 4 * w0


# --- A3: perfect nests / DCE ----------------------------------------------------------


def test_ablation_a3_dce_perfect_nest(benchmark):
    def f(ass):
        return rp.map(lambda as_: rp.map(lambda a: a * a, as_), ass)

    fun = optimize_fun(rp.trace_like(f, (np.ones((16, 64)),)))
    raw = vjp_fun(fun)
    opt = optimize_fun(raw)
    ass = rng.standard_normal((16, 64))
    seed = np.ones((16, 64))
    prim = Compiled(fun, optimize=False)
    craw = Compiled(raw, optimize=False)
    copt = Compiled(opt, optimize=False)
    benchmark(lambda: copt(ass, seed))
    wp = prim.cost(ass).work
    wr = craw.cost(ass, seed).work
    wo = copt.cost(ass, seed).work
    write_table(
        "ablation_a3_dce",
        [
            "A3: perfect map nest (Fig. 2) — re-executed forward sweeps are dead code",
            f"primal work {wp}; adjoint work before DCE {wr} ({wr/wp:.2f}x); after DCE {wo} ({wo/wp:.2f}x)",
            f"statements: {count_stms(raw)} -> {count_stms(opt)}",
            "paper: perfect nests suffer no re-computation overhead after optimisation",
        ],
    )
    assert wo < wr
    assert wo <= 6 * wp


# --- A4: specialised reduce rules ----------------------------------------------------------


def test_ablation_a4_reduce_special_vs_general(benchmark):
    n = 50_000
    xs = rng.standard_normal(n) + 2.0

    f_special = rp.compile(rp.trace_like(lambda v: rp.sum(v), (xs,)))
    # An opaque addition defeats operator recognition → the general
    # two-scan rule is used.
    # minimum(a+b, huge) is semantically (+) on finite data but defeats
    # operator recognition, forcing the general two-scan rule.
    f_general = rp.compile(
        rp.trace_like(lambda v: rp.reduce(lambda a, b: rp.minimum(a + b, 1e300), 0.0, v), (xs,))
    )
    g_s = rp.grad(f_special)
    g_g = rp.grad(f_general)
    np.testing.assert_allclose(g_s(xs), g_g(xs), rtol=1e-10)
    benchmark(lambda: g_s(xs))
    t_s = timeit(lambda: g_s(xs))
    t_g = timeit(lambda: g_g(xs))
    write_table(
        "ablation_a4_reduce_special",
        [
            "A4: reduce(+) adjoint — §5.1.1 special case vs general two-scan rule",
            f"n={n}: special {t_s*1000:.1f} ms, general {t_g*1000:.1f} ms ({t_g/t_s:.1f}x slower)",
            "paper: the general rule needs ≥5 global memory accesses/element vs 1;",
            "our gap is amplified because unrecognised scan operators execute",
            "sequentially in the simulator (a real GPU keeps them parallel).",
        ],
    )
    assert t_s < t_g


# --- A5: SOAC fusion on/off ---------------------------------------------------------


GMM_A5 = (128, 8, 8)


@pytest.fixture(scope="module")
def gmm_fusion_pair():
    n, d, K = GMM_A5
    args = datagen.gmm_instance(n, d, K, 0)[:4]
    fun = gmm.build_ir(n, d, K)
    g_on = vjp(rp.compile(fun), wrt=[0, 1, 2])
    g_off = vjp(rp.compile(fun, passes=AD_SAFE_PASSES), wrt=[0, 1, 2], passes=AD_SAFE_PASSES)
    return args, g_on, g_off


@pytest.mark.parametrize("fused", [True, False])
def test_ablation_a5_fusion(benchmark, fused, gmm_fusion_pair):
    args, g_on, g_off = gmm_fusion_pair
    g = g_on if fused else g_off
    seeds = args + (1.0,)
    benchmark(lambda: g(*seeds, backend=BENCH_BACKEND))
    if not fused:
        t_on = timeit(lambda: g_on(*seeds, backend=BENCH_BACKEND))
        t_off = timeit(lambda: g_off(*seeds, backend=BENCH_BACKEND))
        s_on, s_off = count_soacs(g_on.fun), count_soacs(g_off.fun)
        write_table(
            "ablation_a5_fusion",
            [
                "A5: SOAC fusion on/off — GMM gradient (pass-registry flag)",
                f"shape {GMM_A5}: fused {t_on*1000:.1f} ms / {s_on} SOACs, "
                f"unfused {t_off*1000:.1f} ms / {s_off} SOACs",
                "fusion inlines producers into consumers (redomap shapes), so the",
                "post-AD gradient materialises fewer intermediates per pass.",
            ],
        )
        assert s_on < s_off


# --- A6: sharded execution on/off ---------------------------------------------------

GMM_A6 = (256, 8, 16)  # n, d, K -> K*d = 128 forward basis seeds


@pytest.fixture(scope="module")
def gmm_full_jacobian():
    """The GMM full Jacobian w.r.t. the means: all K·d forward basis seeds
    stacked on a leading batch axis (`call_batched`), which is exactly the
    axis the shard backend partitions across workers."""
    n, d, K = GMM_A6
    alphas, means, icf, x = datagen.gmm_instance(n, d, K, 0)[:4]
    fwd = rp.jvp(rp.compile(gmm.build_ir(n, d, K)))
    m = K * d
    seeds = np.eye(m).reshape(m, K, d)
    zeros = (np.zeros_like(alphas), np.zeros_like(icf), np.zeros_like(x))

    def jac(backend):
        out = fwd.call_batched(
            (alphas, means, icf, x, zeros[0], seeds, zeros[1], zeros[2]),
            (False, False, False, False, False, True, False, False),
            m,
            backend=backend,
        )
        return np.asarray(out[-1]).reshape(m)

    return jac


@pytest.mark.parametrize("sharded_on", [False, True])
def test_ablation_a6_shard(benchmark, sharded_on, gmm_full_jacobian, monkeypatch):
    from repro.exec.shard import shard_stats, shutdown_shard_pool

    jac = gmm_full_jacobian
    workers = min(4, os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_SHARD_WORKERS", str(workers))
    backend = "shard" if sharded_on else "plan"
    benchmark(lambda: jac(backend))
    if sharded_on:
        np.testing.assert_allclose(jac("shard"), jac("plan"), rtol=1e-9, atol=1e-12)
        t_plan = timeit(lambda: jac("plan"))
        t_shard = timeit(lambda: jac("shard"))
        st = shard_stats()
        shutdown_shard_pool()
        speedup = t_plan / t_shard
        write_table(
            "ablation_a6_shard",
            [
                "A6: shard on/off — GMM full Jacobian wrt means (batched fwd seeds)",
                f"shape {GMM_A6}, {GMM_A6[1] * GMM_A6[2]} seeds: "
                f"plan {t_plan * 1000:.1f} ms, shard {t_shard * 1000:.1f} ms "
                f"({speedup:.2f}x, {st['workers']} {st['mode']} workers, "
                f"cpu_count={os.cpu_count()})",
                "the stacked seed axis is partitioned across the worker pool;",
                "the win tracks the physical core count (>=1.5x expected at 4+",
                "cores; a 1-core box records ~1.0x and that is the honest number).",
            ],
        )
        # The >=1.5x acceptance bar only applies where the hardware can
        # deliver it; smaller boxes record the measurement without asserting.
        if (os.cpu_count() or 1) >= 4 and st["mode"] == "thread":
            assert speedup >= 1.5
