"""Ablations A1–A10 (per DESIGN.md):

A1  §6.1 accumulator→reduce on the matmul adjoint (the GMM/LSTM lever);
A2  §4.3 strip-mining time–space trade-off (checkpoint memory vs re-exec);
A3  §4.1 perfect nests ⇒ no re-execution (DCE kills the forward sweeps);
A4  §5.1 specialised reduce rules vs the general two-scan rule;
A5  SOAC fusion on/off on the GMM gradient (the pass-registry flag);
A6  shard on/off on the GMM full Jacobian (batched forward seeds as the
    shard axis, plan backend vs the sharded executor);
A7  plan-cache tier-2 specialisation on/off: a ≥5-signature shape sweep of
    one Fun (one tier-1 generic lowering) and Table 1 workloads, generic
    vs shape-specialised plans;
A8  static cost model on/off: cost-guided fusion (REPRO_FUSE_COST=on) vs
    monotone fusion (=always) on the Table 5 GMM gradient and Table 3
    kmeans gradient, and cost-derived shard chunk sizing vs the static
    REPRO_SHARD_MIN_CHUNK/REPRO_SHARD_MAX_TASKS knobs on a map-kind shard
    program — guided must be parity-safe (bitwise) and no slower;
A9  source codegen vs the closure interpreter: the same plan IR rendered
    to one compiled Python function (backend=codegen) vs per-instruction
    closure dispatch (backend=plan) on the A8 GMM gradient and two
    dispatch-bound scalar loops — bitwise parity asserted, codegen must
    win outright where dispatch dominates and be no slower elsewhere;
A10 execution schedules: the cost model's default schedule vs forced
    REPRO_SCHEDULE overrides (all-sequential(64) on plan — bitwise parity
    asserted — and parallel(2) on shard — allclose) on the GMM full
    Jacobian and the LSTM scan; every row records the schedule it ran
    under and the cost-model-chosen schedule of the dominant statement.
"""
import os

import numpy as np
import pytest

import repro as rp
from repro.apps import ba, datagen, gmm, kmeans, lstm
from repro.core.api import vjp
from repro.exec.cost import CostRecorder
from repro.exec.interp import RefInterp
from repro.frontend.function import Compiled
from repro.ir import count_soacs, count_stms
from repro.opt.pipeline import AD_SAFE_PASSES, optimize_fun
from repro.core.vjp import vjp_fun
from common import BENCH_BACKEND, ba_setup, bench_row, timeit, write_table

rng = np.random.default_rng(0)


# --- A1: accumulator optimisation ------------------------------------------------

MM = (224, 128, 160)


@pytest.fixture(scope="module")
def mm_adjoints():
    n, k, m = MM
    f = rp.compile(rp.trace_like(lambda a, b: rp.matmul(a, b), (np.ones((n, k)), np.ones((k, m)))))
    raw = vjp(f, acc_opt=False)
    opt = vjp(f, acc_opt=True)
    A = rng.standard_normal((n, k))
    B = rng.standard_normal((k, m))
    S = rng.standard_normal((n, m))
    return raw, opt, (A, B, S)


def test_ablation_a1_acc_opt_off(benchmark, mm_adjoints):
    raw, opt, args = mm_adjoints
    benchmark(lambda: raw(*args))


def test_ablation_a1_acc_opt_on(benchmark, mm_adjoints):
    raw, opt, args = mm_adjoints
    benchmark(lambda: opt(*args))
    t_raw = timeit(lambda: raw(*args))
    t_opt = timeit(lambda: opt(*args))
    write_table(
        "ablation_a1_accopt",
        [
            "A1: matmul adjoint — §6.1 accumulator→reduce rewrite",
            f"shape {MM}: atomic-updates {t_raw:.3f}s, rewritten {t_opt:.3f}s, speedup {t_raw/t_opt:.2f}x",
            "paper: 'nearly one order of magnitude at application level' on GPU;",
            "the win grows with the summed dimension (atomics→dense reduction).",
        ],
        rows=[
            bench_row("acc_opt_off", seconds=t_raw),
            bench_row("acc_opt_on", seconds=t_opt),
        ],
    )
    assert t_opt < t_raw


# --- A2: strip-mining ---------------------------------------------------------------


def _stripmine_grad(sm: int):
    def f(x):
        return rp.fori_loop(1024, lambda i, a: rp.sin(a) * x, x, stripmine=sm)

    return rp.grad(rp.compile(rp.trace_like(f, (1.0,))))


def _peak_and_work(g):
    rec = CostRecorder()
    RefInterp(rec).run(g.adfun.fun, [0.8, 1.0])
    c = rec.snapshot()
    return c.peak_alloc, c.work


@pytest.mark.parametrize("sm", [0, 8, 32])
def test_ablation_a2_stripmine(benchmark, sm):
    g = _stripmine_grad(sm)
    benchmark(lambda: g(0.8))
    if sm == 32:
        rows = ["A2: strip-mining a 1024-iteration loop — §4.3 time-space trade-off",
                f"{'factor':>7s} {'peak ckpt':>10s} {'work':>10s}"]
        for k in (0, 8, 32):
            p, w = _peak_and_work(_stripmine_grad(k))
            rows.append(f"{k:7d} {p:10d} {w:10d}")
        rows.append("memory drops ~f-fold per level; work grows by one extra forward sweep")
        jrows = []
        for k in (0, 8, 32):
            p_, w_ = _peak_and_work(_stripmine_grad(k))
            jrows.append(bench_row(f"stripmine_{k}", peak_alloc=p_, work=w_))
        write_table("ablation_a2_stripmine", rows, rows=jrows)
        p0, w0 = _peak_and_work(_stripmine_grad(0))
        p32, w32 = _peak_and_work(_stripmine_grad(32))
        assert p32 < p0 / 4 and w32 < 4 * w0


# --- A3: perfect nests / DCE ----------------------------------------------------------


def test_ablation_a3_dce_perfect_nest(benchmark):
    def f(ass):
        return rp.map(lambda as_: rp.map(lambda a: a * a, as_), ass)

    fun = optimize_fun(rp.trace_like(f, (np.ones((16, 64)),)))
    raw = vjp_fun(fun)
    opt = optimize_fun(raw)
    ass = rng.standard_normal((16, 64))
    seed = np.ones((16, 64))
    prim = Compiled(fun, optimize=False)
    craw = Compiled(raw, optimize=False)
    copt = Compiled(opt, optimize=False)
    benchmark(lambda: copt(ass, seed))
    wp = prim.cost(ass).work
    wr = craw.cost(ass, seed).work
    wo = copt.cost(ass, seed).work
    write_table(
        "ablation_a3_dce",
        [
            "A3: perfect map nest (Fig. 2) — re-executed forward sweeps are dead code",
            f"primal work {wp}; adjoint work before DCE {wr} ({wr/wp:.2f}x); after DCE {wo} ({wo/wp:.2f}x)",
            f"statements: {count_stms(raw)} -> {count_stms(opt)}",
            "paper: perfect nests suffer no re-computation overhead after optimisation",
        ],
        rows=[
            bench_row("primal", work=wp),
            bench_row("adjoint_pre_dce", work=wr),
            bench_row("adjoint_post_dce", work=wo),
        ],
    )
    assert wo < wr
    assert wo <= 6 * wp


# --- A4: specialised reduce rules ----------------------------------------------------------


def test_ablation_a4_reduce_special_vs_general(benchmark):
    n = 50_000
    xs = rng.standard_normal(n) + 2.0

    f_special = rp.compile(rp.trace_like(lambda v: rp.sum(v), (xs,)))
    # An opaque addition defeats operator recognition → the general
    # two-scan rule is used.
    # minimum(a+b, huge) is semantically (+) on finite data but defeats
    # operator recognition, forcing the general two-scan rule.
    f_general = rp.compile(
        rp.trace_like(lambda v: rp.reduce(lambda a, b: rp.minimum(a + b, 1e300), 0.0, v), (xs,))
    )
    g_s = rp.grad(f_special)
    g_g = rp.grad(f_general)
    np.testing.assert_allclose(g_s(xs), g_g(xs), rtol=1e-10)
    benchmark(lambda: g_s(xs))
    t_s = timeit(lambda: g_s(xs))
    t_g = timeit(lambda: g_g(xs))
    write_table(
        "ablation_a4_reduce_special",
        [
            "A4: reduce(+) adjoint — §5.1.1 special case vs general two-scan rule",
            f"n={n}: special {t_s*1000:.1f} ms, general {t_g*1000:.1f} ms ({t_g/t_s:.1f}x slower)",
            "paper: the general rule needs ≥5 global memory accesses/element vs 1;",
            "our gap is amplified because unrecognised scan operators execute",
            "sequentially in the simulator (a real GPU keeps them parallel).",
        ],
        rows=[
            bench_row("reduce_special", seconds=t_s),
            bench_row("reduce_general", seconds=t_g),
        ],
    )
    assert t_s < t_g


# --- A5: SOAC fusion on/off ---------------------------------------------------------


GMM_A5 = (128, 8, 8)


@pytest.fixture(scope="module")
def gmm_fusion_pair():
    n, d, K = GMM_A5
    args = datagen.gmm_instance(n, d, K, 0)[:4]
    fun = gmm.build_ir(n, d, K)
    g_on = vjp(rp.compile(fun), wrt=[0, 1, 2])
    g_off = vjp(rp.compile(fun, passes=AD_SAFE_PASSES), wrt=[0, 1, 2], passes=AD_SAFE_PASSES)
    return args, g_on, g_off


@pytest.mark.parametrize("fused", [True, False])
def test_ablation_a5_fusion(benchmark, fused, gmm_fusion_pair):
    args, g_on, g_off = gmm_fusion_pair
    g = g_on if fused else g_off
    seeds = args + (1.0,)
    benchmark(lambda: g(*seeds, backend=BENCH_BACKEND))
    if not fused:
        t_on = timeit(lambda: g_on(*seeds, backend=BENCH_BACKEND))
        t_off = timeit(lambda: g_off(*seeds, backend=BENCH_BACKEND))
        s_on, s_off = count_soacs(g_on.fun), count_soacs(g_off.fun)
        write_table(
            "ablation_a5_fusion",
            [
                "A5: SOAC fusion on/off — GMM gradient (pass-registry flag)",
                f"shape {GMM_A5}: fused {t_on*1000:.1f} ms / {s_on} SOACs, "
                f"unfused {t_off*1000:.1f} ms / {s_off} SOACs",
                "fusion inlines producers into consumers (redomap shapes), so the",
                "post-AD gradient materialises fewer intermediates per pass.",
            ],
            rows=[
                bench_row("fusion_on", seconds=t_on, soacs=s_on),
                bench_row("fusion_off", seconds=t_off, soacs=s_off),
            ],
        )
        assert s_on < s_off


# --- A6: sharded execution on/off ---------------------------------------------------

GMM_A6 = (256, 8, 16)  # n, d, K -> K*d = 128 forward basis seeds


@pytest.fixture(scope="module")
def gmm_full_jacobian():
    """The GMM full Jacobian w.r.t. the means: all K·d forward basis seeds
    stacked on a leading batch axis (`call_batched`), which is exactly the
    axis the shard backend partitions across workers."""
    n, d, K = GMM_A6
    alphas, means, icf, x = datagen.gmm_instance(n, d, K, 0)[:4]
    fwd = rp.jvp(rp.compile(gmm.build_ir(n, d, K)))
    m = K * d
    seeds = np.eye(m).reshape(m, K, d)
    zeros = (np.zeros_like(alphas), np.zeros_like(icf), np.zeros_like(x))

    def jac(backend):
        out = fwd.call_batched(
            (alphas, means, icf, x, zeros[0], seeds, zeros[1], zeros[2]),
            (False, False, False, False, False, True, False, False),
            m,
            backend=backend,
        )
        return np.asarray(out[-1]).reshape(m)

    return jac


@pytest.mark.parametrize("sharded_on", [False, True])
def test_ablation_a6_shard(benchmark, sharded_on, gmm_full_jacobian, monkeypatch):
    from repro.exec.shard import shard_stats, shutdown_shard_pool

    jac = gmm_full_jacobian
    workers = min(4, os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_SHARD_WORKERS", str(workers))
    backend = "shard" if sharded_on else "plan"
    benchmark(lambda: jac(backend))
    if sharded_on:
        np.testing.assert_allclose(jac("shard"), jac("plan"), rtol=1e-9, atol=1e-12)
        t_plan = timeit(lambda: jac("plan"))
        t_shard = timeit(lambda: jac("shard"))
        st = shard_stats()
        shutdown_shard_pool()
        speedup = t_plan / t_shard
        write_table(
            "ablation_a6_shard",
            [
                "A6: shard on/off — GMM full Jacobian wrt means (batched fwd seeds)",
                f"shape {GMM_A6}, {GMM_A6[1] * GMM_A6[2]} seeds: "
                f"plan {t_plan * 1000:.1f} ms, shard {t_shard * 1000:.1f} ms "
                f"({speedup:.2f}x, {st['workers']} {st['mode']} workers, "
                f"cpu_count={os.cpu_count()})",
                "the stacked seed axis is partitioned across the worker pool;",
                "the win tracks the physical core count (>=1.5x expected at 4+",
                "cores; a 1-core box records ~1.0x and that is the honest number).",
            ],
            rows=[
                bench_row("plan", seconds=t_plan, backend="plan"),
                bench_row("shard", seconds=t_shard, backend="shard",
                          workers=st["workers"], mode=st["mode"]),
            ],
        )
        # The >=1.5x acceptance bar only applies where the hardware can
        # deliver it; smaller boxes record the measurement without asserting.
        if (os.cpu_count() or 1) >= 4 and st["mode"] == "thread":
            assert speedup >= 1.5


# --- A7: plan-cache tier-2 specialisation on/off -------------------------------------

#: ≥5 distinct shape signatures of ONE Fun.  The app IRs bake their extents
#: at trace time (iota constants), so the sweep uses a size-polymorphic
#: GMM-style log-sum-exp kernel; the Table 1 workloads below measure the
#: specialised-vs-generic wall clock at their (fixed) bench sizes.
A7_SIZES = (24, 32, 48, 64, 96)


@pytest.fixture(scope="module")
def a7_workloads():
    rng7 = np.random.default_rng(7)

    def kernel(xs, ws):
        return rp.sum(
            rp.map(lambda x: rp.log(rp.sum(rp.map(lambda w: rp.exp(x * w), ws))), xs)
        )

    g_sweep = vjp(
        rp.compile(rp.trace_like(kernel, (np.ones(8), np.ones(16)))), wrt=[0, 1]
    )
    sweep_args = [
        (rng7.standard_normal(n), rng7.standard_normal(16), 1.0) for n in A7_SIZES
    ]
    n, d, K = GMM_A5
    gmm_args = datagen.gmm_instance(n, d, K, 0)[:4] + (1.0,)
    g_gmm = vjp(rp.compile(gmm.build_ir(n, d, K)), wrt=[0, 1, 2])
    (gc, gp, gw, feats), _fc, _jv, jv_raw = ba_setup(16, 64, 256)
    ba_jac = lambda: ba.jacobian_ad(jv_raw, gc, gp, gw, feats, backend="plan")
    return (g_sweep, sweep_args), (g_gmm, gmm_args), ba_jac


def test_ablation_a7_plan_specialize(benchmark, a7_workloads, monkeypatch):
    from repro.exec.plan import clear_plan_cache, plan_cache_stats

    (g_sweep, sweep_args), (g_gmm, gmm_args), ba_jac = a7_workloads

    def sweep():
        for a in sweep_args:
            g_sweep(*a, backend="plan")

    def table1():
        g_gmm(*gmm_args, backend="plan")
        ba_jac()

    def measure():
        clear_plan_cache()
        sweep(); table1()  # lower the generic plans
        sweep(); table1()  # hit (and, when enabled, promote)
        t_sweep = timeit(sweep)
        t_t1 = timeit(table1)
        res = [np.asarray(g_sweep(*a, backend="plan")[1]) for a in sweep_args]
        return t_sweep, t_t1, res, plan_cache_stats()

    monkeypatch.setenv("REPRO_PLAN_SPECIALIZE", "0")
    tg_sweep, tg_t1, res_gen, st_gen = measure()
    # the tier-1 acceptance invariant: one generic lowering serves all
    # >=5 signatures of the swept Fun (checked in isolation)
    clear_plan_cache()
    sweep()
    st_iso = plan_cache_stats()
    assert st_iso["misses"] == 1, st_iso
    assert st_iso["hits"] == len(A7_SIZES) - 1, st_iso

    monkeypatch.setenv("REPRO_PLAN_SPECIALIZE", "1")
    monkeypatch.setenv("REPRO_PLAN_SPECIALIZE_AFTER", "1")
    ts_sweep, ts_t1, res_spec, st_spec = measure()
    assert st_spec["promotions"] >= len(A7_SIZES), st_spec
    assert st_spec["spec_folds"] > 0, st_spec
    # specialised and generic plans agree bitwise
    for a, b in zip(res_gen, res_spec):
        np.testing.assert_array_equal(a, b)

    benchmark(sweep)
    write_table(
        "ablation_a7_specialize",
        [
            "A7: plan-cache tier-2 specialisation on/off (REPRO_PLAN_SPECIALIZE)",
            f"shape sweep {A7_SIZES} of one Fun: generic {tg_sweep*1000:.1f} ms, "
            f"specialised {ts_sweep*1000:.1f} ms ({tg_sweep/ts_sweep:.2f}x); "
            f"1 generic lowering, {st_spec['promotions']} promotions, "
            f"{st_spec['spec_folds']} folds",
            f"Table 1 (GMM grad {GMM_A5} + BA jac (16,64,256)): generic "
            f"{tg_t1*1000:.1f} ms, specialised {ts_t1*1000:.1f} ms "
            f"({tg_t1/ts_t1:.2f}x)",
            "tier 1 lowers once per rank/dtype signature (misses==1 across the",
            "sweep); tier 2 folds Size/iota/extent constants per concrete shape",
            "and must be wall-clock no slower than generic (bitwise-equal results).",
        ],
        rows=[
            bench_row("sweep/generic", seconds=tg_sweep, backend="plan"),
            bench_row("sweep/specialized", seconds=ts_sweep, backend="plan",
                      promotions=st_spec["promotions"],
                      spec_folds=st_spec["spec_folds"]),
            bench_row("table1_gmm_ba/generic", seconds=tg_t1, backend="plan"),
            bench_row("table1_gmm_ba/specialized", seconds=ts_t1, backend="plan"),
        ],
    )
    # "no slower than generic", with headroom for interpreter noise
    assert ts_sweep <= tg_sweep * 1.25, (ts_sweep, tg_sweep)
    assert ts_t1 <= tg_t1 * 1.25, (ts_t1, tg_t1)


# --- A8: cost-model-guided decisions vs static heuristics ----------------------------

#: Table 5 GMM gradient shape and Table 3 kmeans gradient shape, scaled down
#: like every other ablation (the decision *parity* is what A8 asserts; the
#: wall-clock ratio is recorded honestly at these sizes).
GMM_A8 = (128, 8, 8)
KMEANS_A8 = (8, 512, 4)


def _a8_fusion_pair(monkeypatch, mode):
    """Trace + differentiate the A8 workloads under one REPRO_FUSE_COST
    mode.  The optimisation memo keys on the mode, so flipping the env var
    between builds cannot serve stale fused programs."""
    monkeypatch.setenv("REPRO_FUSE_COST", mode)
    n, d, K = GMM_A8
    gmm_args = datagen.gmm_instance(n, d, K, 0)[:4] + (1.0,)
    g_gmm = vjp(rp.compile(gmm.build_ir(n, d, K)), wrt=[0, 1, 2])
    k, kn, kd = KMEANS_A8
    pts, ctr = datagen.kmeans_instance(k, kn, kd, 0)
    g_km = vjp(rp.compile(kmeans.build_ir(kn, k, kd)), wrt=[1])
    return (g_gmm, gmm_args), (g_km, (pts, ctr))


def test_ablation_a8_cost_model(benchmark, monkeypatch):
    from repro.opt.fusion import fusion_stats, reset_fusion_stats
    from repro.exec.shard import reset_shard_stats, shard_stats, shutdown_shard_pool

    # -- part 1: cost-guided vs monotone fusion --------------------------------
    reset_fusion_stats()
    (gg_on, gmm_args), (gk_on, km_args) = _a8_fusion_pair(monkeypatch, "on")
    st_fuse = fusion_stats()
    (gg_mono, _), (gk_mono, _) = _a8_fusion_pair(monkeypatch, "always")
    s_on = count_soacs(gg_on.fun) + count_soacs(gk_on.fun)
    s_mono = count_soacs(gg_mono.fun) + count_soacs(gk_mono.fun)

    def run_pair(gg, gk):
        out = []
        for g, args in ((gg, gmm_args), (gk, km_args + (1.0,))):
            res = g(*args, backend=BENCH_BACKEND)
            out.extend(np.asarray(r) for r in (res if isinstance(res, tuple) else (res,)))
        return out

    res_on, res_mono = run_pair(gg_on, gk_on), run_pair(gg_mono, gk_mono)
    for a, b in zip(res_on, res_mono):
        np.testing.assert_array_equal(a, b)  # guided == monotone, bitwise

    t_on = timeit(lambda: run_pair(gg_on, gk_on))
    t_mono = timeit(lambda: run_pair(gg_mono, gk_mono))

    # -- part 2: cost-derived chunking vs the static knobs --------------------
    workers = min(4, os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_SHARD_WORKERS", str(workers))
    xs = rng.standard_normal(200_000)
    fc = rp.compile(
        rp.trace_like(
            lambda v: rp.map(lambda x: rp.sin(x) * rp.exp(-x * x) + x * 0.5, v), (xs,)
        )
    )

    def shard_run():
        return np.asarray(fc(xs, backend="shard"))

    def measure(min_chunk, max_tasks):
        """One configuration: warm twice (plan cache, pool, ufunc caches),
        then take the median of 7 repeats — both configs measured the same
        way so neither rides the other's warm-up."""
        if min_chunk is None:
            monkeypatch.delenv("REPRO_SHARD_MIN_CHUNK", raising=False)
            monkeypatch.delenv("REPRO_SHARD_MAX_TASKS", raising=False)
        else:
            monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", min_chunk)
            monkeypatch.setenv("REPRO_SHARD_MAX_TASKS", max_tasks)
        reset_shard_stats()
        res = shard_run()
        chunks = shard_stats()["chunks"]
        shard_run()
        return res, chunks, timeit(shard_run, repeats=7)

    r_guided, chunks_guided, t_guided = measure(None, None)
    r_static, chunks_static, t_static = measure("1024", "16")
    shutdown_shard_pool()
    # map-kind shard points recombine by concatenation: chunk geometry can
    # never change the numbers, so guided chunking is bitwise-safe.
    np.testing.assert_array_equal(r_guided, r_static)

    benchmark(lambda: run_pair(gg_on, gk_on))
    write_table(
        "ablation_a8_cost_model",
        [
            "A8: static cost model — guided vs cost-blind decisions",
            f"fusion (GMM {GMM_A8} + kmeans {KMEANS_A8} gradients): guided "
            f"{t_on*1000:.1f} ms / {s_on} SOACs, monotone {t_mono*1000:.1f} ms "
            f"/ {s_mono} SOACs ({t_mono/t_on:.2f}x, cost_rejected="
            f"{st_fuse['cost_rejected']})",
            f"shard chunking (200k-elem map, {workers} workers): derived "
            f"{t_guided*1000:.1f} ms / {chunks_guided} chunks, static knobs "
            f"{t_static*1000:.1f} ms / {chunks_static} chunks "
            f"({t_static/t_guided:.2f}x)",
            "guided fusion accepts exactly the candidates the estimator",
            "predicts to cut traffic (identical decisions on these programs,",
            "bitwise-equal results); chunk counts now derive from estimated",
            "per-element work against REPRO_COST_TASK_GRAIN instead of the",
            "static REPRO_SHARD_MIN_CHUNK floor (kept as an override).",
        ],
        rows=[
            bench_row("fusion/guided", seconds=t_on, soacs=s_on,
                      cost_rejected=st_fuse["cost_rejected"]),
            bench_row("fusion/monotone", seconds=t_mono, soacs=s_mono),
            bench_row("chunking/derived", seconds=t_guided, backend="shard",
                      chunks=chunks_guided, workers=workers),
            bench_row("chunking/static_knobs", seconds=t_static, backend="shard",
                      chunks=chunks_static, workers=workers),
        ],
    )
    # guided must be >= 1.0x monotone/static up to timing noise
    assert t_on <= t_mono * 1.15, (t_on, t_mono)
    assert t_guided <= t_static * 1.25, (t_guided, t_static)
    assert s_on == s_mono  # the gate accepted every profitable fusion


# --- A9: source codegen vs the closure interpreter -----------------------------------

#: Two regimes.  The GMM gradient (A8 scale) is array-bound: NumPy kernels
#: dominate and codegen only trims the residual per-instruction dispatch.
#: The scalar loops are dispatch-bound: almost every "instruction" is a
#: handful of FLOPs, so the closure interpreter's per-op indirection *is*
#: the cost, and rendering the plan IR to one Python function removes it.
GMM_A9 = GMM_A8
A9_FORI_ITERS = 512
A9_WHILE_LIMIT = 1000.0


def test_ablation_a9_codegen(benchmark):
    from repro.exec.plan import clear_plan_cache, plan_cache_stats

    n, d, K = GMM_A9
    gmm_args = datagen.gmm_instance(n, d, K, 0)[:4] + (1.0,)
    g_gmm = vjp(rp.compile(gmm.build_ir(n, d, K)), wrt=[0, 1, 2])

    def scalar_fori(x, v):
        def body(i, a):
            s = rp.sin(a) * 0.5 + rp.cos(a * a) * 0.25
            return a + s * rp.sum(v) * 1e-3
        return rp.fori_loop(A9_FORI_ITERS, body, x)

    def scalar_while(x):
        return rp.while_loop(
            lambda a: a < A9_WHILE_LIMIT, lambda a: a + rp.sin(a) * 0.1 + 1.0, x
        )

    fori_args = (0.1, rng.standard_normal(4))
    fc_fori = rp.compile(rp.trace_like(scalar_fori, fori_args))
    while_args = (0.0,)
    fc_while = rp.compile(rp.trace_like(scalar_while, while_args))

    workloads = [
        ("gmm_grad", lambda be: g_gmm(*gmm_args, backend=be), 3),
        ("scalar_fori", lambda be: fc_fori(*fori_args, backend=be), 7),
        ("scalar_while", lambda be: fc_while(*while_args, backend=be), 7),
    ]

    clear_plan_cache()
    times = {}
    for name, run, reps in workloads:
        res_plan = run("plan")
        res_cg = run("codegen")
        rp_ = res_plan if isinstance(res_plan, tuple) else (res_plan,)
        rc = res_cg if isinstance(res_cg, tuple) else (res_cg,)
        for a, b in zip(rp_, rc):
            # same lowering, same NumPy call sequence: bitwise, not approximate
            np.testing.assert_array_equal(np.asarray(a), np.asarray(b))
        times[name] = (
            timeit(lambda: run("plan"), repeats=reps),
            timeit(lambda: run("codegen"), repeats=reps),
        )

    em = plan_cache_stats()["emitters"]["codegen"]
    benchmark(lambda: fc_fori(*fori_args, backend="codegen"))

    lines = [
        "A9: source codegen (plan IR -> one compiled Python function) vs the",
        "closure interpreter (per-instruction dispatch); identical lowering,",
        "bitwise-equal results asserted on every workload.",
    ]
    rows = []
    for name, (tp, tc) in times.items():
        lines.append(
            f"{name:12s} plan {tp*1000:8.2f} ms, codegen {tc*1000:8.2f} ms "
            f"({tp/tc:.2f}x)"
        )
        rows.append(bench_row(f"{name}/plan", seconds=tp, backend="plan"))
        rows.append(bench_row(f"{name}/codegen", seconds=tc, backend="codegen"))
    lines.append(
        f"codegen cache: {em['code_objects']} code objects, "
        f"{em['source_bytes']} source bytes, compile {em['compile_s']*1000:.1f} ms"
    )
    lines.append(
        "dispatch-bound scalar loops must win outright; the array-bound GMM"
    )
    lines.append(
        "gradient must be no slower than the interpreter (NumPy-bound)."
    )
    rows.append(bench_row("codegen_cache", backend="codegen",
                          code_objects=em["code_objects"],
                          source_bytes=em["source_bytes"],
                          compile_s=em["compile_s"]))
    write_table("ablation_a9_codegen", lines, rows=rows)

    # dispatch-bound: codegen must be >= 1.0x the interpreter, outright
    assert times["scalar_fori"][1] <= times["scalar_fori"][0], times["scalar_fori"]
    assert times["scalar_while"][1] <= times["scalar_while"][0], times["scalar_while"]
    # array-bound: no slower, with headroom for timing noise
    tp, tc = times["gmm_grad"]
    assert tc <= tp * 1.15, (tc, tp)

    # Verification-cost guard: every REPRO_VERIFY layer runs at *compile*
    # time, so hot cached-plan calls must be unaffected by the knob — the
    # verify counters stand still across the timed region, and wall clock
    # with boundary checking on stays within 2% of verification disabled
    # (plus a small absolute slack: these calls are sub-millisecond).
    from repro.ir.verify import VERIFY_STATS

    def run_hot():
        return fc_fori(*fori_args, backend="codegen")

    env0 = os.environ.get("REPRO_VERIFY")
    try:
        run_hot()  # plan cache is hot from the timings above
        c0 = None
        t_off = t_bnd = float("inf")
        # Interleave the two modes and compare minima: min-of-rounds is
        # robust to machine drift where one median block vs another is not.
        for _ in range(3):
            os.environ["REPRO_VERIFY"] = "off"
            t_off = min(t_off, timeit(run_hot, repeats=7))
            os.environ["REPRO_VERIFY"] = "boundary"
            if c0 is None:
                c0 = dict(VERIFY_STATS)
            t_bnd = min(t_bnd, timeit(run_hot, repeats=7))
        assert dict(VERIFY_STATS) == c0, "verifier ran on a cached-plan call"
        assert t_bnd <= t_off * 1.02 + 2e-4, (t_bnd, t_off)
    finally:
        if env0 is None:
            os.environ.pop("REPRO_VERIFY", None)
        else:
            os.environ["REPRO_VERIFY"] = env0


# --- A10: execution schedules (cost-model default vs forced overrides) ----------

#: GMM sizes reuse A6 (the batched-seed shard axis); the LSTM sizes keep the
#: scan long enough that the recurrence, not setup, dominates.
GMM_A10 = GMM_A6
LSTM_A10 = (4, 24, 12, 16)  # bs, n, d, h


def test_ablation_a10_schedule(benchmark, monkeypatch):
    from repro.exec.shard import shutdown_shard_pool
    from repro.ir.cost_model import choose_schedule, stm_work
    from repro.ir.schedule import SCHEDULABLE, format_schedule

    monkeypatch.delenv("REPRO_SCHEDULE", raising=False)
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")

    # GMM full Jacobian w.r.t. the means: all K·d forward basis seeds
    # stacked on a leading batch axis (the axis shard partitions).
    n, d, K = GMM_A10
    alphas, means, icf, x = datagen.gmm_instance(n, d, K, 0)[:4]
    fwd = rp.jvp(rp.compile(gmm.build_ir(n, d, K)))
    m = K * d
    seeds = np.eye(m).reshape(m, K, d)
    zeros = (np.zeros_like(alphas), np.zeros_like(icf), np.zeros_like(x))

    def gmm_jac(fc, backend):
        out = fc.call_batched(
            (alphas, means, icf, x, zeros[0], seeds, zeros[1], zeros[2]),
            (False, False, False, False, False, True, False, False),
            m,
            backend=backend,
        )
        return np.asarray(out[-1]).reshape(m)

    # LSTM sequence loss: the scan-carried recurrence.
    bs, ln, ld, lh = LSTM_A10
    xs, wx, wh, b, wy, h0, c0, tg = datagen.lstm_instance(bs, ln, ld, lh, 0)
    lc = rp.compile(lstm.build_ir(xs.shape[0], xs.shape[1], xs.shape[2], wh.shape[1]))
    largs = (xs, wx, wh, b, wy, tg)

    def lstm_loss(fc, backend):
        return np.asarray(fc(*largs, backend=backend))

    workloads = [
        ("gmm_jacobian", fwd, gmm_jac),
        ("lstm_scan", lc, lstm_loss),
    ]
    lines = [
        "A10: cost-model default schedule vs forced REPRO_SCHEDULE overrides.",
        "sequential(64) runs on plan and must be bitwise-equal to the default;",
        "parallel(2) runs on shard at 2 pinned workers (allclose).  'chosen'",
        "is the cost model's pick for the workload's dominant statement.",
    ]
    rows = []
    for name, base, run in workloads:
        stms = [s for s in base.fun.body.stms if isinstance(s.exp, SCHEDULABLE)]
        chosen = "-"
        if stms:
            dom = max(stms, key=stm_work)
            chosen = format_schedule(choose_schedule(dom, workers=2))

        ref = run(base, "plan")
        t_def = timeit(lambda: run(base, "plan"))
        rows.append(bench_row(f"{name}/default", seconds=t_def, backend="plan",
                              schedule="(cost model)", chosen_schedule=chosen))

        # schedules are applied at compile time, so forced variants rebuild
        # from the already-optimised fun under the REPRO_SCHEDULE override
        monkeypatch.setenv("REPRO_SCHEDULE", "sequential(64)")
        seq = Compiled(base.fun, optimize=False)
        np.testing.assert_array_equal(run(seq, "plan"), ref)
        t_seq = timeit(lambda: run(seq, "plan"))
        rows.append(bench_row(f"{name}/sequential(64)", seconds=t_seq,
                              backend="plan", schedule="sequential(64)",
                              chosen_schedule=chosen))

        monkeypatch.setenv("REPRO_SCHEDULE", "parallel(2)·vectorized")
        par = Compiled(base.fun, optimize=False)
        np.testing.assert_allclose(run(par, "shard"), ref, rtol=1e-9, atol=1e-12)
        t_par = timeit(lambda: run(par, "shard"))
        rows.append(bench_row(f"{name}/parallel(2)", seconds=t_par,
                              backend="shard",
                              schedule="parallel(2)·vectorized",
                              chosen_schedule=chosen))
        monkeypatch.delenv("REPRO_SCHEDULE")

        lines.append(
            f"{name:14s} chosen {chosen:24s} default {t_def*1000:8.2f} ms, "
            f"sequential(64) {t_seq*1000:8.2f} ms, "
            f"parallel(2) {t_par*1000:8.2f} ms"
        )
    shutdown_shard_pool()
    benchmark(lambda: lstm_loss(lc, "plan"))
    write_table("ablation_a10_schedule", lines, rows=rows)
