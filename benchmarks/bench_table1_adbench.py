"""Table 1 — ADBench (sequential-AD comparison).

Paper: time to compute the full Jacobian relative to the objective, for
BA / D-LSTM / GMM / HAND; Futhark vs Tapenade vs Manual.

Here: our AD ("Futhark" row) vs the eager tape baseline ("Tapenade" row,
same store-all reverse strategy) vs hand-written derivatives ("Manual").
Sizes are ADBench-shaped, scaled for the interpreted executors.

Paper-reported ratios (their Table 1):
            BA    D-LSTM  GMM   HAND(c) HAND(s)
  Futhark   13.0  3.2     5.1   49.8    45.4
  Tapenade  10.3  4.5     5.4   3758.7  59.2
  Manual    8.6   6.2     4.6   4.6     4.4
"""
import numpy as np
import pytest

import repro as rp
from repro.apps import ba, gmm, hand, lstm
from repro.baselines import eager as eg
from common import (
    ba_setup,
    bench_row,
    gmm_setup,
    hand_setup,
    lstm_setup,
    on_bench_backend,
    timeit,
    write_table,
)

PAPER = {
    "BA": {"Futhark": 13.0, "Tapenade": 10.3, "Manual": 8.6},
    "D-LSTM": {"Futhark": 3.2, "Tapenade": 4.5, "Manual": 6.2},
    "GMM": {"Futhark": 5.1, "Tapenade": 5.4, "Manual": 4.6},
    "HAND": {"Futhark": 45.4, "Tapenade": 59.2, "Manual": 4.4},
    "HAND-C": {"Futhark": 49.8, "Tapenade": 3758.7, "Manual": 4.6},
}

_ROWS = {}
_SECS = {}


def _record(problem, impl, ratio, seconds=None):
    _ROWS.setdefault(problem, {})[impl] = ratio
    if seconds is not None:
        _SECS[(problem, impl)] = seconds
    if all(len(v) == 3 for v in _ROWS.values()) and len(_ROWS) == 5:
        lines = ["Table 1: full-Jacobian time / objective time (lower is better)",
                 f"{'problem':8s} {'ours':>8s} {'tape':>8s} {'manual':>8s}   paper(Fut/Tap/Man)"]
        for p, v in _ROWS.items():
            pp = PAPER[p]
            lines.append(
                f"{p:8s} {v['ours']:8.1f} {v['tape']:8.1f} {v['manual']:8.1f}   "
                f"{pp['Futhark']:.1f}/{pp['Tapenade']:.1f}/{pp['Manual']:.1f}"
            )
        rows = [
            bench_row(
                f"{p}/{impl}",
                seconds=_SECS.get((p, impl)),
                jac_over_obj_ratio=r,
            )
            for p, v in _ROWS.items()
            for impl, r in v.items()
        ]
        write_table("table1_adbench", lines, rows=rows)


# ---------------------------------------------------------------------------
# GMM: gradient (K·(d+1)(d/2+1)+K inputs → scalar) — vjp, one pass
# ---------------------------------------------------------------------------

GMM_N, GMM_D, GMM_K = 128, 8, 8


def test_table1_gmm_ours(benchmark):
    args, fc, g = gmm_setup(GMM_N, GMM_D, GMM_K)
    t_obj = timeit(fc, *args)
    t_jac = benchmark(lambda: g(*args))
    t_jac = timeit(lambda: g(*args))
    _record("GMM", "ours", t_jac / t_obj, seconds=t_jac)


def test_table1_gmm_tape(benchmark):
    args, fc, g = gmm_setup(GMM_N, GMM_D, GMM_K)
    alphas, means, icf, x = args
    obj = lambda: gmm.objective_eager(eg.T(alphas), eg.T(means), eg.T(icf), x).data
    gr = eg.grad(lambda a, m, i: gmm.objective_eager(a, m, i, x))
    t_obj = timeit(obj)
    benchmark(lambda: gr(alphas, means, icf))
    t = timeit(lambda: gr(alphas, means, icf))
    _record("GMM", "tape", t / t_obj, seconds=t)


def test_table1_gmm_manual(benchmark):
    args, fc, g = gmm_setup(GMM_N, GMM_D, GMM_K)
    t_obj = timeit(lambda: gmm.objective_np(*args))
    benchmark(lambda: gmm.grad_manual(*args))
    t = timeit(lambda: gmm.grad_manual(*args))
    _record("GMM", "manual", t / t_obj, seconds=t)


# ---------------------------------------------------------------------------
# BA: sparse Jacobian via seeded passes (ours: both residual-component
# reverse passes evaluated in one batched call_batched pass on the bulk
# backends — see ba.jacobian_ad)
# ---------------------------------------------------------------------------

from common import BENCH_BACKEND

BA_CAMS, BA_PTS, BA_OBS = 16, 64, 256


def _ba_jac_ours(jv_raw, gc, gp, gw, feats):
    ba.jacobian_ad(jv_raw, gc, gp, gw, feats, backend=BENCH_BACKEND)


def test_table1_ba_ours(benchmark):
    (gc, gp, gw, feats), fc, jv, jv_raw = ba_setup(BA_CAMS, BA_PTS, BA_OBS)
    t_obj = timeit(fc, gc, gp, gw, feats)
    benchmark(lambda: _ba_jac_ours(jv_raw, gc, gp, gw, feats))
    t = timeit(lambda: _ba_jac_ours(jv_raw, gc, gp, gw, feats))
    _record("BA", "ours", t / t_obj, seconds=t)


def test_table1_ba_tape(benchmark):
    (gc, gp, gw, feats), fc, jv, jv_raw = ba_setup(BA_CAMS, BA_PTS, BA_OBS)

    def obj():
        return [t.data for t in ba.residuals_eager(gc, gp, gw, feats)]

    def jac():
        for comp in range(2):
            eg.tape.reset()
            tc, tp, tw = eg.T(gc, requires_grad=True), eg.T(gp, requires_grad=True), eg.T(gw, requires_grad=True)
            es = ba.residuals_eager(tc, tp, tw, feats)
            es[comp].backward(np.ones(gc.shape[0]))

    t_obj = timeit(obj)
    benchmark(jac)
    t = timeit(jac)
    _record("BA", "tape", t / t_obj, seconds=t)


def test_table1_ba_manual(benchmark):
    (gc, gp, gw, feats), fc, jv, jv_raw = ba_setup(BA_CAMS, BA_PTS, BA_OBS)
    t_obj = timeit(lambda: ba.residuals_np(gc, gp, gw, feats))
    benchmark(lambda: ba.jacobian_manual(gc, gp, gw, feats))
    t = timeit(lambda: ba.jacobian_manual(gc, gp, gw, feats))
    _record("BA", "manual", t / t_obj, seconds=t)


# ---------------------------------------------------------------------------
# D-LSTM: gradient of the sequence loss
# ---------------------------------------------------------------------------

LSTM_BS, LSTM_N, LSTM_D, LSTM_H = 8, 6, 10, 12


def test_table1_dlstm_ours(benchmark):
    (a, fc, g, fwd_raw) = lstm_setup(LSTM_BS, LSTM_N, LSTM_D, LSTM_H)
    args = a
    t_obj = timeit(fc, *args)
    benchmark(lambda: g(*args))
    t = timeit(lambda: g(*args))
    _record("D-LSTM", "ours", t / t_obj, seconds=t)


def test_table1_dlstm_tape(benchmark):
    (args, fc, g, fwd_raw) = lstm_setup(LSTM_BS, LSTM_N, LSTM_D, LSTM_H)
    xs, wx, wh, b, wy, tg = args
    obj = lambda: lstm.loss_eager(xs, wx, wh, b, wy, tg).data
    gr = eg.grad(lambda a_, b_, c_, d_: lstm.loss_eager(xs, a_, b_, c_, d_, tg))
    t_obj = timeit(obj)
    benchmark(lambda: gr(wx, wh, b, wy))
    t = timeit(lambda: gr(wx, wh, b, wy))
    _record("D-LSTM", "tape", t / t_obj, seconds=t)


def test_table1_dlstm_manual(benchmark):
    (args, fc, g, fwd_raw) = lstm_setup(LSTM_BS, LSTM_N, LSTM_D, LSTM_H)
    t_obj = timeit(lambda: lstm.loss_np(*args))
    benchmark(lambda: lstm.grad_manual(*args))
    t = timeit(lambda: lstm.grad_manual(*args))
    _record("D-LSTM", "manual", t / t_obj, seconds=t)


# ---------------------------------------------------------------------------
# HAND (simple): dense Jacobian over 3·B pose directions (forward mode;
# ours: all 3·B basis seeds stacked on a leading batch axis and evaluated in
# one call_batched pass — see hand.jacobian_fwd_ad)
# ---------------------------------------------------------------------------

HAND_B, HAND_V = 6, 48


def _hand_jac_ours(fwd_raw, theta, base, wghts, tgts):
    hand.jacobian_fwd_ad(fwd_raw, theta, base, wghts, tgts, backend=BENCH_BACKEND)


def test_table1_hand_ours(benchmark):
    (theta, base, wghts, tgts), fc, fwd_raw = hand_setup(HAND_B, HAND_V)
    t_obj = timeit(fc, theta, base, wghts, tgts)
    benchmark(lambda: _hand_jac_ours(fwd_raw, theta, base, wghts, tgts))
    t = timeit(lambda: _hand_jac_ours(fwd_raw, theta, base, wghts, tgts))
    _record("HAND", "ours", t / t_obj, seconds=t)


def test_table1_hand_tape(benchmark):
    (theta, base, wghts, tgts), fc, fwd_raw = hand_setup(HAND_B, HAND_V)
    obj = lambda: hand.objective_eager(theta, base, wghts, tgts).data
    # reverse-only tape computes the scalar objective's gradient 3B times to
    # emulate a Jacobian of the residual field (column extraction).
    gr = eg.grad(lambda t: hand.objective_eager(t, base, wghts, tgts))

    def jac():
        for _ in range(len(theta) // 3):
            gr(theta)

    t_obj = timeit(obj)
    benchmark(jac)
    t = timeit(jac)
    _record("HAND", "tape", t / t_obj, seconds=t)


def test_table1_hand_manual(benchmark):
    (theta, base, wghts, tgts), fc, fwd_raw = hand_setup(HAND_B, HAND_V)
    t_obj = timeit(lambda: hand.objective_np(theta, base, wghts, tgts))
    benchmark(lambda: hand.jacobian_manual(theta, base, wghts, tgts))
    t = timeit(lambda: hand.jacobian_manual(theta, base, wghts, tgts))
    _record("HAND", "manual", t / t_obj, seconds=t)


# ---------------------------------------------------------------------------
# HAND (complicated): dense pose block (forward) + sparse correspondence
# block (3 seeded reverse passes) — the variant Tapenade handles poorly.
# ---------------------------------------------------------------------------

from repro.apps.hand import (
    build_ir_complicated,
    complicated_instance,
    jacobian_complicated_manual,
    residuals_complicated_np,
)
import functools


@functools.lru_cache(maxsize=None)
def _handc_setup():
    theta, u, base, wghts, cands = complicated_instance(HAND_B, HAND_V)
    fc = rp.compile(build_ir_complicated(HAND_B, HAND_V))
    fwd = rp.jvp(fc)
    jv = rp.vjp(fc, wrt=[0, 1])
    return (
        (theta, u, base, wghts, cands),
        on_bench_backend(fc),
        on_bench_backend(fwd),
        on_bench_backend(jv),
    )


def _handc_jac_ours(fwd, jv, theta, u, base, wghts, cands):
    for j in range(len(theta)):  # dense pose block
        e = np.zeros(len(theta))
        e[j] = 1.0
        fwd(theta, u, base, wghts, cands, e, np.zeros_like(u),
            np.zeros_like(base), np.zeros_like(wghts), np.zeros_like(cands))
    for c in range(3):  # sparse correspondence block
        seeds = [np.zeros(HAND_V), np.zeros(HAND_V), np.zeros(HAND_V)]
        seeds[c] = np.ones(HAND_V)
        jv(theta, u, base, wghts, cands, *seeds)


def test_table1_handc_ours(benchmark):
    args, fc, fwd, jv = _handc_setup()
    t_obj = timeit(fc, *args)
    benchmark(lambda: _handc_jac_ours(fwd, jv, *args))
    t = timeit(lambda: _handc_jac_ours(fwd, jv, *args))
    _record("HAND-C", "ours", t / t_obj, seconds=t)


def test_table1_handc_tape(benchmark):
    args, fc, fwd, jv = _handc_setup()
    theta, u, base, wghts, cands = args
    match = (u[:, :, None] * cands).sum(1)
    obj = lambda: hand.objective_eager(theta, base, wghts, match).data
    gr = eg.grad(lambda t: hand.objective_eager(t, base, wghts, match))

    def jac():
        # reverse-only tape: one scalar backward per pose direction plus the
        # correspondence block via 3 more backward passes (modelled as calls).
        for _ in range(len(theta) // 3 + 3):
            gr(theta)

    t_obj = timeit(obj)
    benchmark(jac)
    t = timeit(jac)
    _record("HAND-C", "tape", t / t_obj, seconds=t)


def test_table1_handc_manual(benchmark):
    args, fc, fwd, jv = _handc_setup()
    theta, u, base, wghts, cands = args
    t_obj = timeit(lambda: residuals_complicated_np(*args))
    benchmark(lambda: jacobian_complicated_manual(*args))
    t = timeit(lambda: jacobian_complicated_manual(*args))
    _record("HAND-C", "manual", t / t_obj, seconds=t)
