"""Reverse-mode AD: scalar rules, simple arrays, Fig. 1 sanity."""
import math

import numpy as np
import pytest

import repro as rp
from helpers import check_grad, check_jvp_vjp_consistency

rng = np.random.default_rng(3)


def test_fig1_example():
    """The paper's running example: f(x0,x1) = (x1·sin x0, x0·x1)."""
    def P(x0, x1):
        c0 = rp.sin(x0)
        return x1 * c0, x0 * x1

    fun = rp.trace_like(P, (0.5, 0.7))
    rev = rp.vjp(rp.compile(fun))
    y0, y1, x0b, x1b = rev(0.5, 0.7, 1.0, 0.0)
    assert abs(x0b - 0.7 * math.cos(0.5)) < 1e-12
    assert abs(x1b - math.sin(0.5)) < 1e-12
    # seed the second output
    _, _, x0b, x1b = rev(0.5, 0.7, 0.0, 1.0)
    assert abs(x0b - 0.7) < 1e-12 and abs(x1b - 0.5) < 1e-12


def test_grad_scalar_chain():
    check_grad(lambda x0, x1: x1 * rp.sin(x0) + x0 * x1, (np.array(0.5), np.array(0.7)))


def test_grad_unops():
    check_grad(
        lambda x: rp.sin(x) + rp.cos(x) + rp.exp(x) + rp.tanh(x) + rp.sigmoid(x) + rp.erf(x),
        (np.array(0.3),),
    )
    check_grad(lambda x: rp.log(x) * rp.sqrt(x), (np.array(1.7),))
    check_grad(lambda x: abs(x) + (-x), (np.array(-0.4),))


def test_grad_binops():
    check_grad(lambda x, y: x / y + x**y, (np.array(1.3), np.array(2.1)))
    check_grad(lambda x, y: rp.minimum(x, y) * rp.maximum(x, y), (np.array(1.0), np.array(2.0)))
    check_grad(lambda x, y: x % y, (np.array(7.3), np.array(2.1)))


def test_grad_select():
    check_grad(lambda x: rp.where(x > 0.0, x * x, -x), (np.array(1.5),))
    check_grad(lambda x: rp.where(x > 0.0, x * x, -x), (np.array(-1.5),))


def test_grad_index_update():
    def f(xs):
        ys = rp.update(xs, 1, xs[0] * 3.0)
        return rp.sum(rp.map(lambda y: y * y, ys))

    check_grad(f, (rng.standard_normal(4),))


def test_grad_cast_int_barrier():
    # Gradients don't flow through int casts.
    def f(x):
        i = rp.astype(rp.floor(x), rp.I64)
        return x * rp.astype(i, rp.F64)

    fc, g = check_grad(f, (np.array(2.7),))


def test_multiple_uses_accumulate():
    # x used thrice: adjoint contributions must sum (Fig. 1c's repeated +=).
    check_grad(lambda x: x * x + rp.sin(x) * x, (np.array(0.8),))


def test_vjp_returns_primal_too():
    f = rp.compile(rp.trace_like(lambda x: x * x, (3.0,)))
    rev = rp.vjp(f)
    y, xb = rev(3.0, 1.0)
    assert y == 9.0 and xb == 6.0


def test_jvp_vjp_dot_consistency_simple():
    check_jvp_vjp_consistency(
        lambda xs: rp.map(lambda x: rp.tanh(x) * x, xs), (rng.standard_normal(5),)
    )


def test_grad_wrt_subsets():
    f = rp.compile(rp.trace_like(lambda x, y: x * y, (2.0, 3.0)))
    g = rp.grad(f, wrt=[0])
    assert g(2.0, 3.0) == 3.0
    g = rp.grad(f, wrt=[1])
    assert g(2.0, 3.0) == 2.0


def test_value_and_grad():
    f = rp.compile(rp.trace_like(lambda x: x * x * x, (2.0,)))
    v, g = rp.value_and_grad(f)(2.0)
    assert v == 8.0 and g == 12.0


def test_jacobian_both_modes():
    f = rp.compile(rp.trace_like(lambda xs: rp.map(lambda x: x * x, xs), (np.ones(3),)))
    x = np.array([1.0, 2.0, 3.0])
    for mode in ("fwd", "rev", None):
        J = rp.jacobian(f, mode=mode)(x)
        np.testing.assert_allclose(J, np.diag(2 * x))
