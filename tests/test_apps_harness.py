"""The programmatic experiment harness must produce sane reports."""
from repro.apps import harness


def test_ablation_dce_report():
    out = harness.ablation_dce()
    assert "primal work" in out and "after DCE" in out
    # the DCE claim itself: post-DCE multiple < pre-DCE multiple
    import re

    ratios = [float(m) for m in re.findall(r"\(([\d.]+)x\)", out)]
    assert ratios[1] < ratios[0]


def test_table1_gmm_report():
    out = harness.table1_gmm(n=24, d=3, K=2)
    assert "ours" in out and "manual" in out and "paper" in out


def test_table3_report():
    out = harness.table3(k=2, n=200, d=4)
    assert "Newton step" in out and "jvp∘vjp" in out
