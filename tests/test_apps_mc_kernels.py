"""Application-level integration tests: RSBench / XSBench-shaped kernels."""
import numpy as np
import pytest

import repro as rp
from repro.apps import datagen, rsbench, xsbench
from repro.baselines import eager as eg


def test_xsbench_objective_and_grad():
    egr, xst, le, mats, conc = datagen.xs_instance(30, 6, 16, seed=8)
    fc = rp.compile(xsbench.build_ir(30, 6, 16, mats.shape[1]))
    vn = xsbench.objective_np(egr, xst, le, mats, conc)
    assert np.allclose(fc(egr, xst, le, mats, conc), vn)
    assert np.allclose(xsbench.objective_eager(egr, xst, le, mats, conc).data, vn)
    g = rp.grad(fc, wrt=[1, 4])
    gx, gc = g(egr, xst, le, mats, conc)
    ex, ec = eg.grad(lambda x_, c_: xsbench.objective_eager(egr, x_, le, mats, c_))(xst, conc)
    np.testing.assert_allclose(gx, ex, atol=1e-8)
    np.testing.assert_allclose(gc, ec, atol=1e-8)


def test_xsbench_both_backends():
    egr, xst, le, mats, conc = datagen.xs_instance(12, 4, 8, seed=9)
    fc = rp.compile(xsbench.build_ir(12, 4, 8, mats.shape[1]))
    assert np.allclose(
        fc(egr, xst, le, mats, conc), fc(egr, xst, le, mats, conc, backend="ref")
    )


def test_rsbench_objective_and_grad():
    prr, pii, rr, ri, le2, wof = datagen.rs_instance(40, 12, 4, seed=9)
    fc = rp.compile(rsbench.build_ir(40, 4, 12))
    vn = rsbench.objective_np(prr, pii, rr, ri, le2, wof)
    assert np.allclose(fc(prr, pii, rr, ri, le2, wof), vn)
    g = rp.grad(fc, wrt=[2, 3])
    ga = g(prr, pii, rr, ri, le2, wof)
    gE = eg.grad(lambda a_, b_: rsbench.objective_eager(prr, pii, a_, b_, le2, wof))(rr, ri)
    for a, m in zip(ga, gE):
        np.testing.assert_allclose(a, m, atol=1e-8)


def test_rsbench_pole_param_grads_fd():
    prr, pii, rr, ri, le2, wof = datagen.rs_instance(10, 5, 2, seed=10)
    fc = rp.compile(rsbench.build_ir(10, 2, 5))
    g = rp.grad(fc, wrt=[0])
    ga = g(prr, pii, rr, ri, le2, wof)
    eps = 1e-6
    fd = np.zeros_like(prr)
    for w in range(prr.shape[0]):
        for p in range(prr.shape[1]):
            pp, pm = prr.copy(), prr.copy()
            pp[w, p] += eps
            pm[w, p] -= eps
            fd[w, p] = (fc(pp, pii, rr, ri, le2, wof) - fc(pm, pii, rr, ri, le2, wof)) / (2 * eps)
    np.testing.assert_allclose(ga, fd, atol=1e-4)
