"""Unit tests for the vectorised interpreter's batching machinery."""
import numpy as np
import pytest

from repro.exec.vector import BV, _align, _expand, _grids, _neutral_of
from repro.util import ExecError


def test_expand_inserts_singleton_axes():
    v = BV(np.ones((3, 4)), 1)  # one batch axis (3), payload (4,)
    d = _expand(v, 3)
    assert d.shape == (3, 1, 1, 4)


def test_expand_rejects_lowering():
    v = BV(np.ones((3, 4)), 2)
    with pytest.raises(ExecError):
        _expand(v, 1)


def test_align_batches_and_payloads():
    a = BV(np.ones((3,)), 1)          # batched scalar
    b = BV(np.ones((5,)), 0)          # unbatched vector payload
    datas, k, p = _align([a, b])
    assert k == 1 and p == 1
    assert datas[0].shape == (3, 1)
    assert datas[1].shape == (1, 5)
    # The result broadcasts to (3, 5):
    assert (datas[0] + datas[1]).shape == (3, 5)


def test_grids_shapes():
    gs = _grids((2, 3))
    assert gs[0].shape == (2, 1) and gs[1].shape == (1, 3)
    gs = _grids((2,), extra=1)
    assert gs[0].shape == (2, 1)


def test_neutral_of_dtypes():
    assert _neutral_of("add", np.dtype(np.float64)) == 0.0
    assert _neutral_of("mul", np.dtype(np.float64)) == 1.0
    assert _neutral_of("min", np.dtype(np.float64)) == np.inf
    assert _neutral_of("max", np.dtype(np.int64)) == np.iinfo(np.int64).min


def test_bv_payload_introspection():
    v = BV(np.zeros((2, 3, 4)), 1)
    assert v.prank == 2 and v.pshape() == (3, 4)
