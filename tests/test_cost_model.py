"""The static cost model (`ir/cost_model.py`) and the three decision points
it drives: the fusion gate, shard chunk sizing / shard-point selection, and
tier-2 plan-promotion amortisation.  Golden per-SOAC estimates for the GMM
and BA gradients live here too (the hypothesis-based soundness property
against ``CostRecorder`` is in ``test_props_hypothesis.py``)."""
import numpy as np
import pytest

import repro as rp
from repro.apps import ba, datagen, gmm
from repro.core.api import vjp
from repro.exec.cost import CostRecorder
from repro.exec.interp import RefInterp
from repro.exec.plan import clear_plan_cache, plan_cache_stats
from repro.exec.shard import _chunk_bounds, _edges
from repro.ir.analysis import parallel_split
from repro.ir.cost_model import (
    CostModel,
    Estimate,
    estimate_fun,
    estimate_stm,
    fusion_wins,
    promotion_threshold,
    soac_elem_cost,
    soac_estimates,
    stm_work,
)

rng = np.random.default_rng(7)


def _recorded(fun, args):
    rec = CostRecorder()
    RefInterp(rec).run(fun, args)
    return rec.snapshot()


# ---------------------------------------------------------------------------
# Estimate algebra + exact small-program estimates
# ---------------------------------------------------------------------------


def test_estimate_algebra_and_cost_conversion():
    a = Estimate(work=2.0, span=1.0, mem_reads=3.0, mem_writes=4.0)
    b = Estimate(work=1.0, span=2.0, mem_reads=0.5, mem_writes=0.5)
    s = a + b
    assert (s.work, s.span, s.mem_reads, s.mem_writes) == (3.0, 3.0, 3.5, 4.5)
    assert s.mem == 8.0 and s.total == 11.0
    seq = a.scaled(3, span_k=3)
    assert seq.work == 6.0 and seq.span == 3.0
    c = s.cost()
    assert (c.work, c.span, c.mem_reads, c.mem_writes) == (3, 3, 4, 4)


def test_map_estimate_exact_with_known_shapes():
    f = rp.compile(rp.trace_like(lambda v: rp.map(lambda x: rp.sin(x) * x, v), (np.ones(4),)))
    fe = estimate_fun(f.fun, [(100,)])
    # 2 scalar ops per element * 100 elements + the SOAC launch constant;
    # traffic: read the input array once, write the result once.
    assert fe.total.work == 2 * 100 + 8
    assert fe.total.mem_reads == 100 and fe.total.mem_writes == 100
    assert fe.total.span == 3.0  # 2-op body depth (parallel iterations) + entry
    assert len(fe.soacs) == 1 and fe.soacs[0][0] == "map"


def test_reduce_estimate_tracks_recorder():
    f = rp.compile(rp.trace_like(lambda v: rp.sum(rp.map(lambda x: rp.exp(x) * x, v)), (np.ones(4),)))
    n = 1000
    xs = rng.standard_normal(n)
    rec = _recorded(f.fun, [xs])
    est = estimate_fun(f.fun, [(n,)]).total
    assert rec.work <= est.work <= rec.work * 1.5
    assert rec.mem <= est.mem <= rec.mem * 1.5 + 16
    # log-depth combine tree
    assert est.span <= 3 * np.ceil(np.log2(n)) + 8


def test_unknown_shapes_fall_back_to_assumed_extents(monkeypatch):
    monkeypatch.setenv("REPRO_COST_DEFAULT_EXTENT", "32")
    f = rp.compile(rp.trace_like(lambda v: rp.map(lambda x: x * 2.0, v), (np.ones(4),)))
    fe = estimate_fun(f.fun)  # no shapes supplied
    assert fe.total.work == 32 + 8


# ---------------------------------------------------------------------------
# Decision 1: the fusion gate
# ---------------------------------------------------------------------------


def _stms_of(f, ex):
    return rp.trace_like(f, ex).body.stms


def test_fusion_gate_accepts_traffic_reducing_fusion():
    # The pre/post statement lists of a real vertical map->map fusion: the
    # fused form drops the intermediate array's write+read.
    from repro.opt.pipeline import optimize_fun

    fun = rp.trace_like(
        lambda v: rp.map(lambda y: y + 1.0, rp.map(lambda x: x * 2.0, v)), (np.ones(8),)
    )
    before = [s for s in fun.body.stms]
    fused = optimize_fun(fun)
    after = [s for s in fused.body.stms]
    assert len(after) < len(before)  # fusion actually fired (gate accepted)
    assert fusion_wins(before, after)


def test_fusion_gate_rejects_work_inflation():
    # A synthetic "rewrite" that duplicates the statements: the gate must
    # reject it (more work, more traffic).
    stms = _stms_of(lambda v: rp.map(lambda x: rp.sin(x), v), (np.ones(8),))
    assert not fusion_wins(list(stms), list(stms) + list(stms))


def test_fuse_cost_modes(monkeypatch):
    from repro.opt.fusion import fuse_cost_mode, fuse_fun, fusion_stats, reset_fusion_stats
    from repro.ir.traversal import count_soacs

    fun = rp.trace_like(
        lambda v: rp.sum(rp.map(lambda x: rp.exp(x) * x, v)), (np.ones(8),)
    )
    monkeypatch.setenv("REPRO_FUSE_COST", "off")
    assert fuse_cost_mode() == "off"
    assert fuse_fun(fun) == fun  # pass disabled: identity

    reset_fusion_stats()
    monkeypatch.setenv("REPRO_FUSE_COST", "on")
    guided = fuse_fun(fun)
    monkeypatch.setenv("REPRO_FUSE_COST", "always")
    mono = fuse_fun(fun)
    # guided and monotone make identical decisions on real programs
    assert count_soacs(guided) == count_soacs(mono)
    st = fusion_stats()
    assert st["vertical"] >= 1 and st["cost_rejected"] == 0
    monkeypatch.delenv("REPRO_FUSE_COST", raising=False)
    assert fuse_cost_mode() == "on"  # cost-guided is the default


def test_guided_fusion_results_bitwise_equal_monotone(monkeypatch):
    from repro.opt.pipeline import clear_opt_cache

    def f(v):
        s = rp.scan(lambda a, b: a + b, 0.0, rp.map(lambda x: x * x, v))
        return rp.sum(rp.map(lambda y: rp.tanh(y), s))

    xs = rng.standard_normal(64)
    results = {}
    for mode in ("on", "always"):
        monkeypatch.setenv("REPRO_FUSE_COST", mode)
        clear_plan_cache()
        fc = rp.compile(rp.trace_like(f, (xs,)))
        g = rp.grad(fc)
        results[mode] = (np.asarray(fc(xs, backend="plan")), np.asarray(g(xs)))
    np.testing.assert_array_equal(results["on"][0], results["always"][0])
    np.testing.assert_array_equal(results["on"][1], results["always"][1])


# ---------------------------------------------------------------------------
# Decision 2: shard-point selection + chunk sizing
# ---------------------------------------------------------------------------


def test_parallel_split_weighs_by_estimated_work():
    # A statement-poor but extent/traffic-heavy map vs a statement-heavy
    # scalar-cheap one: the default (cost model) weigher must still pick a
    # shard point, and custom weighers are honoured.
    def f(small, big):
        a = rp.sum(rp.map(lambda s: s * 2.0, small))
        b = rp.map(lambda v: rp.sin(v) * rp.cos(v) + rp.exp(-v * v) * a, big)
        return b

    fun = rp.trace_like(f, (np.ones(4), np.ones(64)))
    split = parallel_split(fun)  # default: ir.cost_model.stm_work
    assert split is not None and split.kind == "map"
    # the heavy map has more estimated work than the small reduce
    weights = [stm_work(s) for s in fun.body.stms]
    assert max(weights) == weights[-1]
    # a custom weigher that prefers the *first* candidate flips the choice
    # to an earlier shard point (fewer statements in the prefix function)
    flipped = parallel_split(fun, weigh=lambda s: -fun.body.stms.index(s))
    assert flipped is not None
    assert len(flipped.prefix_fun.body.stms) < len(split.prefix_fun.body.stms)


def test_soac_elem_cost_orders_bodies():
    light = rp.trace_like(lambda v: rp.map(lambda x: x * 2.0, v), (np.ones(4),))
    heavy = rp.trace_like(
        lambda v: rp.map(lambda x: rp.sin(x) * rp.cos(x) + rp.exp(x), v), (np.ones(4),)
    )
    cl = soac_elem_cost(light.body.stms[0].exp)
    ch = soac_elem_cost(heavy.body.stms[0].exp)
    assert cl is not None and ch is not None and ch > cl
    assert soac_elem_cost(light.body.stms[0].exp.lam.body.stms[0].exp) is None


def test_chunk_bounds_degenerate_and_derived(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_MIN_CHUNK", raising=False)
    monkeypatch.delenv("REPRO_SHARD_MAX_TASKS", raising=False)
    # n == 0: one empty chunk, run in-process
    assert _chunk_bounds(0) == [(0, 0)]
    assert _chunk_bounds(0, elem_cost=100.0) == [(0, 0)]
    assert _chunk_bounds(1, elem_cost=1e9) == [(0, 1)]
    # derived sizing: heavy elements -> more chunks at the same extent
    monkeypatch.setenv("REPRO_COST_TASK_GRAIN", "1000")
    light = _chunk_bounds(10_000, elem_cost=1.0)
    heavy = _chunk_bounds(10_000, elem_cost=50.0)
    assert len(heavy) > len(light)
    # never an empty chunk, full coverage, in order
    for bounds, n in ((light, 10_000), (heavy, 10_000)):
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        assert all(hi > lo for lo, hi in bounds)
        assert all(b[0] == a[1] for a, b in zip(bounds, bounds[1:]))
    # chunk count never exceeds the extent even for absurd costs
    tiny = _chunk_bounds(3, elem_cost=1e9)
    assert tiny == [(0, 1), (1, 2), (2, 3)]
    # REPRO_SHARD_MIN_CHUNK overrides the derivation with the old policy
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "5000")
    assert len(_chunk_bounds(10_000, elem_cost=50.0)) == 2


def test_edges_never_emit_empty_chunks():
    for n in (0, 1, 2, 3, 5, 7):
        for k in (1, 2, 3, 5, 8, 100):
            bounds = _edges(n, k)
            if n == 0:
                assert bounds == [(0, 0)]
                continue
            assert all(hi > lo for lo, hi in bounds)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            assert len(bounds) <= min(k, n)


@pytest.mark.parametrize("n", [0, 1, 3, 17])
def test_shard_degenerate_extents_map_and_reduce(n, monkeypatch):
    from repro.exec.shard import reset_shard_stats, shutdown_shard_pool

    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "2")
    reset_shard_stats()
    xs = np.arange(float(n)) + 2.0
    fm = rp.compile(rp.trace_like(lambda v: rp.map(lambda x: x * 2.0, v), (np.ones(4),)))
    fr = rp.compile(
        rp.trace_like(lambda v: rp.reduce(lambda a, b: rp.minimum(a, b), 5.0, v), (np.ones(4),))
    )
    fs = rp.compile(rp.trace_like(lambda v: rp.sum(rp.map(lambda x: x + 1.0, v)), (np.ones(4),)))
    for fc in (fm, fr, fs):
        np.testing.assert_array_equal(
            np.asarray(fc(xs, backend="shard")), np.asarray(fc(xs, backend="plan"))
        )
    shutdown_shard_pool()


def test_shard_empty_reduce_no_spurious_neutral_process_mode(monkeypatch):
    """The reduce combine tree must see only real chunk partials even in
    process mode with degenerate extents (n == 0 and n == 1)."""
    from repro.exec.shard import reset_shard_stats, shard_stats, shutdown_shard_pool

    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "1")
    monkeypatch.setenv("REPRO_SHARD_MODE", "process")
    monkeypatch.setenv("REPRO_SHARD_SHM_MIN", "0")
    reset_shard_stats()
    fr = rp.compile(
        rp.trace_like(lambda v: rp.reduce(lambda a, b: a + b, 2.5, v), (np.ones(4),))
    )
    for n in (0, 1):
        xs = np.arange(float(n)) + 1.0
        np.testing.assert_array_equal(
            np.asarray(fr(xs, backend="shard")), np.asarray(fr(xs, backend="plan"))
        )
    shutdown_shard_pool()


def test_shard_derived_chunking_bitwise_across_worker_counts(monkeypatch):
    """Cost-derived chunk geometry depends only on the extent and the cost
    estimate — results stay bitwise identical at 1 vs N workers."""
    from repro.exec.shard import reset_shard_stats, shutdown_shard_pool

    monkeypatch.delenv("REPRO_SHARD_MIN_CHUNK", raising=False)
    monkeypatch.setenv("REPRO_COST_TASK_GRAIN", "64")  # force real chunking
    xs = rng.standard_normal(501)
    fc = rp.compile(
        rp.trace_like(lambda v: rp.sum(rp.map(lambda x: rp.sin(x) * x, v)), (np.ones(4),))
    )
    results = []
    for w in ("1", "3"):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", w)
        reset_shard_stats()
        shutdown_shard_pool()
        results.append(np.asarray(fc(xs, backend="shard")))
    np.testing.assert_array_equal(results[0], results[1])
    shutdown_shard_pool()


# ---------------------------------------------------------------------------
# Decision 3: promotion amortisation
# ---------------------------------------------------------------------------


def test_promotion_threshold_none_without_folds():
    # A pure scalar program admits no specialisation folds at all.
    fun = rp.trace_like(lambda x: rp.sin(x) * x + 1.0, (1.0,))
    assert promotion_threshold(fun, [()]) is None


def test_promotion_threshold_scales_with_fold_density():
    fun = rp.compile(
        rp.trace_like(
            lambda v: rp.sum(rp.map(lambda i: rp.astype(i, rp.F64), rp.iota(rp.size(v))))
            * rp.sum(v),
            (np.ones(5),),
        )
    ).fun
    thr = promotion_threshold(fun, [(5,)])
    assert thr is not None and 1 <= thr <= 64
    # unknown shapes -> no facts -> no folds -> no promotion
    assert promotion_threshold(fun, [None]) is None


def test_plan_promotion_respects_env_override_and_derivation(monkeypatch):
    fc = rp.compile(rp.trace_like(lambda v: rp.sum(v), (np.ones(4),)))
    x = rng.standard_normal(6)
    monkeypatch.setenv("REPRO_PLAN_SPECIALIZE", "1")
    # bare-counter override: promotes on the 3rd tier-1 hit
    monkeypatch.setenv("REPRO_PLAN_SPECIALIZE_AFTER", "3")
    clear_plan_cache()
    for _ in range(5):
        fc(x, backend="plan")
    st = plan_cache_stats()
    assert st["promotions"] == 1 and st["specialized_hits"] == 1
    # derived threshold: still promotes eventually (the signature folds),
    # at the amortisation point rather than a fixed count
    monkeypatch.delenv("REPRO_PLAN_SPECIALIZE_AFTER", raising=False)
    thr = promotion_threshold(fc.fun, [(6,)])
    assert thr is not None
    clear_plan_cache()
    for _ in range(thr + 2):
        fc(x, backend="plan")
    st = plan_cache_stats()
    assert st["promotions"] == 1
    assert st["hits"] == thr  # promoted exactly when the savings amortise
    # bitwise across the switch
    r_gen = np.asarray(fc(x, backend="ref"))
    r_spec = np.asarray(fc(x, backend="plan"))
    np.testing.assert_allclose(r_gen, r_spec, rtol=1e-12)


# ---------------------------------------------------------------------------
# Golden per-SOAC estimates: GMM and BA gradients
# ---------------------------------------------------------------------------


def test_golden_gmm_gradient_estimates():
    n, d, K = 32, 4, 4
    args = datagen.gmm_instance(n, d, K, 0)[:4]
    g = vjp(rp.compile(gmm.build_ir(n, d, K)), wrt=[0, 1, 2])
    shapes = [tuple(np.asarray(a).shape) for a in args] + [()]
    fe = estimate_fun(g.fun, shapes)
    rec = _recorded(g.fun, list(args) + [1.0])
    # constant-factor agreement: AD code carries loops/ifs whose branches
    # the static model over-approximates (max of both sides) and scratch
    # buffers of statically unknown extent
    assert rec.work * 0.5 <= fe.total.work <= rec.work * 16
    soacs = soac_estimates(g.fun, shapes)
    assert soacs == fe.soacs and len(soacs) >= 5
    # the dominant SOAC is the fused per-point map (a redomap-split map),
    # and it dominates every other top-level SOAC by a wide margin
    top = max(soacs, key=lambda s: s[2].work)
    assert top[0] == "map"
    others = sorted((s[2].work for s in soacs), reverse=True)
    assert others[0] >= 10 * others[1]


def test_golden_ba_gradient_estimates():
    cams, pts, ws, oc, op_, feats = datagen.ba_instance(4, 8, 16, 0)
    gc, gp, gw = ba.gather_obs(cams, pts, ws, oc, op_)
    fc = rp.compile(ba.build_ir(16))
    outs = fc(gc, gp, gw, feats)
    outs = outs if isinstance(outs, tuple) else (outs,)
    seeds = [np.ones_like(np.asarray(o)) for o in outs]
    jv = vjp(fc, wrt=[0, 1, 2])
    args = [gc, gp, gw, feats] + seeds
    shapes = [tuple(np.asarray(a).shape) for a in args]
    fe = estimate_fun(jv.fun, shapes)
    rec = _recorded(jv.fun, args)
    # BA's reverse pass is one big fused map: the estimate is tight
    assert rec.work * 0.8 <= fe.total.work <= rec.work * 1.5
    assert len(fe.soacs) >= 1 and fe.soacs[0][0] == "map"
