"""Sharded executor + backend registry: registry round-trips, shardability
golden cases, shard/plan/vec/ref parity (fuzz corpus + apps), determinism
across worker counts, batched-seed sharding, and the plan-cache backend
dimension."""
import numpy as np
import pytest

import repro as rp
from repro.apps import ba, datagen, gmm, hand, kmeans, lstm
from repro.exec.plan import plan_cache_stats, plan_for
from repro.exec.registry import (
    Backend,
    available_backends,
    batched_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.exec.shard import (
    reset_shard_stats,
    shard_stats,
    shutdown_shard_pool,
)
from repro.ir.analysis import parallel_split
from repro.util import ReproError

from helpers import run_both
from test_fuzz_programs import _gen_program


@pytest.fixture
def sharded(monkeypatch):
    """Force genuine sharding at test sizes: 2 workers, tiny chunks."""
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "4")
    monkeypatch.setenv("REPRO_SHARD_MODE", "thread")
    yield
    shutdown_shard_pool()


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------


def test_registry_builtins_and_capabilities():
    assert set(available_backends()) >= {"ref", "vec", "plan", "shard"}
    assert not get_backend("ref").batched
    for name in ("vec", "plan", "shard"):
        assert get_backend(name).batched
    assert get_backend("shard").sharded and not get_backend("plan").sharded
    assert "ref" not in batched_backends()


def test_registry_round_trip():
    calls = []

    def run(fun, args):
        calls.append(fun.name)
        return get_backend("plan").run(fun, args)

    register_backend(Backend("counting", run=run))
    try:
        assert "counting" in available_backends()
        fc = rp.compile(rp.trace_like(lambda x: rp.sum(x), (np.ones(4),)))
        assert fc(np.arange(4.0), backend="counting") == 6.0
        assert calls  # dispatch went through the custom backend
        # no run_batched -> call_batched refuses, naming the capable set
        with pytest.raises(ReproError, match="cannot run batched"):
            fc.call_batched((np.ones((2, 4)),), (True,), 2, backend="counting")
        # duplicate registration is an error unless overwritten
        with pytest.raises(ReproError, match="already registered"):
            register_backend(Backend("counting", run=run))
        register_backend(Backend("counting", run=run), overwrite=True)
    finally:
        unregister_backend("counting")
    assert "counting" not in available_backends()


def test_unknown_backend_errors_list_registered_set():
    fc = rp.compile(rp.trace_like(lambda x: rp.sum(x), (np.ones(4),)))
    with pytest.raises(ReproError, match=r"registered backends: .*plan.*shard"):
        fc(np.ones(4), backend="bogus")
    with pytest.raises(ReproError, match="registered backends"):
        fc.call_batched((np.ones((2, 4)),), (True,), 2, backend="bogus")
    jac = rp.jacobian(rp.compile(rp.trace_like(lambda x: rp.map(lambda v: v * v, x), (np.ones(3),))))
    with pytest.raises(ReproError, match="registered backends"):
        jac(np.ones(3), backend="bogus")
    with pytest.raises(ReproError, match="registered backends"):
        unregister_backend("bogus")


# ---------------------------------------------------------------------------
# Shardability analysis — golden cases
# ---------------------------------------------------------------------------


def test_parallel_split_top_level_map_is_map_kind():
    fun = rp.compile(ba.build_ir(32)).fun
    split = parallel_split(fun)
    assert split is not None and split.kind == "map"
    # all three residual arrays come straight off the sharded map
    assert split.n_outs == 3 and split.suffix_fun is None


def test_parallel_split_gmm_is_reduce_kind():
    fun = rp.compile(gmm.build_ir(48, 4, 4)).fun
    split = parallel_split(fun)
    assert split is not None and split.kind == "reduce"
    assert split.combine_op == "add"
    # the scalar epilogue (wishart, lse_alphas, constants) runs as a suffix
    assert split.suffix_fun is not None


def test_parallel_split_rejects_scan_and_loops():
    scan_fun = rp.trace_like(lambda xs: rp.scan(lambda a, b: a + b, 0.0, xs), (np.ones(8),))
    assert parallel_split(scan_fun) is None
    loop_fun = rp.trace_like(
        lambda x: rp.fori_loop(5, lambda i, a: a * 1.1 + x, x), (1.0,)
    )
    assert parallel_split(loop_fun) is None


def test_parallel_split_rejects_map_reading_its_own_input_whole():
    # The lambda reads xs[0] while xs is also the mapped array: slicing the
    # array would change what the lambda sees, so this must not shard.
    fun = rp.trace_like(lambda xs: rp.map(lambda x: x + xs[0], xs), (np.ones(8),))
    assert parallel_split(fun) is None


def test_parallel_split_picks_the_heaviest_soac():
    # A cheap map over `small` followed by a heavy map over `big`: the shard
    # point must be the heavy one even though both are candidates.
    def f(small, big):
        a = rp.sum(rp.map(lambda s: s * 2.0, small))
        b = rp.map(lambda v: rp.sin(v) * rp.cos(v) + rp.exp(-v * v) * a, big)
        return b

    fun = rp.trace_like(f, (np.ones(4), np.ones(64)))
    split = parallel_split(fun)
    assert split is not None and split.kind == "map"
    # the sharded inputs have the extent of `big`, not `small`
    pre = rp.compile(split.prefix_fun, optimize=False)
    res = pre(np.ones(4), np.ones(64))
    res = res if isinstance(res, tuple) else (res,)
    assert any(np.asarray(res[i]).shape[:1] == (64,) for i in split.sharded_src)


# ---------------------------------------------------------------------------
# Parity: shard vs ref/vec/plan
# ---------------------------------------------------------------------------


def test_shard_parity_fuzz_corpus(sharded):
    for seed in (3, 17, 123, 999, 5005, 31337):
        prog = _gen_program(seed)
        xs = np.random.default_rng(seed).standard_normal(64) * 0.8
        fc = rp.compile(rp.trace_like(prog, (xs,)))
        r_plan = fc(xs, backend="plan")
        r_shard = fc(xs, backend="shard")
        np.testing.assert_allclose(r_shard, r_plan, rtol=1e-9, atol=1e-12)
        r_ref = fc(xs, backend="ref")
        np.testing.assert_allclose(r_shard, r_ref, rtol=1e-8, atol=1e-11)


@pytest.mark.parametrize("app", ["gmm", "ba", "lstm", "hand", "kmeans"])
def test_shard_parity_apps(sharded, app):
    if app == "gmm":
        args = datagen.gmm_instance(96, 4, 4, 0)[:4]
        fc = rp.compile(gmm.build_ir(96, 4, 4))
    elif app == "ba":
        cams, pts, ws, oc, op_, feats = datagen.ba_instance(4, 10, 48, seed=1)
        args = ba.gather_obs(cams, pts, ws, oc, op_) + (feats,)
        fc = rp.compile(ba.build_ir(48))
    elif app == "lstm":
        xs, wx, wh, b, wy, _h0, _c0, tg = datagen.lstm_instance(3, 4, 5, 6, seed=2)
        args = (xs, wx, wh, b, wy, tg)
        fc = rp.compile(lstm.build_ir(xs.shape[0], xs.shape[1], xs.shape[2], wh.shape[1]))
    elif app == "hand":
        args = datagen.hand_instance(4, 48, seed=3)
        fc = rp.compile(hand.build_ir(4, 48))
    else:
        pts, ctr = datagen.kmeans_instance(4, 96, 3, seed=4)
        args = (pts, ctr)
        fc = rp.compile(kmeans.build_ir(96, 4, 3))
    r_plan = fc(*args, backend="plan")
    r_shard = fc(*args, backend="shard")
    rp_ = r_plan if isinstance(r_plan, tuple) else (r_plan,)
    rs_ = r_shard if isinstance(r_shard, tuple) else (r_shard,)
    for a, b_ in zip(rp_, rs_):
        np.testing.assert_allclose(np.asarray(a), np.asarray(b_), rtol=1e-9, atol=1e-12)
    # gradients evaluate through the shard backend too (mostly the suffix /
    # fallback machinery at these sizes — must stay consistent with plan)
    wrt = {"gmm": [0, 1, 2], "ba": None, "lstm": [1, 2, 3, 4], "hand": [0], "kmeans": [1]}[app]
    if app != "ba":
        g = rp.grad(fc, wrt=wrt)
        gp = g(*args, backend="plan")
        gs = g(*args, backend="shard")
        gp = gp if isinstance(gp, tuple) else (gp,)
        gs = gs if isinstance(gs, tuple) else (gs,)
        for a, b_ in zip(gp, gs):
            np.testing.assert_allclose(np.asarray(a), np.asarray(b_), rtol=1e-8, atol=1e-11)


def test_shard_determinism_one_vs_many_workers(monkeypatch):
    """Chunk boundaries depend only on the extent, never the worker count,
    so results must be bitwise identical at 1 and N workers — including the
    reduce kind, whose partial-combine tree is fixed by the chunking."""
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "4")
    monkeypatch.setenv("REPRO_SHARD_MODE", "thread")
    xs = np.random.default_rng(0).standard_normal(97)
    fmap = rp.compile(rp.trace_like(lambda v: rp.map(lambda x: rp.sin(x) * x, v), (xs,)))
    fred = rp.compile(rp.trace_like(lambda v: rp.sum(rp.map(lambda x: rp.exp(-x * x), v)), (xs,)))
    results = {}
    for w in ("1", "3"):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", w)
        results[w] = (fmap(xs, backend="shard"), fred(xs, backend="shard"))
    shutdown_shard_pool()
    np.testing.assert_array_equal(results["1"][0], results["3"][0])
    np.testing.assert_array_equal(results["1"][1], results["3"][1])


# ---------------------------------------------------------------------------
# Batched-seed sharding (the jacobian composition)
# ---------------------------------------------------------------------------


def test_shard_batched_jacobian_matches_plan(sharded):
    fc = rp.compile(rp.trace_like(lambda x: rp.map(lambda v: rp.sin(v) * v, x), (np.ones(12),)))
    x = np.linspace(0.1, 1.2, 12)
    for mode in ("fwd", "rev"):
        jac = rp.jacobian(fc, mode=mode)
        Jp = jac(x, backend="plan")
        Js = jac(x, backend="shard")
        np.testing.assert_array_equal(Jp, Js)
    st = shard_stats()
    assert st["batched_calls"] >= 2 and st["chunks"] >= 4


def test_ba_jacobian_ad_on_shard_backend(sharded):
    cams, pts, ws, oc, op_, feats = datagen.ba_instance(4, 10, 20, seed=6)
    gc, gp, gw = ba.gather_obs(cams, pts, ws, oc, op_)
    jv = rp.vjp(rp.compile(ba.build_ir(20)), wrt=[0, 1, 2])
    Js = ba.jacobian_ad(jv, gc, gp, gw, feats, backend="shard")
    Jp = ba.jacobian_ad(jv, gc, gp, gw, feats, backend="plan")
    for a, b_ in zip(Js, Jp):
        np.testing.assert_array_equal(a, b_)


def test_hand_jacobian_fwd_ad_batched_matches_loop_and_grad(sharded):
    theta, base, wghts, tgts = datagen.hand_instance(4, 12, seed=7)
    fc = rp.compile(hand.build_ir(4, 12))
    fwd = rp.jvp(fc)
    batched = hand.jacobian_fwd_ad(fwd, theta, base, wghts, tgts, backend="plan")
    looped = hand.jacobian_fwd_ad(fwd, theta, base, wghts, tgts, backend="plan", batched=False)
    on_shard = hand.jacobian_fwd_ad(fwd, theta, base, wghts, tgts, backend="shard")
    np.testing.assert_allclose(batched, looped, rtol=1e-9, atol=1e-12)
    np.testing.assert_array_equal(batched, on_shard)
    # forward over the full basis == the reverse-mode gradient
    g = rp.grad(fc, wrt=[0])
    np.testing.assert_allclose(batched, g(theta, base, wghts, tgts), rtol=1e-7, atol=1e-9)


def test_lstm_grad_fwd_ad_batched_matches_loop_and_grad(sharded):
    xs, wx, wh, b, wy, _h0, _c0, tg = datagen.lstm_instance(2, 3, 4, 5, seed=8)
    fc = rp.compile(lstm.build_ir(xs.shape[0], xs.shape[1], xs.shape[2], wh.shape[1]))
    fwd = rp.jvp(fc)
    batched = lstm.grad_fwd_ad(fwd, xs, wx, wh, b, wy, tg, backend="plan")
    looped = lstm.grad_fwd_ad(fwd, xs, wx, wh, b, wy, tg, backend="plan", batched=False)
    on_shard = lstm.grad_fwd_ad(fwd, xs, wx, wh, b, wy, tg, backend="shard")
    np.testing.assert_allclose(batched, looped, rtol=1e-9, atol=1e-12)
    np.testing.assert_array_equal(batched, on_shard)
    gb = rp.grad(fc, wrt=[1, 2, 3, 4])(xs, wx, wh, b, wy, tg)[2]
    np.testing.assert_allclose(batched, gb, rtol=1e-7, atol=1e-9)


# ---------------------------------------------------------------------------
# Stats, cache keying, fallbacks
# ---------------------------------------------------------------------------


def test_shard_stats_counters_and_reset(sharded):
    reset_shard_stats()
    xs = np.arange(64.0)
    fc = rp.compile(rp.trace_like(lambda v: rp.map(lambda x: x * 2.0, v), (xs,)))
    fc(xs, backend="shard")
    st = shard_stats()
    assert st["sharded_calls"] == 1 and st["chunks"] >= 2
    assert st["workers"] == 2 and st["mode"] == "thread"
    # a scan cannot shard -> falls back (and still agrees with plan)
    fs = rp.compile(rp.trace_like(lambda v: rp.scan(lambda a, b: a + b, 0.0, v), (xs,)))
    np.testing.assert_allclose(fs(xs, backend="shard"), fs(xs, backend="plan"))
    assert shard_stats()["fallback_calls"] >= 1
    reset_shard_stats()
    assert shard_stats()["sharded_calls"] == 0


def test_small_extents_fall_back(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.delenv("REPRO_SHARD_MIN_CHUNK", raising=False)
    reset_shard_stats()
    xs = np.arange(16.0)  # far below the default 1024-element chunk floor
    fc = rp.compile(rp.trace_like(lambda v: rp.map(lambda x: x * 2.0, v), (xs,)))
    np.testing.assert_array_equal(fc(xs, backend="shard"), fc(xs, backend="plan"))
    st = shard_stats()
    assert st["fallback_calls"] >= 1 and st["sharded_calls"] == 0


def test_plan_cache_backend_dimension_separates_entries(sharded):
    xs = np.arange(8.0)
    fun = rp.compile(rp.trace_like(lambda v: rp.map(lambda x: x + 1.0, v), (xs,))).fun
    before = plan_cache_stats()["entries"]
    p_plan = plan_for(fun, (xs,))
    p_shard = plan_for(fun, (xs,), backend="shard")
    assert p_plan is not p_shard
    assert plan_cache_stats()["entries"] == before + 2
    # same key resolves to the same plan again
    assert plan_for(fun, (xs,), backend="shard") is p_shard


def test_process_mode_parity(monkeypatch):
    """End-to-end shm transport through a spawn-based process pool; skipped
    when the environment cannot spawn workers (the executor then falls back
    in-process, which is itself asserted correct)."""
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "4")
    monkeypatch.setenv("REPRO_SHARD_MODE", "process")
    monkeypatch.setenv("REPRO_SHARD_SHM_MIN", "0")
    reset_shard_stats()
    try:
        xs = np.random.default_rng(5).standard_normal(64)
        fc = rp.compile(rp.trace_like(lambda v: rp.map(lambda x: rp.tanh(x) * x, v), (xs,)))
        np.testing.assert_array_equal(fc(xs, backend="shard"), fc(xs, backend="plan"))
        st = shard_stats()
        if st["pool_errors"]:
            pytest.skip("process pool unavailable in this environment")
        assert st["sharded_calls"] == 1 and st["chunks"] >= 2
    finally:
        shutdown_shard_pool()
