"""Reference-interpreter semantics, construct by construct."""
import numpy as np
import pytest

import repro as rp
from repro.exec import run_fun
from repro.util import ExecError


def _run(f, args, **kw):
    fun = rp.trace_like(f, args)
    fc = rp.compile(fun, **kw)
    return fc(*args, backend="ref")


def test_scalar_ops():
    out = _run(lambda x, y: (x + y, x - y, x * y, x / y, x % y, x**2.0), (7.0, 2.0))
    np.testing.assert_allclose(out, (9.0, 5.0, 14.0, 3.5, 1.0, 49.0))


def test_integer_division_floors():
    assert _run(lambda n: n / 2, (np.int64(7),)) == 3
    assert _run(lambda n: n % 3, (np.int64(7),)) == 1


def test_comparisons_and_select():
    assert _run(lambda x: rp.where(x > 0.0, x, -x), (-4.0,)) == 4.0
    assert bool(_run(lambda x: (x > 1.0) | (x < -1.0), (0.5,))) is False


def test_unops():
    x = 0.37
    out = _run(
        lambda v: (rp.sin(v), rp.cos(v), rp.exp(v), rp.log(v), rp.sqrt(v), rp.tanh(v)),
        (x,),
    )
    np.testing.assert_allclose(
        out, (np.sin(x), np.cos(x), np.exp(x), np.log(x), np.sqrt(x), np.tanh(x))
    )


def test_sigmoid_erf():
    out = _run(lambda v: (rp.sigmoid(v), rp.erf(v)), (0.3,))
    from scipy.special import erf as sperf

    np.testing.assert_allclose(out, (1 / (1 + np.exp(-0.3)), sperf(0.3)), rtol=1e-12)


def test_map_multi_result():
    xs = np.arange(4.0)
    a, b = _run(lambda v: rp.map(lambda x: (x + 1.0, x * 2.0), v), (xs,))
    np.testing.assert_allclose(a, xs + 1)
    np.testing.assert_allclose(b, xs * 2)


def test_map_variadic():
    xs, ys = np.arange(3.0), np.ones(3)
    out = _run(lambda a, b: rp.map(lambda x, y: x * y + 1.0, a, b), (xs, ys))
    np.testing.assert_allclose(out, xs + 1)


def test_map_length_mismatch():
    with pytest.raises(ExecError):
        _run(lambda a, b: rp.map(lambda x, y: x + y, a, b), (np.ones(3), np.ones(4)))


def test_reduce_and_scan():
    xs = np.arange(1.0, 6.0)
    assert _run(lambda v: rp.sum(v), (xs,)) == 15.0
    assert _run(lambda v: rp.prod(v), (xs,)) == 120.0
    out = _run(lambda v: rp.scan(lambda a, b: a + b, 0.0, v), (xs,))
    np.testing.assert_allclose(out, np.cumsum(xs))


def test_tuple_reduce_argmin():
    xs = np.array([3.0, 1.0, 2.0, 1.0])
    def f(v):
        n = rp.size(v)
        def op(v1, i1, v2, i2):
            take1 = (v1 < v2) | ((v1 == v2) & (i1 <= i2))
            return rp.where(take1, v1, v2), rp.where(take1, i1, i2)
        return rp.reduce(op, (np.inf, 2**62), v, rp.iota(n))
    val, idx = _run(f, (xs,))
    assert val == 1.0 and idx == 1  # ties take the first index


def test_reduce_by_index_semantics():
    inds = np.array([0, 1, 0, 5, -1, 1])  # out-of-range ignored
    vals = np.arange(6.0)
    out = _run(
        lambda i, v: rp.reduce_by_index(3, lambda a, b: a + b, 0.0, i, v),
        (inds, vals),
    )
    np.testing.assert_allclose(out, [2.0, 6.0, 0.0])


def test_scatter_out_of_range_ignored():
    out = _run(
        lambda d, i, v: rp.scatter(d, i, v),
        (np.zeros(4), np.array([1, 9, -2]), np.array([5.0, 6.0, 7.0])),
    )
    np.testing.assert_allclose(out, [0.0, 5.0, 0.0, 0.0])


def test_update_functional():
    def f(xs):
        ys = rp.update(xs, 1, 42.0)
        return ys, xs  # xs unchanged (copy-on-write)

    ys, xs = _run(f, (np.zeros(3),))
    np.testing.assert_allclose(ys, [0, 42, 0])
    np.testing.assert_allclose(xs, [0, 0, 0])


def test_loop_and_while():
    assert _run(lambda x: rp.fori_loop(5, lambda i, a: a * x, 1.0), (2.0,)) == 32.0
    def wl(x):
        return rp.while_loop(lambda v: v < 100.0, lambda v: v * 3.0, x)
    assert _run(wl, (2.0,)) == 162.0


def test_iota_replicate_reverse_concat_size():
    def f(xs):
        n = rp.size(xs)
        return (
            rp.iota(n),
            rp.replicate(3, xs[0]),
            rp.reverse(xs),
            rp.concat(xs, xs),
            n,
        )
    i, r, v, c, n = _run(f, (np.array([1.0, 2.0]),))
    np.testing.assert_allclose(i, [0, 1])
    np.testing.assert_allclose(r, [1.0, 1.0, 1.0])
    np.testing.assert_allclose(v, [2.0, 1.0])
    np.testing.assert_allclose(c, [1.0, 2.0, 1.0, 2.0])
    assert n == 2


def test_gather():
    out = _run(
        lambda a, i: rp.gather(a, i), (np.array([10.0, 20.0, 30.0]), np.array([2, 0]))
    )
    np.testing.assert_allclose(out, [30.0, 10.0])


def test_empty_map_and_reduce():
    out = _run(lambda xs: (rp.map(lambda x: x * 2.0, xs), rp.sum(xs)), (np.zeros(0),))
    assert out[0].shape == (0,)
    assert out[1] == 0.0


def test_matmul_transpose_sugar():
    A = np.arange(6.0).reshape(2, 3)
    B = np.arange(12.0).reshape(3, 4)
    out = _run(lambda a, b: rp.matmul(a, b), (A, B))
    np.testing.assert_allclose(out, A @ B)
    out = _run(lambda a: rp.transpose(a), (A,))
    np.testing.assert_allclose(out, A.T)
