"""Builder + typechecker unit tests."""
import numpy as np
import pytest

from repro.ir import (
    Builder,
    F64,
    I64,
    BOOL,
    Fun,
    Lambda,
    Var,
    array,
    check_fun,
    const,
    infer_exp_types,
    pretty,
    validate_fun,
)
from repro.ir.ast import BinOp, If, Index, Iota, Map, Body, AtomExp, UpdAcc, WithAcc
from repro.ir.types import AccType
from repro.util import IRError, TypeError_


def _simple_fun():
    b = Builder()
    x = Var("x", F64)
    y = b.mul(x, x, "y")
    return Fun("sq", (x,), b.finish([y]))


def test_emit_infers_types():
    b = Builder()
    x = Var("x", F64)
    v = b.add(x, const(1.0, F64))
    assert v.type is F64
    c = b.binop("lt", x, const(0.0, F64))
    assert c.type is BOOL


def test_check_simple_fun():
    fun = _simple_fun()
    assert check_fun(fun) == (F64,)
    validate_fun(fun)


def test_unbound_variable_rejected():
    b = Builder()
    x = Var("x", F64)
    ghost = Var("ghost", F64)
    y = b.mul(x, ghost, "y")
    fun = Fun("bad", (x,), b.finish([y]))
    with pytest.raises(TypeError_):
        check_fun(fun)


def test_binop_elem_mismatch_rejected():
    x = Var("x", F64)
    n = Var("n", I64)
    with pytest.raises(TypeError_):
        infer_exp_types(BinOp("add", x, n))


def test_index_rules():
    a = Var("a", array(F64, 2))
    i = Var("i", I64)
    assert infer_exp_types(Index(a, (i,)))[0] == array(F64, 1)
    assert infer_exp_types(Index(a, (i, i)))[0] is F64
    with pytest.raises(TypeError_):
        infer_exp_types(Index(a, (i, i, i)))
    with pytest.raises(TypeError_):
        infer_exp_types(Index(a, (Var("f", F64),)))


def test_map_arity_checked():
    xs = Var("xs", array(F64, 1))
    p = Var("p", F64)
    q = Var("q", F64)
    lam = Lambda((p, q), Body((), (p,)))
    with pytest.raises(TypeError_):
        infer_exp_types(Map(lam, (xs,)))


def test_if_branch_types_must_match():
    c = Var("c", BOOL)
    t = Body((), (const(1.0, F64),))
    f = Body((), (const(1, I64),))
    with pytest.raises(TypeError_):
        infer_exp_types(If(c, t, f))


def test_iota_type():
    assert infer_exp_types(Iota(const(5, I64)))[0] == array(I64, 1)


def test_validate_rejects_nonlinear_acc_use():
    acc = Var("acc", AccType(F64, 1))
    i = Var("i", I64)
    v = const(1.0, F64)
    a1 = Var("a1", AccType(F64, 1))
    a2 = Var("a2", AccType(F64, 1))
    body = Body(
        (
            # acc used twice — non-linear.
            __import__("repro.ir.ast", fromlist=["Stm"]).Stm((a1,), UpdAcc(acc, (i,), v)),
            __import__("repro.ir.ast", fromlist=["Stm"]).Stm((a2,), UpdAcc(acc, (i,), v)),
        ),
        (a1,),
    )
    arr = Var("arr", array(F64, 1))
    lam = Lambda((acc,), body)
    b = Builder()
    iv = b.emit1(AtomExp(const(0, I64)), "i")
    # Build a fun around it; the validator should reject it.
    wb = Builder()
    outs = wb.with_acc([arr], lam, names=["out"])
    fun = Fun("bad", (arr, i), wb.finish([outs[0]]))
    with pytest.raises(IRError):
        validate_fun(fun)


def test_pretty_roundtrippable_text():
    fun = _simple_fun()
    s = pretty(fun)
    assert "fun sq" in s and "x * x" in s
