"""Simplify / CSE / fusion / while-bound / stripmine / acc_opt pass tests:
each preserves semantics and achieves its structural goal."""
import numpy as np
import pytest

import repro as rp
from repro.frontend.function import Compiled
from repro.ir import Fun, check_fun, count_stms, pretty
from repro.opt.acc_opt import acc_opt_fun
from repro.opt.cse import cse_fun
from repro.opt.fusion import fuse_fun
from repro.opt.simplify import simplify_fun
from repro.opt.stripmine import stripmine_fun
from repro.opt.while_bound import while_bound_fun

rng = np.random.default_rng(7)


def _same(fun1, fun2, *args):
    r1 = Compiled(fun1, optimize=False)(*args)
    r2 = Compiled(fun2, optimize=False)(*args)
    r1 = r1 if isinstance(r1, tuple) else (r1,)
    r2 = r2 if isinstance(r2, tuple) else (r2,)
    for a, b in zip(r1, r2):
        np.testing.assert_allclose(np.asarray(a), np.asarray(b), rtol=1e-12)


def test_simplify_constant_folding():
    fun = rp.trace_like(lambda x: x * 1.0 + 0.0 + (2.0 * 3.0), (1.0,))
    s = simplify_fun(fun)
    assert count_stms(s) <= 2
    _same(fun, s, 1.7)


def test_simplify_copy_propagation():
    fun = rp.trace_like(lambda x: rp.where(True, x, x) + 0.0, (1.0,))
    s = simplify_fun(fun)
    _same(fun, s, 2.5)


def test_simplify_constant_branch_spliced():
    fun = rp.trace_like(lambda x: rp.cond(True, lambda: x * 2.0, lambda: x * 3.0), (1.0,))
    s = simplify_fun(fun)
    assert "if" not in pretty(s)
    _same(fun, s, 1.1)


def test_cse_merges_duplicates():
    def f(x):
        a = rp.sin(x) * rp.cos(x)
        b = rp.sin(x) * rp.cos(x)
        return a + b

    fun = rp.trace_like(f, (1.0,))
    c = cse_fun(fun)
    assert count_stms(c) < count_stms(fun)
    _same(fun, c, 0.3)


def test_cse_commutative_normalisation():
    def f(x, y):
        return x * y + y * x

    fun = rp.trace_like(f, (1.0, 2.0))
    c = cse_fun(fun)
    assert pretty(c).count("*") == 1
    _same(fun, c, 1.5, -0.5)


def test_cse_does_not_cross_branches():
    def f(x):
        a = rp.cond(x > 0.0, lambda: rp.sin(x), lambda: rp.cos(x))
        return a

    fun = rp.trace_like(f, (1.0,))
    c = cse_fun(fun)
    check_fun(c)
    _same(fun, c, 0.5)
    _same(fun, c, -0.5)


def test_fusion_map_map():
    def f(xs):
        ys = rp.map(lambda x: x * 2.0, xs)
        return rp.sum(rp.map(lambda y: y + 1.0, ys))

    fun = rp.trace_like(f, (np.ones(4),))
    fz = fuse_fun(fun)
    check_fun(fz)
    assert pretty(fz).count("map (") < pretty(fun).count("map (")
    _same(fun, fz, rng.standard_normal(4))


def test_fusion_keeps_multi_consumer():
    def f(xs):
        ys = rp.map(lambda x: x * 2.0, xs)
        return rp.sum(ys) + rp.sum(rp.map(lambda y: y + 1.0, ys))

    fun = rp.trace_like(f, (np.ones(4),))
    fz = fuse_fun(fun)
    _same(fun, fz, rng.standard_normal(4))


def test_while_bound_transform():
    def f(x):
        v, s = rp.while_loop(lambda v, s: v < 50.0, lambda v, s: (v * 2.0, s + v), (x, 0.0), bound=16)
        return s

    fun = rp.trace_like(f, (1.0,))
    wb = while_bound_fun(fun)
    check_fun(wb)
    assert "while" not in pretty(wb)
    _same(fun, wb, 1.3)


def test_while_inspector_inserted():
    def f(x):
        v, s = rp.while_loop(lambda v, s: v < 50.0, lambda v, s: (v * 2.0, s + v), (x, 0.0))
        return s

    fun = rp.trace_like(f, (1.0,))
    wb = while_bound_fun(fun)
    check_fun(wb)
    # inspector while + bounded for-loop both present
    txt = pretty(wb)
    assert "while" in txt and "for" in txt
    _same(fun, wb, 1.3)


def test_stripmine_semantics():
    def f(x):
        return rp.fori_loop(37, lambda i, a: a + rp.astype(i, rp.F64) * x, 0.0, stripmine=8)

    fun = rp.trace_like(f, (1.0,))
    sm = stripmine_fun(fun)
    check_fun(sm)
    _same(fun, sm, 0.7)


def test_acc_opt_preserves_matmul_semantics():
    from repro.core.api import vjp

    f = rp.compile(rp.trace_like(lambda a, b: rp.matmul(a, b), (np.ones((3, 4)), np.ones((4, 2)))))
    raw = vjp(f, acc_opt=False)
    opt = vjp(f, acc_opt=True)
    A, B, S = rng.standard_normal((3, 4)), rng.standard_normal((4, 2)), rng.standard_normal((3, 2))
    _same(raw.fun, opt.fun, A, B, S)


def test_acc_opt_removes_innermost_atomic_storm():
    """The §6.1 structural claim: the i·j·k scattered updates of the matmul
    adjoint are replaced by dense reduce kernels (only the final O(k·j)
    write-back scatter remains)."""
    from repro.core.api import vjp
    from repro.ir.ast import UpdAcc, Loop, WhileLoop, If
    from repro.ir.traversal import exp_lambdas

    def count_upd(node):
        n = 0

        def body(b):
            nonlocal n
            for stm in b.stms:
                e = stm.exp
                if isinstance(e, UpdAcc) and len(e.idx) > 0:
                    n += 1
                for l in exp_lambdas(e):
                    body(l.body)
                if isinstance(e, (Loop, WhileLoop)):
                    body(e.body)
                if isinstance(e, If):
                    body(e.then)
                    body(e.els)

        body(node.body)
        return n

    f = rp.compile(rp.trace_like(lambda a, b: rp.matmul(a, b), (np.ones((3, 4)), np.ones((4, 2)))))
    raw = vjp(f, acc_opt=False)
    opt = vjp(f, acc_opt=True)
    assert count_upd(opt.fun) < count_upd(raw.fun)


def test_acc_opt_hist_rewrite_fires():
    """A data-dependent update under one map becomes a reduce_by_index."""
    from repro.core.api import vjp

    def f(xs, tbl):
        def per(x):
            i = rp.astype(rp.floor(abs(x)), rp.I64) % 4
            return tbl[i] * x

        return rp.sum(rp.map(per, xs))

    fc = rp.compile(rp.trace_like(f, (np.ones(6), np.ones(4))))
    opt = vjp(fc, acc_opt=True, wrt=[1])
    assert "reduce_by_index" in pretty(opt.fun)
    raw = vjp(fc, acc_opt=False, wrt=[1])
    xs = rng.standard_normal(6) * 3
    tbl = rng.standard_normal(4)
    _same(raw.fun, opt.fun, xs, tbl, 1.0)
