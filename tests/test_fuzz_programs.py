"""Random-program fuzzing: a small generator of well-typed nested-parallel
programs, checked for (a) ref/vec backend agreement, (b) jvp/vjp dot-product
consistency, (c) optimisation-pipeline semantics preservation.

This is the strongest single test in the suite: it exercises arbitrary
compositions of the constructs rather than hand-picked shapes.
"""
import numpy as np
from hypothesis import given, settings, strategies as st

import repro as rp
from helpers import check_jvp_vjp_consistency, run_both


def _gen_scalar_expr(rng, x, depth):
    """A random differentiable scalar expression of one traced scalar."""
    if depth <= 0:
        return x
    pick = rng.integers(0, 8)
    a = _gen_scalar_expr(rng, x, depth - 1)
    if pick == 0:
        return rp.sin(a)
    if pick == 1:
        return rp.tanh(a)
    if pick == 2:
        return a * a + 0.3
    if pick == 3:
        return rp.exp(-a * a)
    if pick == 4:
        return rp.where(a > 0.0, a, a * 0.5)
    if pick == 5:
        b = _gen_scalar_expr(rng, x, depth - 1)
        return a * b + 0.1 * a
    if pick == 6:
        return rp.cond(a > 0.2, lambda: a * 1.5, lambda: a - 0.7)
    return rp.sigmoid(a)


def _gen_program(seed: int):
    """Build a random scalar-valued program over a rank-1 input."""
    rng = np.random.default_rng(seed)
    kind = rng.integers(0, 5)

    def prog(xs):
        ys = rp.map(lambda x: _gen_scalar_expr(rng, x, int(rng.integers(1, 3))), xs)
        if kind == 0:
            return rp.sum(ys)
        if kind == 1:
            s = rp.scan(lambda a, b: a + b, 0.0, ys)
            return rp.sum(rp.map(lambda v: rp.tanh(v), s))
        if kind == 2:
            def body(x):
                return rp.fori_loop(int(rng.integers(1, 4)), lambda i, a: a * 0.8 + x, x)

            return rp.sum(rp.map(body, ys))
        if kind == 3:
            n = rp.size(ys)
            return rp.sum(rp.map(lambda i: ys[i % n] * ys[0], rp.iota(n)))
        return rp.max(ys) + rp.sum(ys) * 0.1

    return prog


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(1, 9), dseed=st.integers(0, 10**6))
def test_fuzz_backend_agreement(seed, n, dseed):
    prog = _gen_program(seed)
    xs = np.random.default_rng(dseed).standard_normal(n) * 0.8
    fc = rp.compile(rp.trace_like(prog, (xs,)))
    run_both(fc, xs)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(2, 8), dseed=st.integers(0, 10**6))
def test_fuzz_jvp_vjp_consistency(seed, n, dseed):
    prog = _gen_program(seed)
    xs = np.random.default_rng(dseed).standard_normal(n) * 0.8
    check_jvp_vjp_consistency(prog, (xs,), seed=dseed)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(2, 8), dseed=st.integers(0, 10**6))
def test_fuzz_grad_fd(seed, n, dseed):
    prog = _gen_program(seed)
    rng = np.random.default_rng(dseed)
    xs = rng.standard_normal(n) * 0.8
    # keep away from the non-differentiable kinks the generator can produce
    xs = np.where(np.abs(xs) < 0.05, 0.3, xs)
    xs = np.where(np.abs(xs - 0.2) < 0.05, 0.35, xs)
    # ... and de-tie values so max-reduces are differentiable (at a tie the
    # argmax rule's subgradient legitimately differs from central FD).
    xs = xs + np.arange(n) * 1.7e-3
    fun = rp.trace_like(prog, (xs,))
    fc = rp.compile(fun)
    g = rp.grad(fc)(xs)
    eps = 1e-6
    fd = np.zeros_like(xs)
    for i in range(n):
        xp, xm = xs.copy(), xs.copy()
        xp[i] += eps
        xm[i] -= eps
        fd[i] = (fc(xp) - fc(xm)) / (2 * eps)
    # Branch kinks can straddle the FD step; tolerate rare large deviations
    # by checking the median-agreement property instead of max.
    err = np.abs(g - fd)
    assert np.median(err) < 1e-4
    assert (err < 1e-4).mean() >= 0.8
